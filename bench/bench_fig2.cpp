// Reproduces Fig. 2: probability of failure for SRAM structures at
// different granularities (bit, 4B word, 32B block) versus supply voltage,
// in the 65nm technology of [4], plus the yield-driven Vccmin of a 32KB
// cache for both technology nodes.
#include <cmath>

#include "bench_util.h"
#include "common/table.h"
#include "faults/yield.h"

using namespace voltcache;

int main() {
    bench::printHeader("Figure 2",
                       "P_fail vs VCC at bit / 4B word / 32B block granularity (65nm, "
                       "from [4]) and Vccmin at the 99.9% yield target");

    const FailureModel model65(Technology::Node65nm);
    TextTable table({"VCC (mV)", "P_fail(bit)", "P_fail(4B word)", "P_fail(32B block)"});
    for (int mv = 1000; mv >= 400; mv -= 50) {
        const Voltage v = Voltage::fromMillivolts(mv);
        table.addRow({std::to_string(mv), formatSci(model65.pFailBit(v), 2),
                      formatSci(model65.pFailStructure(v, granularity::kWord4B), 2),
                      formatSci(model65.pFailStructure(v, granularity::kBlock32B), 2)});
    }
    std::fputs(table.render().c_str(), stdout);

    std::printf("\nYield-driven Vccmin (999 of 1000 dies fault-free):\n");
    TextTable vccmin({"Structure", "bits", "Vccmin 45nm (mV)", "Vccmin 65nm (mV)"});
    const YieldAnalyzer analyzer45{FailureModel{Technology::Node45nm}};
    const YieldAnalyzer analyzer65{FailureModel{Technology::Node65nm}};
    const struct {
        const char* name;
        std::uint64_t bits;
    } structures[] = {{"single bit", granularity::kBit},
                      {"4B word", granularity::kWord4B},
                      {"32B block", granularity::kBlock32B},
                      {"32KB cache", granularity::kCache32KB}};
    for (const auto& s : structures) {
        vccmin.addRow({s.name, std::to_string(s.bits),
                       formatDouble(analyzer45.vccmin(s.bits).millivolts(), 0),
                       formatDouble(analyzer65.vccmin(s.bits).millivolts(), 0)});
    }
    std::fputs(vccmin.render().c_str(), stdout);
    std::printf("\nPaper anchor: the 45nm 32KB cache requires Vccmin = 760mV.\n"
                "Shape check: P_fail(block) >> P_fail(word) >> P_fail(bit); all rise\n"
                "exponentially as VCC drops, forcing fine-grained protection below "
                "500mV.\n");
    return 0;
}
