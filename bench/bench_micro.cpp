// Google-benchmark microbenchmarks of the library's hot paths: fault-map
// generation, BIST, scheme access loops, BBR linking, observability
// primitives, and end-to-end simulation throughput. These guard the Monte
// Carlo harness's performance (a full paper-scale sweep runs ~100k
// simulations). A custom reporter mirrors every run into BENCH_micro.json
// (see bench_export.h) so CI can diff the numbers.
#include <benchmark/benchmark.h>

#include <algorithm>
#include <chrono>
#include <limits>

#include "bench_export.h"
#include "compiler/passes.h"
#include "core/replay.h"
#include "core/sweep.h"
#include "core/system.h"
#include "cpu/simulator.h"
#include "faults/bist.h"
#include "linker/linker.h"
#include "obs/metrics.h"
#include "obs/span.h"
#include "obs/trace.h"
#include "obs/trace_context.h"
#include "schemes/conventional.h"
#include "schemes/factory.h"
#include "schemes/ffw.h"
#include "schemes/word_disable.h"
#include "serve/store.h"
#include "workload/workload.h"

namespace {

using namespace voltcache;
using voltcache::literals::operator""_mV;

void BM_FaultMapGeneration(benchmark::State& state) {
    const FaultMapGenerator generator;
    Rng rng(1);
    for (auto _ : state) {
        benchmark::DoNotOptimize(generator.generate(rng, 400_mV, 1024, 8));
    }
    state.SetItemsProcessed(state.iterations() * 8192);
}
BENCHMARK(BM_FaultMapGeneration);

void BM_BistMarch(benchmark::State& state) {
    Rng rng(2);
    DefectiveSramArray array(1024, 8);
    array.injectRandomDefects(rng, 1e-2);
    for (auto _ : state) {
        benchmark::DoNotOptimize(Bist::run(array));
    }
    state.SetItemsProcessed(state.iterations() * 8192);
}
BENCHMARK(BM_BistMarch);

void BM_FfwReadLoop(benchmark::State& state) {
    const FaultMapGenerator generator;
    Rng rng(3);
    const CacheOrganization org;
    const FaultMap map = generator.generate(rng, 400_mV, org.lines(), org.wordsPerBlock());
    L2Cache l2;
    FfwDCache dcache(org, map, l2);
    std::uint32_t addr = 0;
    for (auto _ : state) {
        benchmark::DoNotOptimize(dcache.read(addr));
        addr = (addr + 4) % (64 * 1024);
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_FfwReadLoop);

// The trace-enabled twin of BM_FfwReadLoop: same access pattern with a sink
// attached, so `(traced - plain) / plain` bounds the tracing overhead. With
// NO sink attached the only cost on this path is one relaxed atomic load
// (see BM_ObsTraceDisabled) plus the recenter counter — the acceptance bar
// is <= 1% there.
void BM_FfwReadLoopTraced(benchmark::State& state) {
    const FaultMapGenerator generator;
    Rng rng(3);
    const CacheOrganization org;
    const FaultMap map = generator.generate(rng, 400_mV, org.lines(), org.wordsPerBlock());
    L2Cache l2;
    FfwDCache dcache(org, map, l2);
    obs::TraceSink sink;
    const obs::ScopedTraceSink guard(&sink);
    std::uint32_t addr = 0;
    for (auto _ : state) {
        benchmark::DoNotOptimize(dcache.read(addr));
        addr = (addr + 4) % (64 * 1024);
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_FfwReadLoopTraced);

void BM_SimpleWdisReadLoop(benchmark::State& state) {
    const FaultMapGenerator generator;
    Rng rng(3);
    const CacheOrganization org;
    const FaultMap map = generator.generate(rng, 400_mV, org.lines(), org.wordsPerBlock());
    L2Cache l2;
    SimpleWordDisableDCache dcache(org, map, l2);
    std::uint32_t addr = 0;
    for (auto _ : state) {
        benchmark::DoNotOptimize(dcache.read(addr));
        addr = (addr + 4) % (64 * 1024);
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_SimpleWdisReadLoop);

void BM_BbrLink(benchmark::State& state) {
    Module module = buildBenchmark("basicmath", WorkloadScale::Tiny);
    applyBbrTransforms(module);
    const FaultMapGenerator generator;
    Rng rng(4);
    const FaultMap map = generator.generate(rng, 400_mV, 1024, 8);
    LinkOptions options;
    options.bbrPlacement = true;
    options.icacheFaultMap = &map;
    for (auto _ : state) {
        benchmark::DoNotOptimize(link(module, options));
    }
}
BENCHMARK(BM_BbrLink);

void BM_SimulatorThroughput(benchmark::State& state) {
    const Module module = buildBenchmark("crc32", WorkloadScale::Tiny);
    const LinkOutput linked = link(module);
    std::uint64_t instructions = 0;
    for (auto _ : state) {
        L2Cache l2;
        CacheOrganization org;
        ConventionalICache icache(org, l2);
        ConventionalDCache dcache(org, l2);
        Simulator sim(linked.image, module.data, icache, dcache);
        const RunStats stats = sim.run();
        instructions += stats.instructions;
        benchmark::DoNotOptimize(stats.cycles);
    }
    state.SetItemsProcessed(static_cast<std::int64_t>(instructions));
}
BENCHMARK(BM_SimulatorThroughput)->Unit(benchmark::kMillisecond);

void BM_EndToEndSystemLeg(benchmark::State& state) {
    const Module module = buildBenchmark("basicmath", WorkloadScale::Tiny);
    Module bbrModule = module;
    applyBbrTransforms(bbrModule);
    std::uint64_t seed = 1;
    for (auto _ : state) {
        SystemConfig config;
        config.scheme = SchemeKind::FfwBbr;
        config.op = DvfsTable::at(400_mV);
        config.faultMapSeed = seed++;
        benchmark::DoNotOptimize(simulateSystem(module, &bbrModule, config));
    }
}
BENCHMARK(BM_EndToEndSystemLeg)->Unit(benchmark::kMillisecond);

// Trace-driven twin of BM_EndToEndSystemLeg: identical leg configuration,
// evaluated through replaySystem() from pre-recorded traces. The ratio of
// the two is the per-leg speedup of the record-once / replay-many engine.
void BM_ReplayLegs(benchmark::State& state) {
    const Module module = buildBenchmark("basicmath", WorkloadScale::Tiny);
    Module bbrModule = module;
    applyBbrTransforms(bbrModule);
    TraceCache traces;
    SystemConfig record;
    record.scheme = SchemeKind::Conventional760;
    SystemResult ignored;
    traces.plain = recordReplaySource(module, record, 0, ignored);
    traces.bbr = recordReplaySource(bbrModule, record, 0, ignored);
    std::uint64_t seed = 1;
    for (auto _ : state) {
        SystemConfig config;
        config.scheme = SchemeKind::FfwBbr;
        config.op = DvfsTable::at(400_mV);
        config.faultMapSeed = seed++;
        benchmark::DoNotOptimize(replaySystem(&bbrModule, config, traces));
    }
}
BENCHMARK(BM_ReplayLegs)->Unit(benchmark::kMillisecond);

// --- end-to-end sweep throughput ---

/// Small fixed sweep used for the legs/sec benchmarks: 2 benchmarks x
/// 2 points x 2 schemes x 16 trials = 128 legs per sweep. Trials >= 16 so
/// the record-once and decode-once costs are amortized the way a real Monte
/// Carlo grid amortizes them: the trace pays for itself from the second
/// trial on, and a trial group fills a whole batch (core/replay.cpp
/// replayBatch) instead of a sliver of one.
SweepConfig tinySweepConfig(unsigned threads) {
    SweepConfig config;
    config.benchmarks = {"crc32", "basicmath"};
    config.schemes = {SchemeKind::SimpleWordDisable, SchemeKind::FfwBbr};
    config.points = {DvfsTable::at(560_mV), DvfsTable::at(400_mV)};
    config.trials = 16;
    config.scale = WorkloadScale::Tiny;
    config.threads = threads;
    return config;
}

std::size_t sweepLegCount(const SweepConfig& config) {
    std::size_t perPoint = 0;
    for (const SchemeKind scheme : config.schemes) {
        perPoint += scheme == SchemeKind::Robust8T ? 1 : config.trials;
    }
    return config.benchmarks.size() * config.points.size() * perPoint;
}

/// Arg(0) = hardware concurrency (runSweep's own default); Arg(1) = serial.
void BM_SweepLegs(benchmark::State& state) {
    const SweepConfig config = tinySweepConfig(static_cast<unsigned>(state.range(0)));
    std::uint64_t legs = 0;
    for (auto _ : state) {
        benchmark::DoNotOptimize(runSweep(config));
        legs += sweepLegCount(config);
    }
    state.SetItemsProcessed(static_cast<std::int64_t>(legs));
}
BENCHMARK(BM_SweepLegs)->Arg(1)->Arg(0)->Unit(benchmark::kMillisecond);

// Cost of bumping a pre-resolved counter handle (one relaxed atomic add on
// a per-thread cell) — the unit of overhead each instrumented hot path pays.
void BM_ObsCounterAdd(benchmark::State& state) {
    obs::Counter counter =
        obs::MetricsRegistry::global().counter("bench.counter_add");
    for (auto _ : state) {
        counter.add();
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ObsCounterAdd);

// Cost of the trace-point guard when no sink is attached: a single relaxed
// atomic load and a branch. This is what every instrumented path pays in a
// production sweep.
void BM_ObsTraceDisabled(benchmark::State& state) {
    for (auto _ : state) {
        if (obs::TraceSink* sink = obs::traceSink()) {
            sink->record("bench.never", "bench", {});
        }
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ObsTraceDisabled);

// Cost of an armed trace point: ring-slot write under the sink mutex.
void BM_ObsTraceRecord(benchmark::State& state) {
    obs::TraceSink sink;
    const obs::ScopedTraceSink guard(&sink);
    for (auto _ : state) {
        if (obs::TraceSink* active = obs::traceSink()) {
            active->record("bench.event", "bench", {{"i", 1}});
        }
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ObsTraceRecord);

// Cost of a profiling span when the profiler is off — the price every
// instrumented phase pays in a production sweep. Must stay within noise of
// a bare relaxed atomic load (the span constructor's fast-path bail).
void BM_SpanDisabled(benchmark::State& state) {
    obs::Profiler::setEnabled(false);
    for (auto _ : state) {
        const obs::Span span("bench.disabled");
        benchmark::DoNotOptimize(&span);
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_SpanDisabled);

// Cost of a live span: two steady_clock reads plus the per-thread stack and
// shard bookkeeping. Bounds the self-profiler's distortion of the phases it
// measures.
void BM_SpanEnabled(benchmark::State& state) {
    obs::Profiler::reset();
    obs::Profiler::setEnabled(true);
    for (auto _ : state) {
        const obs::Span span("bench.enabled");
        benchmark::DoNotOptimize(&span);
    }
    obs::Profiler::setEnabled(false);
    obs::Profiler::reset();
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_SpanEnabled);

/// ConsoleReporter that also captures every iteration run, so main() can
/// export BENCH_micro.json after the normal console output.
class ExportingReporter : public benchmark::ConsoleReporter {
  public:
    void ReportRuns(const std::vector<Run>& reports) override {
        for (const Run& run : reports) {
            if (run.run_type != Run::RT_Iteration || run.error_occurred) continue;
            voltcache::bench::BenchMetric metric;
            metric.name = run.benchmark_name();
            metric.value = run.GetAdjustedRealTime();
            metric.unit = benchmark::GetTimeUnitString(run.time_unit);
            metric.samples = static_cast<std::uint64_t>(run.iterations);
            metrics_.push_back(metric);
        }
        ConsoleReporter::ReportRuns(reports);
    }

    [[nodiscard]] const std::vector<voltcache::bench::BenchMetric>& metrics() const {
        return metrics_;
    }

  private:
    std::vector<voltcache::bench::BenchMetric> metrics_;
};

/// Direct throughput probes for the headline performance artifact
/// (BENCH_perf.json): each rate is sampled kPerfReps times so the export
/// carries a confidence-interval half-width alongside the mean. These guard
/// the sweep executor's wall-clock budget the way BENCH_micro guards the
/// individual hot paths.
std::vector<voltcache::bench::BenchMetric> perfProbe() {
    using Clock = std::chrono::steady_clock;
    constexpr int kPerfReps = 5;
    const auto secondsSince = [](Clock::time_point start) {
        return std::chrono::duration<double>(Clock::now() - start).count();
    };
    const auto metricOf = [](const char* name, const RunningStats& stats) {
        voltcache::bench::BenchMetric metric;
        metric.name = name;
        metric.value = stats.mean();
        metric.ciHalfWidth = confidenceInterval(stats).halfWidth;
        metric.unit = "1/s";
        metric.samples = stats.count();
        return metric;
    };
    std::vector<voltcache::bench::BenchMetric> metrics;

    // Simulator steps per second (conventional caches, no faults).
    {
        const Module module = buildBenchmark("crc32", WorkloadScale::Tiny);
        const LinkOutput linked = link(module);
        RunningStats rate;
        for (int rep = 0; rep < kPerfReps; ++rep) {
            const auto start = Clock::now();
            L2Cache l2;
            CacheOrganization org;
            ConventionalICache icache(org, l2);
            ConventionalDCache dcache(org, l2);
            Simulator sim(linked.image, module.data, icache, dcache);
            const RunStats stats = sim.run();
            rate.add(static_cast<double>(stats.instructions) / secondsSince(start));
        }
        metrics.push_back(metricOf("sim.steps_per_sec", rate));
    }

    // Fault-map generations per second at the deepest operating point.
    {
        const FaultMapGenerator generator;
        Rng rng(1);
        constexpr int kMapsPerRep = 200;
        RunningStats rate;
        for (int rep = 0; rep < kPerfReps; ++rep) {
            const auto start = Clock::now();
            for (int i = 0; i < kMapsPerRep; ++i) {
                benchmark::DoNotOptimize(generator.generate(rng, 400_mV, 1024, 8));
            }
            rate.add(kMapsPerRep / secondsSince(start));
        }
        metrics.push_back(metricOf("faultmap.generations_per_sec", rate));
    }

    // End-to-end sweep legs per second on the default (record-once, batched
    // replay) path: the thread-scaling curve {1, 2, 4, all} plus the
    // parallel efficiency at all threads. runSweep clamps its workers to
    // the host and the schedulable units, so on a small machine the higher
    // points collapse onto the hardware limit; the efficiency metric
    // divides by the worker count actually used, so it stays meaningful
    // (and is 1.0 by construction on a single-core host).
    double serialLegsPerSec = 0.0;
    for (const unsigned threads : {1u, 2u, 4u, 0u}) {
        SweepConfig config = tinySweepConfig(threads);
        unsigned workersUsed = 1;
        config.onProgress = [&workersUsed](const SweepProgress& progress) {
            workersUsed = std::max(workersUsed, progress.workers);
        };
        const auto legs = static_cast<double>(sweepLegCount(config));
        RunningStats rate;
        for (int rep = 0; rep < kPerfReps; ++rep) {
            const auto start = Clock::now();
            benchmark::DoNotOptimize(runSweep(config));
            rate.add(legs / secondsSince(start));
        }
        const char* name = threads == 1   ? "sweep.legs_per_sec/threads1"
                           : threads == 2 ? "sweep.legs_per_sec/threads2"
                           : threads == 4 ? "sweep.legs_per_sec/threads4"
                                          : "sweep.legs_per_sec/threads_all";
        metrics.push_back(metricOf(name, rate));
        if (threads == 1) serialLegsPerSec = rate.mean();
        if (threads == 0 && serialLegsPerSec > 0.0) {
            voltcache::bench::BenchMetric efficiency;
            efficiency.name = "sweep.parallel_efficiency";
            efficiency.value =
                rate.mean() / (static_cast<double>(workersUsed) * serialLegsPerSec);
            efficiency.ciHalfWidth =
                confidenceInterval(rate).halfWidth /
                (static_cast<double>(workersUsed) * serialLegsPerSec);
            efficiency.unit = "frac";
            efficiency.samples = rate.count();
            metrics.push_back(efficiency);
        }
    }

    // The same serial sweep with batching disabled (`--no-batch`): the
    // per-leg replay path the batched engine is measured against.
    {
        SweepConfig config = tinySweepConfig(1);
        config.useBatch = false;
        const auto legs = static_cast<double>(sweepLegCount(config));
        RunningStats rate;
        for (int rep = 0; rep < kPerfReps; ++rep) {
            const auto start = Clock::now();
            benchmark::DoNotOptimize(runSweep(config));
            rate.add(legs / secondsSince(start));
        }
        metrics.push_back(metricOf("sweep.nobatch_legs_per_sec/threads1", rate));
    }

    // The same serial sweep execution-driven (`--no-replay`): the PR 3
    // baseline the replay speedup is measured against.
    {
        SweepConfig config = tinySweepConfig(1);
        config.useReplay = false;
        const auto legs = static_cast<double>(sweepLegCount(config));
        RunningStats rate;
        for (int rep = 0; rep < kPerfReps; ++rep) {
            const auto start = Clock::now();
            benchmark::DoNotOptimize(runSweep(config));
            rate.add(legs / secondsSince(start));
        }
        metrics.push_back(metricOf("sweep.exec_legs_per_sec/threads1", rate));
    }

    // The same serial execution-driven sweep with the telemetry plane
    // explicitly disabled (no onProgress / onLegEvent hooks): guards the leg
    // hot path — an unset hook must cost nothing, so this metric must track
    // sweep.exec_legs_per_sec/threads1 release after release.
    {
        SweepConfig config = tinySweepConfig(1);
        config.useReplay = false;
        config.onProgress = nullptr;
        config.onLegEvent = nullptr;
        const auto legs = static_cast<double>(sweepLegCount(config));
        RunningStats rate;
        for (int rep = 0; rep < kPerfReps; ++rep) {
            const auto start = Clock::now();
            benchmark::DoNotOptimize(runSweep(config));
            rate.add(legs / secondsSince(start));
        }
        metrics.push_back(metricOf("sweep.exec_legs_per_sec/telemetry_off", rate));
    }

    // Raw replaySystem() legs per second (FFW+BBR at 400mV — the most
    // expensive replayed leg: per-trial verified link + live predictor).
    {
        const Module module = buildBenchmark("basicmath", WorkloadScale::Tiny);
        Module bbrModule = module;
        applyBbrTransforms(bbrModule);
        TraceCache traces;
        SystemConfig record;
        record.scheme = SchemeKind::Conventional760;
        SystemResult ignored;
        traces.plain = recordReplaySource(module, record, 0, ignored);
        traces.bbr = recordReplaySource(bbrModule, record, 0, ignored);
        constexpr int kLegsPerRep = 20;
        std::uint64_t seed = 1;
        RunningStats rate;
        for (int rep = 0; rep < kPerfReps; ++rep) {
            const auto start = Clock::now();
            for (int i = 0; i < kLegsPerRep; ++i) {
                SystemConfig config;
                config.scheme = SchemeKind::FfwBbr;
                config.op = DvfsTable::at(400_mV);
                config.faultMapSeed = seed++;
                benchmark::DoNotOptimize(replaySystem(&bbrModule, config, traces));
            }
            rate.add(kLegsPerRep / secondsSince(start));
        }
        metrics.push_back(metricOf("replay.legs_per_sec", rate));
    }

    // Recording overhead: fractional slowdown of an execution-driven run
    // with a TraceRecorder attached — the one-time cost each benchmark pays
    // to unlock replayed trials. The overhead is a difference of two
    // similar durations, so single timings drown in scheduler noise: each
    // sample is the min-of-3 of both sides (the min estimates the
    // noise-free duration), and the rep count is 5x the rate probes', so
    // the exported confidence interval is small against the mean instead
    // of dwarfing it.
    {
        const Module module = buildBenchmark("basicmath", WorkloadScale::Tiny);
        constexpr int kOverheadReps = 5 * kPerfReps;
        constexpr int kMinOf = 3;
        RunningStats frac;
        for (int rep = 0; rep < kOverheadReps; ++rep) {
            SystemConfig config;
            config.scheme = SchemeKind::Conventional760;
            double plain = std::numeric_limits<double>::infinity();
            for (int i = 0; i < kMinOf; ++i) {
                const auto start = Clock::now();
                benchmark::DoNotOptimize(simulateSystem(module, nullptr, config));
                plain = std::min(plain, secondsSince(start));
            }

            TraceRecorder recorder;
            config.observers.push_back(&recorder);
            double recorded = std::numeric_limits<double>::infinity();
            for (int i = 0; i < kMinOf; ++i) {
                const auto start = Clock::now();
                benchmark::DoNotOptimize(simulateSystem(module, nullptr, config));
                recorded = std::min(recorded, secondsSince(start));
            }
            frac.add((recorded - plain) / plain);
        }
        voltcache::bench::BenchMetric metric;
        metric.name = "trace.record_overhead_frac";
        metric.value = frac.mean();
        metric.ciHalfWidth = confidenceInterval(frac).halfWidth;
        metric.unit = "frac";
        metric.samples = frac.count();
        metrics.push_back(metric);
    }

    // The serve-layer headline: legs per second through the content-
    // addressed store, cold (every leg simulates and populates) vs warm
    // (every leg is a store hit — no trace recording, no simulation). The
    // warm/cold ratio is the CI speedup gate (bench_check --speedup): both
    // rates come from the same run on the same machine, so the ratio is
    // machine-independent.
    {
        // Cold: a fresh store per rep, so every rep pays full simulation
        // plus the insert path.
        SweepConfig config = tinySweepConfig(1);
        const auto legs = static_cast<double>(sweepLegCount(config));
        RunningStats cold;
        for (int rep = 0; rep < kPerfReps; ++rep) {
            serve::LegStore store({.byteBudget = 64ull << 20, .directory = ""});
            config.resultSource = &store;
            const auto start = Clock::now();
            benchmark::DoNotOptimize(runSweep(config));
            cold.add(legs / secondsSince(start));
        }
        metrics.push_back(metricOf("serve.cold_legs_per_sec", cold));

        // Warm: one shared store pre-filled by a priming run; every rep is
        // pure digest + lookup + reduction.
        serve::LegStore store({.byteBudget = 64ull << 20, .directory = ""});
        config.resultSource = &store;
        benchmark::DoNotOptimize(runSweep(config));
        RunningStats warm;
        for (int rep = 0; rep < kPerfReps; ++rep) {
            const auto start = Clock::now();
            benchmark::DoNotOptimize(runSweep(config));
            warm.add(legs / secondsSince(start));
        }
        metrics.push_back(metricOf("serve.warm_legs_per_sec", warm));
    }

    // Raw store hit latency: one lookup of a resident entry (hash the key
    // map slot, splice to the LRU front, copy the 484-byte slot, bump one
    // relaxed counter). Guards the per-leg overhead a warm sweep pays.
    {
        serve::LegStore store({.byteBudget = 1ull << 20, .directory = ""});
        LegResult value;
        value.normRuntime = 1.0;
        Digest256 key{};
        key[0] = 1;
        store.store(key, value);
        constexpr int kLookupsPerRep = 100000;
        RunningStats nanos;
        LegResult out;
        for (int rep = 0; rep < kPerfReps; ++rep) {
            const auto start = Clock::now();
            for (int i = 0; i < kLookupsPerRep; ++i) {
                benchmark::DoNotOptimize(store.lookup(key, out));
            }
            nanos.add(secondsSince(start) * 1e9 / kLookupsPerRep);
        }
        voltcache::bench::BenchMetric metric;
        metric.name = "serve.hit_lookup_ns";
        metric.value = nanos.mean();
        metric.ciHalfWidth = confidenceInterval(nanos).halfWidth;
        metric.unit = "ns";
        metric.samples = nanos.count();
        metrics.push_back(metric);
    }

    // Per-leg trace stamping cost: the exact work a traced sweep leg adds —
    // derive the deterministic child span id from the root context and check
    // the store's relaxed "is anyone collecting" guard. Guards the claim
    // that tracing is cheap enough to leave on: this must stay sub-
    // microsecond (it is two short SHA-256 compressions plus one atomic
    // load), orders of magnitude below what a leg simulation costs.
    {
        const obs::TraceContext context = obs::makeRootContext("bench");
        constexpr int kStampsPerRep = 100000;
        RunningStats nanos;
        for (int rep = 0; rep < kPerfReps; ++rep) {
            const auto start = Clock::now();
            for (int i = 0; i < kStampsPerRep; ++i) {
                auto span = obs::childSpanId(context, static_cast<std::uint64_t>(i));
                benchmark::DoNotOptimize(span);
                bool collecting = obs::JobTraceStore::collecting();
                benchmark::DoNotOptimize(collecting);
            }
            nanos.add(secondsSince(start) * 1e9 / kStampsPerRep);
        }
        voltcache::bench::BenchMetric metric;
        metric.name = "trace.ctx_overhead_ns";
        metric.value = nanos.mean();
        metric.ciHalfWidth = confidenceInterval(nanos).halfWidth;
        metric.unit = "ns";
        metric.samples = nanos.count();
        metrics.push_back(metric);
    }
    return metrics;
}

} // namespace

int main(int argc, char** argv) {
    benchmark::Initialize(&argc, argv);
    if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
    ExportingReporter reporter;
    benchmark::RunSpecifiedBenchmarks(&reporter);
    benchmark::Shutdown();
    // Micro benches have no sweep config; export with the defaults so the
    // JSON schema matches the figure benches.
    voltcache::bench::writeBenchJson("micro", voltcache::bench::defaultSweepConfig(),
                                     reporter.metrics());
    voltcache::bench::writeBenchJson("perf", voltcache::bench::defaultSweepConfig(),
                                     perfProbe());
    return 0;
}
