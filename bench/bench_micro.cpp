// Google-benchmark microbenchmarks of the library's hot paths: fault-map
// generation, BIST, scheme access loops, BBR linking, and end-to-end
// simulation throughput. These guard the Monte Carlo harness's performance
// (a full paper-scale sweep runs ~100k simulations).
#include <benchmark/benchmark.h>

#include "compiler/passes.h"
#include "core/system.h"
#include "cpu/simulator.h"
#include "faults/bist.h"
#include "linker/linker.h"
#include "schemes/conventional.h"
#include "schemes/factory.h"
#include "schemes/ffw.h"
#include "schemes/word_disable.h"
#include "workload/workload.h"

namespace {

using namespace voltcache;
using voltcache::literals::operator""_mV;

void BM_FaultMapGeneration(benchmark::State& state) {
    const FaultMapGenerator generator;
    Rng rng(1);
    for (auto _ : state) {
        benchmark::DoNotOptimize(generator.generate(rng, 400_mV, 1024, 8));
    }
    state.SetItemsProcessed(state.iterations() * 8192);
}
BENCHMARK(BM_FaultMapGeneration);

void BM_BistMarch(benchmark::State& state) {
    Rng rng(2);
    DefectiveSramArray array(1024, 8);
    array.injectRandomDefects(rng, 1e-2);
    for (auto _ : state) {
        benchmark::DoNotOptimize(Bist::run(array));
    }
    state.SetItemsProcessed(state.iterations() * 8192);
}
BENCHMARK(BM_BistMarch);

void BM_FfwReadLoop(benchmark::State& state) {
    const FaultMapGenerator generator;
    Rng rng(3);
    const CacheOrganization org;
    const FaultMap map = generator.generate(rng, 400_mV, org.lines(), org.wordsPerBlock());
    L2Cache l2;
    FfwDCache dcache(org, map, l2);
    std::uint32_t addr = 0;
    for (auto _ : state) {
        benchmark::DoNotOptimize(dcache.read(addr));
        addr = (addr + 4) % (64 * 1024);
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_FfwReadLoop);

void BM_SimpleWdisReadLoop(benchmark::State& state) {
    const FaultMapGenerator generator;
    Rng rng(3);
    const CacheOrganization org;
    const FaultMap map = generator.generate(rng, 400_mV, org.lines(), org.wordsPerBlock());
    L2Cache l2;
    SimpleWordDisableDCache dcache(org, map, l2);
    std::uint32_t addr = 0;
    for (auto _ : state) {
        benchmark::DoNotOptimize(dcache.read(addr));
        addr = (addr + 4) % (64 * 1024);
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_SimpleWdisReadLoop);

void BM_BbrLink(benchmark::State& state) {
    Module module = buildBenchmark("basicmath", WorkloadScale::Tiny);
    applyBbrTransforms(module);
    const FaultMapGenerator generator;
    Rng rng(4);
    const FaultMap map = generator.generate(rng, 400_mV, 1024, 8);
    LinkOptions options;
    options.bbrPlacement = true;
    options.icacheFaultMap = &map;
    for (auto _ : state) {
        benchmark::DoNotOptimize(link(module, options));
    }
}
BENCHMARK(BM_BbrLink);

void BM_SimulatorThroughput(benchmark::State& state) {
    const Module module = buildBenchmark("crc32", WorkloadScale::Tiny);
    const LinkOutput linked = link(module);
    std::uint64_t instructions = 0;
    for (auto _ : state) {
        L2Cache l2;
        CacheOrganization org;
        ConventionalICache icache(org, l2);
        ConventionalDCache dcache(org, l2);
        Simulator sim(linked.image, module.data, icache, dcache);
        const RunStats stats = sim.run();
        instructions += stats.instructions;
        benchmark::DoNotOptimize(stats.cycles);
    }
    state.SetItemsProcessed(static_cast<std::int64_t>(instructions));
}
BENCHMARK(BM_SimulatorThroughput)->Unit(benchmark::kMillisecond);

void BM_EndToEndSystemLeg(benchmark::State& state) {
    const Module module = buildBenchmark("basicmath", WorkloadScale::Tiny);
    Module bbrModule = module;
    applyBbrTransforms(bbrModule);
    std::uint64_t seed = 1;
    for (auto _ : state) {
        SystemConfig config;
        config.scheme = SchemeKind::FfwBbr;
        config.op = DvfsTable::at(400_mV);
        config.faultMapSeed = seed++;
        benchmark::DoNotOptimize(simulateSystem(module, &bbrModule, config));
    }
}
BENCHMARK(BM_EndToEndSystemLeg)->Unit(benchmark::kMillisecond);

} // namespace
