// Reproduces Table II: the DVFS operating points — core voltage, core
// frequency (paper: HSPICE FO4 measurements at 20 FO4/cycle; here the
// calibrated alpha-power model), and per-bit P_fail (here the calibrated
// failure model). Prints paper values next to model output.
#include "bench_util.h"
#include "common/table.h"
#include "faults/failure_model.h"
#include "power/dvfs.h"
#include "sram/delay_model.h"

using namespace voltcache;

int main() {
    bench::printHeader("Table II", "DVFS configuration: voltage, frequency, P_fail");

    const DelayModel delay;
    const FailureModel failure;
    TextTable table({"Core voltage (mV)", "Paper freq (MHz)", "Model freq (MHz)",
                     "freq err", "Paper P_fail", "Model P_fail"});
    for (const auto& point : DvfsTable::paperPoints()) {
        const double modelMhz = delay.frequencyAt(point.voltage).megahertz();
        const double paperMhz = point.frequency.megahertz();
        const double modelP = failure.pFailBit(point.voltage);
        table.addRow({formatDouble(point.voltage.millivolts(), 0),
                      formatDouble(paperMhz, 0), formatDouble(modelMhz, 0),
                      formatPercent(modelMhz / paperMhz - 1.0, 2),
                      point.voltage.millivolts() > 700 ? "~0" : formatSci(point.pFailBit, 2),
                      formatSci(modelP, 2)});
    }
    std::fputs(table.render().c_str(), stdout);
    std::printf("\nDelay model: f(V) ∝ (V - %.2fV)^%.4f / V, anchored at 760mV = 1607MHz\n",
                delay.vth(), delay.alpha());
    std::printf("Failure model: Table II anchors, log-linear in [400,560]mV, Gaussian-tail\n"
                "extension above; 32KB yield target pins Vccmin at 760mV.\n");
    return 0;
}
