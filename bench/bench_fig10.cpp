// Reproduces Fig. 10: runtime at each low-voltage DVFS point, normalized to
// the unrealistic defect-free baseline at the same voltage, for all
// schemes, averaged over the benchmark suite and Monte Carlo fault maps.
// Also prints the runtime decomposition (busy / I-stall / D-stall /
// branch) per the measurement approach of [35].
//
// Shape checks (paper Section VI-B):
//  * at 560mV the +1-cycle schemes (8T, wilkerson+, fba+, idc+) suffer large
//    slowdowns while the 0-cycle schemes (simple-wdis, ffw+bbr) lose little;
//  * below 480mV simple-wdis collapses from L2 traffic and fba+/idc+
//    overtake it; ffw+bbr stays best throughout.
#include "bench_export.h"
#include "bench_util.h"
#include "common/table.h"
#include "core/analytic_gate.h"

using namespace voltcache;

int main() {
    const SweepConfig config = bench::defaultSweepConfig();
    bench::printHeader("Figure 10", "Normalized runtime vs the defect-free baseline");
    std::printf("Processor: Table I (2-way superscalar, 32KB 4-way L1s @2cyc, 512KB L2 "
                "@10cyc)\nworkload scale: %s, fault maps per point: %u (paper: 1000)\n\n",
                bench::scaleName(config.scale), config.trials);

    const SweepResult result = runSweep(config);

    const auto points = DvfsTable::lowVoltagePoints();
    std::vector<std::string> header = {"scheme"};
    for (const auto& point : points) {
        header.push_back(formatDouble(point.voltage.millivolts(), 0) + "mV");
    }
    TextTable table(header);
    for (const SchemeKind scheme : paperSchemes()) {
        std::vector<std::string> row = {std::string(schemeName(scheme))};
        for (const auto& point : points) {
            const SweepCell& cell = result.cell(scheme, point.voltage);
            std::string text = cell.runs > 0 ? formatDouble(cell.normRuntime.mean(), 3)
                                             : std::string("n/a");
            if (cell.linkFailures > 0) {
                text += " (" + std::to_string(cell.linkFailures) + " yield-loss)";
            }
            row.push_back(text);
        }
        table.addRow(row);
    }
    std::fputs(table.render().c_str(), stdout);

    std::printf("\nRuntime decomposition at 400mV (fractions of cycles, method of [35]):\n");
    TextTable decomposition({"scheme", "busy", "I-fetch stall", "D-mem stall",
                             "branch stall"});
    for (const SchemeKind scheme : paperSchemes()) {
        const SweepCell& cell = result.cell(scheme, points.back().voltage);
        if (cell.runs == 0) continue;
        decomposition.addRow({std::string(schemeName(scheme)),
                              formatPercent(cell.busyFrac.mean()),
                              formatPercent(cell.ifetchFrac.mean()),
                              formatPercent(cell.dmemFrac.mean()),
                              formatPercent(cell.branchFrac.mean())});
    }
    std::fputs(decomposition.render().c_str(), stdout);

    std::printf("\n95%% CI half-widths (normalized runtime, 400mV):\n");
    for (const SchemeKind scheme : paperSchemes()) {
        const SweepCell& cell = result.cell(scheme, points.back().voltage);
        if (cell.runs == 0) continue;
        const auto ci = confidenceInterval(cell.normRuntime);
        std::printf("  %-14s ±%.3f (%.1f%% margin, %u runs)\n",
                    schemeName(scheme).data(), ci.halfWidth, ci.relativeMargin() * 100.0,
                    cell.runs);
    }

    std::vector<bench::BenchMetric> metrics;
    for (const SchemeKind scheme : paperSchemes()) {
        for (const auto& point : points) {
            const SweepCell& cell = result.cell(scheme, point.voltage);
            if (cell.runs == 0) continue;
            const int mv = static_cast<int>(point.voltage.millivolts() + 0.5);
            metrics.push_back(bench::cellMetric("norm_runtime", scheme, mv,
                                                cell.normRuntime, "ratio"));
        }
    }
    // Statistical oracle: worst z-equivalent divergence between this sweep's
    // forensics/link outcomes and the closed-form FFW/BBR models. Exported so
    // bench_check flags any drift from the analytic prediction, not just from
    // the previous run.
    const analysis::CrosscheckReport analytic = analyticCrosscheck(result, config);
    bench::BenchMetric gate;
    gate.name = "model.analytic_vs_mc_max_z";
    gate.value = analytic.maxZ();
    gate.unit = "z";
    gate.samples = analytic.checks.size();
    metrics.push_back(gate);
    std::printf("\nanalytic cross-check: max z = %.2f over %zu checks (%zu skipped) — %s\n",
                analytic.maxZ(), analytic.checks.size(), analytic.skippedCount(),
                analytic.passed() ? "PASS" : "FAIL");

    bench::writeBenchJson("fig10", config, metrics);
    return 0;
}
