// Reproduces Fig. 3: normalized histograms of D-cache spatial locality and
// word reuse rate, per benchmark, over fixed 10000-instruction intervals.
// Shape check: most programs sit at <=60% spatial locality and/or >=60%
// reuse; libquantum_r is the high-locality/low-reuse outlier.
#include <algorithm>

#include "bench_util.h"
#include "common/histogram.h"
#include "common/table.h"
#include "cpu/simulator.h"
#include "linker/linker.h"
#include "schemes/conventional.h"
#include "workload/locality.h"

using namespace voltcache;

int main() {
    const WorkloadScale scale = bench::envScale();
    bench::printHeader("Figure 3",
                       "Spatial locality and word reuse per 10000-instruction interval");
    std::printf("workload scale: %s\n\n", bench::scaleName(scale));

    TextTable summary({"benchmark", "models", "mean spatial locality", "mean word reuse",
                       "intervals"});
    std::vector<std::string> only = bench::envBenchmarks();
    for (const auto& info : benchmarkList()) {
        if (!only.empty() &&
            std::find(only.begin(), only.end(), std::string(info.name)) == only.end()) {
            continue;
        }
        const Module module = buildBenchmark(info.name, scale);
        const LinkOutput linked = link(module);
        L2Cache l2;
        CacheOrganization org;
        ConventionalICache icache(org, l2);
        ConventionalDCache dcache(org, l2);
        Simulator sim(linked.image, module.data, icache, dcache);
        LocalityProfiler profiler;
        sim.setObserver(&profiler);
        (void)sim.run();
        profiler.finalize();

        summary.addRow({std::string(info.name), std::string(info.models),
                        formatPercent(profiler.meanSpatialLocality()),
                        formatPercent(profiler.meanWordReuseRate()),
                        std::to_string(profiler.intervals().size())});

        Histogram spatial(0.0, 1.0, 10);
        Histogram reuse(0.0, 1.0, 10);
        for (const auto& interval : profiler.intervals()) {
            spatial.add(interval.spatialLocality, static_cast<double>(interval.accesses));
            reuse.add(interval.wordReuseRate, static_cast<double>(interval.accesses));
        }
        std::printf("%s — spatial locality histogram (normalized):\n%s", info.name.data(),
                    spatial.render(40).c_str());
        std::printf("%s — word reuse histogram (normalized):\n%s\n", info.name.data(),
                    reuse.render(40).c_str());
    }
    std::printf("Summary:\n%s", summary.render().c_str());
    std::printf("\nShape check: libquantum_r should be the only high-spatial/low-reuse "
                "program;\nmcf_r / patricia / basicmath show low spatial locality with "
                "high reuse.\n");
    return 0;
}
