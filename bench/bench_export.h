// Machine-readable export of the reproduction harness results: each bench
// binary can emit a BENCH_<artifact>.json beside its human-readable table,
// so CI and plotting scripts consume the same numbers the console shows.
// Output directory: $VOLTCACHE_BENCH_DIR (default: current directory).
#pragma once

#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "bench_util.h"
#include "common/json.h"
#include "common/version.h"
#include "core/sweep.h"

namespace voltcache::bench {

/// One exported data point: `value` with a confidence-interval half-width
/// (0 when the metric is deterministic or has < 2 samples).
struct BenchMetric {
    std::string name;
    double value = 0.0;
    double ciHalfWidth = 0.0;
    std::string unit;
    std::uint64_t samples = 0;
};

inline std::string benchOutputPath(const char* artifact) {
    const char* dir = std::getenv("VOLTCACHE_BENCH_DIR");
    std::string path = dir != nullptr && dir[0] != '\0' ? dir : ".";
    path += "/BENCH_";
    path += artifact;
    path += ".json";
    return path;
}

/// Write {artifact, version, seed, trials, scale, metrics:[...]} to
/// BENCH_<artifact>.json. Prints the destination (or a warning on failure);
/// never throws — export must not fail the bench run itself.
inline void writeBenchJson(const char* artifact, const SweepConfig& config,
                           const std::vector<BenchMetric>& metrics) {
    JsonWriter json;
    json.beginObject();
    json.member("artifact", artifact);
    json.member("version", buildVersion());
    json.member("seed", config.baseSeed);
    json.member("trials", config.trials);
    json.member("scale", scaleName(config.scale));
    json.key("metrics");
    json.beginArray();
    for (const BenchMetric& metric : metrics) {
        json.beginObject();
        json.member("name", metric.name);
        json.member("value", metric.value);
        json.member("ci_half_width", metric.ciHalfWidth);
        json.member("unit", metric.unit);
        json.member("n", metric.samples);
        json.endObject();
    }
    json.endArray();
    json.endObject();

    const std::string path = benchOutputPath(artifact);
    std::FILE* out = std::fopen(path.c_str(), "w");
    if (out == nullptr) {
        std::fprintf(stderr, "warning: cannot write %s\n", path.c_str());
        return;
    }
    const std::string text = json.str();
    std::fwrite(text.data(), 1, text.size(), out);
    std::fputc('\n', out);
    std::fclose(out);
    std::printf("\nexported %s\n", path.c_str());
}

/// Metric for one (scheme, voltage) accumulator: "<prefix>/<scheme>/<mv>mV".
inline BenchMetric cellMetric(const std::string& prefix, SchemeKind scheme, int mv,
                              const RunningStats& stats, const std::string& unit) {
    BenchMetric metric;
    metric.name = prefix + "/" + std::string(schemeName(scheme)) + "/" +
                  std::to_string(mv) + "mV";
    metric.value = stats.mean();
    metric.ciHalfWidth = confidenceInterval(stats).halfWidth;
    metric.unit = unit;
    metric.samples = stats.count();
    return metric;
}

} // namespace voltcache::bench
