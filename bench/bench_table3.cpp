// Reproduces Table III: normalized area, normalized static power, and
// latency overhead of each fault-tolerance scheme in low-voltage mode.
// Prints the CACTI-lite structural model next to the published values.
#include "bench_util.h"
#include "common/table.h"
#include "schemes/static_overheads.h"

using namespace voltcache;

int main() {
    bench::printHeader("Table III",
                       "Static overheads per scheme (normalized to the 6T baseline)");

    const auto model = modelOverheads();
    TextTable table({"Scheme", "Area (paper)", "Area (model)", "Static power (paper)",
                     "Static power (model)", "Latency overhead"});
    for (const auto& row : model) {
        const StaticOverhead& paper = paperOverhead(row.scheme);
        table.addRow({std::string(row.scheme), formatPercent(paper.areaFactor - 1.0),
                      formatPercent(row.areaFactor - 1.0),
                      formatPercent(paper.staticPowerFactor - 1.0),
                      formatPercent(row.staticPowerFactor - 1.0),
                      std::to_string(row.latencyCycles) + " cycle" +
                          (row.latencyCycles == 1 ? "" : "s")});
    }
    std::fputs(table.render().c_str(), stdout);
    std::printf("\nFFW area split (paper: 1%% tag + 4.2%% FMAP/StoredPattern): the model\n"
                "derives both from the 8T tag-cell substitution and the two 1-bit/word\n"
                "tag-extension arrays. The experiments consume the paper's exact values;\n"
                "tests assert the model tracks them within 1.5 points.\n");
    return 0;
}
