// Ablation studies of the paper's design choices (extension).
//
//  (1) FFW window policy: the paper's moving window ("missing word stands
//      in the middle", Fig. 5) vs a static first-k window vs plain word
//      disable — quantifies how much the recentering mechanism buys.
//  (2) BBR split threshold: the BreakLargeBlocks limit trades code
//      inflation (smaller pieces = more jumps) against placement failures
//      (bigger pieces need rarer chunks) — the knob behind Fig. 6(b)'s
//      block/chunk matching.
#include "bench_util.h"
#include "common/table.h"
#include "compiler/passes.h"
#include "core/system.h"
#include "linker/linker.h"
#include "schemes/conventional.h"
#include "schemes/ffw.h"
#include "schemes/word_disable.h"

#include <memory>

using namespace voltcache;
using voltcache::literals::operator""_mV;

namespace {

/// Replay one benchmark's D-cache trace through a scheme and count hits.
struct TraceStats {
    double hitRate = 0.0;
    double l2PerAccess = 0.0;
};

class Replayer final : public TraceObserver {
public:
    explicit Replayer(DataCacheScheme& scheme) : scheme_(&scheme) {}
    void onDataAccess(std::uint32_t addr, bool isWrite) override {
        const AccessResult res = isWrite ? scheme_->write(addr) : scheme_->read(addr);
        ++accesses_;
        if (res.l1Hit) ++hits_;
        l2_ += res.l2Reads;
    }
    [[nodiscard]] TraceStats stats() const {
        return {accesses_ ? static_cast<double>(hits_) / accesses_ : 0.0,
                accesses_ ? static_cast<double>(l2_) / accesses_ : 0.0};
    }

private:
    DataCacheScheme* scheme_;
    std::uint64_t accesses_ = 0;
    std::uint64_t hits_ = 0;
    std::uint64_t l2_ = 0;
};

TraceStats replay(const std::string& benchmark, WorkloadScale scale,
                  DataCacheScheme& scheme) {
    const Module module = buildBenchmark(benchmark, scale);
    const LinkOutput linked = link(module);
    L2Cache l2;
    CacheOrganization org;
    ConventionalICache icache(org, l2);
    ConventionalDCache dcache(org, l2);
    Simulator sim(linked.image, module.data, icache, dcache);
    Replayer replayer(scheme);
    sim.setObserver(&replayer);
    (void)sim.run();
    return replayer.stats();
}

} // namespace

int main() {
    const WorkloadScale scale = bench::envScale();
    bench::printHeader("Ablations (extension)",
                       "FFW window-policy ablation and BBR split-threshold sweep");

    // ---- (1) FFW window policies, D-cache trace replay at 400mV ----
    std::printf("(1) D-cache hit rate at 400mV by window policy:\n");
    TextTable ffwTable({"benchmark", "moving window (paper)", "static first-k",
                        "fill-centered only", "simple word disable"});
    const FaultMapGenerator generator;
    for (const char* name : {"basicmath", "crc32", "mcf_r", "libquantum_r"}) {
        Rng rng(33);
        const CacheOrganization org;
        const FaultMap map = generator.generate(rng, 400_mV, org.lines(),
                                                org.wordsPerBlock());
        auto run = [&](auto&& makeScheme) {
            L2Cache l2;
            auto scheme = makeScheme(l2);
            return replay(name, scale == WorkloadScale::Reference ? WorkloadScale::Small
                                                                  : scale,
                          *scheme);
        };
        const auto moving = run([&](L2Cache& l2) {
            return std::make_unique<FfwDCache>(org, map, l2);
        });
        FfwConfig firstK;
        firstK.fillPolicy = FfwConfig::FillPolicy::FirstK;
        firstK.recenterOnWordMiss = false;
        const auto staticK = run([&](L2Cache& l2) {
            return std::make_unique<FfwDCache>(org, map, l2, firstK);
        });
        FfwConfig centeredOnly;
        centeredOnly.recenterOnWordMiss = false;
        const auto centered = run([&](L2Cache& l2) {
            return std::make_unique<FfwDCache>(org, map, l2, centeredOnly);
        });
        const auto wdis = run([&](L2Cache& l2) {
            return std::make_unique<SimpleWordDisableDCache>(org, map, l2);
        });
        ffwTable.addRow({name, formatPercent(moving.hitRate), formatPercent(staticK.hitRate),
                         formatPercent(centered.hitRate), formatPercent(wdis.hitRate)});
    }
    std::fputs(ffwTable.render().c_str(), stdout);
    std::printf("\n");

    // ---- (2) BBR split threshold: code inflation vs placement failures ----
    std::printf("(2) BBR split threshold at 400mV (benchmark: dijkstra, %u chips):\n",
                bench::envTrials() * 10);
    TextTable bbrTable({"max block words", "code words", "inflation", "gap words (mean)",
                        "placement failures"});
    const Module original = buildBenchmark("dijkstra", WorkloadScale::Tiny);
    const std::uint32_t baseWords = original.totalCodeWords();
    for (const std::uint32_t maxWords : {6u, 8u, 12u, 16u, 24u}) {
        Module module = buildBenchmark("dijkstra", WorkloadScale::Tiny);
        applyBbrTransforms(module, maxWords);
        std::uint32_t failures = 0;
        RunningStats gaps;
        const std::uint32_t chips = bench::envTrials() * 10;
        for (std::uint32_t chip = 0; chip < chips; ++chip) {
            Rng rng(500 + chip);
            const FaultMap map = generator.generate(rng, 400_mV, 1024, 8);
            LinkOptions options;
            options.bbrPlacement = true;
            options.icacheFaultMap = &map;
            try {
                const LinkOutput out = link(module, options);
                gaps.add(out.stats.gapWords);
            } catch (const LinkError&) {
                ++failures;
            }
        }
        bbrTable.addRow({std::to_string(maxWords), std::to_string(module.totalCodeWords()),
                         formatPercent(static_cast<double>(module.totalCodeWords()) /
                                           baseWords -
                                       1.0),
                         formatDouble(gaps.mean(), 0),
                         std::to_string(failures) + "/" + std::to_string(chips)});
    }
    std::fputs(bbrTable.render().c_str(), stdout);
    std::printf("\nReading guide: the moving window recovers most of what static\n"
                "windows lose on locality shifts; splitting below ~8 words inflates\n"
                "code for no placement benefit, while thresholds past ~16 start\n"
                "failing chips at 400mV — kDefaultMaxBlockWords = 12 sits between.\n");
    return 0;
}
