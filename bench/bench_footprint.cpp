// Extension study: the live-footprint limit the paper defers to future work
// (Section V: "a comprehensive study of the limit of application live
// footprints is a part of our future work").
//
// Sweeps a pointer-chasing kernel's live data footprint at 400mV and
// compares FFW against FBA+ (1024 entries). Prediction: FBA+ wins while the
// defective words of its resident lines fit the buffer (footprint ≲ 16KB at
// P_fail(word) = 27.5%, i.e. ~1024/2.2 lines); past that its entries thrash
// and FFW's windows — which carry no per-word capacity limit — take over.
// This is precisely why the paper's 100M-instruction SPEC traces put FBA+
// above FFW+BBR in Fig. 11 while small embedded kernels need not.
#include "bench_util.h"
#include "common/table.h"
#include "compiler/passes.h"
#include "core/system.h"
#include "workload/synthetic.h"

using namespace voltcache;
using voltcache::literals::operator""_mV;

int main() {
    const std::uint32_t trials = bench::envTrials();
    bench::printHeader("Footprint study (extension)",
                       "FFW vs FBA+ on a pointer chase as the live footprint grows "
                       "(400mV, P_fail = 1e-2/bit)");

    TextTable table({"footprint", "live faulty words", "ffw L2/1k", "fba+ L2/1k",
                     "ffw runtime (ms)", "fba+ runtime (ms)", "winner"});
    for (const std::uint32_t cycleRecords : {256u, 512u, 1024u, 2048u, 4096u}) {
        PointerChaseParams params;
        params.poolRecords = 8192;
        params.cycleRecords = cycleRecords;
        params.wordsPerVisit = 3;
        params.steps = 40000;
        Module module = buildPointerChase(params);
        Module bbrModule = module;
        applyBbrTransforms(bbrModule);

        RunningStats ffwL2;
        RunningStats fbaL2;
        RunningStats ffwTime;
        RunningStats fbaTime;
        for (std::uint32_t trial = 0; trial < trials; ++trial) {
            for (const SchemeKind scheme : {SchemeKind::FfwBbr, SchemeKind::FbaPlus}) {
                SystemConfig config;
                config.scheme = scheme;
                config.op = DvfsTable::at(400_mV);
                config.faultMapSeed = 7000 + trial;
                const SystemResult result =
                    simulateSystem(module, &bbrModule, config);
                if (result.linkFailed) continue;
                if (scheme == SchemeKind::FfwBbr) {
                    ffwL2.add(result.run.l2AccessesPerKilo());
                    ffwTime.add(result.runtimeSeconds * 1e3);
                } else {
                    fbaL2.add(result.run.l2AccessesPerKilo());
                    fbaTime.add(result.runtimeSeconds * 1e3);
                }
            }
        }
        // Expected concurrently-live defective words: lines * P_fail(word)*8.
        const double pWord = FailureModel{}.pFailStructure(400_mV, 32);
        const double liveFaulty = cycleRecords * 8 * pWord;
        const bool ffwWins = ffwTime.mean() < fbaTime.mean();
        table.addRow({std::to_string(cycleRecords * 32 / 1024) + "KB",
                      formatDouble(liveFaulty, 0), formatDouble(ffwL2.mean(), 1),
                      formatDouble(fbaL2.mean(), 1), formatDouble(ffwTime.mean(), 3),
                      formatDouble(fbaTime.mean(), 3),
                      ffwWins ? "ffw+bbr" : "fba+"});
    }
    std::fputs(table.render().c_str(), stdout);
    std::printf("\nReading guide: once the live faulty-word population passes the\n"
                "1024-entry buffer (~%.0f live lines), FBA+ thrashes while FFW's\n"
                "per-line windows keep scaling — the regime the paper's SPEC traces\n"
                "live in.\n",
                1024.0 / (8 * FailureModel{}.pFailStructure(400_mV, 32)));
    return 0;
}
