// Reproduces Fig. 6: (a) the worst-case distribution of the 32KB
// instruction cache's effective capacity when executing basicmath at 400mV,
// together with the application's per-interval code footprint (1M
// instruction intervals); (b) the distribution of basic-block sizes after
// the BBR transformations versus the distribution of fault-free chunk
// sizes. Shape check: despite the defects, the remaining fault-free words
// comfortably cover each interval's working set; blocks of ~5 instructions
// dominate and fit typical chunks.
#include <set>

#include "bench_util.h"
#include "common/histogram.h"
#include "common/stats.h"
#include "common/table.h"
#include "compiler/cfg.h"
#include "compiler/passes.h"
#include "cpu/simulator.h"
#include "linker/linker.h"
#include "power/dvfs.h"
#include "schemes/conventional.h"

using namespace voltcache;
using voltcache::literals::operator""_mV;

namespace {

/// Tracks the unique code words fetched in fixed instruction intervals.
class FootprintObserver final : public TraceObserver {
public:
    explicit FootprintObserver(std::uint64_t interval) : interval_(interval) {}

    void onInstruction(std::uint32_t pc, const Instruction&) override {
        words_.insert(pc / 4);
        if (++count_ >= interval_) {
            footprints_.push_back(static_cast<std::uint32_t>(words_.size()));
            words_.clear();
            count_ = 0;
        }
    }

    void finalize() {
        if (!words_.empty()) {
            footprints_.push_back(static_cast<std::uint32_t>(words_.size()));
        }
    }

    [[nodiscard]] const std::vector<std::uint32_t>& footprints() const noexcept {
        return footprints_;
    }

private:
    std::uint64_t interval_;
    std::uint64_t count_ = 0;
    std::set<std::uint32_t> words_;
    std::vector<std::uint32_t> footprints_;
};

} // namespace

int main() {
    const std::uint32_t trials = std::max<std::uint32_t>(bench::envTrials() * 20, 40);
    bench::printHeader("Figure 6",
                       "I-cache effective capacity and block/chunk size distributions "
                       "(basicmath @ 400mV)");

    // (a) effective-capacity distribution over Monte Carlo fault maps.
    const FaultMapGenerator generator;
    Rng rng(2024);
    Histogram capacity(0.6, 0.85, 10);
    Histogram chunkSizes(0.0, 16.0, 16);
    RunningStats chunkStats;
    for (std::uint32_t trial = 0; trial < trials; ++trial) {
        const FaultMap map = generator.generate(rng, 400_mV, 1024, 8);
        capacity.add(map.effectiveCapacityFraction());
        for (const auto& chunk : map.faultFreeChunks()) {
            chunkSizes.add(chunk.length);
            chunkStats.add(chunk.length);
        }
    }
    std::printf("(a) effective capacity fraction over %u fault maps at 400mV "
                "(P_fail = 1e-2/bit):\n%s\n",
                trials, capacity.render(40).c_str());

    // The application's per-interval instruction footprint.
    const WorkloadScale scale = bench::envScale();
    Module module = buildBenchmark("basicmath", scale);
    Module bbrModule = module;
    applyBbrTransforms(bbrModule);
    const LinkOutput linked = link(bbrModule);
    L2Cache l2;
    CacheOrganization org;
    ConventionalICache icache(org, l2);
    ConventionalDCache dcache(org, l2);
    Simulator sim(linked.image, bbrModule.data, icache, dcache);
    const std::uint64_t interval = scale == WorkloadScale::Tiny ? 100000 : 1000000;
    FootprintObserver observer(interval);
    sim.setObserver(&observer);
    (void)sim.run();
    observer.finalize();

    RunningStats footprint;
    for (const auto words : observer.footprints()) footprint.add(words);
    std::printf("basicmath code footprint per %lluk-instruction interval: mean %.0f "
                "words, max %.0f words\n",
                static_cast<unsigned long long>(interval / 1000), footprint.mean(),
                footprint.max());
    std::printf("available fault-free words at 400mV: ~%.0f of 8192 (%.1f%%)\n\n",
                8192 * capacity.sampleMean(), capacity.sampleMean() * 100.0);

    // (b) basic-block size vs fault-free chunk size distributions.
    Histogram blockSizes(0.0, 16.0, 16);
    RunningStats blockStats;
    for (const auto size : blockSizesWords(bbrModule)) {
        blockSizes.add(size);
        blockStats.add(size);
    }
    std::printf("(b) basic-block sizes after BBR transformation (words):\n%s",
                blockSizes.render(40).c_str());
    std::printf("    mean %.1f words (paper: typical blocks of 5-6 instructions)\n\n",
                blockStats.mean());
    std::printf("fault-free chunk sizes at 400mV (words, clipped at 16):\n%s",
                chunkSizes.render(40).c_str());
    std::printf("    mean %.1f words\n\n", chunkStats.mean());
    std::printf("Shape check: the interval footprint sits well below the remaining\n"
                "fault-free capacity, and most blocks fit most chunks — sharing is\n"
                "needed only for the largest blocks, as in the paper.\n");
    return 0;
}
