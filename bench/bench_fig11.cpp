// Reproduces Fig. 11: L2 cache accesses per 1000 instructions at each
// low-voltage point (demand reads from both L1s; write-through traffic is
// accounted separately, as a constant across schemes).
//
// Shape check (paper Section VI-B): ffw+bbr is the only architectural
// scheme whose L2 traffic stays acceptable at 400mV; simple-wdis explodes
// once nearly every line contains defective words.
#include "bench_export.h"
#include "bench_util.h"
#include "common/table.h"

using namespace voltcache;

int main() {
    const SweepConfig config = bench::defaultSweepConfig();
    bench::printHeader("Figure 11", "L2 accesses per 1000 instructions");
    std::printf("workload scale: %s, fault maps per point: %u\n\n",
                bench::scaleName(config.scale), config.trials);

    const SweepResult result = runSweep(config);

    const auto points = DvfsTable::lowVoltagePoints();
    std::vector<std::string> header = {"scheme"};
    for (const auto& point : points) {
        header.push_back(formatDouble(point.voltage.millivolts(), 0) + "mV");
    }
    TextTable table(header);
    for (const SchemeKind scheme : paperSchemes()) {
        std::vector<std::string> row = {std::string(schemeName(scheme))};
        for (const auto& point : points) {
            const SweepCell& cell = result.cell(scheme, point.voltage);
            row.push_back(cell.runs > 0 ? formatDouble(cell.l2PerKilo.mean(), 1)
                                        : std::string("n/a"));
        }
        table.addRow(row);
    }
    std::fputs(table.render().c_str(), stdout);

    const SweepCell& ffw = result.cell(SchemeKind::FfwBbr, points.back().voltage);
    const SweepCell& wdis = result.cell(SchemeKind::SimpleWordDisable, points.back().voltage);
    std::printf("\nAt 400mV ffw+bbr issues %.1fx fewer L2 accesses than simple-wdis —\n"
                "capturing likely accesses in the D-cache windows and keeping fetches\n"
                "off defective I-cache words (paper: the only acceptable increase).\n",
                wdis.l2PerKilo.mean() / ffw.l2PerKilo.mean());

    std::vector<bench::BenchMetric> metrics;
    for (const SchemeKind scheme : paperSchemes()) {
        for (const auto& point : points) {
            const SweepCell& cell = result.cell(scheme, point.voltage);
            if (cell.runs == 0) continue;
            const int mv = static_cast<int>(point.voltage.millivolts() + 0.5);
            metrics.push_back(bench::cellMetric("l2_per_kilo", scheme, mv,
                                                cell.l2PerKilo, "accesses/1k-instr"));
        }
    }
    bench::writeBenchJson("fig11", config, metrics);
    return 0;
}
