// Reproduces Fig. 12: energy per instruction at each low-voltage point,
// normalized to the conventional 6T cache pinned at Vccmin = 760mV
// (geometric mean across simulations, as in the paper).
//
// Headline check (paper Section VI-C): at 400mV ffw+bbr reduces EPI by
// ~64%, beating the 8T cache (~62%) at a fraction of its area; ffw+bbr is
// the only architectural scheme whose EPI keeps falling all the way to
// 400mV.
#include <cmath>

#include "bench_export.h"
#include "bench_util.h"
#include "common/table.h"
#include "core/analytic_gate.h"

using namespace voltcache;

namespace {

/// Geometric mean of the per-run normalized EPI (the paper reports geomean;
/// RunningStats holds the arithmetic samples, so recompute from the
/// per-benchmark cells).
double geomeanEpi(const SweepResult& result, SchemeKind scheme, int mv) {
    double logSum = 0.0;
    int count = 0;
    for (const auto& [key, cell] : result.perBenchmark) {
        if (std::get<1>(key) != scheme || std::get<2>(key) != mv) continue;
        if (cell.runs == 0) continue;
        logSum += std::log(cell.normEpi.mean());
        ++count;
    }
    return count > 0 ? std::exp(logSum / count) : 0.0;
}

} // namespace

int main() {
    const SweepConfig config = bench::defaultSweepConfig();
    bench::printHeader("Figure 12",
                       "Normalized EPI vs the conventional cache at Vccmin = 760mV");
    std::printf("workload scale: %s, fault maps per point: %u\n\n",
                bench::scaleName(config.scale), config.trials);

    SweepConfig withBaselines = config;
    withBaselines.schemes = paperSchemes();
    withBaselines.schemes.push_back(SchemeKind::DefectFree);
    const SweepResult result = runSweep(withBaselines);

    const auto points = DvfsTable::lowVoltagePoints();
    std::vector<std::string> header = {"scheme"};
    for (const auto& point : points) {
        header.push_back(formatDouble(point.voltage.millivolts(), 0) + "mV");
    }
    TextTable table(header);
    std::vector<SchemeKind> rows = withBaselines.schemes;
    for (const SchemeKind scheme : rows) {
        std::vector<std::string> row = {std::string(schemeName(scheme))};
        for (const auto& point : points) {
            const int mv = static_cast<int>(std::lround(point.voltage.millivolts()));
            const double geo = geomeanEpi(result, scheme, mv);
            row.push_back(geo > 0.0 ? formatDouble(geo, 3) : std::string("n/a"));
        }
        table.addRow(row);
    }
    std::fputs(table.render().c_str(), stdout);

    const double ffw = geomeanEpi(result, SchemeKind::FfwBbr, 400);
    const double t8 = geomeanEpi(result, SchemeKind::Robust8T, 400);
    std::printf("\nHeadline at 400mV:\n");
    std::printf("  ffw+bbr EPI reduction vs conventional@760mV: %.1f%% (paper: 64%%)\n",
                (1.0 - ffw) * 100.0);
    std::printf("  8T      EPI reduction vs conventional@760mV: %.1f%% (paper: 62%%)\n",
                (1.0 - t8) * 100.0);
    std::printf("  ffw+bbr beats 8T: %s — and at 5.2%%/1.1%% area overhead instead of "
                "28%%.\n",
                ffw < t8 ? "YES" : "NO");

    // Exported value is the per-benchmark geomean; the CI half-width is the
    // arithmetic one from the pooled cell (an approximation — the paper's
    // headline is the geomean, but spread is easiest to read arithmetically).
    std::vector<bench::BenchMetric> metrics;
    for (const SchemeKind scheme : rows) {
        for (const auto& point : points) {
            const int mv = static_cast<int>(std::lround(point.voltage.millivolts()));
            const double geo = geomeanEpi(result, scheme, mv);
            if (geo <= 0.0) continue;
            const SweepCell& cell = result.cell(scheme, point.voltage);
            bench::BenchMetric metric =
                bench::cellMetric("norm_epi_geomean", scheme, mv, cell.normEpi, "ratio");
            metric.value = geo;
            metrics.push_back(metric);
        }
    }
    // Statistical oracle over the same sweep (baselines included): bench_check
    // tracks the worst analytic-vs-MC z so model drift gates the artifact.
    const analysis::CrosscheckReport analytic = analyticCrosscheck(result, withBaselines);
    bench::BenchMetric gate;
    gate.name = "model.analytic_vs_mc_max_z";
    gate.value = analytic.maxZ();
    gate.unit = "z";
    gate.samples = analytic.checks.size();
    metrics.push_back(gate);
    std::printf("\nanalytic cross-check: max z = %.2f over %zu checks (%zu skipped) — %s\n",
                analytic.maxZ(), analytic.checks.size(), analytic.skippedCount(),
                analytic.passed() ? "PASS" : "FAIL");

    bench::writeBenchJson("fig12", config, metrics);
    return 0;
}
