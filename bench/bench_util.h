// Shared helpers for the reproduction harness binaries. Each binary
// regenerates one table or figure of the paper; environment variables scale
// the Monte Carlo effort:
//   VOLTCACHE_TRIALS  fault maps per DVFS point   (default 3; paper: 1000)
//   VOLTCACHE_SCALE   tiny | small | reference    (default small)
//   VOLTCACHE_BENCHMARKS  comma-separated subset  (default: all ten)
#pragma once

#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "core/sweep.h"
#include "workload/workload.h"

namespace voltcache::bench {

inline std::uint32_t envTrials(std::uint32_t fallback = 3) {
    if (const char* value = std::getenv("VOLTCACHE_TRIALS")) {
        return static_cast<std::uint32_t>(std::strtoul(value, nullptr, 0));
    }
    return fallback;
}

inline WorkloadScale envScale(WorkloadScale fallback = WorkloadScale::Small) {
    if (const char* value = std::getenv("VOLTCACHE_SCALE")) {
        const std::string scale = value;
        if (scale == "tiny") return WorkloadScale::Tiny;
        if (scale == "small") return WorkloadScale::Small;
        if (scale == "reference") return WorkloadScale::Reference;
    }
    return fallback;
}

inline std::vector<std::string> envBenchmarks() {
    std::vector<std::string> names;
    if (const char* value = std::getenv("VOLTCACHE_BENCHMARKS")) {
        std::string raw = value;
        std::size_t pos = 0;
        while (pos < raw.size()) {
            const std::size_t comma = raw.find(',', pos);
            const std::size_t end = comma == std::string::npos ? raw.size() : comma;
            if (end > pos) names.push_back(raw.substr(pos, end - pos));
            pos = end + 1;
        }
    }
    return names;
}

inline SweepConfig defaultSweepConfig() {
    SweepConfig config;
    config.trials = envTrials();
    config.scale = envScale();
    config.benchmarks = envBenchmarks();
    return config;
}

inline void printHeader(const char* artifact, const char* caption) {
    std::printf("================================================================\n");
    std::printf("voltcache reproduction — %s\n", artifact);
    std::printf("%s\n", caption);
    std::printf("================================================================\n\n");
}

inline const char* scaleName(WorkloadScale scale) {
    switch (scale) {
        case WorkloadScale::Tiny: return "tiny";
        case WorkloadScale::Small: return "small";
        case WorkloadScale::Reference: return "reference";
    }
    return "?";
}

} // namespace voltcache::bench
