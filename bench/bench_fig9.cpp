// Reproduces Fig. 9: the timeline of each critical path in the FFW-based
// data cache, in FO4 units. The paper's claim: the StoredPattern and FMAP
// paths complete at 39.4 FO4, before the data array needs its column-mux
// select at 42.2 FO4 — so FFW adds zero cycles. Also prints the BBR
// dual-mode I-cache path and the 8T array that motivates its +1 cycle.
#include "bench_util.h"
#include "common/table.h"
#include "sram/cacti_lite.h"

using namespace voltcache;

int main() {
    bench::printHeader("Figure 9", "FO4 timeline of each critical path in the FFW D-cache");

    const CacheOrganization org;
    const FfwTimeline t = CactiLite::ffwTimeline(org);

    TextTable components({"array", "decode", "wordline+bitline", "sense", "ready (FO4)"});
    auto addArray = [&](const char* name, const ArrayTiming& a) {
        components.addRow({name, formatDouble(a.decodeFo4, 1),
                           formatDouble(a.wordlineBitlineFo4, 1), formatDouble(a.senseFo4, 1),
                           formatDouble(a.toColumnMuxFo4(), 1)});
    };
    addArray("data array (32KB, 6T)", t.dataArray);
    addArray("tag array (8T)", t.tagArray);
    addArray("stored pattern (8T)", t.storedPatternArray);
    addArray("fault pattern / FMAP (8T)", t.faultPatternArray);
    std::fputs(components.render().c_str(), stdout);

    std::printf("\nTimeline (FO4 from row-address arrival):\n");
    TextTable timeline({"event", "FO4", "paper"});
    timeline.addRow({"tag match + way encode ready", formatDouble(t.tagMatchReadyFo4(), 1),
                     "-"});
    timeline.addRow({"hit signal (StoredPattern -> MUX1 -> MUX2)",
                     formatDouble(t.hitSignalReadyFo4(), 1), "39.4"});
    timeline.addRow({"remapped word offset (FMAP -> MUX3 -> remap)",
                     formatDouble(t.remappedOffsetReadyFo4(), 1), "39.4"});
    timeline.addRow({"data array needs column-mux select",
                     formatDouble(t.dataColumnMuxNeededFo4(), 1), "42.2"});
    timeline.addRow({"data array total (incl. mux + drive)",
                     formatDouble(t.dataArray.totalFo4(), 1), "-"});
    std::fputs(timeline.render().c_str(), stdout);
    std::printf("\nFFW zero-latency-overhead condition holds: %s\n",
                t.zeroLatencyOverhead() ? "YES" : "NO");

    const auto bbr = CactiLite::bbrTiming(org);
    std::printf("\nBBR I-cache: tag path %.1f + mode mux %.1f = %.1f FO4 vs data path "
                "%.1f FO4 -> zero overhead: %s\n",
                bbr.tagPathFo4, bbr.addedMuxFo4, bbr.tagPathFo4 + bbr.addedMuxFo4,
                bbr.dataPathFo4, bbr.zeroLatencyOverhead() ? "YES" : "NO");

    const ArrayTiming all8T =
        CactiLite::arrayTiming(org.dataArrayBits(), org.lines(), SramCell::C8T);
    std::printf("\nAll-8T data array reaches the column mux at %.1f FO4 (6T: %.1f) — the\n"
                "slack is gone, which is why the 8T cache pays +1 cycle (Table III).\n",
                all8T.toColumnMuxFo4(), t.dataArray.toColumnMuxFo4());
    return 0;
}
