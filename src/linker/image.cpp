#include "linker/image.h"

#include <stdexcept>

#include "common/contracts.h"

namespace voltcache {

Image::Image(std::uint32_t baseAddr, std::uint32_t sizeWords) : baseAddr_(baseAddr) {
    VC_EXPECTS(baseAddr % 4 == 0);
    words_.assign(sizeWords, ImageWord{});
}

const ImageWord& Image::at(std::uint32_t byteAddr) const {
    VC_EXPECTS(contains(byteAddr));
    VC_EXPECTS(byteAddr % 4 == 0);
    return words_[(byteAddr - baseAddr_) / 4];
}

ImageWord& Image::at(std::uint32_t byteAddr) {
    VC_EXPECTS(contains(byteAddr));
    VC_EXPECTS(byteAddr % 4 == 0);
    decodeDirty_ = true;
    return words_[(byteAddr - baseAddr_) / 4];
}

const Instruction& Image::fetchChecked(std::uint32_t byteAddr) const {
    const ImageWord& word = at(byteAddr);
    if (word.kind != ImageWord::Kind::Instruction) {
        throw std::logic_error("Image::fetch: address " + std::to_string(byteAddr) +
                               " is not an instruction (control flow escaped the code)");
    }
    return word.inst;
}

void Image::rebuildDecodeCache() const {
    decoded_.assign(words_.size(), Instruction{});
    isInstruction_.assign(words_.size(), 0);
    for (std::size_t i = 0; i < words_.size(); ++i) {
        if (words_[i].kind == ImageWord::Kind::Instruction) {
            decoded_[i] = words_[i].inst;
            isInstruction_[i] = 1;
        }
    }
    decodeDirty_ = false;
}

std::vector<std::int32_t> Image::encodedWords() const {
    std::vector<std::int32_t> out;
    out.reserve(words_.size());
    for (const auto& word : words_) {
        switch (word.kind) {
            case ImageWord::Kind::Instruction:
                out.push_back(static_cast<std::int32_t>(encode(word.inst)));
                break;
            case ImageWord::Kind::Literal: out.push_back(word.value); break;
            case ImageWord::Kind::Gap: out.push_back(0); break;
        }
    }
    return out;
}

std::uint32_t Image::occupiedWords() const noexcept {
    std::uint32_t count = 0;
    for (const auto& word : words_) {
        if (word.kind != ImageWord::Kind::Gap) ++count;
    }
    return count;
}

} // namespace voltcache
