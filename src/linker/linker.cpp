#include "linker/linker.h"

#include <bit>
#include <cstdlib>
#include <string>
#include <vector>

#include "common/contracts.h"
#include "obs/metrics.h"
#include "obs/span.h"
#include "obs/trace.h"

namespace voltcache {

const char* linkFailCauseName(LinkFailCause cause) noexcept {
    switch (cause) {
        case LinkFailCause::None: return "none";
        case LinkFailCause::NoChunk: return "no_chunk";
        case LinkFailCause::LiteralReach: return "literal_reach";
        case LinkFailCause::RelocOverflow: return "reloc_overflow";
        case LinkFailCause::Shape: return "shape";
        case LinkFailCause::Verifier: return "verifier";
        case LinkFailCause::Other: return "other";
    }
    return "other";
}

namespace {

class LinkContext {
public:
    LinkContext(const Module& module, const LinkOptions& options)
        : module_(module), options_(options) {
        if (options_.bbrPlacement) {
            if (options_.icacheFaultMap == nullptr) {
                throw LinkError("BBR placement requires an I-cache fault map",
                                LinkFailCause::Shape);
            }
            cacheWords_ = options_.icacheFaultMap->totalWords();
            scanWords_ = obs::MetricsRegistry::global().histogram("link.scan_words");
        }
    }

    LinkOutput run() {
        checkShape();
        place();
        return emit();
    }

private:
    /// Outcome of one first-fit scan, for the placement stats/trace.
    struct Fit {
        std::uint32_t word = 0;     ///< placement (flat word address)
        std::uint32_t restarts = 0; ///< scans restarted past a defective word
        std::uint32_t wraps = 0;    ///< cache-size boundaries crossed
    };

    /// First word address >= start where `size` consecutive words all map
    /// to fault-free cache words (Algorithm 1's while loop; the modular
    /// cacheAddr computation makes the scan wrap around the cache).
    Fit findFit(std::uint32_t startWord, std::uint32_t size) const {
        if (!options_.bbrPlacement || size == 0) return Fit{startWord, 0, 0};
        const FaultMap& map = *options_.icacheFaultMap;
        if (size > cacheWords_) {
            throw LinkError("basic block of " + std::to_string(size) +
                            " words exceeds the instruction cache (" +
                            std::to_string(cacheWords_) + " words)",
                            LinkFailCause::NoChunk);
        }
        std::uint32_t word = startWord;
        std::uint32_t restarts = 0;
        while (true) {
            if (word - startWord > cacheWords_ + size) {
                if (obs::TraceSink* sink = obs::traceSink()) {
                    sink->record("link.fail", "linker",
                                 {{"size", size},
                                  {"scanned", word - startWord},
                                  {"restarts", restarts}});
                }
                obs::MetricsRegistry::global().add("link.failures", {}, 1);
                throw LinkError("no fault-free chunk of " + std::to_string(size) +
                                " words: placement failed (yield loss)",
                                LinkFailCause::NoChunk);
            }
            bool fits = true;
            for (std::uint32_t j = 0; j < size; ++j) {
                if (map.isFaultyFlat((word + j) % cacheWords_)) {
                    // Restart just past the defective word.
                    word = word + j + 1;
                    ++restarts;
                    fits = false;
                    break;
                }
            }
            if (fits) {
                // Boundaries of the cache-sized window crossed between the
                // scan start and the placed block's last word.
                const std::uint32_t wraps =
                    (word + size - 1) / cacheWords_ - startWord / cacheWords_;
                return Fit{word, restarts, wraps};
            }
        }
    }

    void checkShape() const {
        for (const auto& fn : module_.functions) {
            for (std::size_t b = 0; b < fn.blocks.size(); ++b) {
                const auto& block = fn.blocks[b];
                const bool last = b + 1 == fn.blocks.size();
                if (!block.hasFallthrough()) continue;
                if (options_.bbrPlacement) {
                    throw LinkError("BBR placement on fall-through block '" + fn.name + ":" +
                                    block.label +
                                    "': run the BBR code transformations first",
                                    LinkFailCause::Shape);
                }
                if (last) {
                    throw LinkError("function '" + fn.name +
                                    "' falls through past its last block",
                                    LinkFailCause::Shape);
                }
                if (!block.literalPool.empty()) {
                    throw LinkError("block '" + fn.name + ":" + block.label +
                                    "' falls through into its own literal pool",
                                    LinkFailCause::Shape);
                }
            }
        }
    }

    void place() {
        std::uint32_t wordPtr = options_.codeBase / 4;
        const std::uint32_t firstWord = wordPtr;
        blockAddr_.resize(module_.functions.size());
        poolAddr_.resize(module_.functions.size(), 0);
        for (std::size_t f = 0; f < module_.functions.size(); ++f) {
            const auto& fn = module_.functions[f];
            blockAddr_[f].resize(fn.blocks.size());
            for (std::size_t b = 0; b < fn.blocks.size(); ++b) {
                const std::uint32_t size = fn.blocks[b].sizeWords();
                const Fit fit = findFit(wordPtr, size);
                notePlacement(fit, wordPtr, size);
                stats_.gapWords += fit.word - wordPtr;
                blockAddr_[f][b] = fit.word * 4;
                wordPtr = fit.word + size;
                ++stats_.blocksPlaced;
                stats_.codeWords += size;
                stats_.largestBlockWords = std::max(stats_.largestBlockWords, size);
            }
            if (!fn.sharedLiteralPool.empty()) {
                const auto size = static_cast<std::uint32_t>(fn.sharedLiteralPool.size());
                const Fit fit = findFit(wordPtr, size);
                notePlacement(fit, wordPtr, size);
                stats_.gapWords += fit.word - wordPtr;
                poolAddr_[f] = fit.word * 4;
                wordPtr = fit.word + size;
                stats_.codeWords += size;
            }
        }
        stats_.imageWords = wordPtr - firstWord;
    }

    /// Fold one first-fit outcome into stats, the scan-length histogram,
    /// and (when a sink is attached) the trace.
    void notePlacement(const Fit& fit, std::uint32_t startWord, std::uint32_t size) {
        if (!options_.bbrPlacement) return;
        stats_.scanRestarts += fit.restarts;
        stats_.wrapArounds += fit.wraps;
        const std::uint32_t displacement = fit.word - startWord;
        const std::size_t bucket =
            displacement == 0
                ? 0
                : std::min<std::size_t>(std::bit_width(displacement), stats_.scanHist.size() - 1);
        ++stats_.scanHist[bucket];
        scanWords_.observe(displacement);
        if (obs::TraceSink* sink = obs::traceSink()) {
            sink->record("link.place", "linker",
                         {{"block", stats_.blocksPlaced},
                          {"size", size},
                          {"scanned", fit.word - startWord},
                          {"restarts", fit.restarts},
                          {"wraps", fit.wraps}});
        }
    }

    std::uint32_t resolveTarget(std::size_t f, const Relocation& reloc,
                                std::uint32_t blockByteAddr, std::uint32_t instWordIndex,
                                const BasicBlock& block) const {
        switch (reloc.kind) {
            case RelocKind::BlockTarget: return blockAddr_[f][reloc.targetBlock];
            case RelocKind::FunctionTarget: {
                for (std::size_t g = 0; g < module_.functions.size(); ++g) {
                    if (module_.functions[g].name == reloc.targetFunction) {
                        return blockAddr_[g][0];
                    }
                }
                throw LinkError("unresolved call to '" + reloc.targetFunction + "'",
                                LinkFailCause::Shape);
            }
            case RelocKind::SharedLiteral: return poolAddr_[f] + reloc.literalIndex * 4;
            case RelocKind::BlockLiteral:
                return blockByteAddr +
                       static_cast<std::uint32_t>(block.insts.size()) * 4 +
                       reloc.literalIndex * 4;
        }
        VC_ENSURES(false);
        return instWordIndex; // unreachable
    }

    LinkOutput emit() {
        Image image(options_.codeBase, stats_.imageWords);
        for (std::size_t f = 0; f < module_.functions.size(); ++f) {
            const auto& fn = module_.functions[f];
            for (std::size_t b = 0; b < fn.blocks.size(); ++b) {
                const auto& block = fn.blocks[b];
                const std::uint32_t blockByte = blockAddr_[f][b];
                for (std::size_t i = 0; i < block.insts.size(); ++i) {
                    const std::uint32_t instAddr =
                        blockByte + static_cast<std::uint32_t>(i) * 4;
                    Instruction inst = block.insts[i];
                    if (const auto* reloc = block.relocFor(static_cast<std::uint32_t>(i))) {
                        const std::uint32_t target = resolveTarget(
                            f, *reloc, blockByte, static_cast<std::uint32_t>(i), block);
                        const auto delta =
                            (static_cast<std::int64_t>(target) - instAddr) / 4;
                        inst.imm = static_cast<std::int32_t>(delta);
                        if (inst.op == Opcode::Ldl &&
                            static_cast<std::uint32_t>(std::abs(inst.imm)) >
                                options_.literalReachWords) {
                            throw LinkError("literal out of PC-relative reach in '" +
                                            fn.name + ":" + block.label +
                                            "': run MoveLiteralPools",
                                            LinkFailCause::LiteralReach);
                        }
                    }
                    try {
                        (void)encode(inst); // displacement range check
                    } catch (const EncodingError& e) {
                        throw LinkError("relocation overflow in '" + fn.name + ":" +
                                        block.label + "': " + e.what(),
                                        LinkFailCause::RelocOverflow);
                    }
                    ImageWord& word = image.at(instAddr);
                    word.kind = ImageWord::Kind::Instruction;
                    word.inst = inst;
                }
                for (std::size_t l = 0; l < block.literalPool.size(); ++l) {
                    ImageWord& word =
                        image.at(blockByte + static_cast<std::uint32_t>(block.insts.size() + l) * 4);
                    word.kind = ImageWord::Kind::Literal;
                    word.value = block.literalPool[l];
                }
                PlacedBlock placement;
                placement.functionIndex = static_cast<std::uint32_t>(f);
                placement.blockIndex = static_cast<std::uint32_t>(b);
                placement.byteAddr = blockByte;
                placement.codeWords = static_cast<std::uint32_t>(block.insts.size());
                placement.literalWords = static_cast<std::uint32_t>(block.literalPool.size());
                image.addPlacement(placement);
            }
            for (std::size_t l = 0; l < fn.sharedLiteralPool.size(); ++l) {
                ImageWord& word = image.at(poolAddr_[f] + static_cast<std::uint32_t>(l) * 4);
                word.kind = ImageWord::Kind::Literal;
                word.value = fn.sharedLiteralPool[l];
            }
            if (!fn.sharedLiteralPool.empty()) {
                PlacedPool pool;
                pool.functionIndex = static_cast<std::uint32_t>(f);
                pool.byteAddr = poolAddr_[f];
                pool.sizeWords = static_cast<std::uint32_t>(fn.sharedLiteralPool.size());
                image.addPoolPlacement(pool);
            }
        }
        for (std::size_t f = 0; f < module_.functions.size(); ++f) {
            if (module_.functions[f].name == module_.entryFunction) {
                image.setEntryAddr(blockAddr_[f][0]);
            }
        }
        return LinkOutput{std::move(image), stats_};
    }

    const Module& module_;
    const LinkOptions& options_;
    obs::Histogram scanWords_; ///< "link.scan_words" (BBR placement only)
    std::uint32_t cacheWords_ = 0;
    std::vector<std::vector<std::uint32_t>> blockAddr_;
    std::vector<std::uint32_t> poolAddr_;
    LinkStats stats_;
};

} // namespace

LinkOutput link(const Module& module, const LinkOptions& options) {
    const obs::Span span("link");
    module.validate();
    LinkOutput out = LinkContext(module, options).run();
    if (options.postLinkVerifier) options.postLinkVerifier(out.image);
    // Decode eagerly: the image is final here, so the simulator's fetch fast
    // path never rebuilds mid-run (and the image is then share-safe).
    out.image.warmDecodeCache();
    return out;
}

std::uint32_t countPlacementViolations(const Image& image, const FaultMap& icacheFaultMap) {
    const std::uint32_t cacheWords = icacheFaultMap.totalWords();
    std::uint32_t violations = 0;
    for (std::uint32_t addr = image.baseAddr(); addr < image.limitAddr(); addr += 4) {
        if (image.at(addr).kind == ImageWord::Kind::Gap) continue;
        if (icacheFaultMap.isFaultyFlat((addr / 4) % cacheWords)) ++violations;
    }
    return violations;
}

} // namespace voltcache
