// Linked executable image: every basic block placed at a final byte
// address, all relocations resolved. Consumed by the CPU (fetch + initial
// memory contents) and by the BBR placement verifier.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "isa/instruction.h"

namespace voltcache {

/// One word of the linked image.
struct ImageWord {
    enum class Kind : std::uint8_t {
        Gap,         ///< padding inserted between blocks; never fetched
        Instruction, ///< executable code
        Literal,     ///< literal-pool data (read via Ldl through the D-cache)
    };
    Kind kind = Kind::Gap;
    Instruction inst;         ///< valid when kind == Instruction
    std::int32_t value = 0;   ///< valid when kind == Literal
};

/// Where one basic block landed (diagnostics, Fig. 6 statistics).
struct PlacedBlock {
    std::uint32_t functionIndex = 0;
    std::uint32_t blockIndex = 0;
    std::uint32_t byteAddr = 0;
    std::uint32_t codeWords = 0;
    std::uint32_t literalWords = 0;

    [[nodiscard]] std::uint32_t sizeWords() const noexcept {
        return codeWords + literalWords;
    }
};

class Image {
public:
    Image(std::uint32_t baseAddr, std::uint32_t sizeWords);

    [[nodiscard]] std::uint32_t baseAddr() const noexcept { return baseAddr_; }
    [[nodiscard]] std::uint32_t limitAddr() const noexcept {
        return baseAddr_ + static_cast<std::uint32_t>(words_.size()) * 4;
    }
    [[nodiscard]] std::uint32_t sizeWords() const noexcept {
        return static_cast<std::uint32_t>(words_.size());
    }

    [[nodiscard]] bool contains(std::uint32_t byteAddr) const noexcept {
        return byteAddr >= baseAddr_ && byteAddr < limitAddr();
    }

    [[nodiscard]] const ImageWord& at(std::uint32_t byteAddr) const;
    [[nodiscard]] ImageWord& at(std::uint32_t byteAddr);

    /// Fetch helper: the instruction at `byteAddr`. Throws std::logic_error
    /// if the word is not an instruction (control flow escaped the code).
    [[nodiscard]] const Instruction& fetch(std::uint32_t byteAddr) const;

    [[nodiscard]] std::uint32_t entryAddr() const noexcept { return entryAddr_; }
    void setEntryAddr(std::uint32_t addr) noexcept { entryAddr_ = addr; }

    [[nodiscard]] const std::vector<PlacedBlock>& placements() const noexcept {
        return placements_;
    }
    void addPlacement(PlacedBlock placement) { placements_.push_back(placement); }

    /// Encoded memory contents (for initializing the simulator's memory):
    /// instructions via encode(), literals as-is, gaps as zero.
    [[nodiscard]] std::vector<std::int32_t> encodedWords() const;

    /// Words of executable code + literals (excludes gaps).
    [[nodiscard]] std::uint32_t occupiedWords() const noexcept;

private:
    std::uint32_t baseAddr_;
    std::uint32_t entryAddr_ = 0;
    std::vector<ImageWord> words_;
    std::vector<PlacedBlock> placements_;
};

} // namespace voltcache
