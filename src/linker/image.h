// Linked executable image: every basic block placed at a final byte
// address, all relocations resolved. Consumed by the CPU (fetch + initial
// memory contents) and by the BBR placement verifier.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "isa/instruction.h"

namespace voltcache {

/// One word of the linked image.
struct ImageWord {
    enum class Kind : std::uint8_t {
        Gap,         ///< padding inserted between blocks; never fetched
        Instruction, ///< executable code
        Literal,     ///< literal-pool data (read via Ldl through the D-cache)
    };
    Kind kind = Kind::Gap;
    Instruction inst;         ///< valid when kind == Instruction
    std::int32_t value = 0;   ///< valid when kind == Literal
};

/// Where one basic block landed (diagnostics, Fig. 6 statistics).
struct PlacedBlock {
    std::uint32_t functionIndex = 0;
    std::uint32_t blockIndex = 0;
    std::uint32_t byteAddr = 0;
    std::uint32_t codeWords = 0;
    std::uint32_t literalWords = 0;

    [[nodiscard]] std::uint32_t sizeWords() const noexcept {
        return codeWords + literalWords;
    }
};

/// Where one function's shared literal pool landed. Kept separate from
/// placements(): pools are data, and the CFG / placement-prover consumers
/// of placements() expect code blocks only. The replay engine uses both to
/// map recording-layout addresses onto a trial's layout.
struct PlacedPool {
    std::uint32_t functionIndex = 0;
    std::uint32_t byteAddr = 0;
    std::uint32_t sizeWords = 0;
};

class Image {
public:
    Image(std::uint32_t baseAddr, std::uint32_t sizeWords);

    [[nodiscard]] std::uint32_t baseAddr() const noexcept { return baseAddr_; }
    [[nodiscard]] std::uint32_t limitAddr() const noexcept {
        return baseAddr_ + static_cast<std::uint32_t>(words_.size()) * 4;
    }
    [[nodiscard]] std::uint32_t sizeWords() const noexcept {
        return static_cast<std::uint32_t>(words_.size());
    }

    [[nodiscard]] bool contains(std::uint32_t byteAddr) const noexcept {
        return byteAddr >= baseAddr_ && byteAddr < limitAddr();
    }

    [[nodiscard]] const ImageWord& at(std::uint32_t byteAddr) const;
    /// Mutable word access (linking); invalidates the fetch decode cache.
    [[nodiscard]] ImageWord& at(std::uint32_t byteAddr);

    /// Fetch helper: the instruction at `byteAddr`. Throws std::logic_error
    /// if the word is not an instruction (control flow escaped the code).
    ///
    /// Hot path of the timing simulator: after the first fetch (or an
    /// explicit warmDecodeCache()) instructions come from a dense decoded
    /// array — one bounds test and one byte flag instead of the ImageWord
    /// kind-branch per fetch. Misaligned / out-of-image / non-instruction
    /// addresses fall through to the original checked path.
    [[nodiscard]] const Instruction& fetch(std::uint32_t byteAddr) const {
        if (decodeDirty_) rebuildDecodeCache();
        // Underflows for byteAddr < baseAddr_ to a huge offset, which the
        // index bound rejects — no separate contains() test needed.
        const std::uint32_t offset = byteAddr - baseAddr_;
        const std::uint32_t index = offset / 4;
        if ((offset & 3u) == 0 && index < decoded_.size() && isInstruction_[index]) {
            return decoded_[index];
        }
        return fetchChecked(byteAddr);
    }

    /// Build the decode cache eagerly (e.g. right after linking) so no
    /// rebuild happens mid-simulation. Idempotent.
    void warmDecodeCache() const {
        if (decodeDirty_) rebuildDecodeCache();
    }

    /// The dense decoded-instruction array behind fetch()'s fast path,
    /// indexed by word offset from baseAddr(). Entries at non-instruction
    /// words are default Instructions; callers that only ever visit
    /// instruction words (the trace-replay driver, whose word stream was
    /// recorded from a real run) index it directly and skip fetch()'s
    /// per-access alignment/bounds/kind checks.
    [[nodiscard]] const Instruction* decodedInstructions() const {
        if (decodeDirty_) rebuildDecodeCache();
        return decoded_.data();
    }

    [[nodiscard]] std::uint32_t entryAddr() const noexcept { return entryAddr_; }
    void setEntryAddr(std::uint32_t addr) noexcept { entryAddr_ = addr; }

    [[nodiscard]] const std::vector<PlacedBlock>& placements() const noexcept {
        return placements_;
    }
    void addPlacement(PlacedBlock placement) { placements_.push_back(placement); }

    [[nodiscard]] const std::vector<PlacedPool>& poolPlacements() const noexcept {
        return poolPlacements_;
    }
    void addPoolPlacement(PlacedPool placement) { poolPlacements_.push_back(placement); }

    /// Encoded memory contents (for initializing the simulator's memory):
    /// instructions via encode(), literals as-is, gaps as zero.
    [[nodiscard]] std::vector<std::int32_t> encodedWords() const;

    /// Words of executable code + literals (excludes gaps).
    [[nodiscard]] std::uint32_t occupiedWords() const noexcept;

private:
    [[nodiscard]] const Instruction& fetchChecked(std::uint32_t byteAddr) const;
    void rebuildDecodeCache() const;

    std::uint32_t baseAddr_;
    std::uint32_t entryAddr_ = 0;
    std::vector<ImageWord> words_;
    std::vector<PlacedBlock> placements_;
    std::vector<PlacedPool> poolPlacements_;
    // Fetch decode cache: dense per-word instruction copies plus a validity
    // flag, rebuilt lazily after mutations. `mutable` memo of words_ — an
    // Image is simulated single-threaded (one linked image per sweep leg);
    // share across threads only after warmDecodeCache().
    mutable std::vector<Instruction> decoded_;
    mutable std::vector<std::uint8_t> isInstruction_;
    mutable bool decodeDirty_ = true;
};

} // namespace voltcache
