// The BBR-aware linker (paper Section IV-B2, Algorithm 1).
//
// Treats each basic block (code + its literal pool) as a relocatable
// section. In conventional mode, blocks are placed back to back. In BBR
// mode, the linker scans the instruction-cache fault map from the current
// position and places each block at the first address whose words all map
// to fault-free cache words (first-fit, wrapping around the cache modulo
// csize — exactly Algorithm 1), inserting gaps between blocks. It then
// resolves all relocations: branch displacements, call targets, and
// PC-relative literal loads (whose ±4KB page reach is enforced).
#pragma once

#include <array>
#include <cstdint>
#include <functional>
#include <stdexcept>

#include "faults/fault_map.h"
#include "isa/module.h"
#include "linker/image.h"

namespace voltcache {

/// Why a link was rejected — drives the yield-loss cause breakdown in the
/// sweep forensics (which chunk of Monte Carlo yield loss is placement
/// capacity vs. reach vs. a verifier veto).
enum class LinkFailCause : std::uint8_t {
    None = 0,      ///< link succeeded
    NoChunk,       ///< no fault-free chunk large enough (Algorithm 1 gave up)
    LiteralReach,  ///< PC-relative literal out of its ±4KB page
    RelocOverflow, ///< branch/call displacement does not encode
    Shape,         ///< module unsuitable (fall-through, missing fault map, ...)
    Verifier,      ///< post-link static verifier vetoed the image
    Other,         ///< unclassified
};

[[nodiscard]] const char* linkFailCauseName(LinkFailCause cause) noexcept;

/// A block could not be placed (no fault-free chunk is large enough), a
/// literal went out of reach, or the module shape is unsuitable (e.g. BBR
/// placement requested on untransformed fall-through code). In the Monte
/// Carlo harness an unplaceable map counts as a yield loss, attributed by
/// cause() in the forensics report.
class LinkError : public std::runtime_error {
public:
    explicit LinkError(const std::string& what, LinkFailCause cause = LinkFailCause::Other)
        : std::runtime_error(what), cause_(cause) {}

    [[nodiscard]] LinkFailCause cause() const noexcept { return cause_; }

private:
    LinkFailCause cause_;
};

struct LinkOptions {
    std::uint32_t codeBase = 0x0; ///< byte address of the first code word
    /// Avoid addresses mapping to defective I-cache words (Algorithm 1).
    bool bbrPlacement = false;
    /// Required when bbrPlacement: the I-cache fault map at the target DVFS
    /// point (also defines csize = map->totalWords()).
    const FaultMap* icacheFaultMap = nullptr;
    /// PC-relative literal reach: one 4KB page (paper Fig. 8), in words.
    std::uint32_t literalReachWords = 1024;
    /// Optional post-link static verifier, invoked with the emitted image.
    /// Should throw LinkError to reject the link (the Monte Carlo harness
    /// then counts it as a yield loss). analysis::attachStaticVerifier()
    /// installs the BBR placement prover here.
    std::function<void(const Image&)> postLinkVerifier;
};

struct LinkStats {
    std::uint32_t blocksPlaced = 0;
    std::uint32_t gapWords = 0;       ///< padding inserted by BBR placement
    std::uint32_t imageWords = 0;     ///< total image span including gaps
    std::uint32_t codeWords = 0;      ///< instructions + literals
    std::uint32_t largestBlockWords = 0;
    /// First-fit scan behaviour (BBR placement only; zero otherwise):
    std::uint32_t scanRestarts = 0; ///< scans restarted past a defective word
    std::uint32_t wrapArounds = 0;  ///< cache-size boundaries crossed while scanning
    /// Log2 histogram of per-block placement displacement (words scanned past
    /// the back-to-back position): bucket 0 counts zero-displacement fits,
    /// bucket k counts displacements with bit width k, capped at the last.
    std::array<std::uint32_t, 17> scanHist{};
};

struct LinkOutput {
    Image image;
    LinkStats stats;
};

/// Link a (validated) module into an executable image.
[[nodiscard]] LinkOutput link(const Module& module, const LinkOptions& options = {});

/// Check that every non-gap word of a linked image maps to a fault-free
/// cache word — the BBR invariant the I-cache enforces at fetch time.
/// Returns the number of violating words (0 == correctly placed).
[[nodiscard]] std::uint32_t countPlacementViolations(const Image& image,
                                                     const FaultMap& icacheFaultMap);

} // namespace voltcache
