// Console table / CSV rendering used by the benchmark harness to print the
// paper's tables and figure series in a diff-friendly layout.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

namespace voltcache {

/// Column-aligned text table. Rows are strings; numeric helpers format with a
/// fixed precision so benchmark output is stable across runs.
class TextTable {
public:
    explicit TextTable(std::vector<std::string> header);

    void addRow(std::vector<std::string> cells);

    /// Convenience: formats doubles at the given precision.
    void addNumericRow(const std::string& label, const std::vector<double>& values,
                       int precision = 3);

    [[nodiscard]] std::size_t rowCount() const noexcept { return rows_.size(); }

    /// Render with box-drawing-free ASCII so output survives any terminal.
    [[nodiscard]] std::string render() const;

    /// Render as CSV (RFC-4180 quoting for cells containing commas/quotes).
    [[nodiscard]] std::string renderCsv() const;

private:
    std::vector<std::string> header_;
    std::vector<std::vector<std::string>> rows_;
};

/// Format a double with `precision` fractional digits.
[[nodiscard]] std::string formatDouble(double value, int precision = 3);

/// Format as a percentage ("12.3%").
[[nodiscard]] std::string formatPercent(double fraction, int precision = 1);

/// Format in scientific notation ("1.0e-02").
[[nodiscard]] std::string formatSci(double value, int precision = 1);

} // namespace voltcache
