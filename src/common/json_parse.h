// Minimal dependency-free JSON parser — the read-side twin of JsonWriter.
//
// Parses a complete document into a JsonValue tree (objects keep member
// source order). Strict where it matters for our own artifacts: rejects
// trailing garbage, unterminated strings/scopes, bad escapes, and documents
// nested deeper than a fixed bound. Numbers are doubles (every numeric field
// we export round-trips through double already). Consumers: tools/bench_check
// (BENCH_*.json diffing) and `voltcache profile` (sweep/profile JSON).
#pragma once

#include <cstdint>
#include <stdexcept>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace voltcache {

class JsonParseError : public std::runtime_error {
public:
    using std::runtime_error::runtime_error;
};

struct JsonValue {
    enum class Kind : std::uint8_t { Null, Bool, Number, String, Array, Object };

    Kind kind = Kind::Null;
    bool boolean = false;
    double number = 0.0;
    std::string string;
    std::vector<JsonValue> items;                           ///< Kind::Array
    std::vector<std::pair<std::string, JsonValue>> members; ///< Kind::Object

    [[nodiscard]] bool isNull() const noexcept { return kind == Kind::Null; }
    [[nodiscard]] bool isObject() const noexcept { return kind == Kind::Object; }
    [[nodiscard]] bool isArray() const noexcept { return kind == Kind::Array; }

    /// Object member by key, or nullptr (first match wins).
    [[nodiscard]] const JsonValue* find(std::string_view key) const noexcept;

    /// Typed accessors; throw JsonParseError on kind mismatch so schema
    /// drift surfaces as a clear error, not a zero.
    [[nodiscard]] double asNumber() const;
    [[nodiscard]] bool asBool() const;
    [[nodiscard]] const std::string& asString() const;

    /// find() + asNumber()/asString() with a fallback for absent members.
    [[nodiscard]] double numberOr(std::string_view key, double fallback) const;
    [[nodiscard]] std::string stringOr(std::string_view key,
                                       const std::string& fallback) const;
};

/// Parse one complete JSON document. Throws JsonParseError with a byte
/// offset on malformed input.
[[nodiscard]] JsonValue parseJson(std::string_view text);

} // namespace voltcache
