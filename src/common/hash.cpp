#include "common/hash.h"

#include <bit>
#include <cstring>

namespace voltcache {

namespace {

// FIPS 180-4 section 4.2.2: first 32 bits of the fractional parts of the
// cube roots of the first 64 primes.
constexpr std::array<std::uint32_t, 64> kRoundConstants = {
    0x428a2f98, 0x71374491, 0xb5c0fbcf, 0xe9b5dba5, 0x3956c25b, 0x59f111f1,
    0x923f82a4, 0xab1c5ed5, 0xd807aa98, 0x12835b01, 0x243185be, 0x550c7dc3,
    0x72be5d74, 0x80deb1fe, 0x9bdc06a7, 0xc19bf174, 0xe49b69c1, 0xefbe4786,
    0x0fc19dc6, 0x240ca1cc, 0x2de92c6f, 0x4a7484aa, 0x5cb0a9dc, 0x76f988da,
    0x983e5152, 0xa831c66d, 0xb00327c8, 0xbf597fc7, 0xc6e00bf3, 0xd5a79147,
    0x06ca6351, 0x14292967, 0x27b70a85, 0x2e1b2138, 0x4d2c6dfc, 0x53380d13,
    0x650a7354, 0x766a0abb, 0x81c2c92e, 0x92722c85, 0xa2bfe8a1, 0xa81a664b,
    0xc24b8b70, 0xc76c51a3, 0xd192e819, 0xd6990624, 0xf40e3585, 0x106aa070,
    0x19a4c116, 0x1e376c08, 0x2748774c, 0x34b0bcb5, 0x391c0cb3, 0x4ed8aa4a,
    0x5b9cca4f, 0x682e6ff3, 0x748f82ee, 0x78a5636f, 0x84c87814, 0x8cc70208,
    0x90befffa, 0xa4506ceb, 0xbef9a3f7, 0xc67178f2};

std::uint32_t loadBigEndian32(const std::uint8_t* bytes) noexcept {
    return (static_cast<std::uint32_t>(bytes[0]) << 24) |
           (static_cast<std::uint32_t>(bytes[1]) << 16) |
           (static_cast<std::uint32_t>(bytes[2]) << 8) |
           static_cast<std::uint32_t>(bytes[3]);
}

} // namespace

void Sha256::reset() noexcept {
    // Section 5.3.3: fractional parts of the square roots of the first 8 primes.
    state_ = {0x6a09e667, 0xbb67ae85, 0x3c6ef372, 0xa54ff53a,
              0x510e527f, 0x9b05688c, 0x1f83d9ab, 0x5be0cd19};
    bufferedBytes_ = 0;
    totalBytes_ = 0;
}

void Sha256::processBlock(const std::uint8_t* block) noexcept {
    std::uint32_t w[64];
    for (int t = 0; t < 16; ++t) w[t] = loadBigEndian32(block + 4 * t);
    for (int t = 16; t < 64; ++t) {
        const std::uint32_t s0 = std::rotr(w[t - 15], 7) ^ std::rotr(w[t - 15], 18) ^
                                 (w[t - 15] >> 3);
        const std::uint32_t s1 = std::rotr(w[t - 2], 17) ^ std::rotr(w[t - 2], 19) ^
                                 (w[t - 2] >> 10);
        w[t] = w[t - 16] + s0 + w[t - 7] + s1;
    }

    std::uint32_t a = state_[0], b = state_[1], c = state_[2], d = state_[3];
    std::uint32_t e = state_[4], f = state_[5], g = state_[6], h = state_[7];
    for (int t = 0; t < 64; ++t) {
        const std::uint32_t bigSigma1 =
            std::rotr(e, 6) ^ std::rotr(e, 11) ^ std::rotr(e, 25);
        const std::uint32_t choose = (e & f) ^ (~e & g);
        const std::uint32_t temp1 = h + bigSigma1 + choose + kRoundConstants[t] + w[t];
        const std::uint32_t bigSigma0 =
            std::rotr(a, 2) ^ std::rotr(a, 13) ^ std::rotr(a, 22);
        const std::uint32_t majority = (a & b) ^ (a & c) ^ (b & c);
        const std::uint32_t temp2 = bigSigma0 + majority;
        h = g;
        g = f;
        f = e;
        e = d + temp1;
        d = c;
        c = b;
        b = a;
        a = temp1 + temp2;
    }
    state_[0] += a;
    state_[1] += b;
    state_[2] += c;
    state_[3] += d;
    state_[4] += e;
    state_[5] += f;
    state_[6] += g;
    state_[7] += h;
}

void Sha256::update(const void* data, std::size_t size) noexcept {
    const auto* bytes = static_cast<const std::uint8_t*>(data);
    totalBytes_ += size;
    if (bufferedBytes_ > 0) {
        const std::size_t take = std::min(size, buffer_.size() - bufferedBytes_);
        std::memcpy(buffer_.data() + bufferedBytes_, bytes, take);
        bufferedBytes_ += take;
        bytes += take;
        size -= take;
        if (bufferedBytes_ < buffer_.size()) return;
        processBlock(buffer_.data());
        bufferedBytes_ = 0;
    }
    while (size >= buffer_.size()) {
        processBlock(bytes);
        bytes += buffer_.size();
        size -= buffer_.size();
    }
    if (size > 0) {
        std::memcpy(buffer_.data(), bytes, size);
        bufferedBytes_ = size;
    }
}

Digest256 Sha256::finish() noexcept {
    const std::uint64_t messageBits = totalBytes_ * 8;
    const std::uint8_t pad = 0x80;
    update(&pad, 1);
    const std::uint8_t zero = 0x00;
    while (bufferedBytes_ != 56) update(&zero, 1);
    std::uint8_t length[8];
    for (int i = 0; i < 8; ++i) {
        length[i] = static_cast<std::uint8_t>(messageBits >> (8 * (7 - i)));
    }
    update(length, sizeof(length));

    Digest256 digest;
    for (int i = 0; i < 8; ++i) {
        digest[4 * i + 0] = static_cast<std::uint8_t>(state_[i] >> 24);
        digest[4 * i + 1] = static_cast<std::uint8_t>(state_[i] >> 16);
        digest[4 * i + 2] = static_cast<std::uint8_t>(state_[i] >> 8);
        digest[4 * i + 3] = static_cast<std::uint8_t>(state_[i]);
    }
    return digest;
}

std::string digestToHex(const Digest256& digest) {
    static constexpr char kHex[] = "0123456789abcdef";
    std::string hex;
    hex.reserve(digest.size() * 2);
    for (const std::uint8_t byte : digest) {
        hex.push_back(kHex[byte >> 4]);
        hex.push_back(kHex[byte & 0xF]);
    }
    return hex;
}

void HashWriter::f64(double value) noexcept { u64(std::bit_cast<std::uint64_t>(value)); }

} // namespace voltcache
