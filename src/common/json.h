// Minimal dependency-free JSON writer.
//
// Streaming, append-only: callers emit begin/end/key/value calls and read the
// finished document with str(). Structural misuse (a value where a key is
// required, unbalanced scopes, reading an incomplete document) trips a
// contract violation rather than producing malformed output. Doubles are
// printed with the shortest round-trip representation; NaN and infinities —
// which JSON cannot represent — are emitted as null.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace voltcache {

/// Escape `raw` for inclusion inside a JSON string literal (quotes not
/// included). Handles quote, backslash, and all control characters.
[[nodiscard]] std::string jsonEscape(std::string_view raw);

class JsonWriter {
public:
    JsonWriter();

    void beginObject();
    void endObject();
    void beginArray();
    void endArray();

    /// Emit an object key; must be followed by exactly one value (or
    /// begin{Object,Array}).
    void key(std::string_view k);

    void value(std::string_view v);
    void value(const std::string& v) { value(std::string_view(v)); }
    void value(const char* v) { value(std::string_view(v)); }
    void value(double v);
    void value(bool v);
    void value(std::uint64_t v);
    void value(std::int64_t v);
    void value(std::uint32_t v) { value(static_cast<std::uint64_t>(v)); }
    void value(std::int32_t v) { value(static_cast<std::int64_t>(v)); }
    void null();

    /// key() + value() in one call.
    template <typename T>
    void member(std::string_view k, const T& v) {
        key(k);
        value(v);
    }

    /// The finished document. All scopes must be closed.
    [[nodiscard]] const std::string& str() const;

private:
    enum class Scope : std::uint8_t { Root, Object, Array };
    struct Frame {
        Scope scope = Scope::Root;
        std::size_t items = 0;   ///< values emitted in this scope so far
        bool keyPending = false; ///< object scope: key written, value due
    };

    void beforeValue();
    void afterValue();

    std::string out_;
    std::vector<Frame> stack_;
};

} // namespace voltcache
