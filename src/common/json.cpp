#include "common/json.h"

#include <charconv>
#include <cmath>
#include <cstdio>

#include "common/contracts.h"

namespace voltcache {

std::string jsonEscape(std::string_view raw) {
    std::string out;
    out.reserve(raw.size());
    for (const char c : raw) {
        switch (c) {
        case '"': out += "\\\""; break;
        case '\\': out += "\\\\"; break;
        case '\b': out += "\\b"; break;
        case '\f': out += "\\f"; break;
        case '\n': out += "\\n"; break;
        case '\r': out += "\\r"; break;
        case '\t': out += "\\t"; break;
        default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof buf, "\\u%04x", c);
                out += buf;
            } else {
                out += c;
            }
        }
    }
    return out;
}

JsonWriter::JsonWriter() { stack_.push_back(Frame{}); }

void JsonWriter::beforeValue() {
    Frame& top = stack_.back();
    switch (top.scope) {
    case Scope::Root:
        VC_EXPECTS(top.items == 0); // a document holds exactly one value
        break;
    case Scope::Object:
        VC_EXPECTS(top.keyPending); // object values need a key() first
        break;
    case Scope::Array:
        if (top.items > 0) out_ += ',';
        break;
    }
}

void JsonWriter::afterValue() {
    Frame& top = stack_.back();
    ++top.items;
    top.keyPending = false;
}

void JsonWriter::beginObject() {
    beforeValue();
    out_ += '{';
    stack_.push_back(Frame{Scope::Object, 0, false});
}

void JsonWriter::endObject() {
    VC_EXPECTS(stack_.back().scope == Scope::Object && !stack_.back().keyPending);
    stack_.pop_back();
    out_ += '}';
    afterValue();
}

void JsonWriter::beginArray() {
    beforeValue();
    out_ += '[';
    stack_.push_back(Frame{Scope::Array, 0, false});
}

void JsonWriter::endArray() {
    VC_EXPECTS(stack_.back().scope == Scope::Array);
    stack_.pop_back();
    out_ += ']';
    afterValue();
}

void JsonWriter::key(std::string_view k) {
    Frame& top = stack_.back();
    VC_EXPECTS(top.scope == Scope::Object && !top.keyPending);
    if (top.items > 0) out_ += ',';
    out_ += '"';
    out_ += jsonEscape(k);
    out_ += "\":";
    top.keyPending = true;
}

void JsonWriter::value(std::string_view v) {
    beforeValue();
    out_ += '"';
    out_ += jsonEscape(v);
    out_ += '"';
    afterValue();
}

void JsonWriter::value(double v) {
    if (!std::isfinite(v)) {
        null(); // JSON has no NaN/Inf; null keeps the document parseable
        return;
    }
    beforeValue();
    char buf[32];
    const auto [ptr, ec] = std::to_chars(buf, buf + sizeof buf, v);
    VC_ENSURES(ec == std::errc{});
    out_.append(buf, ptr);
    afterValue();
}

void JsonWriter::value(bool v) {
    beforeValue();
    out_ += v ? "true" : "false";
    afterValue();
}

void JsonWriter::value(std::uint64_t v) {
    beforeValue();
    out_ += std::to_string(v);
    afterValue();
}

void JsonWriter::value(std::int64_t v) {
    beforeValue();
    out_ += std::to_string(v);
    afterValue();
}

void JsonWriter::null() {
    beforeValue();
    out_ += "null";
    afterValue();
}

const std::string& JsonWriter::str() const {
    VC_EXPECTS(stack_.size() == 1 && stack_.back().items == 1);
    return out_;
}

} // namespace voltcache
