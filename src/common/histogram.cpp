#include "common/histogram.h"

#include <algorithm>
#include <cmath>
#include <cstdio>

#include "common/contracts.h"

namespace voltcache {

Histogram::Histogram(double lo, double hi, std::size_t bins) : lo_(lo), hi_(hi) {
    VC_EXPECTS(hi > lo);
    VC_EXPECTS(bins >= 1);
    counts_.assign(bins, 0.0);
}

void Histogram::add(double x, double weight) {
    VC_EXPECTS(weight >= 0.0);
    const double pos = (x - lo_) / (hi_ - lo_) * static_cast<double>(counts_.size());
    auto bin = static_cast<std::ptrdiff_t>(std::floor(pos));
    bin = std::clamp<std::ptrdiff_t>(bin, 0, static_cast<std::ptrdiff_t>(counts_.size()) - 1);
    counts_[static_cast<std::size_t>(bin)] += weight;
    total_ += weight;
    weightedSum_ += x * weight;
}

double Histogram::binLow(std::size_t bin) const {
    VC_EXPECTS(bin < counts_.size());
    return lo_ + (hi_ - lo_) * static_cast<double>(bin) / static_cast<double>(counts_.size());
}

double Histogram::binHigh(std::size_t bin) const {
    VC_EXPECTS(bin < counts_.size());
    return lo_ + (hi_ - lo_) * static_cast<double>(bin + 1) / static_cast<double>(counts_.size());
}

double Histogram::count(std::size_t bin) const {
    VC_EXPECTS(bin < counts_.size());
    return counts_[bin];
}

std::vector<double> Histogram::normalized() const {
    std::vector<double> out(counts_.size(), 0.0);
    if (total_ <= 0.0) return out;
    for (std::size_t i = 0; i < counts_.size(); ++i) out[i] = counts_[i] / total_;
    return out;
}

double Histogram::sampleMean() const noexcept {
    return total_ > 0.0 ? weightedSum_ / total_ : 0.0;
}

std::string Histogram::render(std::size_t width) const {
    const auto fractions = normalized();
    const double peak = fractions.empty()
                            ? 0.0
                            : *std::max_element(fractions.begin(), fractions.end());
    std::string out;
    char line[160];
    for (std::size_t i = 0; i < counts_.size(); ++i) {
        const auto bar = peak > 0.0 ? static_cast<std::size_t>(
                                          std::lround(fractions[i] / peak *
                                                      static_cast<double>(width)))
                                    : 0;
        std::snprintf(line, sizeof line, "  [%8.3f, %8.3f) %6.2f%% |", binLow(i), binHigh(i),
                      fractions[i] * 100.0);
        out += line;
        out.append(bar, '#');
        out += '\n';
    }
    return out;
}

} // namespace voltcache
