// Minimal POSIX TCP socket layer — the wire substrate of the live telemetry
// plane (and, later, `voltcache serve`).
//
// Deliberately tiny and dependency-free: an RAII fd wrapper, a loopback
// listener with a poll-based accept that a stop flag can unblock, a blocking
// client connect, and a one-shot HTTP/1.1 GET helper for in-process scrape
// tests and `voltcache top`. Everything binds/connects on 127.0.0.1 only —
// the exporter is a local observability port, not an internet-facing server.
#pragma once

#include <atomic>
#include <chrono>
#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>

namespace voltcache::net {

/// RAII file-descriptor wrapper. Move-only; closes on destruction.
class Socket {
public:
    Socket() = default;
    explicit Socket(int fd) noexcept : fd_(fd) {}
    ~Socket();
    Socket(Socket&& other) noexcept : fd_(other.fd_) { other.fd_ = -1; }
    Socket& operator=(Socket&& other) noexcept;
    Socket(const Socket&) = delete;
    Socket& operator=(const Socket&) = delete;

    [[nodiscard]] bool valid() const noexcept { return fd_ >= 0; }
    [[nodiscard]] int fd() const noexcept { return fd_; }
    void close() noexcept;

    /// Write the whole buffer (retrying short writes, SIGPIPE suppressed).
    /// Returns false if the peer went away.
    bool sendAll(std::string_view data) noexcept;

    /// Read until EOF or `maxBytes`, appending to `out`. Returns bytes read.
    std::size_t recvAll(std::string& out, std::size_t maxBytes = 1 << 20);

    /// Read until `delimiter` appears in `out` (headers), EOF, or `maxBytes`.
    /// Returns true when the delimiter was seen.
    bool recvUntil(std::string& out, std::string_view delimiter,
                   std::size_t maxBytes = 64 * 1024);

    /// Per-connection kernel timeouts (SO_RCVTIMEO / SO_SNDTIMEO): a recv
    /// past the deadline returns RecvStatus::Timeout instead of blocking
    /// forever, and a send to a peer that stopped draining fails rather than
    /// wedging the writer. Zero disables the timeout.
    void setRecvTimeout(std::chrono::milliseconds timeout) noexcept;
    void setSendTimeout(std::chrono::milliseconds timeout) noexcept;

    /// Outcome of one bounded receive step (recvSome).
    enum class RecvStatus : std::uint8_t {
        Data,     ///< bytes were appended to the buffer
        Eof,      ///< orderly shutdown by the peer
        Timeout,  ///< SO_RCVTIMEO elapsed with nothing to read
        Error,    ///< any other socket error
    };

    /// One bounded recv: append up to `maxBytes` to `out` and classify the
    /// outcome. The building block of the serve protocol's line reader — it
    /// never loops, so the caller owns the request-size and deadline policy.
    RecvStatus recvSome(std::string& out, std::size_t maxBytes = 4096) noexcept;

private:
    int fd_ = -1;
};

/// Loopback TCP listener. Port 0 binds an ephemeral port; port() reports the
/// actual one. accept() polls so a concurrent requestStop() unblocks it.
class TcpListener {
public:
    /// Binds and listens on 127.0.0.1:port. Throws std::runtime_error on
    /// failure (port in use, out of fds, ...).
    explicit TcpListener(std::uint16_t port);
    ~TcpListener() = default;
    TcpListener(const TcpListener&) = delete;
    TcpListener& operator=(const TcpListener&) = delete;

    [[nodiscard]] std::uint16_t port() const noexcept { return port_; }

    /// Wait up to `timeout` for a connection. Returns an invalid Socket on
    /// timeout or after requestStop().
    [[nodiscard]] Socket accept(std::chrono::milliseconds timeout);

    /// Make subsequent (and in-flight, within one poll period) accept()
    /// calls return an invalid socket. Safe from any thread.
    void requestStop() noexcept;
    [[nodiscard]] bool stopping() const noexcept;

private:
    Socket listen_;
    std::uint16_t port_ = 0;
    std::atomic_bool stop_{false};
};

/// Blocking connect to 127.0.0.1:`port` (host names other than loopback
/// aliases are rejected — the telemetry plane is local-only). Throws on
/// failure.
[[nodiscard]] Socket tcpConnect(const std::string& host, std::uint16_t port,
                                std::chrono::milliseconds timeout);

/// One-shot HTTP/1.1 GET. Returns the response body; throws
/// std::runtime_error on connect failure or a non-200 status line.
[[nodiscard]] std::string httpGet(const std::string& host, std::uint16_t port,
                                  const std::string& path,
                                  std::chrono::milliseconds timeout =
                                      std::chrono::milliseconds(2000));

} // namespace voltcache::net
