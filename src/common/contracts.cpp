#include "common/contracts.h"

namespace voltcache::detail {

std::atomic<ContractHook> g_contractHook{nullptr};

ContractHook setContractHook(ContractHook hook) noexcept {
    return g_contractHook.exchange(hook, std::memory_order_acq_rel);
}

} // namespace voltcache::detail
