// Fixed-bin histogram used for the paper's distribution plots: spatial
// locality / word reuse (Fig. 3), effective I-cache capacity (Fig. 6a) and
// basic-block vs fault-free-chunk sizes (Fig. 6b).
#pragma once

#include <cstddef>
#include <string>
#include <vector>

namespace voltcache {

/// Histogram over [lo, hi) with `bins` equal-width bins. Samples outside the
/// range clamp to the first/last bin so no observation is silently dropped.
class Histogram {
public:
    Histogram(double lo, double hi, std::size_t bins);

    void add(double x, double weight = 1.0);

    [[nodiscard]] std::size_t binCount() const noexcept { return counts_.size(); }
    [[nodiscard]] double binLow(std::size_t bin) const;
    [[nodiscard]] double binHigh(std::size_t bin) const;
    [[nodiscard]] double count(std::size_t bin) const;
    [[nodiscard]] double totalWeight() const noexcept { return total_; }

    /// Fraction of total weight in each bin; all zeros if empty.
    [[nodiscard]] std::vector<double> normalized() const;

    /// Weighted mean of observed samples (exact, not bin-centered).
    [[nodiscard]] double sampleMean() const noexcept;

    /// Render a terminal bar chart, one row per bin.
    [[nodiscard]] std::string render(std::size_t width = 50) const;

private:
    double lo_;
    double hi_;
    std::vector<double> counts_;
    double total_ = 0.0;
    double weightedSum_ = 0.0;
};

} // namespace voltcache
