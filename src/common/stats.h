// Statistics used by the Monte Carlo experiment harness: running moments,
// geometric means (the paper reports EPI as a geomean across simulations),
// and Student-t confidence intervals (the paper targets a 95% CI with 5%
// margin of error over up to 1000 fault maps).
#pragma once

#include <cstddef>
#include <span>
#include <vector>

namespace voltcache {

/// Welford-style running mean/variance accumulator. Numerically stable for
/// long Monte Carlo runs.
class RunningStats {
public:
    void add(double x) noexcept;

    [[nodiscard]] std::size_t count() const noexcept { return n_; }
    [[nodiscard]] double mean() const noexcept { return n_ > 0 ? mean_ : 0.0; }
    /// Sample variance (n-1 denominator); 0 for fewer than two samples.
    [[nodiscard]] double variance() const noexcept;
    [[nodiscard]] double stddev() const noexcept;
    /// Standard error of the mean.
    [[nodiscard]] double stderror() const noexcept;
    [[nodiscard]] double min() const noexcept { return min_; }
    [[nodiscard]] double max() const noexcept { return max_; }

    /// Merge another accumulator (parallel reduction).
    void merge(const RunningStats& other) noexcept;

private:
    std::size_t n_ = 0;
    double mean_ = 0.0;
    double m2_ = 0.0;
    double min_ = 0.0;
    double max_ = 0.0;
};

/// Two-sided confidence interval around a sample mean.
struct ConfidenceInterval {
    double mean = 0.0;
    double halfWidth = 0.0; ///< mean ± halfWidth covers the interval
    double level = 0.95;

    [[nodiscard]] double lo() const noexcept { return mean - halfWidth; }
    [[nodiscard]] double hi() const noexcept { return mean + halfWidth; }
    /// Margin of error relative to the mean (the paper requires ≤ 5%).
    [[nodiscard]] double relativeMargin() const noexcept {
        return mean != 0.0 ? halfWidth / mean : 0.0;
    }
};

/// Student-t critical value for a two-sided interval at `level` confidence
/// with `df` degrees of freedom. Exact table for small df, asymptotic
/// (Cornish-Fisher expansion of the normal quantile) beyond.
[[nodiscard]] double studentTCritical(std::size_t df, double level = 0.95);

/// Confidence interval of the mean of the accumulated samples.
[[nodiscard]] ConfidenceInterval confidenceInterval(const RunningStats& stats,
                                                    double level = 0.95);

/// Arithmetic mean of a sample set; 0 for an empty set.
[[nodiscard]] double mean(std::span<const double> xs) noexcept;

/// Geometric mean; all inputs must be positive.
[[nodiscard]] double geomean(std::span<const double> xs);

/// Sample standard deviation (n-1); 0 for fewer than two samples.
[[nodiscard]] double stddev(std::span<const double> xs) noexcept;

/// Percentile (nearest-rank, q in [0,1]) of a sample set; sorts a copy.
[[nodiscard]] double percentile(std::span<const double> xs, double q);

} // namespace voltcache
