#include "common/stats.h"

#include <algorithm>
#include <array>
#include <cmath>

#include "common/contracts.h"

namespace voltcache {

void RunningStats::add(double x) noexcept {
    if (n_ == 0) {
        min_ = max_ = x;
    } else {
        min_ = std::min(min_, x);
        max_ = std::max(max_, x);
    }
    ++n_;
    const double delta = x - mean_;
    mean_ += delta / static_cast<double>(n_);
    m2_ += delta * (x - mean_);
}

double RunningStats::variance() const noexcept {
    return n_ > 1 ? m2_ / static_cast<double>(n_ - 1) : 0.0;
}

double RunningStats::stddev() const noexcept { return std::sqrt(variance()); }

double RunningStats::stderror() const noexcept {
    return n_ > 0 ? stddev() / std::sqrt(static_cast<double>(n_)) : 0.0;
}

void RunningStats::merge(const RunningStats& other) noexcept {
    if (other.n_ == 0) return;
    if (n_ == 0) {
        *this = other;
        return;
    }
    const double delta = other.mean_ - mean_;
    const auto na = static_cast<double>(n_);
    const auto nb = static_cast<double>(other.n_);
    const double total = na + nb;
    mean_ += delta * nb / total;
    m2_ += other.m2_ + delta * delta * na * nb / total;
    n_ += other.n_;
    min_ = std::min(min_, other.min_);
    max_ = std::max(max_, other.max_);
}

namespace {

/// Inverse standard-normal CDF (Acklam's rational approximation, |err| < 1.15e-9).
double normalQuantile(double p) {
    VC_EXPECTS(p > 0.0 && p < 1.0);
    static constexpr std::array<double, 6> a = {-3.969683028665376e+01, 2.209460984245205e+02,
                                                -2.759285104469687e+02, 1.383577518672690e+02,
                                                -3.066479806614716e+01, 2.506628277459239e+00};
    static constexpr std::array<double, 5> b = {-5.447609879822406e+01, 1.615858368580409e+02,
                                                -1.556989798598866e+02, 6.680131188771972e+01,
                                                -1.328068155288572e+01};
    static constexpr std::array<double, 6> c = {-7.784894002430293e-03, -3.223964580411365e-01,
                                                -2.400758277161838e+00, -2.549732539343734e+00,
                                                4.374664141464968e+00,  2.938163982698783e+00};
    static constexpr std::array<double, 4> d = {7.784695709041462e-03, 3.224671290700398e-01,
                                                2.445134137142996e+00, 3.754408661907416e+00};
    constexpr double pLow = 0.02425;
    if (p < pLow) {
        const double q = std::sqrt(-2.0 * std::log(p));
        return (((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4]) * q + c[5]) /
               ((((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1.0);
    }
    if (p > 1.0 - pLow) return -normalQuantile(1.0 - p);
    const double q = p - 0.5;
    const double r = q * q;
    return (((((a[0] * r + a[1]) * r + a[2]) * r + a[3]) * r + a[4]) * r + a[5]) * q /
           (((((b[0] * r + b[1]) * r + b[2]) * r + b[3]) * r + b[4]) * r + 1.0);
}

} // namespace

double studentTCritical(std::size_t df, double level) {
    VC_EXPECTS(df >= 1);
    VC_EXPECTS(level > 0.0 && level < 1.0);
    // Exact two-sided 95% values for small df; other levels / large df use
    // the Cornish-Fisher expansion around the normal quantile.
    if (level > 0.9499 && level < 0.9501 && df <= 30) {
        static constexpr std::array<double, 30> table = {
            12.706, 4.303, 3.182, 2.776, 2.571, 2.447, 2.365, 2.306, 2.262, 2.228,
            2.201,  2.179, 2.160, 2.145, 2.131, 2.120, 2.110, 2.101, 2.093, 2.086,
            2.080,  2.074, 2.069, 2.064, 2.060, 2.056, 2.052, 2.048, 2.045, 2.042};
        return table[df - 1];
    }
    const double z = normalQuantile(0.5 + level / 2.0);
    const auto n = static_cast<double>(df);
    const double z3 = z * z * z;
    const double z5 = z3 * z * z;
    const double z7 = z5 * z * z;
    // Cornish-Fisher expansion of the t quantile in powers of 1/df.
    return z + (z3 + z) / (4.0 * n) + (5.0 * z5 + 16.0 * z3 + 3.0 * z) / (96.0 * n * n) +
           (3.0 * z7 + 19.0 * z5 + 17.0 * z3 - 15.0 * z) / (384.0 * n * n * n);
}

ConfidenceInterval confidenceInterval(const RunningStats& stats, double level) {
    ConfidenceInterval ci;
    ci.mean = stats.mean();
    ci.level = level;
    if (stats.count() >= 2) {
        ci.halfWidth = studentTCritical(stats.count() - 1, level) * stats.stderror();
    }
    return ci;
}

double mean(std::span<const double> xs) noexcept {
    if (xs.empty()) return 0.0;
    double sum = 0.0;
    for (double x : xs) sum += x;
    return sum / static_cast<double>(xs.size());
}

double geomean(std::span<const double> xs) {
    if (xs.empty()) return 0.0;
    double logSum = 0.0;
    for (double x : xs) {
        VC_EXPECTS(x > 0.0);
        logSum += std::log(x);
    }
    return std::exp(logSum / static_cast<double>(xs.size()));
}

double stddev(std::span<const double> xs) noexcept {
    if (xs.size() < 2) return 0.0;
    const double m = mean(xs);
    double acc = 0.0;
    for (double x : xs) acc += (x - m) * (x - m);
    return std::sqrt(acc / static_cast<double>(xs.size() - 1));
}

double percentile(std::span<const double> xs, double q) {
    VC_EXPECTS(!xs.empty());
    VC_EXPECTS(q >= 0.0 && q <= 1.0);
    std::vector<double> sorted(xs.begin(), xs.end());
    std::sort(sorted.begin(), sorted.end());
    const auto rank = static_cast<std::size_t>(
        std::ceil(q * static_cast<double>(sorted.size())));
    return sorted[rank == 0 ? 0 : rank - 1];
}

} // namespace voltcache
