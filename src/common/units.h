// Lightweight unit wrappers. Voltages appear in three roles (operating
// point, threshold, Vccmin) and mixing millivolts with volts has historically
// been a silent-corruption bug class in power models — so Voltage is a strong
// type with explicit constructors and named accessors.
#pragma once

#include <compare>

namespace voltcache {

/// Supply voltage. Stored in volts; constructed explicitly from either unit.
class Voltage {
public:
    constexpr Voltage() noexcept = default;

    [[nodiscard]] static constexpr Voltage fromVolts(double v) noexcept { return Voltage(v); }
    [[nodiscard]] static constexpr Voltage fromMillivolts(double mv) noexcept {
        return Voltage(mv / 1000.0);
    }

    [[nodiscard]] constexpr double volts() const noexcept { return volts_; }
    [[nodiscard]] constexpr double millivolts() const noexcept { return volts_ * 1000.0; }

    constexpr auto operator<=>(const Voltage&) const noexcept = default;

private:
    explicit constexpr Voltage(double v) noexcept : volts_(v) {}
    double volts_ = 0.0;
};

namespace literals {
/// 760_mV style literals for test and benchmark readability.
constexpr Voltage operator""_mV(unsigned long long mv) noexcept {
    return Voltage::fromMillivolts(static_cast<double>(mv));
}
constexpr Voltage operator""_mV(long double mv) noexcept {
    return Voltage::fromMillivolts(static_cast<double>(mv));
}
} // namespace literals

/// Clock frequency in hertz.
class Frequency {
public:
    constexpr Frequency() noexcept = default;

    [[nodiscard]] static constexpr Frequency fromHertz(double hz) noexcept {
        return Frequency(hz);
    }
    [[nodiscard]] static constexpr Frequency fromMegahertz(double mhz) noexcept {
        return Frequency(mhz * 1e6);
    }

    [[nodiscard]] constexpr double hertz() const noexcept { return hz_; }
    [[nodiscard]] constexpr double megahertz() const noexcept { return hz_ / 1e6; }
    [[nodiscard]] constexpr double periodSeconds() const noexcept { return 1.0 / hz_; }

    constexpr auto operator<=>(const Frequency&) const noexcept = default;

private:
    explicit constexpr Frequency(double hz) noexcept : hz_(hz) {}
    double hz_ = 0.0;
};

} // namespace voltcache
