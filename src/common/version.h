// Build identity for exported artifacts (BENCH_*.json, --json exports).
#pragma once

#include <string_view>

namespace voltcache {

/// `git describe --always --dirty` captured at configure time, or "unknown"
/// when the source tree is not a git checkout.
[[nodiscard]] std::string_view buildVersion() noexcept;

} // namespace voltcache
