// SHA-256 — the content-address function of the serve-layer result store.
//
// Own implementation (FIPS 180-4), dependency-free like the rest of
// `common/`: the digest keys leg results across processes and machines, so
// it must be stable forever and cannot hide behind a platform library. The
// streaming class hashes incrementally; HashWriter adds the field-tagged
// framing the leg keys are built from (every field is hashed explicitly —
// never raw struct bytes, which would bake padding and ABI into the key).
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>

namespace voltcache {

using Digest256 = std::array<std::uint8_t, 32>;

class Sha256 {
public:
    Sha256() noexcept { reset(); }

    void reset() noexcept;
    void update(const void* data, std::size_t size) noexcept;
    void update(std::string_view text) noexcept { update(text.data(), text.size()); }

    /// Finalize and return the digest. The stream is consumed; call reset()
    /// to reuse the object.
    [[nodiscard]] Digest256 finish() noexcept;

    /// One-shot convenience.
    [[nodiscard]] static Digest256 digest(std::string_view data) noexcept {
        Sha256 h;
        h.update(data);
        return h.finish();
    }

private:
    void processBlock(const std::uint8_t* block) noexcept;

    std::array<std::uint32_t, 8> state_{};
    std::array<std::uint8_t, 64> buffer_{};
    std::size_t bufferedBytes_ = 0;
    std::uint64_t totalBytes_ = 0;
};

/// Lowercase hex rendering (64 characters).
[[nodiscard]] std::string digestToHex(const Digest256& digest);

/// Field-tagged streaming front end for building content keys: scalars are
/// hashed in a fixed-width little-endian encoding, strings length-prefixed,
/// so two different field sequences can never collide by concatenation.
class HashWriter {
public:
    void u8(std::uint8_t value) noexcept { hash_.update(&value, 1); }
    void u32(std::uint32_t value) noexcept {
        std::uint8_t bytes[4];
        for (int i = 0; i < 4; ++i) bytes[i] = static_cast<std::uint8_t>(value >> (8 * i));
        hash_.update(bytes, sizeof(bytes));
    }
    void u64(std::uint64_t value) noexcept {
        std::uint8_t bytes[8];
        for (int i = 0; i < 8; ++i) bytes[i] = static_cast<std::uint8_t>(value >> (8 * i));
        hash_.update(bytes, sizeof(bytes));
    }
    void i32(std::int32_t value) noexcept { u32(static_cast<std::uint32_t>(value)); }
    /// Doubles hash by IEEE-754 bit pattern: the key must distinguish every
    /// representable parameter value, not an approximation of it.
    void f64(double value) noexcept;
    void boolean(bool value) noexcept { u8(value ? 1 : 0); }
    void str(std::string_view text) noexcept {
        u64(text.size());
        hash_.update(text);
    }
    void bytes(const void* data, std::size_t size) noexcept {
        u64(size);
        hash_.update(data, size);
    }
    void digest(const Digest256& d) noexcept { hash_.update(d.data(), d.size()); }

    [[nodiscard]] Digest256 finish() noexcept { return hash_.finish(); }

private:
    Sha256 hash_;
};

} // namespace voltcache
