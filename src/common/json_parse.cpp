#include "common/json_parse.h"

#include <cctype>
#include <cstdlib>

namespace voltcache {

namespace {

constexpr std::size_t kMaxDepth = 128;

class Parser {
public:
    explicit Parser(std::string_view text) : text_(text) {}

    JsonValue parseDocument() {
        JsonValue value = parseValue(0);
        skipWhitespace();
        if (pos_ != text_.size()) fail("trailing characters after document");
        return value;
    }

private:
    [[noreturn]] void fail(const std::string& what) const {
        throw JsonParseError("json parse error at byte " + std::to_string(pos_) + ": " +
                             what);
    }

    void skipWhitespace() {
        while (pos_ < text_.size()) {
            const char c = text_[pos_];
            if (c != ' ' && c != '\t' && c != '\n' && c != '\r') break;
            ++pos_;
        }
    }

    [[nodiscard]] char peek() {
        skipWhitespace();
        if (pos_ >= text_.size()) fail("unexpected end of input");
        return text_[pos_];
    }

    void expect(char c) {
        if (peek() != c) fail(std::string("expected '") + c + "'");
        ++pos_;
    }

    bool consumeLiteral(std::string_view literal) {
        if (text_.substr(pos_, literal.size()) != literal) return false;
        pos_ += literal.size();
        return true;
    }

    JsonValue parseValue(std::size_t depth) {
        if (depth > kMaxDepth) fail("nesting too deep");
        const char c = peek();
        switch (c) {
            case '{': return parseObject(depth);
            case '[': return parseArray(depth);
            case '"': {
                JsonValue value;
                value.kind = JsonValue::Kind::String;
                value.string = parseString();
                return value;
            }
            case 't':
            case 'f': {
                JsonValue value;
                value.kind = JsonValue::Kind::Bool;
                if (consumeLiteral("true")) {
                    value.boolean = true;
                } else if (consumeLiteral("false")) {
                    value.boolean = false;
                } else {
                    fail("bad literal");
                }
                return value;
            }
            case 'n': {
                if (!consumeLiteral("null")) fail("bad literal");
                return JsonValue{};
            }
            default: return parseNumber();
        }
    }

    JsonValue parseObject(std::size_t depth) {
        expect('{');
        JsonValue value;
        value.kind = JsonValue::Kind::Object;
        if (peek() == '}') {
            ++pos_;
            return value;
        }
        while (true) {
            if (peek() != '"') fail("expected object key");
            std::string key = parseString();
            expect(':');
            value.members.emplace_back(std::move(key), parseValue(depth + 1));
            const char next = peek();
            if (next == ',') {
                ++pos_;
                continue;
            }
            if (next == '}') {
                ++pos_;
                return value;
            }
            fail("expected ',' or '}' in object");
        }
    }

    JsonValue parseArray(std::size_t depth) {
        expect('[');
        JsonValue value;
        value.kind = JsonValue::Kind::Array;
        if (peek() == ']') {
            ++pos_;
            return value;
        }
        while (true) {
            value.items.push_back(parseValue(depth + 1));
            const char next = peek();
            if (next == ',') {
                ++pos_;
                continue;
            }
            if (next == ']') {
                ++pos_;
                return value;
            }
            fail("expected ',' or ']' in array");
        }
    }

    std::string parseString() {
        expect('"');
        std::string out;
        while (true) {
            if (pos_ >= text_.size()) fail("unterminated string");
            const char c = text_[pos_++];
            if (c == '"') return out;
            if (static_cast<unsigned char>(c) < 0x20) fail("raw control character in string");
            if (c != '\\') {
                out.push_back(c);
                continue;
            }
            if (pos_ >= text_.size()) fail("unterminated escape");
            const char esc = text_[pos_++];
            switch (esc) {
                case '"': out.push_back('"'); break;
                case '\\': out.push_back('\\'); break;
                case '/': out.push_back('/'); break;
                case 'b': out.push_back('\b'); break;
                case 'f': out.push_back('\f'); break;
                case 'n': out.push_back('\n'); break;
                case 'r': out.push_back('\r'); break;
                case 't': out.push_back('\t'); break;
                case 'u': appendCodepoint(out, parseHex4()); break;
                default: fail("bad escape");
            }
        }
    }

    std::uint32_t parseHex4() {
        if (pos_ + 4 > text_.size()) fail("truncated \\u escape");
        std::uint32_t value = 0;
        for (int i = 0; i < 4; ++i) {
            const char c = text_[pos_++];
            value <<= 4;
            if (c >= '0' && c <= '9') {
                value |= static_cast<std::uint32_t>(c - '0');
            } else if (c >= 'a' && c <= 'f') {
                value |= static_cast<std::uint32_t>(c - 'a' + 10);
            } else if (c >= 'A' && c <= 'F') {
                value |= static_cast<std::uint32_t>(c - 'A' + 10);
            } else {
                fail("bad \\u escape");
            }
        }
        return value;
    }

    /// Encode a BMP codepoint as UTF-8 (surrogate pairs are combined when a
    /// high surrogate is followed by an escaped low surrogate).
    void appendCodepoint(std::string& out, std::uint32_t cp) {
        if (cp >= 0xD800 && cp <= 0xDBFF) {
            if (pos_ + 1 < text_.size() && text_[pos_] == '\\' && text_[pos_ + 1] == 'u') {
                pos_ += 2;
                const std::uint32_t low = parseHex4();
                if (low < 0xDC00 || low > 0xDFFF) fail("unpaired surrogate");
                cp = 0x10000 + ((cp - 0xD800) << 10) + (low - 0xDC00);
            } else {
                fail("unpaired surrogate");
            }
        } else if (cp >= 0xDC00 && cp <= 0xDFFF) {
            fail("unpaired surrogate");
        }
        if (cp < 0x80) {
            out.push_back(static_cast<char>(cp));
        } else if (cp < 0x800) {
            out.push_back(static_cast<char>(0xC0 | (cp >> 6)));
            out.push_back(static_cast<char>(0x80 | (cp & 0x3F)));
        } else if (cp < 0x10000) {
            out.push_back(static_cast<char>(0xE0 | (cp >> 12)));
            out.push_back(static_cast<char>(0x80 | ((cp >> 6) & 0x3F)));
            out.push_back(static_cast<char>(0x80 | (cp & 0x3F)));
        } else {
            out.push_back(static_cast<char>(0xF0 | (cp >> 18)));
            out.push_back(static_cast<char>(0x80 | ((cp >> 12) & 0x3F)));
            out.push_back(static_cast<char>(0x80 | ((cp >> 6) & 0x3F)));
            out.push_back(static_cast<char>(0x80 | (cp & 0x3F)));
        }
    }

    JsonValue parseNumber() {
        skipWhitespace();
        const std::size_t start = pos_;
        if (pos_ < text_.size() && text_[pos_] == '-') ++pos_;
        while (pos_ < text_.size() &&
               (std::isdigit(static_cast<unsigned char>(text_[pos_])) != 0 ||
                text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
                text_[pos_] == '+' || text_[pos_] == '-')) {
            ++pos_;
        }
        if (pos_ == start) fail("expected a value");
        const std::string token(text_.substr(start, pos_ - start));
        char* end = nullptr;
        const double value = std::strtod(token.c_str(), &end);
        if (end == nullptr || *end != '\0') {
            pos_ = start;
            fail("malformed number '" + token + "'");
        }
        JsonValue out;
        out.kind = JsonValue::Kind::Number;
        out.number = value;
        return out;
    }

    std::string_view text_;
    std::size_t pos_ = 0;
};

} // namespace

const JsonValue* JsonValue::find(std::string_view key) const noexcept {
    if (kind != Kind::Object) return nullptr;
    for (const auto& [name, value] : members) {
        if (name == key) return &value;
    }
    return nullptr;
}

double JsonValue::asNumber() const {
    if (kind != Kind::Number) throw JsonParseError("expected a number");
    return number;
}

bool JsonValue::asBool() const {
    if (kind != Kind::Bool) throw JsonParseError("expected a boolean");
    return boolean;
}

const std::string& JsonValue::asString() const {
    if (kind != Kind::String) throw JsonParseError("expected a string");
    return string;
}

double JsonValue::numberOr(std::string_view key, double fallback) const {
    const JsonValue* value = find(key);
    return value != nullptr && value->kind == Kind::Number ? value->number : fallback;
}

std::string JsonValue::stringOr(std::string_view key, const std::string& fallback) const {
    const JsonValue* value = find(key);
    return value != nullptr && value->kind == Kind::String ? value->string : fallback;
}

JsonValue parseJson(std::string_view text) { return Parser(text).parseDocument(); }

} // namespace voltcache
