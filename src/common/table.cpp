#include "common/table.h"

#include <algorithm>
#include <cstdio>

#include "common/contracts.h"

namespace voltcache {

TextTable::TextTable(std::vector<std::string> header) : header_(std::move(header)) {
    VC_EXPECTS(!header_.empty());
}

void TextTable::addRow(std::vector<std::string> cells) {
    VC_EXPECTS(cells.size() == header_.size());
    rows_.push_back(std::move(cells));
}

void TextTable::addNumericRow(const std::string& label, const std::vector<double>& values,
                              int precision) {
    std::vector<std::string> cells;
    cells.reserve(values.size() + 1);
    cells.push_back(label);
    for (double v : values) cells.push_back(formatDouble(v, precision));
    addRow(std::move(cells));
}

std::string TextTable::render() const {
    std::vector<std::size_t> widths(header_.size(), 0);
    for (std::size_t c = 0; c < header_.size(); ++c) widths[c] = header_[c].size();
    for (const auto& row : rows_) {
        for (std::size_t c = 0; c < row.size(); ++c) {
            widths[c] = std::max(widths[c], row[c].size());
        }
    }
    auto renderRow = [&](const std::vector<std::string>& row) {
        std::string line = "|";
        for (std::size_t c = 0; c < row.size(); ++c) {
            line += ' ';
            line += row[c];
            line.append(widths[c] - row[c].size(), ' ');
            line += " |";
        }
        line += '\n';
        return line;
    };
    std::string sep = "+";
    for (std::size_t w : widths) {
        sep.append(w + 2, '-');
        sep += '+';
    }
    sep += '\n';

    std::string out = sep + renderRow(header_) + sep;
    for (const auto& row : rows_) out += renderRow(row);
    out += sep;
    return out;
}

std::string TextTable::renderCsv() const {
    auto quote = [](const std::string& cell) {
        if (cell.find_first_of(",\"\n") == std::string::npos) return cell;
        std::string quoted = "\"";
        for (char ch : cell) {
            if (ch == '"') quoted += '"';
            quoted += ch;
        }
        quoted += '"';
        return quoted;
    };
    std::string out;
    auto appendRow = [&](const std::vector<std::string>& row) {
        for (std::size_t c = 0; c < row.size(); ++c) {
            if (c != 0) out += ',';
            out += quote(row[c]);
        }
        out += '\n';
    };
    appendRow(header_);
    for (const auto& row : rows_) appendRow(row);
    return out;
}

std::string formatDouble(double value, int precision) {
    char buf[64];
    std::snprintf(buf, sizeof buf, "%.*f", precision, value);
    return buf;
}

std::string formatPercent(double fraction, int precision) {
    char buf[64];
    std::snprintf(buf, sizeof buf, "%.*f%%", precision, fraction * 100.0);
    return buf;
}

std::string formatSci(double value, int precision) {
    char buf[64];
    std::snprintf(buf, sizeof buf, "%.*e", precision, value);
    return buf;
}

} // namespace voltcache
