// Deterministic, fast pseudo-random number generation for Monte Carlo fault
// injection. xoshiro256** (Blackman & Vigna) seeded through SplitMix64 so a
// single 64-bit seed yields a well-mixed state. Determinism matters: a
// (seed, voltage, array) triple must always produce the same fault map so
// experiments are reproducible and the linker/BBR placement computed for a
// map matches the map the timing simulation later injects.
#pragma once

#include <array>
#include <cstdint>
#include <limits>

namespace voltcache {

/// SplitMix64: used only to expand a user seed into xoshiro state.
class SplitMix64 {
public:
    explicit constexpr SplitMix64(std::uint64_t seed) noexcept : state_(seed) {}

    constexpr std::uint64_t next() noexcept {
        std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
        z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
        z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
        return z ^ (z >> 31);
    }

private:
    std::uint64_t state_;
};

/// xoshiro256** 1.0 — 256-bit state, period 2^256-1, passes BigCrush.
/// Satisfies UniformRandomBitGenerator so it composes with <random>.
class Rng {
public:
    using result_type = std::uint64_t;

    explicit constexpr Rng(std::uint64_t seed = 0x5eedDefa017ULL) noexcept { reseed(seed); }

    constexpr void reseed(std::uint64_t seed) noexcept {
        SplitMix64 mixer(seed);
        for (auto& word : state_) word = mixer.next();
    }

    static constexpr result_type min() noexcept { return 0; }
    static constexpr result_type max() noexcept {
        return std::numeric_limits<result_type>::max();
    }

    constexpr result_type operator()() noexcept { return next(); }

    constexpr std::uint64_t next() noexcept {
        const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
        const std::uint64_t t = state_[1] << 17;
        state_[2] ^= state_[0];
        state_[3] ^= state_[1];
        state_[1] ^= state_[2];
        state_[0] ^= state_[3];
        state_[2] ^= t;
        state_[3] = rotl(state_[3], 45);
        return result;
    }

    /// Uniform double in [0, 1): 53 top bits scaled by 2^-53.
    constexpr double nextDouble() noexcept {
        return static_cast<double>(next() >> 11) * 0x1.0p-53;
    }

    /// Uniform integer in [0, bound) via Lemire's multiply-shift reduction
    /// (bias negligible for 64-bit inputs at our bounds).
    constexpr std::uint64_t nextBelow(std::uint64_t bound) noexcept {
        if (bound == 0) return 0;
        const auto wide = static_cast<unsigned __int128>(next()) * bound;
        return static_cast<std::uint64_t>(wide >> 64);
    }

    /// Uniform integer in [lo, hi] inclusive.
    constexpr std::int64_t nextInRange(std::int64_t lo, std::int64_t hi) noexcept {
        const auto span = static_cast<std::uint64_t>(hi - lo) + 1;
        return lo + static_cast<std::int64_t>(nextBelow(span));
    }

    /// Bernoulli trial with success probability p.
    constexpr bool nextBernoulli(double p) noexcept { return nextDouble() < p; }

    /// Derive an independent child stream, e.g. one per Monte Carlo trial.
    constexpr Rng fork(std::uint64_t streamId) noexcept {
        Rng child(0);
        SplitMix64 mixer(next() ^ (0x9e3779b97f4a7c15ULL * (streamId + 1)));
        for (auto& word : child.state_) word = mixer.next();
        return child;
    }

private:
    static constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
        return (x << k) | (x >> (64 - k));
    }

    std::array<std::uint64_t, 4> state_{};
};

} // namespace voltcache
