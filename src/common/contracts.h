// Contract-check helpers in the spirit of the C++ Core Guidelines GSL
// (I.6/I.8): Expects() for preconditions, Ensures() for postconditions.
// Violations throw voltcache::ContractViolation so tests can observe them
// and Monte Carlo drivers can fail loudly instead of corrupting results.
#pragma once

#include <atomic>
#include <stdexcept>
#include <string>

namespace voltcache {

/// Thrown when a precondition or postcondition stated with VC_EXPECTS /
/// VC_ENSURES does not hold. Carries the failed expression and location.
class ContractViolation : public std::logic_error {
public:
    ContractViolation(const char* kind, const char* expr, const char* file, int line)
        : std::logic_error(std::string(kind) + " failed: " + expr + " at " + file + ":" +
                           std::to_string(line)) {}
};

namespace detail {

/// Observer invoked at the failure site, before the exception is built. The
/// sweep executor catches leg exceptions and rethrows the canonical first one
/// later, so this is the only point that still sees the failing expression in
/// situ — the flight recorder (obs/flight_recorder.h) installs its dump here.
/// The hook must not throw and must not assume heap integrity.
using ContractHook = void (*)(const char* kind, const char* expr, const char* file,
                              int line) noexcept;

/// Installed hook, or nullptr (the default). Defined in contracts.cpp.
extern std::atomic<ContractHook> g_contractHook;

/// Install/replace the hook; returns the previous one. Passing nullptr
/// uninstalls.
ContractHook setContractHook(ContractHook hook) noexcept;

[[noreturn]] inline void contractFail(const char* kind, const char* expr, const char* file,
                                      int line) {
    if (const ContractHook hook = g_contractHook.load(std::memory_order_acquire)) {
        hook(kind, expr, file, line);
    }
    throw ContractViolation(kind, expr, file, line);
}

} // namespace detail

} // namespace voltcache

/// Precondition check. Always on: the simulator's correctness (and the
/// statistical validity of experiment output) depends on these holding.
#define VC_EXPECTS(cond)                                                                \
    do {                                                                                \
        if (!(cond)) ::voltcache::detail::contractFail("Expects", #cond, __FILE__, __LINE__); \
    } while (false)

/// Postcondition check.
#define VC_ENSURES(cond)                                                                \
    do {                                                                                \
        if (!(cond)) ::voltcache::detail::contractFail("Ensures", #cond, __FILE__, __LINE__); \
    } while (false)

/// Internal-consistency check (neither pre- nor postcondition): two
/// independently maintained pieces of state must agree, e.g. per-scheme
/// L1Stats::l2Reads reconciling with the simulator's ActivityCounts.
#define VC_CHECK(cond)                                                                  \
    do {                                                                                \
        if (!(cond)) ::voltcache::detail::contractFail("Check", #cond, __FILE__, __LINE__); \
    } while (false)
