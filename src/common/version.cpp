#include "common/version.h"

#ifndef VOLTCACHE_GIT_DESCRIBE
#define VOLTCACHE_GIT_DESCRIBE "unknown"
#endif

namespace voltcache {

std::string_view buildVersion() noexcept { return VOLTCACHE_GIT_DESCRIBE; }

} // namespace voltcache
