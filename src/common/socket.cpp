#include "common/socket.h"

#include <algorithm>
#include <cerrno>
#include <cstring>
#include <stdexcept>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

namespace voltcache::net {

namespace {

[[noreturn]] void throwErrno(const char* what) {
    throw std::runtime_error(std::string(what) + ": " + std::strerror(errno));
}

timeval toTimeval(std::chrono::milliseconds timeout) {
    timeval tv{};
    tv.tv_sec = static_cast<time_t>(timeout.count() / 1000);
    tv.tv_usec = static_cast<suseconds_t>((timeout.count() % 1000) * 1000);
    return tv;
}

sockaddr_in loopbackAddress(std::uint16_t port) {
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = htons(port);
    return addr;
}

} // namespace

Socket::~Socket() { close(); }

Socket& Socket::operator=(Socket&& other) noexcept {
    if (this != &other) {
        close();
        fd_ = other.fd_;
        other.fd_ = -1;
    }
    return *this;
}

void Socket::close() noexcept {
    if (fd_ >= 0) {
        ::close(fd_);
        fd_ = -1;
    }
}

bool Socket::sendAll(std::string_view data) noexcept {
    std::size_t sent = 0;
    while (sent < data.size()) {
        const ssize_t n =
            ::send(fd_, data.data() + sent, data.size() - sent, MSG_NOSIGNAL);
        if (n < 0) {
            if (errno == EINTR) continue;
            return false;
        }
        sent += static_cast<std::size_t>(n);
    }
    return true;
}

std::size_t Socket::recvAll(std::string& out, std::size_t maxBytes) {
    const std::size_t start = out.size();
    char buffer[4096];
    while (out.size() - start < maxBytes) {
        const ssize_t n = ::recv(fd_, buffer, sizeof(buffer), 0);
        if (n < 0) {
            if (errno == EINTR) continue;
            throwErrno("recv");
        }
        if (n == 0) break;
        out.append(buffer, static_cast<std::size_t>(n));
    }
    return out.size() - start;
}

bool Socket::recvUntil(std::string& out, std::string_view delimiter,
                       std::size_t maxBytes) {
    char buffer[1024];
    while (out.size() < maxBytes) {
        if (out.find(delimiter) != std::string::npos) return true;
        const ssize_t n = ::recv(fd_, buffer, sizeof(buffer), 0);
        if (n < 0) {
            if (errno == EINTR) continue;
            throwErrno("recv");
        }
        if (n == 0) break;
        out.append(buffer, static_cast<std::size_t>(n));
    }
    return out.find(delimiter) != std::string::npos;
}

void Socket::setRecvTimeout(std::chrono::milliseconds timeout) noexcept {
    const timeval tv = toTimeval(timeout);
    ::setsockopt(fd_, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
}

void Socket::setSendTimeout(std::chrono::milliseconds timeout) noexcept {
    const timeval tv = toTimeval(timeout);
    ::setsockopt(fd_, SOL_SOCKET, SO_SNDTIMEO, &tv, sizeof(tv));
}

Socket::RecvStatus Socket::recvSome(std::string& out, std::size_t maxBytes) noexcept {
    char buffer[4096];
    const std::size_t want = std::min(maxBytes, sizeof(buffer));
    if (want == 0) return RecvStatus::Data;
    while (true) {
        const ssize_t n = ::recv(fd_, buffer, want, 0);
        if (n > 0) {
            out.append(buffer, static_cast<std::size_t>(n));
            return RecvStatus::Data;
        }
        if (n == 0) return RecvStatus::Eof;
        if (errno == EINTR) continue;
        if (errno == EAGAIN || errno == EWOULDBLOCK) return RecvStatus::Timeout;
        return RecvStatus::Error;
    }
}

TcpListener::TcpListener(std::uint16_t port) {
    const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd < 0) throwErrno("socket");
    listen_ = Socket(fd);
    const int one = 1;
    ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
    sockaddr_in addr = loopbackAddress(port);
    if (::bind(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) != 0) {
        throwErrno("bind");
    }
    if (::listen(fd, 16) != 0) throwErrno("listen");
    // Recover the actual port for the port==0 (ephemeral) case.
    sockaddr_in bound{};
    socklen_t len = sizeof(bound);
    if (::getsockname(fd, reinterpret_cast<sockaddr*>(&bound), &len) != 0) {
        throwErrno("getsockname");
    }
    port_ = ntohs(bound.sin_port);
}

Socket TcpListener::accept(std::chrono::milliseconds timeout) {
    if (stop_.load(std::memory_order_acquire) || !listen_.valid()) return {};
    pollfd pfd{};
    pfd.fd = listen_.fd();
    pfd.events = POLLIN;
    const int ready = ::poll(&pfd, 1, static_cast<int>(timeout.count()));
    if (ready <= 0 || stop_.load(std::memory_order_acquire)) return {};
    const int fd = ::accept(listen_.fd(), nullptr, nullptr);
    if (fd < 0) return {};
    return Socket(fd);
}

void TcpListener::requestStop() noexcept { stop_.store(true, std::memory_order_release); }

bool TcpListener::stopping() const noexcept {
    return stop_.load(std::memory_order_acquire);
}

Socket tcpConnect(const std::string& host, std::uint16_t port,
                  std::chrono::milliseconds timeout) {
    if (host != "127.0.0.1" && host != "localhost" && host != "::1") {
        throw std::runtime_error("tcpConnect: only loopback hosts are supported, got '" +
                                 host + "'");
    }
    const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd < 0) throwErrno("socket");
    Socket socket(fd);
    socket.setRecvTimeout(timeout);
    socket.setSendTimeout(timeout);
    sockaddr_in addr = loopbackAddress(port);
    if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) != 0) {
        throwErrno("connect");
    }
    return socket;
}

std::string httpGet(const std::string& host, std::uint16_t port, const std::string& path,
                    std::chrono::milliseconds timeout) {
    Socket socket = tcpConnect(host, port, timeout);
    const std::string request = "GET " + path +
                                " HTTP/1.1\r\n"
                                "Host: " +
                                host +
                                "\r\n"
                                "Connection: close\r\n"
                                "\r\n";
    if (!socket.sendAll(request)) throw std::runtime_error("httpGet: send failed");
    std::string response;
    socket.recvAll(response);
    const std::size_t headerEnd = response.find("\r\n\r\n");
    if (headerEnd == std::string::npos) {
        throw std::runtime_error("httpGet: malformed response (no header terminator)");
    }
    const std::size_t statusEnd = response.find("\r\n");
    const std::string statusLine = response.substr(0, statusEnd);
    if (statusLine.find(" 200 ") == std::string::npos) {
        throw std::runtime_error("httpGet " + path + ": " + statusLine);
    }
    return response.substr(headerEnd + 4);
}

} // namespace voltcache::net
