// Object-level program representation (paper Section IV-B2, Fig. 8).
//
// A Module is the output of "compilation": functions made of basic blocks,
// with *symbolic* control-flow targets and literal references recorded as
// relocations. This is exactly the currency BBR needs — the linker may place
// each basic block at any address (subject to fault-free chunks) and then
// resolve the relocations.
//
// Literal pools: as on ARM, the front end emits one shared pool per function
// (at the function's end); Ldl instructions reference pool slots through
// SharedLiteral relocations. The MoveLiteralPools pass rewrites these into
// per-block pools (BlockLiteral) so each block stays within the ±4KB
// PC-relative reach after relocation.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "isa/instruction.h"

namespace voltcache {

enum class RelocKind : std::uint8_t {
    BlockTarget,    ///< branch/jump to a basic block of the same function
    FunctionTarget, ///< Jal call to another function's entry block
    SharedLiteral,  ///< Ldl of a slot in the function's shared literal pool
    BlockLiteral,   ///< Ldl of a slot in this block's own literal pool
};

/// One unresolved reference inside a basic block.
struct Relocation {
    std::uint32_t instIndex = 0; ///< instruction within the block
    RelocKind kind = RelocKind::BlockTarget;
    std::uint32_t targetBlock = 0;  ///< BlockTarget: block index in this function
    std::string targetFunction;    ///< FunctionTarget: callee name
    std::uint32_t literalIndex = 0; ///< Shared/BlockLiteral: pool slot
};

struct BasicBlock {
    std::string label;
    std::vector<Instruction> insts;
    std::vector<Relocation> relocs;
    std::vector<std::int32_t> literalPool; ///< words emitted after the code

    /// Words this block occupies when placed (code + its literal pool).
    [[nodiscard]] std::uint32_t sizeWords() const noexcept {
        return static_cast<std::uint32_t>(insts.size() + literalPool.size());
    }

    /// True if control can fall off the end into the next block in layout
    /// order (no unconditional terminator). BBR forbids this post-transform.
    [[nodiscard]] bool hasFallthrough() const noexcept;

    /// Relocation attached to instruction `instIndex`, if any.
    [[nodiscard]] const Relocation* relocFor(std::uint32_t instIndex) const noexcept;
    [[nodiscard]] Relocation* relocFor(std::uint32_t instIndex) noexcept;
};

struct Function {
    std::string name;
    std::vector<BasicBlock> blocks; ///< layout order; blocks[0] is the entry
    std::vector<std::int32_t> sharedLiteralPool;

    [[nodiscard]] std::uint32_t totalWords() const noexcept;
};

/// Initial data-memory contents.
struct DataSegment {
    std::uint32_t baseAddr = 0; ///< byte address, word aligned
    std::vector<std::int32_t> words;
};

struct Module {
    std::vector<Function> functions;
    std::vector<DataSegment> data;
    std::string entryFunction = "main";

    [[nodiscard]] const Function* findFunction(std::string_view name) const noexcept;
    [[nodiscard]] Function* findFunction(std::string_view name) noexcept;

    /// Static instruction + literal word count across all functions.
    [[nodiscard]] std::uint32_t totalCodeWords() const noexcept;

    /// Structural checks: relocation targets exist, entry function exists,
    /// control-flow instructions carry relocations, data segments aligned.
    /// Throws std::invalid_argument describing the first violation.
    void validate() const;
};

} // namespace voltcache
