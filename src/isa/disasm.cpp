#include "isa/disasm.h"

#include <cstdio>

namespace voltcache {

namespace {

std::string reg(unsigned r) { return "r" + std::to_string(r); }

} // namespace

std::string disassemble(const Instruction& inst) {
    const std::string m(mnemonic(inst.op));
    char buf[96];
    switch (inst.op) {
        case Opcode::Nop:
        case Opcode::Halt: return m;
        case Opcode::Lui:
            std::snprintf(buf, sizeof buf, "%s %s, 0x%x", m.c_str(), reg(inst.rd).c_str(),
                          static_cast<unsigned>(inst.imm));
            return buf;
        case Opcode::Jal:
            std::snprintf(buf, sizeof buf, "%s %s, %+d", m.c_str(), reg(inst.rd).c_str(),
                          inst.imm);
            return buf;
        case Opcode::Jalr:
            std::snprintf(buf, sizeof buf, "%s %s, %s, %d", m.c_str(), reg(inst.rd).c_str(),
                          reg(inst.rs1).c_str(), inst.imm);
            return buf;
        case Opcode::Lw:
        case Opcode::Ldl:
            std::snprintf(buf, sizeof buf, "%s %s, %d(%s)", m.c_str(), reg(inst.rd).c_str(),
                          inst.imm, inst.op == Opcode::Ldl ? "pc" : reg(inst.rs1).c_str());
            return buf;
        case Opcode::Sw:
            std::snprintf(buf, sizeof buf, "%s %s, %d(%s)", m.c_str(), reg(inst.rs2).c_str(),
                          inst.imm, reg(inst.rs1).c_str());
            return buf;
        default:
            if (isConditionalBranch(inst.op)) {
                std::snprintf(buf, sizeof buf, "%s %s, %s, %+d", m.c_str(),
                              reg(inst.rs1).c_str(), reg(inst.rs2).c_str(), inst.imm);
                return buf;
            }
            if (inst.op >= Opcode::Addi && inst.op <= Opcode::Slti) {
                std::snprintf(buf, sizeof buf, "%s %s, %s, %d", m.c_str(),
                              reg(inst.rd).c_str(), reg(inst.rs1).c_str(), inst.imm);
                return buf;
            }
            std::snprintf(buf, sizeof buf, "%s %s, %s, %s", m.c_str(), reg(inst.rd).c_str(),
                          reg(inst.rs1).c_str(), reg(inst.rs2).c_str());
            return buf;
    }
}

std::string disassemble(const Module& module) {
    std::string out;
    for (const auto& fn : module.functions) {
        out += fn.name + ":\n";
        for (std::size_t b = 0; b < fn.blocks.size(); ++b) {
            const auto& block = fn.blocks[b];
            out += "  ." + block.label + ":\n";
            for (std::size_t i = 0; i < block.insts.size(); ++i) {
                out += "    " + disassemble(block.insts[i]);
                if (const auto* reloc = block.relocFor(static_cast<std::uint32_t>(i))) {
                    switch (reloc->kind) {
                        case RelocKind::BlockTarget:
                            out += "  -> ." + fn.blocks[reloc->targetBlock].label;
                            break;
                        case RelocKind::FunctionTarget:
                            out += "  -> " + reloc->targetFunction;
                            break;
                        case RelocKind::SharedLiteral:
                            out += "  -> lit[" + std::to_string(reloc->literalIndex) + "]=" +
                                   std::to_string(fn.sharedLiteralPool[reloc->literalIndex]);
                            break;
                        case RelocKind::BlockLiteral:
                            out += "  -> blit[" + std::to_string(reloc->literalIndex) + "]=" +
                                   std::to_string(block.literalPool[reloc->literalIndex]);
                            break;
                    }
                }
                out += '\n';
            }
            for (std::size_t l = 0; l < block.literalPool.size(); ++l) {
                out += "    .word " + std::to_string(block.literalPool[l]) + '\n';
            }
        }
        for (std::size_t l = 0; l < fn.sharedLiteralPool.size(); ++l) {
            out += "  .pool " + std::to_string(fn.sharedLiteralPool[l]) + '\n';
        }
    }
    return out;
}

} // namespace voltcache
