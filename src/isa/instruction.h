// The "vr32" mini-RISC ISA.
//
// The paper evaluates an ARM system but notes BBR applies to any ISA given
// binary control (Section IV-B2). We define a compact 32-bit RISC that keeps
// the two ARM properties BBR's code transformations exist for:
//   * fall-through control flow between basic blocks (transformation 1),
//   * PC-relative literal-pool loads with a limited ±4KB reach
//     (transformation 3).
//
// Properties:
//   * 16 general-purpose registers; r0 reads as zero, r15 is the link
//     register by convention.
//   * fixed 32-bit instructions, one per 4-byte word (matching the caches'
//     4B word granularity).
//   * word-sized loads/stores only — the paper's caches are managed at
//     32-bit word granularity.
#pragma once

#include <cstdint>
#include <stdexcept>
#include <string_view>

namespace voltcache {

enum class Opcode : std::uint8_t {
    // R-type: rd = rs1 op rs2
    Add, Sub, And, Or, Xor, Sll, Srl, Sra, Mul, Div, Rem, Slt, Sltu,
    // I-type: rd = rs1 op imm (imm: 18-bit signed)
    Addi, Andi, Ori, Xori, Slli, Srli, Srai, Slti,
    // U-type: rd = imm22 << 10
    Lui,
    // Memory: Lw rd = mem[rs1 + imm]; Sw mem[rs1 + imm] = rs2
    Lw, Sw,
    // Ldl rd = mem[pc + imm]: PC-relative literal-pool load. The linker
    // must keep |imm| within the ±4KB page reach (paper Fig. 8).
    Ldl,
    // B-type: conditional PC-relative branches (imm: signed word offset)
    Beq, Bne, Blt, Bge, Bltu, Bgeu,
    // J-type: Jal rd = pc+4, pc += imm (imm: signed word offset).
    // Jalr: rd = pc+4, pc = rs1 + imm (returns, indirect calls).
    Jal, Jalr,
    // System
    Nop, Halt,
};

inline constexpr unsigned kOpcodeCount = static_cast<unsigned>(Opcode::Halt) + 1;
inline constexpr unsigned kNumRegisters = 16;
inline constexpr unsigned kZeroRegister = 0;
inline constexpr unsigned kLinkRegister = 15;

/// Immediate field widths (signed bits available per format).
inline constexpr int kImmBitsIType = 18; ///< Addi… / Lw / Sw / Ldl / branches
inline constexpr int kImmBitsJType = 22; ///< Jal / Lui

/// Decoded instruction. `imm` for control flow holds a *word* offset
/// relative to the instruction's own address (post-link), or is paired with
/// a symbolic target before linking (see BlockRef in module.h).
struct Instruction {
    Opcode op = Opcode::Nop;
    std::uint8_t rd = 0;
    std::uint8_t rs1 = 0;
    std::uint8_t rs2 = 0;
    std::int32_t imm = 0;

    bool operator==(const Instruction&) const = default;
};

/// Instruction classification helpers.
[[nodiscard]] constexpr bool isConditionalBranch(Opcode op) noexcept {
    return op >= Opcode::Beq && op <= Opcode::Bgeu;
}
[[nodiscard]] constexpr bool isControlFlow(Opcode op) noexcept {
    return isConditionalBranch(op) || op == Opcode::Jal || op == Opcode::Jalr ||
           op == Opcode::Halt;
}
[[nodiscard]] constexpr bool isLoad(Opcode op) noexcept {
    return op == Opcode::Lw || op == Opcode::Ldl;
}
[[nodiscard]] constexpr bool isStore(Opcode op) noexcept { return op == Opcode::Sw; }
[[nodiscard]] constexpr bool isMemory(Opcode op) noexcept {
    return isLoad(op) || isStore(op);
}

/// Whole-instruction classification, folding in the register conventions
/// (r0 discards the link value; r15/ra holds return addresses).
[[nodiscard]] constexpr bool isCall(const Instruction& inst) noexcept {
    return inst.op == Opcode::Jal && inst.rd != kZeroRegister;
}
[[nodiscard]] constexpr bool isUnconditionalJump(const Instruction& inst) noexcept {
    return inst.op == Opcode::Jal && inst.rd == kZeroRegister;
}
[[nodiscard]] constexpr bool isReturn(const Instruction& inst) noexcept {
    return inst.op == Opcode::Jalr && inst.rs1 == kLinkRegister;
}
[[nodiscard]] constexpr bool isIndirectJump(const Instruction& inst) noexcept {
    return inst.op == Opcode::Jalr && inst.rs1 != kLinkRegister;
}

/// Mnemonic for disassembly and diagnostics.
[[nodiscard]] std::string_view mnemonic(Opcode op) noexcept;

/// Pack to the 32-bit wire format. Throws EncodingError when a field is out
/// of range (e.g. a branch displacement beyond 18 signed bits).
[[nodiscard]] std::uint32_t encode(const Instruction& inst);

/// Unpack from the wire format. Round-trips with encode().
[[nodiscard]] Instruction decode(std::uint32_t word);

/// Thrown when an instruction field cannot be represented.
class EncodingError : public std::invalid_argument {
public:
    using std::invalid_argument::invalid_argument;
};

} // namespace voltcache
