// Text assembler for vr32: parses a small .s dialect into a Module, the
// same object form the builder DSL produces — so hand-written or generated
// assembly can flow through the BBR compiler/linker tool chain.
//
// Syntax (one statement per line; '#' or ';' start comments):
//
//   .func NAME            start a function (first one is the entry, or use
//   .entry NAME           to pick another)
//   LABEL:                start a new basic block
//   add r1, r2, r3        R-type ops: add sub and or xor sll srl sra mul
//                         div rem slt sltu
//   addi r1, r2, -5       immediate ops: addi andi ori xori slli srli srai
//                         slti; constants are decimal or 0x hex
//   lw r1, 8(r2)          loads/stores with imm(base) addressing
//   sw r3, -4(sp)         register names: r0..r15, sp (=r14), ra (=r15)
//   ldl r1, =123456       PC-relative literal load; '=value' allocates (and
//                         dedups) a slot in the function's shared pool
//   beq r1, r2, LABEL     branches target labels of the same function
//   jmp LABEL             unconditional jump (jal r0)
//   call NAME             function call (jal ra)
//   ret / nop / halt
//   li r1, 0x12345678     pseudo: addi or lui+ori as needed
//   mv r1, r2             pseudo: addi r1, r2, 0
//   .data 0x100000        start a data segment at a byte address
//   .word 1 2 0x3 -4      words appended to the current data segment
#pragma once

#include <stdexcept>
#include <string>
#include <string_view>

#include "isa/module.h"

namespace voltcache {

/// Parse error with a 1-based line number in what().
class AsmError : public std::runtime_error {
public:
    using std::runtime_error::runtime_error;
};

/// Assemble a full source text into a validated Module.
[[nodiscard]] Module assemble(std::string_view source);

} // namespace voltcache
