#include "isa/instruction.h"

#include <array>
#include <stdexcept>
#include <string>

#include "common/contracts.h"

namespace voltcache {

namespace {

// Wire format, 32 bits:
//   [31:26] opcode
//   R-type:  rd[25:22] rs1[21:18] rs2[17:14]
//   I-type:  rd[25:22] rs1[21:18] imm18[17:0]   (ALU-imm, Lw, Ldl, Jalr)
//   S-type:  rs2[25:22] rs1[21:18] imm18[17:0]  (Sw)
//   B-type:  rs1[25:22] rs2[21:18] imm18[17:0]  (branches)
//   J/U-type: rd[25:22] imm22[21:0]             (Jal, Lui)

enum class Format : std::uint8_t { R, I, S, B, JU, None };

Format formatOf(Opcode op) {
    if (op <= Opcode::Sltu) return Format::R;
    if (op <= Opcode::Slti) return Format::I;
    if (op == Opcode::Lui || op == Opcode::Jal) return Format::JU;
    if (op == Opcode::Lw || op == Opcode::Ldl || op == Opcode::Jalr) return Format::I;
    if (op == Opcode::Sw) return Format::S;
    if (isConditionalBranch(op)) return Format::B;
    return Format::None; // Nop, Halt
}

bool fitsSigned(std::int64_t value, int bits) {
    const std::int64_t lo = -(std::int64_t{1} << (bits - 1));
    const std::int64_t hi = (std::int64_t{1} << (bits - 1)) - 1;
    return value >= lo && value <= hi;
}

std::uint32_t maskBits(std::int32_t value, int bits) {
    return static_cast<std::uint32_t>(value) & ((1u << bits) - 1u);
}

std::int32_t signExtend(std::uint32_t value, int bits) {
    const std::uint32_t sign = 1u << (bits - 1);
    return static_cast<std::int32_t>((value ^ sign) - sign);
}

void checkRegister(unsigned reg, const char* field) {
    if (reg >= kNumRegisters) {
        throw EncodingError(std::string("register field out of range: ") + field);
    }
}

} // namespace

std::string_view mnemonic(Opcode op) noexcept {
    static constexpr std::array<std::string_view, kOpcodeCount> kNames = {
        "add",  "sub",  "and",  "or",   "xor",  "sll",  "srl", "sra",  "mul",
        "div",  "rem",  "slt",  "sltu", "addi", "andi", "ori", "xori", "slli",
        "srli", "srai", "slti", "lui",  "lw",   "sw",   "ldl", "beq",  "bne",
        "blt",  "bge",  "bltu", "bgeu", "jal",  "jalr", "nop", "halt"};
    return kNames[static_cast<std::uint8_t>(op)];
}

std::uint32_t encode(const Instruction& inst) {
    checkRegister(inst.rd, "rd");
    checkRegister(inst.rs1, "rs1");
    checkRegister(inst.rs2, "rs2");
    std::uint32_t word = static_cast<std::uint32_t>(inst.op) << 26;
    switch (formatOf(inst.op)) {
        case Format::R:
            word |= static_cast<std::uint32_t>(inst.rd) << 22;
            word |= static_cast<std::uint32_t>(inst.rs1) << 18;
            word |= static_cast<std::uint32_t>(inst.rs2) << 14;
            break;
        case Format::I:
            if (!fitsSigned(inst.imm, kImmBitsIType)) {
                throw EncodingError("I-type immediate out of 18-bit range");
            }
            word |= static_cast<std::uint32_t>(inst.rd) << 22;
            word |= static_cast<std::uint32_t>(inst.rs1) << 18;
            word |= maskBits(inst.imm, kImmBitsIType);
            break;
        case Format::S:
            if (!fitsSigned(inst.imm, kImmBitsIType)) {
                throw EncodingError("S-type immediate out of 18-bit range");
            }
            word |= static_cast<std::uint32_t>(inst.rs2) << 22;
            word |= static_cast<std::uint32_t>(inst.rs1) << 18;
            word |= maskBits(inst.imm, kImmBitsIType);
            break;
        case Format::B:
            if (!fitsSigned(inst.imm, kImmBitsIType)) {
                throw EncodingError("branch displacement out of 18-bit range");
            }
            word |= static_cast<std::uint32_t>(inst.rs1) << 22;
            word |= static_cast<std::uint32_t>(inst.rs2) << 18;
            word |= maskBits(inst.imm, kImmBitsIType);
            break;
        case Format::JU:
            if (!fitsSigned(inst.imm, kImmBitsJType)) {
                throw EncodingError("J/U-type immediate out of 22-bit range");
            }
            word |= static_cast<std::uint32_t>(inst.rd) << 22;
            word |= maskBits(inst.imm, kImmBitsJType);
            break;
        case Format::None: break;
    }
    return word;
}

Instruction decode(std::uint32_t word) {
    const auto opBits = word >> 26;
    if (opBits >= kOpcodeCount) throw EncodingError("unknown opcode");
    Instruction inst;
    inst.op = static_cast<Opcode>(opBits);
    switch (formatOf(inst.op)) {
        case Format::R:
            inst.rd = static_cast<std::uint8_t>((word >> 22) & 0xF);
            inst.rs1 = static_cast<std::uint8_t>((word >> 18) & 0xF);
            inst.rs2 = static_cast<std::uint8_t>((word >> 14) & 0xF);
            break;
        case Format::I:
            inst.rd = static_cast<std::uint8_t>((word >> 22) & 0xF);
            inst.rs1 = static_cast<std::uint8_t>((word >> 18) & 0xF);
            inst.imm = signExtend(word & 0x3FFFF, kImmBitsIType);
            break;
        case Format::S:
            inst.rs2 = static_cast<std::uint8_t>((word >> 22) & 0xF);
            inst.rs1 = static_cast<std::uint8_t>((word >> 18) & 0xF);
            inst.imm = signExtend(word & 0x3FFFF, kImmBitsIType);
            break;
        case Format::B:
            inst.rs1 = static_cast<std::uint8_t>((word >> 22) & 0xF);
            inst.rs2 = static_cast<std::uint8_t>((word >> 18) & 0xF);
            inst.imm = signExtend(word & 0x3FFFF, kImmBitsIType);
            break;
        case Format::JU:
            inst.rd = static_cast<std::uint8_t>((word >> 22) & 0xF);
            inst.imm = signExtend(word & 0x3FFFFF, kImmBitsJType);
            break;
        case Format::None: break;
    }
    return inst;
}

} // namespace voltcache
