#include "isa/builder.h"

namespace voltcache {

BlockHandle FunctionBuilder::newBlock(std::string label) {
    auto& fn = function();
    BasicBlock block;
    block.label = label.empty() ? "bb" + std::to_string(fn.blocks.size()) : std::move(label);
    fn.blocks.push_back(std::move(block));
    return BlockHandle{static_cast<std::uint32_t>(fn.blocks.size() - 1)};
}

FunctionBuilder& FunctionBuilder::at(BlockHandle blockHandle) {
    VC_EXPECTS(blockHandle.index < function().blocks.size());
    current_ = blockHandle.index;
    return *this;
}

const std::string& FunctionBuilder::name() const noexcept {
    return owner_->module_.functions[functionIndex_].name;
}

Function& FunctionBuilder::function() { return owner_->module_.functions[functionIndex_]; }

BasicBlock& FunctionBuilder::block() { return function().blocks[current_]; }

FunctionBuilder& FunctionBuilder::emitR(Opcode op, Reg rd, Reg rs1, Reg rs2) {
    block().insts.push_back(Instruction{op, rd, rs1, rs2, 0});
    return *this;
}

FunctionBuilder& FunctionBuilder::emitI(Opcode op, Reg rd, Reg rs1, std::int32_t imm) {
    block().insts.push_back(Instruction{op, rd, rs1, 0, imm});
    return *this;
}

FunctionBuilder& FunctionBuilder::emitB(Opcode op, Reg rs1, Reg rs2, BlockHandle target) {
    auto& bb = block();
    Relocation reloc;
    reloc.instIndex = static_cast<std::uint32_t>(bb.insts.size());
    reloc.kind = RelocKind::BlockTarget;
    reloc.targetBlock = target.index;
    bb.relocs.push_back(reloc);
    bb.insts.push_back(Instruction{op, 0, rs1, rs2, 0});
    return *this;
}

FunctionBuilder& FunctionBuilder::li(Reg rd, std::int32_t value) {
    constexpr std::int32_t kMax = (1 << (kImmBitsIType - 1)) - 1;
    constexpr std::int32_t kMin = -(1 << (kImmBitsIType - 1));
    if (value >= kMin && value <= kMax) return addi(rd, regs::r0, value);
    // lui loads bits [31:10] (rd = imm22 << 10); ori fills bits [9:0].
    // C++20 guarantees arithmetic right shift, so value >> 10 is the
    // sign-preserving 22-bit upper immediate.
    emitI(Opcode::Lui, rd, 0, value >> 10);
    return ori(rd, rd, value & 0x3FF);
}

FunctionBuilder& FunctionBuilder::ldlConst(Reg rd, std::int32_t value) {
    auto& fn = function();
    // Reuse an existing pool slot with the same value.
    std::uint32_t slot = 0;
    for (; slot < fn.sharedLiteralPool.size(); ++slot) {
        if (fn.sharedLiteralPool[slot] == value) break;
    }
    if (slot == fn.sharedLiteralPool.size()) fn.sharedLiteralPool.push_back(value);
    auto& bb = block();
    Relocation reloc;
    reloc.instIndex = static_cast<std::uint32_t>(bb.insts.size());
    reloc.kind = RelocKind::SharedLiteral;
    reloc.literalIndex = slot;
    bb.relocs.push_back(reloc);
    bb.insts.push_back(Instruction{Opcode::Ldl, rd, 0, 0, 0});
    return *this;
}

FunctionBuilder& FunctionBuilder::sw(Reg rs2, Reg rs1, std::int32_t imm) {
    block().insts.push_back(Instruction{Opcode::Sw, 0, rs1, rs2, imm});
    return *this;
}

FunctionBuilder& FunctionBuilder::jmp(BlockHandle target) {
    auto& bb = block();
    Relocation reloc;
    reloc.instIndex = static_cast<std::uint32_t>(bb.insts.size());
    reloc.kind = RelocKind::BlockTarget;
    reloc.targetBlock = target.index;
    bb.relocs.push_back(reloc);
    bb.insts.push_back(Instruction{Opcode::Jal, regs::r0, 0, 0, 0});
    return *this;
}

FunctionBuilder& FunctionBuilder::call(const std::string& functionName) {
    auto& bb = block();
    Relocation reloc;
    reloc.instIndex = static_cast<std::uint32_t>(bb.insts.size());
    reloc.kind = RelocKind::FunctionTarget;
    reloc.targetFunction = functionName;
    bb.relocs.push_back(reloc);
    bb.insts.push_back(Instruction{Opcode::Jal, regs::ra, 0, 0, 0});
    return *this;
}

FunctionBuilder& FunctionBuilder::ret() {
    block().insts.push_back(Instruction{Opcode::Jalr, regs::r0, regs::ra, 0, 0});
    return *this;
}

FunctionBuilder& FunctionBuilder::halt() {
    block().insts.push_back(Instruction{Opcode::Halt, 0, 0, 0, 0});
    return *this;
}

FunctionBuilder& FunctionBuilder::nop() {
    block().insts.push_back(Instruction{Opcode::Nop, 0, 0, 0, 0});
    return *this;
}

FunctionBuilder ModuleBuilder::function(std::string name) {
    VC_EXPECTS(module_.findFunction(name) == nullptr);
    Function fn;
    fn.name = std::move(name);
    module_.functions.push_back(std::move(fn));
    FunctionBuilder builder(*this, static_cast<std::uint32_t>(module_.functions.size() - 1));
    builder.newBlock("entry");
    return builder;
}

void ModuleBuilder::data(std::uint32_t baseAddr, std::vector<std::int32_t> words) {
    VC_EXPECTS(baseAddr % 4 == 0);
    module_.data.push_back(DataSegment{baseAddr, std::move(words)});
}

Module ModuleBuilder::take() {
    module_.validate();
    return std::move(module_);
}

} // namespace voltcache
