// Fluent assembler used to author the benchmark programs in C++ (replacing
// the paper's gcc/LLVM-compiled SPEC/MiBench binaries). Produces Modules
// with symbolic relocations, i.e. the same object-level form a compiler
// front end would hand to the BBR linker.
//
// Usage sketch:
//   ModuleBuilder mb;
//   auto f = mb.function("main");
//   auto loop = f.newBlock("loop"), done = f.newBlock("done");
//   f.li(r1, 100);
//   f.jmp(loop);
//   f.at(loop);
//   f.addi(r1, r1, -1);
//   f.bne(r1, r0, loop);
//   f.jmpFallthrough(done);   // explicit for clarity; passes can also insert
//   f.at(done); f.halt();
//   Module module = mb.take();
#pragma once

#include <cstdint>
#include <string>
#include <utility>

#include "common/contracts.h"
#include "isa/module.h"

namespace voltcache {

/// Register name type for the builder. Plain integers keep call sites terse.
using Reg = std::uint8_t;

namespace regs {
inline constexpr Reg r0 = 0, r1 = 1, r2 = 2, r3 = 3, r4 = 4, r5 = 5, r6 = 6, r7 = 7,
                     r8 = 8, r9 = 9, r10 = 10, r11 = 11, r12 = 12, r13 = 13, r14 = 14,
                     sp = 14, // stack pointer (alias of r14)
                     ra = 15; // link register
} // namespace regs

class ModuleBuilder;

/// Opaque handle to a block being built (index in layout order).
struct BlockHandle {
    std::uint32_t index = 0;
};

class FunctionBuilder {
public:
    /// Create a new block appended in layout order; does not change the
    /// emission cursor.
    BlockHandle newBlock(std::string label = {});

    /// Move the emission cursor to a block.
    FunctionBuilder& at(BlockHandle block);
    [[nodiscard]] BlockHandle current() const noexcept { return BlockHandle{current_}; }

    // --- R-type ---
    FunctionBuilder& add(Reg rd, Reg rs1, Reg rs2) { return emitR(Opcode::Add, rd, rs1, rs2); }
    FunctionBuilder& sub(Reg rd, Reg rs1, Reg rs2) { return emitR(Opcode::Sub, rd, rs1, rs2); }
    FunctionBuilder& and_(Reg rd, Reg rs1, Reg rs2) { return emitR(Opcode::And, rd, rs1, rs2); }
    FunctionBuilder& or_(Reg rd, Reg rs1, Reg rs2) { return emitR(Opcode::Or, rd, rs1, rs2); }
    FunctionBuilder& xor_(Reg rd, Reg rs1, Reg rs2) { return emitR(Opcode::Xor, rd, rs1, rs2); }
    FunctionBuilder& sll(Reg rd, Reg rs1, Reg rs2) { return emitR(Opcode::Sll, rd, rs1, rs2); }
    FunctionBuilder& srl(Reg rd, Reg rs1, Reg rs2) { return emitR(Opcode::Srl, rd, rs1, rs2); }
    FunctionBuilder& sra(Reg rd, Reg rs1, Reg rs2) { return emitR(Opcode::Sra, rd, rs1, rs2); }
    FunctionBuilder& mul(Reg rd, Reg rs1, Reg rs2) { return emitR(Opcode::Mul, rd, rs1, rs2); }
    FunctionBuilder& div(Reg rd, Reg rs1, Reg rs2) { return emitR(Opcode::Div, rd, rs1, rs2); }
    FunctionBuilder& rem(Reg rd, Reg rs1, Reg rs2) { return emitR(Opcode::Rem, rd, rs1, rs2); }
    FunctionBuilder& slt(Reg rd, Reg rs1, Reg rs2) { return emitR(Opcode::Slt, rd, rs1, rs2); }
    FunctionBuilder& sltu(Reg rd, Reg rs1, Reg rs2) {
        return emitR(Opcode::Sltu, rd, rs1, rs2);
    }

    // --- I-type ---
    FunctionBuilder& addi(Reg rd, Reg rs1, std::int32_t imm) {
        return emitI(Opcode::Addi, rd, rs1, imm);
    }
    FunctionBuilder& andi(Reg rd, Reg rs1, std::int32_t imm) {
        return emitI(Opcode::Andi, rd, rs1, imm);
    }
    FunctionBuilder& ori(Reg rd, Reg rs1, std::int32_t imm) {
        return emitI(Opcode::Ori, rd, rs1, imm);
    }
    FunctionBuilder& xori(Reg rd, Reg rs1, std::int32_t imm) {
        return emitI(Opcode::Xori, rd, rs1, imm);
    }
    FunctionBuilder& slli(Reg rd, Reg rs1, std::int32_t imm) {
        return emitI(Opcode::Slli, rd, rs1, imm);
    }
    FunctionBuilder& srli(Reg rd, Reg rs1, std::int32_t imm) {
        return emitI(Opcode::Srli, rd, rs1, imm);
    }
    FunctionBuilder& srai(Reg rd, Reg rs1, std::int32_t imm) {
        return emitI(Opcode::Srai, rd, rs1, imm);
    }
    FunctionBuilder& slti(Reg rd, Reg rs1, std::int32_t imm) {
        return emitI(Opcode::Slti, rd, rs1, imm);
    }

    /// mv rd, rs — materialized as addi rd, rs, 0.
    FunctionBuilder& mv(Reg rd, Reg rs) { return addi(rd, rs, 0); }

    /// Load a 32-bit constant: addi when it fits 18 signed bits, otherwise
    /// lui+ori. (Benchmarks use ldlConst for pool-worthy constants.)
    FunctionBuilder& li(Reg rd, std::int32_t value);

    /// Load a constant through the function's shared literal pool — the
    /// PC-relative pattern BBR's MoveLiteralPools transformation exists for.
    FunctionBuilder& ldlConst(Reg rd, std::int32_t value);

    // --- memory ---
    FunctionBuilder& lw(Reg rd, Reg rs1, std::int32_t imm) {
        return emitI(Opcode::Lw, rd, rs1, imm);
    }
    FunctionBuilder& sw(Reg rs2, Reg rs1, std::int32_t imm);

    // --- control flow (targets are symbolic block handles) ---
    FunctionBuilder& beq(Reg a, Reg b, BlockHandle t) { return emitB(Opcode::Beq, a, b, t); }
    FunctionBuilder& bne(Reg a, Reg b, BlockHandle t) { return emitB(Opcode::Bne, a, b, t); }
    FunctionBuilder& blt(Reg a, Reg b, BlockHandle t) { return emitB(Opcode::Blt, a, b, t); }
    FunctionBuilder& bge(Reg a, Reg b, BlockHandle t) { return emitB(Opcode::Bge, a, b, t); }
    FunctionBuilder& bltu(Reg a, Reg b, BlockHandle t) { return emitB(Opcode::Bltu, a, b, t); }
    FunctionBuilder& bgeu(Reg a, Reg b, BlockHandle t) { return emitB(Opcode::Bgeu, a, b, t); }

    /// Unconditional jump to a block (jal r0).
    FunctionBuilder& jmp(BlockHandle target);
    /// Call another function by name (jal ra).
    FunctionBuilder& call(const std::string& functionName);
    /// Return (jalr r0, ra, 0).
    FunctionBuilder& ret();
    FunctionBuilder& halt();
    FunctionBuilder& nop();

    /// Name of the function being built.
    [[nodiscard]] const std::string& name() const noexcept;

private:
    friend class ModuleBuilder;
    FunctionBuilder(ModuleBuilder& owner, std::uint32_t functionIndex) noexcept
        : owner_(&owner), functionIndex_(functionIndex) {}

    FunctionBuilder& emitR(Opcode op, Reg rd, Reg rs1, Reg rs2);
    FunctionBuilder& emitI(Opcode op, Reg rd, Reg rs1, std::int32_t imm);
    FunctionBuilder& emitB(Opcode op, Reg rs1, Reg rs2, BlockHandle target);
    BasicBlock& block();
    Function& function();

    ModuleBuilder* owner_;
    std::uint32_t functionIndex_;
    std::uint32_t current_ = 0;
};

class ModuleBuilder {
public:
    /// Start a new function; its entry block is created automatically and
    /// selected as the emission cursor.
    FunctionBuilder function(std::string name);

    /// Add an initialized data segment (byte address, word aligned).
    void data(std::uint32_t baseAddr, std::vector<std::int32_t> words);

    void setEntry(std::string functionName) { module_.entryFunction = std::move(functionName); }

    /// Validate and take the finished module.
    [[nodiscard]] Module take();

private:
    friend class FunctionBuilder;
    Module module_;
};

} // namespace voltcache
