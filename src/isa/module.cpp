#include "isa/module.h"

#include <stdexcept>

namespace voltcache {

namespace {

[[noreturn]] void fail(const std::string& what) { throw std::invalid_argument(what); }

} // namespace

bool BasicBlock::hasFallthrough() const noexcept {
    if (insts.empty()) return true;
    const Opcode last = insts.back().op;
    // A conditional branch still falls through on the not-taken path; only
    // an unconditional transfer seals the block.
    return !(last == Opcode::Jal || last == Opcode::Jalr || last == Opcode::Halt);
}

const Relocation* BasicBlock::relocFor(std::uint32_t instIndex) const noexcept {
    for (const auto& reloc : relocs) {
        if (reloc.instIndex == instIndex) return &reloc;
    }
    return nullptr;
}

Relocation* BasicBlock::relocFor(std::uint32_t instIndex) noexcept {
    for (auto& reloc : relocs) {
        if (reloc.instIndex == instIndex) return &reloc;
    }
    return nullptr;
}

std::uint32_t Function::totalWords() const noexcept {
    std::uint32_t words = 0;
    for (const auto& block : blocks) words += block.sizeWords();
    return words + static_cast<std::uint32_t>(sharedLiteralPool.size());
}

const Function* Module::findFunction(std::string_view name) const noexcept {
    for (const auto& fn : functions) {
        if (fn.name == name) return &fn;
    }
    return nullptr;
}

Function* Module::findFunction(std::string_view name) noexcept {
    for (auto& fn : functions) {
        if (fn.name == name) return &fn;
    }
    return nullptr;
}

std::uint32_t Module::totalCodeWords() const noexcept {
    std::uint32_t words = 0;
    for (const auto& fn : functions) words += fn.totalWords();
    return words;
}

void Module::validate() const {
    if (findFunction(entryFunction) == nullptr) {
        fail("entry function '" + entryFunction + "' not found");
    }
    for (const auto& fn : functions) {
        if (fn.blocks.empty()) fail("function '" + fn.name + "' has no blocks");
        for (std::size_t b = 0; b < fn.blocks.size(); ++b) {
            const auto& block = fn.blocks[b];
            const std::string where = fn.name + ":" + block.label;
            for (const auto& reloc : block.relocs) {
                if (reloc.instIndex >= block.insts.size()) {
                    fail(where + ": relocation points past block end");
                }
                const Opcode op = block.insts[reloc.instIndex].op;
                switch (reloc.kind) {
                    case RelocKind::BlockTarget:
                        if (!isConditionalBranch(op) && op != Opcode::Jal) {
                            fail(where + ": block-target reloc on non-branch");
                        }
                        if (reloc.targetBlock >= fn.blocks.size()) {
                            fail(where + ": branch to nonexistent block");
                        }
                        break;
                    case RelocKind::FunctionTarget:
                        if (op != Opcode::Jal) fail(where + ": call reloc on non-jal");
                        if (findFunction(reloc.targetFunction) == nullptr) {
                            fail(where + ": call to unknown function '" +
                                 reloc.targetFunction + "'");
                        }
                        break;
                    case RelocKind::SharedLiteral:
                        if (op != Opcode::Ldl) fail(where + ": literal reloc on non-ldl");
                        if (reloc.literalIndex >= fn.sharedLiteralPool.size()) {
                            fail(where + ": shared literal index out of range");
                        }
                        break;
                    case RelocKind::BlockLiteral:
                        if (op != Opcode::Ldl) fail(where + ": literal reloc on non-ldl");
                        if (reloc.literalIndex >= block.literalPool.size()) {
                            fail(where + ": block literal index out of range");
                        }
                        break;
                }
            }
            // Every control-flow instruction that needs a target must have a
            // relocation (Jalr and Halt are target-free).
            for (std::size_t i = 0; i < block.insts.size(); ++i) {
                const Opcode op = block.insts[i].op;
                if ((isConditionalBranch(op) || op == Opcode::Jal) &&
                    block.relocFor(static_cast<std::uint32_t>(i)) == nullptr) {
                    fail(where + ": branch/jal without relocation");
                }
                if (op == Opcode::Ldl &&
                    block.relocFor(static_cast<std::uint32_t>(i)) == nullptr) {
                    fail(where + ": ldl without literal relocation");
                }
            }
        }
    }
    for (const auto& segment : data) {
        if (segment.baseAddr % 4 != 0) fail("data segment not word aligned");
    }
}

} // namespace voltcache
