#include "isa/assembler.h"

#include <algorithm>
#include <cctype>
#include <map>
#include <optional>
#include <vector>

#include "isa/builder.h"

namespace voltcache {

namespace {

[[noreturn]] void fail(std::size_t line, const std::string& what) {
    throw AsmError("line " + std::to_string(line) + ": " + what);
}

std::string_view trim(std::string_view text) {
    while (!text.empty() && std::isspace(static_cast<unsigned char>(text.front()))) {
        text.remove_prefix(1);
    }
    while (!text.empty() && std::isspace(static_cast<unsigned char>(text.back()))) {
        text.remove_suffix(1);
    }
    return text;
}

/// Split a line's operand field at commas, trimming each piece.
std::vector<std::string> splitOperands(std::string_view text) {
    std::vector<std::string> out;
    std::size_t pos = 0;
    while (pos <= text.size()) {
        const std::size_t comma = text.find(',', pos);
        const std::size_t end = comma == std::string::npos ? text.size() : comma;
        const std::string_view piece = trim(text.substr(pos, end - pos));
        if (!piece.empty()) out.emplace_back(piece);
        if (comma == std::string::npos) break;
        pos = comma + 1;
    }
    return out;
}

/// One pre-parsed statement.
struct Statement {
    std::size_t line = 0;
    std::string mnemonic; // lower-cased, or ".func"/".data"/... / "label:"
    std::vector<std::string> operands;
};

Reg parseReg(std::size_t line, const std::string& token) {
    if (token == "sp") return regs::sp;
    if (token == "ra") return regs::ra;
    if (token.size() >= 2 && token[0] == 'r') {
        const int n = std::atoi(token.c_str() + 1);
        const bool digits =
            std::all_of(token.begin() + 1, token.end(),
                        [](char c) { return std::isdigit(static_cast<unsigned char>(c)); });
        if (digits && n >= 0 && n < static_cast<int>(kNumRegisters)) {
            return static_cast<Reg>(n);
        }
    }
    fail(line, "bad register '" + token + "'");
}

std::int32_t parseImm(std::size_t line, const std::string& token) {
    try {
        std::size_t used = 0;
        const long long value = std::stoll(token, &used, 0); // handles 0x / decimal
        if (used != token.size()) fail(line, "bad immediate '" + token + "'");
        if (value < INT32_MIN || value > UINT32_MAX) {
            fail(line, "immediate out of 32-bit range: " + token);
        }
        return static_cast<std::int32_t>(value);
    } catch (const AsmError&) {
        throw;
    } catch (const std::exception&) {
        fail(line, "bad immediate '" + token + "'");
    }
}

/// "imm(reg)" -> {imm, reg}.
std::pair<std::int32_t, Reg> parseMem(std::size_t line, const std::string& token) {
    const std::size_t open = token.find('(');
    const std::size_t close = token.find(')', open);
    if (open == std::string::npos || close == std::string::npos || close + 1 != token.size()) {
        fail(line, "expected imm(reg), got '" + token + "'");
    }
    const std::string immText = token.substr(0, open);
    const std::int32_t imm = immText.empty() ? 0 : parseImm(line, immText);
    return {imm, parseReg(line, token.substr(open + 1, close - open - 1))};
}

const std::map<std::string, Opcode, std::less<>>& rTypeOps() {
    static const std::map<std::string, Opcode, std::less<>> ops = {
        {"add", Opcode::Add}, {"sub", Opcode::Sub},   {"and", Opcode::And},
        {"or", Opcode::Or},   {"xor", Opcode::Xor},   {"sll", Opcode::Sll},
        {"srl", Opcode::Srl}, {"sra", Opcode::Sra},   {"mul", Opcode::Mul},
        {"div", Opcode::Div}, {"rem", Opcode::Rem},   {"slt", Opcode::Slt},
        {"sltu", Opcode::Sltu}};
    return ops;
}

const std::map<std::string, Opcode, std::less<>>& iTypeOps() {
    static const std::map<std::string, Opcode, std::less<>> ops = {
        {"addi", Opcode::Addi}, {"andi", Opcode::Andi}, {"ori", Opcode::Ori},
        {"xori", Opcode::Xori}, {"slli", Opcode::Slli}, {"srli", Opcode::Srli},
        {"srai", Opcode::Srai}, {"slti", Opcode::Slti}};
    return ops;
}

const std::map<std::string, Opcode, std::less<>>& branchOps() {
    static const std::map<std::string, Opcode, std::less<>> ops = {
        {"beq", Opcode::Beq},   {"bne", Opcode::Bne},   {"blt", Opcode::Blt},
        {"bge", Opcode::Bge},   {"bltu", Opcode::Bltu}, {"bgeu", Opcode::Bgeu}};
    return ops;
}

/// A function's statements, pre-split from the source.
struct FunctionSource {
    std::string name;
    std::size_t line = 0;
    std::vector<Statement> statements;
};

class Assembler {
public:
    explicit Assembler(std::string_view source) { lex(source); }

    Module run() {
        for (const auto& fn : functions_) emitFunction(fn);
        for (auto& segment : dataSegments_) builder_.data(segment.first, segment.second);
        if (!entryName_.empty()) builder_.setEntry(entryName_);
        return builder_.take();
    }

private:
    void lex(std::string_view source) {
        std::size_t lineNo = 0;
        std::size_t pos = 0;
        FunctionSource* current = nullptr;
        std::vector<std::int32_t>* currentData = nullptr;
        while (pos <= source.size()) {
            const std::size_t eol = source.find('\n', pos);
            std::string_view raw =
                source.substr(pos, eol == std::string_view::npos ? source.size() - pos
                                                                 : eol - pos);
            ++lineNo;
            pos = eol == std::string_view::npos ? source.size() + 1 : eol + 1;

            const std::size_t comment = raw.find_first_of("#;");
            if (comment != std::string_view::npos) raw = raw.substr(0, comment);
            const std::string_view text = trim(raw);
            if (text.empty()) continue;

            Statement statement;
            statement.line = lineNo;
            const std::size_t space = text.find_first_of(" \t");
            std::string head(text.substr(0, space));
            std::transform(head.begin(), head.end(), head.begin(),
                           [](unsigned char c) { return std::tolower(c); });
            const std::string_view rest =
                space == std::string_view::npos ? std::string_view{} : trim(text.substr(space));

            if (head == ".func") {
                if (rest.empty()) fail(lineNo, ".func needs a name");
                functions_.push_back(FunctionSource{std::string(rest), lineNo, {}});
                current = &functions_.back();
                currentData = nullptr;
                continue;
            }
            if (head == ".entry") {
                if (rest.empty()) fail(lineNo, ".entry needs a function name");
                entryName_ = std::string(rest);
                continue;
            }
            if (head == ".data") {
                if (rest.empty()) fail(lineNo, ".data needs a byte address");
                const std::int32_t addr = parseImm(lineNo, std::string(rest));
                dataSegments_.emplace_back(static_cast<std::uint32_t>(addr),
                                           std::vector<std::int32_t>{});
                currentData = &dataSegments_.back().second;
                current = nullptr;
                continue;
            }
            if (head == ".word") {
                if (currentData == nullptr) fail(lineNo, ".word outside a .data segment");
                std::size_t wordPos = 0;
                const std::string values(rest);
                while (wordPos < values.size()) {
                    const std::size_t wordEnd = values.find_first_of(" \t", wordPos);
                    const std::string token = values.substr(
                        wordPos, wordEnd == std::string::npos ? std::string::npos
                                                              : wordEnd - wordPos);
                    if (!token.empty()) currentData->push_back(parseImm(lineNo, token));
                    if (wordEnd == std::string::npos) break;
                    wordPos = values.find_first_not_of(" \t", wordEnd);
                    if (wordPos == std::string::npos) break;
                }
                continue;
            }
            if (current == nullptr) fail(lineNo, "statement outside a .func");
            statement.mnemonic = head;
            statement.operands = splitOperands(rest);
            current->statements.push_back(std::move(statement));
        }
    }

    void emitFunction(const FunctionSource& source) {
        FunctionBuilder f = builder_.function(source.name);
        // Pass 1: create a block per label.
        std::map<std::string, BlockHandle, std::less<>> labels;
        for (const auto& statement : source.statements) {
            if (statement.mnemonic.size() > 1 && statement.mnemonic.back() == ':') {
                const std::string label =
                    statement.mnemonic.substr(0, statement.mnemonic.size() - 1);
                if (labels.contains(label)) {
                    fail(statement.line, "duplicate label '" + label + "'");
                }
                labels.emplace(label, f.newBlock(label));
            }
        }
        auto target = [&](std::size_t line, const std::string& label) {
            const auto it = labels.find(label);
            if (it == labels.end()) fail(line, "unknown label '" + label + "'");
            return it->second;
        };
        auto expect = [&](const Statement& s, std::size_t count) -> const Statement& {
            if (s.operands.size() != count) {
                fail(s.line, s.mnemonic + " expects " + std::to_string(count) +
                                 " operands, got " + std::to_string(s.operands.size()));
            }
            return s;
        };

        // Pass 2: emit.
        for (const auto& s : source.statements) {
            const std::size_t line = s.line;
            if (s.mnemonic.size() > 1 && s.mnemonic.back() == ':') {
                f.at(target(line, s.mnemonic.substr(0, s.mnemonic.size() - 1)));
                continue;
            }
            if (const auto it = rTypeOps().find(s.mnemonic); it != rTypeOps().end()) {
                expect(s, 3);
                const Reg rd = parseReg(line, s.operands[0]);
                const Reg rs1 = parseReg(line, s.operands[1]);
                const Reg rs2 = parseReg(line, s.operands[2]);
                switch (it->second) {
                    case Opcode::Add: f.add(rd, rs1, rs2); break;
                    case Opcode::Sub: f.sub(rd, rs1, rs2); break;
                    case Opcode::And: f.and_(rd, rs1, rs2); break;
                    case Opcode::Or: f.or_(rd, rs1, rs2); break;
                    case Opcode::Xor: f.xor_(rd, rs1, rs2); break;
                    case Opcode::Sll: f.sll(rd, rs1, rs2); break;
                    case Opcode::Srl: f.srl(rd, rs1, rs2); break;
                    case Opcode::Sra: f.sra(rd, rs1, rs2); break;
                    case Opcode::Mul: f.mul(rd, rs1, rs2); break;
                    case Opcode::Div: f.div(rd, rs1, rs2); break;
                    case Opcode::Rem: f.rem(rd, rs1, rs2); break;
                    case Opcode::Slt: f.slt(rd, rs1, rs2); break;
                    default: f.sltu(rd, rs1, rs2); break;
                }
                continue;
            }
            if (const auto it = iTypeOps().find(s.mnemonic); it != iTypeOps().end()) {
                expect(s, 3);
                const Reg rd = parseReg(line, s.operands[0]);
                const Reg rs1 = parseReg(line, s.operands[1]);
                const std::int32_t imm = parseImm(line, s.operands[2]);
                switch (it->second) {
                    case Opcode::Addi: f.addi(rd, rs1, imm); break;
                    case Opcode::Andi: f.andi(rd, rs1, imm); break;
                    case Opcode::Ori: f.ori(rd, rs1, imm); break;
                    case Opcode::Xori: f.xori(rd, rs1, imm); break;
                    case Opcode::Slli: f.slli(rd, rs1, imm); break;
                    case Opcode::Srli: f.srli(rd, rs1, imm); break;
                    case Opcode::Srai: f.srai(rd, rs1, imm); break;
                    default: f.slti(rd, rs1, imm); break;
                }
                continue;
            }
            if (const auto it = branchOps().find(s.mnemonic); it != branchOps().end()) {
                expect(s, 3);
                const Reg rs1 = parseReg(line, s.operands[0]);
                const Reg rs2 = parseReg(line, s.operands[1]);
                const BlockHandle block = target(line, s.operands[2]);
                switch (it->second) {
                    case Opcode::Beq: f.beq(rs1, rs2, block); break;
                    case Opcode::Bne: f.bne(rs1, rs2, block); break;
                    case Opcode::Blt: f.blt(rs1, rs2, block); break;
                    case Opcode::Bge: f.bge(rs1, rs2, block); break;
                    case Opcode::Bltu: f.bltu(rs1, rs2, block); break;
                    default: f.bgeu(rs1, rs2, block); break;
                }
                continue;
            }
            if (s.mnemonic == "lw") {
                expect(s, 2);
                const auto [imm, base] = parseMem(line, s.operands[1]);
                f.lw(parseReg(line, s.operands[0]), base, imm);
            } else if (s.mnemonic == "sw") {
                expect(s, 2);
                const auto [imm, base] = parseMem(line, s.operands[1]);
                f.sw(parseReg(line, s.operands[0]), base, imm);
            } else if (s.mnemonic == "ldl") {
                expect(s, 2);
                if (s.operands[1].empty() || s.operands[1][0] != '=') {
                    fail(line, "ldl expects '=constant'");
                }
                f.ldlConst(parseReg(line, s.operands[0]),
                           parseImm(line, s.operands[1].substr(1)));
            } else if (s.mnemonic == "li") {
                expect(s, 2);
                f.li(parseReg(line, s.operands[0]), parseImm(line, s.operands[1]));
            } else if (s.mnemonic == "mv") {
                expect(s, 2);
                f.mv(parseReg(line, s.operands[0]), parseReg(line, s.operands[1]));
            } else if (s.mnemonic == "jmp") {
                expect(s, 1);
                f.jmp(target(line, s.operands[0]));
            } else if (s.mnemonic == "call") {
                expect(s, 1);
                f.call(s.operands[0]);
            } else if (s.mnemonic == "ret") {
                expect(s, 0);
                f.ret();
            } else if (s.mnemonic == "nop") {
                expect(s, 0);
                f.nop();
            } else if (s.mnemonic == "halt") {
                expect(s, 0);
                f.halt();
            } else {
                fail(line, "unknown mnemonic '" + s.mnemonic + "'");
            }
        }
    }

    ModuleBuilder builder_;
    std::vector<FunctionSource> functions_;
    std::vector<std::pair<std::uint32_t, std::vector<std::int32_t>>> dataSegments_;
    std::string entryName_;
};

} // namespace

Module assemble(std::string_view source) { return Assembler(source).run(); }

} // namespace voltcache
