// Disassembly helpers for diagnostics, linker map files, and tests.
#pragma once

#include <string>

#include "isa/instruction.h"
#include "isa/module.h"

namespace voltcache {

/// One instruction, e.g. "addi r3, r0, 42" or "beq r1, r2, +12".
[[nodiscard]] std::string disassemble(const Instruction& inst);

/// A whole module, block by block, with relocations annotated.
[[nodiscard]] std::string disassemble(const Module& module);

} // namespace voltcache
