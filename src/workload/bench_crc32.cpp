// crc32 (MiBench): table-driven CRC-32 (IEEE 802.3 polynomial, reflected)
// over an LCG-generated buffer, byte by byte. Streams the buffer (high
// spatial locality) while hammering the 1KB lookup table (high reuse) —
// Fig. 3 places it at >60% of words used with >60% repeated accesses.
#include "workload/stdlib.h"
#include "workload/workload.h"

namespace voltcache {

using namespace regs;

namespace {

/// The standard reflected CRC-32 table, computed at module-build time and
/// shipped as an initialized data segment (as the original's static table).
std::vector<std::int32_t> crcTable() {
    std::vector<std::int32_t> table(256);
    for (std::uint32_t n = 0; n < 256; ++n) {
        std::uint32_t c = n;
        for (int k = 0; k < 8; ++k) {
            c = (c & 1u) ? 0xEDB88320u ^ (c >> 1) : c >> 1;
        }
        table[n] = static_cast<std::int32_t>(c);
    }
    return table;
}

} // namespace

Module buildCrc32(WorkloadScale scale) {
    const std::uint32_t bufferWords = scalePick(scale, 512, 8192, 16384);
    const std::uint32_t reps = scalePick(scale, 1, 1, 2);

    ModuleBuilder mb;
    {
        auto f = mb.function("main");
        auto repLoop = f.newBlock("rep_loop");
        auto wordLoop = f.newBlock("word_loop");
        auto byteLoop = f.newBlock("byte_loop");
        auto wordNext = f.newBlock("word_next");
        auto repNext = f.newBlock("rep_next");
        auto done = f.newBlock("done");
        emitProlog(f);
        // r8 = table base, r9 = buffer base, r10 = buffer words,
        // r11 = crc, r12 = remaining reps, r13 = cursor
        f.li(r8, static_cast<std::int32_t>(layout::kDataBase));
        f.li(r9, static_cast<std::int32_t>(layout::kHeapBase));
        f.li(r10, static_cast<std::int32_t>(bufferWords));
        f.li(r12, static_cast<std::int32_t>(reps));
        f.mv(r1, r9);
        f.mv(r2, r10);
        f.li(r3, 0xc4c32);
        f.call("fill_random");
        f.li(r11, -1); // crc = 0xFFFFFFFF
        f.jmp(repLoop);

        f.at(repLoop);
        f.beq(r12, r0, done);
        f.mv(r13, r9);
        f.jmp(wordLoop);

        f.at(wordLoop);
        f.slli(r1, r10, 2);
        f.add(r1, r9, r1);
        f.bgeu(r13, r1, repNext);
        f.mv(r5, r0); // bit shift of the next byte; falls through
        f.at(byteLoop);
        f.li(r7, 32);
        f.bge(r5, r7, wordNext);
        // One load per *byte*, as the original's ldrb stream does — each
        // buffer word is touched four times through the word-granular L1.
        f.lw(r4, r13, 0);
        f.srl(r6, r4, r5);
        f.andi(r6, r6, 0xFF);
        f.xor_(r6, r6, r11);
        f.andi(r6, r6, 0xFF);   // index = (crc ^ byte) & 0xFF
        f.slli(r6, r6, 2);
        f.add(r6, r8, r6);
        f.lw(r6, r6, 0);        // table[index]
        f.srli(r11, r11, 8);
        f.xor_(r11, r11, r6);   // crc = (crc >> 8) ^ table[index]
        f.addi(r5, r5, 8);
        f.jmp(byteLoop);

        f.at(wordNext);
        f.addi(r13, r13, 4);
        f.jmp(wordLoop);

        f.at(repNext);
        f.addi(r12, r12, -1);
        f.jmp(repLoop);

        f.at(done);
        f.xori(r1, r11, -1); // final complement
        f.halt();
    }
    appendStdlib(mb);
    mb.data(layout::kDataBase, crcTable());
    return mb.take();
}

} // namespace voltcache
