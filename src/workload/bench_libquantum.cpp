// libquantum_r (models SPEC2006 462.libquantum): quantum register
// simulation kernels sweeping a large amplitude-index array. Three of every
// four passes are measurement sweeps (pure streaming reads); the fourth is
// a gate pass (Pauli-X toggle + controlled-not, read-modify-write). This
// reproduces libquantum's Fig. 3 signature: the only program with high
// spatial locality AND low word reuse.
#include "workload/stdlib.h"
#include "workload/workload.h"

namespace voltcache {

using namespace regs;

Module buildLibquantum(WorkloadScale scale) {
    const std::uint32_t stateWords = scalePick(scale, 2048, 8192, 32768);
    const std::uint32_t passes = scalePick(scale, 4, 6, 10);

    ModuleBuilder mb;
    {
        auto f = mb.function("main");
        auto passLoop = f.newBlock("pass_loop");
        auto gateSetup = f.newBlock("gate_setup");
        auto gateSweep = f.newBlock("gate_sweep");
        auto cnot = f.newBlock("cnot");
        auto gateNext = f.newBlock("gate_next");
        auto readSweep = f.newBlock("read_sweep");
        auto passNext = f.newBlock("pass_next");
        auto done = f.newBlock("done");
        emitProlog(f);
        // r8 = base, r9 = end, r10 = cursor, r11 = checksum,
        // r12 = remaining passes, r13 = per-pass gate mask (xorshift)
        f.li(r8, static_cast<std::int32_t>(layout::kHeapBase));
        f.li(r9, static_cast<std::int32_t>(layout::kHeapBase + stateWords * 4));
        f.mv(r11, r0);
        f.li(r12, static_cast<std::int32_t>(passes));
        f.li(r13, 0x1b9);
        f.mv(r1, r8);
        f.li(r2, static_cast<std::int32_t>(stateWords));
        f.li(r3, 0x11b);
        f.call("fill_random");
        f.jmp(passLoop);

        f.at(passLoop);
        f.beq(r12, r0, done);
        f.mv(r10, r8);
        f.andi(r1, r12, 3);
        f.beq(r1, r0, gateSetup); // every 4th pass applies gates
        f.jmp(readSweep);

        f.at(gateSetup);
        f.slli(r1, r13, 13);
        f.xor_(r13, r13, r1);
        f.srli(r1, r13, 17);
        f.xor_(r13, r13, r1);
        f.slli(r1, r13, 5);
        f.xor_(r13, r13, r1); // fresh gate mask; falls through
        f.at(gateSweep);
        f.bgeu(r10, r9, passNext);
        f.lw(r1, r10, 0);
        f.xor_(r1, r1, r13); // Pauli-X on the mask qubits
        f.sw(r1, r10, 0);
        f.andi(r2, r1, 16);  // control qubit set?
        f.beq(r2, r0, gateNext); // falls through to 'cnot'
        f.at(cnot);
        f.xori(r1, r1, 1); // flip target qubit
        f.sw(r1, r10, 0);  // falls through
        f.at(gateNext);
        f.add(r11, r11, r1);
        f.addi(r10, r10, 4);
        f.jmp(gateSweep);

        f.at(readSweep); // measurement: pure streaming accumulation
        f.bgeu(r10, r9, passNext);
        f.lw(r1, r10, 0);
        f.add(r11, r11, r1);
        f.lw(r2, r10, 4);
        f.add(r11, r11, r2);
        f.addi(r10, r10, 8);
        f.jmp(readSweep);

        f.at(passNext);
        f.addi(r12, r12, -1);
        f.jmp(passLoop);

        f.at(done);
        f.mv(r1, r11);
        f.halt();
    }
    appendStdlib(mb);
    return mb.take();
}

} // namespace voltcache
