// patricia (MiBench): binary trie (radix tree) insert/lookup over 16-bit
// keys with a bump-allocated node pool. Pointer chasing through 16B nodes:
// low spatial locality, heavy reuse of the nodes near the root.
#include "workload/stdlib.h"
#include "workload/workload.h"

namespace voltcache {

using namespace regs;

namespace {

constexpr std::int32_t kAllocSlot = static_cast<std::int32_t>(layout::kDataBase);     // bump offset
constexpr std::int32_t kRootSlot = static_cast<std::int32_t>(layout::kDataBase) + 4; // root pointer

// Node layout: +0 key, +4 left, +8 right, +12 value.

void appendInsert(ModuleBuilder& mb) {
    // trie_insert(r1 key): inserts key (value = key). Uses r2-r7.
    auto f = mb.function("trie_insert");
    auto loop = f.newBlock("walk");
    auto alloc = f.newBlock("alloc");
    auto done = f.newBlock("done");
    f.li(r2, kRootSlot); // slot = &root
    f.li(r5, 15);        // bit cursor (16-bit keys)
    f.jmp(loop);

    f.at(loop);
    f.lw(r3, r2, 0); // node = *slot
    f.beq(r3, r0, alloc);
    f.lw(r4, r3, 0);
    f.beq(r4, r1, done); // key already present
    f.srl(r6, r1, r5);
    f.andi(r6, r6, 1);
    f.slli(r6, r6, 2);
    f.addi(r7, r3, 4);
    f.add(r2, r7, r6); // slot = &node.child[dir]
    f.addi(r5, r5, -1);
    f.jmp(loop);

    f.at(alloc);
    f.li(r4, kAllocSlot);
    f.lw(r6, r4, 0); // bump offset
    f.li(r7, static_cast<std::int32_t>(layout::kHeapBase));
    f.add(r7, r7, r6);
    f.sw(r1, r7, 0);  // key
    f.sw(r0, r7, 4);  // left = null
    f.sw(r0, r7, 8);  // right = null
    f.sw(r1, r7, 12); // value = key
    f.sw(r7, r2, 0);  // *slot = node
    f.addi(r6, r6, 16);
    f.sw(r6, r4, 0);
    f.jmp(done);

    f.at(done);
    f.ret();
}

void appendSearch(ModuleBuilder& mb) {
    // trie_search(r1 key) -> r1 value, or 0 when absent. Uses r2-r7.
    auto f = mb.function("trie_search");
    auto loop = f.newBlock("walk");
    auto hit = f.newBlock("hit");
    auto miss = f.newBlock("miss");
    f.li(r2, kRootSlot);
    f.lw(r3, r2, 0);
    f.li(r5, 15);
    f.jmp(loop);

    f.at(loop);
    f.beq(r3, r0, miss);
    f.lw(r4, r3, 0);
    f.beq(r4, r1, hit);
    f.srl(r6, r1, r5);
    f.andi(r6, r6, 1);
    f.slli(r6, r6, 2);
    f.addi(r7, r3, 4);
    f.add(r7, r7, r6);
    f.lw(r3, r7, 0);
    f.addi(r5, r5, -1);
    f.jmp(loop);

    f.at(hit);
    f.lw(r1, r3, 12);
    f.ret();

    f.at(miss);
    f.mv(r1, r0);
    f.ret();
}

} // namespace

Module buildPatricia(WorkloadScale scale) {
    const std::uint32_t inserts = scalePick(scale, 200, 3000, 8000);
    const std::uint32_t searches = scalePick(scale, 400, 6000, 24000);

    ModuleBuilder mb;
    {
        auto f = mb.function("main");
        auto insLoop = f.newBlock("insert_loop");
        auto searchSetup = f.newBlock("search_setup");
        auto seaLoop = f.newBlock("search_loop");
        auto done = f.newBlock("done");
        emitProlog(f);
        // r8 = i, r9 = seed, r10 = limit, r11 = checksum
        f.mv(r8, r0);
        f.li(r9, 0xace1);
        f.li(r10, static_cast<std::int32_t>(inserts));
        f.mv(r11, r0);
        f.jmp(insLoop);

        f.at(insLoop);
        f.bge(r8, r10, searchSetup);
        f.mv(r1, r9);
        f.call("lcg_next");
        f.mv(r9, r1);
        f.srli(r1, r9, 8);
        f.ldlConst(r2, 0xFFFF);
        f.and_(r1, r1, r2);
        f.call("trie_insert");
        f.addi(r8, r8, 1);
        f.jmp(insLoop);

        f.at(searchSetup);
        f.mv(r8, r0);
        f.li(r9, 0xbeef); // fresh stream: ~some hits, some misses
        f.li(r10, static_cast<std::int32_t>(searches));
        f.jmp(seaLoop);

        f.at(seaLoop);
        f.bge(r8, r10, done);
        f.mv(r1, r9);
        f.call("lcg_next");
        f.mv(r9, r1);
        f.srli(r1, r9, 8);
        f.ldlConst(r2, 0xFFFF);
        f.and_(r1, r1, r2);
        f.call("trie_search");
        f.add(r11, r11, r1);
        f.addi(r8, r8, 1);
        f.jmp(seaLoop);

        f.at(done);
        f.mv(r1, r11);
        f.halt();
    }
    appendInsert(mb);
    appendSearch(mb);
    appendStdlib(mb);
    return mb.take();
}

} // namespace voltcache
