// Minimal runtime library linked into every benchmark — the stand-in for
// the paper's libc/compiler_rt, which the BBR code transformations must
// also process (Section V). Functions use only r1-r7 (see workload.h).
#pragma once

#include "isa/builder.h"
#include "workload/workload.h"

namespace voltcache {

/// Append the runtime library functions to a module under construction:
///   lcg_next(r1 seed) -> r1            LCG pseudo-random step
///   fill_random(r1 ptr, r2 n, r3 seed) -> r3 final seed
///   fill_seq(r1 ptr, r2 n, r3 start)
///   sum_words(r1 ptr, r2 n) -> r1
///   memcpy_words(r1 dst, r2 src, r3 n)
void appendStdlib(ModuleBuilder& mb);

/// Emit the standard prologue into the current block of `f`: initialize the
/// stack pointer to layout::kStackTop.
void emitProlog(FunctionBuilder& f);

/// Pick an input-size parameter by workload scale.
[[nodiscard]] std::uint32_t scalePick(WorkloadScale scale, std::uint32_t tiny,
                                      std::uint32_t small, std::uint32_t reference);

} // namespace voltcache
