// Data-cache locality profiling (paper Fig. 3, method of [24]).
//
// Every fixed interval of program instructions (10000 in the paper), two
// quantities are measured over the interval's data accesses:
//   * spatial locality — the ratio of the data the application actually
//     used to the total cache-line size, averaged over the cache blocks it
//     touched;
//   * word reuse rate — the ratio of repeated accesses to unique words to
//     the total number of word accesses.
#pragma once

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "cpu/simulator.h"

namespace voltcache {

class LocalityProfiler final : public TraceObserver {
public:
    explicit LocalityProfiler(std::uint64_t intervalInstructions = 10000,
                              std::uint32_t blockBytes = 32);

    void onInstruction(std::uint32_t pc, const Instruction& inst) override;
    void onDataAccess(std::uint32_t addr, bool isWrite) override;

    struct IntervalStats {
        double spatialLocality = 0.0; ///< mean fraction of each touched block used
        double wordReuseRate = 0.0;   ///< repeated accesses / total accesses
        std::uint64_t accesses = 0;
    };

    /// Close the trailing partial interval (if it saw any accesses).
    void finalize();

    [[nodiscard]] const std::vector<IntervalStats>& intervals() const noexcept {
        return intervals_;
    }
    /// Access-weighted means across intervals — the Fig. 3 histogram inputs.
    [[nodiscard]] double meanSpatialLocality() const noexcept;
    [[nodiscard]] double meanWordReuseRate() const noexcept;

private:
    void closeInterval();

    std::uint64_t intervalInstructions_;
    std::uint32_t blockBytes_;
    std::uint32_t wordsPerBlock_;

    std::uint64_t instructionsInInterval_ = 0;
    std::uint64_t accessesInInterval_ = 0;
    std::uint64_t uniqueWordTouches_ = 0;
    std::unordered_map<std::uint32_t, std::uint32_t> touchedBlocks_; ///< block -> word mask

    std::vector<IntervalStats> intervals_;
};

} // namespace voltcache
