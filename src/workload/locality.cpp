#include "workload/locality.h"

#include <bit>

#include "common/contracts.h"

namespace voltcache {

LocalityProfiler::LocalityProfiler(std::uint64_t intervalInstructions,
                                   std::uint32_t blockBytes)
    : intervalInstructions_(intervalInstructions),
      blockBytes_(blockBytes),
      wordsPerBlock_(blockBytes / 4) {
    VC_EXPECTS(intervalInstructions > 0);
    VC_EXPECTS(blockBytes >= 4 && blockBytes % 4 == 0 && wordsPerBlock_ <= 32);
}

void LocalityProfiler::onInstruction(std::uint32_t pc, const Instruction& inst) {
    (void)pc;
    (void)inst;
    if (++instructionsInInterval_ >= intervalInstructions_) closeInterval();
}

void LocalityProfiler::onDataAccess(std::uint32_t addr, bool isWrite) {
    (void)isWrite;
    ++accessesInInterval_;
    const std::uint32_t block = addr / blockBytes_;
    const std::uint32_t word = (addr % blockBytes_) / 4;
    std::uint32_t& mask = touchedBlocks_[block];
    if ((mask & (1u << word)) == 0) {
        mask |= (1u << word);
        ++uniqueWordTouches_;
    }
}

void LocalityProfiler::closeInterval() {
    if (accessesInInterval_ > 0) {
        IntervalStats stats;
        stats.accesses = accessesInInterval_;
        double usedFractionSum = 0.0;
        for (const auto& [block, mask] : touchedBlocks_) {
            usedFractionSum += static_cast<double>(std::popcount(mask)) /
                               static_cast<double>(wordsPerBlock_);
        }
        stats.spatialLocality = touchedBlocks_.empty()
                                    ? 0.0
                                    : usedFractionSum /
                                          static_cast<double>(touchedBlocks_.size());
        stats.wordReuseRate = 1.0 - static_cast<double>(uniqueWordTouches_) /
                                        static_cast<double>(accessesInInterval_);
        intervals_.push_back(stats);
    }
    touchedBlocks_.clear();
    accessesInInterval_ = 0;
    uniqueWordTouches_ = 0;
    instructionsInInterval_ = 0;
}

void LocalityProfiler::finalize() {
    if (accessesInInterval_ > 0) closeInterval();
}

double LocalityProfiler::meanSpatialLocality() const noexcept {
    double weighted = 0.0;
    double total = 0.0;
    for (const auto& interval : intervals_) {
        weighted += interval.spatialLocality * static_cast<double>(interval.accesses);
        total += static_cast<double>(interval.accesses);
    }
    return total > 0.0 ? weighted / total : 0.0;
}

double LocalityProfiler::meanWordReuseRate() const noexcept {
    double weighted = 0.0;
    double total = 0.0;
    for (const auto& interval : intervals_) {
        weighted += interval.wordReuseRate * static_cast<double>(interval.accesses);
        total += static_cast<double>(interval.accesses);
    }
    return total > 0.0 ? weighted / total : 0.0;
}

} // namespace voltcache
