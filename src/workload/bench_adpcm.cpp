// adpcm (MiBench): IMA ADPCM encoder over LCG-generated 16-bit samples.
// Streams the input and output buffers while reusing the 89-entry step
// table and 16-entry index-adjust table on every sample.
#include "workload/stdlib.h"
#include "workload/workload.h"

namespace voltcache {

using namespace regs;

namespace {

constexpr std::int32_t kStepTableBase = static_cast<std::int32_t>(layout::kDataBase);
constexpr std::int32_t kIndexTableBase = static_cast<std::int32_t>(layout::kDataBase) + 0x400;

/// IMA-style exponential step table (89 entries, ~1.1x growth as in the
/// standard table; exact values are irrelevant to cache behaviour).
std::vector<std::int32_t> stepTable() {
    std::vector<std::int32_t> table(89);
    double step = 7.0;
    for (auto& entry : table) {
        entry = static_cast<std::int32_t>(step);
        step *= 1.1;
        if (step > 32767.0) step = 32767.0;
    }
    return table;
}

std::vector<std::int32_t> indexTable() {
    return {-1, -1, -1, -1, 2, 4, 6, 8, -1, -1, -1, -1, 2, 4, 6, 8};
}

} // namespace

Module buildAdpcm(WorkloadScale scale) {
    const std::uint32_t samples = scalePick(scale, 1024, 8192, 32768);

    ModuleBuilder mb;
    {
        auto f = mb.function("main");
        auto loop = f.newBlock("sample_loop");
        auto negated = f.newBlock("negated");
        auto quant = f.newBlock("quantize");
        auto q2 = f.newBlock("q2");
        auto q3 = f.newBlock("q3");
        auto q4 = f.newBlock("q4");
        auto applySign = f.newBlock("apply_sign");
        auto applyAdd = f.newBlock("apply_add");
        auto clampLo = f.newBlock("clamp_lo");
        auto clampHi = f.newBlock("clamp_hi");
        auto updateIndex = f.newBlock("update_index");
        auto idxLo = f.newBlock("idx_lo");
        auto idxHi = f.newBlock("idx_hi");
        auto emit = f.newBlock("emit");
        auto done = f.newBlock("done");
        emitProlog(f);
        // r8 = in cursor, r9 = in end, r10 = predictor, r11 = step index,
        // r12 = checksum, r13 = out cursor
        f.li(r8, static_cast<std::int32_t>(layout::kHeapBase));
        f.li(r9, static_cast<std::int32_t>(layout::kHeapBase + samples * 4));
        f.mv(r10, r0);
        f.mv(r11, r0);
        f.mv(r12, r0);
        f.li(r13, static_cast<std::int32_t>(layout::kHeapBase + samples * 8));
        f.mv(r1, r8);
        f.li(r2, static_cast<std::int32_t>(samples));
        f.li(r3, 0xadc);
        f.call("fill_random");
        f.jmp(loop);

        f.at(loop);
        f.bgeu(r8, r9, done);
        f.lw(r1, r8, 0);
        f.slli(r1, r1, 16);
        f.srai(r1, r1, 16); // sign-extended 16-bit sample
        f.sub(r2, r1, r10); // delta = sample - predictor
        f.mv(r3, r0);       // sign
        f.bge(r2, r0, quant); // falls through to 'negated'
        f.at(negated);
        f.addi(r3, r0, 8);
        f.sub(r2, r0, r2); // delta = -delta; falls through to 'quant'
        f.at(quant);
        // step = stepTable[index]
        f.li(r7, kStepTableBase);
        f.slli(r4, r11, 2);
        f.add(r7, r7, r4);
        f.lw(r4, r7, 0);   // step
        f.mv(r5, r0);      // code
        f.srli(r6, r4, 3); // diff = step >> 3
        f.blt(r2, r4, q2);
        f.addi(r5, r5, 4);
        f.sub(r2, r2, r4);
        f.add(r6, r6, r4); // falls through
        f.at(q2);
        f.srli(r7, r4, 1);
        f.blt(r2, r7, q3);
        f.addi(r5, r5, 2);
        f.sub(r2, r2, r7);
        f.add(r6, r6, r7); // falls through
        f.at(q3);
        f.srli(r7, r4, 2);
        f.blt(r2, r7, q4);
        f.addi(r5, r5, 1);
        f.add(r6, r6, r7); // falls through
        f.at(q4);
        f.beq(r3, r0, applyAdd); // falls through to 'applySign'
        f.at(applySign);
        f.sub(r10, r10, r6); // predictor -= diff
        f.jmp(clampLo);

        f.at(applyAdd);
        f.add(r10, r10, r6); // predictor += diff; falls through
        f.at(clampLo);
        f.ldlConst(r7, -32768);
        f.bge(r10, r7, clampHi);
        f.mv(r10, r7); // falls through
        f.at(clampHi);
        f.ldlConst(r7, 32767);
        f.bge(r7, r10, updateIndex);
        f.mv(r10, r7); // falls through
        f.at(updateIndex);
        f.or_(r5, r5, r3); // code |= sign
        f.li(r7, kIndexTableBase);
        f.slli(r4, r5, 2);
        f.add(r7, r7, r4);
        f.lw(r7, r7, 0);
        f.add(r11, r11, r7); // index += indexTable[code]
        f.bge(r11, r0, idxHi); // falls through to 'idx_lo'
        f.at(idxLo);
        f.mv(r11, r0);
        f.jmp(emit);

        f.at(idxHi);
        f.addi(r7, r0, 88);
        f.bge(r7, r11, emit);
        f.mv(r11, r7); // falls through
        f.at(emit);
        f.sw(r5, r13, 0); // out[i] = code
        f.add(r12, r12, r5);
        f.addi(r8, r8, 4);
        f.addi(r13, r13, 4);
        f.jmp(loop);

        f.at(done);
        f.mv(r1, r12);
        f.halt();
    }
    appendStdlib(mb);
    mb.data(kStepTableBase, stepTable());
    mb.data(kIndexTableBase, indexTable());
    return mb.take();
}

} // namespace voltcache
