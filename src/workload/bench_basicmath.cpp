// basicmath (MiBench): integer math kernels — Newton integer square root,
// Euclid GCD, polynomial evaluation — over LCG-generated inputs, with a
// small hot table. Fig. 3 profile: tiny data footprint, 30-60% of each
// touched line used, >80% of accesses repeated.
#include "workload/stdlib.h"
#include "workload/workload.h"

namespace voltcache {

using namespace regs;

namespace {

void appendIsqrt(ModuleBuilder& mb) {
    // isqrt(r1 n) -> r1, Newton iteration on integers. Uses r2-r5.
    auto f = mb.function("isqrt");
    auto loop = f.newBlock("loop");
    auto done = f.newBlock("done");
    f.mv(r4, r1);           // n
    f.mv(r2, r4);           // x = n
    f.addi(r3, r2, 1);
    f.srli(r3, r3, 1);      // y = (x+1)/2
    f.jmp(loop);
    f.at(loop);
    f.bge(r3, r2, done);    // while y < x
    f.mv(r2, r3);           // x = y
    f.div(r5, r4, r2);
    f.add(r3, r2, r5);
    f.srli(r3, r3, 1);      // y = (x + n/x)/2
    f.jmp(loop);
    f.at(done);
    f.mv(r1, r2);
    f.ret();
}

void appendGcd(ModuleBuilder& mb) {
    // gcd(r1 a, r2 b) -> r1 (non-negative inputs). Uses r3.
    auto f = mb.function("gcd");
    auto loop = f.newBlock("loop");
    auto done = f.newBlock("done");
    f.jmp(loop);
    f.at(loop);
    f.beq(r2, r0, done);
    f.rem(r3, r1, r2);
    f.mv(r1, r2);
    f.mv(r2, r3);
    f.jmp(loop);
    f.at(done);
    f.ret();
}

void appendPoly(ModuleBuilder& mb) {
    // poly(r1 x) -> r1 = ((3x+5)x+7)x + 11 (Horner). Uses r2, r3.
    auto f = mb.function("poly");
    f.mv(r2, r1);
    f.addi(r3, r0, 3);
    f.mul(r1, r1, r3);
    f.addi(r1, r1, 5);
    f.mul(r1, r1, r2);
    f.addi(r1, r1, 7);
    f.mul(r1, r1, r2);
    f.addi(r1, r1, 11);
    f.ret();
}

} // namespace

Module buildBasicmath(WorkloadScale scale) {
    const std::uint32_t iterations = scalePick(scale, 300, 3000, 20000);
    constexpr std::uint32_t kTableWords = 128; // 512B hot table

    ModuleBuilder mb;
    {
        auto f = mb.function("main");
        auto loop = f.newBlock("loop");
        auto done = f.newBlock("done");
        emitProlog(f);
        // r8 = i, r9 = seed, r10 = table base, r11 = checksum, r12 = N
        f.mv(r8, r0);
        f.li(r9, 0x5eed);
        f.li(r10, static_cast<std::int32_t>(layout::kHeapBase));
        f.mv(r11, r0);
        f.li(r12, static_cast<std::int32_t>(iterations));
        f.jmp(loop);

        f.at(loop);
        f.bge(r8, r12, done);
        // seed = lcg_next(seed)
        f.mv(r1, r9);
        f.call("lcg_next");
        f.mv(r9, r1);
        // isqrt of a 20-bit slice
        f.srli(r1, r9, 12);
        f.ldlConst(r2, 0xFFFFF);
        f.and_(r1, r1, r2);
        f.call("isqrt");
        f.add(r11, r11, r1);
        // gcd of two positive slices
        f.srli(r1, r9, 17);
        f.addi(r1, r1, 1);
        f.andi(r2, r9, 0x7FFF);
        f.addi(r2, r2, 1);
        f.call("gcd");
        f.add(r11, r11, r1);
        // poly of a small slice
        f.andi(r1, r9, 0xFF);
        f.call("poly");
        f.add(r11, r11, r1);
        // hot-table update: table[i & 127] = checksum; read a rotated slot
        f.andi(r1, r8, kTableWords - 1);
        f.slli(r1, r1, 2);
        f.add(r1, r10, r1);
        f.sw(r11, r1, 0);
        f.slli(r2, r8, 3);
        f.add(r2, r2, r8); // i*9: decorrelated slot
        f.andi(r2, r2, kTableWords - 1);
        f.slli(r2, r2, 2);
        f.add(r2, r10, r2);
        f.lw(r3, r2, 0);
        f.add(r11, r11, r3);
        f.addi(r8, r8, 1);
        f.jmp(loop);

        f.at(done);
        f.mv(r1, r11);
        f.halt();
    }
    appendIsqrt(mb);
    appendGcd(mb);
    appendPoly(mb);
    appendStdlib(mb);
    return mb.take();
}

} // namespace voltcache
