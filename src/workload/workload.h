// The benchmark suite (paper Section V: 4 SPEC2006 + 6 MiBench programs,
// compiled for ARM). We author equivalent kernels directly in the vr32 ISA:
// real algorithms with real control flow whose data-access behaviour
// reproduces each original's Fig. 3 profile (spatial locality / word reuse)
// and whose code shape (basic blocks of ~5-6 instructions, function calls,
// literal pools) exercises the BBR tool chain the way compiled C would.
//
//   name           models          access profile (Fig. 3)
//   basicmath      MiBench         tiny footprint, very high reuse
//   qsort          MiBench         moderate spatial, high reuse
//   dijkstra       MiBench         row scans + high-reuse dist array
//   patricia       MiBench         pointer chasing, low spatial, high reuse
//   crc32          MiBench         streaming + hot 256-entry table
//   adpcm          MiBench         streaming + hot step tables
//   mcf_r          429.mcf         scattered pointer chasing, low spatial
//   bzip2_r        401.bzip2       MTF+RLE: streaming + hot MTF table
//   hmmer_r        456.hmmer       DP rows: moderate spatial, high reuse
//   libquantum_r   462.libquantum  pure streaming: high spatial, low reuse
//
// Register convention (all benchmarks and the stdlib):
//   r1-r3 arguments / return value / scratch,
//   r4-r7 caller-saved scratch (library functions touch only r1-r7),
//   r8-r13 main-loop state (never touched by library functions),
//   r14 stack pointer, r15 link register.
// Every benchmark leaves a checksum in r1 before Halt so functional
// correctness (including after BBR transformation + relocation) is
// verifiable.
#pragma once

#include <span>
#include <string>
#include <string_view>

#include "isa/module.h"

namespace voltcache {

/// Input-size scaling. Dynamic instruction counts are roughly:
/// Tiny ~ tens of thousands (unit tests), Small ~ a few hundred thousand
/// (CI benches), Reference ~ a million+ (full experiments).
enum class WorkloadScale : std::uint8_t { Tiny, Small, Reference };

struct BenchmarkInfo {
    std::string_view name;
    std::string_view models; ///< the SPEC/MiBench program this stands in for
};

/// Data memory layout shared by all benchmarks.
namespace layout {
inline constexpr std::uint32_t kDataBase = 0x00100000;  ///< static data segments
inline constexpr std::uint32_t kHeapBase = 0x00200000;  ///< program-generated arrays
inline constexpr std::uint32_t kStackTop = 0x007FFFF0;  ///< r14 grows down from here
} // namespace layout

/// All ten benchmark names, in the paper's Fig. 3 order.
[[nodiscard]] std::span<const BenchmarkInfo> benchmarkList() noexcept;

/// Build one benchmark program. Throws std::out_of_range for unknown names.
[[nodiscard]] Module buildBenchmark(std::string_view name, WorkloadScale scale);

// Individual builders (one translation unit each).
[[nodiscard]] Module buildBasicmath(WorkloadScale scale);
[[nodiscard]] Module buildQsort(WorkloadScale scale);
[[nodiscard]] Module buildDijkstra(WorkloadScale scale);
[[nodiscard]] Module buildPatricia(WorkloadScale scale);
[[nodiscard]] Module buildCrc32(WorkloadScale scale);
[[nodiscard]] Module buildAdpcm(WorkloadScale scale);
[[nodiscard]] Module buildMcf(WorkloadScale scale);
[[nodiscard]] Module buildBzip2(WorkloadScale scale);
[[nodiscard]] Module buildHmmer(WorkloadScale scale);
[[nodiscard]] Module buildLibquantum(WorkloadScale scale);

} // namespace voltcache
