// qsort (MiBench): recursive quicksort (Lomuto partition) over an array of
// POINTERS to 16B records, comparing each record's key through the pointer
// — as the original sorts string pointers with indirect comparisons. The
// pointer array streams densely but the record pool is touched one key
// word per 4-word record (~25% of those lines), landing qsort in the
// paper's 30-60% spatial-locality band with high reuse.
#include "workload/stdlib.h"
#include "workload/workload.h"

namespace voltcache {

using namespace regs;

namespace {

void appendQsort(ModuleBuilder& mb) {
    // qsort(r1 loAddr, r2 hiAddr): sorts pointer words in [lo, hi]
    // (inclusive byte addresses) by the pointed-to records' key word.
    // Recursive; saves ra/p/hi on the stack across calls.
    auto f = mb.function("qsort");
    auto partition = f.newBlock("partition");
    auto ploop = f.newBlock("ploop");
    auto pswap = f.newBlock("pswap");
    auto pskip = f.newBlock("pskip");
    auto pdone = f.newBlock("pdone");
    auto out = f.newBlock("out");

    f.bgeu(r1, r2, out); // single element or empty
    f.jmp(partition);

    f.at(partition);
    f.lw(r3, r2, 0);      // pivot pointer
    f.lw(r3, r3, 0);      // pivot key
    f.addi(r4, r1, -4);   // i = lo - 1
    f.mv(r5, r1);         // j = lo
    f.jmp(ploop);

    f.at(ploop);
    f.bgeu(r5, r2, pdone);
    f.lw(r6, r5, 0);      // ptr[j]
    f.lw(r7, r6, 0);      // ptr[j]->key
    f.blt(r7, r3, pswap);
    f.jmp(pskip);

    f.at(pswap);
    f.addi(r4, r4, 4);    // ++i
    f.lw(r7, r4, 0);
    f.sw(r6, r4, 0);      // ptr[i] = ptr[j]
    f.sw(r7, r5, 0);      // ptr[j] = old ptr[i]; falls through
    f.at(pskip);
    f.addi(r5, r5, 4);
    f.jmp(ploop);

    f.at(pdone);
    f.addi(r4, r4, 4);    // p = i + 1
    f.lw(r7, r4, 0);
    f.lw(r6, r2, 0);
    f.sw(r6, r4, 0);      // ptr[p] = ptr[hi]
    f.sw(r7, r2, 0);      // ptr[hi] = old ptr[p]
    // Recurse on [lo, p-1] and [p+1, hi].
    f.addi(sp, sp, -12);
    f.sw(ra, sp, 0);
    f.sw(r4, sp, 4);
    f.sw(r2, sp, 8);
    f.addi(r2, r4, -4);
    f.call("qsort");      // qsort(lo, p-1); r1 still holds lo
    f.lw(r4, sp, 4);
    f.lw(r2, sp, 8);
    f.addi(r1, r4, 4);
    f.call("qsort");      // qsort(p+1, hi)
    f.lw(ra, sp, 0);
    f.addi(sp, sp, 12);
    f.jmp(out);

    f.at(out);
    f.ret();
}

} // namespace

Module buildQsort(WorkloadScale scale) {
    const std::uint32_t elements = scalePick(scale, 256, 4096, 8192);
    // Record pool at the heap base (16B records, key in word 0); the
    // pointer array follows it.
    const auto poolBase = static_cast<std::int32_t>(layout::kHeapBase);
    const auto ptrBase = static_cast<std::int32_t>(layout::kHeapBase + elements * 16);

    ModuleBuilder mb;
    {
        auto f = mb.function("main");
        auto initLoop = f.newBlock("init_loop");
        auto sort = f.newBlock("sort");
        auto check = f.newBlock("check");
        auto checkLoop = f.newBlock("check_loop");
        auto inversion = f.newBlock("inversion");
        auto checkNext = f.newBlock("check_next");
        auto done = f.newBlock("done");
        emitProlog(f);
        // r8 = ptr array base, r9 = n, r10 = inversions, r11 = cursor,
        // r12 = previous key, r13 = LCG seed
        f.li(r8, ptrBase);
        f.li(r9, static_cast<std::int32_t>(elements));
        f.li(r13, 0x1234567);
        // Build records (key = LCG word) and the identity pointer array.
        f.mv(r4, r0); // i
        f.ldlConst(r6, 1103515245);
        f.ldlConst(r7, 12345);
        f.jmp(initLoop);

        f.at(initLoop);
        f.bge(r4, r9, sort);
        f.mul(r13, r13, r6);
        f.add(r13, r13, r7);
        f.slli(r5, r4, 4);
        f.li(r1, poolBase);
        f.add(r5, r1, r5);  // &record[i]
        f.sw(r13, r5, 0);   // record.key
        f.slli(r2, r4, 2);
        f.add(r2, r8, r2);
        f.sw(r5, r2, 0);    // ptr[i] = &record[i]
        f.addi(r4, r4, 1);
        f.jmp(initLoop);

        f.at(sort);
        f.mv(r1, r8);
        f.addi(r2, r9, -1);
        f.slli(r2, r2, 2);
        f.add(r2, r8, r2);
        f.call("qsort");
        f.jmp(check);

        // Sum keys in sorted order; count adjacent inversions (must be 0)
        // and weight them heavily so the checksum exposes sorting bugs.
        f.at(check);
        f.mv(r10, r0);
        f.mv(r11, r8);
        f.lw(r1, r11, 0);
        f.lw(r12, r1, 0); // previous key = first key
        f.mv(r13, r0);    // running key sum
        f.add(r13, r13, r12);
        f.addi(r11, r11, 4);
        f.jmp(checkLoop);

        f.at(checkLoop);
        f.slli(r1, r9, 2);
        f.add(r1, r8, r1); // one past the last pointer slot
        f.bgeu(r11, r1, done);
        f.lw(r2, r11, 0);
        f.lw(r3, r2, 0); // key
        f.add(r13, r13, r3);
        f.blt(r3, r12, inversion);
        f.jmp(checkNext);

        f.at(inversion);
        f.addi(r10, r10, 1);
        f.jmp(checkNext);

        f.at(checkNext);
        f.mv(r12, r3);
        f.addi(r11, r11, 4);
        f.jmp(checkLoop);

        f.at(done);
        f.slli(r10, r10, 16);
        f.add(r1, r13, r10); // checksum = key sum + inversions << 16
        f.halt();
    }
    appendQsort(mb);
    appendStdlib(mb);
    return mb.take();
}

} // namespace voltcache
