// bzip2_r (models SPEC2006 401.bzip2): the move-to-front + run-length
// stage of BWT compression over a random symbol buffer. Streams the buffer
// while scanning and reshuffling the hot 64-entry MTF table on every
// symbol — bzip2's Fig. 3 profile of >60% words used and >60% reuse.
#include "workload/stdlib.h"
#include "workload/workload.h"

namespace voltcache {

using namespace regs;

Module buildBzip2(WorkloadScale scale) {
    const std::uint32_t bufferWords = scalePick(scale, 256, 4096, 8192);
    constexpr std::uint32_t kSymbols = 64;

    ModuleBuilder mb;
    {
        auto f = mb.function("main");
        auto maskLoop = f.newBlock("mask_loop");
        auto maskDone = f.newBlock("mask_done");
        auto symLoop = f.newBlock("symbol_loop");
        auto scan = f.newBlock("mtf_scan");
        auto shift = f.newBlock("mtf_shift");
        auto shiftDone = f.newBlock("mtf_done");
        auto runCont = f.newBlock("run_cont");
        auto runFlush = f.newBlock("run_flush");
        auto next = f.newBlock("next_symbol");
        auto done = f.newBlock("done");
        emitProlog(f);
        // r8 = buffer cursor, r9 = buffer end, r10 = MTF table base,
        // r11 = checksum, r12 = current run length of rank-0 symbols
        f.li(r8, static_cast<std::int32_t>(layout::kHeapBase));
        f.li(r9, static_cast<std::int32_t>(layout::kHeapBase + bufferWords * 4));
        f.li(r10, static_cast<std::int32_t>(layout::kDataBase));
        f.mv(r11, r0);
        f.mv(r12, r0);
        f.mv(r1, r8);
        f.li(r2, static_cast<std::int32_t>(bufferWords));
        f.li(r3, 0xb21b2);
        f.call("fill_random");
        // MTF table starts as the identity permutation.
        f.mv(r1, r10);
        f.li(r2, static_cast<std::int32_t>(kSymbols));
        f.mv(r3, r0);
        f.call("fill_seq");
        f.mv(r4, r8);
        f.jmp(maskLoop);

        f.at(maskLoop); // skew symbols low (post-BWT data is highly skewed —
                        // that is why move-to-front compresses at all)
        f.bgeu(r4, r9, maskDone);
        f.lw(r5, r4, 0);
        f.srli(r6, r5, 6);
        f.and_(r5, r5, r6); // each bit set with p=1/4: low ranks dominate
        f.andi(r5, r5, kSymbols - 1);
        f.sw(r5, r4, 0);
        f.addi(r4, r4, 4);
        f.jmp(maskLoop);

        f.at(maskDone);
        f.jmp(symLoop);

        f.at(symLoop);
        f.bgeu(r8, r9, done);
        f.lw(r1, r8, 0); // symbol
        f.mv(r2, r0);    // rank
        f.jmp(scan);

        f.at(scan); // find the symbol's rank in the MTF table
        f.slli(r3, r2, 2);
        f.add(r3, r10, r3);
        f.lw(r4, r3, 0);
        f.beq(r4, r1, shift);
        f.addi(r2, r2, 1);
        f.jmp(scan);

        f.at(shift); // move table[0..rank-1] down one slot
        f.mv(r5, r2); // falls through into the shift loop
        f.at(shiftDone);
        f.beq(r5, r0, runCont);
        f.slli(r3, r5, 2);
        f.add(r3, r10, r3);
        f.lw(r4, r3, -4);
        f.sw(r4, r3, 0);
        f.addi(r5, r5, -1);
        f.jmp(shiftDone);

        f.at(runCont);
        f.sw(r1, r10, 0); // table[0] = symbol
        f.add(r11, r11, r2);
        f.bne(r2, r0, runFlush);
        f.addi(r12, r12, 1); // extend the rank-0 run
        f.jmp(next);

        f.at(runFlush); // close the run, weight it into the checksum
        f.slli(r4, r12, 1);
        f.add(r11, r11, r4);
        f.mv(r12, r0);
        f.jmp(next);

        f.at(next);
        f.addi(r8, r8, 4);
        f.jmp(symLoop);

        f.at(done);
        f.mv(r1, r11);
        f.halt();
    }
    appendStdlib(mb);
    return mb.take();
}

} // namespace voltcache
