// dijkstra (MiBench): single-source shortest paths, O(V^2) selection. As in
// the original's adjacency-list node records, each edge occupies a 2-word
// record (weight + list metadata) of which the scans read only the weight —
// ~50% of each cache line is live (the paper's 30-60% Fig. 3 band). The
// dist/visited arrays are reused intensely.
#include "workload/stdlib.h"
#include "workload/workload.h"

namespace voltcache {

using namespace regs;

Module buildDijkstra(WorkloadScale scale) {
    const std::uint32_t vertices = scalePick(scale, 24, 96, 160);
    const std::uint32_t reps = scalePick(scale, 1, 2, 6);

    ModuleBuilder mb;
    auto f = mb.function("main");
    auto mask = f.newBlock("mask_loop");
    auto maskDone = f.newBlock("mask_done");
    auto repLoop = f.newBlock("rep_loop");
    auto init = f.newBlock("init_loop");
    auto initDone = f.newBlock("init_done");
    auto outer = f.newBlock("outer");
    auto amLoop = f.newBlock("argmin_loop");
    auto amSkip = f.newBlock("argmin_skip");
    auto amDone = f.newBlock("argmin_done");
    auto rxLoop = f.newBlock("relax_loop");
    auto rxSkip = f.newBlock("relax_skip");
    auto rxDone = f.newBlock("relax_done");
    auto repEnd = f.newBlock("rep_end");
    auto finish = f.newBlock("finish");

    emitProlog(f);
    // r8 = V, r9 = matrix, r10 = dist, r11 = visited, r12 = checksum,
    // r13 = remaining repetitions. The outer-iteration counter spills to
    // the stack (all scratch registers are live inside the scans).
    f.li(r8, static_cast<std::int32_t>(vertices));
    f.li(r9, static_cast<std::int32_t>(layout::kHeapBase));
    f.mul(r1, r8, r8);
    f.slli(r1, r1, 3);
    f.add(r10, r9, r1);         // dist = edges + V*V 2-word records
    f.slli(r2, r8, 2);
    f.add(r11, r10, r2);        // visited = dist + V words
    f.mv(r12, r0);
    f.li(r13, static_cast<std::int32_t>(reps));
    // fill edge records with LCG words, then clamp weights to 1..256
    f.mv(r1, r9);
    f.mul(r2, r8, r8);
    f.slli(r2, r2, 1);
    f.li(r3, 0xd1df5);
    f.call("fill_random");
    f.mul(r4, r8, r8);
    f.mv(r5, r9);
    f.jmp(mask);

    f.at(mask); // clamp each record's weight word; leave the metadata word
    f.beq(r4, r0, maskDone);
    f.lw(r6, r5, 0);
    f.andi(r6, r6, 255);
    f.addi(r6, r6, 1);
    f.sw(r6, r5, 0);
    f.addi(r5, r5, 8);
    f.addi(r4, r4, -1);
    f.jmp(mask);

    f.at(maskDone);
    f.addi(r14, r14, -4); // stack slot for the outer-iteration counter
    f.jmp(repLoop);

    f.at(repLoop);
    f.beq(r13, r0, finish);
    f.mv(r3, r0);
    f.li(r7, 0x3FFFFFFF);
    f.jmp(init);

    f.at(init); // dist[i] = INF, visited[i] = 0
    f.bge(r3, r8, initDone);
    f.slli(r4, r3, 2);
    f.add(r5, r10, r4);
    f.sw(r7, r5, 0);
    f.add(r5, r11, r4);
    f.sw(r0, r5, 0);
    f.addi(r3, r3, 1);
    f.jmp(init);

    f.at(initDone);
    f.sw(r0, r10, 0); // dist[source] = 0
    f.sw(r0, r14, 0); // iter = 0
    f.jmp(outer);

    f.at(outer);
    f.lw(r1, r14, 0);
    f.bge(r1, r8, repEnd);
    // argmin over unvisited dist
    f.li(r1, 0x7FFFFFFF);
    f.addi(r2, r0, -1);
    f.mv(r3, r0);
    f.jmp(amLoop);

    f.at(amLoop);
    f.bge(r3, r8, amDone);
    f.slli(r4, r3, 2);
    f.add(r5, r11, r4);
    f.lw(r6, r5, 0);
    f.bne(r6, r0, amSkip);
    f.add(r5, r10, r4);
    f.lw(r6, r5, 0);
    f.bge(r6, r1, amSkip);
    f.mv(r1, r6);
    f.mv(r2, r3); // falls through
    f.at(amSkip);
    f.addi(r3, r3, 1);
    f.jmp(amLoop);

    f.at(amDone);
    f.blt(r2, r0, repEnd); // no reachable unvisited vertex
    f.slli(r4, r2, 2);
    f.add(r5, r11, r4);
    f.addi(r6, r0, 1);
    f.sw(r6, r5, 0); // visited[u] = 1
    // relax all edges out of u; r1 = dist[u]
    f.mul(r4, r2, r8);
    f.slli(r4, r4, 3);
    f.add(r4, r9, r4); // edge-record pointer (2 words per edge)
    f.mv(r3, r0);
    f.mv(r5, r10); // dist cursor
    f.jmp(rxLoop);

    f.at(rxLoop);
    f.bge(r3, r8, rxDone);
    f.lw(r6, r4, 0);   // edge weight (metadata word untouched)
    f.add(r6, r1, r6); // dist[u] + w(u,v)
    f.lw(r7, r5, 0);
    f.bge(r6, r7, rxSkip);
    f.sw(r6, r5, 0); // falls through
    f.at(rxSkip);
    f.addi(r3, r3, 1);
    f.addi(r4, r4, 8);
    f.addi(r5, r5, 4);
    f.jmp(rxLoop);

    f.at(rxDone);
    f.lw(r6, r14, 0);
    f.addi(r6, r6, 1);
    f.sw(r6, r14, 0);
    f.jmp(outer);

    f.at(repEnd);
    f.mv(r1, r10);
    f.mv(r2, r8);
    f.call("sum_words");
    f.add(r12, r12, r1);
    f.addi(r13, r13, -1);
    f.jmp(repLoop);

    f.at(finish);
    f.addi(r14, r14, 4);
    f.mv(r1, r12);
    f.halt();

    appendStdlib(mb);
    return mb.take();
}

} // namespace voltcache
