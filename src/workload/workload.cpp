#include "workload/workload.h"

#include <array>
#include <stdexcept>
#include <string>

namespace voltcache {

namespace {

constexpr std::array<BenchmarkInfo, 10> kBenchmarks = {{
    {"basicmath", "MiBench basicmath"},
    {"qsort", "MiBench qsort"},
    {"dijkstra", "MiBench dijkstra"},
    {"patricia", "MiBench patricia"},
    {"crc32", "MiBench CRC32"},
    {"adpcm", "MiBench ADPCM"},
    {"mcf_r", "SPEC2006 429.mcf"},
    {"bzip2_r", "SPEC2006 401.bzip2"},
    {"hmmer_r", "SPEC2006 456.hmmer"},
    {"libquantum_r", "SPEC2006 462.libquantum"},
}};

} // namespace

std::span<const BenchmarkInfo> benchmarkList() noexcept { return kBenchmarks; }

Module buildBenchmark(std::string_view name, WorkloadScale scale) {
    if (name == "basicmath") return buildBasicmath(scale);
    if (name == "qsort") return buildQsort(scale);
    if (name == "dijkstra") return buildDijkstra(scale);
    if (name == "patricia") return buildPatricia(scale);
    if (name == "crc32") return buildCrc32(scale);
    if (name == "adpcm") return buildAdpcm(scale);
    if (name == "mcf_r") return buildMcf(scale);
    if (name == "bzip2_r") return buildBzip2(scale);
    if (name == "hmmer_r") return buildHmmer(scale);
    if (name == "libquantum_r") return buildLibquantum(scale);
    throw std::out_of_range("unknown benchmark '" + std::string(name) + "'");
}

} // namespace voltcache
