// mcf_r (models SPEC2006 429.mcf): pointer chasing over arc records
// scattered through a pool larger than the L1. Records are block-sized
// (32B) but only three of their eight words are live (cost, next pointer,
// and an occasionally-written flow field) — mcf's Fig. 3 signature of low
// spatial locality (30-60% of each line used) with high word reuse, which
// is exactly the pattern FFW's windows capture.
#include "workload/stdlib.h"
#include "workload/workload.h"

namespace voltcache {

using namespace regs;

Module buildMcf(WorkloadScale scale) {
    const std::uint32_t poolRecords = scalePick(scale, 512, 4096, 8192);
    const std::uint32_t cycleLength = scalePick(scale, 128, 768, 1536);
    const std::uint32_t steps = scalePick(scale, 4000, 40000, 160000);
    constexpr std::int32_t kScatterStride = 2731; // odd => coprime with 2^k pools

    ModuleBuilder mb;
    {
        auto f = mb.function("main");
        auto initLoop = f.newBlock("init_loop");
        auto walkSetup = f.newBlock("walk_setup");
        auto walk = f.newBlock("walk");
        auto skipWrite = f.newBlock("skip_write");
        auto done = f.newBlock("done");
        emitProlog(f);
        // r8 = pool records, r9 = pool base, r10 = cycle length (init) /
        // current record (walk), r11 = remaining steps, r12 = checksum,
        // r6 = xorshift state, r4 = k.
        f.li(r8, static_cast<std::int32_t>(poolRecords));
        f.li(r9, static_cast<std::int32_t>(layout::kHeapBase));
        f.li(r10, static_cast<std::int32_t>(cycleLength));
        f.li(r11, static_cast<std::int32_t>(steps));
        f.mv(r12, r0);
        f.li(r6, 0x2545F49);
        f.mv(r4, r0);
        f.jmp(initLoop);

        // Build the scattered cycle: record j(k) = (k*2731) mod N links to
        // record j((k+1) mod C).
        f.at(initLoop);
        f.bge(r4, r10, walkSetup);
        f.li(r1, kScatterStride);
        f.mul(r5, r4, r1);
        f.rem(r5, r5, r8); // j
        f.addi(r7, r4, 1);
        f.rem(r7, r7, r10); // (k+1) mod C
        f.mul(r7, r7, r1);
        f.rem(r7, r7, r8); // jn
        f.slli(r3, r5, 5); // * 32-byte record
        f.add(r3, r9, r3); // &rec[j]
        f.slli(r7, r7, 5);
        f.add(r7, r9, r7); // &rec[jn]
        f.sw(r7, r3, 4);   // rec[j].next
        // cost field from a xorshift stream
        f.slli(r2, r6, 13);
        f.xor_(r6, r6, r2);
        f.srli(r2, r6, 17);
        f.xor_(r6, r6, r2);
        f.slli(r2, r6, 5);
        f.xor_(r6, r6, r2);
        f.andi(r2, r6, 0xFFFF);
        f.sw(r2, r3, 0);  // rec[j].cost
        f.addi(r4, r4, 1);
        f.jmp(initLoop);

        f.at(walkSetup);
        f.mv(r10, r9); // cur = &rec[0] (k = 0 maps to record 0)
        f.jmp(walk);

        f.at(walk);
        f.beq(r11, r0, done);
        f.lw(r1, r10, 0); // cost (read in the feasibility check...)
        f.add(r12, r12, r1);
        f.lw(r2, r10, 0); // ...and again in the potential update, as the
        f.add(r12, r12, r2); // original re-reads arc->cost per pass
        f.andi(r3, r11, 7);
        f.bne(r3, r0, skipWrite);
        f.sw(r12, r10, 8); // occasional write-back (flow field)
        f.jmp(skipWrite);

        f.at(skipWrite);
        f.lw(r10, r10, 4); // cur = cur->next
        f.addi(r11, r11, -1);
        f.jmp(walk);

        f.at(done);
        f.mv(r1, r12);
        f.halt();
    }
    appendStdlib(mb);
    return mb.take();
}

} // namespace voltcache
