// hmmer_r (models SPEC2006 456.hmmer): Viterbi-style dynamic-programming
// recurrence over profile rows. As in the original's padded per-state
// structs, row cells are 2-word records (score + traceback slot) and the
// per-position model scores live in 4-word records of which two words are
// read — so scans touch ~50% of each cache line (hmmer's Fig. 3 band of
// 30-60%), while the prev/cur rows and score tables are reused every
// observation.
#include "workload/stdlib.h"
#include "workload/workload.h"

namespace voltcache {

using namespace regs;

Module buildHmmer(WorkloadScale scale) {
    const std::uint32_t modelLength = scalePick(scale, 64, 128, 192);
    const std::uint32_t observations = scalePick(scale, 30, 150, 400);

    const std::uint32_t L = modelLength;
    const auto heap = layout::kHeapBase;
    const auto prevBase = static_cast<std::int32_t>(heap);               // L 2-word cells
    const auto curBase = static_cast<std::int32_t>(heap + 2 * L * 4);    // L 2-word cells
    const auto scoreBase = static_cast<std::int32_t>(heap + 4 * L * 4);  // L 4-word records
    const auto emitBase = static_cast<std::int32_t>(heap + 8 * L * 4);   // 256 words

    ModuleBuilder mb;
    {
        auto f = mb.function("main");
        auto maskLoop = f.newBlock("mask_loop");
        auto maskDone = f.newBlock("mask_done");
        auto tLoop = f.newBlock("t_loop");
        auto jLoop = f.newBlock("j_loop");
        auto useM2 = f.newBlock("use_m2");
        auto cont1 = f.newBlock("cont1");
        auto useM3 = f.newBlock("use_m3");
        auto cont2 = f.newBlock("cont2");
        auto jDone = f.newBlock("j_done");
        auto done = f.newBlock("done");
        emitProlog(f);
        // r8 = L, r9 = prev row, r10 = cur row, r11 = t, r12 = checksum,
        // r13 = observation xorshift state
        f.li(r8, static_cast<std::int32_t>(L));
        f.li(r9, prevBase);
        f.li(r10, curBase);
        f.mv(r11, r0);
        f.mv(r12, r0);
        f.li(r13, 0x7a3d);
        // model tables: random bytes (score records + emissions)
        f.li(r1, scoreBase);
        f.li(r2, static_cast<std::int32_t>(4 * L + 256));
        f.li(r3, 0x4dc7);
        f.call("fill_random");
        f.li(r4, scoreBase);
        f.li(r5, static_cast<std::int32_t>(4 * L + 256));
        f.jmp(maskLoop);

        f.at(maskLoop);
        f.beq(r5, r0, maskDone);
        f.lw(r6, r4, 0);
        f.andi(r6, r6, 0xFF);
        f.sw(r6, r4, 0);
        f.addi(r4, r4, 4);
        f.addi(r5, r5, -1);
        f.jmp(maskLoop);

        f.at(maskDone);
        f.jmp(tLoop);

        f.at(tLoop);
        f.li(r1, static_cast<std::int32_t>(observations));
        f.bge(r11, r1, done);
        // next observation
        f.slli(r1, r13, 13);
        f.xor_(r13, r13, r1);
        f.srli(r1, r13, 17);
        f.xor_(r13, r13, r1);
        f.slli(r1, r13, 5);
        f.xor_(r13, r13, r1);
        // boundary: cur[0] = prev[0] + 1
        f.lw(r2, r9, 0);
        f.addi(r2, r2, 1);
        f.sw(r2, r10, 0);
        f.addi(r1, r0, 1); // j = 1
        f.jmp(jLoop);

        f.at(jLoop);
        f.bge(r1, r8, jDone);
        f.slli(r2, r1, 3); // cell byte offset (2-word cells)
        f.add(r6, r9, r2);
        f.lw(r3, r6, -8); // prev[j-1].score
        f.slli(r5, r1, 4); // score-record byte offset (4-word records)
        f.li(r6, scoreBase);
        f.add(r6, r6, r5);
        f.lw(r4, r6, 0);   // record.tscore
        f.add(r3, r3, r4); // m1 = prev[j-1] + tscore[j]
        f.add(r7, r10, r2);
        f.lw(r4, r7, -8);  // cur[j-1].score
        f.addi(r4, r4, 3); // m2 = cur[j-1] + gap
        f.blt(r3, r4, useM2);
        f.jmp(cont1);

        f.at(useM2);
        f.mv(r3, r4); // falls through
        f.at(cont1);
        f.add(r7, r9, r2);
        f.lw(r4, r7, 0); // prev[j].score
        f.lw(r5, r6, 4); // record.iscore
        f.add(r4, r4, r5); // m3 = prev[j] + iscore[j]
        f.blt(r3, r4, useM3);
        f.jmp(cont2);

        f.at(useM3);
        f.mv(r3, r4); // falls through
        f.at(cont2);
        f.andi(r4, r13, 255);
        f.add(r4, r4, r1);
        f.andi(r4, r4, 255); // emission index (obs + j) mod 256
        f.slli(r4, r4, 2);
        f.li(r5, emitBase);
        f.add(r5, r5, r4);
        f.lw(r5, r5, 0);
        f.add(r3, r3, r5);
        f.add(r6, r10, r2);
        f.sw(r3, r6, 0); // cur[j].score
        f.addi(r1, r1, 1);
        f.jmp(jLoop);

        f.at(jDone);
        f.slli(r2, r8, 3);
        f.add(r6, r10, r2);
        f.lw(r3, r6, -8);
        f.add(r12, r12, r3); // checksum += cur[L-1].score
        f.mv(r2, r9);        // swap rows
        f.mv(r9, r10);
        f.mv(r10, r2);
        f.addi(r11, r11, 1);
        f.jmp(tLoop);

        f.at(done);
        f.mv(r1, r12);
        f.halt();
    }
    appendStdlib(mb);
    return mb.take();
}

} // namespace voltcache
