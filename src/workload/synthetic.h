// Parametric synthetic workloads for controlled studies. The paper defers
// "a comprehensive study of the limit of application live footprints" to
// future work (Section V); buildPointerChase() provides the knob that study
// needs: a pointer-chasing kernel whose live data footprint, per-line word
// usage, and revisit period are all set explicitly.
#pragma once

#include <cstdint>

#include "isa/module.h"

namespace voltcache {

struct PointerChaseParams {
    /// Records in the pool (32B each, block-aligned). Pool spans
    /// poolRecords * 32 bytes of address space.
    std::uint32_t poolRecords = 4096;
    /// Records in the traversal cycle (live footprint = cycleRecords * 32B),
    /// scattered through the pool. Must be <= poolRecords.
    std::uint32_t cycleRecords = 1024;
    /// Words read per record visit, 1..6 starting at word 0 — sets the
    /// per-line spatial locality (wordsPerVisit / 8).
    std::uint32_t wordsPerVisit = 3;
    /// Total record visits.
    std::uint32_t steps = 40000;
};

/// Build the kernel as a vr32 program (checksum in r1 at Halt).
[[nodiscard]] Module buildPointerChase(const PointerChaseParams& params);

} // namespace voltcache
