#include "workload/stdlib.h"

namespace voltcache {

using namespace regs;

void appendStdlib(ModuleBuilder& mb) {
    // lcg_next(r1 seed) -> r1 = seed * 1103515245 + 12345
    {
        auto f = mb.function("lcg_next");
        f.ldlConst(r4, 1103515245);
        f.mul(r1, r1, r4);
        f.ldlConst(r4, 12345);
        f.add(r1, r1, r4);
        f.ret();
    }
    // fill_random(r1 ptr, r2 n, r3 seed) -> r3 final seed.
    // LCG constants are hoisted out of the loop, as a compiler would.
    {
        auto f = mb.function("fill_random");
        auto loop = f.newBlock("loop");
        auto done = f.newBlock("done");
        f.ldlConst(r5, 1103515245);
        f.ldlConst(r6, 12345);
        f.jmp(loop);
        f.at(loop);
        f.beq(r2, r0, done);
        f.mul(r3, r3, r5);
        f.add(r3, r3, r6);
        f.sw(r3, r1, 0);
        f.addi(r1, r1, 4);
        f.addi(r2, r2, -1);
        f.jmp(loop);
        f.at(done);
        f.ret();
    }
    // fill_seq(r1 ptr, r2 n, r3 start)
    {
        auto f = mb.function("fill_seq");
        auto loop = f.newBlock("loop");
        auto done = f.newBlock("done");
        f.jmp(loop);
        f.at(loop);
        f.beq(r2, r0, done);
        f.sw(r3, r1, 0);
        f.addi(r3, r3, 1);
        f.addi(r1, r1, 4);
        f.addi(r2, r2, -1);
        f.jmp(loop);
        f.at(done);
        f.ret();
    }
    // sum_words(r1 ptr, r2 n) -> r1
    {
        auto f = mb.function("sum_words");
        auto loop = f.newBlock("loop");
        auto done = f.newBlock("done");
        f.mv(r4, r1);
        f.mv(r1, r0);
        f.jmp(loop);
        f.at(loop);
        f.beq(r2, r0, done);
        f.lw(r5, r4, 0);
        f.add(r1, r1, r5);
        f.addi(r4, r4, 4);
        f.addi(r2, r2, -1);
        f.jmp(loop);
        f.at(done);
        f.ret();
    }
    // memcpy_words(r1 dst, r2 src, r3 n)
    {
        auto f = mb.function("memcpy_words");
        auto loop = f.newBlock("loop");
        auto done = f.newBlock("done");
        f.jmp(loop);
        f.at(loop);
        f.beq(r3, r0, done);
        f.lw(r4, r2, 0);
        f.sw(r4, r1, 0);
        f.addi(r1, r1, 4);
        f.addi(r2, r2, 4);
        f.addi(r3, r3, -1);
        f.jmp(loop);
        f.at(done);
        f.ret();
    }
}

void emitProlog(FunctionBuilder& f) {
    f.li(r14, static_cast<std::int32_t>(layout::kStackTop));
}

std::uint32_t scalePick(WorkloadScale scale, std::uint32_t tiny, std::uint32_t small,
                        std::uint32_t reference) {
    switch (scale) {
        case WorkloadScale::Tiny: return tiny;
        case WorkloadScale::Small: return small;
        case WorkloadScale::Reference: return reference;
    }
    return reference;
}

} // namespace voltcache
