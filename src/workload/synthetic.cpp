#include "workload/synthetic.h"

#include "common/contracts.h"
#include "workload/stdlib.h"

namespace voltcache {

using namespace regs;

Module buildPointerChase(const PointerChaseParams& params) {
    VC_EXPECTS(params.cycleRecords >= 1 && params.cycleRecords <= params.poolRecords);
    VC_EXPECTS(params.wordsPerVisit >= 1 && params.wordsPerVisit <= 6);
    constexpr std::int32_t kScatterStride = 2731;

    ModuleBuilder mb;
    {
        auto f = mb.function("main");
        auto initLoop = f.newBlock("init_loop");
        auto walkSetup = f.newBlock("walk_setup");
        auto walk = f.newBlock("walk");
        auto done = f.newBlock("done");
        emitProlog(f);
        // r8 = pool records, r9 = pool base, r10 = cycle length / current
        // record, r11 = remaining steps, r12 = checksum, r6 = data seed.
        f.li(r8, static_cast<std::int32_t>(params.poolRecords));
        f.li(r9, static_cast<std::int32_t>(layout::kHeapBase));
        f.li(r10, static_cast<std::int32_t>(params.cycleRecords));
        f.li(r11, static_cast<std::int32_t>(params.steps));
        f.mv(r12, r0);
        f.li(r6, 0x51b71);
        f.mv(r4, r0);
        f.jmp(initLoop);

        f.at(initLoop); // record j(k) = (k*2731) mod N links to j((k+1) mod C)
        f.bge(r4, r10, walkSetup);
        f.li(r1, kScatterStride);
        f.mul(r5, r4, r1);
        f.rem(r5, r5, r8);
        f.addi(r7, r4, 1);
        f.rem(r7, r7, r10);
        f.mul(r7, r7, r1);
        f.rem(r7, r7, r8);
        f.slli(r3, r5, 5);
        f.add(r3, r9, r3);
        f.slli(r7, r7, 5);
        f.add(r7, r9, r7);
        f.sw(r7, r3, 4); // next pointer at word 1
        f.slli(r2, r6, 13);
        f.xor_(r6, r6, r2);
        f.srli(r2, r6, 17);
        f.xor_(r6, r6, r2);
        f.andi(r2, r6, 0xFFFF);
        f.sw(r2, r3, 0);  // payload word 0
        f.sw(r2, r3, 8);  // payload words 2..6 share the seed value
        f.sw(r2, r3, 12);
        f.sw(r2, r3, 16);
        f.sw(r2, r3, 20);
        f.addi(r4, r4, 1);
        f.jmp(initLoop);

        f.at(walkSetup);
        f.mv(r10, r9); // cur = &rec[0]
        f.jmp(walk);

        f.at(walk);
        f.beq(r11, r0, done);
        // Read wordsPerVisit words of the record: word 0 (payload), word 1
        // (next), then words 2.. as configured.
        f.lw(r1, r10, 0);
        f.add(r12, r12, r1);
        for (std::uint32_t w = 2; w < params.wordsPerVisit; ++w) {
            f.lw(r2, r10, static_cast<std::int32_t>(4 + w * 4));
            f.add(r12, r12, r2);
        }
        f.lw(r10, r10, 4); // follow the pointer (counts as a visited word)
        f.addi(r11, r11, -1);
        f.jmp(walk);

        f.at(done);
        f.mv(r1, r12);
        f.halt();
    }
    appendStdlib(mb);
    return mb.take();
}

} // namespace voltcache
