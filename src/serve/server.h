// The `voltcache serve` daemon: sweep-as-a-service over loopback TCP.
//
// One accept loop (the caller's thread, via run()), one reader thread per
// client connection, and ONE executor thread that drains the per-session
// job queues in round-robin order — so a client that enqueues fifty sweeps
// cannot starve a client that enqueues one. Jobs flatten into legs on the
// ordinary runSweep executor (parallelism lives inside the job); every job
// consults the shared content-addressed LegStore before simulating, so
// overlapping sweeps from any number of clients pay for each unique leg
// once.
//
// Graceful shutdown: requestStop() is async-signal-safe (two atomic
// stores). The accept loop stops admitting connections, the executor
// finishes the in-flight job (legs drain), queued jobs are rejected with an
// error event, reader threads notice within one poll interval, the store
// segment and the NDJSON journal are flushed, and run() returns.
//
// Metrics (PR 7 Prometheus plane, always on):
//   serve.connections, serve.sessions, serve.queue_depth, serve.jobs{op=},
//   serve.jobs_rejected, serve.job_errors, serve.session.jobs{session=} —
//   the per-client fairness counter — plus serve.store.* from LegStore.
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "common/socket.h"
#include "obs/export/journal.h"
#include "obs/export/telemetry.h"
#include "serve/protocol.h"
#include "serve/store.h"

namespace voltcache::serve {

struct ServeOptions {
    std::uint16_t port = 0;            ///< 0 = ephemeral (report via port())
    std::string storeDirectory;        ///< empty = in-memory store only
    std::uint64_t storeBudgetBytes = 256ull << 20;
    unsigned threads = 0;              ///< default sweep workers per job
    std::string journalPath;           ///< empty = no NDJSON leg journal
    /// Rotate the journal when it would exceed this many bytes (the live
    /// file moves to `<path>.1`, replacing the previous generation). 0 =
    /// unbounded.
    std::uint64_t journalMaxBytes = 0;
    /// Crash flight recorder (obs/flight_recorder.h): install a process-wide
    /// recorder dumping to this path on SIGSEGV / SIGABRT / contract
    /// failure, fed from every job's leg events and progress ticks. Empty =
    /// off.
    std::string flightRecordPath;
    /// Close a connection with no request, no queued job, and no running
    /// job for this long (per-connection read deadline).
    std::chrono::milliseconds idleTimeout{600000};
    /// Bound on blocking response writes (SO_SNDTIMEO): a client that
    /// stops reading cannot wedge the executor past this.
    std::chrono::milliseconds sendTimeout{30000};
    /// Optional telemetry mirror: progress ticks from the running job feed
    /// this board (beginJob per job). Must outlive the server.
    obs::ProgressBoard* board = nullptr;
};

class Server {
public:
    /// Binds the listener and opens/loads the store. Throws on bind or
    /// store failure.
    explicit Server(const ServeOptions& options);
    ~Server();

    Server(const Server&) = delete;
    Server& operator=(const Server&) = delete;

    [[nodiscard]] std::uint16_t port() const noexcept { return listener_.port(); }

    /// Serve until requestStop(). Runs the accept loop on the calling
    /// thread; returns after the drain completes and the store is flushed.
    void run();

    /// Async-signal-safe stop: two atomic stores, no locks. Callable from
    /// a SIGINT/SIGTERM handler.
    void requestStop() noexcept;

    [[nodiscard]] LegStore& store() noexcept { return store_; }

    struct Totals {
        std::uint64_t connections = 0;
        std::uint64_t jobsCompleted = 0;
        std::uint64_t jobsRejected = 0;
        std::uint64_t jobErrors = 0;
    };
    [[nodiscard]] Totals totals() const noexcept;

private:
    struct Session {
        std::uint64_t id = 0;
        net::Socket socket;
        std::mutex writeMutex;
        std::deque<JobRequest> queue; ///< guarded by Server::stateMutex_
        std::atomic<bool> open{true};
        std::atomic<bool> busy{false}; ///< executor is running this session's job
        std::thread reader;
    };

    [[nodiscard]] bool stopping() const noexcept {
        return stop_.load(std::memory_order_acquire);
    }

    /// Write one line (appends '\n') under the session write lock. A failed
    /// or timed-out send marks the session closed.
    void writeLine(Session& session, const std::string& line);

    void sessionLoop(const std::shared_ptr<Session>& session);
    void executorLoop();
    void runJob(Session& session, const JobRequest& request);
    [[nodiscard]] std::string statsEvent();
    [[nodiscard]] std::size_t queueDepthLocked() const;
    void reapSessionsLocked(std::vector<std::thread>& joinable);

    ServeOptions options_;
    net::TcpListener listener_;
    LegStore store_;
    std::optional<obs::LegJournal> journal_;
    std::atomic<bool> stop_{false};

    mutable std::mutex stateMutex_;
    std::condition_variable jobsCv_;
    std::vector<std::shared_ptr<Session>> sessions_;
    std::size_t rrCursor_ = 0; ///< round-robin position over sessions_
    std::uint64_t nextSessionId_ = 1;

    std::atomic<std::uint64_t> connections_{0};
    std::atomic<std::uint64_t> jobsCompleted_{0};
    std::atomic<std::uint64_t> jobsRejected_{0};
    std::atomic<std::uint64_t> jobErrors_{0};
};

} // namespace voltcache::serve
