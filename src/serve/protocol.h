// The `voltcache serve` wire protocol: newline-delimited JSON over loopback
// TCP, one document per line in both directions.
//
// Requests (client → server), one object per line:
//   {"op":"ping"}                         → {"ev":"pong"}
//   {"op":"stats"}                        → {"ev":"stats", ...}
//   {"op":"sweep"|"run"|"verify", "id":"...", "trials":N,
//    "benchmarks":"csv", "schemes":"csv", "scale":"small", "mv":"csv",
//    "threads":N, "seed":N, "maxInstructions":N, "progress":true}
//
// `run` is a degenerate sweep (defaults trials=1) for one-off legs; `verify`
// runs the sweep under the analytic cross-check gate and reports pass/fail.
// All three flatten into legs on the same executor and consult the same
// content-addressed store.
//
// Responses (server → client), in order per job:
//   {"ev":"accepted","id":...,"queue":N}
//   {"ev":"progress","id":..., legs/benchmarks counters}   (opt-in, throttled)
//   {"ev":"result","id":...,"ok":true, hit/miss summary, "bytes":L}
//   <the raw sweep JSON document — one line of exactly L bytes>
//   {"ev":"error","id":...,"message":"..."}                (instead of result)
//
// The document line is byte-identical to what `voltcache sweep --json` would
// have written (sans trailing newline): the server frames the exact string
// and never reserializes it, so clients can diff server output against the
// direct CLI path.
//
// Framing rules: requests are capped at kMaxRequestLineBytes (a hostile or
// broken client cannot balloon the server's line buffer); responses are read
// with a much larger cap since one line carries a whole sweep document.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>

#include "common/socket.h"
#include "core/sweep.h"

namespace voltcache::serve {

/// Server-side cap on one request line (requests are small flag bundles).
inline constexpr std::size_t kMaxRequestLineBytes = 64 * 1024;

/// Client-side cap on one response line (the result document can be MBs).
inline constexpr std::size_t kMaxResponseLineBytes = 256ull << 20;

/// A parsed sweep/run/verify job. String list fields keep the CLI's CSV
/// syntax so `voltcache submit` forwards its flags verbatim.
struct JobRequest {
    std::string op;         ///< "sweep" | "run" | "verify"
    std::string id;         ///< client-chosen label, echoed on every event
    std::string benchmarks; ///< CSV, empty = all
    std::string schemes;    ///< CSV, empty = the paper set
    std::string scale = "small";
    std::string mv;         ///< CSV millivolts, empty = Table II low-voltage set
    std::uint32_t trials = 3; ///< `run` defaults to 1
    unsigned threads = 0;
    std::uint64_t seed = 0xC0FFEE;
    std::uint64_t maxInstructions = 0;
    bool progress = false;  ///< stream progress events for this job
    /// 32-hex-char trace id (obs/trace_context.h) chosen by the client
    /// (`voltcache submit` mints one). Empty = the server mints one at
    /// admission. Echoed on accepted/result events so the client can fetch
    /// `/trace/<id>` from the telemetry plane afterwards.
    std::string trace;
};

struct Request {
    enum class Kind : std::uint8_t { Ping, Stats, Job, Invalid };
    Kind kind = Kind::Invalid;
    JobRequest job;     ///< Kind::Job only
    std::string error;  ///< Kind::Invalid only
};

/// Parse one request line. Never throws: malformed JSON or an unknown op
/// yields Kind::Invalid with a diagnostic.
[[nodiscard]] Request parseRequest(std::string_view line);

/// Serialize a job as one request line (no trailing newline) — the
/// `voltcache submit` side of parseRequest.
[[nodiscard]] std::string jobToJson(const JobRequest& job);

/// What the result event reports alongside the framed document.
struct ResultSummary {
    bool ok = true;
    std::uint64_t legs = 0;
    std::uint64_t legsCached = 0;
    std::uint64_t storeHits = 0;
    std::uint64_t storeMisses = 0;
    double elapsedSeconds = 0.0;
    bool analytic = false;       ///< verify jobs: cross-check ran
    bool analyticPassed = false;
    double maxZ = 0.0;
    std::size_t documentBytes = 0;
    std::string trace;           ///< the job's 32-hex trace id ("" = untraced)
};

/// Response event builders (no trailing newline). `trace` is the job's
/// 32-hex trace id; empty omits the field.
[[nodiscard]] std::string pongEvent();
[[nodiscard]] std::string acceptedEvent(const std::string& id, std::size_t queueDepth,
                                        const std::string& trace = {});
[[nodiscard]] std::string errorEvent(const std::string& id, std::string_view message);
[[nodiscard]] std::string progressEvent(const std::string& id, const SweepProgress& p);
[[nodiscard]] std::string resultEvent(const std::string& id, const ResultSummary& s);

/// Incremental newline-delimited reader over Socket::recvSome. Bounded:
/// a line longer than maxLine reports Overflow instead of growing the
/// buffer, and a socket-level timeout surfaces as Timeout so callers own
/// the deadline policy. Bytes after the returned line stay buffered.
class LineReader {
public:
    enum class Status : std::uint8_t { Line, Eof, Timeout, Error, Overflow };

    LineReader(net::Socket& socket, std::size_t maxLine)
        : socket_(socket), maxLine_(maxLine) {}

    /// Block (up to the socket's receive timeout) for the next line. On
    /// Status::Line, `line` holds the content without the terminator (a
    /// trailing '\r' is stripped).
    [[nodiscard]] Status next(std::string& line);

private:
    net::Socket& socket_;
    std::string buffer_;
    std::size_t maxLine_;
};

} // namespace voltcache::serve
