#include "serve/store.h"

#include <bit>
#include <cstring>
#include <filesystem>
#include <stdexcept>

#include "obs/metrics.h"

namespace voltcache::serve {

namespace {

constexpr char kSegmentMagic[8] = {'V', 'C', 'L', 'E', 'G', 'S', 'T', '1'};
constexpr std::size_t kSegmentHeaderBytes = sizeof(kSegmentMagic) + 4;
constexpr std::size_t kSegmentRecordBytes =
    sizeof(Digest256) + kLegPayloadBytes + sizeof(Digest256);

/// Accounted cost of one LRU entry: key + value + node/index overhead. The
/// estimate only needs to make the byte budget meaningful, not exact.
constexpr std::uint64_t kEntryBytes =
    sizeof(Digest256) + sizeof(LegResult) + 96;

void appendU64(std::string& out, std::uint64_t value) {
    for (int i = 0; i < 8; ++i) {
        out.push_back(static_cast<char>((value >> (8 * i)) & 0xFF));
    }
}

void appendF64(std::string& out, double value) {
    appendU64(out, std::bit_cast<std::uint64_t>(value));
}

std::uint64_t readU64(const char* data) {
    std::uint64_t value = 0;
    for (int i = 0; i < 8; ++i) {
        value |= static_cast<std::uint64_t>(static_cast<unsigned char>(data[i]))
                 << (8 * i);
    }
    return value;
}

double readF64(const char* data) { return std::bit_cast<double>(readU64(data)); }

Digest256 recordDigest(const Digest256& key, std::string_view payload) {
    Sha256 sha;
    sha.update(key.data(), key.size());
    sha.update(payload);
    return sha.finish();
}

} // namespace

std::string encodeLegResult(const LegResult& value) {
    std::string out;
    out.reserve(kLegPayloadBytes);
    out.push_back(value.linkFailed ? '\1' : '\0');
    appendF64(out, value.normRuntime);
    appendF64(out, value.l2PerKilo);
    appendF64(out, value.normEpi);
    appendF64(out, value.busyFrac);
    appendF64(out, value.ifetchFrac);
    appendF64(out, value.dmemFrac);
    appendF64(out, value.branchFrac);
    const LegForensics& f = value.forensics;
    for (const std::uint64_t v : f.ffwWindowSize) appendU64(out, v);
    for (const std::uint64_t v : f.ffwRecenterDistance) appendU64(out, v);
    appendU64(out, f.ffwRecenters);
    for (const std::uint64_t v : f.bbrChunkWords) appendU64(out, v);
    for (const std::uint64_t v : f.bbrDisplacement) appendU64(out, v);
    appendU64(out, f.bbrBlocksPlaced);
    out.push_back(f.hasFfw ? '\1' : '\0');
    out.push_back(f.hasBbr ? '\1' : '\0');
    out.push_back(static_cast<char>(f.failCause));
    return out;
}

bool decodeLegResult(std::string_view payload, LegResult& out) {
    if (payload.size() != kLegPayloadBytes) return false;
    const char* p = payload.data();
    out.linkFailed = *p++ != '\0';
    const auto f64 = [&p] {
        const double v = readF64(p);
        p += 8;
        return v;
    };
    const auto u64 = [&p] {
        const std::uint64_t v = readU64(p);
        p += 8;
        return v;
    };
    out.normRuntime = f64();
    out.l2PerKilo = f64();
    out.normEpi = f64();
    out.busyFrac = f64();
    out.ifetchFrac = f64();
    out.dmemFrac = f64();
    out.branchFrac = f64();
    LegForensics& f = out.forensics;
    for (std::uint64_t& v : f.ffwWindowSize) v = u64();
    for (std::uint64_t& v : f.ffwRecenterDistance) v = u64();
    f.ffwRecenters = u64();
    for (std::uint64_t& v : f.bbrChunkWords) v = u64();
    for (std::uint64_t& v : f.bbrDisplacement) v = u64();
    f.bbrBlocksPlaced = u64();
    f.hasFfw = *p++ != '\0';
    f.hasBbr = *p++ != '\0';
    const auto cause = static_cast<unsigned char>(*p++);
    if (cause >= 7) return false;
    f.failCause = static_cast<LinkFailCause>(cause);
    return true;
}

std::size_t LegStore::DigestHasher::operator()(const Digest256& key) const noexcept {
    // The key is itself a cryptographic digest — its first 8 bytes are as
    // good a hash as any.
    std::uint64_t value = 0;
    std::memcpy(&value, key.data(), sizeof(value));
    return static_cast<std::size_t>(value);
}

LegStore::LegStore(const Options& options) : byteBudget_(options.byteBudget) {
    auto& registry = obs::MetricsRegistry::global();
    hitsMetric_ = registry.counter("serve.store.hits");
    missesMetric_ = registry.counter("serve.store.misses");
    insertsMetric_ = registry.counter("serve.store.inserts");
    evictionsMetric_ = registry.counter("serve.store.evictions");
    entriesMetric_ = registry.gauge("serve.store.entries");
    bytesMetric_ = registry.gauge("serve.store.bytes");
    if (!options.directory.empty()) {
        std::error_code ec;
        std::filesystem::create_directories(options.directory, ec);
        if (ec) {
            throw std::runtime_error("store: cannot create directory '" +
                                     options.directory + "': " + ec.message());
        }
        const std::string path = options.directory + "/legs.vcs";
        loadSegment(path);
    }
}

LegStore::~LegStore() { flush(); }

void LegStore::loadSegment(const std::string& path) {
    std::ifstream in(path, std::ios::binary);
    bool truncate = false;
    if (in) {
        char header[kSegmentHeaderBytes];
        if (in.read(header, sizeof(header))) {
            std::uint32_t payloadBytes = 0;
            for (int i = 0; i < 4; ++i) {
                payloadBytes |= static_cast<std::uint32_t>(static_cast<unsigned char>(
                                    header[sizeof(kSegmentMagic) + i]))
                                << (8 * i);
            }
            if (std::memcmp(header, kSegmentMagic, sizeof(kSegmentMagic)) != 0 ||
                payloadBytes != kLegPayloadBytes) {
                // Format change or foreign file: a cache segment is safe to
                // discard wholesale (cost = re-simulation).
                ++stats_.rejected;
                truncate = true;
            } else {
                std::string record(kSegmentRecordBytes, '\0');
                while (in.read(record.data(),
                               static_cast<std::streamsize>(record.size()))) {
                    Digest256 key{};
                    std::memcpy(key.data(), record.data(), key.size());
                    const std::string_view payload(record.data() + key.size(),
                                                   kLegPayloadBytes);
                    Digest256 expected{};
                    std::memcpy(expected.data(),
                                record.data() + key.size() + kLegPayloadBytes,
                                expected.size());
                    LegResult value;
                    if (recordDigest(key, payload) != expected ||
                        !decodeLegResult(payload, value)) {
                        ++stats_.rejected;
                        continue;
                    }
                    insertLocked(key, value, /*persist=*/false);
                    ++stats_.loaded;
                }
                // A partial trailing record (crash mid-append) is ignored.
            }
        }
        in.close();
    }
    openSegmentForAppend(path, truncate);
    obs::MetricsRegistry::global().add("serve.store.loaded", {}, stats_.loaded);
    obs::MetricsRegistry::global().add("serve.store.rejected", {}, stats_.rejected);
}

void LegStore::openSegmentForAppend(const std::string& path, bool truncate) {
    const bool fresh =
        truncate || !std::filesystem::exists(std::filesystem::path(path));
    const auto mode = std::ios::binary | (fresh ? std::ios::trunc : std::ios::app);
    segment_.open(path, mode);
    if (!segment_) throw std::runtime_error("store: cannot open '" + path + "'");
    if (fresh) {
        segment_.write(kSegmentMagic, sizeof(kSegmentMagic));
        std::uint32_t payloadBytes = kLegPayloadBytes;
        char size[4];
        for (int i = 0; i < 4; ++i) {
            size[i] = static_cast<char>((payloadBytes >> (8 * i)) & 0xFF);
        }
        segment_.write(size, sizeof(size));
        segment_.flush();
    }
}

bool LegStore::lookup(const Digest256& key, LegResult& out) {
    const std::lock_guard<std::mutex> lock(mutex_);
    const auto it = index_.find(key);
    if (it == index_.end()) {
        ++stats_.misses;
        missesMetric_.add();
        return false;
    }
    lru_.splice(lru_.begin(), lru_, it->second);
    out = it->second->second;
    ++stats_.hits;
    hitsMetric_.add();
    return true;
}

void LegStore::store(const Digest256& key, const LegResult& value) {
    const std::lock_guard<std::mutex> lock(mutex_);
    insertLocked(key, value, /*persist=*/true);
}

void LegStore::insertLocked(const Digest256& key, const LegResult& value,
                            bool persist) {
    const auto it = index_.find(key);
    if (it != index_.end()) {
        lru_.splice(lru_.begin(), lru_, it->second);
        it->second->second = value;
        return;
    }
    lru_.emplace_front(key, value);
    index_.emplace(key, lru_.begin());
    bytes_ += kEntryBytes;
    ++stats_.inserts;
    while (bytes_ > byteBudget_ && lru_.size() > 1) evictLocked();
    stats_.entries = lru_.size();
    stats_.bytes = bytes_;
    insertsMetric_.add();
    entriesMetric_.set(static_cast<double>(stats_.entries));
    bytesMetric_.set(static_cast<double>(stats_.bytes));
    if (persist && segment_.is_open()) {
        const std::string payload = encodeLegResult(value);
        const Digest256 digest = recordDigest(key, payload);
        segment_.write(reinterpret_cast<const char*>(key.data()),
                       static_cast<std::streamsize>(key.size()));
        segment_.write(payload.data(), static_cast<std::streamsize>(payload.size()));
        segment_.write(reinterpret_cast<const char*>(digest.data()),
                       static_cast<std::streamsize>(digest.size()));
    }
}

void LegStore::evictLocked() {
    const Entry& victim = lru_.back();
    index_.erase(victim.first);
    lru_.pop_back();
    bytes_ -= kEntryBytes;
    ++stats_.evictions;
    evictionsMetric_.add();
}

void LegStore::flush() {
    const std::lock_guard<std::mutex> lock(mutex_);
    if (segment_.is_open()) segment_.flush();
}

LegStore::Stats LegStore::stats() const {
    const std::lock_guard<std::mutex> lock(mutex_);
    return stats_;
}

} // namespace voltcache::serve
