// Content-addressed leg-result store for `voltcache serve`.
//
// LegStore implements core's LegResultSource: keys are the 32-byte leg
// digests from core/sweep.h (module image + scheme + operating point + chip
// seed + every result-affecting SystemConfig field), values are the exact
// per-leg reduction slots (LegResult). The sweep probes the store before
// committing to any heavy work, so a fully warm job never records a trace
// or simulates a single leg — and because the value is the reduction slot
// itself, a cached sweep stays byte-identical to a cold one.
//
// Two tiers:
//   * In-memory LRU under a byte budget (`--store-budget`). Insertions move
//     entries to the front; evictions pop the tail. Hits touch.
//   * Optional append-only on-disk segment (`--store DIR/legs.vcs`) that
//     survives restarts. Every record carries a SHA-256 of (key || payload);
//     records failing verification on load are counted and skipped, a stale
//     header (magic/payload-size mismatch after a format change) discards
//     the whole file — it is a cache, losing it costs re-simulation only.
//
// Thread safety: one mutex guards the LRU and the segment writer. lookup()
// and store() are called concurrently from sweep workers; the serial probe
// pass in runSweep keeps the hot path mostly uncontended.
#pragma once

#include <cstddef>
#include <cstdint>
#include <fstream>
#include <list>
#include <mutex>
#include <string>
#include <string_view>
#include <unordered_map>
#include <utility>

#include "common/hash.h"
#include "core/sweep.h"
#include "obs/metrics.h"

namespace voltcache::serve {

/// Fixed on-disk payload size of one serialized LegResult (version
/// kSegmentMagic): 1 linkFailed byte, 7 metric doubles as raw IEEE-754 bits
/// little-endian, and the full LegForensics (52 u64 histogram/count slots +
/// hasFfw/hasBbr/failCause bytes). Fixed size keeps segment framing intact
/// even when a record's body is corrupt.
inline constexpr std::size_t kLegPayloadBytes = 484;

/// Serialize one reduction slot into the fixed little-endian payload.
[[nodiscard]] std::string encodeLegResult(const LegResult& value);

/// Inverse of encodeLegResult. Returns false (leaving `out` unspecified) on
/// a size or enum-range mismatch.
[[nodiscard]] bool decodeLegResult(std::string_view payload, LegResult& out);

class LegStore final : public LegResultSource {
public:
    struct Options {
        std::uint64_t byteBudget = 256ull << 20; ///< in-memory LRU budget
        std::string directory;                   ///< empty = memory-only
    };

    /// Point-in-time view of the store counters (also exported as
    /// serve.store.* through the metrics registry).
    struct Stats {
        std::uint64_t hits = 0;
        std::uint64_t misses = 0;
        std::uint64_t inserts = 0;
        std::uint64_t evictions = 0;
        std::uint64_t loaded = 0;   ///< entries restored from the segment
        std::uint64_t rejected = 0; ///< corrupt segment records skipped
        std::uint64_t entries = 0;  ///< live LRU entries
        std::uint64_t bytes = 0;    ///< accounted LRU bytes
    };

    /// Opens (or creates) the segment when options.directory is non-empty
    /// and restores every digest-verified record into the LRU. Throws
    /// std::runtime_error when the directory is unusable.
    explicit LegStore(const Options& options);
    ~LegStore() override;

    LegStore(const LegStore&) = delete;
    LegStore& operator=(const LegStore&) = delete;

    bool lookup(const Digest256& key, LegResult& out) override;
    void store(const Digest256& key, const LegResult& value) override;

    /// Flush the segment writer (graceful-shutdown path; the destructor
    /// flushes too).
    void flush();

    [[nodiscard]] Stats stats() const;

private:
    struct DigestHasher {
        std::size_t operator()(const Digest256& key) const noexcept;
    };

    using Entry = std::pair<Digest256, LegResult>;

    void loadSegment(const std::string& path);
    void openSegmentForAppend(const std::string& path, bool truncate);
    void insertLocked(const Digest256& key, const LegResult& value, bool persist);
    void evictLocked();

    mutable std::mutex mutex_;
    std::list<Entry> lru_; ///< front = most recently used
    std::unordered_map<Digest256, std::list<Entry>::iterator, DigestHasher> index_;
    std::uint64_t byteBudget_ = 0;
    std::uint64_t bytes_ = 0;
    std::ofstream segment_; ///< open iff a directory was configured
    Stats stats_;

    // serve.store.* handles resolved once; Counter::add / Gauge::set are
    // single relaxed atomics, keeping lookup() cheap enough to bench.
    obs::Counter hitsMetric_;
    obs::Counter missesMetric_;
    obs::Counter insertsMetric_;
    obs::Counter evictionsMetric_;
    obs::Gauge entriesMetric_;
    obs::Gauge bytesMetric_;
};

} // namespace voltcache::serve
