#include "serve/server.h"

#include <algorithm>
#include <chrono>
#include <stdexcept>
#include <utility>

#include "common/json.h"
#include "common/version.h"
#include "core/analytic_gate.h"
#include "core/report.h"
#include "obs/flight_recorder.h"
#include "obs/metrics.h"
#include "obs/trace_context.h"
#include "workload/workload.h"

namespace voltcache::serve {

namespace {

/// Poll granularity for the accept loop, the executor's idle wait, and each
/// session's receive timeout: every blocking loop re-checks the stop flag at
/// least this often, which is what makes requestStop() prompt.
constexpr std::chrono::milliseconds kPollInterval{200};

std::vector<std::string> splitCsv(const std::string& text) {
    std::vector<std::string> parts;
    std::size_t pos = 0;
    while (pos < text.size()) {
        const std::size_t comma = text.find(',', pos);
        const std::size_t end = comma == std::string::npos ? text.size() : comma;
        if (end > pos) parts.push_back(text.substr(pos, end - pos));
        pos = end + 1;
    }
    return parts;
}

WorkloadScale parseScale(const std::string& name) {
    if (name == "tiny") return WorkloadScale::Tiny;
    if (name == "small") return WorkloadScale::Small;
    if (name == "reference") return WorkloadScale::Reference;
    throw std::runtime_error("unknown scale '" + name + "' (tiny|small|reference)");
}

const char* scaleName(WorkloadScale scale) {
    switch (scale) {
        case WorkloadScale::Tiny: return "tiny";
        case WorkloadScale::Small: return "small";
        case WorkloadScale::Reference: return "reference";
    }
    return "?";
}

SchemeKind parseScheme(const std::string& name) {
    for (const SchemeKind kind :
         {SchemeKind::DefectFree, SchemeKind::Conventional760, SchemeKind::Robust8T,
          SchemeKind::SimpleWordDisable, SchemeKind::WilkersonPlus, SchemeKind::FbaPlus,
          SchemeKind::IdcPlus, SchemeKind::FfwBbr}) {
        if (schemeName(kind) == name) return kind;
    }
    throw std::runtime_error("unknown scheme '" + name + "'");
}

/// Build the SweepConfig exactly the way cmdSweep does from its flags, so a
/// served job and a direct `voltcache sweep` produce byte-identical JSON.
SweepConfig configFromJob(const JobRequest& request) {
    SweepConfig config;
    config.trials = request.trials;
    config.scale = parseScale(request.scale);
    config.maxInstructions = request.maxInstructions;
    config.threads = request.threads;
    config.baseSeed = request.seed;
    config.benchmarks = splitCsv(request.benchmarks);
    for (const std::string& name : splitCsv(request.schemes)) {
        config.schemes.push_back(parseScheme(name));
    }
    for (const std::string& mv : splitCsv(request.mv)) {
        config.points.push_back(
            DvfsTable::at(Voltage::fromMillivolts(std::stod(mv))));
    }
    return config;
}

obs::JournalEvent journalEventFrom(const SweepLegEvent& event) {
    obs::JournalEvent line;
    switch (event.phase) {
        case SweepLegEvent::Phase::Enqueued:
            line.phase = obs::JournalEvent::Phase::Enqueued;
            break;
        case SweepLegEvent::Phase::Started:
            line.phase = obs::JournalEvent::Phase::Started;
            break;
        case SweepLegEvent::Phase::Finished:
            line.phase = obs::JournalEvent::Phase::Finished;
            break;
    }
    line.leg = static_cast<std::uint32_t>(event.leg);
    line.worker = event.worker;
    line.setBenchmark(event.benchmark);
    line.setScheme(schemeName(event.scheme));
    line.voltageMv = event.voltageMv;
    line.trial = event.trial;
    line.replayed = event.replayed;
    line.cached = event.cached;
    line.linkFailed = event.linkFailed;
    line.durationNs = event.durationNs;
    line.setFailCause(linkFailCauseName(event.failCause));
    line.traceHi = event.traceHi;
    line.traceLo = event.traceLo;
    line.spanId = event.spanId;
    return line;
}

} // namespace

Server::Server(const ServeOptions& options)
    : options_(options),
      listener_(options.port),
      store_({options.storeBudgetBytes, options.storeDirectory}) {
    if (!options_.journalPath.empty()) {
        unsigned maxWorkers = options_.threads != 0
                                  ? options_.threads
                                  : std::thread::hardware_concurrency();
        if (maxWorkers == 0) maxWorkers = 4;
        journal_.emplace(options_.journalPath, maxWorkers + 1,
                         /*ringCapacity=*/4096, /*autoDrain=*/true,
                         options_.journalMaxBytes);
    }
    if (!options_.flightRecordPath.empty()) {
        obs::FlightRecorder::Options flight;
        flight.path = options_.flightRecordPath;
        obs::FlightRecorder::install(flight);
    }
}

Server::~Server() = default;

void Server::requestStop() noexcept {
    stop_.store(true, std::memory_order_release);
    listener_.requestStop();
}

Server::Totals Server::totals() const noexcept {
    return {connections_.load(), jobsCompleted_.load(), jobsRejected_.load(),
            jobErrors_.load()};
}

void Server::run() {
    std::thread executor([this] { executorLoop(); });
    auto& registry = obs::MetricsRegistry::global();
    while (!stopping()) {
        net::Socket socket = listener_.accept(kPollInterval);
        std::vector<std::thread> finished;
        {
            const std::lock_guard<std::mutex> lock(stateMutex_);
            reapSessionsLocked(finished);
        }
        for (std::thread& thread : finished) thread.join();
        if (!socket.valid()) continue;
        socket.setRecvTimeout(kPollInterval);
        socket.setSendTimeout(options_.sendTimeout);
        auto session = std::make_shared<Session>();
        session->socket = std::move(socket);
        {
            const std::lock_guard<std::mutex> lock(stateMutex_);
            session->id = nextSessionId_++;
            sessions_.push_back(session);
            registry.set("serve.sessions", {}, static_cast<double>(sessions_.size()));
        }
        connections_.fetch_add(1, std::memory_order_relaxed);
        registry.add("serve.connections", {});
        session->reader = std::thread([this, session] { sessionLoop(session); });
    }
    // Drain: the executor finishes the in-flight job and rejects the rest,
    // then readers notice the stop flag within one poll interval.
    executor.join();
    std::vector<std::shared_ptr<Session>> sessions;
    {
        const std::lock_guard<std::mutex> lock(stateMutex_);
        sessions.swap(sessions_);
        registry.set("serve.sessions", {}, 0.0);
        registry.set("serve.queue_depth", {}, 0.0);
    }
    for (const auto& session : sessions) session->open.store(false);
    for (const auto& session : sessions) {
        if (session->reader.joinable()) session->reader.join();
    }
    if (journal_.has_value()) journal_->close();
    store_.flush();
}

std::size_t Server::queueDepthLocked() const {
    std::size_t depth = 0;
    for (const auto& session : sessions_) depth += session->queue.size();
    return depth;
}

void Server::reapSessionsLocked(std::vector<std::thread>& joinable) {
    for (auto it = sessions_.begin(); it != sessions_.end();) {
        Session& session = **it;
        if (!session.open.load(std::memory_order_acquire) && session.queue.empty() &&
            !session.busy.load(std::memory_order_acquire)) {
            joinable.push_back(std::move(session.reader));
            it = sessions_.erase(it);
            rrCursor_ = 0;
        } else {
            ++it;
        }
    }
    obs::MetricsRegistry::global().set("serve.sessions", {},
                                       static_cast<double>(sessions_.size()));
}

void Server::writeLine(Session& session, const std::string& line) {
    if (!session.open.load(std::memory_order_acquire)) return;
    const std::lock_guard<std::mutex> lock(session.writeMutex);
    std::string framed;
    framed.reserve(line.size() + 1);
    framed.append(line);
    framed.push_back('\n');
    if (!session.socket.sendAll(framed)) {
        session.open.store(false, std::memory_order_release);
    }
}

void Server::sessionLoop(const std::shared_ptr<Session>& session) {
    LineReader reader(session->socket, kMaxRequestLineBytes);
    auto lastActivity = std::chrono::steady_clock::now();
    std::string line;
    while (session->open.load(std::memory_order_acquire) && !stopping()) {
        const LineReader::Status status = reader.next(line);
        if (status == LineReader::Status::Timeout) {
            const bool idle = !session->busy.load(std::memory_order_acquire) &&
                              std::chrono::steady_clock::now() - lastActivity >
                                  options_.idleTimeout;
            if (idle) {
                // Only an idle session is closed: queued or running jobs
                // keep the connection alive however long they take.
                bool hasQueued = false;
                {
                    const std::lock_guard<std::mutex> lock(stateMutex_);
                    hasQueued = !session->queue.empty();
                }
                if (!hasQueued) {
                    writeLine(*session, errorEvent("", "idle timeout"));
                    break;
                }
            }
            continue;
        }
        if (status == LineReader::Status::Overflow) {
            writeLine(*session,
                      errorEvent("", "request line exceeds " +
                                         std::to_string(kMaxRequestLineBytes) +
                                         " bytes"));
            break;
        }
        if (status != LineReader::Status::Line) break; // Eof or Error
        lastActivity = std::chrono::steady_clock::now();
        const Request request = parseRequest(line);
        switch (request.kind) {
            case Request::Kind::Ping:
                writeLine(*session, pongEvent());
                break;
            case Request::Kind::Stats:
                writeLine(*session, statsEvent());
                break;
            case Request::Kind::Invalid:
                writeLine(*session, errorEvent("", request.error));
                break;
            case Request::Kind::Job: {
                if (stopping()) {
                    jobsRejected_.fetch_add(1, std::memory_order_relaxed);
                    obs::MetricsRegistry::global().add("serve.jobs_rejected", {});
                    writeLine(*session,
                              errorEvent(request.job.id, "server is shutting down"));
                    break;
                }
                // Admission mints the job's trace id when the client did not
                // choose one (or chose a malformed one), so the accepted
                // event always names the id `/trace/<id>` will answer to.
                JobRequest job = request.job;
                obs::TraceContext probe;
                if (!obs::parseTraceIdHex(job.trace, probe)) {
                    job.trace = obs::traceIdHex(obs::makeRootContext(
                        job.id.empty() ? job.op : job.id));
                }
                std::size_t depth = 0;
                {
                    const std::lock_guard<std::mutex> lock(stateMutex_);
                    session->queue.push_back(job);
                    depth = queueDepthLocked();
                }
                obs::MetricsRegistry::global().set("serve.queue_depth", {},
                                                   static_cast<double>(depth));
                jobsCv_.notify_one();
                writeLine(*session, acceptedEvent(job.id, depth, job.trace));
                break;
            }
        }
    }
    session->open.store(false, std::memory_order_release);
    // Jobs a vanished client left behind are dropped (there is nobody to
    // answer); the executor skips closed sessions.
    const std::lock_guard<std::mutex> lock(stateMutex_);
    jobsRejected_.fetch_add(session->queue.size(), std::memory_order_relaxed);
    session->queue.clear();
}

void Server::executorLoop() {
    auto& registry = obs::MetricsRegistry::global();
    while (true) {
        std::shared_ptr<Session> owner;
        JobRequest job;
        {
            std::unique_lock<std::mutex> lock(stateMutex_);
            jobsCv_.wait_for(lock, kPollInterval,
                             [this] { return queueDepthLocked() > 0 || stopping(); });
            for (std::size_t i = 0; i < sessions_.size(); ++i) {
                auto& candidate = sessions_[(rrCursor_ + i) % sessions_.size()];
                if (candidate->queue.empty()) continue;
                job = std::move(candidate->queue.front());
                candidate->queue.pop_front();
                owner = candidate;
                rrCursor_ = (rrCursor_ + i + 1) % sessions_.size();
                break;
            }
            if (owner == nullptr && stopping()) break;
            registry.set("serve.queue_depth", {},
                         static_cast<double>(queueDepthLocked()));
        }
        if (owner == nullptr) continue;
        if (!owner->open.load(std::memory_order_acquire)) {
            jobsRejected_.fetch_add(1, std::memory_order_relaxed);
            continue;
        }
        if (stopping()) {
            jobsRejected_.fetch_add(1, std::memory_order_relaxed);
            registry.add("serve.jobs_rejected", {});
            writeLine(*owner, errorEvent(job.id, "server is shutting down"));
            continue;
        }
        owner->busy.store(true, std::memory_order_release);
        runJob(*owner, job);
        owner->busy.store(false, std::memory_order_release);
    }
}

void Server::runJob(Session& session, const JobRequest& request) {
    const auto started = std::chrono::steady_clock::now();
    auto& registry = obs::MetricsRegistry::global();
    registry.add("serve.jobs", {{"op", request.op}});
    registry.add("serve.session.jobs", {{"session", std::to_string(session.id)}});
    // Admission minted (or validated) the id, so this parse only fails for a
    // job queued by an older client path — tracing just stays off then.
    obs::TraceContext trace;
    const bool traced = obs::parseTraceIdHex(request.trace, trace);
    const std::string jobLabel =
        request.op + ":" + (request.id.empty() ? "job" : request.id);
    obs::FlightRecorder* flight = obs::FlightRecorder::instance();
    try {
        SweepConfig config = configFromJob(request);
        if (config.threads == 0) config.threads = options_.threads;
        config.resultSource = &store_;
        if (traced) config.trace = trace;
        const LegStore::Stats before = store_.stats();
        if (options_.board != nullptr) options_.board->beginJob(jobLabel);
        if (traced) obs::JobTraceStore::global().beginJob(jobLabel, trace);
        if (flight != nullptr) flight->noteJob(jobLabel, trace);
        // The last boundary tick carries the final sweep-wide counters.
        SweepProgress last;
        config.onProgress = [this, &session, &request, &last,
                             flight](const SweepProgress& progress) {
            last = progress;
            if (options_.board != nullptr) {
                obs::ProgressBoard::Tick tick;
                tick.benchmarksCompleted = progress.completed;
                tick.benchmarksTotal = progress.total;
                tick.benchmark = progress.benchmark;
                tick.boundary = progress.boundary;
                tick.legsCompleted = progress.legsCompleted;
                tick.legsTotal = progress.legsTotal;
                tick.legsReplayed = progress.legsReplayed;
                tick.legsExecuted = progress.legsExecuted;
                tick.legsCached = progress.legsCached;
                tick.workers = progress.workers;
                options_.board->update(tick);
            }
            if (flight != nullptr) {
                obs::FlightProgress fp;
                fp.benchmarksCompleted = progress.completed;
                fp.benchmarksTotal = progress.total;
                fp.legsCompleted = progress.legsCompleted;
                fp.legsTotal = progress.legsTotal;
                fp.legsReplayed = progress.legsReplayed;
                fp.legsExecuted = progress.legsExecuted;
                fp.legsCached = progress.legsCached;
                fp.workers = progress.workers;
                flight->noteProgress(fp);
                flight->noteMetrics();
            }
            if (request.progress) {
                writeLine(session, progressEvent(request.id, progress));
            }
        };
        if (journal_.has_value() || flight != nullptr) {
            config.onLegEvent = [this, flight](const SweepLegEvent& event) {
                const obs::JournalEvent line = journalEventFrom(event);
                if (flight != nullptr) flight->noteLegEvent(line);
                if (!journal_.has_value()) return;
                const std::size_t producer =
                    event.phase == SweepLegEvent::Phase::Enqueued
                        ? 0
                        : std::min<std::size_t>(event.worker + 1,
                                                journal_->producers() - 1);
                journal_->emit(producer, line);
            };
        }

        SweepResult result;
        {
            // obs::Span phase spans closed inside this scope attribute to
            // this job's trace (the executor runs one job at a time).
            const obs::ScopedTraceContext scope(traced ? trace
                                                        : obs::TraceContext{});
            result = runSweep(config);
        }
        if (traced) obs::JobTraceStore::global().endJob(trace);
        if (options_.board != nullptr) options_.board->finish();

        SweepExportMeta meta;
        meta.version = std::string(buildVersion());
        meta.seed = config.baseSeed;
        meta.trials = config.trials;
        meta.scale = scaleName(config.scale);
        meta.benchmarks = config.benchmarks;
        if (meta.benchmarks.empty()) {
            for (const auto& info : benchmarkList()) {
                meta.benchmarks.emplace_back(info.name);
            }
        }
        std::optional<analysis::CrosscheckReport> analytic;
        if (request.op == "verify") {
            analytic = analyticCrosscheck(result, config);
            meta.extensions = [&analytic](JsonWriter& json) {
                json.key("analytic");
                analysis::writeJson(json, *analytic);
            };
        }
        const std::string document = sweepResultToJson(result, meta);

        const LegStore::Stats after = store_.stats();
        ResultSummary summary;
        summary.ok = !analytic.has_value() || analytic->passed();
        summary.legs = last.legsTotal;
        summary.legsCached = last.legsCached;
        summary.storeHits = after.hits - before.hits;
        summary.storeMisses = after.misses - before.misses;
        summary.elapsedSeconds =
            std::chrono::duration<double>(std::chrono::steady_clock::now() - started)
                .count();
        if (analytic.has_value()) {
            summary.analytic = true;
            summary.analyticPassed = analytic->passed();
            summary.maxZ = analytic->maxZ();
        }
        summary.documentBytes = document.size();
        summary.trace = request.trace;
        writeLine(session, resultEvent(request.id, summary));
        writeLine(session, document);
        jobsCompleted_.fetch_add(1, std::memory_order_relaxed);
    } catch (const std::exception& e) {
        if (traced) obs::JobTraceStore::global().endJob(trace);
        jobErrors_.fetch_add(1, std::memory_order_relaxed);
        registry.add("serve.job_errors", {});
        writeLine(session, errorEvent(request.id, e.what()));
    }
}

std::string Server::statsEvent() {
    const LegStore::Stats store = store_.stats();
    std::size_t depth = 0;
    {
        const std::lock_guard<std::mutex> lock(stateMutex_);
        depth = queueDepthLocked();
    }
    JsonWriter json;
    json.beginObject();
    json.member("ev", "stats");
    json.key("store");
    json.beginObject();
    json.member("hits", store.hits);
    json.member("misses", store.misses);
    json.member("inserts", store.inserts);
    json.member("evictions", store.evictions);
    json.member("loaded", store.loaded);
    json.member("rejected", store.rejected);
    json.member("entries", store.entries);
    json.member("bytes", store.bytes);
    json.endObject();
    json.member("jobsCompleted", jobsCompleted_.load());
    json.member("jobsRejected", jobsRejected_.load());
    json.member("jobErrors", jobErrors_.load());
    json.member("connections", connections_.load());
    json.member("queue", static_cast<std::uint64_t>(depth));
    json.endObject();
    return json.str();
}

} // namespace voltcache::serve
