#include "serve/protocol.h"

#include "common/json.h"
#include "common/json_parse.h"

namespace voltcache::serve {

Request parseRequest(std::string_view line) {
    Request request;
    JsonValue doc;
    try {
        doc = parseJson(line);
    } catch (const JsonParseError& e) {
        request.error = e.what();
        return request;
    }
    if (!doc.isObject()) {
        request.error = "request must be a JSON object";
        return request;
    }
    const std::string op = doc.stringOr("op", "");
    if (op == "ping") {
        request.kind = Request::Kind::Ping;
        return request;
    }
    if (op == "stats") {
        request.kind = Request::Kind::Stats;
        return request;
    }
    if (op != "sweep" && op != "run" && op != "verify") {
        request.error = "unknown op '" + op + "' (sweep|run|verify|ping|stats)";
        return request;
    }
    try {
        JobRequest job;
        job.op = op;
        if (op == "run") job.trials = 1;
        job.id = doc.stringOr("id", "");
        job.benchmarks = doc.stringOr("benchmarks", "");
        job.schemes = doc.stringOr("schemes", "");
        job.scale = doc.stringOr("scale", job.scale);
        job.mv = doc.stringOr("mv", "");
        job.trials = static_cast<std::uint32_t>(
            doc.numberOr("trials", static_cast<double>(job.trials)));
        job.threads = static_cast<unsigned>(doc.numberOr("threads", 0.0));
        job.seed = static_cast<std::uint64_t>(
            doc.numberOr("seed", static_cast<double>(job.seed)));
        job.maxInstructions =
            static_cast<std::uint64_t>(doc.numberOr("maxInstructions", 0.0));
        if (const JsonValue* progress = doc.find("progress")) {
            job.progress = progress->asBool();
        }
        job.trace = doc.stringOr("trace", "");
        request.kind = Request::Kind::Job;
        request.job = std::move(job);
    } catch (const JsonParseError& e) {
        request.kind = Request::Kind::Invalid;
        request.error = e.what();
    }
    return request;
}

std::string jobToJson(const JobRequest& job) {
    JsonWriter json;
    json.beginObject();
    json.member("op", job.op);
    if (!job.id.empty()) json.member("id", job.id);
    if (!job.benchmarks.empty()) json.member("benchmarks", job.benchmarks);
    if (!job.schemes.empty()) json.member("schemes", job.schemes);
    json.member("scale", job.scale);
    if (!job.mv.empty()) json.member("mv", job.mv);
    json.member("trials", job.trials);
    if (job.threads != 0) json.member("threads", static_cast<std::uint64_t>(job.threads));
    json.member("seed", job.seed);
    if (job.maxInstructions != 0) json.member("maxInstructions", job.maxInstructions);
    if (job.progress) json.member("progress", true);
    if (!job.trace.empty()) json.member("trace", job.trace);
    json.endObject();
    return json.str();
}

std::string pongEvent() {
    JsonWriter json;
    json.beginObject();
    json.member("ev", "pong");
    json.endObject();
    return json.str();
}

std::string acceptedEvent(const std::string& id, std::size_t queueDepth,
                          const std::string& trace) {
    JsonWriter json;
    json.beginObject();
    json.member("ev", "accepted");
    json.member("id", id);
    json.member("queue", static_cast<std::uint64_t>(queueDepth));
    if (!trace.empty()) json.member("trace", trace);
    json.endObject();
    return json.str();
}

std::string errorEvent(const std::string& id, std::string_view message) {
    JsonWriter json;
    json.beginObject();
    json.member("ev", "error");
    json.member("id", id);
    json.member("message", message);
    json.endObject();
    return json.str();
}

std::string progressEvent(const std::string& id, const SweepProgress& p) {
    JsonWriter json;
    json.beginObject();
    json.member("ev", "progress");
    json.member("id", id);
    json.member("benchmarksCompleted", static_cast<std::uint64_t>(p.completed));
    json.member("benchmarksTotal", static_cast<std::uint64_t>(p.total));
    json.member("legsCompleted", static_cast<std::uint64_t>(p.legsCompleted));
    json.member("legsTotal", static_cast<std::uint64_t>(p.legsTotal));
    json.member("legsReplayed", static_cast<std::uint64_t>(p.legsReplayed));
    json.member("legsExecuted", static_cast<std::uint64_t>(p.legsExecuted));
    json.member("legsCached", static_cast<std::uint64_t>(p.legsCached));
    json.member("workers", p.workers);
    json.endObject();
    return json.str();
}

std::string resultEvent(const std::string& id, const ResultSummary& s) {
    const std::uint64_t lookups = s.storeHits + s.storeMisses;
    JsonWriter json;
    json.beginObject();
    json.member("ev", "result");
    json.member("id", id);
    json.member("ok", s.ok);
    json.member("legs", s.legs);
    json.member("legsCached", s.legsCached);
    json.member("storeHits", s.storeHits);
    json.member("storeMisses", s.storeMisses);
    json.member("hitRate", lookups == 0
                               ? 0.0
                               : static_cast<double>(s.storeHits) /
                                     static_cast<double>(lookups));
    json.member("elapsedSeconds", s.elapsedSeconds);
    if (s.analytic) {
        json.member("analyticPassed", s.analyticPassed);
        json.member("maxZ", s.maxZ);
    }
    if (!s.trace.empty()) json.member("trace", s.trace);
    json.member("bytes", static_cast<std::uint64_t>(s.documentBytes));
    json.endObject();
    return json.str();
}

LineReader::Status LineReader::next(std::string& line) {
    while (true) {
        const std::size_t newline = buffer_.find('\n');
        if (newline != std::string::npos) {
            line.assign(buffer_, 0, newline);
            if (!line.empty() && line.back() == '\r') line.pop_back();
            buffer_.erase(0, newline + 1);
            return Status::Line;
        }
        if (buffer_.size() > maxLine_) return Status::Overflow;
        switch (socket_.recvSome(buffer_)) {
            case net::Socket::RecvStatus::Data: break;
            case net::Socket::RecvStatus::Eof: return Status::Eof;
            case net::Socket::RecvStatus::Timeout: return Status::Timeout;
            case net::Socket::RecvStatus::Error: return Status::Error;
        }
    }
}

} // namespace voltcache::serve
