// CACTI-lite: parametric cache area / timing / leakage model standing in
// for CACTI 6.5 (paper Section V, VI-A; Fig. 9; Table III).
//
// The model is structural — area and leakage are sums over named components
// (data array, tag array, auxiliary fault-tolerance arrays, periphery) and
// timing is a sum over pipeline-free critical-path segments (decode,
// wordline+bitline, sense, muxes). A handful of packing/port factors are
// calibrated once (see calibration notes below) so that the 32KB/4-way/32B
// baseline reproduces the paper's published values:
//
//   * 8T cache total area = 128.0% of the 6T baseline given +30% cell area
//     => periphery is 1/15 of total area (Table III row 1),
//   * FFW's tag-8T conversion costs 1.0% and FMAP+StoredPattern 4.2% of
//     total area => tag-side arrays pack at 0.431 (tag) / 0.574 (extension)
//     of main-array density (Table III row 2),
//   * the data array's row-address-to-column-mux path is 42.2 FO4 and the
//     pattern/fault paths 39.4 FO4 (Fig. 9).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "sram/cells.h"

namespace voltcache {

/// Geometry of one cache. Defaults are the paper's L1 (Table I).
struct CacheOrganization {
    std::uint32_t sizeBytes = 32 * 1024;
    std::uint32_t blockBytes = 32;
    std::uint32_t associativity = 4;
    std::uint32_t wordBytes = 4;
    std::uint32_t addressBits = 32;
    SramCell dataCell = SramCell::C6T;
    SramCell tagCell = SramCell::C6T;

    [[nodiscard]] std::uint32_t lines() const noexcept { return sizeBytes / blockBytes; }
    [[nodiscard]] std::uint32_t sets() const noexcept { return lines() / associativity; }
    [[nodiscard]] std::uint32_t wordsPerBlock() const noexcept {
        return blockBytes / wordBytes;
    }
    [[nodiscard]] std::uint32_t totalWords() const noexcept { return sizeBytes / wordBytes; }
    [[nodiscard]] std::uint32_t offsetBits() const noexcept;
    [[nodiscard]] std::uint32_t indexBits() const noexcept;
    [[nodiscard]] std::uint32_t tagBits() const noexcept;
    /// Tag storage per line: tag + valid + per-way LRU state.
    [[nodiscard]] std::uint32_t tagArrayBitsPerLine() const noexcept;
    [[nodiscard]] std::uint64_t dataArrayBits() const noexcept {
        return static_cast<std::uint64_t>(sizeBytes) * 8;
    }
    [[nodiscard]] std::uint64_t tagArrayBits() const noexcept {
        return static_cast<std::uint64_t>(lines()) * tagArrayBitsPerLine();
    }
};

/// How an auxiliary (fault-tolerance) array is physically realized; selects
/// the packing and leakage factors applied to it.
enum class AuxPlacement : std::uint8_t {
    TagExtension, ///< extra columns in the tag macro (FMAP, StoredPattern…)
    SmallArray,   ///< standalone small SRAM array (FBA data words…)
    CamArray,     ///< fully-associative CAM (FBA word-location tags)
    MultiPort,    ///< multi-ported lookup structure (IDC entries)
};

/// One named auxiliary structure added by a fault-tolerance scheme.
struct AuxStructure {
    std::string name;
    std::uint64_t bits = 0;
    SramCell cell = SramCell::C8T;
    AuxPlacement placement = AuxPlacement::TagExtension;
};

/// Area/leakage breakdown, in 6T-bit-equivalent units so ratios are unitless.
struct AreaLeakEstimate {
    double dataArea = 0.0;
    double tagArea = 0.0;
    double auxArea = 0.0;
    double logicArea = 0.0;
    double peripheryArea = 0.0;
    double dataLeak = 0.0;
    double tagLeak = 0.0;
    double auxLeak = 0.0;
    double logicLeak = 0.0;
    double peripheryLeak = 0.0;

    [[nodiscard]] double totalArea() const noexcept {
        return dataArea + tagArea + auxArea + logicArea + peripheryArea;
    }
    [[nodiscard]] double totalLeak() const noexcept {
        return dataLeak + tagLeak + auxLeak + logicLeak + peripheryLeak;
    }
};

/// Critical-path segment delays of one SRAM array, in FO4 units (Fig. 9).
struct ArrayTiming {
    double decodeFo4 = 0.0;
    double wordlineBitlineFo4 = 0.0;
    double senseFo4 = 0.0;
    double columnMuxFo4 = 0.0;
    double outputDriveFo4 = 0.0;

    /// Row-address arrival to column-mux select input: the reference point
    /// Fig. 9 quotes as 42.2 FO4 for the 32KB data array.
    [[nodiscard]] double toColumnMuxFo4() const noexcept {
        return decodeFo4 + wordlineBitlineFo4 + senseFo4;
    }
    [[nodiscard]] double totalFo4() const noexcept {
        return toColumnMuxFo4() + columnMuxFo4 + outputDriveFo4;
    }
};

/// The Fig. 9 timeline: when each FFW critical path delivers its result.
struct FfwTimeline {
    ArrayTiming dataArray;
    ArrayTiming tagArray;
    ArrayTiming storedPatternArray;
    ArrayTiming faultPatternArray;
    double tagCompareFo4 = 0.0;
    double wayMuxFo4 = 0.0;   ///< MUX1 / MUX3 (way select by matched index)
    double wordMuxFo4 = 0.0;  ///< MUX2 (word-offset select)
    double remapLogicFo4 = 0.0;

    /// Tag match (way index) available.
    [[nodiscard]] double tagMatchReadyFo4() const noexcept;
    /// Hit signal: StoredPattern -> MUX1 -> MUX2 (paper: 39.4 FO4).
    [[nodiscard]] double hitSignalReadyFo4() const noexcept;
    /// Remapped word offset: FMAP -> MUX3 -> remap logic (paper: 39.4 FO4).
    [[nodiscard]] double remappedOffsetReadyFo4() const noexcept;
    /// Data array output needs its column-mux select (paper: 42.2 FO4).
    [[nodiscard]] double dataColumnMuxNeededFo4() const noexcept {
        return dataArray.toColumnMuxFo4();
    }
    /// True when FFW adds no cycles: both side paths beat the data array.
    [[nodiscard]] bool zeroLatencyOverhead() const noexcept;
};

class CactiLite {
public:
    /// Area/leakage of a cache plus its scheme-specific auxiliary arrays.
    /// `logicAreaFrac`/`logicLeakFrac` account for random control logic as a
    /// fraction of the baseline cache (e.g. FFW remap logic: 0.001).
    [[nodiscard]] static AreaLeakEstimate estimate(const CacheOrganization& org,
                                                   const std::vector<AuxStructure>& aux = {},
                                                   double logicAreaFrac = 0.0,
                                                   double logicLeakFrac = 0.0);

    /// Timing of a single array of `bits` cells organised in `rows` rows.
    [[nodiscard]] static ArrayTiming arrayTiming(std::uint64_t bits, std::uint32_t rows,
                                                 SramCell cell = SramCell::C6T);

    /// The FFW D-cache timeline of Fig. 9 for the given organization.
    [[nodiscard]] static FfwTimeline ffwTimeline(const CacheOrganization& org);

    /// Extra FO4 the BBR dual-mode I-cache adds to the *tag-side* path (one
    /// way-select mux, Fig. 7); returns the slack against the data array to
    /// show the zero-cycle claim.
    struct BbrTiming {
        double tagPathFo4 = 0.0;
        double dataPathFo4 = 0.0;
        double addedMuxFo4 = 0.0;
        [[nodiscard]] bool zeroLatencyOverhead() const noexcept {
            return tagPathFo4 + addedMuxFo4 <= dataPathFo4;
        }
    };
    [[nodiscard]] static BbrTiming bbrTiming(const CacheOrganization& org);
};

} // namespace voltcache
