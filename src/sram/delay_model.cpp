#include "sram/delay_model.h"

#include <array>
#include <cmath>

#include "common/contracts.h"

namespace voltcache {

DelayModel::DelayModel(double vthVolts, double alpha, Voltage refVoltage,
                       Frequency refFrequency) noexcept
    : vthVolts_(vthVolts),
      alpha_(alpha),
      refVoltage_(refVoltage),
      refFrequency_(refFrequency) {}

Frequency DelayModel::frequencyAt(Voltage v) const {
    VC_EXPECTS(v.volts() > vthVolts_);
    const double vRef = refVoltage_.volts();
    const double vv = v.volts();
    // f ∝ (V - Vth)^alpha / V, normalized to the reference point.
    const double rel = (vRef / vv) * std::pow((vv - vthVolts_) / (vRef - vthVolts_), alpha_);
    return Frequency::fromHertz(refFrequency_.hertz() * rel);
}

double DelayModel::fo4DelaySeconds(Voltage v) const {
    return frequencyAt(v).periodSeconds() / kFo4PerCycle;
}

std::optional<Frequency> DelayModel::paperFrequency(Voltage v) noexcept {
    struct Point {
        double mv;
        double mhz;
    };
    static constexpr std::array<Point, 6> kTable2 = {{
        {760.0, 1607.0},
        {560.0, 1089.0},
        {520.0, 958.0},
        {480.0, 818.0},
        {440.0, 638.0},
        {400.0, 475.0},
    }};
    for (const auto& point : kTable2) {
        if (std::abs(v.millivolts() - point.mv) < 0.5) {
            return Frequency::fromMegahertz(point.mhz);
        }
    }
    return std::nullopt;
}

} // namespace voltcache
