// Logic delay / clock frequency versus supply voltage (paper Section V).
//
// The paper measures FO4 inverter delay in HSPICE and assumes 20 FO4 delays
// per cycle. We reproduce its Table II frequency column two ways:
//
//  * an alpha-power-law model   f(V) ∝ (V - Vth)^alpha / V
//    fit to the published points: Vth = 0.30V, alpha = 1.2193 anchored at
//    760mV -> 1607MHz. Worst-case error vs Table II is 2.1% (at 440mV); the
//    520/560/400mV points match to <0.1%.
//  * the exact Table II lookup (`paperFrequency`), which the energy /
//    runtime experiments use so they integrate the same numbers the paper
//    integrated.
#pragma once

#include <optional>

#include "common/units.h"

namespace voltcache {

/// FO4 delays per pipeline cycle assumed by the paper.
inline constexpr double kFo4PerCycle = 20.0;

class DelayModel {
public:
    /// Parameters default to the fit described above.
    explicit DelayModel(double vthVolts = 0.30, double alpha = 1.2193,
                        Voltage refVoltage = Voltage::fromMillivolts(760),
                        Frequency refFrequency = Frequency::fromMegahertz(1607)) noexcept;

    /// Clock frequency at voltage v under the alpha-power law.
    [[nodiscard]] Frequency frequencyAt(Voltage v) const;

    /// FO4 inverter delay at voltage v, in seconds.
    [[nodiscard]] double fo4DelaySeconds(Voltage v) const;

    /// Exact Table II frequency for one of the paper's six DVFS operating
    /// points (nullopt for other voltages).
    [[nodiscard]] static std::optional<Frequency> paperFrequency(Voltage v) noexcept;

    [[nodiscard]] double vth() const noexcept { return vthVolts_; }
    [[nodiscard]] double alpha() const noexcept { return alpha_; }

private:
    double vthVolts_;
    double alpha_;
    Voltage refVoltage_;
    Frequency refFrequency_;
};

} // namespace voltcache
