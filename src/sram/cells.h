// SRAM cell circuit library (paper Sections II-A, III-A, VI-A).
//
// Each cell topology trades area and leakage for low-voltage robustness:
//   6T  — baseline; fails per FailureModel's curve.
//   8T  — read-decoupled; +30% cell area [34], one extra leakage path whose
//         two stacked transistors nearly cancel it (+0.2% net leakage [34]);
//         robust to 400mV for 32KB arrays (paper's working assumption).
//   10T — charge-sharing variant [7]: bigger and more robust still.
//   ST  — Schmitt-trigger cell [8]: ~2x area, sub-300mV operation.
//   CAM — content-addressable (match-line) cell used by FBA's word-location
//         tags [2]; large and leaky because match lines burn static power.
#pragma once

#include <cstdint>
#include <string_view>

namespace voltcache {

enum class SramCell : std::uint8_t { C6T, C8T, C10T, CST, CCAM };

/// Per-cell physical traits, normalized to the 6T cell.
struct CellTraits {
    std::string_view name;
    double areaRel;    ///< layout area per bit relative to 6T
    double leakageRel; ///< static (leakage) power per bit relative to 6T
    double vccminShiftVolts; ///< how much lower this cell's failure curve sits
};

/// Look up the traits of a cell topology.
[[nodiscard]] const CellTraits& cellTraits(SramCell cell) noexcept;

} // namespace voltcache
