#include "sram/cells.h"

namespace voltcache {

namespace {
// Area ratios: 8T +30% [34]; 10T ~ +66% [7]; ST ~ 2x [8]. CAM (9T/10T
// NOR-type match cell) ~ 2x area and ~4x effective static power once the
// always-precharged match lines are amortized per bit — this is what makes
// FBA/IDC tag arrays expensive (paper Section III-B).
constexpr CellTraits kTraits[] = {
    {"6T", 1.00, 1.000, 0.000},
    {"8T", 1.30, 1.002, 0.360},
    {"10T", 1.66, 1.050, 0.420},
    {"ST", 2.00, 1.100, 0.500},
    {"CAM", 2.00, 4.000, 0.360},
};
} // namespace

const CellTraits& cellTraits(SramCell cell) noexcept {
    return kTraits[static_cast<std::uint8_t>(cell)];
}

} // namespace voltcache
