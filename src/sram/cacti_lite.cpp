#include "sram/cacti_lite.h"

#include <algorithm>
#include <bit>
#include <cmath>

#include "common/contracts.h"

namespace voltcache {

namespace {

// ---- Calibration (see header). All areas in 6T-bit-equivalent units. ----

// Periphery (decoders, sense amps, inter-bank wires) is 1/14 of the packed
// array area: makes the all-8T cache land at exactly 128.0% (Table III).
constexpr double kPeripheryFrac = 1.0 / 14.0;
// Tag macros pack at 0.431 of data-array density (CACTI's area optimizer
// trades density for speed on small arrays): makes tag 6T->8T cost 1.0%.
constexpr double kTagDensity = 0.431;
// Tag-extension aux arrays (FMAP/StoredPattern columns) pack at 0.574:
// makes FFW's 16384 extension bits cost 4.2% (Table III).
constexpr double kAuxDensityTagExt = 0.574;
// Standalone small arrays pay their own periphery: ~1.3x density penalty.
constexpr double kSmallArrayDensity = 1.3;
// Fully-associative CAM arrays in CACTI are ~7x less dense than SRAM once
// match lines, priority encoders, and per-entry comparators are counted.
constexpr double kCamPacking = 7.0;
// Multi-ported lookup structures (IDC is probed in parallel with the L1):
// ~7x area, ~4x leakage per bit versus a single-ported array.
constexpr double kMultiPortArea = 7.0;
constexpr double kMultiPortLeak = 4.0;
// Array periphery leakage as a fraction of cell leakage.
constexpr double kPeriphLeakFrac = 0.10;
// Small / tag-extension arrays leak ~20% more per bit (their periphery is
// not amortized over many columns).
constexpr double kAuxLeak = 1.20;

// ---- Timing calibration (FO4), anchored to Fig. 9. ----
constexpr double kDecodeBaseFo4 = 2.0;
constexpr double kDecodePerLog2RowFo4 = 0.9; // 32KB data array: 2 + 0.9*10 = 11.0
constexpr double kWirePathFo4 = 25.0;        // wordline+bitline of the 32KB 6T data array
constexpr double kSenseFo4 = 6.2;            // data array to column mux: 42.2 total
constexpr double kColumnMuxFo4 = 3.3;
constexpr double kOutputDriveFo4 = 3.0;
constexpr double kTagMatchFo4 = 9.044; // 19b compare + 4-way match encode; with the 8T
                                       // tag macro's 23.8 FO4 array this puts both FFW
                                       // side paths at Fig. 9's 39.4 FO4
constexpr double kWayMuxFo4 = 3.3;      // MUX1 / MUX3
constexpr double kWordMuxFo4 = 3.3;     // MUX2
constexpr double kRemapLogicFo4 = 3.3;  // popcount-select word remap (Fig. 4)

// Reference array for wire-delay scaling: the paper's 32KB 6T data array.
constexpr double kRefArrayArea = 32.0 * 1024 * 8;

double auxAreaUnits(const AuxStructure& aux) {
    const double cellArea = cellTraits(aux.cell).areaRel;
    const double bits = static_cast<double>(aux.bits);
    switch (aux.placement) {
        case AuxPlacement::TagExtension: return bits * cellArea * kAuxDensityTagExt;
        case AuxPlacement::SmallArray: return bits * cellArea * kSmallArrayDensity;
        case AuxPlacement::CamArray: return bits * cellArea * kCamPacking;
        case AuxPlacement::MultiPort: return bits * cellArea * kMultiPortArea;
    }
    return 0.0;
}

double auxLeakUnits(const AuxStructure& aux) {
    const double cellLeak = cellTraits(aux.cell).leakageRel;
    const double bits = static_cast<double>(aux.bits);
    switch (aux.placement) {
        case AuxPlacement::TagExtension:
        case AuxPlacement::SmallArray: return bits * cellLeak * kAuxLeak;
        case AuxPlacement::CamArray: return bits * cellLeak; // CAM cell leak already 4x
        case AuxPlacement::MultiPort: return bits * cellLeak * kMultiPortLeak;
    }
    return 0.0;
}

} // namespace

std::uint32_t CacheOrganization::offsetBits() const noexcept {
    return static_cast<std::uint32_t>(std::bit_width(blockBytes) - 1);
}

std::uint32_t CacheOrganization::indexBits() const noexcept {
    return static_cast<std::uint32_t>(std::bit_width(sets()) - 1);
}

std::uint32_t CacheOrganization::tagBits() const noexcept {
    return addressBits - offsetBits() - indexBits();
}

std::uint32_t CacheOrganization::tagArrayBitsPerLine() const noexcept {
    // tag + valid + ~2 bits/line of LRU state (log2(4!) per 4-way set).
    return tagBits() + 1 + 2;
}

AreaLeakEstimate CactiLite::estimate(const CacheOrganization& org,
                                     const std::vector<AuxStructure>& aux,
                                     double logicAreaFrac, double logicLeakFrac) {
    VC_EXPECTS(logicAreaFrac >= 0.0 && logicLeakFrac >= 0.0);
    AreaLeakEstimate est;
    const double dataBits = static_cast<double>(org.dataArrayBits());
    const double tagBits = static_cast<double>(org.tagArrayBits());

    est.dataArea = dataBits * cellTraits(org.dataCell).areaRel;
    est.tagArea = tagBits * cellTraits(org.tagCell).areaRel * kTagDensity;
    for (const auto& structure : aux) est.auxArea += auxAreaUnits(structure);
    // Periphery sized for the packed 6T-equivalent arrays; it does not grow
    // when cells are swapped (same decoders and sense amps drive 8T arrays).
    est.peripheryArea = kPeripheryFrac * (dataBits + tagBits * kTagDensity);

    est.dataLeak = dataBits * cellTraits(org.dataCell).leakageRel;
    est.tagLeak = tagBits * cellTraits(org.tagCell).leakageRel;
    for (const auto& structure : aux) est.auxLeak += auxLeakUnits(structure);
    est.peripheryLeak = kPeriphLeakFrac * (dataBits + tagBits);

    // Random control logic, sized relative to the 6T baseline cache.
    const double baseArea =
        dataBits + tagBits * kTagDensity + kPeripheryFrac * (dataBits + tagBits * kTagDensity);
    const double baseLeak = (dataBits + tagBits) * (1.0 + kPeriphLeakFrac);
    est.logicArea = logicAreaFrac * baseArea;
    est.logicLeak = logicLeakFrac * baseLeak;
    return est;
}

ArrayTiming CactiLite::arrayTiming(std::uint64_t bits, std::uint32_t rows, SramCell cell) {
    VC_EXPECTS(bits > 0);
    VC_EXPECTS(rows > 0);
    ArrayTiming t;
    const double log2Rows = std::log2(static_cast<double>(rows));
    t.decodeFo4 = kDecodeBaseFo4 + kDecodePerLog2RowFo4 * log2Rows;
    const double areaUnits = static_cast<double>(bits) * cellTraits(cell).areaRel;
    t.wordlineBitlineFo4 = kWirePathFo4 * std::sqrt(areaUnits / kRefArrayArea);
    t.senseFo4 = kSenseFo4;
    t.columnMuxFo4 = kColumnMuxFo4;
    t.outputDriveFo4 = kOutputDriveFo4;
    return t;
}

double FfwTimeline::tagMatchReadyFo4() const noexcept {
    return tagArray.toColumnMuxFo4() + tagCompareFo4;
}

double FfwTimeline::hitSignalReadyFo4() const noexcept {
    // MUX1 needs the matched way index; the pattern array read overlaps.
    return std::max(tagMatchReadyFo4(), storedPatternArray.toColumnMuxFo4()) + wayMuxFo4 +
           wordMuxFo4;
}

double FfwTimeline::remappedOffsetReadyFo4() const noexcept {
    return std::max(tagMatchReadyFo4(), faultPatternArray.toColumnMuxFo4()) + wayMuxFo4 +
           remapLogicFo4;
}

bool FfwTimeline::zeroLatencyOverhead() const noexcept {
    return hitSignalReadyFo4() <= dataColumnMuxNeededFo4() &&
           remappedOffsetReadyFo4() <= dataColumnMuxNeededFo4();
}

FfwTimeline CactiLite::ffwTimeline(const CacheOrganization& org) {
    FfwTimeline t;
    t.dataArray = arrayTiming(org.dataArrayBits(), org.lines(), org.dataCell);
    t.tagArray = arrayTiming(org.tagArrayBits(), org.sets(), SramCell::C8T);
    // One bit per word for each of StoredPattern and FMAP.
    t.storedPatternArray = arrayTiming(org.totalWords(), org.sets(), SramCell::C8T);
    t.faultPatternArray = arrayTiming(org.totalWords(), org.sets(), SramCell::C8T);
    t.tagCompareFo4 = kTagMatchFo4;
    t.wayMuxFo4 = kWayMuxFo4;
    t.wordMuxFo4 = kWordMuxFo4;
    t.remapLogicFo4 = kRemapLogicFo4;
    return t;
}

CactiLite::BbrTiming CactiLite::bbrTiming(const CacheOrganization& org) {
    BbrTiming t;
    const ArrayTiming tag = arrayTiming(org.tagArrayBits(), org.sets(), SramCell::C8T);
    const ArrayTiming data = arrayTiming(org.dataArrayBits(), org.lines(), org.dataCell);
    // Direct-mapped mode muxes the low tag bits into the way select (Fig. 7).
    t.tagPathFo4 = tag.toColumnMuxFo4() + kTagMatchFo4;
    t.dataPathFo4 = data.toColumnMuxFo4();
    t.addedMuxFo4 = kWayMuxFo4;
    return t;
}

} // namespace voltcache
