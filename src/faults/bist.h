// Built-in self-test (paper Section IV preamble, citing [4], [23]).
//
// The paper discovers defective words by running BIST at every supported
// DVFS point: write test patterns, read them back, and record any word whose
// read response differs. We model the device under test as a behavioural
// SRAM array whose cells may be stuck-at-0/1 at the current voltage, and the
// tester as a word-level March C- sequence extended with checkerboard
// passes. For stuck-at faults the solid 0/1 passes are already exhaustive;
// the checkerboard passes document coverage of polarity-dependent coupling
// the March elements alone would miss.
#pragma once

#include <cstdint>
#include <vector>

#include "common/rng.h"
#include "faults/fault_map.h"

namespace voltcache {

/// Behavioural SRAM data array with injected stuck-at cell defects.
/// Reads return the stored value with stuck bits forced to their stuck
/// polarity; writes store the value unmodified (the defect acts on the
/// cell's observable state, which suffices for read-response testing).
class DefectiveSramArray {
public:
    DefectiveSramArray(std::uint32_t lines, std::uint32_t wordsPerLine,
                       unsigned bitsPerWord = 32);

    [[nodiscard]] std::uint32_t lines() const noexcept { return lines_; }
    [[nodiscard]] std::uint32_t wordsPerLine() const noexcept { return wordsPerLine_; }
    [[nodiscard]] unsigned bitsPerWord() const noexcept { return bitsPerWord_; }
    [[nodiscard]] std::uint32_t totalWords() const noexcept { return lines_ * wordsPerLine_; }

    /// Force one bit of one word to read as `value` regardless of writes.
    void injectStuckAt(std::uint32_t flatWord, unsigned bit, bool value);

    /// Bernoulli defect injection: each bit independently becomes stuck (at
    /// a random polarity) with probability pBit. Returns defect count.
    std::uint32_t injectRandomDefects(Rng& rng, double pBit);

    void write(std::uint32_t flatWord, std::uint32_t value);
    [[nodiscard]] std::uint32_t read(std::uint32_t flatWord) const;

    /// Ground truth at word granularity (any stuck bit makes a word faulty).
    [[nodiscard]] FaultMap groundTruthWordFaults() const;

private:
    std::uint32_t lines_;
    std::uint32_t wordsPerLine_;
    unsigned bitsPerWord_;
    std::vector<std::uint32_t> data_;
    std::vector<std::uint32_t> stuckMask_;  ///< 1 = bit is stuck
    std::vector<std::uint32_t> stuckValue_; ///< polarity of stuck bits
};

/// Word-level BIST engine producing the fault map consumed by FFW / BBR.
class Bist {
public:
    struct Result {
        FaultMap map;
        std::uint64_t reads = 0;
        std::uint64_t writes = 0;
    };

    /// March C- {⇕(w0); ⇑(r0,w1); ⇑(r1,w0); ⇓(r0,w1); ⇓(r1,w0); ⇕(r0)} plus
    /// checkerboard write/read passes. Marks a word faulty on any mismatch.
    [[nodiscard]] static Result run(DefectiveSramArray& array);
};

} // namespace voltcache
