#include "faults/failure_model.h"

#include <cmath>

namespace voltcache {

namespace {

// 45nm anchor geometry (see header): log-linear below the knee, quadratic
// Gaussian-tail extension above it.
constexpr double kKneeVolts = 0.56;          // upper end of Table II's log-linear region
constexpr double kLog10AtKnee = -4.0;        // log10 p at 560mV
constexpr double kLinearSlope = -12.5;       // d(log10 p)/dV below the knee [1/V]
// Quadratic coefficient chosen so log10 p(0.76V) = log10(1 - 0.999^(1/262144))
// = -8.41843…, i.e. a 32KB array hits 99.9% yield exactly at 760mV.
constexpr double kTailCurvature = -47.9607;

// The 65nm process (Fig. 2, from [4]) fails at higher voltage: shift the
// curve up by 90mV so its knee region and Vccmin land where [4] reports them
// (Vccmin(32KB) ≈ 850mV, p_bit ≈ 1e-3 near 570mV).
constexpr double k65nmShift = -0.090;

// 8T cells keep full noise margins far deeper: shift so a 32KB 8T array is
// yield-clean at 400mV, matching the paper's assumption that 8T tag arrays
// and the 8T-cache baseline operate reliably at 400mV.
constexpr double k8TShift = 0.360;

} // namespace

FailureModel::FailureModel(Technology tech, CellKind cell) noexcept
    : tech_(tech), cell_(cell), shiftVolts_(0.0) {
    if (tech == Technology::Node65nm) shiftVolts_ += k65nmShift;
    if (cell == CellKind::Sram8T) shiftVolts_ += k8TShift;
}

double FailureModel::log10PFail(double volts) const noexcept {
    const double v = volts + shiftVolts_;
    if (v <= kKneeVolts) {
        return kLog10AtKnee + kLinearSlope * (v - kKneeVolts);
    }
    const double dv = v - kKneeVolts;
    return kLog10AtKnee + kLinearSlope * dv + kTailCurvature * dv * dv;
}

double FailureModel::pFailBit(Voltage v) const noexcept {
    const double log10p = log10PFail(v.volts());
    const double p = std::pow(10.0, log10p);
    return p > 1.0 ? 1.0 : p;
}

double FailureModel::pFailStructure(Voltage v, std::uint64_t bits) const noexcept {
    const double p = pFailBit(v);
    if (p >= 1.0) return 1.0;
    // 1 - (1-p)^n computed as -expm1(n * log1p(-p)) to stay accurate when
    // n*p is tiny (e.g. a word at 760mV, p ~ 1e-8).
    const double logSurvive = static_cast<double>(bits) * std::log1p(-p);
    return -std::expm1(logSurvive);
}

} // namespace voltcache
