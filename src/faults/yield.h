// Chip-yield analysis (paper Section II-B, Fig. 2).
//
// A die ships only if every protected cell works, so the yield of an
// unprotected structure of n cells at voltage V is (1-p_bit(V))^n. The paper
// requires 999 of every 1000 dies fault-free, which pins the conventional
// 32KB cache's Vccmin at 760mV. Vccmin for arbitrary structures is found by
// bisection on the (monotone) yield curve.
#pragma once

#include <cstdint>

#include "common/units.h"
#include "faults/failure_model.h"

namespace voltcache {

/// The paper's manufacturing-yield target: 999 out of 1000 dies fault-free.
inline constexpr double kPaperYieldTarget = 0.999;

class YieldAnalyzer {
public:
    explicit YieldAnalyzer(FailureModel model = FailureModel{}) noexcept : model_(model) {}

    /// Probability that a structure of `bits` cells is fully functional.
    [[nodiscard]] double yield(Voltage v, std::uint64_t bits) const noexcept;

    /// Lowest voltage at which `yield(v, bits) >= targetYield`, found by
    /// bisection over [0.2V, 1.4V] to sub-millivolt precision.
    [[nodiscard]] Voltage vccmin(std::uint64_t bits,
                                 double targetYield = kPaperYieldTarget) const;

    [[nodiscard]] const FailureModel& model() const noexcept { return model_; }

private:
    FailureModel model_;
};

/// Bit counts for the granularities plotted in Fig. 2.
namespace granularity {
inline constexpr std::uint64_t kBit = 1;
inline constexpr std::uint64_t kWord4B = 32;
inline constexpr std::uint64_t kBlock32B = 256;
inline constexpr std::uint64_t kCache32KB = 32ULL * 1024 * 8;
} // namespace granularity

} // namespace voltcache
