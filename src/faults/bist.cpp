#include "faults/bist.h"

#include "common/contracts.h"

namespace voltcache {

namespace {

constexpr std::uint32_t kAllZeros = 0x00000000u;
constexpr std::uint32_t kAllOnes = 0xFFFFFFFFu;
constexpr std::uint32_t kCheckerA = 0xAAAAAAAAu;
constexpr std::uint32_t kCheckerB = 0x55555555u;

std::uint32_t wordMask(unsigned bitsPerWord) {
    return bitsPerWord >= 32 ? 0xFFFFFFFFu : ((1u << bitsPerWord) - 1u);
}

} // namespace

DefectiveSramArray::DefectiveSramArray(std::uint32_t lines, std::uint32_t wordsPerLine,
                                       unsigned bitsPerWord)
    : lines_(lines), wordsPerLine_(wordsPerLine), bitsPerWord_(bitsPerWord) {
    VC_EXPECTS(lines > 0);
    VC_EXPECTS(wordsPerLine > 0);
    VC_EXPECTS(bitsPerWord >= 1 && bitsPerWord <= 32);
    const std::size_t words = static_cast<std::size_t>(lines) * wordsPerLine;
    data_.assign(words, 0);
    stuckMask_.assign(words, 0);
    stuckValue_.assign(words, 0);
}

void DefectiveSramArray::injectStuckAt(std::uint32_t flatWord, unsigned bit, bool value) {
    VC_EXPECTS(flatWord < totalWords());
    VC_EXPECTS(bit < bitsPerWord_);
    stuckMask_[flatWord] |= (1u << bit);
    if (value) {
        stuckValue_[flatWord] |= (1u << bit);
    } else {
        stuckValue_[flatWord] &= ~(1u << bit);
    }
}

std::uint32_t DefectiveSramArray::injectRandomDefects(Rng& rng, double pBit) {
    VC_EXPECTS(pBit >= 0.0 && pBit <= 1.0);
    std::uint32_t injected = 0;
    for (std::uint32_t word = 0; word < totalWords(); ++word) {
        for (unsigned bit = 0; bit < bitsPerWord_; ++bit) {
            if (rng.nextBernoulli(pBit)) {
                injectStuckAt(word, bit, rng.nextBernoulli(0.5));
                ++injected;
            }
        }
    }
    return injected;
}

void DefectiveSramArray::write(std::uint32_t flatWord, std::uint32_t value) {
    VC_EXPECTS(flatWord < totalWords());
    data_[flatWord] = value & wordMask(bitsPerWord_);
}

std::uint32_t DefectiveSramArray::read(std::uint32_t flatWord) const {
    VC_EXPECTS(flatWord < totalWords());
    const std::uint32_t stored = data_[flatWord];
    return (stored & ~stuckMask_[flatWord]) | (stuckValue_[flatWord] & stuckMask_[flatWord]);
}

FaultMap DefectiveSramArray::groundTruthWordFaults() const {
    // FaultMap caps wordsPerLine at 32; reshape wider arrays line-major.
    FaultMap map(lines_, wordsPerLine_);
    for (std::uint32_t word = 0; word < totalWords(); ++word) {
        if (stuckMask_[word] != 0) map.setFaultyFlat(word);
    }
    return map;
}

Bist::Result Bist::run(DefectiveSramArray& array) {
    Result result{FaultMap(array.lines(), array.wordsPerLine()), 0, 0};
    const std::uint32_t mask = wordMask(array.bitsPerWord());
    const std::uint32_t words = array.totalWords();

    auto writeAll = [&](std::uint32_t pattern, bool ascending) {
        for (std::uint32_t i = 0; i < words; ++i) {
            const std::uint32_t idx = ascending ? i : words - 1 - i;
            array.write(idx, pattern & mask);
            ++result.writes;
        }
    };
    auto readCompareWrite = [&](std::uint32_t expect, std::uint32_t next, bool ascending,
                                bool alsoWrite) {
        for (std::uint32_t i = 0; i < words; ++i) {
            const std::uint32_t idx = ascending ? i : words - 1 - i;
            ++result.reads;
            if (array.read(idx) != (expect & mask)) result.map.setFaultyFlat(idx);
            if (alsoWrite) {
                array.write(idx, next & mask);
                ++result.writes;
            }
        }
    };

    // March C-: ⇕(w0); ⇑(r0,w1); ⇑(r1,w0); ⇓(r0,w1); ⇓(r1,w0); ⇕(r0).
    writeAll(kAllZeros, true);
    readCompareWrite(kAllZeros, kAllOnes, true, true);
    readCompareWrite(kAllOnes, kAllZeros, true, true);
    readCompareWrite(kAllZeros, kAllOnes, false, true);
    readCompareWrite(kAllOnes, kAllZeros, false, true);
    readCompareWrite(kAllZeros, 0, true, false);

    // Checkerboard passes.
    writeAll(kCheckerA, true);
    readCompareWrite(kCheckerA, 0, true, false);
    writeAll(kCheckerB, true);
    readCompareWrite(kCheckerB, 0, true, false);

    return result;
}

} // namespace voltcache
