// Word-granularity fault maps (paper Section IV preamble and Fig. 4's FMAP).
//
// BIST runs at every supported DVFS operating point and records which 32-bit
// words of a cache data array are defective. The resulting map is consumed
// three ways:
//   * FFW loads it into the FMAP array next to the D-cache tags,
//   * the linker reads it to place basic blocks for BBR,
//   * the word-disable/FBA/IDC baselines consult it on every access.
//
// Storage is bit-packed (32 map words per storage word) so the per-access
// queries the schemes and the BBR linker hammer — lineFaultMask,
// faultFreeCount, faultFreeChunks — are mask extractions and popcounts
// instead of per-bit loops.
#pragma once

#include <bit>
#include <cstdint>
#include <span>
#include <vector>

#include "common/contracts.h"
#include "common/rng.h"
#include "faults/failure_model.h"

namespace voltcache {

/// A contiguous run of fault-free words in the flattened cache word space.
struct FaultFreeChunk {
    std::uint32_t startWord = 0; ///< flat word index of the first word
    std::uint32_t length = 0;    ///< number of consecutive fault-free words
};

/// Defect bitmap over a cache data array organised as `lines` physical
/// frames of `wordsPerLine` words each. Flat word index order is line-major,
/// which equals direct-mapped cache address order (cacheAddr = memAddr mod
/// cacheWords), as required by BBR's Algorithm 1.
class FaultMap {
public:
    FaultMap(std::uint32_t lines, std::uint32_t wordsPerLine);

    [[nodiscard]] std::uint32_t lines() const noexcept { return lines_; }
    [[nodiscard]] std::uint32_t wordsPerLine() const noexcept { return wordsPerLine_; }
    [[nodiscard]] std::uint32_t totalWords() const noexcept { return lines_ * wordsPerLine_; }

    void setFaulty(std::uint32_t line, std::uint32_t word, bool faulty = true);
    [[nodiscard]] bool isFaulty(std::uint32_t line, std::uint32_t word) const {
        return isFaultyFlat(flatIndex(line, word));
    }

    void setFaultyFlat(std::uint32_t flatWord, bool faulty = true);
    // The read-side queries below are inline: the schemes and the BBR
    // I-cache consult the map on every simulated access, and the linker's
    // first-fit scan probes it per word.
    [[nodiscard]] bool isFaultyFlat(std::uint32_t flatWord) const {
        VC_EXPECTS(flatWord < totalWords());
        return (bits_[flatWord >> 5] >> (flatWord & 31u)) & 1u;
    }

    /// Bitmask of defective words in a line; bit i set == word i faulty.
    /// Requires wordsPerLine <= 32 (8 for the paper's 32B/4B geometry).
    [[nodiscard]] std::uint32_t lineFaultMask(std::uint32_t line) const {
        VC_EXPECTS(line < lines_);
        const std::uint32_t start = line * wordsPerLine_;
        const std::uint32_t bitOff = start & 31u;
        std::uint32_t mask = bits_[start >> 5] >> bitOff;
        if (bitOff != 0 && bitOff + wordsPerLine_ > 32) {
            mask |= bits_[(start >> 5) + 1] << (32 - bitOff);
        }
        return wordsPerLine_ == 32 ? mask : mask & ((1u << wordsPerLine_) - 1);
    }

    /// Number of usable (fault-free) words in a line.
    [[nodiscard]] std::uint32_t faultFreeCount(std::uint32_t line) const {
        return wordsPerLine_ -
               static_cast<std::uint32_t>(std::popcount(lineFaultMask(line)));
    }

    [[nodiscard]] std::uint32_t totalFaultyWords() const noexcept { return faultyWords_; }
    [[nodiscard]] std::uint32_t totalFaultFreeWords() const noexcept {
        return totalWords() - faultyWords_;
    }
    /// Fraction of words usable — the "effective capacity" of Fig. 6a.
    [[nodiscard]] double effectiveCapacityFraction() const noexcept;

    /// Maximal runs of consecutive fault-free words over the flat index
    /// space (no wraparound merging; Algorithm 1 handles the modular scan).
    [[nodiscard]] std::vector<FaultFreeChunk> faultFreeChunks() const;

    /// Longest fault-free run under Algorithm 1's modular scan — a run
    /// ending at the last flat word continues into one starting at word 0.
    /// This is the largest basic block the BBR linker could ever place.
    [[nodiscard]] std::uint32_t largestPlaceableChunkWords() const;

    /// True if no word is defective.
    [[nodiscard]] bool clean() const noexcept { return faultyWords_ == 0; }

    bool operator==(const FaultMap& other) const = default;

private:
    [[nodiscard]] std::uint32_t flatIndex(std::uint32_t line, std::uint32_t word) const {
        VC_EXPECTS(line < lines_);
        VC_EXPECTS(word < wordsPerLine_);
        return line * wordsPerLine_ + word;
    }

    std::uint32_t lines_;
    std::uint32_t wordsPerLine_;
    std::uint32_t faultyWords_ = 0;
    /// Bit i of bits_[i/32] set == flat word i faulty. Bits at or beyond
    /// totalWords() are always zero (operator== relies on it).
    std::vector<std::uint32_t> bits_;
};

/// Monte Carlo fault-map generation (paper Section V): each word fails
/// independently with probability 1-(1-p_bit)^32 at the given voltage.
///
/// generate() samples by geometric gap-skipping: one uniform draw yields the
/// distance to the next faulty word via the inverse CDF, so a map costs
/// O(faulty words) RNG draws instead of one Bernoulli per word (at 600mV+
/// fault rates that is a handful of draws instead of ~16K). The coupling is
/// exact: generateBernoulliReference() performs one Bernoulli(p) test per
/// word on the renormalized residual of the same uniform stream and
/// reproduces the identical map (inverse-CDF identity; see the determinism
/// tests).
class FaultMapGenerator {
public:
    /// `pWordScale` multiplies the per-word failure probability (clamped to
    /// [0, 1]). 1.0 is the physical model; other values exist for negative
    /// controls that must diverge from the analytic oracle on purpose.
    explicit FaultMapGenerator(FailureModel model = FailureModel{},
                               unsigned bitsPerWord = 32,
                               double pWordScale = 1.0) noexcept
        : model_(model), bitsPerWord_(bitsPerWord), pWordScale_(pWordScale) {}

    /// Draw one fault map for an array of `lines` x `wordsPerLine` words.
    [[nodiscard]] FaultMap generate(Rng& rng, Voltage v, std::uint32_t lines,
                                    std::uint32_t wordsPerLine) const;

    /// Draw one map per RNG lane — the batched form the sweep uses to fill
    /// a whole (operating point)'s trial maps at once. The per-lane draw
    /// math is generate()'s exactly (same inverse-CDF gaps off the same
    /// uniform stream), so `generateBatch(rngs, ...)[i]` is byte-identical
    /// to `generate(rngs[i], ...)`; what the batch amortizes is everything
    /// lane-invariant — the failure-model probability evaluation (a pow()
    /// per call otherwise) and the output arena, allocated once for all
    /// lanes' bit planes instead of growing map by map.
    [[nodiscard]] std::vector<FaultMap> generateBatch(std::span<Rng> rngs, Voltage v,
                                                      std::uint32_t lines,
                                                      std::uint32_t wordsPerLine) const;

    /// Slow per-word reference: one Bernoulli(p) test per word, coupled to
    /// generate()'s uniform stream so the two produce identical maps for the
    /// same RNG state. Kept for equivalence testing; do not use in sweeps.
    [[nodiscard]] FaultMap generateBernoulliReference(Rng& rng, Voltage v,
                                                      std::uint32_t lines,
                                                      std::uint32_t wordsPerLine) const;

    [[nodiscard]] const FailureModel& model() const noexcept { return model_; }
    [[nodiscard]] unsigned bitsPerWord() const noexcept { return bitsPerWord_; }
    [[nodiscard]] double pWordScale() const noexcept { return pWordScale_; }

    /// The (possibly scaled) per-word failure probability both generation
    /// paths sample from at voltage `v`.
    [[nodiscard]] double pWordAt(Voltage v) const noexcept {
        const double p = pWordScale_ * model_.pFailStructure(v, bitsPerWord_);
        return p < 0.0 ? 0.0 : (p > 1.0 ? 1.0 : p);
    }

private:
    FailureModel model_;
    unsigned bitsPerWord_;
    double pWordScale_;
};

} // namespace voltcache
