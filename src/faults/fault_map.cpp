#include "faults/fault_map.h"

#include <bit>
#include <cmath>

#include "common/contracts.h"

namespace voltcache {

FaultMap::FaultMap(std::uint32_t lines, std::uint32_t wordsPerLine)
    : lines_(lines), wordsPerLine_(wordsPerLine) {
    VC_EXPECTS(lines > 0);
    VC_EXPECTS(wordsPerLine > 0 && wordsPerLine <= 32);
    bits_.assign((static_cast<std::size_t>(lines) * wordsPerLine + 31) / 32, 0u);
}

void FaultMap::setFaulty(std::uint32_t line, std::uint32_t word, bool faulty) {
    setFaultyFlat(flatIndex(line, word), faulty);
}

void FaultMap::setFaultyFlat(std::uint32_t flatWord, bool faulty) {
    VC_EXPECTS(flatWord < totalWords());
    const std::uint32_t mask = 1u << (flatWord & 31u);
    std::uint32_t& block = bits_[flatWord >> 5];
    if (((block & mask) != 0) == faulty) return;
    block ^= mask;
    faultyWords_ += faulty ? 1 : -1;
}

double FaultMap::effectiveCapacityFraction() const noexcept {
    return static_cast<double>(totalFaultFreeWords()) / static_cast<double>(totalWords());
}

std::vector<FaultFreeChunk> FaultMap::faultFreeChunks() const {
    std::vector<FaultFreeChunk> chunks;
    chunks.reserve(faultyWords_ + 1);
    const std::uint32_t total = totalWords();
    std::uint32_t runStart = 0;
    std::uint32_t runLength = 0;
    std::uint32_t i = 0;
    while (i < total) {
        const std::uint32_t bitOff = i & 31u;
        const std::uint32_t avail = std::min(32u - bitOff, total - i);
        // 64-bit so the shift-runs below never hit a shift-by-32.
        std::uint64_t block = bits_[i >> 5] >> bitOff;
        if (block == 0) {
            if (runLength == 0) runStart = i;
            runLength += avail;
            i += avail;
            continue;
        }
        std::uint32_t consumed = 0;
        while (consumed < avail) {
            const auto zeros = std::min<std::uint32_t>(
                static_cast<std::uint32_t>(std::countr_zero(block)), avail - consumed);
            if (zeros > 0) {
                if (runLength == 0) runStart = i + consumed;
                runLength += zeros;
                consumed += zeros;
                block >>= zeros;
                if (consumed >= avail) break;
            }
            const auto ones = std::min<std::uint32_t>(
                static_cast<std::uint32_t>(std::countr_one(block)), avail - consumed);
            if (runLength > 0) {
                chunks.push_back({runStart, runLength});
                runLength = 0;
            }
            consumed += ones;
            block >>= ones;
        }
        i += avail;
    }
    if (runLength > 0) chunks.push_back({runStart, runLength});
    return chunks;
}

std::uint32_t FaultMap::largestPlaceableChunkWords() const {
    if (clean()) return totalWords();
    const std::vector<FaultFreeChunk> chunks = faultFreeChunks();
    std::uint32_t best = 0;
    for (const FaultFreeChunk& chunk : chunks) {
        if (chunk.length > best) best = chunk.length;
    }
    if (chunks.size() >= 2 && chunks.front().startWord == 0 &&
        chunks.back().startWord + chunks.back().length == totalWords()) {
        const std::uint32_t wrapped = chunks.front().length + chunks.back().length;
        if (wrapped > best) best = wrapped;
    }
    return best;
}

FaultMap FaultMapGenerator::generate(Rng& rng, Voltage v, std::uint32_t lines,
                                     std::uint32_t wordsPerLine) const {
    const double pWord = pWordAt(v);
    FaultMap map(lines, wordsPerLine);
    const std::uint32_t total = map.totalWords();
    if (pWord <= 0.0) return map;
    if (pWord >= 1.0) {
        for (std::uint32_t flat = 0; flat < total; ++flat) map.setFaultyFlat(flat);
        return map;
    }
    // Geometric gap-skipping: the run of fault-free words before the next
    // faulty one has P(G = k) = (1-p)^k p, whose inverse CDF at uniform u is
    // floor(log(1-u) / log(1-p)). One draw per faulty word (plus the final
    // draw that runs off the end) replaces one Bernoulli per word.
    const double invLog1mP = 1.0 / std::log1p(-pWord);
    std::uint64_t next = 0;
    while (next < total) {
        const double u = rng.nextDouble();
        const double gap = std::floor(std::log1p(-u) * invLog1mP);
        // u near 1 maps to an unbounded gap; compare in double before the
        // cast (casting an out-of-range double is undefined behaviour).
        if (!(gap < static_cast<double>(total - next))) break;
        next += static_cast<std::uint64_t>(gap);
        map.setFaultyFlat(static_cast<std::uint32_t>(next));
        ++next;
    }
    return map;
}

std::vector<FaultMap> FaultMapGenerator::generateBatch(std::span<Rng> rngs, Voltage v,
                                                       std::uint32_t lines,
                                                       std::uint32_t wordsPerLine) const {
    // Lane-invariant work, once per batch: the model probability (a pow()
    // inside pFailStructure), the inverse-CDF constant, and the arena that
    // holds every lane's bit plane.
    const double pWord = pWordAt(v);
    std::vector<FaultMap> maps;
    maps.reserve(rngs.size());
    for (std::size_t i = 0; i < rngs.size(); ++i) maps.emplace_back(lines, wordsPerLine);
    const std::uint32_t total = lines * wordsPerLine;
    if (pWord <= 0.0) return maps;
    if (pWord >= 1.0) {
        for (FaultMap& map : maps) {
            for (std::uint32_t flat = 0; flat < total; ++flat) map.setFaultyFlat(flat);
        }
        return maps;
    }
    // Per lane: generate()'s geometric gap-skipping, draw for draw, so each
    // lane's map (and its RNG's final state) matches the sequential path.
    const double invLog1mP = 1.0 / std::log1p(-pWord);
    for (std::size_t i = 0; i < rngs.size(); ++i) {
        Rng& rng = rngs[i];
        FaultMap& map = maps[i];
        std::uint64_t next = 0;
        while (next < total) {
            const double u = rng.nextDouble();
            const double gap = std::floor(std::log1p(-u) * invLog1mP);
            if (!(gap < static_cast<double>(total - next))) break;
            next += static_cast<std::uint64_t>(gap);
            map.setFaultyFlat(static_cast<std::uint32_t>(next));
            ++next;
        }
    }
    return maps;
}

FaultMap FaultMapGenerator::generateBernoulliReference(Rng& rng, Voltage v,
                                                       std::uint32_t lines,
                                                       std::uint32_t wordsPerLine) const {
    const double pWord = pWordAt(v);
    FaultMap map(lines, wordsPerLine);
    const std::uint32_t total = map.totalWords();
    if (pWord <= 0.0) return map;
    if (pWord >= 1.0) {
        for (std::uint32_t flat = 0; flat < total; ++flat) map.setFaultyFlat(flat);
        return map;
    }
    // One Bernoulli(p) test per word. After a non-faulty word the residual
    // uniform is renormalized to [0,1) — (r-p)/(1-p) conditioned on r >= p —
    // which couples this stream to generate()'s inverse-CDF gaps exactly:
    // the k-th renormalized residual drops below p precisely when
    // floor(log(1-u)/log(1-p)) == k.
    double r = rng.nextDouble();
    for (std::uint32_t flat = 0; flat < total; ++flat) {
        if (r < pWord) {
            map.setFaultyFlat(flat);
            // Redraw only while words remain: generate() ends with no
            // trailing draw when the final word is faulty (next == total
            // exits its loop), and matching its draw count exactly keeps the
            // two coupled across *sequential* maps on one stream.
            if (flat + 1 < total) r = rng.nextDouble();
        } else {
            r = (r - pWord) / (1.0 - pWord);
        }
    }
    return map;
}

} // namespace voltcache
