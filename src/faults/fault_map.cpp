#include "faults/fault_map.h"

#include "common/contracts.h"

namespace voltcache {

FaultMap::FaultMap(std::uint32_t lines, std::uint32_t wordsPerLine)
    : lines_(lines), wordsPerLine_(wordsPerLine) {
    VC_EXPECTS(lines > 0);
    VC_EXPECTS(wordsPerLine > 0 && wordsPerLine <= 32);
    faulty_.assign(static_cast<std::size_t>(lines) * wordsPerLine, false);
}

std::uint32_t FaultMap::flatIndex(std::uint32_t line, std::uint32_t word) const {
    VC_EXPECTS(line < lines_);
    VC_EXPECTS(word < wordsPerLine_);
    return line * wordsPerLine_ + word;
}

void FaultMap::setFaulty(std::uint32_t line, std::uint32_t word, bool faulty) {
    setFaultyFlat(flatIndex(line, word), faulty);
}

bool FaultMap::isFaulty(std::uint32_t line, std::uint32_t word) const {
    return faulty_[flatIndex(line, word)];
}

void FaultMap::setFaultyFlat(std::uint32_t flatWord, bool faulty) {
    VC_EXPECTS(flatWord < totalWords());
    if (faulty_[flatWord] == faulty) return;
    faulty_[flatWord] = faulty;
    faultyWords_ += faulty ? 1 : -1;
}

bool FaultMap::isFaultyFlat(std::uint32_t flatWord) const {
    VC_EXPECTS(flatWord < totalWords());
    return faulty_[flatWord];
}

std::uint32_t FaultMap::lineFaultMask(std::uint32_t line) const {
    std::uint32_t mask = 0;
    for (std::uint32_t w = 0; w < wordsPerLine_; ++w) {
        if (isFaulty(line, w)) mask |= (1u << w);
    }
    return mask;
}

std::uint32_t FaultMap::faultFreeCount(std::uint32_t line) const {
    std::uint32_t count = 0;
    for (std::uint32_t w = 0; w < wordsPerLine_; ++w) {
        if (!isFaulty(line, w)) ++count;
    }
    return count;
}

double FaultMap::effectiveCapacityFraction() const noexcept {
    return static_cast<double>(totalFaultFreeWords()) / static_cast<double>(totalWords());
}

std::vector<FaultFreeChunk> FaultMap::faultFreeChunks() const {
    std::vector<FaultFreeChunk> chunks;
    std::uint32_t runStart = 0;
    std::uint32_t runLength = 0;
    for (std::uint32_t i = 0; i < totalWords(); ++i) {
        if (!faulty_[i]) {
            if (runLength == 0) runStart = i;
            ++runLength;
        } else if (runLength > 0) {
            chunks.push_back({runStart, runLength});
            runLength = 0;
        }
    }
    if (runLength > 0) chunks.push_back({runStart, runLength});
    return chunks;
}

std::uint32_t FaultMap::largestPlaceableChunkWords() const {
    if (clean()) return totalWords();
    const std::vector<FaultFreeChunk> chunks = faultFreeChunks();
    std::uint32_t best = 0;
    for (const FaultFreeChunk& chunk : chunks) {
        if (chunk.length > best) best = chunk.length;
    }
    if (chunks.size() >= 2 && chunks.front().startWord == 0 &&
        chunks.back().startWord + chunks.back().length == totalWords()) {
        const std::uint32_t wrapped = chunks.front().length + chunks.back().length;
        if (wrapped > best) best = wrapped;
    }
    return best;
}

FaultMap FaultMapGenerator::generate(Rng& rng, Voltage v, std::uint32_t lines,
                                     std::uint32_t wordsPerLine) const {
    const double pWord = model_.pFailStructure(v, bitsPerWord_);
    FaultMap map(lines, wordsPerLine);
    for (std::uint32_t flat = 0; flat < map.totalWords(); ++flat) {
        if (rng.nextBernoulli(pWord)) map.setFaultyFlat(flat);
    }
    return map;
}

} // namespace voltcache
