#include "faults/yield.h"

#include <cmath>

#include "common/contracts.h"

namespace voltcache {

double YieldAnalyzer::yield(Voltage v, std::uint64_t bits) const noexcept {
    const double p = model_.pFailBit(v);
    if (p >= 1.0) return 0.0;
    return std::exp(static_cast<double>(bits) * std::log1p(-p));
}

Voltage YieldAnalyzer::vccmin(std::uint64_t bits, double targetYield) const {
    VC_EXPECTS(bits > 0);
    VC_EXPECTS(targetYield > 0.0 && targetYield < 1.0);
    double lo = 0.2;
    double hi = 1.4;
    VC_ENSURES(yield(Voltage::fromVolts(hi), bits) >= targetYield);
    // ~40 bisection steps: 1.2V span / 2^40 << 1mV.
    for (int step = 0; step < 48; ++step) {
        const double mid = 0.5 * (lo + hi);
        if (yield(Voltage::fromVolts(mid), bits) >= targetYield) {
            hi = mid;
        } else {
            lo = mid;
        }
    }
    return Voltage::fromVolts(hi);
}

} // namespace voltcache
