// Fault-map persistence. The paper stores per-operating-point fault maps in
// off-chip storage after BIST and loads them into FMAP on a DVFS switch
// (Section IV, citing [2]); this module provides that storage format — a
// small, self-describing, human-diffable text encoding.
//
//   voltcache-faultmap v1
//   lines <N> words <W>
//   <N> rows of W characters, '.' = fault-free, 'X' = defective
#pragma once

#include <iosfwd>
#include <stdexcept>
#include <string>

#include "faults/fault_map.h"

namespace voltcache {

/// Malformed input to loadFaultMap.
class FaultMapFormatError : public std::runtime_error {
public:
    using std::runtime_error::runtime_error;
};

/// Serialize to the v1 text format.
void saveFaultMap(const FaultMap& map, std::ostream& out);
[[nodiscard]] std::string faultMapToString(const FaultMap& map);

/// Parse the v1 text format; throws FaultMapFormatError on any deviation.
[[nodiscard]] FaultMap loadFaultMap(std::istream& in);
[[nodiscard]] FaultMap faultMapFromString(const std::string& text);

} // namespace voltcache
