#include "faults/fault_map_io.h"

#include <istream>
#include <ostream>
#include <sstream>

namespace voltcache {

namespace {
constexpr std::string_view kMagic = "voltcache-faultmap v1";
}

void saveFaultMap(const FaultMap& map, std::ostream& out) {
    out << kMagic << '\n';
    out << "lines " << map.lines() << " words " << map.wordsPerLine() << '\n';
    for (std::uint32_t line = 0; line < map.lines(); ++line) {
        for (std::uint32_t word = 0; word < map.wordsPerLine(); ++word) {
            out << (map.isFaulty(line, word) ? 'X' : '.');
        }
        out << '\n';
    }
}

std::string faultMapToString(const FaultMap& map) {
    std::ostringstream out;
    saveFaultMap(map, out);
    return out.str();
}

FaultMap loadFaultMap(std::istream& in) {
    std::string header;
    if (!std::getline(in, header) || header != kMagic) {
        throw FaultMapFormatError("missing 'voltcache-faultmap v1' header");
    }
    std::string key1;
    std::string key2;
    std::uint32_t lines = 0;
    std::uint32_t words = 0;
    std::string dims;
    if (!std::getline(in, dims)) throw FaultMapFormatError("missing dimensions line");
    std::istringstream dimStream(dims);
    if (!(dimStream >> key1 >> lines >> key2 >> words) || key1 != "lines" ||
        key2 != "words") {
        throw FaultMapFormatError("bad dimensions line: '" + dims + "'");
    }
    if (lines == 0 || words == 0 || words > 32) {
        throw FaultMapFormatError("dimensions out of range");
    }
    FaultMap map(lines, words);
    for (std::uint32_t line = 0; line < lines; ++line) {
        std::string row;
        if (!std::getline(in, row)) {
            throw FaultMapFormatError("truncated: expected " + std::to_string(lines) +
                                      " rows, got " + std::to_string(line));
        }
        if (row.size() != words) {
            throw FaultMapFormatError("row " + std::to_string(line) + " has " +
                                      std::to_string(row.size()) + " cells, expected " +
                                      std::to_string(words));
        }
        for (std::uint32_t word = 0; word < words; ++word) {
            if (row[word] == 'X') {
                map.setFaulty(line, word);
            } else if (row[word] != '.') {
                throw FaultMapFormatError("row " + std::to_string(line) +
                                          ": unexpected character '" +
                                          std::string(1, row[word]) + "'");
            }
        }
    }
    return map;
}

FaultMap faultMapFromString(const std::string& text) {
    std::istringstream in(text);
    return loadFaultMap(in);
}

} // namespace voltcache
