// SRAM cell failure-probability model (paper Section II-B, Table II, Fig. 2).
//
// Random dopant fluctuation gives each cell an independent failure
// probability P_fail(V) that rises exponentially as supply voltage drops.
// The paper's experiments use the 45nm per-bit curve published in
// Mahmood & Kim [2]; its six DVFS anchor points are Table II:
//
//     760mV -> ~0,  560mV -> 1e-4,  520mV -> 1e-3.5,  480mV -> 1e-3,
//     440mV -> 1e-2.5,  400mV -> 1e-2
//
// Between 400mV and 560mV those points are exactly log-linear
// (log10 p = -2 - (mV-400)/80); we interpolate on that line. Above 560mV the
// true curve steepens (Gaussian tail of the noise-margin distribution); we
// extend with a quadratic in log10-space, slope-continuous at 560mV and
// calibrated so that a 32KB (262144-bit) array reaches the paper's 99.9%
// yield exactly at Vccmin = 760mV. Below 400mV the log-linear slope
// continues.
//
// The 65nm curve (paper Fig. 2, from Wilkerson et al. [4]) uses the same
// functional form shifted so its Vccmin(32KB, 99.9%) sits higher, matching
// the qualitative behaviour of [4]'s figure.
#pragma once

#include <cstdint>

#include "common/units.h"

namespace voltcache {

/// Process technology selector for the failure curves.
enum class Technology : std::uint8_t {
    Node45nm, ///< experiment curve, from [2] (Table II anchors)
    Node65nm, ///< background curve, from [4] (Fig. 2)
};

/// Robustness class of the SRAM cell circuit.
enum class CellKind : std::uint8_t {
    Sram6T, ///< conventional 6T — the curves above apply directly
    Sram8T, ///< read-decoupled 8T — curve shifted so a 32KB array is
            ///< yield-clean at 400mV (the paper's working assumption)
};

/// Per-bit SRAM failure probability as a function of supply voltage.
class FailureModel {
public:
    explicit FailureModel(Technology tech = Technology::Node45nm,
                          CellKind cell = CellKind::Sram6T) noexcept;

    /// Probability that a single cell (bit) is defective at voltage v.
    [[nodiscard]] double pFailBit(Voltage v) const noexcept;

    /// Probability that a structure of `bits` independent cells contains at
    /// least one defective cell: 1 - (1-p)^bits, evaluated in log space for
    /// numerical stability at tiny p.
    [[nodiscard]] double pFailStructure(Voltage v, std::uint64_t bits) const noexcept;

    /// Probability that a `bits`-wide word is defective (convenience).
    [[nodiscard]] double pFailWord(Voltage v, unsigned bitsPerWord = 32) const noexcept {
        return pFailStructure(v, bitsPerWord);
    }

    [[nodiscard]] Technology technology() const noexcept { return tech_; }
    [[nodiscard]] CellKind cell() const noexcept { return cell_; }

private:
    [[nodiscard]] double log10PFail(double volts) const noexcept;

    Technology tech_;
    CellKind cell_;
    double shiftVolts_; ///< curve shift applied for tech/cell variants
};

} // namespace voltcache
