#include "analysis/image_cfg.h"

#include <algorithm>
#include <cstdio>
#include <deque>

#include "isa/builder.h"

namespace voltcache::analysis {

namespace {

constexpr std::uint32_t kNoParent = 0xFFFFFFFFu;

[[nodiscard]] std::string hex(std::uint32_t addr) {
    char buf[16];
    std::snprintf(buf, sizeof buf, "0x%08x", addr);
    return buf;
}

} // namespace

ImageCfg::ImageCfg(const Image& image) : image_(&image) {
    reachable_.assign(image.sizeWords(), 0);
    parent_.assign(image.sizeWords(), kNoParent);
    blockStarts_.reserve(image.placements().size());
    for (const auto& placement : image.placements()) {
        blockStarts_.push_back(placement.byteAddr);
    }
    std::sort(blockStarts_.begin(), blockStarts_.end());
    walk();

    for (std::uint32_t p = 0; p < image.placements().size(); ++p) {
        const PlacedBlock& placement = image.placements()[p];
        bool live = false;
        for (std::uint32_t w = 0; w < placement.codeWords && !live; ++w) {
            live = isReachable(placement.byteAddr + w * 4);
        }
        if (!live) {
            deadBlocks_.push_back(p);
            deadWords_ += placement.sizeWords();
        }
    }
}

void ImageCfg::addDiagnostic(CfgDiagKind kind, std::uint32_t from, std::uint32_t target) {
    CfgDiagnostic diag;
    diag.kind = kind;
    diag.fromAddr = from;
    diag.targetAddr = target;
    switch (kind) {
        case CfgDiagKind::NonInstructionFetch:
            diag.message = "control flow from " + describe(from) + " reaches non-instruction word " +
                           describe(target);
            break;
        case CfgDiagKind::TargetOutsideImage:
            diag.message = "transfer at " + describe(from) + " targets " + hex(target) +
                           ", outside the image";
            break;
        case CfgDiagKind::TargetNotBlockStart:
            diag.message = "transfer at " + describe(from) + " lands mid-block at " +
                           describe(target);
            break;
    }
    diagnostics_.push_back(std::move(diag));
}

void ImageCfg::walk() {
    if (image_->sizeWords() == 0) return;
    std::deque<std::uint32_t> queue;

    auto visit = [&](std::uint32_t target, std::uint32_t from, bool isTransfer) {
        if (!image_->contains(target)) {
            addDiagnostic(CfgDiagKind::TargetOutsideImage, from, target);
            return;
        }
        if (isTransfer &&
            !std::binary_search(blockStarts_.begin(), blockStarts_.end(), target)) {
            addDiagnostic(CfgDiagKind::TargetNotBlockStart, from, target);
        }
        const std::uint32_t idx = wordIndex(target);
        if (reachable_[idx]) return;
        reachable_[idx] = 1;
        parent_[idx] = from;
        queue.push_back(target);
    };

    if (!image_->contains(image_->entryAddr())) {
        addDiagnostic(CfgDiagKind::TargetOutsideImage, image_->entryAddr(),
                      image_->entryAddr());
        return;
    }
    reachable_[wordIndex(image_->entryAddr())] = 1;
    queue.push_back(image_->entryAddr());

    while (!queue.empty()) {
        const std::uint32_t addr = queue.front();
        queue.pop_front();
        const ImageWord& word = image_->at(addr);
        if (word.kind != ImageWord::Kind::Instruction) {
            addDiagnostic(CfgDiagKind::NonInstructionFetch, parent_[wordIndex(addr)], addr);
            continue;
        }
        const Instruction& inst = word.inst;
        const auto target = static_cast<std::uint32_t>(
            static_cast<std::int64_t>(addr) + static_cast<std::int64_t>(inst.imm) * 4);

        if (inst.op == Opcode::Halt) continue;
        if (isReturn(inst)) continue; // the call edge already made the return
                                      // site reachable
        if (isIndirectJump(inst)) {
            // Jump through a computed register: over-approximate as "may
            // reach any function entry" (blockIndex 0 placements).
            for (const auto& placement : image_->placements()) {
                if (placement.blockIndex == 0) visit(placement.byteAddr, addr, true);
            }
            continue;
        }
        if (inst.op == Opcode::Jal) {
            visit(target, addr, true);
            if (isCall(inst)) visit(addr + 4, addr, false); // call returns here
            continue;
        }
        if (isConditionalBranch(inst.op)) {
            visit(target, addr, true);   // taken
            visit(addr + 4, addr, false); // not taken
            continue;
        }
        visit(addr + 4, addr, false); // straight-line flow
    }

    for (std::uint32_t idx = 0; idx < reachable_.size(); ++idx) {
        if (reachable_[idx]) reachableAddrs_.push_back(image_->baseAddr() + idx * 4);
    }
}

bool ImageCfg::isReachable(std::uint32_t byteAddr) const noexcept {
    if (!image_->contains(byteAddr)) return false;
    return reachable_[wordIndex(byteAddr)] != 0;
}

const PlacedBlock* ImageCfg::blockAt(std::uint32_t byteAddr) const noexcept {
    const PlacedBlock* best = nullptr;
    for (const auto& placement : image_->placements()) {
        if (byteAddr >= placement.byteAddr &&
            byteAddr < placement.byteAddr + placement.sizeWords() * 4) {
            best = &placement;
            break;
        }
    }
    return best;
}

std::vector<std::uint32_t> ImageCfg::blockPathTo(std::uint32_t byteAddr) const {
    std::vector<std::uint32_t> path;
    if (!isReachable(byteAddr)) return path;
    std::vector<std::uint32_t> addrs;
    for (std::uint32_t addr = byteAddr;;) {
        addrs.push_back(addr);
        const std::uint32_t up = parent_[wordIndex(addr)];
        if (up == kNoParent) break;
        addr = up;
    }
    std::reverse(addrs.begin(), addrs.end());
    const PlacedBlock* lastBlock = nullptr;
    for (const std::uint32_t addr : addrs) {
        const PlacedBlock* block = blockAt(addr);
        if (block == nullptr) continue;
        if (block != lastBlock) {
            path.push_back(block->byteAddr);
            lastBlock = block;
        }
    }
    return path;
}

bool ImageCfg::hasErrors() const noexcept {
    return std::any_of(diagnostics_.begin(), diagnostics_.end(),
                       [](const CfgDiagnostic& d) { return d.isError(); });
}

std::string ImageCfg::describe(std::uint32_t byteAddr, const Module* module) const {
    std::string text = hex(byteAddr);
    const PlacedBlock* block = blockAt(byteAddr);
    if (block == nullptr) return text;
    const std::uint32_t offset = (byteAddr - block->byteAddr) / 4;
    if (module != nullptr && block->functionIndex < module->functions.size()) {
        const Function& fn = module->functions[block->functionIndex];
        if (block->blockIndex < fn.blocks.size()) {
            text += " (" + fn.name + ":" + fn.blocks[block->blockIndex].label + "+" +
                    std::to_string(offset) + ")";
            return text;
        }
    }
    text += " (block " + std::to_string(block->functionIndex) + ":" +
            std::to_string(block->blockIndex) + "+" + std::to_string(offset) + ")";
    return text;
}

} // namespace voltcache::analysis
