// Static lint over compiler output (a Module), run *before* BBR placement.
//
// The linker and runtime discover ill-formed module shapes late — a
// fall-through block aborts link(), an oversized block becomes a yield
// loss, an out-of-reach literal throws mid-relocation. This pass detects
// every such shape up front, collecting all findings instead of stopping at
// the first (Module::validate() throws on the first), so toolchain users
// get one complete report per module.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "faults/fault_map.h"
#include "isa/module.h"

namespace voltcache::analysis {

enum class LintSeverity : std::uint8_t { Warning, Error };

enum class LintCode : std::uint8_t {
    EntryMissing,             ///< entry function not found (error)
    EmptyFunction,            ///< function with no blocks (error)
    FallthroughNotSealed,     ///< block may fall through — BBR placement will
                              ///< reject it (error in BBR mode)
    FallthroughPastFunctionEnd, ///< last block falls off the function (error)
    FallthroughIntoPool,      ///< block falls into its own literal pool (error)
    OversizedBlock,           ///< larger than the largest placeable chunk (error)
    LiteralOutOfReach,        ///< pool slot beyond ±reach for ANY legal placement
    MissingRelocation,        ///< branch/jal/ldl without a relocation (error)
    BadRelocation,            ///< reloc shape broken: bad target/index/opcode
    UnreachableBlock,         ///< dead code in the intra-function CFG (warning)
    UnreachableFunction,      ///< never called from the entry (warning)
};

struct LintFinding {
    LintSeverity severity = LintSeverity::Error;
    LintCode code = LintCode::BadRelocation;
    std::string function;
    std::string block;        ///< empty for function-level findings
    std::uint32_t instIndex = 0;
    std::string message;
};

struct LintOptions {
    /// Require BBR-placeable shape (sealed fall-throughs everywhere). When
    /// false, only shapes the conventional linker rejects are errors.
    bool bbrMode = true;
    /// Largest block the placer could ever fit (0 = skip the check). Derive
    /// from a fault map with maxPlaceableBlockWords().
    std::uint32_t maxBlockWords = 0;
    /// PC-relative literal reach in words (LinkOptions::literalReachWords).
    std::uint32_t literalReachWords = 1024;
};

/// Run every lint check; findings are ordered by function/block. Never
/// throws on malformed modules — that is the point.
[[nodiscard]] std::vector<LintFinding> lintModule(const Module& module,
                                                  const LintOptions& options = {});

[[nodiscard]] bool hasLintErrors(const std::vector<LintFinding>& findings) noexcept;

/// "error: main:loop: ..." lines, one per finding.
[[nodiscard]] std::string formatFindings(const std::vector<LintFinding>& findings);

/// Longest run of fault-free words in the flat cache space, merging across
/// the wraparound boundary (Algorithm 1 scans modularly): the size of the
/// largest basic block that could ever be placed on this map.
[[nodiscard]] std::uint32_t maxPlaceableBlockWords(const FaultMap& map);

} // namespace voltcache::analysis
