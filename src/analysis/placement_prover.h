// Static BBR placement prover (the paper's invariant, proved before any
// simulation): in direct-mapped low-voltage mode, every instruction word a
// fetch can reach must map to a fault-free I-cache word. The runtime check
// (BbrICache's PlacementViolation) catches a bad placement only when the
// program happens to fetch it; this prover decides the property over the
// whole image CFG, reporting each violating path, so the Monte Carlo yield
// harness can reject a (binary, fault map) pair without running it.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "analysis/image_cfg.h"
#include "faults/fault_map.h"
#include "isa/module.h"
#include "linker/image.h"

namespace voltcache::analysis {

/// One reachable word that maps to a defective cache word, with the fetch
/// path that reaches it.
struct ViolationPath {
    std::uint32_t byteAddr = 0;  ///< the violating instruction word
    std::uint32_t cacheWord = 0; ///< flat defective cache word it maps to
    /// Entry addresses of the placed blocks on the shortest fetch path from
    /// the program entry to the violating block.
    std::vector<std::uint32_t> blockChain;
    std::string description; ///< rendered path, one line
};

struct PlacementProof {
    bool verified = false; ///< no violations and no CFG errors
    std::vector<ViolationPath> violations;
    std::vector<CfgDiagnostic> cfgDiagnostics;

    std::uint32_t reachableWords = 0;
    std::uint32_t reachableBlocks = 0;
    std::uint32_t deadBlocks = 0;
    std::uint32_t deadWords = 0; ///< placed but unreachable (wasted gap budget)
};

/// Prove the BBR invariant for `image` against `icacheFaultMap` (cache
/// geometry is the map's: csize = totalWords). `module`, when given, labels
/// diagnostics with function:block names.
[[nodiscard]] PlacementProof provePlacement(const Image& image,
                                            const FaultMap& icacheFaultMap,
                                            const Module* module = nullptr);

/// Multi-line human-readable report (empty string when verified clean).
[[nodiscard]] std::string formatProof(const PlacementProof& proof);

} // namespace voltcache::analysis
