// Top-level static verification entry points: the pieces vcverify, the
// linker hook, and the Monte Carlo harness share.
#pragma once

#include <string>

#include "analysis/lint.h"
#include "analysis/placement_prover.h"
#include "faults/fault_map.h"
#include "isa/module.h"
#include "linker/linker.h"

namespace voltcache::analysis {

struct VerifyReport {
    std::vector<LintFinding> lint;
    PlacementProof proof;

    [[nodiscard]] bool ok() const noexcept {
        return proof.verified && !hasLintErrors(lint);
    }
};

/// Lint `module`, then prove the BBR placement of `image` against `map`.
/// Lint options default to BBR mode with maxBlockWords derived from `map`.
[[nodiscard]] VerifyReport verifyImage(const Module& module, const Image& image,
                                       const FaultMap& map,
                                       const LintOptions& lintOptions);
[[nodiscard]] VerifyReport verifyImage(const Module& module, const Image& image,
                                       const FaultMap& map);

/// Full report text: lint findings then proof diagnostics.
[[nodiscard]] std::string formatReport(const VerifyReport& report);

/// Arm `options` so link() statically proves the placement of the image it
/// just emitted (against options.icacheFaultMap) and throws LinkError with
/// per-path diagnostics on failure. Requires bbrPlacement with a fault map;
/// `module` (optional, must outlive the link call) labels diagnostics.
void attachStaticVerifier(LinkOptions& options, const Module* module = nullptr);

/// link() + static placement proof in one call. On a placement the prover
/// rejects, throws LinkError (so Monte Carlo yield-loss accounting treats a
/// disproved placement exactly like an unplaceable one).
[[nodiscard]] LinkOutput linkVerified(const Module& module, LinkOptions options);

} // namespace voltcache::analysis
