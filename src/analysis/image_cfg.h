// Control-flow graph over a *linked* Image (static verification layer).
//
// Unlike compiler/cfg.h, which views a Function's symbolic blocks, this CFG
// is built from the placed image the CPU actually fetches: reachability is
// computed at word granularity starting from the entry point, following
// resolved branch displacements, call edges (calls are assumed to return,
// so the return site stays reachable through the fall-through edge), and an
// over-approximation for indirect jumps (a Jalr through anything but the
// link register may land on any function entry). The result is the exact
// set of addresses a fetch can ever touch — the universe the BBR placement
// prover must check against the fault map.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "isa/module.h"
#include "linker/image.h"

namespace voltcache::analysis {

/// Ill-formed control flow discovered while walking the image.
enum class CfgDiagKind : std::uint8_t {
    NonInstructionFetch, ///< control reaches a gap or literal word (error)
    TargetOutsideImage,  ///< branch/jump displacement escapes the image (error)
    TargetNotBlockStart, ///< branch lands mid-block (warning: legal but odd)
};

struct CfgDiagnostic {
    CfgDiagKind kind = CfgDiagKind::NonInstructionFetch;
    std::uint32_t fromAddr = 0;   ///< the transferring instruction (0 if entry)
    std::uint32_t targetAddr = 0; ///< the offending destination
    std::string message;

    [[nodiscard]] bool isError() const noexcept {
        return kind != CfgDiagKind::TargetNotBlockStart;
    }
};

class ImageCfg {
public:
    /// Walk the image from its entry address. Never throws on malformed
    /// control flow — problems are recorded as diagnostics and the walk
    /// simply stops along that path.
    explicit ImageCfg(const Image& image);

    /// Sorted byte addresses of every instruction word a fetch can reach.
    [[nodiscard]] const std::vector<std::uint32_t>& reachableAddrs() const noexcept {
        return reachableAddrs_;
    }
    [[nodiscard]] bool isReachable(std::uint32_t byteAddr) const noexcept;

    /// Shortest fetch path (by blocks) from the entry to `byteAddr`: the
    /// entry addresses of the placed blocks traversed, ending with the block
    /// containing `byteAddr`. Empty when the address is unreachable.
    [[nodiscard]] std::vector<std::uint32_t> blockPathTo(std::uint32_t byteAddr) const;

    [[nodiscard]] const std::vector<CfgDiagnostic>& diagnostics() const noexcept {
        return diagnostics_;
    }
    [[nodiscard]] bool hasErrors() const noexcept;

    /// Placement containing `byteAddr`, or nullptr (gaps, shared pools).
    [[nodiscard]] const PlacedBlock* blockAt(std::uint32_t byteAddr) const noexcept;

    /// Placed blocks never reached by any fetch path (dead code): indices
    /// into image.placements().
    [[nodiscard]] const std::vector<std::uint32_t>& deadBlocks() const noexcept {
        return deadBlocks_;
    }
    /// Total words occupied by dead blocks (code + literals).
    [[nodiscard]] std::uint32_t deadWords() const noexcept { return deadWords_; }

    /// Human-readable location: "0x00000040 (main:loop+2)" when `module`
    /// provides labels, bare hex otherwise.
    [[nodiscard]] std::string describe(std::uint32_t byteAddr,
                                       const Module* module = nullptr) const;

private:
    [[nodiscard]] std::uint32_t wordIndex(std::uint32_t byteAddr) const noexcept {
        return (byteAddr - image_->baseAddr()) / 4;
    }
    void walk();
    void addDiagnostic(CfgDiagKind kind, std::uint32_t from, std::uint32_t target);

    const Image* image_;
    std::vector<std::uint8_t> reachable_;       ///< per image word
    std::vector<std::uint32_t> parent_;         ///< BFS predecessor (byte addr)
    std::vector<std::uint32_t> reachableAddrs_; ///< sorted
    std::vector<CfgDiagnostic> diagnostics_;
    std::vector<std::uint32_t> blockStarts_;    ///< sorted placement entry addrs
    std::vector<std::uint32_t> deadBlocks_;
    std::uint32_t deadWords_ = 0;
};

} // namespace voltcache::analysis
