#include "analysis/placement_prover.h"

#include <sstream>

#include "common/contracts.h"

namespace voltcache::analysis {

PlacementProof provePlacement(const Image& image, const FaultMap& icacheFaultMap,
                              const Module* module) {
    VC_EXPECTS(icacheFaultMap.totalWords() > 0);
    const std::uint32_t cacheWords = icacheFaultMap.totalWords();

    ImageCfg cfg(image);
    PlacementProof proof;
    proof.cfgDiagnostics = cfg.diagnostics();
    proof.reachableWords = static_cast<std::uint32_t>(cfg.reachableAddrs().size());
    proof.deadBlocks = static_cast<std::uint32_t>(cfg.deadBlocks().size());
    proof.deadWords = cfg.deadWords();
    proof.reachableBlocks =
        static_cast<std::uint32_t>(image.placements().size()) - proof.deadBlocks;

    for (const std::uint32_t addr : cfg.reachableAddrs()) {
        const std::uint32_t cacheWord = (addr / 4) % cacheWords;
        if (!icacheFaultMap.isFaultyFlat(cacheWord)) continue;
        ViolationPath violation;
        violation.byteAddr = addr;
        violation.cacheWord = cacheWord;
        violation.blockChain = cfg.blockPathTo(addr);
        std::ostringstream text;
        text << "reachable word " << cfg.describe(addr, module) << " maps to defective cache word "
             << cacheWord << "; fetch path:";
        for (const std::uint32_t blockAddr : violation.blockChain) {
            text << ' ' << cfg.describe(blockAddr, module);
        }
        violation.description = text.str();
        proof.violations.push_back(std::move(violation));
    }

    proof.verified = proof.violations.empty() && !cfg.hasErrors();
    return proof;
}

std::string formatProof(const PlacementProof& proof) {
    std::ostringstream out;
    for (const auto& diag : proof.cfgDiagnostics) {
        out << (diag.isError() ? "error: " : "warning: ") << diag.message << '\n';
    }
    for (const auto& violation : proof.violations) {
        out << "violation: " << violation.description << '\n';
    }
    if (!proof.verified && proof.violations.empty() && proof.cfgDiagnostics.empty()) {
        out << "error: image not verifiable\n";
    }
    return out.str();
}

} // namespace voltcache::analysis
