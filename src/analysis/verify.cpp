#include "analysis/verify.h"

#include "common/contracts.h"

namespace voltcache::analysis {

VerifyReport verifyImage(const Module& module, const Image& image, const FaultMap& map,
                         const LintOptions& lintOptions) {
    VerifyReport report;
    report.lint = lintModule(module, lintOptions);
    report.proof = provePlacement(image, map, &module);
    return report;
}

VerifyReport verifyImage(const Module& module, const Image& image, const FaultMap& map) {
    LintOptions lintOptions;
    lintOptions.maxBlockWords = maxPlaceableBlockWords(map);
    return verifyImage(module, image, map, lintOptions);
}

std::string formatReport(const VerifyReport& report) {
    return formatFindings(report.lint) + formatProof(report.proof);
}

void attachStaticVerifier(LinkOptions& options, const Module* module) {
    VC_EXPECTS(options.bbrPlacement && options.icacheFaultMap != nullptr);
    const FaultMap* map = options.icacheFaultMap;
    options.postLinkVerifier = [map, module](const Image& image) {
        const PlacementProof proof = provePlacement(image, *map, module);
        if (!proof.verified) {
            throw LinkError("static placement proof failed:\n" + formatProof(proof),
                            LinkFailCause::Verifier);
        }
    };
}

LinkOutput linkVerified(const Module& module, LinkOptions options) {
    attachStaticVerifier(options, &module);
    return link(module, options);
}

} // namespace voltcache::analysis
