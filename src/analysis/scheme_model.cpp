#include "analysis/scheme_model.h"

#include <algorithm>
#include <cmath>

#include "common/contracts.h"

namespace voltcache::analysis {

std::vector<double> binomialPmf(unsigned n, double p) {
    VC_EXPECTS(p >= 0.0 && p <= 1.0);
    std::vector<double> pmf(static_cast<std::size_t>(n) + 1, 0.0);
    if (p <= 0.0) {
        pmf[0] = 1.0;
        return pmf;
    }
    if (p >= 1.0) {
        pmf[n] = 1.0;
        return pmf;
    }
    // Start from whichever endpoint carries the larger mass and recurse with
    // pmf[k+1]/pmf[k] = ((n-k)/(k+1)) * (p/q): ratios of adjacent terms are
    // well-conditioned even when the endpoint itself underflows.
    const double q = 1.0 - p;
    if (p <= 0.5) {
        pmf[0] = std::exp(static_cast<double>(n) * std::log1p(-p));
        for (unsigned k = 0; k < n; ++k) {
            pmf[k + 1] = pmf[k] * (static_cast<double>(n - k) /
                                   static_cast<double>(k + 1)) *
                         (p / q);
        }
    } else {
        pmf[n] = std::exp(static_cast<double>(n) * std::log(p));
        for (unsigned k = n; k > 0; --k) {
            pmf[k - 1] = pmf[k] * (static_cast<double>(k) /
                                   static_cast<double>(n - k + 1)) *
                         (q / p);
        }
    }
    return pmf;
}

double binomialTailAtLeast(unsigned n, double p, unsigned k) {
    if (k == 0) return 1.0;
    if (k > n) return 0.0;
    const std::vector<double> pmf = binomialPmf(n, p);
    // Sum the shorter side to limit accumulated rounding.
    if (n - k + 1 <= k) {
        double tail = 0.0;
        for (unsigned i = n + 1; i-- > k;) tail += pmf[i];
        return std::min(tail, 1.0);
    }
    double head = 0.0;
    for (unsigned i = 0; i < k; ++i) head += pmf[i];
    return std::max(0.0, 1.0 - head);
}

// ---- FfwModel ----

FfwModel::FfwModel(double pWord, std::uint32_t lines, std::uint32_t wordsPerLine)
    : pWord_(pWord), lines_(lines), wordsPerLine_(wordsPerLine) {
    VC_EXPECTS(pWord >= 0.0 && pWord <= 1.0);
    VC_EXPECTS(lines > 0);
    VC_EXPECTS(wordsPerLine > 0 && wordsPerLine <= 32);
    // Window size == number of fault-free entries == Binomial(n, 1 - pWord).
    pmf_ = binomialPmf(wordsPerLine, 1.0 - pWord);
}

FfwModel FfwModel::at(const FailureModel& model, Voltage v, std::uint32_t lines,
                      std::uint32_t wordsPerLine, unsigned bitsPerWord) {
    return FfwModel(model.pFailStructure(v, bitsPerWord), lines, wordsPerLine);
}

double FfwModel::expectedWindowCount(unsigned k, std::uint64_t maps) const {
    if (k >= pmf_.size()) return 0.0;
    return pmf_[k] * static_cast<double>(lines_) * static_cast<double>(maps);
}

double FfwModel::meanWindowWords() const noexcept {
    return static_cast<double>(wordsPerLine_) * (1.0 - pWord_);
}

double FfwModel::yield(std::uint32_t minWindow) const {
    if (minWindow == 0) return 1.0;
    if (minWindow > wordsPerLine_) return 0.0;
    const double pLine = binomialTailAtLeast(wordsPerLine_, 1.0 - pWord_, minWindow);
    if (pLine <= 0.0) return 0.0;
    return std::exp(static_cast<double>(lines_) * std::log(pLine));
}

// ---- BbrModel ----

BbrModel::BbrModel(double pWord, std::uint32_t cacheWords)
    : pWord_(pWord), cacheWords_(cacheWords) {
    VC_EXPECTS(pWord >= 0.0 && pWord <= 1.0);
    VC_EXPECTS(cacheWords > 0);
}

BbrModel BbrModel::at(const FailureModel& model, Voltage v, std::uint32_t cacheWords,
                      unsigned bitsPerWord) {
    return BbrModel(model.pFailStructure(v, bitsPerWord), cacheWords);
}

double BbrModel::expectedChunkCount(std::uint32_t length) const {
    const std::uint32_t n = cacheWords_;
    if (length == 0 || length > n) return 0.0;
    const double p = pWord_;
    if (p >= 1.0) return 0.0;
    const double qPowL = std::exp(static_cast<double>(length) * std::log1p(-p));
    if (length == n) return qPowL;
    // A maximal run of exactly L at the left or right border needs one
    // bounding fault; an interior start needs two.
    return qPowL * (2.0 * p + static_cast<double>(n - length - 1) * p * p);
}

std::array<double, kForensicsLog2Buckets> BbrModel::expectedChunkLog2Histogram() const {
    std::array<double, kForensicsLog2Buckets> buckets{};
    for (std::uint32_t length = 1; length <= cacheWords_; ++length) {
        buckets[forensicsLog2Bucket(length)] += expectedChunkCount(length);
    }
    return buckets;
}

double BbrModel::expectedTotalChunks() const {
    // Sum over L of E[count L] telescopes to E[#runs] = q (first word starts
    // a run) + (N-1) p q (each fault->clean border starts one); summing the
    // per-length series keeps the code tied to expectedChunkCount.
    double total = 0.0;
    for (std::uint32_t length = 1; length <= cacheWords_; ++length) {
        total += expectedChunkCount(length);
    }
    return total;
}

double BbrModel::placementSuccessExact(std::uint32_t needWords) const {
    const std::uint32_t n = cacheWords_;
    if (needWords == 0) return 1.0;
    if (needWords > n) return 0.0;
    if (pWord_ <= 0.0) return 1.0; // the clean map's circular run is n >= need
    if (pWord_ >= 1.0) return 0.0;
    const double p = pWord_;
    const double q = 1.0 - p;
    const std::uint32_t runCap = needWords; // forbidden run length

    // P(no circular run >= B), conditioning on the first defective word at
    // flat index j. Words 0..j-1 are clean (probability q^j p); the run that
    // wraps through word 0 then has length j + t where t is the trailing
    // clean run of the remaining linear suffix of m = n-1-j words. The
    // conditional event is: the suffix has no interior run >= B, and
    // j + t <= B-1. A first defect at j >= B would itself leave a leading
    // run >= B, so only j <= B-1 contributes.
    //
    // D[t] = P(linear m-word suffix: no run >= B, trailing clean run == t),
    // advanced over m: a defective word resets t to 0, a clean word shifts
    // t up, and mass at t == B-1 that would shift to B has created a
    // forbidden run and is dropped.
    std::vector<double> trailing(runCap, 0.0);
    trailing[0] = 1.0; // m == 0: empty suffix
    std::vector<double> next(runCap, 0.0);

    const std::uint32_t firstContributingM = n - std::min(runCap, n);
    double pNone = 0.0;
    const auto contribution = [&](std::uint32_t m, const std::vector<double>& dist) {
        // j = n-1-m; require the wrap run j + t <= B-1.
        const std::uint32_t j = n - 1 - m;
        const std::uint32_t tCap = runCap - 1 - j; // == B-1-j, >= 0 here
        double sum = 0.0;
        for (std::uint32_t t = 0; t <= std::min<std::uint32_t>(tCap, runCap - 1); ++t) {
            sum += dist[t];
        }
        pNone += std::exp(static_cast<double>(j) * std::log1p(-p)) * p * sum;
    };

    if (firstContributingM == 0) contribution(0, trailing);
    for (std::uint32_t m = 1; m < n; ++m) {
        double all = 0.0;
        for (const double mass : trailing) all += mass;
        next[0] = p * all;
        for (std::uint32_t t = runCap; t-- > 1;) next[t] = q * trailing[t - 1];
        trailing.swap(next);
        if (m >= firstContributingM) contribution(m, trailing);
    }
    return std::clamp(1.0 - pNone, 0.0, 1.0);
}

double BbrModel::placementSuccessUpper(std::uint32_t needWords) const {
    const std::uint32_t n = cacheWords_;
    if (needWords == 0) return 1.0;
    if (needWords > n) return 0.0;
    const double q = 1.0 - pWord_;
    // Capacity: a run of B needs at least B fault-free words in the map.
    const double capacity = binomialTailAtLeast(n, q, needWords);
    // Union over the n circular start positions, each clean with q^B.
    const double unionBound =
        q > 0.0 ? static_cast<double>(n) *
                      std::exp(static_cast<double>(needWords) * std::log(q))
                : 0.0;
    return std::min({1.0, capacity, unionBound});
}

double BbrModel::placementSuccessLower(std::uint32_t needWords) const {
    const std::uint32_t n = cacheWords_;
    if (needWords == 0) return 1.0;
    if (needWords > n) return 0.0;
    const double q = 1.0 - pWord_;
    if (q <= 0.0) return 0.0;
    const std::uint32_t windows = n / needWords;
    const double qPowB = std::exp(static_cast<double>(needWords) * std::log(q));
    // The disjoint aligned windows are independent; any clean one places.
    return 1.0 - std::exp(static_cast<double>(windows) * std::log1p(-qPowB));
}

// ---- module / map oracles ----

std::uint32_t modulePlacementNeedWords(const Module& module) {
    std::uint32_t need = 0;
    for (const Function& fn : module.functions) {
        for (const BasicBlock& block : fn.blocks) {
            need = std::max(need, block.sizeWords());
        }
        need = std::max(need,
                        static_cast<std::uint32_t>(fn.sharedLiteralPool.size()));
    }
    return need;
}

bool placementFeasible(const FaultMap& icacheMap, std::uint32_t needWords) {
    if (needWords == 0) return true;
    if (needWords > icacheMap.totalWords()) return false;
    return icacheMap.largestPlaceableChunkWords() >= needWords;
}

} // namespace voltcache::analysis
