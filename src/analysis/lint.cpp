#include "analysis/lint.h"

#include <algorithm>
#include <deque>
#include <sstream>

#include "isa/builder.h"

namespace voltcache::analysis {

namespace {

class Linter {
public:
    Linter(const Module& module, const LintOptions& options)
        : module_(module), options_(options) {}

    std::vector<LintFinding> run() {
        if (module_.findFunction(module_.entryFunction) == nullptr) {
            add(LintSeverity::Error, LintCode::EntryMissing, "", "", 0,
                "entry function '" + module_.entryFunction + "' not found");
        }
        for (const Function& fn : module_.functions) lintFunction(fn);
        lintCallGraph();
        return std::move(findings_);
    }

private:
    void add(LintSeverity severity, LintCode code, std::string function, std::string block,
             std::uint32_t instIndex, std::string message) {
        findings_.push_back(LintFinding{severity, code, std::move(function), std::move(block),
                                        instIndex, std::move(message)});
    }

    void lintFunction(const Function& fn) {
        if (fn.blocks.empty()) {
            add(LintSeverity::Error, LintCode::EmptyFunction, fn.name, "", 0,
                "function has no blocks");
            return;
        }
        // Suffix sums of block sizes: suffix[b] = words of blocks b..end, the
        // contiguous (best-case) distance from block b's start to the shared
        // pool — BBR gaps only push the pool farther.
        std::vector<std::uint32_t> suffix(fn.blocks.size() + 1, 0);
        for (std::size_t b = fn.blocks.size(); b-- > 0;) {
            suffix[b] = suffix[b + 1] + fn.blocks[b].sizeWords();
        }
        for (std::size_t b = 0; b < fn.blocks.size(); ++b) {
            lintBlock(fn, fn.blocks[b], b, suffix[b + 1]);
        }
        lintReachability(fn);
    }

    void lintBlock(const Function& fn, const BasicBlock& block, std::size_t blockIndex,
                   std::uint32_t wordsAfterBlock) {
        const bool last = blockIndex + 1 == fn.blocks.size();
        if (block.hasFallthrough()) {
            if (last) {
                add(LintSeverity::Error, LintCode::FallthroughPastFunctionEnd, fn.name,
                    block.label, 0, "control falls off the function's last block");
            } else if (options_.bbrMode) {
                add(LintSeverity::Error, LintCode::FallthroughNotSealed, fn.name, block.label,
                    0,
                    "block may fall through: BBR placement cannot move it "
                    "(run insertFallthroughJumps)");
            } else if (!block.literalPool.empty()) {
                add(LintSeverity::Error, LintCode::FallthroughIntoPool, fn.name, block.label,
                    0, "block falls through into its own literal pool");
            }
        }
        if (options_.maxBlockWords > 0 && block.sizeWords() > options_.maxBlockWords) {
            add(LintSeverity::Error, LintCode::OversizedBlock, fn.name, block.label, 0,
                "block is " + std::to_string(block.sizeWords()) +
                    " words but the largest placeable fault-free chunk is " +
                    std::to_string(options_.maxBlockWords) + " words (run breakLargeBlocks)");
        }
        for (const Relocation& reloc : block.relocs) {
            lintRelocation(fn, block, blockIndex, reloc, wordsAfterBlock);
        }
        for (std::size_t i = 0; i < block.insts.size(); ++i) {
            const Opcode op = block.insts[i].op;
            const bool needsReloc =
                isConditionalBranch(op) || op == Opcode::Jal || op == Opcode::Ldl;
            if (needsReloc && block.relocFor(static_cast<std::uint32_t>(i)) == nullptr) {
                add(LintSeverity::Error, LintCode::MissingRelocation, fn.name, block.label,
                    static_cast<std::uint32_t>(i),
                    std::string(mnemonic(op)) + " has no relocation: its target is undefined");
            }
        }
    }

    void lintRelocation(const Function& fn, const BasicBlock& block, std::size_t blockIndex,
                        const Relocation& reloc, std::uint32_t wordsAfterBlock) {
        (void)blockIndex;
        if (reloc.instIndex >= block.insts.size()) {
            add(LintSeverity::Error, LintCode::BadRelocation, fn.name, block.label,
                reloc.instIndex, "relocation points past the block's last instruction");
            return;
        }
        const Opcode op = block.insts[reloc.instIndex].op;
        switch (reloc.kind) {
            case RelocKind::BlockTarget:
                if (!isConditionalBranch(op) && op != Opcode::Jal) {
                    add(LintSeverity::Error, LintCode::BadRelocation, fn.name, block.label,
                        reloc.instIndex, "block-target relocation on non-branch " +
                                             std::string(mnemonic(op)));
                } else if (reloc.targetBlock >= fn.blocks.size()) {
                    add(LintSeverity::Error, LintCode::BadRelocation, fn.name, block.label,
                        reloc.instIndex,
                        "branch targets nonexistent block #" + std::to_string(reloc.targetBlock) +
                            " — not a block start");
                }
                break;
            case RelocKind::FunctionTarget:
                if (op != Opcode::Jal) {
                    add(LintSeverity::Error, LintCode::BadRelocation, fn.name, block.label,
                        reloc.instIndex,
                        "call relocation on non-jal " + std::string(mnemonic(op)));
                } else if (module_.findFunction(reloc.targetFunction) == nullptr) {
                    add(LintSeverity::Error, LintCode::BadRelocation, fn.name, block.label,
                        reloc.instIndex, "call to unknown function '" + reloc.targetFunction + "'");
                }
                break;
            case RelocKind::SharedLiteral: {
                if (op != Opcode::Ldl) {
                    add(LintSeverity::Error, LintCode::BadRelocation, fn.name, block.label,
                        reloc.instIndex,
                        "literal relocation on non-ldl " + std::string(mnemonic(op)));
                    break;
                }
                if (reloc.literalIndex >= fn.sharedLiteralPool.size()) {
                    add(LintSeverity::Error, LintCode::BadRelocation, fn.name, block.label,
                        reloc.instIndex, "shared literal index out of range");
                    break;
                }
                // Best case: blocks and pool laid out contiguously. Any legal
                // placement (BBR inserts gaps) only increases the distance.
                const std::uint32_t minReach = (block.sizeWords() - reloc.instIndex) +
                                               wordsAfterBlock + reloc.literalIndex;
                if (minReach > options_.literalReachWords) {
                    add(LintSeverity::Error, LintCode::LiteralOutOfReach, fn.name, block.label,
                        reloc.instIndex,
                        "shared pool slot is >= " + std::to_string(minReach) +
                            " words away for every legal placement (reach " +
                            std::to_string(options_.literalReachWords) +
                            "): run moveLiteralPools");
                }
                break;
            }
            case RelocKind::BlockLiteral: {
                if (op != Opcode::Ldl) {
                    add(LintSeverity::Error, LintCode::BadRelocation, fn.name, block.label,
                        reloc.instIndex,
                        "literal relocation on non-ldl " + std::string(mnemonic(op)));
                    break;
                }
                if (reloc.literalIndex >= block.literalPool.size()) {
                    add(LintSeverity::Error, LintCode::BadRelocation, fn.name, block.label,
                        reloc.instIndex, "block literal index out of range");
                    break;
                }
                const std::uint32_t reach =
                    static_cast<std::uint32_t>(block.insts.size()) - reloc.instIndex +
                    reloc.literalIndex;
                if (reach > options_.literalReachWords) {
                    add(LintSeverity::Error, LintCode::LiteralOutOfReach, fn.name, block.label,
                        reloc.instIndex,
                        "block literal is " + std::to_string(reach) +
                            " words away (reach " +
                            std::to_string(options_.literalReachWords) + ")");
                }
                break;
            }
        }
    }

    /// Relocation-tolerant successor scan (compiler/cfg.h's successorsOf
    /// asserts on malformed relocs; lint must not).
    [[nodiscard]] std::vector<std::uint32_t> successors(const Function& fn,
                                                        std::uint32_t blockIndex) const {
        const BasicBlock& block = fn.blocks[blockIndex];
        std::vector<std::uint32_t> out;
        for (std::size_t i = 0; i < block.insts.size(); ++i) {
            const Instruction& inst = block.insts[i];
            if (!isConditionalBranch(inst.op) && !isUnconditionalJump(inst)) continue;
            const Relocation* reloc = block.relocFor(static_cast<std::uint32_t>(i));
            if (reloc != nullptr && reloc->kind == RelocKind::BlockTarget &&
                reloc->targetBlock < fn.blocks.size()) {
                out.push_back(reloc->targetBlock);
            }
        }
        if (block.hasFallthrough() && blockIndex + 1 < fn.blocks.size()) {
            out.push_back(blockIndex + 1);
        }
        return out;
    }

    void lintReachability(const Function& fn) {
        std::vector<std::uint8_t> seen(fn.blocks.size(), 0);
        std::deque<std::uint32_t> queue{0};
        seen[0] = 1;
        while (!queue.empty()) {
            const std::uint32_t b = queue.front();
            queue.pop_front();
            for (const std::uint32_t next : successors(fn, b)) {
                if (!seen[next]) {
                    seen[next] = 1;
                    queue.push_back(next);
                }
            }
        }
        for (std::size_t b = 0; b < fn.blocks.size(); ++b) {
            if (seen[b]) continue;
            add(LintSeverity::Warning, LintCode::UnreachableBlock, fn.name,
                fn.blocks[b].label, 0,
                "block is unreachable from the function entry: " +
                    std::to_string(fn.blocks[b].sizeWords()) + " dead words");
        }
    }

    void lintCallGraph() {
        // A computed Jalr (rs1 != ra) may call anything: the call graph is
        // then unknowable and the check is skipped.
        for (const Function& fn : module_.functions) {
            for (const BasicBlock& block : fn.blocks) {
                for (const Instruction& inst : block.insts) {
                    if (isIndirectJump(inst)) return;
                }
            }
        }
        const Function* entry = module_.findFunction(module_.entryFunction);
        if (entry == nullptr) return;
        std::vector<std::uint8_t> seen(module_.functions.size(), 0);
        std::deque<const Function*> queue{entry};
        seen[static_cast<std::size_t>(entry - module_.functions.data())] = 1;
        while (!queue.empty()) {
            const Function* fn = queue.front();
            queue.pop_front();
            for (const BasicBlock& block : fn->blocks) {
                for (const Relocation& reloc : block.relocs) {
                    if (reloc.kind != RelocKind::FunctionTarget) continue;
                    const Function* callee = module_.findFunction(reloc.targetFunction);
                    if (callee == nullptr) continue;
                    const auto idx =
                        static_cast<std::size_t>(callee - module_.functions.data());
                    if (!seen[idx]) {
                        seen[idx] = 1;
                        queue.push_back(callee);
                    }
                }
            }
        }
        for (std::size_t f = 0; f < module_.functions.size(); ++f) {
            if (seen[f]) continue;
            add(LintSeverity::Warning, LintCode::UnreachableFunction,
                module_.functions[f].name, "", 0,
                "function is never called from '" + module_.entryFunction + "': " +
                    std::to_string(module_.functions[f].totalWords()) + " dead words");
        }
    }

    const Module& module_;
    const LintOptions& options_;
    std::vector<LintFinding> findings_;
};

} // namespace

std::vector<LintFinding> lintModule(const Module& module, const LintOptions& options) {
    return Linter(module, options).run();
}

bool hasLintErrors(const std::vector<LintFinding>& findings) noexcept {
    return std::any_of(findings.begin(), findings.end(), [](const LintFinding& finding) {
        return finding.severity == LintSeverity::Error;
    });
}

std::string formatFindings(const std::vector<LintFinding>& findings) {
    std::ostringstream out;
    for (const LintFinding& finding : findings) {
        out << (finding.severity == LintSeverity::Error ? "error: " : "warning: ");
        if (!finding.function.empty()) {
            out << finding.function;
            if (!finding.block.empty()) out << ':' << finding.block;
            out << ": ";
        }
        out << finding.message << '\n';
    }
    return out.str();
}

std::uint32_t maxPlaceableBlockWords(const FaultMap& map) {
    return map.largestPlaceableChunkWords();
}

} // namespace voltcache::analysis
