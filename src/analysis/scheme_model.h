// Closed-form FFW / BBR yield models (the analytic counterpart of the Monte
// Carlo sweep, paper Sections IV-V).
//
// Under the iid Bernoulli word-failure model every distribution the sweep
// estimates by sampling is derivable exactly:
//
//   * FFW (Section IV-A): a frame's fault-free window size is the number of
//     fault-free word entries, Binomial(wordsPerLine, 1 - pWord). The
//     per-frame window histogram, its mean, and the exact L1D yield at any
//     minimum-window requirement follow in closed form.
//
//   * BBR (Section IV-B2): Algorithm 1's first-fit scan covers every
//     circular start position and never skips a valid one (each restart
//     jumps just past a defective word, and any skipped candidate window
//     would contain that word), and its scan budget of cacheWords + size
//     words cannot expire before the first valid start is reached. Placement
//     of a `size`-word section therefore succeeds *exactly* when the fault
//     map has a circular fault-free run of >= size words — computed here by
//     an O(cacheWords * size) conditioning DP over run lengths, bracketed by
//     two independently-provable bounds (a capacity/union upper bound and a
//     disjoint-window lower bound) that the enumeration tests sandwich.
//
// These models are the statistical oracle the sweep cross-check
// (analysis/crosscheck.h) gates every Monte Carlo run against, and the
// reference the ROADMAP's pluggable fault-model work must reproduce at the
// iid point.
#pragma once

#include <array>
#include <cstdint>
#include <vector>

#include "core/forensics.h"
#include "faults/failure_model.h"
#include "faults/fault_map.h"
#include "isa/module.h"

namespace voltcache::analysis {

/// Exact Binomial(n, p) pmf, index k == P(X = k). Computed by stable ratio
/// recursion from the log-space endpoint, so tiny p (760mV word-failure
/// rates ~ 1e-7) keeps full precision.
[[nodiscard]] std::vector<double> binomialPmf(unsigned n, double p);

/// P(Binomial(n, p) >= k). Sums the smaller tail and complements when that
/// is the cheaper side.
[[nodiscard]] double binomialTailAtLeast(unsigned n, double p, unsigned k);

/// Closed-form FFW D-cache model at one operating point: the distribution
/// of per-frame fault-free window sizes and the exact cache yield under a
/// minimum-window requirement.
class FfwModel {
public:
    FfwModel(double pWord, std::uint32_t lines, std::uint32_t wordsPerLine);

    /// Model at a voltage: pWord = pFailStructure(v, bitsPerWord).
    [[nodiscard]] static FfwModel at(const FailureModel& model, Voltage v,
                                     std::uint32_t lines, std::uint32_t wordsPerLine,
                                     unsigned bitsPerWord = 32);

    [[nodiscard]] double pWord() const noexcept { return pWord_; }
    [[nodiscard]] std::uint32_t lines() const noexcept { return lines_; }
    [[nodiscard]] std::uint32_t wordsPerLine() const noexcept { return wordsPerLine_; }

    /// P(window size == k), k in [0, wordsPerLine]: the window of a frame is
    /// its fault-free entries, so the size is Binomial(wordsPerLine, 1-pWord).
    [[nodiscard]] const std::vector<double>& windowPmf() const noexcept { return pmf_; }

    /// Expected number of frames with window == k across `maps` independent
    /// fault maps (the analytic prediction for the forensics histogram).
    [[nodiscard]] double expectedWindowCount(unsigned k, std::uint64_t maps) const;

    [[nodiscard]] double meanWindowWords() const noexcept;

    /// Exact L1D yield: P(every frame keeps a window of >= minWindow words).
    /// minWindow = 1 is "every line stores something"; minWindow =
    /// wordsPerLine degenerates to the conventional all-words-good yield.
    [[nodiscard]] double yield(std::uint32_t minWindow) const;

private:
    double pWord_;
    std::uint32_t lines_;
    std::uint32_t wordsPerLine_;
    std::vector<double> pmf_;
};

/// Closed-form BBR I-cache model at one operating point: the fault-free
/// chunk-length distribution of the flat cache word array and the exact /
/// bounded probability that Algorithm 1 places a section of a given size.
class BbrModel {
public:
    BbrModel(double pWord, std::uint32_t cacheWords);

    [[nodiscard]] static BbrModel at(const FailureModel& model, Voltage v,
                                     std::uint32_t cacheWords,
                                     unsigned bitsPerWord = 32);

    [[nodiscard]] double pWord() const noexcept { return pWord_; }
    [[nodiscard]] std::uint32_t cacheWords() const noexcept { return cacheWords_; }

    /// E[number of *maximal* linear fault-free runs of exactly `length`
    /// words] per fault map — the distribution FaultMap::faultFreeChunks()
    /// (and the sweep's bbrChunkWords forensics) samples. For L < N the two
    /// border positions contribute q^L p each and the N-L-1 interior
    /// positions p q^L p; the whole-array run contributes q^N at L == N.
    [[nodiscard]] double expectedChunkCount(std::uint32_t length) const;

    /// Per-map expected chunk histogram in the forensics log2 bucketing.
    [[nodiscard]] std::array<double, kForensicsLog2Buckets>
    expectedChunkLog2Histogram() const;

    /// E[total maximal chunks] per map (sum of expectedChunkCount over L).
    [[nodiscard]] double expectedTotalChunks() const;

    /// Exact P(Algorithm 1 places a `needWords`-word section) == P(the map
    /// has a circular fault-free run >= needWords), by conditioning on the
    /// position of the first defective word and running a trailing-run DP
    /// over the remaining linear suffix. O(cacheWords * needWords).
    [[nodiscard]] double placementSuccessExact(std::uint32_t needWords) const;

    /// Provable upper bound: success needs >= needWords fault-free words in
    /// total (capacity argument) and is union-bounded by N q^B over the N
    /// circular start positions. Returns the tighter of the two.
    [[nodiscard]] double placementSuccessUpper(std::uint32_t needWords) const;

    /// Provable lower bound: partition the circle into floor(N/B) disjoint
    /// aligned windows; a fully clean window is a valid placement (greedy
    /// matching), so success >= 1 - (1 - q^B)^floor(N/B).
    [[nodiscard]] double placementSuccessLower(std::uint32_t needWords) const;

private:
    double pWord_;
    std::uint32_t cacheWords_;
};

/// The largest contiguous section Algorithm 1 must place for this module:
/// the maximum over every basic block's sizeWords() and every non-empty
/// shared literal pool (pools are placed as sections too; LinkStats'
/// largestBlockWords excludes them). Placement of the whole module succeeds
/// exactly when a circular fault-free run of this many words exists.
[[nodiscard]] std::uint32_t modulePlacementNeedWords(const Module& module);

/// Whether Algorithm 1 can place a `needWords`-word section against this
/// map: needWords <= largest circular fault-free run. The per-map oracle the
/// enumeration tests check the probabilistic model against.
[[nodiscard]] bool placementFeasible(const FaultMap& icacheMap, std::uint32_t needWords);

} // namespace voltcache::analysis
