#include "analysis/crosscheck.h"

#include <algorithm>
#include <cmath>
#include <cstdio>

#include "common/contracts.h"

namespace voltcache::analysis {

namespace {

/// z cap where two-sided p-values underflow double precision.
constexpr double kMaxZ = 40.0;

/// Distinct chips behind `legs` accumulated legs when each chip's map is
/// shared by up to `benchmarks` legs. Clamped to [1, trials]: link failures
/// can make the per-chip leg count fractional, and a cell never holds more
/// distinct chips than the sweep drew.
std::uint64_t effectiveChips(std::uint64_t legs, std::uint32_t benchmarks,
                             std::uint32_t trials) {
    const std::uint64_t divisor = std::max<std::uint32_t>(benchmarks, 1);
    const std::uint64_t chips = (legs + divisor - 1) / divisor;
    return std::clamp<std::uint64_t>(chips, 1,
                                     std::max<std::uint32_t>(trials, 1));
}

} // namespace

double normalQuantile(double p) {
    VC_EXPECTS(p > 0.0 && p < 1.0);
    // Acklam's rational approximation, three regions.
    static constexpr double a[] = {-3.969683028665376e+01, 2.209460984245205e+02,
                                   -2.759285104469687e+02, 1.383577518672690e+02,
                                   -3.066479806614716e+01, 2.506628277459239e+00};
    static constexpr double b[] = {-5.447609879822406e+01, 1.615858368580409e+02,
                                   -1.556989798598866e+02, 6.680131188771972e+01,
                                   -1.328068155288572e+01};
    static constexpr double c[] = {-7.784894002430293e-03, -3.223964580411365e-01,
                                   -2.400758277161838e+00, -2.549732539343734e+00,
                                   4.374664141464968e+00,  2.938163982698783e+00};
    static constexpr double d[] = {7.784695709041462e-03, 3.224671290700398e-01,
                                   2.445134137142996e+00, 3.754408661907416e+00};
    constexpr double pLow = 0.02425;
    if (p < pLow) {
        const double t = std::sqrt(-2.0 * std::log(p));
        return (((((c[0] * t + c[1]) * t + c[2]) * t + c[3]) * t + c[4]) * t + c[5]) /
               ((((d[0] * t + d[1]) * t + d[2]) * t + d[3]) * t + 1.0);
    }
    if (p > 1.0 - pLow) {
        const double t = std::sqrt(-2.0 * std::log1p(-p));
        return -(((((c[0] * t + c[1]) * t + c[2]) * t + c[3]) * t + c[4]) * t + c[5]) /
               ((((d[0] * t + d[1]) * t + d[2]) * t + d[3]) * t + 1.0);
    }
    const double t = p - 0.5;
    const double r = t * t;
    return (((((a[0] * r + a[1]) * r + a[2]) * r + a[3]) * r + a[4]) * r + a[5]) * t /
           (((((b[0] * r + b[1]) * r + b[2]) * r + b[3]) * r + b[4]) * r + 1.0);
}

double chiSquareToZ(double chiSquare, std::uint32_t df) {
    VC_EXPECTS(df >= 1);
    VC_EXPECTS(chiSquare >= 0.0);
    // Wilson–Hilferty: (X²/k)^(1/3) is approximately normal with mean
    // 1 - 2/(9k) and variance 2/(9k).
    const double k = static_cast<double>(df);
    const double variance = 2.0 / (9.0 * k);
    const double z =
        (std::cbrt(chiSquare / k) - (1.0 - variance)) / std::sqrt(variance);
    return std::min(z, kMaxZ);
}

double binomialTwoSidedZ(std::uint32_t n, std::uint32_t k, double p) {
    VC_EXPECTS(k <= n);
    VC_EXPECTS(p >= 0.0 && p <= 1.0);
    if (n == 0) return 0.0;
    const std::vector<double> pmf = binomialPmf(n, p);
    double lowTail = 0.0;
    for (std::uint32_t i = 0; i <= k; ++i) lowTail += pmf[i];
    double highTail = 0.0;
    for (std::uint32_t i = k; i <= n; ++i) highTail += pmf[i];
    const double pValue = std::min(1.0, 2.0 * std::min(lowTail, highTail));
    if (pValue <= 0.0) return kMaxZ;
    if (pValue >= 1.0) return 0.0;
    return std::min(-normalQuantile(pValue / 2.0), kMaxZ);
}

namespace {

/// Chi-square of observed counts against expected counts, merging adjacent
/// buckets (low index upward) until each merged group carries at least
/// `minExpected`. Returns false when fewer than two groups survive.
bool mergedChiSquare(const std::vector<double>& observed,
                     const std::vector<double>& expected, double minExpected,
                     double* chiSquare, std::uint32_t* df) {
    VC_EXPECTS(observed.size() == expected.size());
    std::vector<std::pair<double, double>> groups; // (obs, exp)
    double obsAcc = 0.0;
    double expAcc = 0.0;
    for (std::size_t i = 0; i < observed.size(); ++i) {
        obsAcc += observed[i];
        expAcc += expected[i];
        if (expAcc >= minExpected) {
            groups.emplace_back(obsAcc, expAcc);
            obsAcc = 0.0;
            expAcc = 0.0;
        }
    }
    if (expAcc > 0.0 || obsAcc > 0.0) {
        if (!groups.empty()) {
            groups.back().first += obsAcc;
            groups.back().second += expAcc;
        } else {
            groups.emplace_back(obsAcc, expAcc);
        }
    }
    if (groups.size() < 2) return false;
    double stat = 0.0;
    for (const auto& [obs, exp] : groups) {
        const double delta = obs - exp;
        stat += delta * delta / exp;
    }
    *chiSquare = stat;
    *df = static_cast<std::uint32_t>(groups.size() - 1);
    return true;
}

void checkFfwWindows(const CellSample& cell, const CrosscheckConfig& config,
                     std::vector<CheckOutcome>& out) {
    const CellForensics& f = cell.forensics;
    CheckOutcome check;
    check.name = "ffw-window";
    check.scheme = std::string(schemeName(cell.scheme));
    check.mv = cell.mv;
    check.threshold = config.zThreshold;

    const FfwModel model = FfwModel::at(
        config.model, Voltage::fromMillivolts(cell.mv), config.lines,
        config.wordsPerLine, config.bitsPerWord);

    double totalObserved = 0.0;
    for (const std::uint64_t count : f.ffwWindowSize) {
        totalObserved += static_cast<double>(count);
    }
    if (totalObserved <= 0.0) {
        check.skipped = true;
        check.note = "no window observations";
        out.push_back(check);
        return;
    }
    // Rescale the (duplicated) leg-level histogram to the distinct chips
    // actually drawn: the per-chip histogram is repeated once per benchmark.
    const std::uint64_t chips =
        effectiveChips(f.ffwLegs, config.benchmarks, config.trials);
    const double effN = static_cast<double>(chips) * config.lines;
    const double scale = effN / totalObserved;
    const std::size_t buckets =
        std::min<std::size_t>(f.ffwWindowSize.size(),
                              static_cast<std::size_t>(config.wordsPerLine) + 1);
    std::vector<double> observed(buckets, 0.0);
    std::vector<double> expected(buckets, 0.0);
    double meanObserved = 0.0;
    for (std::size_t k = 0; k < buckets; ++k) {
        observed[k] = static_cast<double>(f.ffwWindowSize[k]) * scale;
        expected[k] = model.expectedWindowCount(static_cast<unsigned>(k), chips);
        meanObserved += static_cast<double>(k) * observed[k];
    }
    check.expected = model.meanWindowWords();
    check.observed = meanObserved / effN;
    check.samples = static_cast<std::uint64_t>(effN);

    double chiSquare = 0.0;
    std::uint32_t df = 0;
    if (!mergedChiSquare(observed, expected, config.minExpectedPerBucket,
                         &chiSquare, &df)) {
        check.skipped = true;
        check.note = "too few samples for a chi-square";
        out.push_back(check);
        return;
    }
    check.statistic = chiSquareToZ(chiSquare, df);
    char note[64];
    std::snprintf(note, sizeof(note), "chi2=%.2f df=%u", chiSquare, df);
    check.note = note;
    out.push_back(check);
}

void checkBbrChunks(const CellSample& cell, const CrosscheckConfig& config,
                    std::vector<CheckOutcome>& out) {
    const CellForensics& f = cell.forensics;
    CheckOutcome check;
    check.name = "bbr-chunks";
    check.scheme = std::string(schemeName(cell.scheme));
    check.mv = cell.mv;
    check.threshold = config.zThreshold;

    std::uint64_t linkFailures = 0;
    for (const PlacementSample& placement : cell.placements) {
        linkFailures += placement.linkFailures;
    }
    if (linkFailures > 0) {
        // Chunk histograms are harvested only from legs that linked, so with
        // failures present the surviving maps are a biased (placeable-only)
        // sample of the generator's output.
        check.skipped = true;
        check.note = "selection bias: cell has link failures";
        out.push_back(check);
        return;
    }
    double totalObserved = 0.0;
    for (const std::uint64_t count : f.bbrChunkWords) {
        totalObserved += static_cast<double>(count);
    }
    if (totalObserved <= 0.0 || f.bbrLegs == 0) {
        check.skipped = true;
        check.note = "no chunk observations";
        out.push_back(check);
        return;
    }

    const BbrModel model = BbrModel::at(
        config.model, Voltage::fromMillivolts(cell.mv),
        config.lines * config.wordsPerLine, config.bitsPerWord);
    const std::uint64_t chips =
        effectiveChips(f.bbrLegs, config.benchmarks, config.trials);
    const double scale =
        static_cast<double>(chips) / static_cast<double>(f.bbrLegs);
    const std::array<double, kForensicsLog2Buckets> perMap =
        model.expectedChunkLog2Histogram();

    // Per-bucket z under a Poisson variance approximation, plus the total
    // count; gate on the worst bucket with enough expected mass.
    double worstZ = 0.0;
    double expectedTotal = 0.0;
    double observedTotal = 0.0;
    std::uint32_t tested = 0;
    for (std::size_t b = 0; b < kForensicsLog2Buckets; ++b) {
        const double expectedCount = perMap[b] * static_cast<double>(chips);
        const double observedCount =
            static_cast<double>(f.bbrChunkWords[b]) * scale;
        expectedTotal += expectedCount;
        observedTotal += observedCount;
        if (expectedCount < config.minExpectedPerBucket) continue;
        ++tested;
        const double z =
            std::abs(observedCount - expectedCount) / std::sqrt(expectedCount);
        worstZ = std::max(worstZ, z);
    }
    if (expectedTotal >= config.minExpectedPerBucket) {
        ++tested;
        worstZ = std::max(worstZ, std::abs(observedTotal - expectedTotal) /
                                      std::sqrt(expectedTotal));
    }
    if (tested == 0) {
        check.skipped = true;
        check.note = "too few samples for a count test";
        out.push_back(check);
        return;
    }
    check.statistic = std::min(worstZ, kMaxZ);
    check.expected = expectedTotal;
    check.observed = observedTotal;
    check.samples = chips;
    char note[64];
    std::snprintf(note, sizeof(note), "%u bucket tests (Poisson approx)", tested);
    check.note = note;
    out.push_back(check);
}

void checkBbrYield(const CellSample& cell, const CrosscheckConfig& config,
                   std::vector<CheckOutcome>& out) {
    const BbrModel model = BbrModel::at(
        config.model, Voltage::fromMillivolts(cell.mv),
        config.lines * config.wordsPerLine, config.bitsPerWord);
    for (const PlacementSample& placement : cell.placements) {
        CheckOutcome check;
        check.name = "bbr-yield/" + placement.benchmark;
        check.scheme = std::string(schemeName(cell.scheme));
        check.mv = cell.mv;
        check.threshold = config.zThreshold;
        if (placement.chips == 0) {
            check.skipped = true;
            check.note = "no chips evaluated";
            out.push_back(check);
            continue;
        }
        const double pFail =
            1.0 - model.placementSuccessExact(placement.needWords);
        check.expected = pFail;
        check.observed = static_cast<double>(placement.linkFailures) /
                         static_cast<double>(placement.chips);
        check.samples = placement.chips;
        check.statistic =
            binomialTwoSidedZ(placement.chips, placement.linkFailures, pFail);
        char note[64];
        std::snprintf(note, sizeof(note), "need=%u words, %u/%u failed",
                      placement.needWords, placement.linkFailures,
                      placement.chips);
        check.note = note;
        out.push_back(check);
    }
}

} // namespace

double CrosscheckReport::maxZ() const noexcept {
    double worst = 0.0;
    for (const CheckOutcome& check : checks) {
        if (!check.skipped) worst = std::max(worst, check.statistic);
    }
    return worst;
}

bool CrosscheckReport::passed() const noexcept {
    return std::all_of(checks.begin(), checks.end(),
                       [](const CheckOutcome& check) { return check.passed(); });
}

std::size_t CrosscheckReport::skippedCount() const noexcept {
    return static_cast<std::size_t>(
        std::count_if(checks.begin(), checks.end(),
                      [](const CheckOutcome& check) { return check.skipped; }));
}

CrosscheckReport crosscheckCells(const std::vector<CellSample>& cells,
                                 const CrosscheckConfig& config) {
    CrosscheckReport report;
    for (const CellSample& cell : cells) {
        if (cell.hasForensics && cell.forensics.ffwLegs > 0) {
            checkFfwWindows(cell, config, report.checks);
        }
        if (cell.hasForensics && cell.forensics.bbrLegs > 0) {
            checkBbrChunks(cell, config, report.checks);
        }
        checkBbrYield(cell, config, report.checks);
    }
    return report;
}

void writeJson(JsonWriter& json, const CrosscheckReport& report) {
    json.beginObject();
    json.member("maxZ", report.maxZ());
    json.member("passed", report.passed());
    json.member("skipped", static_cast<std::uint64_t>(report.skippedCount()));
    json.key("checks");
    json.beginArray();
    for (const CheckOutcome& check : report.checks) {
        json.beginObject();
        json.member("name", check.name);
        json.member("scheme", check.scheme);
        json.member("mv", static_cast<std::int64_t>(check.mv));
        json.member("z", check.statistic);
        json.member("threshold", check.threshold);
        json.member("expected", check.expected);
        json.member("observed", check.observed);
        json.member("samples", check.samples);
        json.member("skipped", check.skipped);
        json.member("note", check.note);
        json.endObject();
    }
    json.endArray();
    json.endObject();
}

std::string formatReport(const CrosscheckReport& report) {
    std::string text;
    char line[256];
    for (const CheckOutcome& check : report.checks) {
        if (check.skipped) {
            std::snprintf(line, sizeof(line), "  SKIP %-22s %-12s %4dmV  (%s)\n",
                          check.name.c_str(), check.scheme.c_str(), check.mv,
                          check.note.c_str());
        } else {
            std::snprintf(line, sizeof(line),
                          "  %s %-22s %-12s %4dmV  z=%6.2f  expected %.6g  "
                          "observed %.6g  n=%llu  %s\n",
                          check.passed() ? "ok  " : "FAIL", check.name.c_str(),
                          check.scheme.c_str(), check.mv, check.statistic,
                          check.expected, check.observed,
                          static_cast<unsigned long long>(check.samples),
                          check.note.c_str());
        }
        text += line;
    }
    std::snprintf(line, sizeof(line),
                  "analytic cross-check: %zu checks, %zu skipped, max z = %.2f -> %s\n",
                  report.checks.size(), report.skippedCount(), report.maxZ(),
                  report.passed() ? "PASS" : "FAIL");
    text += line;
    return text;
}

} // namespace voltcache::analysis
