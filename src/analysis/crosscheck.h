// CI-aware statistical cross-check of a Monte Carlo sweep against the
// closed-form scheme models (analysis/scheme_model.h).
//
// Every sweep cell carries forensic histograms (FFW window sizes, BBR
// fault-free chunk lengths) and per-benchmark link outcomes; under the iid
// Bernoulli fault model each has an exact analytic prediction. This module
// compares the two with tests sized to the number of *distinct chips*
// (trials) — the sweep shares one fault-map pair per (point, trial) across
// benchmarks and schemes, so leg-level counts duplicate observations — and
// converts each to a z-equivalent statistic:
//
//   * FFW window histogram: chi-square against the Binomial pmf, low-mass
//     buckets merged, Wilson–Hilferty chi-square -> z conversion;
//   * BBR chunk histogram: per-log2-bucket z with Poisson variance (maximal
//     runs are sums of short-range-dependent indicators, so Poisson is a
//     variance approximation, not exact — hence the generous default gate);
//   * BBR yield: exact two-sided Binomial test of the per-benchmark link
//     failure count against 1 - placementSuccessExact(needWords).
//
// The default threshold (z = 6, ~1e-9 two-sided) is deliberately loose: the
// oracle exists to catch gross RNG / bit-packing / fault-map corruption —
// the failure mode the bit-packed map and geometric gap-skipping generator
// could harbor silently — without ever tripping on sampling noise. Checks
// with a known selection bias (BBR chunk histograms when some legs failed to
// link: forensics are only harvested from linkable maps) are reported as
// skipped rather than tested against a biased sample.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "analysis/scheme_model.h"
#include "common/json.h"
#include "core/forensics.h"
#include "schemes/scheme.h"

namespace voltcache::analysis {

/// Phi^{-1}: standard normal quantile (Acklam's rational approximation,
/// |error| < 1.2e-9 over (0, 1)).
[[nodiscard]] double normalQuantile(double p);

/// Wilson–Hilferty z-equivalent of a chi-square statistic with df >= 1.
[[nodiscard]] double chiSquareToZ(double chiSquare, std::uint32_t df);

/// z-equivalent of the exact two-sided Binomial test of k successes in n
/// trials at success probability p (doubled smaller tail, capped at z = 40
/// where the p-value underflows).
[[nodiscard]] double binomialTwoSidedZ(std::uint32_t n, std::uint32_t k, double p);

/// One comparison between an MC estimate and its analytic prediction.
struct CheckOutcome {
    std::string name;    ///< e.g. "ffw-window", "bbr-yield/crc32"
    std::string scheme;
    int mv = 0;
    double statistic = 0.0; ///< z-equivalent (0 when skipped)
    double threshold = 0.0;
    double expected = 0.0;  ///< headline analytic value (mean / probability)
    double observed = 0.0;  ///< headline MC value
    std::uint64_t samples = 0; ///< effective sample size the test was sized to
    bool skipped = false;
    std::string note;

    [[nodiscard]] bool passed() const noexcept {
        return skipped || statistic <= threshold;
    }
};

/// Per-benchmark BBR placement outcome for one (scheme, voltage) cell.
struct PlacementSample {
    std::string benchmark;
    std::uint32_t needWords = 0;    ///< modulePlacementNeedWords of the BBR twin
    std::uint32_t chips = 0;        ///< distinct chips evaluated (runs + failures)
    std::uint32_t linkFailures = 0;
};

/// Everything the cross-check needs about one sweep cell. Plain data so the
/// analysis layer stays independent of core's sweep machinery.
struct CellSample {
    SchemeKind scheme = SchemeKind::FfwBbr;
    int mv = 0;
    bool hasForensics = false;
    CellForensics forensics;
    std::vector<PlacementSample> placements;
};

struct CrosscheckConfig {
    FailureModel model;           ///< the analytic truth (never the corrupted one)
    std::uint32_t lines = 1024;
    std::uint32_t wordsPerLine = 8;
    unsigned bitsPerWord = 32;
    std::uint32_t trials = 0;     ///< distinct chips per operating point
    std::uint32_t benchmarks = 1; ///< legs per chip sharing one fault map
    double zThreshold = 6.0;
    /// Minimum expected count per chi-square bucket before merging.
    double minExpectedPerBucket = 5.0;
};

struct CrosscheckReport {
    std::vector<CheckOutcome> checks;

    /// Largest z over the non-skipped checks (0 when none ran).
    [[nodiscard]] double maxZ() const noexcept;
    [[nodiscard]] bool passed() const noexcept;
    [[nodiscard]] std::size_t skippedCount() const noexcept;
};

/// Run every applicable check over the given cells.
[[nodiscard]] CrosscheckReport crosscheckCells(const std::vector<CellSample>& cells,
                                               const CrosscheckConfig& config);

/// JSON rendering: {"threshold","maxZ","passed","checks":[...]}.
void writeJson(JsonWriter& json, const CrosscheckReport& report);

/// Human-readable table of the report (one line per check).
[[nodiscard]] std::string formatReport(const CrosscheckReport& report);

} // namespace voltcache::analysis
