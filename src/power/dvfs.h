// DVFS operating points (paper Table II).
//
// DVFS applies to the core logic and both L1 caches. The L2 sits on a
// separate fixed voltage rail but is frequency-scaled with the core, so L2
// latency in core cycles is constant across operating points while L2
// energy per access is not voltage-scaled.
#pragma once

#include <span>

#include "common/units.h"
#include "faults/failure_model.h"

namespace voltcache {

/// One row of Table II.
struct OperatingPoint {
    Voltage voltage;
    Frequency frequency;
    double pFailBit = 0.0; ///< per-bit 6T failure probability at this point
};

class DvfsTable {
public:
    /// All six operating points of Table II, highest voltage first.
    [[nodiscard]] static std::span<const OperatingPoint> paperPoints() noexcept;

    /// The five low-voltage points the evaluation sweeps (560..400mV).
    [[nodiscard]] static std::span<const OperatingPoint> lowVoltagePoints() noexcept;

    /// The conventional cache's operating point (Vccmin = 760mV): the
    /// normalization baseline for Fig. 12.
    [[nodiscard]] static const OperatingPoint& vccminBaseline() noexcept;

    /// Operating point for a voltage (matches a Table II row within 0.5mV).
    /// Throws std::out_of_range for unsupported voltages.
    [[nodiscard]] static const OperatingPoint& at(Voltage v);
};

} // namespace voltcache
