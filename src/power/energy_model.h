// McPAT-lite processor energy model (paper Sections V, VI-C).
//
// Scaling rules are the paper's stated assumptions:
//   * dynamic power scales quadratically with supply voltage and linearly
//     with frequency  =>  dynamic energy per event scales with V^2,
//   * static power scales linearly with supply voltage,
//   * the L2 is on a fixed voltage rail (frequency-synchronized), so its
//     per-access energy and static power do NOT voltage-scale — this is why
//     extra L1->L2 traffic becomes so expensive at low voltage.
//
// Reference per-event energies are 45nm-plausible values for an ARM
// Cortex-A9-class 2-way superscalar at the paper's 760mV/1607MHz baseline;
// the static fraction (~6% of baseline EPI) is calibrated so the defect-free
// EPI curve and the paper's headline numbers (64% reduction for FFW+BBR vs
// 62% for 8T at 400mV) land in the published range.
#pragma once

#include "power/dvfs.h"

namespace voltcache {

/// Event counts accumulated over one simulation, the interface between the
/// timing simulator and the energy model.
struct ActivityCounts {
    std::uint64_t instructions = 0;
    std::uint64_t cycles = 0;
    std::uint64_t l1iAccesses = 0;
    std::uint64_t l1dAccesses = 0;     ///< loads + stores presented to the L1D
    std::uint64_t l2Accesses = 0;      ///< demand fills + word misses (Fig. 11 metric)
    std::uint64_t l2WriteThroughs = 0; ///< store traffic of the write-through L1D
    std::uint64_t dramAccesses = 0;
    std::uint64_t auxAccesses = 0;     ///< scheme side-structure probes (FBA/IDC/FFW remap)
};

/// Reference (760mV, 1607MHz) energy parameters. Units: joules / watts.
struct EnergyParams {
    double coreDynamicPerInstr = 100e-12; ///< pipeline+RF+ALU energy per instruction
    double l1AccessEnergy = 20e-12;       ///< per L1 read/write (either cache; CACTI-
                                          ///< class 32KB/4-way read energy at 45nm)
    double l2AccessEnergy = 60e-12;       ///< per demand L2 read (fixed rail — no V scaling)
    double l2WriteEnergy = 20e-12;        ///< per write-through word (combining buffer
                                          ///< drains bursts; no tag/way read needed)
    double dramAccessEnergy = 2000e-12;   ///< per off-chip access
    double auxAccessEnergy = 1e-12;       ///< per fault-scheme side-structure probe
    double coreL1StaticPower = 4e-3;      ///< core + both L1s, at the reference voltage
    double l2StaticPower = 1e-3;          ///< fixed-rail L2 leakage

    /// The voltage the dynamic/static reference values are quoted at.
    Voltage referenceVoltage = Voltage::fromMillivolts(760);
};

/// Energy of one simulation, split by component (joules).
struct EnergyBreakdown {
    double coreDynamic = 0.0;
    double l1Dynamic = 0.0;
    double l2Dynamic = 0.0;
    double dramDynamic = 0.0;
    double auxDynamic = 0.0;
    double coreL1Static = 0.0;
    double l2Static = 0.0;

    [[nodiscard]] double total() const noexcept {
        return coreDynamic + l1Dynamic + l2Dynamic + dramDynamic + auxDynamic + coreL1Static +
               l2Static;
    }
};

class EnergyModel {
public:
    explicit EnergyModel(EnergyParams params = {}) noexcept : params_(params) {}

    /// Total energy of a run at operating point `op`.
    /// `l1StaticFactor` is the scheme's Table III static-power multiplier
    /// applied to the L1 share of the core+L1 leakage; `l1DynamicFactor`
    /// scales L1 access energy for schemes with larger read paths.
    [[nodiscard]] EnergyBreakdown energyOf(const ActivityCounts& activity,
                                           const OperatingPoint& op,
                                           double l1StaticFactor = 1.0,
                                           double l1DynamicFactor = 1.0) const;

    /// Energy per instruction (joules/instruction).
    [[nodiscard]] double epi(const ActivityCounts& activity, const OperatingPoint& op,
                             double l1StaticFactor = 1.0,
                             double l1DynamicFactor = 1.0) const;

    [[nodiscard]] const EnergyParams& params() const noexcept { return params_; }

    /// Fraction of coreL1StaticPower attributed to the two L1s (the part a
    /// scheme's Table III static multiplier applies to).
    static constexpr double kL1StaticShare = 0.35;

private:
    EnergyParams params_;
};

} // namespace voltcache
