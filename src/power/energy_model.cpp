#include "power/energy_model.h"

#include "common/contracts.h"

namespace voltcache {

EnergyBreakdown EnergyModel::energyOf(const ActivityCounts& activity, const OperatingPoint& op,
                                      double l1StaticFactor, double l1DynamicFactor) const {
    VC_EXPECTS(activity.instructions > 0);
    VC_EXPECTS(l1StaticFactor > 0.0 && l1DynamicFactor > 0.0);

    const double vRatio = op.voltage.volts() / params_.referenceVoltage.volts();
    const double dynScale = vRatio * vRatio; // energy per event ∝ V^2
    const double runtimeSeconds =
        static_cast<double>(activity.cycles) * op.frequency.periodSeconds();

    EnergyBreakdown e;
    e.coreDynamic = params_.coreDynamicPerInstr * dynScale *
                    static_cast<double>(activity.instructions);
    e.l1Dynamic = params_.l1AccessEnergy * l1DynamicFactor * dynScale *
                  static_cast<double>(activity.l1iAccesses + activity.l1dAccesses);
    // L2 sits on a fixed rail: per-access energy does not scale with the
    // core voltage — which is what makes extra L1->L2 traffic so costly at
    // low voltage (paper Section VI-C).
    e.l2Dynamic = params_.l2AccessEnergy * static_cast<double>(activity.l2Accesses) +
                  params_.l2WriteEnergy * static_cast<double>(activity.l2WriteThroughs);
    e.dramDynamic = params_.dramAccessEnergy * static_cast<double>(activity.dramAccesses);
    e.auxDynamic =
        params_.auxAccessEnergy * dynScale * static_cast<double>(activity.auxAccesses);

    // Static: core+L1 on the scaled rail (∝ V), L2 on the fixed rail.
    const double corePart = params_.coreL1StaticPower * (1.0 - kL1StaticShare);
    const double l1Part = params_.coreL1StaticPower * kL1StaticShare * l1StaticFactor;
    e.coreL1Static = (corePart + l1Part) * vRatio * runtimeSeconds;
    e.l2Static = params_.l2StaticPower * runtimeSeconds;
    return e;
}

double EnergyModel::epi(const ActivityCounts& activity, const OperatingPoint& op,
                        double l1StaticFactor, double l1DynamicFactor) const {
    return energyOf(activity, op, l1StaticFactor, l1DynamicFactor).total() /
           static_cast<double>(activity.instructions);
}

} // namespace voltcache
