#include "power/dvfs.h"

#include <array>
#include <cmath>
#include <stdexcept>

namespace voltcache {

namespace {

using voltcache::literals::operator""_mV;

// Table II verbatim. P_fail values are the per-bit probabilities the
// FailureModel reproduces at these voltages: 0 (effectively), 1e-4, 1e-3.5,
// 1e-3, 1e-2.5, 1e-2.
const std::array<OperatingPoint, 6> kPoints = {{
    {760_mV, Frequency::fromMegahertz(1607), 3.8160e-9},
    {560_mV, Frequency::fromMegahertz(1089), 1e-4},
    {520_mV, Frequency::fromMegahertz(958), std::pow(10.0, -3.5)},
    {480_mV, Frequency::fromMegahertz(818), 1e-3},
    {440_mV, Frequency::fromMegahertz(638), std::pow(10.0, -2.5)},
    {400_mV, Frequency::fromMegahertz(475), 1e-2},
}};

} // namespace

std::span<const OperatingPoint> DvfsTable::paperPoints() noexcept { return kPoints; }

std::span<const OperatingPoint> DvfsTable::lowVoltagePoints() noexcept {
    return std::span<const OperatingPoint>(kPoints).subspan(1);
}

const OperatingPoint& DvfsTable::vccminBaseline() noexcept { return kPoints.front(); }

const OperatingPoint& DvfsTable::at(Voltage v) {
    for (const auto& point : kPoints) {
        if (std::abs(point.voltage.millivolts() - v.millivolts()) < 0.5) return point;
    }
    throw std::out_of_range("DvfsTable::at: voltage is not a Table II operating point");
}

} // namespace voltcache
