#include "compiler/passes.h"

#include <algorithm>
#include <stdexcept>
#include <vector>

#include "common/contracts.h"
#include "compiler/cfg.h"
#include "isa/builder.h"

namespace voltcache {

TransformStats& TransformStats::operator+=(const TransformStats& other) noexcept {
    jumpsInserted += other.jumpsInserted;
    blocksBroken += other.blocksBroken;
    piecesCreated += other.piecesCreated;
    literalsMoved += other.literalsMoved;
    return *this;
}

TransformStats insertFallthroughJumps(Module& module) {
    TransformStats stats;
    for (auto& fn : module.functions) {
        for (std::size_t b = 0; b < fn.blocks.size(); ++b) {
            auto& block = fn.blocks[b];
            if (!block.hasFallthrough()) continue;
            if (b + 1 == fn.blocks.size()) {
                throw std::invalid_argument("function '" + fn.name +
                                            "' falls through past its last block");
            }
            Relocation reloc;
            reloc.instIndex = static_cast<std::uint32_t>(block.insts.size());
            reloc.kind = RelocKind::BlockTarget;
            reloc.targetBlock = static_cast<std::uint32_t>(b + 1);
            block.relocs.push_back(reloc);
            block.insts.push_back(Instruction{Opcode::Jal, regs::r0, 0, 0, 0});
            ++stats.jumpsInserted;
        }
    }
    return stats;
}

TransformStats moveLiteralPools(Module& module) {
    TransformStats stats;
    for (auto& fn : module.functions) {
        if (fn.sharedLiteralPool.empty()) continue;
        for (auto& block : fn.blocks) {
            for (auto& reloc : block.relocs) {
                if (reloc.kind != RelocKind::SharedLiteral) continue;
                const std::int32_t value = fn.sharedLiteralPool[reloc.literalIndex];
                // Dedup within this block's pool.
                std::uint32_t slot = 0;
                for (; slot < block.literalPool.size(); ++slot) {
                    if (block.literalPool[slot] == value) break;
                }
                if (slot == block.literalPool.size()) {
                    block.literalPool.push_back(value);
                    ++stats.literalsMoved;
                }
                reloc.kind = RelocKind::BlockLiteral;
                reloc.literalIndex = slot;
            }
        }
        fn.sharedLiteralPool.clear();
    }
    return stats;
}

namespace {

/// One planned piece of a split block: instructions [instBegin, instEnd)
/// plus the literal slots (original indices) those instructions reference.
struct PiecePlan {
    std::uint32_t instBegin = 0;
    std::uint32_t instEnd = 0;
    std::vector<std::uint32_t> literalSlots;
};

/// Greedy plan: accumulate instructions (and the literals they pull in)
/// until adding the next instruction would exceed maxWords - 1 (one word
/// reserved for the chaining jump).
std::vector<PiecePlan> planSplit(const BasicBlock& block, std::uint32_t maxWords) {
    std::vector<PiecePlan> pieces;
    PiecePlan current;
    auto pieceWords = [](const PiecePlan& piece) {
        return (piece.instEnd - piece.instBegin) +
               static_cast<std::uint32_t>(piece.literalSlots.size());
    };
    for (std::uint32_t i = 0; i < block.insts.size(); ++i) {
        std::uint32_t extraLiterals = 0;
        const Relocation* literalReloc = nullptr;
        if (const auto* reloc = block.relocFor(i);
            reloc != nullptr && reloc->kind == RelocKind::BlockLiteral) {
            literalReloc = reloc;
            if (std::find(current.literalSlots.begin(), current.literalSlots.end(),
                          reloc->literalIndex) == current.literalSlots.end()) {
                extraLiterals = 1;
            }
        }
        const bool wouldOverflow =
            pieceWords(current) + 1 + extraLiterals + 1 /*chaining jump*/ > maxWords;
        if (wouldOverflow && current.instEnd > current.instBegin) {
            pieces.push_back(current);
            current = PiecePlan{};
            current.instBegin = i;
            current.instEnd = i;
            if (literalReloc != nullptr) extraLiterals = 1;
        }
        current.instEnd = i + 1;
        if (literalReloc != nullptr && extraLiterals == 1) {
            current.literalSlots.push_back(literalReloc->literalIndex);
        }
    }
    pieces.push_back(current);
    return pieces;
}

} // namespace

TransformStats breakLargeBlocks(Module& module, std::uint32_t maxWords) {
    VC_EXPECTS(maxWords >= 4);
    TransformStats stats;
    for (auto& fn : module.functions) {
        // Pass 1: plan every block's split and the old->new index mapping.
        std::vector<std::vector<PiecePlan>> plans(fn.blocks.size());
        std::vector<std::uint32_t> firstPieceIndex(fn.blocks.size());
        std::uint32_t nextIndex = 0;
        for (std::size_t b = 0; b < fn.blocks.size(); ++b) {
            firstPieceIndex[b] = nextIndex;
            if (fn.blocks[b].sizeWords() > maxWords) {
                plans[b] = planSplit(fn.blocks[b], maxWords);
            } else {
                PiecePlan whole;
                whole.instEnd = static_cast<std::uint32_t>(fn.blocks[b].insts.size());
                for (std::uint32_t l = 0;
                     l < static_cast<std::uint32_t>(fn.blocks[b].literalPool.size()); ++l) {
                    whole.literalSlots.push_back(l);
                }
                plans[b] = {whole};
            }
            nextIndex += static_cast<std::uint32_t>(plans[b].size());
        }

        // Pass 2: materialize with final indices.
        std::vector<BasicBlock> newBlocks;
        newBlocks.reserve(nextIndex);
        for (std::size_t b = 0; b < fn.blocks.size(); ++b) {
            const BasicBlock& old = fn.blocks[b];
            const auto& pieces = plans[b];
            if (pieces.size() > 1) {
                ++stats.blocksBroken;
                stats.piecesCreated += static_cast<std::uint32_t>(pieces.size() - 1);
            }
            for (std::size_t p = 0; p < pieces.size(); ++p) {
                const PiecePlan& plan = pieces[p];
                BasicBlock piece;
                piece.label = p == 0 ? old.label : old.label + "_p" + std::to_string(p);
                piece.insts.assign(old.insts.begin() + plan.instBegin,
                                   old.insts.begin() + plan.instEnd);
                // Literals referenced by this piece, renumbered locally.
                for (std::uint32_t slot : plan.literalSlots) {
                    piece.literalPool.push_back(old.literalPool[slot]);
                }
                for (const auto& oldReloc : old.relocs) {
                    if (oldReloc.instIndex < plan.instBegin ||
                        oldReloc.instIndex >= plan.instEnd) {
                        continue;
                    }
                    Relocation reloc = oldReloc;
                    reloc.instIndex -= plan.instBegin;
                    if (reloc.kind == RelocKind::BlockTarget) {
                        reloc.targetBlock = firstPieceIndex[reloc.targetBlock];
                    } else if (reloc.kind == RelocKind::BlockLiteral) {
                        const auto it = std::find(plan.literalSlots.begin(),
                                                  plan.literalSlots.end(),
                                                  reloc.literalIndex);
                        VC_ENSURES(it != plan.literalSlots.end());
                        reloc.literalIndex = static_cast<std::uint32_t>(
                            it - plan.literalSlots.begin());
                    }
                    piece.relocs.push_back(reloc);
                }
                if (p + 1 < pieces.size()) {
                    // Chain to the next piece with an unconditional jump.
                    Relocation chain;
                    chain.instIndex = static_cast<std::uint32_t>(piece.insts.size());
                    chain.kind = RelocKind::BlockTarget;
                    chain.targetBlock =
                        firstPieceIndex[b] + static_cast<std::uint32_t>(p + 1);
                    piece.relocs.push_back(chain);
                    piece.insts.push_back(Instruction{Opcode::Jal, regs::r0, 0, 0, 0});
                }
                newBlocks.push_back(std::move(piece));
            }
        }
        fn.blocks = std::move(newBlocks);
    }
    return stats;
}

TransformStats applyBbrTransforms(Module& module, std::uint32_t maxBlockWords) {
    TransformStats stats;
    stats += moveLiteralPools(module);
    stats += insertFallthroughJumps(module);
    stats += breakLargeBlocks(module, maxBlockWords);
    module.validate();
    return stats;
}

} // namespace voltcache
