// The three BBR code transformations (paper Section IV-B2, Fig. 8):
//   (1) inserting jumps    — seal every fall-through edge with an explicit
//                            unconditional jump so blocks can move freely,
//   (2) breaking blocks    — split blocks too large for the fault-free
//                            chunks the linker will find,
//   (3) moving literal pools — copy each function's shared pool into the
//                            referencing blocks so PC-relative loads stay in
//                            reach after relocation.
//
// applyBbrTransforms() runs all three in dependency order. Like the paper's
// implementation, the transformations change nothing unless explicitly
// invoked — baseline schemes link the untransformed module.
#pragma once

#include <cstdint>

#include "isa/module.h"

namespace voltcache {

struct TransformStats {
    std::uint32_t jumpsInserted = 0;
    std::uint32_t blocksBroken = 0;   ///< original blocks that were split
    std::uint32_t piecesCreated = 0;  ///< extra blocks created by splitting
    std::uint32_t literalsMoved = 0;  ///< pool slots copied into blocks

    TransformStats& operator+=(const TransformStats& other) noexcept;
};

/// (1) Append `jal r0, next` to every block that can fall through. Throws
/// std::invalid_argument if a function's last block falls through.
TransformStats insertFallthroughJumps(Module& module);

/// (2) Split every block larger than `maxWords` (code + literals) into a
/// chain of pieces of at most `maxWords` words, linked by unconditional
/// jumps. Requires maxWords >= 4 (one instruction + one literal + jump).
TransformStats breakLargeBlocks(Module& module, std::uint32_t maxWords);

/// (3) Distribute each function's shared literal pool into per-block pools,
/// rewriting SharedLiteral relocations to BlockLiteral.
TransformStats moveLiteralPools(Module& module);

/// Default split threshold: placeable with high probability even at 400mV
/// (P_fail(word) = 27.5%), yet far above the typical 5-6 instruction block.
inline constexpr std::uint32_t kDefaultMaxBlockWords = 12;

/// Full BBR pipeline: moveLiteralPools -> insertFallthroughJumps ->
/// breakLargeBlocks. The result has no fall-through edges and no block
/// larger than maxBlockWords, i.e. it is ready for BBR placement.
TransformStats applyBbrTransforms(Module& module,
                                  std::uint32_t maxBlockWords = kDefaultMaxBlockWords);

} // namespace voltcache
