// Control-flow graph view over a Function's basic blocks, used by the BBR
// transformation passes and by the Fig. 6 basic-block statistics.
#pragma once

#include <cstdint>
#include <vector>

#include "isa/module.h"

namespace voltcache {

/// Successor edges of one basic block.
struct BlockSuccessors {
    std::vector<std::uint32_t> targets; ///< explicit branch/jump targets
    bool fallsThrough = false;          ///< control may continue to block+1
    bool returns = false;               ///< ends in Jalr (return / indirect)
    bool halts = false;
};

/// Compute the successors of block `blockIndex` in `fn` from its terminator
/// and relocations. Calls (Jal ra) are not successors — control returns.
[[nodiscard]] BlockSuccessors successorsOf(const Function& fn, std::uint32_t blockIndex);

/// Static basic-block size distribution (in words, code + literals) across
/// a module — the x-axis of Fig. 6(b).
[[nodiscard]] std::vector<std::uint32_t> blockSizesWords(const Module& module);

} // namespace voltcache
