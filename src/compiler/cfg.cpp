#include "compiler/cfg.h"

#include "common/contracts.h"
#include "isa/builder.h"

namespace voltcache {

BlockSuccessors successorsOf(const Function& fn, std::uint32_t blockIndex) {
    VC_EXPECTS(blockIndex < fn.blocks.size());
    const BasicBlock& block = fn.blocks[blockIndex];
    BlockSuccessors successors;
    for (std::size_t i = 0; i < block.insts.size(); ++i) {
        const Instruction& inst = block.insts[i];
        if (isConditionalBranch(inst.op)) {
            const auto* reloc = block.relocFor(static_cast<std::uint32_t>(i));
            VC_EXPECTS(reloc != nullptr && reloc->kind == RelocKind::BlockTarget);
            successors.targets.push_back(reloc->targetBlock);
        } else if (inst.op == Opcode::Jal && inst.rd == regs::r0) {
            // Unconditional jump (not a call).
            const auto* reloc = block.relocFor(static_cast<std::uint32_t>(i));
            if (reloc != nullptr && reloc->kind == RelocKind::BlockTarget) {
                successors.targets.push_back(reloc->targetBlock);
            }
        }
    }
    if (block.insts.empty()) {
        successors.fallsThrough = true;
        return successors;
    }
    const Instruction& last = block.insts.back();
    if (last.op == Opcode::Halt) {
        successors.halts = true;
    } else if (last.op == Opcode::Jalr) {
        successors.returns = true;
    } else if (!(last.op == Opcode::Jal && last.rd == regs::r0)) {
        // Conditional branch or plain instruction at the end: may continue
        // into the next layout block. A call (Jal ra) also falls through
        // after the callee returns.
        successors.fallsThrough = true;
    }
    return successors;
}

std::vector<std::uint32_t> blockSizesWords(const Module& module) {
    std::vector<std::uint32_t> sizes;
    for (const auto& fn : module.functions) {
        for (const auto& block : fn.blocks) {
            if (block.sizeWords() > 0) sizes.push_back(block.sizeWords());
        }
    }
    return sizes;
}

} // namespace voltcache
