// RAII hierarchical timing spans — the sweep's self-profiler.
//
// A Span stamps steady_clock on construction and destruction and attributes
// the elapsed time to its name. Spans nest lexically per thread: each thread
// keeps a stack of live spans, and a closing span subtracts its total from
// the parent's *self* time, so for any thread the self times of all spans
// partition that thread's wall clock (a root span covering the whole phase
// makes the partition exact). Aggregates live in per-thread shards merged at
// snapshot() time, mirroring the metrics registry's sharding — the hot path
// never touches a lock another thread contends.
//
// Profiling is globally off by default: a disabled Span construction is one
// relaxed atomic load and a branch (the zero-overhead guard bench_micro
// enforces, like the PR 2 no-sink check). When enabled, every closing span
// also feeds the registry ("prof.span_ns"{span=name} log2 histograms) and,
// when a TraceSink is attached, emits a Chrome "ph":"X" duration event — so
// one sweep yields both the aggregate profile and the per-leg timeline.
//
// Span names must be string literals (stored by pointer, like TraceSink's).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace voltcache::obs {

/// Aggregated timing of one span name across all threads.
struct SpanStat {
    std::string name;
    std::uint64_t count = 0;   ///< spans closed under this name
    std::uint64_t totalNs = 0; ///< wall time inside the span (children included)
    std::uint64_t selfNs = 0;  ///< totalNs minus time spent in child spans
};

/// Process-wide profiler switch + aggregate access.
class Profiler {
public:
    [[nodiscard]] static bool enabled() noexcept;
    static void setEnabled(bool on) noexcept;

    /// Merge every thread's shard into a name-sorted list (deterministic for
    /// fixed aggregates). Concurrent spans are tolerated; a still-open span
    /// is simply not counted yet.
    [[nodiscard]] static std::vector<SpanStat> snapshot();

    /// Zero all aggregates (tests / between CLI phases). Live spans keep
    /// running and report into the cleared shards when they close.
    static void reset();
};

/// One timed scope. Construct with a string literal; the destructor closes
/// the span. Non-copyable and non-movable: the per-thread stack stores raw
/// parent pointers into enclosing stack frames.
///
/// Two optional observers ride the same scope: the flight recorder's active
/// span stack (obs/flight_recorder.h — one extra relaxed load when no
/// recorder is installed), and the per-job trace collector
/// (obs/trace_context.h — closed spans are attributed to the current job's
/// trace context when a collection is open).
class Span {
public:
    explicit Span(const char* name) noexcept;
    ~Span();
    Span(const Span&) = delete;
    Span& operator=(const Span&) = delete;

private:
    const char* name_ = nullptr; ///< nullptr == profiling was off at construction
    Span* parent_ = nullptr;
    std::uint64_t startNs_ = 0;
    std::uint64_t childNs_ = 0; ///< accumulated totals of closed children
    bool flight_ = false; ///< pushed onto the flight recorder's span stack
};

} // namespace voltcache::obs
