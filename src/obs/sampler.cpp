#include "obs/sampler.h"

#include <utility>

#include "common/contracts.h"
#include "obs/trace.h"

namespace voltcache::obs {

UtilizationSampler::UtilizationSampler(Probe probe, std::chrono::milliseconds period)
    : probe_(std::move(probe)),
      period_(period),
      activeGauge_(MetricsRegistry::global().gauge("sweep.workers_active")),
      queueGauge_(MetricsRegistry::global().gauge("sweep.queue_depth")),
      activeHist_(MetricsRegistry::global().histogram("sweep.active_workers")) {
    VC_EXPECTS(probe_ != nullptr);
    VC_EXPECTS(period_.count() > 0);
    emitSample();
    thread_ = std::thread([this] { run(); });
}

UtilizationSampler::~UtilizationSampler() {
    {
        const std::lock_guard<std::mutex> lock(mutex_);
        stop_ = true;
    }
    wake_.notify_one();
    thread_.join();
    emitSample(); // final state: zero active workers, empty queue
}

void UtilizationSampler::emitSample() {
    const Sample sample = probe_();
    activeGauge_.set(static_cast<double>(sample.activeWorkers));
    queueGauge_.set(static_cast<double>(sample.queueDepth));
    activeHist_.observe(sample.activeWorkers);
    if (TraceSink* sink = traceSink()) {
        sink->recordCounter("sweep.workers_active", "sampler",
                            {{"active", static_cast<std::int64_t>(sample.activeWorkers)},
                             {"workers", static_cast<std::int64_t>(sample.workers)}});
        sink->recordCounter("sweep.queue_depth", "sampler",
                            {{"legs_pending", static_cast<std::int64_t>(sample.queueDepth)}});
    }
    samples_.fetch_add(1, std::memory_order_relaxed);
}

void UtilizationSampler::run() {
    std::unique_lock<std::mutex> lock(mutex_);
    while (!stop_) {
        if (wake_.wait_for(lock, period_, [this] { return stop_; })) break;
        lock.unlock();
        emitSample();
        lock.lock();
    }
}

} // namespace voltcache::obs
