#include "obs/flight_recorder.h"

#include <fcntl.h>
#include <signal.h>
#include <unistd.h>

#include <atomic>
#include <bit>
#include <chrono>
#include <cstring>
#include <mutex>
#include <stdexcept>
#include <vector>

#include "common/contracts.h"
#include "obs/metrics.h"

namespace voltcache::obs {

namespace {

std::atomic<FlightRecorder*> g_recorder{nullptr};

// --- per-thread active span stacks -----------------------------------------
//
// Fixed pool, fixed depth: a thread's slot is claimed once (thread_local) and
// never recycled, so the crash path can walk the pool with plain loads. Names
// are string literals (obs::Span's contract), safe to read from a handler.

constexpr int kMaxSpanDepth = 16;
constexpr int kMaxSpanThreads = 64;

struct ThreadSpanStack {
    std::atomic<int> depth{0};
    const char* names[kMaxSpanDepth] = {};
    std::atomic<bool> used{false};
};

ThreadSpanStack g_spanStacks[kMaxSpanThreads];
std::atomic<int> g_spanStackNext{0};

ThreadSpanStack* threadSpanStack() noexcept {
    thread_local ThreadSpanStack* const slot = []() -> ThreadSpanStack* {
        const int index = g_spanStackNext.fetch_add(1, std::memory_order_relaxed);
        if (index >= kMaxSpanThreads) return nullptr;
        g_spanStacks[index].used.store(true, std::memory_order_relaxed);
        return &g_spanStacks[index];
    }();
    return slot;
}

// --- async-signal-safe JSON writer ------------------------------------------

/// Buffered write(2) emitter: no allocation, no stdio, no locale. Strings are
/// sanitized instead of escaped (quote/backslash/control bytes become safe
/// characters) so the emitter never needs to grow an escape buffer.
struct DumpWriter {
    int fd = -1;
    char buf[4096];
    std::size_t len = 0;

    void flush() noexcept {
        std::size_t off = 0;
        while (off < len) {
            const ssize_t n = ::write(fd, buf + off, len - off);
            if (n <= 0) break;
            off += static_cast<std::size_t>(n);
        }
        len = 0;
    }
    void raw(char c) noexcept {
        if (len == sizeof buf) flush();
        buf[len++] = c;
    }
    void text(const char* s) noexcept {
        for (; *s != '\0'; ++s) raw(*s);
    }
    /// "..." with sanitization; NUL-terminated input, bounded by maxBytes.
    void quoted(const char* s, std::size_t maxBytes) noexcept {
        raw('"');
        for (std::size_t i = 0; i < maxBytes && s[i] != '\0'; ++i) {
            const char c = s[i];
            if (c == '"' || c == '\\') {
                raw('\'');
            } else if (static_cast<unsigned char>(c) < 0x20) {
                raw(' ');
            } else {
                raw(c);
            }
        }
        raw('"');
    }
    void u64(std::uint64_t v) noexcept {
        char tmp[20];
        int n = 0;
        do {
            tmp[n++] = static_cast<char>('0' + v % 10);
            v /= 10;
        } while (v != 0);
        while (n != 0) raw(tmp[--n]);
    }
    void i64(std::int64_t v) noexcept {
        if (v < 0) {
            raw('-');
            u64(static_cast<std::uint64_t>(-(v + 1)) + 1);
        } else {
            u64(static_cast<std::uint64_t>(v));
        }
    }
    /// Fixed three decimals — enough for the mirrored gauges/counters.
    void f64(double v) noexcept {
        if (v != v) { // NaN: JSON cannot represent it
            text("null");
            return;
        }
        if (v < 0) {
            raw('-');
            v = -v;
        }
        if (v > 9.0e18) {
            text("9000000000000000000");
            return;
        }
        const auto integral = static_cast<std::uint64_t>(v);
        u64(integral);
        raw('.');
        auto frac = static_cast<std::uint64_t>((v - static_cast<double>(integral)) * 1000.0 + 0.5);
        if (frac >= 1000) frac = 999;
        raw(static_cast<char>('0' + frac / 100));
        raw(static_cast<char>('0' + (frac / 10) % 10));
        raw(static_cast<char>('0' + frac % 10));
    }
};

const char* flightPhaseName(JournalEvent::Phase phase) noexcept {
    switch (phase) {
    case JournalEvent::Phase::Enqueued: return "enqueued";
    case JournalEvent::Phase::Started: return "started";
    case JournalEvent::Phase::Finished: return "finished";
    }
    return "?";
}

void copyBounded(char* dest, std::size_t capacity, std::string_view src) noexcept {
    const std::size_t n = src.size() < capacity - 1 ? src.size() : capacity - 1;
    std::memcpy(dest, src.data(), n);
    dest[n] = '\0';
}

} // namespace

struct FlightRecorder::Impl {
    int fd = -1;
    std::vector<JournalEvent> ring;
    std::size_t mask = 0;
    std::atomic<std::uint64_t> seq{0};
    std::uint64_t epochNs = 0; ///< steady_clock at install (event t=0)

    std::atomic<std::uint64_t> benchmarksCompleted{0};
    std::atomic<std::uint64_t> benchmarksTotal{0};
    std::atomic<std::uint64_t> legsCompleted{0};
    std::atomic<std::uint64_t> legsTotal{0};
    std::atomic<std::uint64_t> legsReplayed{0};
    std::atomic<std::uint64_t> legsExecuted{0};
    std::atomic<std::uint64_t> legsCached{0};
    std::atomic<std::uint32_t> workers{0};

    char job[96] = {};
    char traceHex[40] = {};

    static constexpr std::size_t kMaxMetrics = 96;
    static constexpr std::size_t kMetricNameBytes = 96;
    struct MetricEntry {
        char name[kMetricNameBytes] = {};
        std::atomic<double> value{0.0};
        std::atomic<bool> set{false};
    };
    MetricEntry metrics[kMaxMetrics];
    std::mutex metricsMutex; ///< normal path only; the dump reads lock-free

    std::atomic<bool> dumped{false};
};

FlightRecorder::FlightRecorder(const Options& options) : path_(options.path), impl_(new Impl) {
    impl_->fd = ::open(options.path.c_str(), O_CREAT | O_WRONLY | O_TRUNC | O_CLOEXEC, 0644);
    if (impl_->fd < 0) {
        delete impl_;
        throw std::runtime_error("flight recorder: cannot open '" + options.path + "'");
    }
    const std::size_t capacity =
        std::bit_ceil(options.eventCapacity < 2 ? std::size_t{2} : options.eventCapacity);
    impl_->ring.resize(capacity);
    impl_->mask = capacity - 1;
    impl_->epochNs = static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now().time_since_epoch())
            .count());
}

FlightRecorder::~FlightRecorder() {
    if (impl_->fd >= 0) ::close(impl_->fd);
    delete impl_;
}

namespace {

void flightSignalHandler(int sig) {
    if (FlightRecorder* recorder = g_recorder.load(std::memory_order_relaxed)) {
        recorder->dumpNow(sig == SIGSEGV ? "SIGSEGV" : sig == SIGABRT ? "SIGABRT" : "signal");
    }
    ::signal(sig, SIG_DFL);
    ::raise(sig);
}

void flightContractHook(const char* kind, const char* expr, const char* file,
                        int line) noexcept {
    FlightRecorder* recorder = g_recorder.load(std::memory_order_acquire);
    if (recorder == nullptr) return;
    // "expr at file:line", built without allocation.
    char detail[512];
    std::size_t n = 0;
    const auto append = [&detail, &n](const char* s) noexcept {
        for (; *s != '\0' && n < sizeof(detail) - 1; ++s) detail[n++] = *s;
    };
    append(expr);
    append(" at ");
    append(file);
    append(":");
    char digits[16];
    int d = 0;
    unsigned value = line < 0 ? 0u : static_cast<unsigned>(line);
    do {
        digits[d++] = static_cast<char>('0' + value % 10);
        value /= 10;
    } while (value != 0 && d < 15);
    while (d != 0 && n < sizeof(detail) - 1) detail[n++] = digits[--d];
    detail[n] = '\0';
    recorder->dumpNow(kind, detail);
}

} // namespace

FlightRecorder& FlightRecorder::install(const Options& options) {
    auto* recorder = new FlightRecorder(options); // leaked: must outlive crashes
    FlightRecorder* previous = g_recorder.exchange(recorder, std::memory_order_acq_rel);
    // The previous recorder (tests installing twice) is abandoned, not freed:
    // a concurrent crash may still be dumping through it.
    (void)previous;

    struct sigaction action{};
    action.sa_handler = flightSignalHandler;
    sigemptyset(&action.sa_mask);
    action.sa_flags = 0;
    ::sigaction(SIGSEGV, &action, nullptr);
    ::sigaction(SIGABRT, &action, nullptr);
    voltcache::detail::setContractHook(&flightContractHook);
    return *recorder;
}

FlightRecorder* FlightRecorder::instance() noexcept {
    return g_recorder.load(std::memory_order_acquire);
}

bool flightRecorderArmed() noexcept {
    return g_recorder.load(std::memory_order_relaxed) != nullptr;
}

bool flightSpanEnter(const char* name) noexcept {
    ThreadSpanStack* stack = threadSpanStack();
    if (stack == nullptr) return false;
    const int depth = stack->depth.load(std::memory_order_relaxed);
    if (depth >= kMaxSpanDepth) return false;
    stack->names[depth] = name;
    stack->depth.store(depth + 1, std::memory_order_release);
    return true;
}

void flightSpanExit() noexcept {
    ThreadSpanStack* stack = threadSpanStack();
    if (stack == nullptr) return;
    const int depth = stack->depth.load(std::memory_order_relaxed);
    if (depth > 0) stack->depth.store(depth - 1, std::memory_order_release);
}

void FlightRecorder::noteLegEvent(const JournalEvent& event) noexcept {
    const std::uint64_t seq = impl_->seq.fetch_add(1, std::memory_order_relaxed);
    JournalEvent& slot = impl_->ring[seq & impl_->mask];
    slot = event;
    // The journal stamps sequence/timestamp at emit(); feeds reach this ring
    // before (or without) a journal, so stamp the recorder's own view here.
    slot.sequence = seq;
    const auto now = std::chrono::steady_clock::now().time_since_epoch();
    const auto nowNs = static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(now).count());
    slot.timestampNs = nowNs > impl_->epochNs ? nowNs - impl_->epochNs : 0;
}

void FlightRecorder::noteProgress(const FlightProgress& progress) noexcept {
    impl_->benchmarksCompleted.store(progress.benchmarksCompleted, std::memory_order_relaxed);
    impl_->benchmarksTotal.store(progress.benchmarksTotal, std::memory_order_relaxed);
    impl_->legsCompleted.store(progress.legsCompleted, std::memory_order_relaxed);
    impl_->legsTotal.store(progress.legsTotal, std::memory_order_relaxed);
    impl_->legsReplayed.store(progress.legsReplayed, std::memory_order_relaxed);
    impl_->legsExecuted.store(progress.legsExecuted, std::memory_order_relaxed);
    impl_->legsCached.store(progress.legsCached, std::memory_order_relaxed);
    impl_->workers.store(progress.workers, std::memory_order_relaxed);
}

void FlightRecorder::noteJob(std::string_view label, const TraceContext& context) noexcept {
    copyBounded(impl_->job, sizeof impl_->job, label);
    const std::string hex = traceIdHex(context); // normal path: allocation OK
    copyBounded(impl_->traceHex, sizeof impl_->traceHex, hex);
}

void FlightRecorder::noteMetrics() {
    const std::vector<MetricSnapshot> snapshot = MetricsRegistry::global().snapshot();
    const std::lock_guard<std::mutex> lock(impl_->metricsMutex);
    for (const MetricSnapshot& metric : snapshot) {
        // Flatten "name{k=v,...}" like the Prometheus exposition.
        char flat[Impl::kMetricNameBytes];
        std::size_t n = 0;
        const auto append = [&flat, &n](std::string_view s) noexcept {
            for (const char c : s) {
                if (n >= sizeof(flat) - 1) break;
                flat[n++] = c;
            }
        };
        append(metric.name);
        if (!metric.labels.empty()) {
            append("{");
            bool first = true;
            for (const auto& [k, v] : metric.labels) {
                if (!first) append(",");
                first = false;
                append(k);
                append("=");
                append(v);
            }
            append("}");
        }
        flat[n] = '\0';
        const double value = metric.kind == MetricKind::Gauge
                                 ? metric.value
                                 : static_cast<double>(metric.count);
        Impl::MetricEntry* target = nullptr;
        for (Impl::MetricEntry& entry : impl_->metrics) {
            if (entry.set.load(std::memory_order_relaxed)) {
                if (std::strncmp(entry.name, flat, sizeof flat) == 0) {
                    target = &entry;
                    break;
                }
            } else if (target == nullptr) {
                target = &entry;
            }
        }
        if (target == nullptr) continue; // mirror full: drop new families
        if (!target->set.load(std::memory_order_relaxed)) {
            std::memcpy(target->name, flat, sizeof flat);
            target->set.store(true, std::memory_order_release);
        }
        target->value.store(value, std::memory_order_relaxed);
    }
}

std::uint64_t FlightRecorder::eventsNoted() const noexcept {
    return impl_->seq.load(std::memory_order_relaxed);
}

void FlightRecorder::rearm() noexcept {
    impl_->dumped.store(false, std::memory_order_release);
}

bool FlightRecorder::dumpNow(const char* reason, const char* detail) noexcept {
    if (impl_->dumped.exchange(true, std::memory_order_acq_rel)) return false;
    ::lseek(impl_->fd, 0, SEEK_SET);
    ::ftruncate(impl_->fd, 0);

    DumpWriter w;
    w.fd = impl_->fd;
    w.text("{\"tool\":\"voltcache\",\"kind\":\"flight\",\"reason\":");
    w.quoted(reason != nullptr ? reason : "unknown", 128);
    if (detail != nullptr) {
        w.text(",\"detail\":");
        w.quoted(detail, 512);
    }
    if (impl_->job[0] != '\0') {
        w.text(",\"job\":");
        w.quoted(impl_->job, sizeof impl_->job);
    }
    if (impl_->traceHex[0] != '\0') {
        w.text(",\"trace\":");
        w.quoted(impl_->traceHex, sizeof impl_->traceHex);
    }

    w.text(",\"progress\":{\"benchmarksCompleted\":");
    w.u64(impl_->benchmarksCompleted.load(std::memory_order_relaxed));
    w.text(",\"benchmarksTotal\":");
    w.u64(impl_->benchmarksTotal.load(std::memory_order_relaxed));
    w.text(",\"legsCompleted\":");
    w.u64(impl_->legsCompleted.load(std::memory_order_relaxed));
    w.text(",\"legsTotal\":");
    w.u64(impl_->legsTotal.load(std::memory_order_relaxed));
    w.text(",\"legsReplayed\":");
    w.u64(impl_->legsReplayed.load(std::memory_order_relaxed));
    w.text(",\"legsExecuted\":");
    w.u64(impl_->legsExecuted.load(std::memory_order_relaxed));
    w.text(",\"legsCached\":");
    w.u64(impl_->legsCached.load(std::memory_order_relaxed));
    w.text(",\"workers\":");
    w.u64(impl_->workers.load(std::memory_order_relaxed));
    w.text("}");

    w.text(",\"metrics\":[");
    bool firstMetric = true;
    for (const Impl::MetricEntry& entry : impl_->metrics) {
        if (!entry.set.load(std::memory_order_acquire)) continue;
        if (!firstMetric) w.raw(',');
        firstMetric = false;
        w.text("{\"name\":");
        w.quoted(entry.name, sizeof entry.name);
        w.text(",\"value\":");
        w.f64(entry.value.load(std::memory_order_relaxed));
        w.text("}");
    }
    w.text("]");

    w.text(",\"threads\":[");
    bool firstThread = true;
    for (const ThreadSpanStack& stack : g_spanStacks) {
        if (!stack.used.load(std::memory_order_relaxed)) continue;
        if (!firstThread) w.raw(',');
        firstThread = false;
        w.text("{\"spans\":[");
        int depth = stack.depth.load(std::memory_order_acquire);
        if (depth > kMaxSpanDepth) depth = kMaxSpanDepth;
        for (int i = 0; i < depth; ++i) {
            if (i != 0) w.raw(',');
            const char* name = stack.names[i];
            w.quoted(name != nullptr ? name : "?", 64);
        }
        w.text("]}");
    }
    w.text("]");

    // Oldest-first window of recent leg events. A writer racing the dump can
    // leave at most one torn slot; fields are bounded and NUL-padded, so the
    // document still parses.
    const std::uint64_t noted = impl_->seq.load(std::memory_order_acquire);
    const std::uint64_t capacity = impl_->mask + 1;
    const std::uint64_t start = noted > capacity ? noted - capacity : 0;
    w.text(",\"eventsNoted\":");
    w.u64(noted);
    w.text(",\"eventsDropped\":");
    w.u64(start);
    w.text(",\"events\":[");
    for (std::uint64_t i = start; i < noted; ++i) {
        const JournalEvent& event = impl_->ring[i & impl_->mask];
        if (i != start) w.raw(',');
        w.text("{\"ev\":\"");
        w.text(flightPhaseName(event.phase));
        w.text("\",\"seq\":");
        w.u64(event.sequence);
        w.text(",\"tNs\":");
        w.u64(event.timestampNs);
        w.text(",\"leg\":");
        w.u64(event.leg);
        w.text(",\"worker\":");
        w.u64(event.worker);
        w.text(",\"benchmark\":");
        w.quoted(event.benchmark, sizeof event.benchmark);
        w.text(",\"scheme\":");
        w.quoted(event.scheme, sizeof event.scheme);
        w.text(",\"mv\":");
        w.i64(event.voltageMv);
        w.text(",\"trial\":");
        w.u64(event.trial);
        if (event.phase == JournalEvent::Phase::Finished) {
            w.text(",\"durationNs\":");
            w.u64(event.durationNs);
            w.text(",\"outcome\":\"");
            w.text(event.linkFailed ? "link_failed" : "ok");
            w.text("\"");
        }
        w.text("}");
    }
    w.text("]}\n");
    w.flush();
    ::fsync(impl_->fd);
    return true;
}

} // namespace voltcache::obs
