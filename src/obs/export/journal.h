// Bounded, lock-light NDJSON leg journal.
//
// One event per leg lifecycle transition (enqueued / started / finished).
// Producers — the sweep coordinator and each worker thread — push fixed-size
// POD events into their own single-producer/single-consumer ring; a drainer
// thread pops every ring in order and serializes each event as one JSON line.
// The hot path is therefore two relaxed atomic loads, a slot write, and a
// release store — no mutex, no allocation, no syscall. When a ring is full
// the event is *dropped, not blocked on*: the sweep must never stall on the
// observer. Drops are accounted per journal (dropped()) and process-wide
// ("journal.dropped" registry counter), so a saturated journal is visible in
// the same /metrics endpoint it starves.
//
// Per-producer event order is preserved end-to-end (SPSC FIFO + in-order
// drain); events from different producers interleave arbitrarily, which is
// why every line carries its worker id and a per-producer sequence number.
#pragma once

#include <atomic>
#include <chrono>
#include <cstddef>
#include <cstdint>
#include <fstream>
#include <memory>
#include <string>
#include <string_view>
#include <thread>
#include <vector>

#include "obs/metrics.h"

namespace voltcache::obs {

/// Fixed-size leg lifecycle event. Strings are truncating copies so the
/// ring slots stay POD (no allocation on the producer path).
struct JournalEvent {
    enum class Phase : std::uint8_t { Enqueued, Started, Finished };

    Phase phase = Phase::Enqueued;
    std::uint32_t leg = 0;     ///< canonical leg index
    std::uint32_t worker = 0;  ///< dense worker id (coordinator events: 0)
    char benchmark[24] = {};
    char scheme[24] = {};
    std::int32_t voltageMv = 0;
    std::uint32_t trial = 0;
    bool replayed = false;          ///< served by the trace-replay fast path
    bool cached = false;            ///< slot filled from the content-addressed store
    bool linkFailed = false;        ///< Finished only
    char failCause[16] = {};        ///< Finished only ("none" when healthy)
    std::uint64_t durationNs = 0;   ///< Finished only
    std::uint64_t timestampNs = 0;  ///< stamped at emit(), relative to journal epoch
    std::uint64_t sequence = 0;     ///< per-producer, stamped at emit()
    // Owning job's trace context (obs/trace_context.h); all zero = untraced.
    std::uint64_t traceHi = 0;
    std::uint64_t traceLo = 0;
    std::uint64_t spanId = 0; ///< the leg's deterministic child span id

    /// Truncating copy helpers for the two name fields.
    void setBenchmark(std::string_view name) noexcept;
    void setScheme(std::string_view name) noexcept;
    void setFailCause(std::string_view name) noexcept;
};

namespace detail {

/// Single-producer / single-consumer bounded ring of JournalEvents.
class SpscEventRing {
public:
    explicit SpscEventRing(std::size_t capacityPow2);
    [[nodiscard]] bool tryPush(const JournalEvent& event) noexcept; ///< producer
    [[nodiscard]] bool tryPop(JournalEvent& event) noexcept;        ///< consumer

private:
    std::vector<JournalEvent> slots_;
    std::size_t mask_ = 0;
    alignas(64) std::atomic<std::uint64_t> head_{0}; ///< next pop
    alignas(64) std::atomic<std::uint64_t> tail_{0}; ///< next push
};

} // namespace detail

class LegJournal {
public:
    /// Opens `path` for writing and sizes one ring per producer. Producer 0
    /// is conventionally the sweep coordinator (enqueue events); workers use
    /// 1 + workerId. `ringCapacity` is rounded up to a power of two.
    /// `autoDrain=false` skips the drainer thread — tests drive drainOnce()
    /// by hand to make overflow accounting deterministic.
    /// `maxBytes` caps the journal file: when a written line would push the
    /// current file past the cap, the file is rotated to `path + ".1"`
    /// (replacing any previous rotation) and writing restarts on a fresh
    /// `path`. 0 = unbounded (the default).
    LegJournal(const std::string& path, std::size_t producers,
               std::size_t ringCapacity = 4096, bool autoDrain = true,
               std::uint64_t maxBytes = 0);
    ~LegJournal();
    LegJournal(const LegJournal&) = delete;
    LegJournal& operator=(const LegJournal&) = delete;

    /// Producer side: stamp timestamp + sequence and push. A full ring (or an
    /// out-of-range producer index) drops the event and bumps the counters.
    void emit(std::size_t producer, JournalEvent event) noexcept;

    /// Pop-and-write everything currently queued; returns events written.
    /// The drainer thread calls this continuously; with autoDrain=false the
    /// owner does.
    std::size_t drainOnce();

    /// Stop the drainer, perform a final drain, and flush the file.
    /// Idempotent; also run by the destructor.
    void close();

    [[nodiscard]] std::size_t producers() const noexcept { return rings_.size(); }
    [[nodiscard]] std::uint64_t written() const noexcept {
        return written_.load(std::memory_order_relaxed);
    }
    [[nodiscard]] std::uint64_t dropped() const noexcept {
        return dropped_.load(std::memory_order_relaxed);
    }
    /// Rotations performed so far (only possible when maxBytes > 0).
    [[nodiscard]] std::uint64_t rotations() const noexcept {
        return rotations_.load(std::memory_order_relaxed);
    }

private:
    void writeLine(const JournalEvent& event);
    void rotate();

    std::string path_;
    std::uint64_t maxBytes_ = 0;
    std::uint64_t currentBytes_ = 0; ///< drainer thread only
    std::ofstream out_;
    std::vector<std::unique_ptr<detail::SpscEventRing>> rings_;
    std::vector<std::unique_ptr<std::atomic<std::uint64_t>>> sequences_;
    std::chrono::steady_clock::time_point epoch_;
    std::atomic<std::uint64_t> written_{0};
    std::atomic<std::uint64_t> dropped_{0};
    std::atomic<std::uint64_t> rotations_{0};
    Counter droppedCounter_;  ///< "journal.dropped" in the global registry
    Counter eventCounter_;    ///< "journal.events"
    Counter rotationCounter_; ///< "journal.rotations"
    std::atomic_bool stop_{false};
    bool closed_ = false;
    std::thread drainer_;
};

/// Serialize one event as its NDJSON line (no trailing newline) — exposed
/// for tests and for `voltcache top`'s journal tailing.
[[nodiscard]] std::string journalEventToJson(const JournalEvent& event);

} // namespace voltcache::obs
