#include "obs/export/journal.h"

#include <algorithm>
#include <bit>
#include <cstdio>
#include <cstring>
#include <stdexcept>

#include "common/json.h"
#include "obs/trace_context.h"

namespace voltcache::obs {

namespace {

void copyTruncated(char* dest, std::size_t capacity, std::string_view src) noexcept {
    const std::size_t n = std::min(src.size(), capacity - 1);
    std::memcpy(dest, src.data(), n);
    dest[n] = '\0';
}

const char* phaseName(JournalEvent::Phase phase) {
    switch (phase) {
    case JournalEvent::Phase::Enqueued: return "enqueued";
    case JournalEvent::Phase::Started: return "started";
    case JournalEvent::Phase::Finished: return "finished";
    }
    return "?";
}

} // namespace

void JournalEvent::setBenchmark(std::string_view name) noexcept {
    copyTruncated(benchmark, sizeof benchmark, name);
}

void JournalEvent::setScheme(std::string_view name) noexcept {
    copyTruncated(scheme, sizeof scheme, name);
}

void JournalEvent::setFailCause(std::string_view name) noexcept {
    copyTruncated(failCause, sizeof failCause, name);
}

namespace detail {

SpscEventRing::SpscEventRing(std::size_t capacityPow2)
    : slots_(capacityPow2), mask_(capacityPow2 - 1) {}

bool SpscEventRing::tryPush(const JournalEvent& event) noexcept {
    const std::uint64_t tail = tail_.load(std::memory_order_relaxed);
    const std::uint64_t head = head_.load(std::memory_order_acquire);
    if (tail - head >= slots_.size()) return false; // full
    slots_[tail & mask_] = event;
    tail_.store(tail + 1, std::memory_order_release);
    return true;
}

bool SpscEventRing::tryPop(JournalEvent& event) noexcept {
    const std::uint64_t head = head_.load(std::memory_order_relaxed);
    const std::uint64_t tail = tail_.load(std::memory_order_acquire);
    if (head == tail) return false; // empty
    event = slots_[head & mask_];
    head_.store(head + 1, std::memory_order_release);
    return true;
}

} // namespace detail

LegJournal::LegJournal(const std::string& path, std::size_t producers,
                       std::size_t ringCapacity, bool autoDrain,
                       std::uint64_t maxBytes)
    : path_(path), maxBytes_(maxBytes), out_(path),
      epoch_(std::chrono::steady_clock::now()),
      droppedCounter_(MetricsRegistry::global().counter("journal.dropped")),
      eventCounter_(MetricsRegistry::global().counter("journal.events")),
      rotationCounter_(MetricsRegistry::global().counter("journal.rotations")) {
    if (!out_) throw std::runtime_error("LegJournal: cannot write '" + path + "'");
    if (producers == 0) producers = 1;
    const std::size_t capacity = std::bit_ceil(std::max<std::size_t>(ringCapacity, 2));
    rings_.reserve(producers);
    sequences_.reserve(producers);
    for (std::size_t i = 0; i < producers; ++i) {
        rings_.push_back(std::make_unique<detail::SpscEventRing>(capacity));
        sequences_.push_back(std::make_unique<std::atomic<std::uint64_t>>(0));
    }
    if (autoDrain) {
        drainer_ = std::thread([this] {
            while (!stop_.load(std::memory_order_acquire)) {
                if (drainOnce() == 0) {
                    std::this_thread::sleep_for(std::chrono::milliseconds(1));
                }
            }
        });
    }
}

LegJournal::~LegJournal() { close(); }

void LegJournal::emit(std::size_t producer, JournalEvent event) noexcept {
    if (producer >= rings_.size()) {
        dropped_.fetch_add(1, std::memory_order_relaxed);
        droppedCounter_.add();
        return;
    }
    event.timestampNs = static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now() - epoch_)
            .count());
    event.sequence = sequences_[producer]->fetch_add(1, std::memory_order_relaxed);
    if (!rings_[producer]->tryPush(event)) {
        dropped_.fetch_add(1, std::memory_order_relaxed);
        droppedCounter_.add();
        return;
    }
    eventCounter_.add();
}

std::size_t LegJournal::drainOnce() {
    std::size_t drained = 0;
    JournalEvent event;
    for (const auto& ring : rings_) {
        while (ring->tryPop(event)) {
            writeLine(event);
            ++drained;
        }
    }
    if (drained != 0) out_.flush();
    return drained;
}

void LegJournal::close() {
    if (closed_) return;
    closed_ = true;
    stop_.store(true, std::memory_order_release);
    if (drainer_.joinable()) drainer_.join();
    drainOnce();
    out_.flush();
}

void LegJournal::writeLine(const JournalEvent& event) {
    const std::string line = journalEventToJson(event);
    if (maxBytes_ != 0 && currentBytes_ != 0 &&
        currentBytes_ + line.size() + 1 > maxBytes_) {
        rotate();
    }
    out_ << line << '\n';
    currentBytes_ += line.size() + 1;
    written_.fetch_add(1, std::memory_order_relaxed);
}

// Single-rotation policy: the live file becomes `path.1` (replacing the
// previous generation), so the on-disk footprint is bounded by ~2·maxBytes.
// Only the drainer thread writes, so no lock is needed.
void LegJournal::rotate() {
    out_.flush();
    out_.close();
    std::rename(path_.c_str(), (path_ + ".1").c_str());
    out_.open(path_, std::ios::trunc);
    currentBytes_ = 0;
    rotations_.fetch_add(1, std::memory_order_relaxed);
    rotationCounter_.add();
}

std::string journalEventToJson(const JournalEvent& event) {
    JsonWriter json;
    json.beginObject();
    json.member("ev", phaseName(event.phase));
    json.member("seq", event.sequence);
    json.member("tNs", event.timestampNs);
    json.member("leg", event.leg);
    json.member("worker", event.worker);
    json.member("benchmark", std::string_view(event.benchmark));
    json.member("scheme", std::string_view(event.scheme));
    json.member("mv", static_cast<std::int64_t>(event.voltageMv));
    json.member("trial", event.trial);
    json.member("replay", event.replayed);
    json.member("cached", event.cached);
    if ((event.traceHi | event.traceLo) != 0) {
        TraceContext context;
        context.traceHi = event.traceHi;
        context.traceLo = event.traceLo;
        json.member("trace", traceIdHex(context));
        json.member("span", spanIdHex(event.spanId));
    }
    if (event.phase == JournalEvent::Phase::Finished) {
        json.member("durationNs", event.durationNs);
        json.member("outcome", event.linkFailed ? "link_failed" : "ok");
        json.member("cause", std::string_view(event.failCause));
    }
    json.endObject();
    return json.str();
}

} // namespace voltcache::obs
