#include "obs/export/telemetry.h"

#include <chrono>

#include "common/json.h"
#include "common/version.h"
#include "obs/export/prometheus.h"
#include "obs/span.h"
#include "obs/trace_context.h"

namespace voltcache::obs {

namespace {

std::uint64_t nowNs() {
    return static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now().time_since_epoch())
            .count());
}

} // namespace

ProgressBoard::ProgressBoard() : startNs_(nowNs()), lastTickNs_(startNs_) {}

void ProgressBoard::update(const Tick& tick) {
    const std::uint64_t now = nowNs();
    const std::lock_guard<std::mutex> lock(mutex_);
    // EWMA of the instantaneous legs/s between ticks: robust to the bursty
    // tick cadence (leg ticks are throttled, boundary ticks are not).
    if (tick.legsCompleted > lastTickLegs_ && now > lastTickNs_) {
        const double instantaneous =
            static_cast<double>(tick.legsCompleted - lastTickLegs_) /
            (static_cast<double>(now - lastTickNs_) * 1e-9);
        ewmaLegsPerSec_ = ewmaLegsPerSec_ == 0.0
                              ? instantaneous
                              : 0.7 * ewmaLegsPerSec_ + 0.3 * instantaneous;
        lastTickNs_ = now;
        lastTickLegs_ = tick.legsCompleted;
    }
    latest_ = tick;
}

void ProgressBoard::finish() {
    const std::lock_guard<std::mutex> lock(mutex_);
    done_ = true;
}

void ProgressBoard::beginJob(const std::string& job) {
    const std::uint64_t now = nowNs();
    const std::lock_guard<std::mutex> lock(mutex_);
    job_ = job;
    done_ = false;
    latest_ = Tick{};
    ewmaLegsPerSec_ = 0.0;
    lastTickNs_ = now;
    lastTickLegs_ = 0;
}

double ProgressBoard::ewmaLegsPerSec() const {
    const std::lock_guard<std::mutex> lock(mutex_);
    return ewmaLegsPerSec_;
}

std::string ProgressBoard::toJson() {
    // Snapshot the registry before taking the board lock (the registry has
    // its own lock; never hold both in the other order anywhere).
    TimedMetricsSnapshot fresh = MetricsRegistry::global().snapshotTimed();
    const std::vector<SpanStat> spans = Profiler::snapshot();

    const std::lock_guard<std::mutex> lock(mutex_);
    std::vector<MetricRate> rates;
    if (prevScrape_.has_value()) rates = metricsDelta(*prevScrape_, fresh);
    prevScrape_ = std::move(fresh);

    const std::uint64_t now = nowNs();
    JsonWriter json;
    json.beginObject();
    json.member("tool", "voltcache");
    json.member("kind", "progress");
    json.member("done", done_);
    if (!job_.empty()) json.member("job", job_);
    json.member("elapsedSeconds", static_cast<double>(now - startNs_) * 1e-9);
    json.key("benchmarks");
    json.beginObject();
    json.member("completed", static_cast<std::uint64_t>(latest_.benchmarksCompleted));
    json.member("total", static_cast<std::uint64_t>(latest_.benchmarksTotal));
    json.member("latest", latest_.benchmark);
    json.endObject();
    json.key("legs");
    json.beginObject();
    json.member("completed", static_cast<std::uint64_t>(latest_.legsCompleted));
    json.member("total", static_cast<std::uint64_t>(latest_.legsTotal));
    json.member("replayed", static_cast<std::uint64_t>(latest_.legsReplayed));
    json.member("executed", static_cast<std::uint64_t>(latest_.legsExecuted));
    json.member("cached", static_cast<std::uint64_t>(latest_.legsCached));
    json.endObject();
    json.member("workers", latest_.workers);
    json.member("ewmaLegsPerSec", ewmaLegsPerSec_);
    if (ewmaLegsPerSec_ > 0.0 && latest_.legsTotal >= latest_.legsCompleted) {
        json.member("etaSeconds",
                    static_cast<double>(latest_.legsTotal - latest_.legsCompleted) /
                        ewmaLegsPerSec_);
    } else {
        json.key("etaSeconds");
        json.null();
    }
    // Per-phase span attribution (empty unless the profiler is enabled).
    json.key("spans");
    json.beginArray();
    std::uint64_t totalSelfNs = 0;
    for (const SpanStat& span : spans) totalSelfNs += span.selfNs;
    for (const SpanStat& span : spans) {
        json.beginObject();
        json.member("name", span.name);
        json.member("count", span.count);
        json.member("totalNs", span.totalNs);
        json.member("selfNs", span.selfNs);
        json.member("selfFrac", totalSelfNs == 0
                                    ? 0.0
                                    : static_cast<double>(span.selfNs) /
                                          static_cast<double>(totalSelfNs));
        json.endObject();
    }
    json.endArray();
    // Counter rates since the previous /progress scrape (first scrape: []).
    json.key("rates");
    json.beginArray();
    for (const MetricRate& rate : rates) {
        json.beginObject();
        json.member("name", rate.name);
        json.key("labels");
        json.beginObject();
        for (const auto& [k, v] : rate.labels) json.member(k, v);
        json.endObject();
        json.member("delta", rate.delta);
        json.member("perSec", rate.perSec);
        json.endObject();
    }
    json.endArray();
    json.endObject();
    return json.str();
}

TelemetryServer::TelemetryServer(std::uint16_t port, ProgressBoard& board)
    : server_(port) {
    server_.route("/metrics", [] {
        HttpServer::Response response;
        response.contentType = "text/plain; version=0.0.4; charset=utf-8";
        response.body = renderPrometheus(MetricsRegistry::global().snapshot());
        return response;
    });
    server_.route("/progress", [&board] {
        HttpServer::Response response;
        response.contentType = "application/json";
        response.body = board.toJson();
        return response;
    });
    const std::uint64_t bootNs = nowNs();
    server_.route("/healthz", [bootNs] {
        // Build identity + uptime + store occupancy: enough for a probe to
        // tell a fresh daemon from a wedged one and an empty store from a
        // warm one, without parsing the whole /metrics exposition.
        double storeEntries = 0.0;
        double storeBytes = 0.0;
        for (const MetricSnapshot& metric : MetricsRegistry::global().snapshot()) {
            if (metric.name == "serve.store.entries") storeEntries = metric.value;
            if (metric.name == "serve.store.bytes") storeBytes = metric.value;
        }
        JsonWriter json;
        json.beginObject();
        json.member("status", "ok");
        json.member("version", buildVersion());
        json.member("uptimeSeconds",
                    static_cast<double>(nowNs() - bootNs) * 1e-9);
        json.key("store");
        json.beginObject();
        json.member("entries", storeEntries);
        json.member("bytes", storeBytes);
        json.endObject();
        json.endObject();
        HttpServer::Response response;
        response.contentType = "application/json";
        response.body = json.str() + "\n";
        return response;
    });
    // Per-job span trees from the PR 10 trace collector: /trace lists the
    // recent jobs, /trace/<job-or-trace-id> renders Chrome trace JSON.
    server_.route("/trace", [] {
        HttpServer::Response response;
        response.contentType = "application/json";
        response.body = JobTraceStore::global().indexJson() + "\n";
        return response;
    });
    server_.routePrefix("/trace/", [](std::string_view suffix) {
        HttpServer::Response response;
        const std::string body =
            JobTraceStore::global().toChromeJson(suffix);
        if (body.empty()) {
            response.status = 404;
            response.body = "no trace for '" + std::string(suffix) + "'\n";
            return response;
        }
        response.contentType = "application/json";
        response.body = body + "\n";
        return response;
    });
    server_.start();
}

} // namespace voltcache::obs
