#include "obs/export/http_server.h"

#include <chrono>

namespace voltcache::obs {

namespace {

const char* reasonPhrase(int status) {
    switch (status) {
    case 200: return "OK";
    case 404: return "Not Found";
    case 405: return "Method Not Allowed";
    case 400: return "Bad Request";
    case 500: return "Internal Server Error";
    default: return "Unknown";
    }
}

std::string renderResponse(const HttpServer::Response& response) {
    std::string out = "HTTP/1.1 " + std::to_string(response.status) + ' ' +
                      reasonPhrase(response.status) + "\r\n";
    out += "Content-Type: " + response.contentType + "\r\n";
    out += "Content-Length: " + std::to_string(response.body.size()) + "\r\n";
    out += "Connection: close\r\n\r\n";
    out += response.body;
    return out;
}

} // namespace

HttpServer::HttpServer(std::uint16_t port) : listener_(port) {}

HttpServer::~HttpServer() { stop(); }

void HttpServer::route(std::string path, Handler handler) {
    routes_[std::move(path)] = std::move(handler);
}

void HttpServer::routePrefix(std::string prefix, PrefixHandler handler) {
    prefixRoutes_[std::move(prefix)] = std::move(handler);
}

void HttpServer::start() {
    thread_ = std::thread([this] { run(); });
}

void HttpServer::stop() {
    listener_.requestStop();
    if (thread_.joinable()) thread_.join();
}

void HttpServer::run() {
    while (!listener_.stopping()) {
        net::Socket client = listener_.accept(std::chrono::milliseconds(100));
        if (!client.valid()) continue;
        handle(client);
        served_.fetch_add(1, std::memory_order_relaxed);
    }
}

void HttpServer::handle(net::Socket& client) {
    std::string request;
    Response response;
    if (!client.recvUntil(request, "\r\n\r\n")) {
        response = {400, "text/plain; charset=utf-8", "malformed request\n"};
        client.sendAll(renderResponse(response));
        return;
    }
    // Request line: METHOD SP PATH SP VERSION.
    const std::size_t methodEnd = request.find(' ');
    const std::size_t pathEnd =
        methodEnd == std::string::npos ? std::string::npos
                                       : request.find(' ', methodEnd + 1);
    if (methodEnd == std::string::npos || pathEnd == std::string::npos) {
        response = {400, "text/plain; charset=utf-8", "malformed request line\n"};
        client.sendAll(renderResponse(response));
        return;
    }
    const std::string method = request.substr(0, methodEnd);
    std::string path = request.substr(methodEnd + 1, pathEnd - methodEnd - 1);
    if (const std::size_t query = path.find('?'); query != std::string::npos) {
        path.resize(query);
    }
    if (method != "GET") {
        response = {405, "text/plain; charset=utf-8", "only GET is supported\n"};
        client.sendAll(renderResponse(response));
        return;
    }
    const auto it = routes_.find(path);
    const PrefixHandler* prefixHandler = nullptr;
    std::string_view suffix;
    if (it == routes_.end()) {
        // Longest matching prefix wins (map order is lexicographic, so walk
        // in reverse to meet longer candidates first among shared stems).
        for (auto pit = prefixRoutes_.rbegin(); pit != prefixRoutes_.rend(); ++pit) {
            if (path.size() >= pit->first.size() &&
                path.compare(0, pit->first.size(), pit->first) == 0) {
                prefixHandler = &pit->second;
                suffix = std::string_view(path).substr(pit->first.size());
                break;
            }
        }
    }
    if (it == routes_.end() && prefixHandler == nullptr) {
        response = {404, "text/plain; charset=utf-8", "no such route: " + path + "\n"};
        client.sendAll(renderResponse(response));
        return;
    }
    try {
        response = it != routes_.end() ? it->second() : (*prefixHandler)(suffix);
    } catch (const std::exception& e) {
        response = {500, "text/plain; charset=utf-8",
                    std::string("handler error: ") + e.what() + "\n"};
    }
    client.sendAll(renderResponse(response));
}

} // namespace voltcache::obs
