// Prometheus text-exposition renderer over MetricsRegistry::snapshot().
//
// Maps the registry's three kinds onto the exposition format version 0.0.4:
//   counter   -> `voltcache_<name>_total` with a TYPE/HELP header
//   gauge     -> `voltcache_<name>`
//   histogram -> cumulative `_bucket{le="..."}` series derived from the
//                registry's log2 buckets (bucket b holds integer values in
//                [2^(b-1), 2^b), so its inclusive upper bound is 2^b - 1),
//                plus `_sum`, `_count`, and the mandatory `le="+Inf"` bucket.
//
// Output is deterministic: families render in snapshot order (the registry
// sorts by name + labels), labels render in registration order with `le`
// last, and HELP/TYPE headers are emitted once per metric name. Everything
// is escaped per the exposition rules (backslash, newline — plus the double
// quote inside label values).
#pragma once

#include <string>
#include <string_view>
#include <vector>

#include "obs/metrics.h"

namespace voltcache::obs {

/// Sanitize a dotted registry name into a Prometheus metric name:
/// `sweep.legs` -> `voltcache_sweep_legs` (invalid chars become '_').
[[nodiscard]] std::string prometheusName(std::string_view name);

/// Sanitize a label key into a Prometheus label name — no namespace prefix
/// (that convention applies to metric names only), no ':' allowed.
[[nodiscard]] std::string prometheusLabelName(std::string_view name);

/// Escape a HELP text: backslash and newline.
[[nodiscard]] std::string prometheusEscapeHelp(std::string_view text);

/// Escape a label value: backslash, double quote, and newline.
[[nodiscard]] std::string prometheusEscapeLabel(std::string_view value);

/// Render a full snapshot as one exposition document (trailing newline
/// included). Safe to call on a live registry — the snapshot is already a
/// coherent copy, so each scrape is isolated from concurrent updates.
[[nodiscard]] std::string renderPrometheus(const std::vector<MetricSnapshot>& snapshot);

} // namespace voltcache::obs
