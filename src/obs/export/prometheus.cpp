#include "obs/export/prometheus.h"

#include <charconv>
#include <cmath>
#include <cstdint>
#include <limits>

namespace voltcache::obs {

namespace {

bool validNameChar(char c, bool first) {
    const bool alpha = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c == '_' ||
                       c == ':';
    if (first) return alpha;
    return alpha || (c >= '0' && c <= '9');
}

void appendDouble(std::string& out, double v) {
    if (std::isnan(v)) {
        out += "NaN";
        return;
    }
    if (std::isinf(v)) {
        out += v > 0 ? "+Inf" : "-Inf";
        return;
    }
    char buf[32];
    const auto [ptr, ec] = std::to_chars(buf, buf + sizeof buf, v);
    out.append(buf, ptr);
}

void appendLabels(std::string& out, const LabelList& labels,
                  std::string_view extraKey = {}, std::string_view extraValue = {}) {
    if (labels.empty() && extraKey.empty()) return;
    out += '{';
    bool first = true;
    for (const auto& [k, v] : labels) {
        if (!first) out += ',';
        first = false;
        out += prometheusLabelName(k);
        out += "=\"";
        out += prometheusEscapeLabel(v);
        out += '"';
    }
    if (!extraKey.empty()) {
        if (!first) out += ',';
        out += extraKey;
        out += "=\"";
        out += extraValue;
        out += '"';
    }
    out += '}';
}

const char* typeName(MetricKind kind) {
    switch (kind) {
    case MetricKind::Counter: return "counter";
    case MetricKind::Gauge: return "gauge";
    case MetricKind::Histogram: return "histogram";
    }
    return "untyped";
}

/// Inclusive integer upper bound of log2 bucket `b` (values in [2^(b-1), 2^b)).
std::uint64_t bucketUpperBound(std::size_t b) {
    if (b == 0) return 0;
    if (b >= 64) return std::numeric_limits<std::uint64_t>::max();
    return (std::uint64_t{1} << b) - 1;
}

} // namespace

std::string prometheusName(std::string_view name) {
    std::string out = "voltcache_";
    for (char c : name) {
        out += validNameChar(c, false) ? c : '_';
    }
    if (out.size() > 10 && !validNameChar(out[10], true)) out[10] = '_';
    return out;
}

std::string prometheusLabelName(std::string_view name) {
    std::string out;
    out.reserve(name.size());
    for (char c : name) {
        // Label names are [a-zA-Z_][a-zA-Z0-9_]* — no ':' and no namespace
        // prefix (that convention applies to metric names only).
        const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                        c == '_' || (!out.empty() && c >= '0' && c <= '9');
        out += ok ? c : '_';
    }
    if (out.empty()) out = "_";
    return out;
}

std::string prometheusEscapeHelp(std::string_view text) {
    std::string out;
    out.reserve(text.size());
    for (char c : text) {
        switch (c) {
        case '\\': out += "\\\\"; break;
        case '\n': out += "\\n"; break;
        default: out += c;
        }
    }
    return out;
}

std::string prometheusEscapeLabel(std::string_view value) {
    std::string out;
    out.reserve(value.size());
    for (char c : value) {
        switch (c) {
        case '\\': out += "\\\\"; break;
        case '"': out += "\\\""; break;
        case '\n': out += "\\n"; break;
        default: out += c;
        }
    }
    return out;
}

std::string renderPrometheus(const std::vector<MetricSnapshot>& snapshot) {
    std::string out;
    out.reserve(snapshot.size() * 96);
    std::string lastHeader; // HELP/TYPE emitted once per exposition name
    for (const MetricSnapshot& snap : snapshot) {
        std::string base = prometheusName(snap.name);
        if (snap.kind == MetricKind::Counter) base += "_total";
        if (base != lastHeader) {
            out += "# HELP " + base + " voltcache metric '" +
                   prometheusEscapeHelp(snap.name) + "'\n";
            out += "# TYPE " + base + ' ';
            out += typeName(snap.kind);
            out += '\n';
            lastHeader = base;
        }
        switch (snap.kind) {
        case MetricKind::Counter:
            out += base;
            appendLabels(out, snap.labels);
            out += ' ';
            out += std::to_string(snap.count);
            out += '\n';
            break;
        case MetricKind::Gauge:
            out += base;
            appendLabels(out, snap.labels);
            out += ' ';
            appendDouble(out, snap.value);
            out += '\n';
            break;
        case MetricKind::Histogram: {
            std::uint64_t cumulative = 0;
            for (std::size_t b = 0; b < snap.buckets.size(); ++b) {
                cumulative += snap.buckets[b];
                out += base + "_bucket";
                appendLabels(out, snap.labels, "le",
                             std::to_string(bucketUpperBound(b)));
                out += ' ';
                out += std::to_string(cumulative);
                out += '\n';
            }
            out += base + "_bucket";
            appendLabels(out, snap.labels, "le", "+Inf");
            out += ' ';
            out += std::to_string(snap.count);
            out += '\n';
            out += base + "_sum";
            appendLabels(out, snap.labels);
            out += ' ';
            out += std::to_string(snap.sum);
            out += '\n';
            out += base + "_count";
            appendLabels(out, snap.labels);
            out += ' ';
            out += std::to_string(snap.count);
            out += '\n';
            break;
        }
        }
    }
    return out;
}

} // namespace voltcache::obs
