// Minimal blocking-accept HTTP/1.1 server for the telemetry plane.
//
// One dedicated exporter thread accepts loopback connections and serves
// exact-path GET routes, one request per connection (`Connection: close`).
// Handlers run on the exporter thread and build their response from scratch
// per request — each scrape gets its own registry snapshot, so concurrent
// scrapers are isolated from each other and from the sweep's hot path (the
// workers never block on the exporter; the exporter only takes the registry
// snapshot lock).
//
// This is deliberately the smallest server that Prometheus and `voltcache
// top` can talk to; `voltcache serve` will grow its own protocol on the same
// socket layer.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <string_view>
#include <thread>

#include "common/socket.h"

namespace voltcache::obs {

class HttpServer {
public:
    struct Response {
        int status = 200;
        std::string contentType = "text/plain; charset=utf-8";
        std::string body;
    };
    /// Called on the exporter thread with the request path (query stripped).
    using Handler = std::function<Response()>;
    /// Prefix-route handler: receives the path suffix after the registered
    /// prefix ("/trace/job-7" under prefix "/trace/" → "job-7").
    using PrefixHandler = std::function<Response(std::string_view suffix)>;

    /// Binds 127.0.0.1:`port` (0 = ephemeral). Register routes, then start().
    explicit HttpServer(std::uint16_t port);
    ~HttpServer();
    HttpServer(const HttpServer&) = delete;
    HttpServer& operator=(const HttpServer&) = delete;

    /// Register an exact-match GET route ("/metrics"). Not thread-safe with
    /// respect to start(); register everything first.
    void route(std::string path, Handler handler);

    /// Register a GET prefix route ("/trace/"). Exact routes win; among
    /// prefix routes the longest matching prefix wins. Register before
    /// start(), like route().
    void routePrefix(std::string prefix, PrefixHandler handler);

    /// Launch the exporter thread.
    void start();

    /// Stop accepting and join the exporter thread (idempotent; also run by
    /// the destructor).
    void stop();

    [[nodiscard]] std::uint16_t port() const noexcept { return listener_.port(); }
    /// Requests answered so far (any status).
    [[nodiscard]] std::uint64_t requestsServed() const noexcept {
        return served_.load(std::memory_order_relaxed);
    }

private:
    void run();
    void handle(net::Socket& client);

    net::TcpListener listener_;
    std::map<std::string, Handler> routes_;
    std::map<std::string, PrefixHandler> prefixRoutes_;
    std::thread thread_;
    std::atomic<std::uint64_t> served_{0};
};

} // namespace voltcache::obs
