// Live telemetry plane: the HTTP exporter and the sweep progress board.
//
// TelemetryServer serves five routes on a dedicated exporter thread:
//   GET /metrics     — Prometheus text exposition of MetricsRegistry::global()
//   GET /progress    — live sweep progress JSON from a ProgressBoard (legs,
//                      benchmarks, EWMA throughput + ETA, per-phase span
//                      attribution, counter rates since the previous scrape)
//   GET /healthz     — JSON health document: status, build version (git
//                      describe), uptime seconds, serve.store occupancy
//   GET /trace       — index of recently traced jobs (obs/trace_context.h)
//   GET /trace/<job> — one job's span tree as Chrome trace-event JSON, by
//                      job label or 32-hex trace id (load it in
//                      chrome://tracing / Perfetto, or render with
//                      `voltcache trace`)
//
// ProgressBoard is the core-type-free mirror of the sweep's progress ticks:
// runSweep's onProgress hook feeds update(), /progress (and `voltcache top`)
// read toJson(). The board owns the EWMA legs/s estimate and the delta
// snapshot that turns cumulative counters into rates, so every scraper sees
// server-computed rates instead of re-deriving them (see
// MetricsRegistry::snapshotDelta).
//
// Everything here is observer-only: the board and server read executor state
// through atomics/snapshots and never touch leg computation, so attaching a
// telemetry plane cannot perturb the sweep's byte-identical JSON export.
#pragma once

#include <cstdint>
#include <functional>
#include <mutex>
#include <optional>
#include <string>

#include "obs/export/http_server.h"
#include "obs/metrics.h"

namespace voltcache::obs {

/// Latest-tick store + EWMA throughput/ETA, rendered as /progress JSON.
class ProgressBoard {
public:
    /// One progress tick, mirroring core's SweepProgress without depending
    /// on it (obs must not include core headers).
    struct Tick {
        std::size_t benchmarksCompleted = 0;
        std::size_t benchmarksTotal = 0;
        std::string benchmark;        ///< boundary ticks: the finished benchmark
        bool boundary = false;        ///< benchmark boundary vs throttled leg tick
        std::size_t legsCompleted = 0;
        std::size_t legsTotal = 0;
        std::size_t legsReplayed = 0;
        std::size_t legsExecuted = 0;
        std::size_t legsCached = 0;   ///< legs served from a result store
        unsigned workers = 0;
    };

    ProgressBoard();

    /// Thread-safe; called from the sweep's progress hook (already
    /// serialized under the sweep's progress lock, but the board takes its
    /// own mutex so scrapers may race it safely).
    void update(const Tick& tick);

    /// Mark the sweep finished (the final /progress documents report done).
    void finish();

    /// Start a new unit of work on the same board (`voltcache serve` reuses
    /// one board across jobs): labels subsequent /progress documents with
    /// `job`, clears the done flag, and resets the EWMA throughput estimate
    /// so one job's tail does not pollute the next job's ETA.
    void beginJob(const std::string& job);

    /// Render the /progress document. Includes per-phase span attribution
    /// (when the profiler is enabled) and counter rates since the previous
    /// toJson() call.
    [[nodiscard]] std::string toJson();

    /// EWMA legs/second estimate (0 until two ticks arrived).
    [[nodiscard]] double ewmaLegsPerSec() const;

private:
    mutable std::mutex mutex_;
    Tick latest_;
    std::string job_;
    bool done_ = false;
    std::uint64_t startNs_ = 0;
    std::uint64_t lastTickNs_ = 0;
    std::size_t lastTickLegs_ = 0;
    double ewmaLegsPerSec_ = 0.0;
    std::optional<TimedMetricsSnapshot> prevScrape_;
};

/// The /metrics + /progress + /healthz exporter. Construction binds and
/// starts serving; destruction stops the exporter thread.
class TelemetryServer {
public:
    /// `port` 0 binds an ephemeral port (report it via port()). The board
    /// must outlive the server.
    TelemetryServer(std::uint16_t port, ProgressBoard& board);
    ~TelemetryServer() = default;
    TelemetryServer(const TelemetryServer&) = delete;
    TelemetryServer& operator=(const TelemetryServer&) = delete;

    [[nodiscard]] std::uint16_t port() const noexcept { return server_.port(); }
    [[nodiscard]] std::uint64_t scrapes() const noexcept {
        return server_.requestsServed();
    }

private:
    HttpServer server_;
};

} // namespace voltcache::obs
