#include "obs/trace_context.h"

#include <unistd.h>

#include <atomic>
#include <chrono>
#include <deque>
#include <mutex>

#include "common/hash.h"
#include "common/json.h"
#include "obs/metrics.h"

namespace voltcache::obs {

namespace {

std::uint64_t wallNs() {
    return static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::system_clock::now().time_since_epoch())
            .count());
}

std::uint64_t steadyNs() {
    return static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now().time_since_epoch())
            .count());
}

std::uint64_t loadU64(const Digest256& digest, std::size_t offset) {
    std::uint64_t value = 0;
    for (std::size_t i = 0; i < 8; ++i) {
        value |= static_cast<std::uint64_t>(digest[offset + i]) << (8 * i);
    }
    return value;
}

void appendHex64(std::string& out, std::uint64_t value) {
    static constexpr char kHex[] = "0123456789abcdef";
    for (int shift = 60; shift >= 0; shift -= 4) {
        out.push_back(kHex[(value >> shift) & 0xF]);
    }
}

bool parseHex64(std::string_view hex, std::uint64_t& value) {
    if (hex.size() != 16) return false;
    std::uint64_t parsed = 0;
    for (const char c : hex) {
        std::uint64_t nibble = 0;
        if (c >= '0' && c <= '9') nibble = static_cast<std::uint64_t>(c - '0');
        else if (c >= 'a' && c <= 'f') nibble = static_cast<std::uint64_t>(c - 'a' + 10);
        else if (c >= 'A' && c <= 'F') nibble = static_cast<std::uint64_t>(c - 'A' + 10);
        else return false;
        parsed = (parsed << 4) | nibble;
    }
    value = parsed;
    return true;
}

/// Process-current context. Mutex-guarded so a 192-bit context is never read
/// torn; the hot paths never reach here without first passing the
/// JobTraceStore::collecting() relaxed-load guard.
std::mutex g_currentMutex;
TraceContext g_current;

} // namespace

TraceContext makeRootContext(std::string_view label) {
    static std::atomic<std::uint64_t> counter{0};
    HashWriter hasher;
    hasher.str("voltcache.trace.root");
    hasher.str(label);
    hasher.u64(wallNs());
    hasher.u64(steadyNs());
    hasher.u64(static_cast<std::uint64_t>(::getpid()));
    hasher.u64(counter.fetch_add(1, std::memory_order_relaxed));
    const Digest256 digest = hasher.finish();
    TraceContext context;
    context.traceHi = loadU64(digest, 0);
    context.traceLo = loadU64(digest, 8);
    if (!context.valid()) context.traceLo = 1; // astronomically unlikely
    context.spanId = rootSpanId(context);
    return context;
}

std::uint64_t rootSpanId(const TraceContext& context) {
    HashWriter hasher;
    hasher.str("voltcache.trace.span0");
    hasher.u64(context.traceHi);
    hasher.u64(context.traceLo);
    const std::uint64_t id = loadU64(hasher.finish(), 0);
    return id == 0 ? 1 : id;
}

std::uint64_t childSpanId(const TraceContext& parent, std::uint64_t index) {
    HashWriter hasher;
    hasher.str("voltcache.trace.child");
    hasher.u64(parent.traceHi);
    hasher.u64(parent.traceLo);
    hasher.u64(parent.spanId);
    hasher.u64(index);
    const std::uint64_t id = loadU64(hasher.finish(), 0);
    return id == 0 ? 1 : id;
}

std::string traceIdHex(const TraceContext& context) {
    if (!context.valid()) return {};
    std::string out;
    out.reserve(32);
    appendHex64(out, context.traceHi);
    appendHex64(out, context.traceLo);
    return out;
}

std::string spanIdHex(std::uint64_t spanId) {
    std::string out;
    out.reserve(16);
    appendHex64(out, spanId);
    return out;
}

bool parseTraceIdHex(std::string_view hex, TraceContext& context) {
    std::uint64_t hi = 0;
    std::uint64_t lo = 0;
    if (hex.size() != 32 || !parseHex64(hex.substr(0, 16), hi) ||
        !parseHex64(hex.substr(16), lo)) {
        return false;
    }
    if ((hi | lo) == 0) return false;
    context.traceHi = hi;
    context.traceLo = lo;
    context.spanId = rootSpanId(context);
    return true;
}

TraceContext currentTraceContext() noexcept {
    const std::lock_guard<std::mutex> lock(g_currentMutex);
    return g_current;
}

void setCurrentTraceContext(const TraceContext& context) noexcept {
    const std::lock_guard<std::mutex> lock(g_currentMutex);
    g_current = context;
}

namespace {
/// One relaxed load on every span close — the collector's hot-path guard.
std::atomic<bool> g_collecting{false};
} // namespace

struct JobTraceStore::Impl {
    struct JobTrace {
        std::string job;
        std::string traceHex;
        TraceContext root;
        std::uint64_t epochNs = 0; ///< steady_clock at beginJob (trace t=0)
        bool open = false;
        std::vector<JobSpan> spans;
        std::uint64_t dropped = 0;
    };

    mutable std::mutex mutex;
    std::deque<JobTrace> jobs; ///< newest at the back
    std::atomic<std::uint64_t> dropped{0};
    Counter droppedCounter = MetricsRegistry::global().counter("trace.spans_dropped");
    Counter spanCounter = MetricsRegistry::global().counter("trace.spans");

    JobTrace* findOpenLocked(const TraceContext& context) {
        for (auto it = jobs.rbegin(); it != jobs.rend(); ++it) {
            if (it->open && it->root.traceHi == context.traceHi &&
                it->root.traceLo == context.traceLo) {
                return &*it;
            }
        }
        return nullptr;
    }

    void refreshCollectingLocked() {
        bool any = false;
        for (const JobTrace& job : jobs) any = any || job.open;
        g_collecting.store(any, std::memory_order_relaxed);
    }
};

JobTraceStore::JobTraceStore() : impl_(new Impl) {}
JobTraceStore::~JobTraceStore() { delete impl_; }

JobTraceStore& JobTraceStore::global() {
    static JobTraceStore* store = new JobTraceStore(); // leaked: spans may
    return *store; // close during thread teardown after static destructors
}

bool JobTraceStore::collecting() noexcept {
    return g_collecting.load(std::memory_order_relaxed);
}

void JobTraceStore::beginJob(const std::string& job, const TraceContext& context) {
    if (!context.valid()) return;
    const std::lock_guard<std::mutex> lock(impl_->mutex);
    Impl::JobTrace trace;
    trace.job = job;
    trace.traceHex = traceIdHex(context);
    trace.root = context;
    trace.epochNs = steadyNs();
    trace.open = true;
    impl_->jobs.push_back(std::move(trace));
    while (impl_->jobs.size() > kMaxJobs) impl_->jobs.pop_front();
    impl_->refreshCollectingLocked();
}

void JobTraceStore::endJob(const TraceContext& context) {
    const std::lock_guard<std::mutex> lock(impl_->mutex);
    if (Impl::JobTrace* job = impl_->findOpenLocked(context)) job->open = false;
    impl_->refreshCollectingLocked();
}

void JobTraceStore::record(const TraceContext& context, JobSpan span) {
    if (!context.valid()) return;
    const std::lock_guard<std::mutex> lock(impl_->mutex);
    Impl::JobTrace* job = impl_->findOpenLocked(context);
    if (job == nullptr) return;
    if (job->spans.size() >= kMaxSpansPerJob) {
        ++job->dropped;
        impl_->dropped.fetch_add(1, std::memory_order_relaxed);
        impl_->droppedCounter.add();
        return;
    }
    job->spans.push_back(std::move(span));
    impl_->spanCounter.add();
}

void JobTraceStore::recordCurrent(const char* name, std::uint64_t startNs,
                                  std::uint64_t durationNs) {
    if (!collecting()) return;
    const TraceContext context = currentTraceContext();
    if (!context.valid()) return;
    JobSpan span;
    span.name = name;
    span.parentSpanId = context.spanId;
    span.startNs = startNs;
    span.durationNs = durationNs;
    record(context, std::move(span));
}

namespace {

void writeSpanEvent(JsonWriter& json, const JobSpan& span, std::uint64_t epochNs) {
    json.beginObject();
    if (span.leg) {
        json.member("name", "leg " + span.benchmark + "/" + span.scheme + "@" +
                                std::to_string(span.voltageMv) + "mV#" +
                                std::to_string(span.trial));
        json.member("cat", span.cached ? "leg,cached" : "leg");
    } else {
        json.member("name", span.name);
        json.member("cat", "phase");
    }
    json.member("ph", "X");
    const std::uint64_t rel = span.startNs > epochNs ? span.startNs - epochNs : 0;
    json.member("ts", static_cast<double>(rel) * 1e-3);
    // Store hits are zero-cost on the timeline: the leg did no simulation.
    // The actual lookup wall time survives in args.wallNs.
    json.member("dur", span.cached ? 0.0 : static_cast<double>(span.durationNs) * 1e-3);
    json.member("pid", 1);
    json.member("tid", static_cast<std::uint64_t>(span.worker));
    json.key("args");
    json.beginObject();
    if (span.spanId != 0) json.member("span", spanIdHex(span.spanId));
    if (span.parentSpanId != 0) json.member("parent", spanIdHex(span.parentSpanId));
    if (span.leg) {
        json.member("benchmark", span.benchmark);
        json.member("scheme", span.scheme);
        json.member("mv", static_cast<std::int64_t>(span.voltageMv));
        json.member("trial", span.trial);
        json.member("replayed", span.replayed);
        json.member("cached", span.cached);
        if (span.cached) json.member("wallNs", span.durationNs);
        if (span.linkFailed) json.member("linkFailed", true);
    }
    json.endObject();
    json.endObject();
}

} // namespace

std::string JobTraceStore::toChromeJson(std::string_view jobOrTraceId) const {
    const std::lock_guard<std::mutex> lock(impl_->mutex);
    const Impl::JobTrace* found = nullptr;
    for (auto it = impl_->jobs.rbegin(); it != impl_->jobs.rend(); ++it) {
        if (it->job == jobOrTraceId || it->traceHex == jobOrTraceId) {
            found = &*it;
            break;
        }
    }
    if (found == nullptr) return {};
    JsonWriter json;
    json.beginObject();
    json.member("tool", "voltcache");
    json.member("kind", "trace");
    json.member("job", found->job);
    json.member("trace", found->traceHex);
    json.member("open", found->open);
    json.member("spanCount", static_cast<std::uint64_t>(found->spans.size()));
    json.member("droppedSpans", found->dropped);
    json.member("displayTimeUnit", "ms");
    json.key("traceEvents");
    json.beginArray();
    for (const JobSpan& span : found->spans) {
        writeSpanEvent(json, span, found->epochNs);
    }
    json.endArray();
    json.endObject();
    return json.str();
}

std::string JobTraceStore::indexJson() const {
    const std::lock_guard<std::mutex> lock(impl_->mutex);
    JsonWriter json;
    json.beginObject();
    json.member("tool", "voltcache");
    json.member("kind", "traceIndex");
    json.key("jobs");
    json.beginArray();
    for (auto it = impl_->jobs.rbegin(); it != impl_->jobs.rend(); ++it) {
        json.beginObject();
        json.member("job", it->job);
        json.member("trace", it->traceHex);
        json.member("open", it->open);
        json.member("spans", static_cast<std::uint64_t>(it->spans.size()));
        json.member("droppedSpans", it->dropped);
        json.endObject();
    }
    json.endArray();
    json.endObject();
    return json.str();
}

std::uint64_t JobTraceStore::dropped() const noexcept {
    return impl_->dropped.load(std::memory_order_relaxed);
}

void JobTraceStore::clear() {
    const std::lock_guard<std::mutex> lock(impl_->mutex);
    impl_->jobs.clear();
    impl_->refreshCollectingLocked();
}

} // namespace voltcache::obs
