// Per-job distributed-tracing context for the serve plane.
//
// A TraceContext is a 128-bit trace id plus the 64-bit span id of the
// current scope, both drawn from the repo's own SHA-256 (common/hash.h) so
// ids are well-mixed without a CSPRNG dependency. The id is minted once per
// job — by `voltcache submit` on the client, or by the serve daemon when a
// client did not choose one — and propagated through the NDJSON protocol,
// the session queue, the executor, and into every sweep leg: each
// SweepLegEvent carries (traceHi, traceLo, spanId) where spanId is the leg's
// child span derived deterministically from (trace id, parent span, leg
// index). Derivation, not random draws, keeps the sweep byte-identical and
// replayable: the same job config always yields the same span tree.
//
// JobTraceStore is the in-process span collector behind the telemetry
// plane's `/trace/<job>` endpoint and `voltcache trace`: a bounded ring of
// recent jobs, each holding a bounded list of closed spans (legs and
// profiler phases), rendered on demand as Chrome trace-event JSON. Cached
// legs (PR 9 store hits) are annotated as zero-cost spans — duration 0 on
// the timeline, actual lookup wall time preserved as an arg.
//
// Collection is observer-only and off by default: when no job is being
// collected, the hot-path guard is one relaxed atomic load.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace voltcache::obs {

/// 128-bit trace id + the 64-bit span id of the owning scope. Zero trace id
/// means "tracing off" — the safe default everywhere.
struct TraceContext {
    std::uint64_t traceHi = 0;
    std::uint64_t traceLo = 0;
    std::uint64_t spanId = 0;

    [[nodiscard]] bool valid() const noexcept { return (traceHi | traceLo) != 0; }

    friend bool operator==(const TraceContext&, const TraceContext&) = default;
};

/// Mint a fresh root context: the trace id hashes `label`, the wall clock,
/// the process id, and a process-local counter, so concurrent clients and
/// repeated jobs never collide. The root span id is rootSpanId(id).
[[nodiscard]] TraceContext makeRootContext(std::string_view label);

/// Deterministic root span id: a pure function of the 128-bit trace id, so
/// a client that minted the id and a server that re-parsed it from hex agree
/// on the span tree without shipping the span id over the wire.
[[nodiscard]] std::uint64_t rootSpanId(const TraceContext& context);

/// Deterministic child span id: hash of (trace id, parent span id, index).
/// The sweep uses the canonical leg index, so a replayed job reproduces the
/// exact same span tree.
[[nodiscard]] std::uint64_t childSpanId(const TraceContext& parent, std::uint64_t index);

/// 32 lowercase hex chars (hi then lo). Invalid contexts render as "".
[[nodiscard]] std::string traceIdHex(const TraceContext& context);

/// 16 lowercase hex chars.
[[nodiscard]] std::string spanIdHex(std::uint64_t spanId);

/// Parse a 32-hex-char trace id into traceHi/traceLo and set spanId to the
/// root span id. Returns false (context unmodified) on malformed input.
[[nodiscard]] bool parseTraceIdHex(std::string_view hex, TraceContext& context);

/// Process-current context, fed by the job executor and read by obs::Span
/// when it reports into the collector. Plain atomics: the serve executor
/// runs one job at a time and the CLI runs one sweep per process, so a
/// process-global current context is exact.
[[nodiscard]] TraceContext currentTraceContext() noexcept;
void setCurrentTraceContext(const TraceContext& context) noexcept;

/// RAII current-context scope (restores the previous context).
class ScopedTraceContext {
public:
    explicit ScopedTraceContext(const TraceContext& context) noexcept
        : previous_(currentTraceContext()) {
        setCurrentTraceContext(context);
    }
    ~ScopedTraceContext() { setCurrentTraceContext(previous_); }
    ScopedTraceContext(const ScopedTraceContext&) = delete;
    ScopedTraceContext& operator=(const ScopedTraceContext&) = delete;

private:
    TraceContext previous_;
};

/// One closed span inside a job's trace. Legs carry the grid coordinates;
/// profiler phase spans carry just the name and timing.
struct JobSpan {
    std::string name;               ///< "leg" or a phase span name
    std::uint64_t spanId = 0;
    std::uint64_t parentSpanId = 0; ///< 0 = child of the job root
    std::uint64_t startNs = 0;      ///< steady_clock since-epoch at open
    std::uint64_t durationNs = 0;
    std::uint32_t worker = 0;
    // Leg annotations (meaningful when leg == true).
    bool leg = false;
    std::string benchmark;
    std::string scheme;
    std::int32_t voltageMv = 0;
    std::uint32_t trial = 0;
    bool replayed = false;
    bool cached = false;   ///< store hit: rendered as a zero-cost span
    bool linkFailed = false;
};

/// Bounded collector of recent jobs' span trees. All methods are
/// thread-safe; record() drops (and counts) beyond the per-job span cap so a
/// million-leg sweep cannot balloon the daemon.
class JobTraceStore {
public:
    static constexpr std::size_t kMaxJobs = 16;
    static constexpr std::size_t kMaxSpansPerJob = 8192;

    [[nodiscard]] static JobTraceStore& global();

    /// True when some job is currently collecting (one relaxed load — the
    /// hot-path guard for span feeds).
    [[nodiscard]] static bool collecting() noexcept;

    /// Open a new job keyed by both `job` (label) and the context's trace
    /// id; evicts the oldest job beyond kMaxJobs.
    void beginJob(const std::string& job, const TraceContext& context);

    /// Close the current job (collection stops; the trace stays queryable).
    void endJob(const TraceContext& context);

    /// Append one closed span to the job owning `context`'s trace id.
    /// No-op when the trace id matches no open job.
    void record(const TraceContext& context, JobSpan span);

    /// Convenience for obs::Span: attribute a closed phase span to the
    /// process-current context.
    void recordCurrent(const char* name, std::uint64_t startNs, std::uint64_t durationNs);

    /// Chrome trace-event JSON ({"traceEvents":[...]}) for a job by label or
    /// by 32-hex trace id; empty string when unknown.
    [[nodiscard]] std::string toChromeJson(std::string_view jobOrTraceId) const;

    /// One-line-per-job index: [{"job":..., "trace":..., "spans":N,
    /// "open":bool}, ...] newest first.
    [[nodiscard]] std::string indexJson() const;

    /// Spans dropped beyond kMaxSpansPerJob since construction.
    [[nodiscard]] std::uint64_t dropped() const noexcept;

    /// Forget every job (tests).
    void clear();

private:
    JobTraceStore();
    ~JobTraceStore();

    struct Impl;
    Impl* impl_; ///< leaked with the singleton; spans may close at exit
};

} // namespace voltcache::obs
