// Structured event tracing: a bounded ring-buffer sink + Chrome trace export.
//
// Instrumentation points call `if (TraceSink* s = traceSink()) s->record(...)`;
// with no sink attached the cost is one relaxed atomic load and a branch, so
// tracing can stay compiled in everywhere. Event names and categories are
// `const char*` by design — they must be string literals (or otherwise outlive
// the sink); the sink stores the pointers, never copies.
//
// Three event phases share the ring: instant events ('i', the simulation
// instrumentation), complete spans ('X', emitted by obs::Span when profiling
// is on), and counter samples ('C', emitted by the worker-utilization
// sampler). Span and counter events carry wall-clock microseconds relative to
// sink construction, so Perfetto lays them out on a real timeline.
//
// The ring is fixed-capacity and overwrites the oldest event, so a trace of a
// billion-instruction run is bounded memory and ends with the most recent
// window of activity — which is what one debugs. Overwrites are counted into
// the process-wide "obs.trace_dropped_total" metric, so a truncated trace is
// detectable from the registry snapshot alone.
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>
#include <initializer_list>
#include <mutex>
#include <string>
#include <vector>

#include "obs/metrics.h"

namespace voltcache::obs {

/// One key/value argument attached to a trace event.
struct TraceArg {
    const char* key = nullptr; ///< string literal
    std::int64_t value = 0;
};

inline constexpr std::size_t kMaxTraceArgs = 8;

/// Chrome trace-event phase of a recorded event.
enum class TracePhase : std::uint8_t {
    Instant, ///< "ph":"i" — a point event
    Span,    ///< "ph":"X" — a complete duration event
    Counter, ///< "ph":"C" — a counter sample (args are the series values)
};

struct TraceEvent {
    const char* name = nullptr;     ///< string literal
    const char* category = nullptr; ///< string literal
    std::uint64_t ts = 0;           ///< sink-local sequence number (monotonic)
    std::uint64_t tid = 0;          ///< dense per-thread id
    TracePhase phase = TracePhase::Instant;
    std::uint64_t wallUs = 0;       ///< µs since sink construction
    std::uint64_t durUs = 0;        ///< Span events: duration in µs
    std::size_t argCount = 0;
    std::array<TraceArg, kMaxTraceArgs> args{};
};

class TraceSink {
public:
    explicit TraceSink(std::size_t capacity = std::size_t{1} << 16);

    /// Record one instant event. Args beyond kMaxTraceArgs are dropped.
    void record(const char* name, const char* category,
                std::initializer_list<TraceArg> args = {});

    /// Record a complete span ("ph":"X"). `startNs` is a steady_clock
    /// since-epoch stamp (obs::Span's clock); spans started before the sink
    /// existed clamp to the sink's construction instant.
    void recordSpan(const char* name, const char* category, std::uint64_t startNs,
                    std::uint64_t durationNs, std::initializer_list<TraceArg> args = {});

    /// Record a counter sample ("ph":"C"); each arg is one series value.
    void recordCounter(const char* name, const char* category,
                       std::initializer_list<TraceArg> args);

    /// Events oldest-first (at most `capacity` of them).
    [[nodiscard]] std::vector<TraceEvent> events() const;

    [[nodiscard]] std::size_t capacity() const noexcept { return capacity_; }
    /// Total record() calls, including those whose slot was later overwritten.
    [[nodiscard]] std::uint64_t recorded() const;
    /// Events lost to ring overwrite.
    [[nodiscard]] std::uint64_t dropped() const;

    /// steady_clock since-epoch nanoseconds at construction (the trace's t=0).
    [[nodiscard]] std::uint64_t epochNs() const noexcept { return epochNs_; }

    /// Render as Chrome trace-event JSON (load in Perfetto / chrome://tracing).
    [[nodiscard]] std::string toChromeJson() const;

private:
    /// Claim the next ring slot (caller must hold mutex_) and stamp the
    /// sequence/thread/wall fields; bumps the dropped-total counter when an
    /// old event is overwritten.
    TraceEvent& claimSlotLocked(std::uint64_t tid);

    const std::size_t capacity_;
    const std::uint64_t epochNs_;
    Counter droppedTotal_; ///< process-wide "obs.trace_dropped_total"
    mutable std::mutex mutex_;
    std::vector<TraceEvent> ring_;
    std::uint64_t next_ = 0; ///< sequence number of the next event
};

/// Currently attached process-wide sink, or nullptr (the common case).
[[nodiscard]] TraceSink* traceSink() noexcept;

/// Attach/detach the process-wide sink. Returns the previous sink. The caller
/// owns the sink and must keep it alive while attached.
TraceSink* setTraceSink(TraceSink* sink) noexcept;

/// RAII attach: restores the previous sink on destruction.
class ScopedTraceSink {
public:
    explicit ScopedTraceSink(TraceSink* sink) noexcept : previous_(setTraceSink(sink)) {}
    ~ScopedTraceSink() { setTraceSink(previous_); }
    ScopedTraceSink(const ScopedTraceSink&) = delete;
    ScopedTraceSink& operator=(const ScopedTraceSink&) = delete;

private:
    TraceSink* previous_;
};

} // namespace voltcache::obs
