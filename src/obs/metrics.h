// Labelled metrics registry with a near-zero-overhead handle API.
//
// Design: acquiring a handle (Counter/Gauge/Histogram) resolves the metric
// family once under a lock and hands back a pointer to a per-thread cell;
// every subsequent update is a single relaxed atomic on that cell — no map
// lookup, no shared cache line with other threads. snapshot() merges the
// per-thread shards, so the parallel Monte Carlo sweep records metrics
// without cross-thread contention on the hot path.
//
// Counters and histograms shard per thread (sums merge); a gauge is a single
// shared cell (last writer wins — merging per-thread "current values" has no
// meaningful semantics).
#pragma once

#include <array>
#include <atomic>
#include <cstddef>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace voltcache::obs {

/// Metric labels as ordered key/value pairs, e.g. {{"scheme","ffw+bbr"},{"mv","400"}}.
using LabelList = std::vector<std::pair<std::string, std::string>>;

enum class MetricKind : std::uint8_t { Counter, Gauge, Histogram };

/// Histogram layout: bucket 0 holds value==0; bucket b>0 holds values with
/// bit_width(v)==b, i.e. v in [2^(b-1), 2^b). 64-bit values need 65 buckets.
inline constexpr std::size_t kHistogramBuckets = 65;

/// Bucket index for a histogram observation.
[[nodiscard]] std::size_t histogramBucket(std::uint64_t value) noexcept;

/// Smallest value that lands in `bucket` (inverse of histogramBucket).
[[nodiscard]] std::uint64_t histogramBucketLow(std::size_t bucket) noexcept;

namespace detail {

struct CounterCell {
    std::atomic<std::uint64_t> value{0};
};

struct GaugeCell {
    std::atomic<double> value{0.0};
};

struct HistogramCell {
    std::array<std::atomic<std::uint64_t>, kHistogramBuckets> buckets{};
    std::atomic<std::uint64_t> count{0};
    std::atomic<std::uint64_t> sum{0};
};

} // namespace detail

/// Monotonic counter handle. Default-constructed handles are inert no-ops so
/// instrumentation can be optional (e.g. only when BBR placement is active).
class Counter {
public:
    Counter() = default;
    void add(std::uint64_t delta = 1) noexcept {
        if (cell_ != nullptr) cell_->value.fetch_add(delta, std::memory_order_relaxed);
    }

private:
    friend class MetricsRegistry;
    explicit Counter(detail::CounterCell* cell) noexcept : cell_(cell) {}
    detail::CounterCell* cell_ = nullptr;
};

/// Point-in-time gauge handle (shared cell; last writer wins).
class Gauge {
public:
    Gauge() = default;
    void set(double value) noexcept {
        if (cell_ != nullptr) cell_->value.store(value, std::memory_order_relaxed);
    }
    /// Monotonic high-water mark: keep the larger of the current and new
    /// value (e.g. peak resident trace bytes across concurrent recorders).
    void setMax(double value) noexcept {
        if (cell_ == nullptr) return;
        double current = cell_->value.load(std::memory_order_relaxed);
        while (current < value && !cell_->value.compare_exchange_weak(
                                      current, value, std::memory_order_relaxed)) {
        }
    }

private:
    friend class MetricsRegistry;
    explicit Gauge(detail::GaugeCell* cell) noexcept : cell_(cell) {}
    detail::GaugeCell* cell_ = nullptr;
};

/// Log2-bucketed histogram handle.
class Histogram {
public:
    Histogram() = default;
    void observe(std::uint64_t value) noexcept {
        if (cell_ == nullptr) return;
        cell_->buckets[histogramBucket(value)].fetch_add(1, std::memory_order_relaxed);
        cell_->count.fetch_add(1, std::memory_order_relaxed);
        cell_->sum.fetch_add(value, std::memory_order_relaxed);
    }

private:
    friend class MetricsRegistry;
    explicit Histogram(detail::HistogramCell* cell) noexcept : cell_(cell) {}
    detail::HistogramCell* cell_ = nullptr;
};

/// Merged view of one metric family at snapshot time.
struct MetricSnapshot {
    std::string name;
    LabelList labels;
    MetricKind kind = MetricKind::Counter;
    std::uint64_t count = 0;              ///< counter value / histogram sample count
    double value = 0.0;                   ///< gauge value / histogram mean
    std::uint64_t sum = 0;                ///< histogram sum of observations
    std::vector<std::uint64_t> buckets;   ///< histogram log2 buckets (trimmed)
};

/// A snapshot stamped with the steady clock, so two of them turn cumulative
/// counters into rates (legs/s, faults/s) without scrapers re-deriving dt.
struct TimedMetricsSnapshot {
    std::uint64_t monotonicNs = 0;        ///< steady_clock at snapshot time
    std::vector<MetricSnapshot> metrics;
};

/// Per-family rate between two timed snapshots (counters and histogram
/// sample counts; gauges have no meaningful rate and are skipped).
struct MetricRate {
    std::string name;
    LabelList labels;
    std::uint64_t delta = 0; ///< count increase from prev to now
    double perSec = 0.0;     ///< delta / elapsed seconds
};

/// Rates for every counter/histogram family present in `now`. Families
/// absent from `prev` rate from zero; a counter that went backwards (e.g.
/// prev from another registry) clamps to zero rather than going negative.
[[nodiscard]] std::vector<MetricRate> metricsDelta(const TimedMetricsSnapshot& prev,
                                                   const TimedMetricsSnapshot& now);

class MetricsRegistry {
public:
    MetricsRegistry();
    ~MetricsRegistry();
    MetricsRegistry(const MetricsRegistry&) = delete;
    MetricsRegistry& operator=(const MetricsRegistry&) = delete;

    /// Resolve a handle bound to the calling thread's cell for this family.
    /// Re-resolving from the same thread returns the same cell, so handle
    /// churn does not grow memory. Kind mismatches on an existing family are
    /// contract violations.
    [[nodiscard]] Counter counter(std::string_view name, const LabelList& labels = {});
    [[nodiscard]] Gauge gauge(std::string_view name, const LabelList& labels = {});
    [[nodiscard]] Histogram histogram(std::string_view name, const LabelList& labels = {});

    /// One-shot conveniences for cold paths (lock + lookup per call).
    void add(std::string_view name, const LabelList& labels, std::uint64_t delta = 1);
    void set(std::string_view name, const LabelList& labels, double value);
    void observe(std::string_view name, const LabelList& labels, std::uint64_t value);

    /// Merge all per-thread shards into a deterministic (name, labels)-sorted
    /// list. Concurrent updates are tolerated (relaxed reads).
    [[nodiscard]] std::vector<MetricSnapshot> snapshot() const;

    /// snapshot() stamped with the steady clock.
    [[nodiscard]] TimedMetricsSnapshot snapshotTimed() const;

    /// Rates since `prev`, advancing `prev` to the fresh snapshot — the
    /// exporter's scrape-to-scrape delta in one call.
    [[nodiscard]] std::vector<MetricRate> snapshotDelta(TimedMetricsSnapshot& prev) const;

    /// Process-wide registry used by the built-in instrumentation.
    [[nodiscard]] static MetricsRegistry& global();

private:
    struct Family;
    Family& familyFor(std::string_view name, const LabelList& labels, MetricKind kind);

    mutable std::mutex mutex_;
    std::map<std::string, std::unique_ptr<Family>> families_;
};

/// Render a snapshot as a JSON array (one object per family).
[[nodiscard]] std::string metricsToJson(const std::vector<MetricSnapshot>& snapshot);

} // namespace voltcache::obs

namespace voltcache {
class JsonWriter;
namespace obs {
/// Stream a snapshot into an existing writer (emits one array value).
void writeMetrics(JsonWriter& json, const std::vector<MetricSnapshot>& snapshot);
} // namespace obs
} // namespace voltcache
