// Worker-utilization / queue-depth sampler for the sweep's leg executor.
//
// A background thread periodically invokes a caller-supplied probe (reading
// the executor's atomics) and publishes each sample three ways: gauges in
// the metrics registry ("sweep.workers_active", "sweep.queue_depth"), a
// log2 histogram of the active-worker count ("sweep.active_workers", whose
// mean estimates utilization over the run), and — when a TraceSink is
// attached — Chrome "ph":"C" counter events, so Perfetto draws the worker
// occupancy and backlog as counter tracks under the span timeline.
//
// One sample is taken synchronously on construction and one on destruction,
// so even a sweep shorter than the period leaves counters in the trace. The
// sampler only ever *reads* executor state; attaching it cannot perturb the
// sweep's results.
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <mutex>
#include <thread>

#include "obs/metrics.h"

namespace voltcache::obs {

class UtilizationSampler {
public:
    struct Sample {
        std::uint64_t activeWorkers = 0; ///< workers currently inside a leg
        std::uint64_t workers = 0;       ///< size of the worker pool
        std::uint64_t queueDepth = 0;    ///< legs not yet started
    };
    using Probe = std::function<Sample()>;

    explicit UtilizationSampler(Probe probe,
                                std::chrono::milliseconds period = std::chrono::milliseconds(20));
    ~UtilizationSampler();
    UtilizationSampler(const UtilizationSampler&) = delete;
    UtilizationSampler& operator=(const UtilizationSampler&) = delete;

    /// Samples taken so far (including the construction-time one).
    [[nodiscard]] std::uint64_t samples() const noexcept {
        return samples_.load(std::memory_order_relaxed);
    }

private:
    void emitSample();
    void run();

    Probe probe_;
    const std::chrono::milliseconds period_;
    Gauge activeGauge_;
    Gauge queueGauge_;
    Histogram activeHist_;
    std::atomic<std::uint64_t> samples_{0};
    std::mutex mutex_;
    std::condition_variable wake_;
    bool stop_ = false;
    std::thread thread_;
};

} // namespace voltcache::obs
