#include "obs/metrics.h"

#include <algorithm>
#include <bit>
#include <chrono>
#include <deque>
#include <unordered_map>

#include "common/contracts.h"
#include "common/json.h"

namespace voltcache::obs {
namespace {

/// Small dense thread id (0-based) for shard indexing; stable per thread.
std::uint64_t threadId() noexcept {
    static std::atomic<std::uint64_t> next{0};
    thread_local const std::uint64_t id = next.fetch_add(1, std::memory_order_relaxed);
    return id;
}

/// Canonical family key: name + sorted labels, with separators that cannot
/// appear in reasonable metric names.
std::string familyKey(std::string_view name, const LabelList& labels) {
    LabelList sorted = labels;
    std::sort(sorted.begin(), sorted.end());
    std::string key(name);
    for (const auto& [k, v] : sorted) {
        key += '\x1f';
        key += k;
        key += '\x1e';
        key += v;
    }
    return key;
}

const char* kindName(MetricKind kind) {
    switch (kind) {
    case MetricKind::Counter: return "counter";
    case MetricKind::Gauge: return "gauge";
    case MetricKind::Histogram: return "histogram";
    }
    return "?";
}

} // namespace

std::size_t histogramBucket(std::uint64_t value) noexcept {
    return static_cast<std::size_t>(std::bit_width(value));
}

std::uint64_t histogramBucketLow(std::size_t bucket) noexcept {
    if (bucket == 0) return 0;
    return std::uint64_t{1} << (bucket - 1);
}

struct MetricsRegistry::Family {
    MetricKind kind = MetricKind::Counter;
    std::string name;
    LabelList labels;
    // Cells live in deques: growth never invalidates handed-out pointers.
    std::deque<detail::CounterCell> counterCells;
    std::deque<detail::HistogramCell> histogramCells;
    detail::GaugeCell gaugeCell;
    std::unordered_map<std::uint64_t, std::size_t> cellOfThread;

    std::size_t cellIndexFor(std::uint64_t tid) {
        const auto [it, inserted] = cellOfThread.try_emplace(
            tid, kind == MetricKind::Histogram ? histogramCells.size() : counterCells.size());
        if (inserted) {
            if (kind == MetricKind::Histogram) {
                histogramCells.emplace_back();
            } else {
                counterCells.emplace_back();
            }
        }
        return it->second;
    }
};

MetricsRegistry::MetricsRegistry() = default;
MetricsRegistry::~MetricsRegistry() = default;

MetricsRegistry::Family& MetricsRegistry::familyFor(std::string_view name, const LabelList& labels,
                                                    MetricKind kind) {
    const std::string key = familyKey(name, labels);
    auto it = families_.find(key);
    if (it == families_.end()) {
        auto family = std::make_unique<Family>();
        family->kind = kind;
        family->name = std::string(name);
        family->labels = labels;
        it = families_.emplace(key, std::move(family)).first;
    }
    VC_EXPECTS(it->second->kind == kind); // family registered with another kind
    return *it->second;
}

Counter MetricsRegistry::counter(std::string_view name, const LabelList& labels) {
    const std::lock_guard<std::mutex> lock(mutex_);
    Family& family = familyFor(name, labels, MetricKind::Counter);
    return Counter(&family.counterCells[family.cellIndexFor(threadId())]);
}

Gauge MetricsRegistry::gauge(std::string_view name, const LabelList& labels) {
    const std::lock_guard<std::mutex> lock(mutex_);
    Family& family = familyFor(name, labels, MetricKind::Gauge);
    return Gauge(&family.gaugeCell);
}

Histogram MetricsRegistry::histogram(std::string_view name, const LabelList& labels) {
    const std::lock_guard<std::mutex> lock(mutex_);
    Family& family = familyFor(name, labels, MetricKind::Histogram);
    return Histogram(&family.histogramCells[family.cellIndexFor(threadId())]);
}

void MetricsRegistry::add(std::string_view name, const LabelList& labels, std::uint64_t delta) {
    counter(name, labels).add(delta);
}

void MetricsRegistry::set(std::string_view name, const LabelList& labels, double value) {
    gauge(name, labels).set(value);
}

void MetricsRegistry::observe(std::string_view name, const LabelList& labels, std::uint64_t value) {
    histogram(name, labels).observe(value);
}

std::vector<MetricSnapshot> MetricsRegistry::snapshot() const {
    const std::lock_guard<std::mutex> lock(mutex_);
    std::vector<MetricSnapshot> out;
    out.reserve(families_.size());
    for (const auto& [key, family] : families_) {
        MetricSnapshot snap;
        snap.name = family->name;
        snap.labels = family->labels;
        snap.kind = family->kind;
        switch (family->kind) {
        case MetricKind::Counter:
            for (const auto& cell : family->counterCells) {
                snap.count += cell.value.load(std::memory_order_relaxed);
            }
            snap.value = static_cast<double>(snap.count);
            break;
        case MetricKind::Gauge:
            snap.value = family->gaugeCell.value.load(std::memory_order_relaxed);
            break;
        case MetricKind::Histogram: {
            snap.buckets.assign(kHistogramBuckets, 0);
            for (const auto& cell : family->histogramCells) {
                for (std::size_t b = 0; b < kHistogramBuckets; ++b) {
                    snap.buckets[b] += cell.buckets[b].load(std::memory_order_relaxed);
                }
                snap.count += cell.count.load(std::memory_order_relaxed);
                snap.sum += cell.sum.load(std::memory_order_relaxed);
            }
            while (!snap.buckets.empty() && snap.buckets.back() == 0) snap.buckets.pop_back();
            snap.value = snap.count == 0
                             ? 0.0
                             : static_cast<double>(snap.sum) / static_cast<double>(snap.count);
            break;
        }
        }
        out.push_back(std::move(snap));
    }
    // families_ is keyed by name + sorted labels, so iteration is already
    // deterministic; keep the order.
    return out;
}

TimedMetricsSnapshot MetricsRegistry::snapshotTimed() const {
    TimedMetricsSnapshot timed;
    timed.monotonicNs = static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now().time_since_epoch())
            .count());
    timed.metrics = snapshot();
    return timed;
}

std::vector<MetricRate> MetricsRegistry::snapshotDelta(TimedMetricsSnapshot& prev) const {
    TimedMetricsSnapshot now = snapshotTimed();
    std::vector<MetricRate> rates = metricsDelta(prev, now);
    prev = std::move(now);
    return rates;
}

std::vector<MetricRate> metricsDelta(const TimedMetricsSnapshot& prev,
                                     const TimedMetricsSnapshot& now) {
    const double seconds =
        now.monotonicNs > prev.monotonicNs
            ? static_cast<double>(now.monotonicNs - prev.monotonicNs) * 1e-9
            : 0.0;
    // Both snapshots are (name, labels)-sorted, so a single map over prev
    // resolves matches; the delta list keeps now's deterministic order.
    std::map<std::pair<std::string, LabelList>, std::uint64_t> before;
    for (const MetricSnapshot& snap : prev.metrics) {
        if (snap.kind == MetricKind::Gauge) continue;
        before.emplace(std::make_pair(snap.name, snap.labels), snap.count);
    }
    std::vector<MetricRate> rates;
    rates.reserve(now.metrics.size());
    for (const MetricSnapshot& snap : now.metrics) {
        if (snap.kind == MetricKind::Gauge) continue;
        MetricRate rate;
        rate.name = snap.name;
        rate.labels = snap.labels;
        const auto it = before.find(std::make_pair(snap.name, snap.labels));
        const std::uint64_t was = it != before.end() ? it->second : 0;
        rate.delta = snap.count > was ? snap.count - was : 0;
        rate.perSec = seconds > 0.0 ? static_cast<double>(rate.delta) / seconds : 0.0;
        rates.push_back(std::move(rate));
    }
    return rates;
}

MetricsRegistry& MetricsRegistry::global() {
    static MetricsRegistry registry;
    return registry;
}

void writeMetrics(JsonWriter& json, const std::vector<MetricSnapshot>& snapshot) {
    json.beginArray();
    for (const MetricSnapshot& snap : snapshot) {
        json.beginObject();
        json.member("name", snap.name);
        json.member("kind", kindName(snap.kind));
        json.key("labels");
        json.beginObject();
        for (const auto& [k, v] : snap.labels) json.member(k, v);
        json.endObject();
        switch (snap.kind) {
        case MetricKind::Counter:
            json.member("value", snap.count);
            break;
        case MetricKind::Gauge:
            json.member("value", snap.value);
            break;
        case MetricKind::Histogram:
            json.member("count", snap.count);
            json.member("sum", snap.sum);
            json.member("mean", snap.value);
            json.key("buckets");
            json.beginArray();
            for (std::size_t b = 0; b < snap.buckets.size(); ++b) {
                if (snap.buckets[b] == 0) continue;
                json.beginObject();
                json.member("low", histogramBucketLow(b));
                json.member("count", snap.buckets[b]);
                json.endObject();
            }
            json.endArray();
            break;
        }
        json.endObject();
    }
    json.endArray();
}

std::string metricsToJson(const std::vector<MetricSnapshot>& snapshot) {
    JsonWriter json;
    writeMetrics(json, snapshot);
    return json.str();
}

} // namespace voltcache::obs
