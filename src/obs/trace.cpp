#include "obs/trace.h"

#include <atomic>
#include <chrono>

#include "common/contracts.h"
#include "common/json.h"

namespace voltcache::obs {
namespace {

std::atomic<TraceSink*> g_sink{nullptr};

std::uint64_t traceThreadId() noexcept {
    static std::atomic<std::uint64_t> next{0};
    thread_local const std::uint64_t id = next.fetch_add(1, std::memory_order_relaxed);
    return id;
}

std::uint64_t steadyNowNs() noexcept {
    return static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now().time_since_epoch())
            .count());
}

const char* phaseLetter(TracePhase phase) noexcept {
    switch (phase) {
        case TracePhase::Instant: return "i";
        case TracePhase::Span: return "X";
        case TracePhase::Counter: return "C";
    }
    return "i";
}

} // namespace

TraceSink::TraceSink(std::size_t capacity)
    : capacity_(capacity),
      epochNs_(steadyNowNs()),
      droppedTotal_(MetricsRegistry::global().counter("obs.trace_dropped_total")) {
    VC_EXPECTS(capacity > 0);
    ring_.reserve(capacity);
}

TraceEvent& TraceSink::claimSlotLocked(std::uint64_t tid) {
    TraceEvent* slot = nullptr;
    if (ring_.size() < capacity_) {
        slot = &ring_.emplace_back();
    } else {
        slot = &ring_[next_ % capacity_];
        droppedTotal_.add(); // an old event just became unrecoverable
    }
    slot->ts = next_;
    slot->tid = tid;
    const std::uint64_t now = steadyNowNs();
    slot->wallUs = now > epochNs_ ? (now - epochNs_) / 1000 : 0;
    slot->durUs = 0;
    slot->argCount = 0;
    ++next_;
    return *slot;
}

void TraceSink::record(const char* name, const char* category,
                       std::initializer_list<TraceArg> args) {
    const std::uint64_t tid = traceThreadId();
    const std::lock_guard<std::mutex> lock(mutex_);
    TraceEvent& slot = claimSlotLocked(tid);
    slot.name = name;
    slot.category = category;
    slot.phase = TracePhase::Instant;
    for (const TraceArg& arg : args) {
        if (slot.argCount == kMaxTraceArgs) break;
        slot.args[slot.argCount++] = arg;
    }
}

void TraceSink::recordSpan(const char* name, const char* category, std::uint64_t startNs,
                           std::uint64_t durationNs, std::initializer_list<TraceArg> args) {
    const std::uint64_t tid = traceThreadId();
    const std::lock_guard<std::mutex> lock(mutex_);
    TraceEvent& slot = claimSlotLocked(tid);
    slot.name = name;
    slot.category = category;
    slot.phase = TracePhase::Span;
    slot.wallUs = startNs > epochNs_ ? (startNs - epochNs_) / 1000 : 0;
    slot.durUs = durationNs / 1000;
    for (const TraceArg& arg : args) {
        if (slot.argCount == kMaxTraceArgs) break;
        slot.args[slot.argCount++] = arg;
    }
}

void TraceSink::recordCounter(const char* name, const char* category,
                              std::initializer_list<TraceArg> args) {
    const std::uint64_t tid = traceThreadId();
    const std::lock_guard<std::mutex> lock(mutex_);
    TraceEvent& slot = claimSlotLocked(tid);
    slot.name = name;
    slot.category = category;
    slot.phase = TracePhase::Counter;
    for (const TraceArg& arg : args) {
        if (slot.argCount == kMaxTraceArgs) break;
        slot.args[slot.argCount++] = arg;
    }
}

std::vector<TraceEvent> TraceSink::events() const {
    const std::lock_guard<std::mutex> lock(mutex_);
    std::vector<TraceEvent> out;
    out.reserve(ring_.size());
    if (ring_.size() < capacity_) {
        out = ring_;
    } else {
        // The slot for sequence number `next_` holds the oldest event.
        const std::size_t head = next_ % capacity_;
        out.insert(out.end(), ring_.begin() + static_cast<std::ptrdiff_t>(head), ring_.end());
        out.insert(out.end(), ring_.begin(), ring_.begin() + static_cast<std::ptrdiff_t>(head));
    }
    return out;
}

std::uint64_t TraceSink::recorded() const {
    const std::lock_guard<std::mutex> lock(mutex_);
    return next_;
}

std::uint64_t TraceSink::dropped() const {
    const std::lock_guard<std::mutex> lock(mutex_);
    return next_ - ring_.size();
}

std::string TraceSink::toChromeJson() const {
    const std::vector<TraceEvent> evs = events();
    JsonWriter json;
    json.beginObject();
    json.member("displayTimeUnit", "ns");
    json.key("otherData");
    json.beginObject();
    json.member("recorded", recorded());
    json.member("dropped", dropped());
    json.endObject();
    json.key("traceEvents");
    json.beginArray();
    for (const TraceEvent& ev : evs) {
        json.beginObject();
        json.member("name", ev.name);
        json.member("cat", ev.category);
        json.member("ph", phaseLetter(ev.phase));
        if (ev.phase == TracePhase::Instant) json.member("s", "t"); // thread-scoped
        json.member("ts", ev.wallUs);
        if (ev.phase == TracePhase::Span) json.member("dur", ev.durUs);
        json.member("pid", std::uint64_t{1});
        json.member("tid", ev.tid);
        json.key("args");
        json.beginObject();
        if (ev.phase == TracePhase::Instant) json.member("seq", ev.ts);
        for (std::size_t i = 0; i < ev.argCount; ++i) {
            json.member(ev.args[i].key, ev.args[i].value);
        }
        json.endObject();
        json.endObject();
    }
    json.endArray();
    json.endObject();
    return json.str();
}

TraceSink* traceSink() noexcept { return g_sink.load(std::memory_order_acquire); }

TraceSink* setTraceSink(TraceSink* sink) noexcept {
    return g_sink.exchange(sink, std::memory_order_acq_rel);
}

} // namespace voltcache::obs
