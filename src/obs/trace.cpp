#include "obs/trace.h"

#include <atomic>

#include "common/contracts.h"
#include "common/json.h"

namespace voltcache::obs {
namespace {

std::atomic<TraceSink*> g_sink{nullptr};

std::uint64_t traceThreadId() noexcept {
    static std::atomic<std::uint64_t> next{0};
    thread_local const std::uint64_t id = next.fetch_add(1, std::memory_order_relaxed);
    return id;
}

} // namespace

TraceSink::TraceSink(std::size_t capacity) : capacity_(capacity) {
    VC_EXPECTS(capacity > 0);
    ring_.reserve(capacity);
}

void TraceSink::record(const char* name, const char* category,
                       std::initializer_list<TraceArg> args) {
    const std::uint64_t tid = traceThreadId();
    const std::lock_guard<std::mutex> lock(mutex_);
    TraceEvent* slot = nullptr;
    if (ring_.size() < capacity_) {
        slot = &ring_.emplace_back();
    } else {
        slot = &ring_[next_ % capacity_];
    }
    slot->name = name;
    slot->category = category;
    slot->ts = next_;
    slot->tid = tid;
    slot->argCount = 0;
    for (const TraceArg& arg : args) {
        if (slot->argCount == kMaxTraceArgs) break;
        slot->args[slot->argCount++] = arg;
    }
    ++next_;
}

std::vector<TraceEvent> TraceSink::events() const {
    const std::lock_guard<std::mutex> lock(mutex_);
    std::vector<TraceEvent> out;
    out.reserve(ring_.size());
    if (ring_.size() < capacity_) {
        out = ring_;
    } else {
        // The slot for sequence number `next_` holds the oldest event.
        const std::size_t head = next_ % capacity_;
        out.insert(out.end(), ring_.begin() + static_cast<std::ptrdiff_t>(head), ring_.end());
        out.insert(out.end(), ring_.begin(), ring_.begin() + static_cast<std::ptrdiff_t>(head));
    }
    return out;
}

std::uint64_t TraceSink::recorded() const {
    const std::lock_guard<std::mutex> lock(mutex_);
    return next_;
}

std::uint64_t TraceSink::dropped() const {
    const std::lock_guard<std::mutex> lock(mutex_);
    return next_ - ring_.size();
}

std::string TraceSink::toChromeJson() const {
    const std::vector<TraceEvent> evs = events();
    JsonWriter json;
    json.beginObject();
    json.member("displayTimeUnit", "ns");
    json.key("otherData");
    json.beginObject();
    json.member("recorded", recorded());
    json.member("dropped", dropped());
    json.endObject();
    json.key("traceEvents");
    json.beginArray();
    for (const TraceEvent& ev : evs) {
        json.beginObject();
        json.member("name", ev.name);
        json.member("cat", ev.category);
        json.member("ph", "i"); // instant event
        json.member("s", "t");  // thread-scoped
        json.member("ts", ev.ts);
        json.member("pid", std::uint64_t{1});
        json.member("tid", ev.tid);
        json.key("args");
        json.beginObject();
        for (std::size_t i = 0; i < ev.argCount; ++i) {
            json.member(ev.args[i].key, ev.args[i].value);
        }
        json.endObject();
        json.endObject();
    }
    json.endArray();
    json.endObject();
    return json.str();
}

TraceSink* traceSink() noexcept { return g_sink.load(std::memory_order_acquire); }

TraceSink* setTraceSink(TraceSink* sink) noexcept {
    return g_sink.exchange(sink, std::memory_order_acq_rel);
}

} // namespace voltcache::obs
