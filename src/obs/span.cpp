#include "obs/span.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <map>
#include <memory>
#include <mutex>

#include "obs/flight_recorder.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "obs/trace_context.h"

namespace voltcache::obs {
namespace {

std::atomic<bool> g_profilingEnabled{false};

std::uint64_t nowNs() noexcept {
    return static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now().time_since_epoch())
            .count());
}

struct Agg {
    std::uint64_t count = 0;
    std::uint64_t totalNs = 0;
    std::uint64_t selfNs = 0;
};

/// One thread's profiler shard. The owner thread mutates `top` and the
/// registry-handle cache without locking (they are thread-confined, like the
/// metrics registry's per-thread cells); `aggregates` is mutex-guarded so
/// snapshot()/reset() can read shards of live threads.
struct ThreadShard {
    std::mutex mutex;
    Span* top = nullptr; ///< owner thread only
    std::map<std::string, Agg, std::less<>> aggregates; ///< guarded by mutex
    std::map<const void*, Histogram> registryHandles;   ///< owner thread only
};

struct ShardRegistry {
    std::mutex mutex;
    std::vector<std::shared_ptr<ThreadShard>> shards;

    static ShardRegistry& instance() {
        static ShardRegistry* registry = new ShardRegistry(); // leaked: spans may
        return *registry; // close during thread teardown after static dtors
    }
};

ThreadShard& threadShard() {
    thread_local const std::shared_ptr<ThreadShard> shard = [] {
        auto created = std::make_shared<ThreadShard>();
        ShardRegistry& registry = ShardRegistry::instance();
        const std::lock_guard<std::mutex> lock(registry.mutex);
        registry.shards.push_back(created);
        return created;
    }();
    return *shard;
}

} // namespace

bool Profiler::enabled() noexcept {
    return g_profilingEnabled.load(std::memory_order_relaxed);
}

void Profiler::setEnabled(bool on) noexcept {
    g_profilingEnabled.store(on, std::memory_order_relaxed);
}

std::vector<SpanStat> Profiler::snapshot() {
    std::map<std::string, Agg> merged;
    {
        ShardRegistry& registry = ShardRegistry::instance();
        const std::lock_guard<std::mutex> registryLock(registry.mutex);
        for (const auto& shard : registry.shards) {
            const std::lock_guard<std::mutex> shardLock(shard->mutex);
            for (const auto& [name, agg] : shard->aggregates) {
                Agg& into = merged[name];
                into.count += agg.count;
                into.totalNs += agg.totalNs;
                into.selfNs += agg.selfNs;
            }
        }
    }
    std::vector<SpanStat> out;
    out.reserve(merged.size());
    for (const auto& [name, agg] : merged) {
        out.push_back(SpanStat{name, agg.count, agg.totalNs, agg.selfNs});
    }
    return out;
}

void Profiler::reset() {
    ShardRegistry& registry = ShardRegistry::instance();
    const std::lock_guard<std::mutex> registryLock(registry.mutex);
    for (const auto& shard : registry.shards) {
        const std::lock_guard<std::mutex> shardLock(shard->mutex);
        shard->aggregates.clear();
    }
}

Span::Span(const char* name) noexcept {
    if (flightRecorderArmed()) flight_ = flightSpanEnter(name);
    if (!g_profilingEnabled.load(std::memory_order_relaxed)) return;
    name_ = name;
    ThreadShard& shard = threadShard();
    parent_ = shard.top;
    shard.top = this;
    startNs_ = nowNs();
}

Span::~Span() {
    if (flight_) flightSpanExit();
    if (name_ == nullptr) return;
    const std::uint64_t end = nowNs();
    const std::uint64_t total = end > startNs_ ? end - startNs_ : 0;
    const std::uint64_t self = total > childNs_ ? total - childNs_ : 0;
    ThreadShard& shard = threadShard();
    shard.top = parent_;
    if (parent_ != nullptr) parent_->childNs_ += total;
    {
        const std::lock_guard<std::mutex> lock(shard.mutex);
        Agg& agg = shard.aggregates[name_];
        ++agg.count;
        agg.totalNs += total;
        agg.selfNs += self;
    }
    // Feed the sharded registry: one log2 histogram per span name, handle
    // cached per thread so repeated spans never re-resolve under the lock.
    auto it = shard.registryHandles.find(static_cast<const void*>(name_));
    if (it == shard.registryHandles.end()) {
        it = shard.registryHandles
                 .emplace(static_cast<const void*>(name_),
                          MetricsRegistry::global().histogram("prof.span_ns",
                                                              {{"span", name_}}))
                 .first;
    }
    it->second.observe(total);
    if (TraceSink* sink = traceSink()) {
        sink->recordSpan(name_, "prof", startNs_, total);
    }
    if (JobTraceStore::collecting()) {
        JobTraceStore::global().recordCurrent(name_, startNs_, total);
    }
}

} // namespace voltcache::obs
