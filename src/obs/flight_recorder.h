// Async-signal-safe black-box flight recorder.
//
// A preallocated, lock-light ring of recent leg journal events, a bounded
// mirror of the metrics registry, the latest progress tick, and every live
// thread's active span stack — all maintained as plain POD + atomics on the
// normal path, and dumped WITHOUT any allocation from three failure paths:
//   * SIGSEGV / SIGABRT (sigaction handlers installed by install()),
//   * a VC_EXPECTS / VC_ENSURES / VC_CHECK failure (common/contracts.h hook,
//     which fires at the failure site before the exception unwinds — the
//     sweep executor would otherwise swallow the leg and rethrow later),
//   * an explicit dumpNow() (tests, operator request).
//
// The dump is one bounded JSON document ("kind":"flight") written with
// write(2) to a file descriptor pre-opened at install() time, so the crash
// path needs no open(), no malloc, no stdio, and no locks. `voltcache trace
// <dump>` renders it; the ci.sh negative control asserts it parses.
//
// Normal-path costs: noteLegEvent is a relaxed fetch_add plus a POD slot
// copy; the span-stack feed adds one relaxed atomic load to every obs::Span
// construction (the `trace.ctx_overhead_ns` bench guards it). When no
// recorder is installed every feed is a single relaxed load and a branch.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>

#include "obs/export/journal.h"
#include "obs/trace_context.h"

namespace voltcache::obs {

/// Latest sweep-wide progress counters (a core-type-free mirror of
/// SweepProgress, like ProgressBoard::Tick).
struct FlightProgress {
    std::uint64_t benchmarksCompleted = 0;
    std::uint64_t benchmarksTotal = 0;
    std::uint64_t legsCompleted = 0;
    std::uint64_t legsTotal = 0;
    std::uint64_t legsReplayed = 0;
    std::uint64_t legsExecuted = 0;
    std::uint64_t legsCached = 0;
    std::uint32_t workers = 0;
};

class FlightRecorder {
public:
    struct Options {
        std::string path;                 ///< dump target (created at install)
        std::size_t eventCapacity = 512;  ///< ring slots (rounded to pow2)
    };

    /// Create/replace the process-wide recorder: pre-opens (and truncates)
    /// the dump file, installs the SIGSEGV/SIGABRT handlers and the contract
    /// hook, and arms the span-stack feed. Throws on an unwritable path.
    /// The recorder is process-wide and intentionally leaked.
    static FlightRecorder& install(const Options& options);

    /// The installed recorder, or nullptr (the common case — feeds gate on
    /// this with one relaxed load).
    [[nodiscard]] static FlightRecorder* instance() noexcept;

    /// Normal-path feeds (thread-safe, allocation-free, never block).
    void noteLegEvent(const JournalEvent& event) noexcept;
    void noteProgress(const FlightProgress& progress) noexcept;
    void noteJob(std::string_view label, const TraceContext& context) noexcept;

    /// Refresh the bounded metrics mirror from the global registry. NOT
    /// async-signal-safe — call it from the normal path (progress ticks);
    /// the crash path dumps whatever the last refresh captured.
    void noteMetrics();

    /// Async-signal-safe dump. Only the first call writes (later calls are
    /// no-ops until rearm()); returns true when this call performed the
    /// write. `reason`/`detail` must be NUL-terminated (string literals or
    /// stack buffers — never heap).
    bool dumpNow(const char* reason, const char* detail = nullptr) noexcept;

    /// Re-enable dumping after a dumpNow (tests; the file is rewritten from
    /// the start on the next dump).
    void rearm() noexcept;

    [[nodiscard]] const std::string& path() const noexcept { return path_; }
    [[nodiscard]] std::uint64_t eventsNoted() const noexcept;

private:
    explicit FlightRecorder(const Options& options);
    ~FlightRecorder();

    std::string path_;
    struct Impl;
    Impl* impl_;
};

/// Span-stack feed, called by obs::Span. Enter returns false when the stack
/// was not recorded (no recorder, or per-thread depth exhausted) so exit()
/// calls stay balanced.
[[nodiscard]] bool flightSpanEnter(const char* name) noexcept;
void flightSpanExit() noexcept;

/// One relaxed load: is a recorder installed?
[[nodiscard]] bool flightRecorderArmed() noexcept;

} // namespace voltcache::obs
