// Set-associative tag store with true-LRU replacement (Table I: both L1s
// and the L2 are LRU). Fault-tolerance schemes compose this with their own
// per-line metadata; the direct-probe API supports the dual-mode (Fig. 7)
// I-cache, where software picks the exact (set, way).
//
// The per-access queries (lookup / touch / probeWay) are defined inline:
// every simulated memory access crosses them several times (L1 tag match,
// BTB lookup, LRU touch), so they must inline into the scheme and branch
// predictor translation units rather than cost a call each.
#pragma once

#include <cstdint>
#include <vector>

#include "common/contracts.h"

namespace voltcache {

class TagArray {
public:
    TagArray(std::uint32_t sets, std::uint32_t ways);

    struct Lookup {
        bool hit = false;
        std::uint32_t way = 0;
    };

    /// Associative lookup; does not update recency.
    [[nodiscard]] Lookup lookup(std::uint32_t set, std::uint32_t tag) const {
        const Entry* line = &entry(set, 0);
        for (std::uint32_t way = 0; way < ways_; ++way) {
            if (line[way].epoch == epoch_ && line[way].tag == tag) return {true, way};
        }
        return {false, 0};
    }

    /// Mark (set, way) most recently used.
    void touch(std::uint32_t set, std::uint32_t way) {
        entry(set, way).lastUse = ++useCounter_;
    }

    struct Fill {
        std::uint32_t way = 0;
        bool evictedValid = false;
        std::uint32_t evictedTag = 0;
    };

    /// Allocate the LRU victim (invalid ways first) among ways permitted by
    /// `wayMask` (bit i == way i allowed; default all). Marks it MRU.
    Fill fill(std::uint32_t set, std::uint32_t tag, std::uint32_t wayMask = ~0u);

    /// Direct probe of one way (direct-mapped mode).
    [[nodiscard]] bool probeWay(std::uint32_t set, std::uint32_t way,
                                std::uint32_t tag) const {
        const Entry& e = entry(set, way);
        return e.epoch == epoch_ && e.tag == tag;
    }
    /// Direct fill of one way (direct-mapped mode). Returns evicted state.
    Fill fillAt(std::uint32_t set, std::uint32_t way, std::uint32_t tag) {
        Entry& e = entry(set, way);
        Fill fill{way, e.epoch == epoch_, e.tag};
        e.tag = tag;
        e.epoch = epoch_;
        e.lastUse = ++useCounter_;
        return fill;
    }

    void invalidate(std::uint32_t set, std::uint32_t way) {
        entry(set, way).epoch = 0;
    }
    /// O(1): bumps the validity epoch instead of walking the entries, so a
    /// pooled cache (core/replay.cpp's batch L2 pool) resets for free.
    void invalidateAll();

    [[nodiscard]] bool valid(std::uint32_t set, std::uint32_t way) const {
        const Entry& e = entry(set, way);
        return e.epoch == epoch_;
    }
    [[nodiscard]] std::uint32_t tagAt(std::uint32_t set, std::uint32_t way) const {
        return entry(set, way).tag;
    }

    [[nodiscard]] std::uint32_t sets() const noexcept { return sets_; }
    [[nodiscard]] std::uint32_t ways() const noexcept { return ways_; }

private:
    // Validity is epoch-coded: an entry is valid iff its epoch matches the
    // array's. epoch_ starts at 1 and entries at 0 (invalid); invalidate()
    // rewinds an entry to 0, which can never match because epoch_ never
    // returns to 0 (the wrap path in invalidateAll rewrites the entries).
    struct Entry {
        std::uint32_t tag = 0;
        std::uint32_t epoch = 0;
        std::uint64_t lastUse = 0;
    };

    [[nodiscard]] const Entry& entry(std::uint32_t set, std::uint32_t way) const {
        VC_EXPECTS(set < sets_);
        VC_EXPECTS(way < ways_);
        return entries_[static_cast<std::size_t>(set) * ways_ + way];
    }
    [[nodiscard]] Entry& entry(std::uint32_t set, std::uint32_t way) {
        VC_EXPECTS(set < sets_);
        VC_EXPECTS(way < ways_);
        return entries_[static_cast<std::size_t>(set) * ways_ + way];
    }

    std::uint32_t sets_;
    std::uint32_t ways_;
    std::uint32_t epoch_ = 1;
    std::uint64_t useCounter_ = 0;
    std::vector<Entry> entries_;
};

} // namespace voltcache
