#include "cache/l2_cache.h"

namespace voltcache {

L2Cache::L2Cache() : L2Cache(Config{}) {}

L2Cache::L2Cache(Config config)
    : config_(config),
      mapper_(config.org),
      tags_(config.org.sets(), config.org.associativity) {
    dirty_.assign(static_cast<std::size_t>(config.org.sets()) * config.org.associativity,
                  false);
}

L2Cache::Result L2Cache::accessInternal(std::uint32_t addr, bool isWrite) {
    const std::uint32_t set = mapper_.set(addr);
    const std::uint32_t tag = mapper_.tag(addr);
    Result result;
    result.latencyCycles = config_.hitLatencyCycles;

    const auto lookup = tags_.lookup(set, tag);
    const std::size_t base = static_cast<std::size_t>(set) * mapper_.associativity();
    if (lookup.hit) {
        result.hit = true;
        tags_.touch(set, lookup.way);
        if (isWrite) dirty_[base + lookup.way] = true;
        return result;
    }

    ++stats_.misses;
    result.dram = true;
    result.latencyCycles += config_.dramLatencyCycles;
    const auto fill = tags_.fill(set, tag);
    if (fill.evictedValid && dirty_[base + fill.way]) {
        result.dirtyWriteback = true;
        ++stats_.writebacks;
    }
    dirty_[base + fill.way] = isWrite;
    return result;
}

L2Cache::Result L2Cache::read(std::uint32_t addr) {
    ++stats_.reads;
    return accessInternal(addr, false);
}

L2Cache::Result L2Cache::write(std::uint32_t addr) {
    ++stats_.writes;
    return accessInternal(addr, true);
}

void L2Cache::invalidateAll() {
    tags_.invalidateAll();
    dirty_.assign(dirty_.size(), false);
}

void L2Cache::reinitialize(const Config& config) {
    VC_EXPECTS(config.org.sizeBytes == config_.org.sizeBytes);
    VC_EXPECTS(config.org.blockBytes == config_.org.blockBytes);
    VC_EXPECTS(config.org.associativity == config_.org.associativity);
    config_ = config;
    invalidateAll();
    stats_ = {};
}

} // namespace voltcache
