#include "cache/tag_array.h"

#include "common/contracts.h"

namespace voltcache {

TagArray::TagArray(std::uint32_t sets, std::uint32_t ways) : sets_(sets), ways_(ways) {
    VC_EXPECTS(sets > 0);
    VC_EXPECTS(ways > 0 && ways <= 32);
    entries_.assign(static_cast<std::size_t>(sets) * ways, Entry{});
}

TagArray::Fill TagArray::fill(std::uint32_t set, std::uint32_t tag, std::uint32_t wayMask) {
    const std::uint32_t validWays = ways_ >= 32 ? ~0u : ((1u << ways_) - 1u);
    VC_EXPECTS((wayMask & validWays) != 0);
    std::uint32_t victim = ways_; // sentinel: none found yet
    std::uint64_t oldest = ~std::uint64_t{0};
    for (std::uint32_t way = 0; way < ways_; ++way) {
        if ((wayMask & (1u << way)) == 0) continue;
        const Entry& e = entry(set, way);
        if (e.epoch != epoch_) {
            victim = way;
            break;
        }
        if (e.lastUse < oldest) {
            oldest = e.lastUse;
            victim = way;
        }
    }
    VC_ENSURES(victim < ways_); // wayMask must allow at least one way
    Entry& v = entry(set, victim);
    Fill fill{victim, v.epoch == epoch_, v.tag};
    v.tag = tag;
    v.epoch = epoch_;
    v.lastUse = ++useCounter_;
    return fill;
}

void TagArray::invalidateAll() {
    ++epoch_;
    if (epoch_ == 0) {
        // uint32 wrap after 2^32 - 1 invalidations: rewrite the entries once
        // so stale epochs can never alias the restarted counter.
        for (auto& e : entries_) e.epoch = 0;
        epoch_ = 1;
    }
}

} // namespace voltcache
