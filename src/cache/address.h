// Byte-address <-> cache-coordinate mapping for one cache organization.
//
// Physical frame numbering is `line = way * sets + set`, which makes the
// flat word index (line * wordsPerBlock + wordOffset) equal to
// `wordAddr mod cacheWords` in direct-mapped mode — the invariant BBR's
// Algorithm 1 relies on (cacheAddr = memAddr mod csize) and the layout the
// FaultMap uses.
//
// Every simulated memory access computes set/tag/wordOffset (often twice:
// L1 then L2), so the mapper precomputes shift/mask forms of the divisions.
// All supported organizations have power-of-two geometry (Table I), which
// the constructor enforces; the shift/mask results are identical to the
// division forms they replace.
#pragma once

#include <bit>
#include <cstdint>

#include "common/contracts.h"
#include "sram/cacti_lite.h"

namespace voltcache {

class AddressMapper {
public:
    explicit AddressMapper(const CacheOrganization& org)
        : sets_(org.sets()),
          assoc_(org.associativity),
          wordsPerBlock_(org.wordsPerBlock()),
          blockShift_(std::countr_zero(org.blockBytes)),
          wordShift_(std::countr_zero(org.wordBytes)),
          setShift_(std::countr_zero(sets_)),
          setMask_(sets_ - 1),
          wordMask_(wordsPerBlock_ - 1),
          assocMask_(assoc_ - 1) {
        VC_EXPECTS(std::has_single_bit(org.blockBytes));
        VC_EXPECTS(std::has_single_bit(org.wordBytes));
        VC_EXPECTS(std::has_single_bit(sets_));
        VC_EXPECTS(std::has_single_bit(assoc_));
        VC_EXPECTS(org.wordBytes <= org.blockBytes);
    }

    [[nodiscard]] std::uint32_t set(std::uint32_t addr) const noexcept {
        return (addr >> blockShift_) & setMask_;
    }
    [[nodiscard]] std::uint32_t tag(std::uint32_t addr) const noexcept {
        return addr >> (blockShift_ + setShift_);
    }
    [[nodiscard]] std::uint32_t wordOffset(std::uint32_t addr) const noexcept {
        return (addr >> wordShift_) & wordMask_;
    }
    [[nodiscard]] std::uint32_t blockAddress(std::uint32_t addr) const noexcept {
        return addr >> blockShift_;
    }

    /// Direct-mapped way selection: the low log2(assoc) bits of the tag
    /// (Fig. 7's DAC-style combination of tag LSBs with the set index).
    [[nodiscard]] std::uint32_t directWay(std::uint32_t addr) const noexcept {
        return tag(addr) & assocMask_;
    }

    /// Physical frame index of a (set, way), matching FaultMap line order.
    [[nodiscard]] std::uint32_t physicalLine(std::uint32_t set, std::uint32_t way)
        const noexcept {
        return way * sets_ + set;
    }

    [[nodiscard]] std::uint32_t sets() const noexcept { return sets_; }
    [[nodiscard]] std::uint32_t associativity() const noexcept { return assoc_; }
    [[nodiscard]] std::uint32_t wordsPerBlock() const noexcept { return wordsPerBlock_; }

private:
    std::uint32_t sets_;
    std::uint32_t assoc_;
    std::uint32_t wordsPerBlock_;
    std::uint32_t blockShift_;
    std::uint32_t wordShift_;
    std::uint32_t setShift_;
    std::uint32_t setMask_;
    std::uint32_t wordMask_;
    std::uint32_t assocMask_;
};

} // namespace voltcache
