// Byte-address <-> cache-coordinate mapping for one cache organization.
//
// Physical frame numbering is `line = way * sets + set`, which makes the
// flat word index (line * wordsPerBlock + wordOffset) equal to
// `wordAddr mod cacheWords` in direct-mapped mode — the invariant BBR's
// Algorithm 1 relies on (cacheAddr = memAddr mod csize) and the layout the
// FaultMap uses.
#pragma once

#include <cstdint>

#include "sram/cacti_lite.h"

namespace voltcache {

class AddressMapper {
public:
    explicit AddressMapper(const CacheOrganization& org) noexcept
        : blockBytes_(org.blockBytes),
          wordBytes_(org.wordBytes),
          sets_(org.sets()),
          assoc_(org.associativity),
          wordsPerBlock_(org.wordsPerBlock()) {}

    [[nodiscard]] std::uint32_t set(std::uint32_t addr) const noexcept {
        return (addr / blockBytes_) % sets_;
    }
    [[nodiscard]] std::uint32_t tag(std::uint32_t addr) const noexcept {
        return addr / blockBytes_ / sets_;
    }
    [[nodiscard]] std::uint32_t wordOffset(std::uint32_t addr) const noexcept {
        return (addr % blockBytes_) / wordBytes_;
    }
    [[nodiscard]] std::uint32_t blockAddress(std::uint32_t addr) const noexcept {
        return addr / blockBytes_;
    }

    /// Direct-mapped way selection: the low log2(assoc) bits of the tag
    /// (Fig. 7's DAC-style combination of tag LSBs with the set index).
    [[nodiscard]] std::uint32_t directWay(std::uint32_t addr) const noexcept {
        return tag(addr) % assoc_;
    }

    /// Physical frame index of a (set, way), matching FaultMap line order.
    [[nodiscard]] std::uint32_t physicalLine(std::uint32_t set, std::uint32_t way)
        const noexcept {
        return way * sets_ + set;
    }

    [[nodiscard]] std::uint32_t sets() const noexcept { return sets_; }
    [[nodiscard]] std::uint32_t associativity() const noexcept { return assoc_; }
    [[nodiscard]] std::uint32_t wordsPerBlock() const noexcept { return wordsPerBlock_; }

private:
    std::uint32_t blockBytes_;
    std::uint32_t wordBytes_;
    std::uint32_t sets_;
    std::uint32_t assoc_;
    std::uint32_t wordsPerBlock_;
};

} // namespace voltcache
