// Unified L2 (Table I: 512KB, 8-way, 32B blocks, LRU, 10 cycles, write-back).
//
// The L2 sits on a fixed voltage rail and is frequency-synchronized with the
// core, so its latency in core cycles is constant across DVFS points, while
// DRAM latency is fixed in nanoseconds and therefore *shrinks* in core
// cycles as the core slows down (configure per operating point).
#pragma once

#include <cstdint>

#include "cache/address.h"
#include "cache/tag_array.h"

namespace voltcache {

/// Table I's unified L2 organization: 512KB, 8-way, 32B blocks.
[[nodiscard]] inline CacheOrganization defaultL2Organization() noexcept {
    CacheOrganization org;
    org.sizeBytes = 512 * 1024;
    org.blockBytes = 32;
    org.associativity = 8;
    return org;
}

class L2Cache {
public:
    struct Config {
        CacheOrganization org = defaultL2Organization();
        std::uint32_t hitLatencyCycles = 10;
        std::uint32_t dramLatencyCycles = 100; ///< set per DVFS point by the System
    };

    struct Result {
        bool hit = false;
        bool dram = false;           ///< a DRAM fill happened
        bool dirtyWriteback = false; ///< a dirty victim went to DRAM
        std::uint32_t latencyCycles = 0;
    };

    struct Stats {
        std::uint64_t reads = 0;
        std::uint64_t writes = 0;
        std::uint64_t misses = 0;
        std::uint64_t writebacks = 0;
        [[nodiscard]] std::uint64_t accesses() const noexcept { return reads + writes; }
    };

    L2Cache(); ///< Table I configuration
    explicit L2Cache(Config config);

    /// Demand read (L1 fill or word-miss fetch).
    Result read(std::uint32_t addr);

    /// Write-through traffic from the L1D. Write-allocate on miss, marking
    /// the line dirty (the L2 itself is write-back toward DRAM).
    Result write(std::uint32_t addr);

    void invalidateAll();
    /// Return a used cache to as-constructed state (tags, dirty bits, stats)
    /// without reallocating the ~400KB tag store — the batch replay engine
    /// pools L2 objects across legs. Latency knobs may change between lives;
    /// the organization must not (the arrays are sized for it).
    void reinitialize(const Config& config);
    void setDramLatency(std::uint32_t cycles) { config_.dramLatencyCycles = cycles; }

    [[nodiscard]] const Stats& stats() const noexcept { return stats_; }
    [[nodiscard]] const Config& config() const noexcept { return config_; }

private:
    Result accessInternal(std::uint32_t addr, bool isWrite);

    Config config_;
    AddressMapper mapper_;
    TagArray tags_;
    std::vector<bool> dirty_; ///< per (set * ways + way)
    Stats stats_;
};

} // namespace voltcache
