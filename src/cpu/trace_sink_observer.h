// Bridges the simulator's TraceObserver hook into an obs::TraceSink.
#pragma once

#include <cstdint>

#include "cpu/simulator.h"
#include "obs/trace.h"

namespace voltcache {

/// Records sampled instruction / data-access events into a TraceSink so
/// program activity shows up on the Perfetto timeline alongside the scheme,
/// fault-buffer, and linker events. Sampling (1-in-N) keeps a long run from
/// flushing those rarer events out of the bounded ring.
class TraceSinkObserver final : public TraceObserver {
public:
    explicit TraceSinkObserver(obs::TraceSink& sink, std::uint64_t sampleEvery = 256);

    void onInstruction(std::uint32_t pc, const Instruction& inst) override;
    void onDataAccess(std::uint32_t addr, bool isWrite) override;

    [[nodiscard]] std::uint64_t instructions() const noexcept { return instructions_; }
    [[nodiscard]] std::uint64_t accesses() const noexcept { return accesses_; }

private:
    obs::TraceSink* sink_;
    std::uint64_t sampleEvery_;
    std::uint64_t instructions_ = 0;
    std::uint64_t accesses_ = 0;
};

} // namespace voltcache
