// Compact architectural access trace for the record-once / replay-many
// Monte Carlo engine (core/replay.h).
//
// The paper's schemes are architecturally transparent: fault maps and cache
// schemes change *timing*, never values, so the logical access stream of a
// benchmark at a fixed code layout is identical across every Monte Carlo
// trial. One execution-driven run records the minimal dynamic facts the
// timing kernel cannot re-derive statically from the linked image:
//
//   * control flow — 2 bits per Jal/Jalr/conditional branch, program order:
//     the taken direction and whether the branch predictor was correct
//     (branch PCs and direct targets are re-derived from the image);
//   * Jalr targets — zigzag-varint deltas of the indirect target word;
//   * data addresses — zigzag-varint deltas of the Lw/Sw effective word
//     (Ldl literal addresses are pc-relative and re-derived from the image).
//
// Streams live in chunked byte buffers with an optional byte cap: a run
// whose trace would exceed the cap marks the trace overflowed, and the
// sweep falls back to execution-driven legs instead of accumulating an
// unbounded resident trace.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <vector>

#include "common/contracts.h"
#include "cpu/simulator.h"
#include "isa/instruction.h"

namespace voltcache {

namespace detail {

[[nodiscard]] constexpr std::uint32_t zigzag(std::int32_t value) noexcept {
    return (static_cast<std::uint32_t>(value) << 1) ^
           static_cast<std::uint32_t>(value >> 31);
}

[[nodiscard]] constexpr std::int32_t unzigzag(std::uint32_t value) noexcept {
    return static_cast<std::int32_t>((value >> 1) ^ (0U - (value & 1U)));
}

} // namespace detail

/// Append-only byte buffer in fixed-size chunks, so growth never copies and
/// a byte cap bounds allocation without reserving up front.
class ChunkedBytes {
public:
    static constexpr std::size_t kChunkBytes = 64 * 1024;

    void push(std::uint8_t byte) {
        if (used_ == kChunkBytes || chunks_.empty()) {
            chunks_.push_back(std::make_unique<std::uint8_t[]>(kChunkBytes));
            used_ = 0;
        }
        chunks_.back()[used_++] = byte;
    }

    [[nodiscard]] std::size_t size() const noexcept {
        return chunks_.empty() ? 0 : (chunks_.size() - 1) * kChunkBytes + used_;
    }
    /// Bytes actually resident (allocation granularity), for the obs gauge.
    [[nodiscard]] std::size_t residentBytes() const noexcept {
        return chunks_.size() * kChunkBytes;
    }

    /// Sequential reader; the only access pattern replay needs. The size is
    /// snapshotted at construction (readers walk sealed traces), so the hot
    /// next() pays one cached compare instead of recomputing size().
    class Reader {
    public:
        explicit Reader(const ChunkedBytes& bytes)
            : bytes_(&bytes),
              chunk_(bytes.chunks_.empty() ? nullptr : bytes.chunks_.front().get()),
              size_(bytes.size()) {}
        [[nodiscard]] std::uint8_t next() {
            VC_EXPECTS(consumed_ < size_);
            if (offset_ == kChunkBytes) {
                chunk_ = bytes_->chunks_[++chunkIndex_].get();
                offset_ = 0;
            }
            ++consumed_;
            return chunk_[offset_++];
        }
        [[nodiscard]] std::size_t consumed() const noexcept { return consumed_; }

    private:
        const ChunkedBytes* bytes_;
        const std::uint8_t* chunk_ = nullptr;
        std::size_t size_ = 0;
        std::size_t chunkIndex_ = 0;
        std::size_t offset_ = 0;
        std::size_t consumed_ = 0;
    };

private:
    std::vector<std::unique_ptr<std::uint8_t[]>> chunks_;
    std::size_t used_ = kChunkBytes; // forces first push to allocate
};

/// One recorded control-flow outcome.
struct CfRecord {
    bool taken = false;
    bool correct = false;
};

/// One benchmark's recorded architectural stream plus the header facts the
/// replay engine needs to validate and finish a SystemResult.
class ArchTrace {
public:
    /// `byteCap` bounds the summed stream payload; 0 = unlimited.
    explicit ArchTrace(std::uint64_t byteCap = 0) : byteCap_(byteCap) {}

    // --- Writer API (TraceRecorder) ---
    void countInstruction() noexcept { ++instructions_; }
    void putCf(bool taken, bool correct) {
        cfPending_ |= static_cast<std::uint8_t>((static_cast<unsigned>(taken) |
                                                 (static_cast<unsigned>(correct) << 1))
                                                << (2 * cfPendingCount_));
        if (++cfPendingCount_ == 4) {
            cf_.push(cfPending_);
            cfPending_ = 0;
            cfPendingCount_ = 0;
            checkCap();
        }
        ++cfRecords_;
    }
    void putJalrTarget(std::uint32_t target) {
        VC_EXPECTS((target & 3U) == 0);
        const auto word = static_cast<std::int32_t>(target >> 2);
        putVarint(jalr_, detail::zigzag(word - prevJalrWord_));
        prevJalrWord_ = word;
        ++jalrRecords_;
        checkCap();
    }
    void putDataAddr(std::uint32_t addr) {
        VC_EXPECTS((addr & 3U) == 0);
        const auto word = static_cast<std::int32_t>(addr >> 2);
        putVarint(data_, detail::zigzag(word - prevDataWord_));
        prevDataWord_ = word;
        ++dataRecords_;
        checkCap();
    }
    /// Header facts from the recording run's SystemResult, sealed once.
    void finalize(bool halted, std::int32_t checksum, std::uint64_t maxInstructions,
                  std::uint32_t entryAddr, std::uint32_t imageWords);

    // --- Reader API (replay) ---
    [[nodiscard]] std::uint64_t instructions() const noexcept { return instructions_; }
    [[nodiscard]] bool halted() const noexcept { return halted_; }
    [[nodiscard]] std::int32_t checksum() const noexcept { return checksum_; }
    [[nodiscard]] std::uint64_t maxInstructions() const noexcept { return maxInstructions_; }
    [[nodiscard]] std::uint32_t entryAddr() const noexcept { return entryAddr_; }
    [[nodiscard]] std::uint32_t imageWords() const noexcept { return imageWords_; }
    [[nodiscard]] bool finalized() const noexcept { return finalized_; }
    [[nodiscard]] bool overflowed() const noexcept { return overflowed_; }
    [[nodiscard]] std::uint64_t payloadBytes() const noexcept {
        return cf_.size() + jalr_.size() + data_.size();
    }
    [[nodiscard]] std::uint64_t residentBytes() const noexcept {
        return cf_.residentBytes() + jalr_.residentBytes() + data_.residentBytes();
    }

    /// Streaming cursor over the three streams, consumed in program order.
    /// Snapshots the stream totals at construction — cursors walk sealed
    /// traces, so the hot per-record bounds checks stay in registers.
    class Cursor {
    public:
        explicit Cursor(const ArchTrace& trace)
            : cf_(trace.cf_), jalr_(trace.jalr_), data_(trace.data_),
              cfRecords_(trace.cfRecords_), jalrRecords_(trace.jalrRecords_),
              dataRecords_(trace.dataRecords_),
              cfStoredLimit_(trace.cfRecords_ & ~std::uint64_t{3}),
              cfPending_(trace.cfPending_) {}

        [[nodiscard]] CfRecord nextCf() {
            VC_EXPECTS(cfConsumed_ < cfRecords_);
            const unsigned slot = static_cast<unsigned>(cfConsumed_) & 3U;
            if (slot == 0) {
                // The final partial byte never reached the chunk buffer.
                cfByte_ = cfConsumed_ < cfStoredLimit_ ? cf_.next() : cfPending_;
            }
            ++cfConsumed_;
            const unsigned pair = (cfByte_ >> (2 * slot)) & 3U;
            return {(pair & 1U) != 0, (pair & 2U) != 0};
        }
        [[nodiscard]] std::uint32_t nextJalrTarget() {
            VC_EXPECTS(jalrConsumed_ < jalrRecords_);
            ++jalrConsumed_;
            prevJalrWord_ += detail::unzigzag(nextVarint(jalr_));
            return static_cast<std::uint32_t>(prevJalrWord_) << 2;
        }
        [[nodiscard]] std::uint32_t nextDataAddr() {
            VC_EXPECTS(dataConsumed_ < dataRecords_);
            ++dataConsumed_;
            prevDataWord_ += detail::unzigzag(nextVarint(data_));
            return static_cast<std::uint32_t>(prevDataWord_) << 2;
        }
        /// True once every record of every stream has been read.
        [[nodiscard]] bool fullyConsumed() const noexcept {
            return cfConsumed_ == cfRecords_ && jalrConsumed_ == jalrRecords_ &&
                   dataConsumed_ == dataRecords_;
        }

    private:
        static std::uint32_t nextVarint(ChunkedBytes::Reader& reader) {
            std::uint32_t value = 0;
            unsigned shift = 0;
            for (;;) {
                const std::uint8_t byte = reader.next();
                value |= static_cast<std::uint32_t>(byte & 0x7FU) << shift;
                if ((byte & 0x80U) == 0) return value;
                shift += 7;
                VC_CHECK(shift < 35);
            }
        }

        ChunkedBytes::Reader cf_;
        ChunkedBytes::Reader jalr_;
        ChunkedBytes::Reader data_;
        std::uint64_t cfRecords_;
        std::uint64_t jalrRecords_;
        std::uint64_t dataRecords_;
        std::uint64_t cfStoredLimit_;
        std::uint8_t cfPending_;
        std::uint8_t cfByte_ = 0;
        std::uint64_t cfConsumed_ = 0;
        std::uint64_t jalrConsumed_ = 0;
        std::uint64_t dataConsumed_ = 0;
        std::int32_t prevJalrWord_ = 0;
        std::int32_t prevDataWord_ = 0;
    };

private:
    static void putVarint(ChunkedBytes& bytes, std::uint32_t value) {
        while (value >= 0x80U) {
            bytes.push(static_cast<std::uint8_t>(value) | 0x80U);
            value >>= 7;
        }
        bytes.push(static_cast<std::uint8_t>(value));
    }
    void checkCap() noexcept {
        if (byteCap_ != 0 && payloadBytes() > byteCap_) overflowed_ = true;
    }

    ChunkedBytes cf_;
    ChunkedBytes jalr_;
    ChunkedBytes data_;
    std::uint8_t cfPending_ = 0;
    unsigned cfPendingCount_ = 0;
    std::int32_t prevJalrWord_ = 0;
    std::int32_t prevDataWord_ = 0;
    std::uint64_t instructions_ = 0;
    std::uint64_t cfRecords_ = 0;
    std::uint64_t jalrRecords_ = 0;
    std::uint64_t dataRecords_ = 0;
    std::uint64_t byteCap_ = 0;
    bool overflowed_ = false;
    bool finalized_ = false;
    bool halted_ = false;
    std::int32_t checksum_ = 0;
    std::uint64_t maxInstructions_ = 0;
    std::uint32_t entryAddr_ = 0;
    std::uint32_t imageWords_ = 0;
};

/// TraceObserver that records one ArchTrace during an execution-driven run.
/// Attach via SystemConfig::observers, run once, then `finish()` with the
/// run's SystemResult facts. A capped recorder that overflows keeps
/// counting but stops storing; callers must check `overflowed()` and fall
/// back to execution-driven evaluation.
class TraceRecorder final : public TraceObserver {
public:
    explicit TraceRecorder(std::uint64_t byteCap = 0) : trace_(byteCap) {}

    void onInstruction(std::uint32_t pc, const Instruction& inst) override {
        (void)pc;
        trace_.countInstruction();
        skipNextData_ = inst.op == Opcode::Ldl;
    }
    void onDataAccess(std::uint32_t addr, bool isWrite) override {
        (void)isWrite;
        // Ldl literal addresses are pc-relative: replay re-derives them from
        // the image, so only register-relative Lw/Sw addresses are recorded.
        if (skipNextData_ || trace_.overflowed()) return;
        trace_.putDataAddr(addr);
    }
    void onControlFlow(std::uint32_t pc, const Instruction& inst, bool taken,
                       std::uint32_t nextPc, bool predictedCorrect) override {
        (void)pc;
        if (trace_.overflowed()) return;
        trace_.putCf(taken, predictedCorrect);
        if (inst.op == Opcode::Jalr) trace_.putJalrTarget(nextPc);
    }

    [[nodiscard]] bool overflowed() const noexcept { return trace_.overflowed(); }
    [[nodiscard]] std::uint64_t instructions() const noexcept {
        return trace_.instructions();
    }

    /// Seal and move the trace out; the recorder is spent afterwards.
    [[nodiscard]] ArchTrace finish(bool halted, std::int32_t checksum,
                                   std::uint64_t maxInstructions, std::uint32_t entryAddr,
                                   std::uint32_t imageWords);

private:
    ArchTrace trace_;
    bool skipNextData_ = false;
};

} // namespace voltcache
