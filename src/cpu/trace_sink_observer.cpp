#include "cpu/trace_sink_observer.h"

#include "common/contracts.h"

namespace voltcache {

TraceSinkObserver::TraceSinkObserver(obs::TraceSink& sink, std::uint64_t sampleEvery)
    : sink_(&sink), sampleEvery_(sampleEvery) {
    VC_EXPECTS(sampleEvery > 0);
}

void TraceSinkObserver::onInstruction(std::uint32_t pc, const Instruction& inst) {
    (void)inst;
    ++instructions_;
    if (instructions_ % sampleEvery_ != 0) return;
    sink_->record("cpu.inst", "cpu",
                  {{"pc", pc}, {"n", static_cast<std::int64_t>(instructions_)}});
}

void TraceSinkObserver::onDataAccess(std::uint32_t addr, bool isWrite) {
    ++accesses_;
    if (accesses_ % sampleEvery_ != 0) return;
    sink_->record("cpu.data", "cpu", {{"addr", addr}, {"write", isWrite ? 1 : 0}});
}

} // namespace voltcache
