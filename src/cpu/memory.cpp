#include "cpu/memory.h"

#include <string>
#include <vector>

namespace voltcache {

namespace {

void checkAligned(std::uint32_t byteAddr) {
    if (byteAddr % 4 != 0) {
        throw MemoryFault("misaligned word access at address " + std::to_string(byteAddr));
    }
}

} // namespace

std::int32_t Memory::read(std::uint32_t byteAddr) const {
    checkAligned(byteAddr);
    const std::uint32_t wordAddr = byteAddr / 4;
    const auto it = pages_.find(wordAddr / kPageWords);
    if (it == pages_.end()) return 0;
    return (*it->second)[wordAddr % kPageWords];
}

void Memory::write(std::uint32_t byteAddr, std::int32_t value) {
    checkAligned(byteAddr);
    const std::uint32_t wordAddr = byteAddr / 4;
    auto& page = pages_[wordAddr / kPageWords];
    if (!page) page = std::make_unique<Page>(Page{});
    (*page)[wordAddr % kPageWords] = value;
}

void Memory::load(std::uint32_t baseAddr, const std::vector<std::int32_t>& words) {
    for (std::size_t i = 0; i < words.size(); ++i) {
        write(baseAddr + static_cast<std::uint32_t>(i) * 4, words[i]);
    }
}

} // namespace voltcache
