#include "cpu/memory.h"

namespace voltcache {

void Memory::load(std::uint32_t baseAddr, const std::vector<std::int32_t>& words) {
    for (std::size_t i = 0; i < words.size(); ++i) {
        write(baseAddr + static_cast<std::uint32_t>(i) * 4, words[i]);
    }
}

} // namespace voltcache
