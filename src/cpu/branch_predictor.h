// Branch prediction per Table I: 4096-entry branch history table (2-bit
// saturating counters) + 512-entry 8-way branch target buffer, plus a small
// return-address stack for Jalr returns (present in the gem5 arm-detailed
// model the paper simulates).
#pragma once

#include <bit>
#include <cstdint>
#include <vector>

#include "cache/tag_array.h"

namespace voltcache {

class BranchPredictor {
public:
    struct Config {
        std::uint32_t bhtEntries = 4096;
        std::uint32_t btbEntries = 512;
        std::uint32_t btbWays = 8;
        std::uint32_t rasEntries = 8;
    };

    struct Prediction {
        bool taken = false;
        bool targetKnown = false; ///< BTB (or RAS) supplied a target
        std::uint32_t target = 0;
    };

    struct Stats {
        std::uint64_t lookups = 0;
        std::uint64_t mispredicts = 0; ///< wrong direction or wrong target
        [[nodiscard]] double mispredictRate() const noexcept {
            return lookups > 0 ? static_cast<double>(mispredicts) /
                                     static_cast<double>(lookups)
                               : 0.0;
        }
    };

    BranchPredictor(); ///< Table I configuration
    explicit BranchPredictor(Config config);

    /// Predict a conditional branch at `pc`.
    [[nodiscard]] Prediction predictBranch(std::uint32_t pc);
    /// Predict an unconditional jump/call at `pc` (direction always taken).
    [[nodiscard]] Prediction predictJump(std::uint32_t pc);
    /// Predict a Jalr (return / indirect) at `pc` via the RAS, then BTB.
    [[nodiscard]] Prediction predictReturn(std::uint32_t pc);

    /// Resolve: update BHT/BTB with the actual outcome; returns true if the
    /// earlier prediction was correct (same direction, and for taken
    /// control flow a known, matching target). `chargeMispredict` controls
    /// whether an incorrect prediction counts in the stats — direct jumps
    /// with a cold BTB redirect cheaply in decode and are not charged.
    bool resolve(const Prediction& prediction, std::uint32_t pc, bool taken,
                 std::uint32_t target, bool chargeMispredict = true);

    /// Call/return bookkeeping for the RAS.
    void pushReturnAddress(std::uint32_t addr);

    [[nodiscard]] const Stats& stats() const noexcept { return stats_; }

private:
    [[nodiscard]] std::uint32_t bhtIndex(std::uint32_t pc) const noexcept;
    [[nodiscard]] Prediction btbLookup(std::uint32_t pc, bool taken);
    void btbUpdate(std::uint32_t pc, std::uint32_t target);

    Config config_;
    std::vector<std::uint8_t> bht_; ///< 2-bit saturating counters
    TagArray btbTags_;
    std::vector<std::uint32_t> btbTargets_;
    std::vector<std::uint32_t> ras_;
    std::uint32_t btbSetMask_ = 0;
    std::uint32_t btbSetShift_ = 0;
    Stats stats_;
};

} // namespace voltcache
