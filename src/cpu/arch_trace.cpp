#include "cpu/arch_trace.h"

#include <utility>

namespace voltcache {

void ArchTrace::finalize(bool halted, std::int32_t checksum, std::uint64_t maxInstructions,
                         std::uint32_t entryAddr, std::uint32_t imageWords) {
    VC_EXPECTS(!finalized_);
    finalized_ = true;
    halted_ = halted;
    checksum_ = checksum;
    maxInstructions_ = maxInstructions;
    entryAddr_ = entryAddr;
    imageWords_ = imageWords;
}

ArchTrace TraceRecorder::finish(bool halted, std::int32_t checksum,
                                std::uint64_t maxInstructions, std::uint32_t entryAddr,
                                std::uint32_t imageWords) {
    VC_EXPECTS(!trace_.overflowed());
    trace_.finalize(halted, checksum, maxInstructions, entryAddr, imageWords);
    return std::move(trace_);
}

} // namespace voltcache
