#include "cpu/branch_predictor.h"

#include "common/contracts.h"

namespace voltcache {

BranchPredictor::BranchPredictor() : BranchPredictor(Config{}) {}

BranchPredictor::BranchPredictor(Config config)
    : config_(config),
      bht_(config.bhtEntries, 2), // weakly taken
      btbTags_(config.btbEntries / config.btbWays, config.btbWays),
      btbTargets_(config.btbEntries, 0) {
    VC_EXPECTS(config.bhtEntries > 0 && (config.bhtEntries & (config.bhtEntries - 1)) == 0);
    VC_EXPECTS(config.btbEntries % config.btbWays == 0);
    // The set/tag split below is shift/mask, so the set count must be a
    // power of two (it is for the Table I 512-entry 8-way BTB).
    const std::uint32_t sets = btbTags_.sets();
    VC_EXPECTS(sets > 0 && (sets & (sets - 1)) == 0);
    btbSetMask_ = sets - 1;
    btbSetShift_ = static_cast<std::uint32_t>(std::countr_zero(sets));
    ras_.reserve(config.rasEntries);
}

std::uint32_t BranchPredictor::bhtIndex(std::uint32_t pc) const noexcept {
    return (pc >> 2) & (config_.bhtEntries - 1);
}

BranchPredictor::Prediction BranchPredictor::btbLookup(std::uint32_t pc, bool taken) {
    Prediction prediction;
    prediction.taken = taken;
    const std::uint32_t set = (pc >> 2) & btbSetMask_;
    const std::uint32_t tag = (pc >> 2) >> btbSetShift_;
    if (const auto hit = btbTags_.lookup(set, tag); hit.hit) {
        prediction.targetKnown = true;
        prediction.target = btbTargets_[set * btbTags_.ways() + hit.way];
    }
    return prediction;
}

void BranchPredictor::btbUpdate(std::uint32_t pc, std::uint32_t target) {
    const std::uint32_t set = (pc >> 2) & btbSetMask_;
    const std::uint32_t tag = (pc >> 2) >> btbSetShift_;
    if (const auto hit = btbTags_.lookup(set, tag); hit.hit) {
        btbTags_.touch(set, hit.way);
        btbTargets_[set * btbTags_.ways() + hit.way] = target;
        return;
    }
    const auto fill = btbTags_.fill(set, tag);
    btbTargets_[set * btbTags_.ways() + fill.way] = target;
}

BranchPredictor::Prediction BranchPredictor::predictBranch(std::uint32_t pc) {
    ++stats_.lookups;
    const bool taken = bht_[bhtIndex(pc)] >= 2;
    return btbLookup(pc, taken);
}

BranchPredictor::Prediction BranchPredictor::predictJump(std::uint32_t pc) {
    ++stats_.lookups;
    return btbLookup(pc, true);
}

BranchPredictor::Prediction BranchPredictor::predictReturn(std::uint32_t pc) {
    ++stats_.lookups;
    if (!ras_.empty()) {
        Prediction prediction;
        prediction.taken = true;
        prediction.targetKnown = true;
        prediction.target = ras_.back();
        ras_.pop_back();
        return prediction;
    }
    return btbLookup(pc, true);
}

void BranchPredictor::pushReturnAddress(std::uint32_t addr) {
    if (ras_.size() == config_.rasEntries) ras_.erase(ras_.begin());
    ras_.push_back(addr);
}

bool BranchPredictor::resolve(const Prediction& prediction, std::uint32_t pc, bool taken,
                              std::uint32_t target, bool chargeMispredict) {
    // Direction training (2-bit saturating counter).
    std::uint8_t& counter = bht_[bhtIndex(pc)];
    if (taken && counter < 3) ++counter;
    if (!taken && counter > 0) --counter;
    if (taken) btbUpdate(pc, target);

    const bool correct =
        prediction.taken == taken &&
        (!taken || (prediction.targetKnown && prediction.target == target));
    if (!correct && chargeMispredict) ++stats_.mispredicts;
    return correct;
}

} // namespace voltcache
