// The two-wide in-order pipeline timing model, factored out of the
// execution-driven Simulator so that the trace-replay engine (core/replay.h)
// runs the *same* timing code — cycle accounting, stall attribution, issue
// constraints, D-port occupancy — against a recorded architectural stream.
// Bit-identical results between execution and replay are guaranteed by
// construction: there is exactly one copy of the timing semantics, and the
// Driver policy only supplies the dynamic facts (instruction stream, data
// addresses, branch outcomes) plus the functional side effects execution
// needs and replay skips.
//
// Driver concept (all methods hot; drivers inline everything):
//   bool atEnd();                       // replay: trace exhausted; exec: false
//   const Instruction& inst();          // instruction at the current position
//   std::uint32_t pc();                 // its architectural byte address
//   std::uint32_t loadAddr();           // Lw effective address
//   std::uint32_t literalAddr();        // Ldl effective address (pc-relative)
//   std::uint32_t storeAddr();          // Sw effective address
//   bool condTaken();                   // conditional branch direction
//   std::uint32_t directTarget();       // Jal / conditional-branch target
//   std::uint32_t jalrTarget();         // Jalr target
//   bool resolveJump/Branch/Return(pc, [taken,] target);  // predictor outcome
//   void pushReturnAddress(addr);
//   void writeLui/writeAlu/writeLink(); // exec: register value side effects
//   void writeLoad(addr); void doStore(addr);
//   void notifyIssue();                 // exec: observer onInstruction hook
//   void notifyControlFlow(taken, nextPc, correct);
//   void stepFallthrough();             // advance position past the op
//   void stepBranch(taken, target) / stepJump(target) / stepJalr(target);
#pragma once

#include <algorithm>
#include <array>
#include <cstdint>

#include "cpu/simulator.h"
#include "isa/instruction.h"
#include "schemes/scheme.h"

namespace voltcache::timing {

enum class StallCause : std::uint8_t { None, IFetch, Branch, Dmem, Exec };

/// Which source registers an opcode actually reads.
struct SourceUse {
    bool rs1 = false;
    bool rs2 = false;
};

[[nodiscard]] constexpr SourceUse sourcesOf(const Instruction& inst) noexcept {
    const Opcode op = inst.op;
    if (op <= Opcode::Sltu) return {true, true};                  // R-type
    if (op <= Opcode::Slti) return {true, false};                 // ALU-imm
    if (op == Opcode::Lui || op == Opcode::Ldl) return {false, false};
    if (op == Opcode::Lw) return {true, false};
    if (op == Opcode::Sw) return {true, true};
    if (isConditionalBranch(op)) return {true, true};
    if (op == Opcode::Jalr) return {true, false};
    return {false, false}; // Jal, Nop, Halt
}

namespace detail {

// Per-opcode issue-stage facts folded into one byte, so the hot loop pays a
// single table load instead of re-deriving sourcesOf/isMemory/isControlFlow
// compare chains for every dynamic instruction.
inline constexpr std::uint8_t kReadsRs1 = 1U << 0;
inline constexpr std::uint8_t kReadsRs2 = 1U << 1;
inline constexpr std::uint8_t kIsMemory = 1U << 2;
inline constexpr std::uint8_t kIsControlFlow = 1U << 3;

[[nodiscard]] constexpr std::array<std::uint8_t, kOpcodeCount> makeOpFlags() noexcept {
    std::array<std::uint8_t, kOpcodeCount> flags{};
    for (unsigned i = 0; i < kOpcodeCount; ++i) {
        const auto op = static_cast<Opcode>(i);
        const SourceUse use = sourcesOf(Instruction{op});
        std::uint8_t f = 0;
        if (use.rs1) f |= kReadsRs1;
        if (use.rs2) f |= kReadsRs2;
        if (isMemory(op)) f |= kIsMemory;
        if (isControlFlow(op)) f |= kIsControlFlow; // includes Halt
        flags[i] = f;
    }
    return flags;
}

inline constexpr std::array<std::uint8_t, kOpcodeCount> kOpFlags = makeOpFlags();

} // namespace detail

/// The pipeline loop's complete timing state (the Simulator's former
/// scoreboard members), hoisted into a struct so a run can be suspended and
/// resumed: the scalar `runPipeline` drives one chunk to completion, while
/// the batched replay engine (core/replay.cpp) interleaves many lanes
/// through the same tape chunk, each carrying its own PipelineState.
///
/// The register scoreboards carry one extra scratch slot: writes to the
/// zero register are redirected there instead of branching on rd == 0, so
/// slot 0 stays permanently ready and the write path is branch-free.
struct PipelineState {
    RunStats stats;
    std::uint64_t cycle = 0;
    std::uint32_t slotsUsed = 0;
    std::uint32_t memOpsThisCycle = 0;
    std::uint32_t branchesThisCycle = 0;
    std::array<std::uint64_t, kNumRegisters + 1> regReady{};
    std::array<bool, kNumRegisters + 1> regFromLoad{};
    std::uint64_t frontendReady = 0;
    StallCause frontendCause = StallCause::None;
    std::uint64_t lastFetchBlock = ~std::uint64_t{0};
    std::uint64_t dportBusyUntil = 0;
    // Stall cycles indexed by StallCause (slot 0 = None is discarded), so
    // the hot advanceTo is a single indexed add instead of a branch tree.
    std::array<std::uint64_t, 5> stallCycles{};
    bool running = true; ///< false once Halt retired — do not resume
};

/// Assemble the final RunStats from a finished run's state. Pairs with
/// runPipelineChunk; `runPipeline` below is the one-shot composition.
[[nodiscard]] inline RunStats finalizePipeline(const PipelineState& st) {
    RunStats stats = st.stats;
    stats.ifetchStallCycles = st.stallCycles[static_cast<unsigned>(StallCause::IFetch)];
    stats.branchStallCycles = st.stallCycles[static_cast<unsigned>(StallCause::Branch)];
    stats.dmemStallCycles = st.stallCycles[static_cast<unsigned>(StallCause::Dmem)];
    stats.execStallCycles = st.stallCycles[static_cast<unsigned>(StallCause::Exec)];
    stats.cycles = st.cycle + 1;
    stats.activity.instructions = stats.instructions;
    stats.activity.cycles = stats.cycles;
    return stats;
}

/// Advance `st` until the driver's stream is exhausted, the instruction
/// limit is reached, or Halt retires (st.running goes false). Resumable: a
/// driver that reports atEnd() at a chunk boundary leaves the state ready
/// for the next chunk. `ICache`/`DCache` default to the scheme base
/// classes; callers that know the concrete (final) scheme types pass them
/// instead, devirtualizing — and, with IPO, inlining — every per-access
/// call in the loop.
template <class Driver, class ICache = InstrCacheScheme, class DCache = DataCacheScheme>
void runPipelineChunk(PipelineState& st, Driver& driver, ICache& icache, DCache& dcache,
                      const PipelineConfig& config) {
    // Hoist the state into locals for the chunk: their addresses never
    // escape, so the compiler keeps the hot fields in registers across the
    // (possibly opaque) cache-scheme calls, exactly as when they were local
    // variables of the one-shot loop.
    RunStats stats = st.stats;
    std::uint64_t cycle = st.cycle;
    std::uint32_t slotsUsed = st.slotsUsed;
    std::uint32_t memOpsThisCycle = st.memOpsThisCycle;
    std::uint32_t branchesThisCycle = st.branchesThisCycle;
    std::array<std::uint64_t, kNumRegisters + 1> regReady = st.regReady;
    std::array<bool, kNumRegisters + 1> regFromLoad = st.regFromLoad;
    std::uint64_t frontendReady = st.frontendReady;
    StallCause frontendCause = st.frontendCause;
    std::uint64_t lastFetchBlock = st.lastFetchBlock;
    std::uint64_t dportBusyUntil = st.dportBusyUntil;
    std::array<std::uint64_t, 5> stallCycles = st.stallCycles;
    bool running = st.running;

    const std::uint32_t iOverhead = icache.latencyOverhead();
    const std::uint32_t iHitLatency = kL1HitLatencyCycles + iOverhead;
    const std::uint32_t takenBubble = config.takenBranchFetchBubble ? iHitLatency - 1 : 0;
    const std::uint32_t dOverhead = dcache.latencyOverhead();

    const auto advanceTo = [&](std::uint64_t targetCycle, StallCause cause) {
        if (targetCycle <= cycle) return;
        stallCycles[static_cast<unsigned>(cause)] += targetCycle - cycle;
        cycle = targetCycle;
        slotsUsed = 0;
        memOpsThisCycle = 0;
        branchesThisCycle = 0;
    };
    const auto setRegTiming = [&](unsigned index, std::uint64_t readyCycle, bool fromLoad) {
        const unsigned slot = index == kZeroRegister ? kNumRegisters : index;
        regReady[slot] = readyCycle;
        regFromLoad[slot] = fromLoad;
    };

    const std::uint64_t instrLimit =
        config.maxInstructions != 0 ? config.maxInstructions : ~std::uint64_t{0};

    while (running) {
        if (stats.instructions >= instrLimit) break;
        if (driver.atEnd()) break;
        const Instruction& inst = driver.inst();
        const std::uint32_t pc = driver.pc();

        // --- Instruction fetch: one I-cache access per cache-line entry. ---
        const std::uint64_t fetchBlock = pc / 32;
        if (fetchBlock != lastFetchBlock) {
            lastFetchBlock = fetchBlock;
            const AccessResult fetch = icache.fetch(pc);
            ++stats.activity.l1iAccesses;
            stats.activity.l2Accesses += fetch.l2Reads;
            if (fetch.dram) ++stats.activity.dramAccesses;
            if (fetch.auxProbe) ++stats.activity.auxAccesses;
            if (!fetch.l1Hit) {
                // Miss penalty beyond the pipelined hit latency stalls fetch.
                const std::uint64_t penalty = fetch.latencyCycles - iHitLatency;
                if (cycle + penalty > frontendReady) {
                    frontendReady = cycle + penalty;
                    frontendCause = StallCause::IFetch;
                }
            }
        }
        advanceTo(frontendReady, frontendCause);

        const std::uint8_t opFlags = detail::kOpFlags[static_cast<unsigned>(inst.op)];

        // --- Register dependences. ---
        // Branch-free in the common no-stall case: compute both effective
        // ready cycles (0 when the source is unread), take the max, and only
        // attribute a cause on the rare path where it actually stalls. Ties
        // attribute to rs1, exactly as the sequential compare chain did.
        {
            const std::uint64_t ready1 =
                (opFlags & detail::kReadsRs1) != 0 ? regReady[inst.rs1] : 0;
            const std::uint64_t ready2 =
                (opFlags & detail::kReadsRs2) != 0 ? regReady[inst.rs2] : 0;
            const std::uint64_t ready = std::max(ready1, ready2);
            if (ready > cycle) [[unlikely]] {
                const bool fromLoad =
                    ready1 >= ready2 ? regFromLoad[inst.rs1] : regFromLoad[inst.rs2];
                advanceTo(ready, fromLoad ? StallCause::Dmem : StallCause::Exec);
            }
        }

        // --- Issue-width and structural constraints. ---
        const bool isMem = (opFlags & detail::kIsMemory) != 0;
        const bool isCf = (opFlags & detail::kIsControlFlow) != 0;
        if (slotsUsed >= config.issueWidth || (isMem && memOpsThisCycle >= 1) ||
            (isCf && branchesThisCycle >= 1)) {
            advanceTo(cycle + 1, StallCause::None);
        }
        if (isMem && config.dcachePortOccupancy) {
            const std::uint64_t portFree = dportBusyUntil;
            if (portFree > cycle) advanceTo(portFree, StallCause::Dmem);
            dportBusyUntil = cycle + 1 + dOverhead;
        }
        ++slotsUsed;
        if (isMem) ++memOpsThisCycle;
        if (isCf) ++branchesThisCycle;

        driver.notifyIssue();
        ++stats.instructions;

        // --- Execute. ---
        switch (inst.op) {
            case Opcode::Nop: break;
            case Opcode::Halt:
                stats.halted = true;
                running = false;
                continue;
            case Opcode::Lui:
                setRegTiming(inst.rd, cycle + 1, false);
                driver.writeLui();
                break;
            case Opcode::Lw:
            case Opcode::Ldl: {
                const std::uint32_t addr =
                    inst.op == Opcode::Lw ? driver.loadAddr() : driver.literalAddr();
                const AccessResult res = dcache.read(addr);
                ++stats.loads;
                ++stats.activity.l1dAccesses;
                stats.activity.l2Accesses += res.l2Reads;
                if (res.dram) ++stats.activity.dramAccesses;
                if (res.auxProbe) ++stats.activity.auxAccesses;
                setRegTiming(inst.rd, cycle + res.latencyCycles, true);
                driver.writeLoad(addr);
                if (config.extraDcacheCycleStalls && dOverhead > 0) {
                    // The pipe has no slot for the extra cache cycle(s): they
                    // bubble behind every load, used or not — nothing issues
                    // while the lengthened MEM stage drains.
                    advanceTo(cycle + 1 + dOverhead, StallCause::Dmem);
                }
                break;
            }
            case Opcode::Sw: {
                const std::uint32_t addr = driver.storeAddr();
                driver.doStore(addr);
                const AccessResult res = dcache.write(addr);
                ++stats.stores;
                ++stats.activity.l1dAccesses;
                stats.activity.l2WriteThroughs += res.l2Writes;
                stats.activity.l2Accesses += res.l2Reads;
                if (res.dram) ++stats.activity.dramAccesses;
                if (res.auxProbe) ++stats.activity.auxAccesses;
                // Ideal write buffer: the store retires without stalling.
                break;
            }
            case Opcode::Jal: {
                const std::uint32_t target = driver.directTarget();
                const bool correct = driver.resolveJump(pc, target);
                if (inst.rd != kZeroRegister) {
                    setRegTiming(inst.rd, cycle + 1, false);
                    driver.writeLink();
                    driver.pushReturnAddress(pc + 4);
                }
                if (!correct) {
                    // Direct jump with a cold BTB: the target is extracted
                    // in decode — an I-fetch-latency redirect bubble.
                    frontendReady = cycle + 1 + iHitLatency;
                    frontendCause = StallCause::Branch;
                } else if (takenBubble > 0) {
                    frontendReady = std::max(frontendReady, cycle + takenBubble);
                    frontendCause = StallCause::Branch;
                }
                driver.notifyControlFlow(true, target, correct);
                driver.stepJump(target);
                continue;
            }
            case Opcode::Jalr: {
                const std::uint32_t target = driver.jalrTarget();
                const bool correct = driver.resolveReturn(pc, target);
                if (inst.rd != kZeroRegister) {
                    setRegTiming(inst.rd, cycle + 1, false);
                    driver.writeLink();
                    driver.pushReturnAddress(pc + 4);
                }
                if (!correct) {
                    ++stats.mispredicts;
                    frontendReady = cycle + 1 + config.mispredictPenalty + iHitLatency +
                                    iOverhead;
                    frontendCause = StallCause::Branch;
                } else if (takenBubble > 0) {
                    frontendReady = std::max(frontendReady, cycle + takenBubble);
                    frontendCause = StallCause::Branch;
                }
                driver.notifyControlFlow(true, target, correct);
                driver.stepJalr(target);
                continue;
            }
            default: {
                if (isConditionalBranch(inst.op)) {
                    const bool taken = driver.condTaken();
                    const std::uint32_t target = driver.directTarget();
                    const bool correct = driver.resolveBranch(pc, taken, target);
                    ++stats.condBranches;
                    if (taken) ++stats.takenBranches;
                    if (!correct) {
                        ++stats.mispredicts;
                        // The refill pays the I-fetch latency plus the extra
                        // drain of the deeper front end (the overhead stage
                        // lengthens both refetch and flush).
                        frontendReady = cycle + 1 + config.mispredictPenalty +
                                        iHitLatency + iOverhead;
                        frontendCause = StallCause::Branch;
                    } else if (taken && takenBubble > 0) {
                        frontendReady = std::max(frontendReady, cycle + takenBubble);
                        frontendCause = StallCause::Branch;
                    }
                    driver.notifyControlFlow(taken, taken ? target : pc + 4, correct);
                    driver.stepBranch(taken, target);
                    continue;
                }
                // Plain ALU op (R-type or ALU-imm).
                std::uint32_t latency = 1;
                if (inst.op == Opcode::Mul) latency = config.mulLatency;
                if (inst.op == Opcode::Div || inst.op == Opcode::Rem) {
                    latency = config.divLatency;
                }
                setRegTiming(inst.rd, cycle + latency, false);
                driver.writeAlu();
                break;
            }
        }
        driver.stepFallthrough();
    }

    st.stats = stats;
    st.cycle = cycle;
    st.slotsUsed = slotsUsed;
    st.memOpsThisCycle = memOpsThisCycle;
    st.branchesThisCycle = branchesThisCycle;
    st.regReady = regReady;
    st.regFromLoad = regFromLoad;
    st.frontendReady = frontendReady;
    st.frontendCause = frontendCause;
    st.lastFetchBlock = lastFetchBlock;
    st.dportBusyUntil = dportBusyUntil;
    st.stallCycles = stallCycles;
    st.running = running;
}

/// One-shot run: fresh state, a single chunk to completion, finalized stats.
template <class Driver, class ICache = InstrCacheScheme, class DCache = DataCacheScheme>
RunStats runPipeline(Driver& driver, ICache& icache, DCache& dcache,
                     const PipelineConfig& config) {
    PipelineState st;
    runPipelineChunk(st, driver, icache, dcache, config);
    return finalizePipeline(st);
}

} // namespace voltcache::timing
