// Two-wide in-order timing simulator (paper Table I: gem5 "arm-detailed"
// 2-way superscalar, modelling an ARM Cortex-A9-class embedded core).
//
// The model executes the program functionally, instruction by instruction,
// while tracking cycle time with a scoreboard:
//   * up to 2 instructions issue per cycle, at most 1 memory op and 1
//     control-flow op per cycle;
//   * register dependences stall issue until the producer's latency elapses
//     (ALU 1, MUL 3, DIV 12, loads = L1 latency or miss latency);
//   * instruction fetch is pipelined within a cache line; crossing into a
//     new line costs an I-cache access whose miss latency stalls the front
//     end; taken control flow redirects fetch (free on a correct BTB/RAS
//     hit, an I-cache-latency bubble on a BTB miss, full pipeline refill
//     plus I-cache latency on a mispredict);
//   * stores drain through an ideal write buffer (write-through traffic is
//     counted but does not stall).
//
// Stalled cycles are attributed to I-fetch, D-memory, branch, or execution
// components, giving the runtime decomposition of Fig. 10 (method of [35]).
#pragma once

#include <array>
#include <cstdint>

#include "cpu/branch_predictor.h"
#include "cpu/memory.h"
#include "isa/instruction.h"
#include "isa/module.h"
#include "linker/image.h"
#include "power/energy_model.h"
#include "schemes/scheme.h"

namespace voltcache {

struct PipelineConfig {
    std::uint32_t issueWidth = 2;
    std::uint32_t mispredictPenalty = 5; ///< refill cycles beyond the I-fetch latency
    std::uint32_t mulLatency = 3;
    std::uint32_t divLatency = 12;
    std::uint64_t maxInstructions = 0; ///< 0 = run to Halt
    /// Even a correctly-predicted taken transfer restarts the fetch
    /// pipeline: it costs (I-cache hit latency - 1) bubble cycles, as on
    /// in-order embedded cores. This is what makes every +1 cycle of L1I
    /// latency so expensive in Fig. 10.
    bool takenBranchFetchBubble = true;
    /// A scheme's extra L1D cycle is *array* time (Fig. 9: the wire-delay
    /// slack is gone), not a pipeline register — the single D-port can then
    /// only start a new access every (1 + overhead) cycles.
    bool dcachePortOccupancy = true;
    /// The pipeline is designed around the 2-cycle L1D (Table I): a scheme
    /// that adds a cache cycle inserts that bubble on EVERY load, dependent
    /// or not — the paper's central claim that L1 latency is the critical
    /// parameter (Section VI-B: ">40% performance loss ... mostly due to
    /// the 1 cycle extra latency").
    bool extraDcacheCycleStalls = true;
    BranchPredictor::Config predictor = {};
};

/// Cycle decomposition + event counts of one run.
struct RunStats {
    std::uint64_t instructions = 0;
    std::uint64_t cycles = 0;
    bool halted = false; ///< false = stopped at maxInstructions

    std::uint64_t loads = 0;
    std::uint64_t stores = 0;
    std::uint64_t condBranches = 0;
    std::uint64_t takenBranches = 0;
    std::uint64_t mispredicts = 0;

    // Runtime components (cycles), per the measurement approach of [35].
    std::uint64_t ifetchStallCycles = 0;
    std::uint64_t dmemStallCycles = 0;
    std::uint64_t branchStallCycles = 0;
    std::uint64_t execStallCycles = 0;

    ActivityCounts activity; ///< energy-model event counts

    [[nodiscard]] double ipc() const noexcept {
        return cycles > 0 ? static_cast<double>(instructions) / static_cast<double>(cycles)
                          : 0.0;
    }
    [[nodiscard]] std::uint64_t busyCycles() const noexcept {
        const std::uint64_t stalls =
            ifetchStallCycles + dmemStallCycles + branchStallCycles + execStallCycles;
        return cycles > stalls ? cycles - stalls : 0;
    }
    /// L2 accesses per 1000 instructions — the Fig. 11 metric (demand reads
    /// only; write-through traffic is accounted separately).
    [[nodiscard]] double l2AccessesPerKilo() const noexcept {
        return instructions > 0 ? 1000.0 * static_cast<double>(activity.l2Accesses) /
                                      static_cast<double>(instructions)
                                : 0.0;
    }
};

/// Hook for workload analyses (Fig. 3 locality profiling, Fig. 6 working
/// sets). Callbacks fire in program order.
class TraceObserver {
public:
    virtual ~TraceObserver() = default;
    virtual void onInstruction(std::uint32_t pc, const Instruction& inst) {
        (void)pc;
        (void)inst;
    }
    virtual void onDataAccess(std::uint32_t addr, bool isWrite) {
        (void)addr;
        (void)isWrite;
    }
    /// Fires once per retired control-flow instruction (Jal/Jalr/conditional
    /// branch), after the predictor resolved it. `nextPc` is the actual
    /// successor (fall-through for a not-taken branch); `predictedCorrect`
    /// is the predictor's verdict. The TraceRecorder (cpu/arch_trace.h)
    /// lives on this hook.
    virtual void onControlFlow(std::uint32_t pc, const Instruction& inst, bool taken,
                               std::uint32_t nextPc, bool predictedCorrect) {
        (void)pc;
        (void)inst;
        (void)taken;
        (void)nextPc;
        (void)predictedCorrect;
    }
};

class Simulator {
public:
    /// The image provides code and initial memory contents; `extraData`
    /// segments (from Module::data) are loaded on top.
    Simulator(const Image& image, const std::vector<DataSegment>& data,
              InstrCacheScheme& icache, DataCacheScheme& dcache, PipelineConfig config = {});

    /// Replace all attached observers with this one (legacy single-observer
    /// API; nullptr detaches everything).
    void setObserver(TraceObserver* observer) {
        observers_.clear();
        if (observer != nullptr) observers_.push_back(observer);
    }

    /// Attach an additional observer; observers fire in attach order, so a
    /// LocalityProfiler and a TraceSinkObserver can watch the same run.
    void addObserver(TraceObserver* observer) {
        if (observer != nullptr) observers_.push_back(observer);
    }

    /// Run from the image entry point until Halt (or maxInstructions).
    RunStats run();

    [[nodiscard]] const Memory& memory() const noexcept { return memory_; }
    [[nodiscard]] std::int32_t reg(unsigned index) const;
    [[nodiscard]] const BranchPredictor& predictor() const noexcept { return predictor_; }

private:
    // The timing model itself lives in cpu/timing_kernel.h (shared with the
    // trace-replay engine); ExecDriver supplies the functional half.
    friend class ExecDriver;

    const Image* image_;
    InstrCacheScheme* icache_;
    DataCacheScheme* dcache_;
    PipelineConfig config_;
    BranchPredictor predictor_;
    Memory memory_;
    std::vector<TraceObserver*> observers_;

    // Architectural state.
    std::array<std::int32_t, kNumRegisters> regs_{};
    std::uint32_t pc_ = 0;

    RunStats stats_;
};

} // namespace voltcache
