#include "cpu/simulator.h"

#include <limits>

#include "common/contracts.h"
#include "cpu/timing_kernel.h"
#include "obs/span.h"

namespace voltcache {

namespace {

std::int32_t aluOp(Opcode op, std::int32_t a, std::int32_t b) {
    const auto ua = static_cast<std::uint32_t>(a);
    const auto ub = static_cast<std::uint32_t>(b);
    switch (op) {
        case Opcode::Add:
        case Opcode::Addi: return static_cast<std::int32_t>(ua + ub);
        case Opcode::Sub: return static_cast<std::int32_t>(ua - ub);
        case Opcode::And:
        case Opcode::Andi: return a & b;
        case Opcode::Or:
        case Opcode::Ori: return a | b;
        case Opcode::Xor:
        case Opcode::Xori: return a ^ b;
        case Opcode::Sll:
        case Opcode::Slli: return static_cast<std::int32_t>(ua << (ub & 31));
        case Opcode::Srl:
        case Opcode::Srli: return static_cast<std::int32_t>(ua >> (ub & 31));
        case Opcode::Sra:
        case Opcode::Srai: return a >> (ub & 31);
        case Opcode::Mul:
            return static_cast<std::int32_t>(ua * ub);
        case Opcode::Div:
            if (b == 0) return -1; // RISC-V convention
            if (a == std::numeric_limits<std::int32_t>::min() && b == -1) return a;
            return a / b;
        case Opcode::Rem:
            if (b == 0) return a;
            if (a == std::numeric_limits<std::int32_t>::min() && b == -1) return 0;
            return a % b;
        case Opcode::Slt:
        case Opcode::Slti: return a < b ? 1 : 0;
        case Opcode::Sltu: return ua < ub ? 1 : 0;
        default: VC_ENSURES(false); return 0;
    }
}

bool branchTaken(Opcode op, std::int32_t a, std::int32_t b) {
    const auto ua = static_cast<std::uint32_t>(a);
    const auto ub = static_cast<std::uint32_t>(b);
    switch (op) {
        case Opcode::Beq: return a == b;
        case Opcode::Bne: return a != b;
        case Opcode::Blt: return a < b;
        case Opcode::Bge: return a >= b;
        case Opcode::Bltu: return ua < ub;
        case Opcode::Bgeu: return ua >= ub;
        default: VC_ENSURES(false); return false;
    }
}

} // namespace

/// Execution-driven Driver for timing::runPipeline: functional simulation
/// supplies the dynamic facts (register values, memory, live branch
/// predictor) and carries the architectural side effects.
class ExecDriver {
public:
    explicit ExecDriver(Simulator& sim) : sim_(sim) {}

    [[nodiscard]] bool atEnd() const { return false; }
    [[nodiscard]] const Instruction& inst() { return *(inst_ = &sim_.image_->fetch(sim_.pc_)); }
    [[nodiscard]] std::uint32_t pc() const { return sim_.pc_; }

    [[nodiscard]] std::uint32_t loadAddr() {
        const auto addr = static_cast<std::uint32_t>(sim_.regs_[inst_->rs1] + inst_->imm);
        for (TraceObserver* observer : sim_.observers_) observer->onDataAccess(addr, false);
        return addr;
    }
    [[nodiscard]] std::uint32_t literalAddr() {
        const std::uint32_t addr = sim_.pc_ + static_cast<std::uint32_t>(inst_->imm) * 4;
        for (TraceObserver* observer : sim_.observers_) observer->onDataAccess(addr, false);
        return addr;
    }
    [[nodiscard]] std::uint32_t storeAddr() {
        const auto addr = static_cast<std::uint32_t>(sim_.regs_[inst_->rs1] + inst_->imm);
        for (TraceObserver* observer : sim_.observers_) observer->onDataAccess(addr, true);
        return addr;
    }

    [[nodiscard]] bool condTaken() const {
        return branchTaken(inst_->op, sim_.regs_[inst_->rs1], sim_.regs_[inst_->rs2]);
    }
    [[nodiscard]] std::uint32_t directTarget() const {
        return sim_.pc_ + static_cast<std::uint32_t>(inst_->imm) * 4;
    }
    [[nodiscard]] std::uint32_t jalrTarget() const {
        return static_cast<std::uint32_t>(sim_.regs_[inst_->rs1] + inst_->imm) & ~3u;
    }

    [[nodiscard]] bool resolveJump(std::uint32_t pc, std::uint32_t target) {
        const auto prediction = sim_.predictor_.predictJump(pc);
        return sim_.predictor_.resolve(prediction, pc, true, target,
                                       /*chargeMispredict=*/false);
    }
    [[nodiscard]] bool resolveReturn(std::uint32_t pc, std::uint32_t target) {
        const auto prediction = sim_.predictor_.predictReturn(pc);
        return sim_.predictor_.resolve(prediction, pc, true, target,
                                       /*chargeMispredict=*/true);
    }
    [[nodiscard]] bool resolveBranch(std::uint32_t pc, bool taken, std::uint32_t target) {
        const auto prediction = sim_.predictor_.predictBranch(pc);
        return sim_.predictor_.resolve(prediction, pc, taken, target,
                                       /*chargeMispredict=*/true);
    }
    void pushReturnAddress(std::uint32_t addr) { sim_.predictor_.pushReturnAddress(addr); }

    void writeLui() { writeReg(inst_->rd, inst_->imm << 10); }
    void writeAlu() {
        const bool immediate = inst_->op >= Opcode::Addi && inst_->op <= Opcode::Slti;
        const std::int32_t b = immediate ? inst_->imm : sim_.regs_[inst_->rs2];
        writeReg(inst_->rd, aluOp(inst_->op, sim_.regs_[inst_->rs1], b));
    }
    void writeLink() { writeReg(inst_->rd, static_cast<std::int32_t>(sim_.pc_ + 4)); }
    void writeLoad(std::uint32_t addr) {
        const std::int32_t value = sim_.memory_.read(addr);
        writeReg(inst_->rd, value);
    }
    void doStore(std::uint32_t addr) { sim_.memory_.write(addr, sim_.regs_[inst_->rs2]); }

    void notifyIssue() {
        for (TraceObserver* observer : sim_.observers_) {
            observer->onInstruction(sim_.pc_, *inst_);
        }
    }
    void notifyControlFlow(bool taken, std::uint32_t nextPc, bool predictedCorrect) {
        for (TraceObserver* observer : sim_.observers_) {
            observer->onControlFlow(sim_.pc_, *inst_, taken, nextPc, predictedCorrect);
        }
    }

    void stepFallthrough() { sim_.pc_ += 4; }
    void stepBranch(bool taken, std::uint32_t target) {
        sim_.pc_ = taken ? target : sim_.pc_ + 4;
    }
    void stepJump(std::uint32_t target) { sim_.pc_ = target; }
    void stepJalr(std::uint32_t target) { sim_.pc_ = target; }

private:
    void writeReg(unsigned index, std::int32_t value) {
        if (index == kZeroRegister) return;
        sim_.regs_[index] = value;
    }

    Simulator& sim_;
    const Instruction* inst_ = nullptr;
};

Simulator::Simulator(const Image& image, const std::vector<DataSegment>& data,
                     InstrCacheScheme& icache, DataCacheScheme& dcache,
                     PipelineConfig config)
    : image_(&image),
      icache_(&icache),
      dcache_(&dcache),
      config_(config),
      predictor_(config.predictor) {
    memory_.load(image.baseAddr(), image.encodedWords());
    for (const auto& segment : data) {
        std::vector<std::int32_t> words(segment.words.begin(), segment.words.end());
        memory_.load(segment.baseAddr, words);
    }
    pc_ = image.entryAddr();
}

std::int32_t Simulator::reg(unsigned index) const {
    VC_EXPECTS(index < kNumRegisters);
    return regs_[index];
}

RunStats Simulator::run() {
    const obs::Span span("execute");
    ExecDriver driver(*this);
    stats_ = timing::runPipeline(driver, *icache_, *dcache_, config_);
    return stats_;
}

} // namespace voltcache
