#include "cpu/simulator.h"

#include <limits>

#include "common/contracts.h"

namespace voltcache {

namespace {

/// Which source registers an opcode actually reads.
struct SourceUse {
    bool rs1 = false;
    bool rs2 = false;
};

SourceUse sourcesOf(const Instruction& inst) {
    const Opcode op = inst.op;
    if (op <= Opcode::Sltu) return {true, true};                  // R-type
    if (op <= Opcode::Slti) return {true, false};                 // ALU-imm
    if (op == Opcode::Lui || op == Opcode::Ldl) return {false, false};
    if (op == Opcode::Lw) return {true, false};
    if (op == Opcode::Sw) return {true, true};
    if (isConditionalBranch(op)) return {true, true};
    if (op == Opcode::Jalr) return {true, false};
    return {false, false}; // Jal, Nop, Halt
}

std::int32_t aluOp(Opcode op, std::int32_t a, std::int32_t b) {
    const auto ua = static_cast<std::uint32_t>(a);
    const auto ub = static_cast<std::uint32_t>(b);
    switch (op) {
        case Opcode::Add:
        case Opcode::Addi: return static_cast<std::int32_t>(ua + ub);
        case Opcode::Sub: return static_cast<std::int32_t>(ua - ub);
        case Opcode::And:
        case Opcode::Andi: return a & b;
        case Opcode::Or:
        case Opcode::Ori: return a | b;
        case Opcode::Xor:
        case Opcode::Xori: return a ^ b;
        case Opcode::Sll:
        case Opcode::Slli: return static_cast<std::int32_t>(ua << (ub & 31));
        case Opcode::Srl:
        case Opcode::Srli: return static_cast<std::int32_t>(ua >> (ub & 31));
        case Opcode::Sra:
        case Opcode::Srai: return a >> (ub & 31);
        case Opcode::Mul:
            return static_cast<std::int32_t>(ua * ub);
        case Opcode::Div:
            if (b == 0) return -1; // RISC-V convention
            if (a == std::numeric_limits<std::int32_t>::min() && b == -1) return a;
            return a / b;
        case Opcode::Rem:
            if (b == 0) return a;
            if (a == std::numeric_limits<std::int32_t>::min() && b == -1) return 0;
            return a % b;
        case Opcode::Slt:
        case Opcode::Slti: return a < b ? 1 : 0;
        case Opcode::Sltu: return ua < ub ? 1 : 0;
        default: VC_ENSURES(false); return 0;
    }
}

bool branchTaken(Opcode op, std::int32_t a, std::int32_t b) {
    const auto ua = static_cast<std::uint32_t>(a);
    const auto ub = static_cast<std::uint32_t>(b);
    switch (op) {
        case Opcode::Beq: return a == b;
        case Opcode::Bne: return a != b;
        case Opcode::Blt: return a < b;
        case Opcode::Bge: return a >= b;
        case Opcode::Bltu: return ua < ub;
        case Opcode::Bgeu: return ua >= ub;
        default: VC_ENSURES(false); return false;
    }
}

} // namespace

Simulator::Simulator(const Image& image, const std::vector<DataSegment>& data,
                     InstrCacheScheme& icache, DataCacheScheme& dcache,
                     PipelineConfig config)
    : image_(&image),
      icache_(&icache),
      dcache_(&dcache),
      config_(config),
      predictor_(config.predictor) {
    memory_.load(image.baseAddr(), image.encodedWords());
    for (const auto& segment : data) {
        std::vector<std::int32_t> words(segment.words.begin(), segment.words.end());
        memory_.load(segment.baseAddr, words);
    }
    pc_ = image.entryAddr();
}

std::int32_t Simulator::reg(unsigned index) const {
    VC_EXPECTS(index < kNumRegisters);
    return regs_[index];
}

void Simulator::advanceTo(std::uint64_t targetCycle, StallCause cause) {
    if (targetCycle <= cycle_) return;
    const std::uint64_t stall = targetCycle - cycle_;
    switch (cause) {
        case StallCause::IFetch: stats_.ifetchStallCycles += stall; break;
        case StallCause::Branch: stats_.branchStallCycles += stall; break;
        case StallCause::Dmem: stats_.dmemStallCycles += stall; break;
        case StallCause::Exec: stats_.execStallCycles += stall; break;
        case StallCause::None: break;
    }
    cycle_ = targetCycle;
    slotsUsed_ = 0;
    memOpsThisCycle_ = 0;
    branchesThisCycle_ = 0;
}

void Simulator::setReg(unsigned index, std::int32_t value, std::uint64_t readyCycle,
                       bool fromLoad) {
    if (index == kZeroRegister) return;
    regs_[index] = value;
    regReady_[index] = readyCycle;
    regFromLoad_[index] = fromLoad;
}

std::uint64_t Simulator::sourceReady(const Instruction& inst, StallCause& cause) const {
    const SourceUse use = sourcesOf(inst);
    std::uint64_t ready = 0;
    cause = StallCause::Exec;
    if (use.rs1 && regReady_[inst.rs1] > ready) {
        ready = regReady_[inst.rs1];
        cause = regFromLoad_[inst.rs1] ? StallCause::Dmem : StallCause::Exec;
    }
    if (use.rs2 && regReady_[inst.rs2] > ready) {
        ready = regReady_[inst.rs2];
        cause = regFromLoad_[inst.rs2] ? StallCause::Dmem : StallCause::Exec;
    }
    return ready;
}

RunStats Simulator::run() {
    const std::uint32_t iHitLatency = kL1HitLatencyCycles + icache_->latencyOverhead();
    const std::uint32_t takenBubble =
        config_.takenBranchFetchBubble ? iHitLatency - 1 : 0;
    bool running = true;

    while (running) {
        if (config_.maxInstructions != 0 && stats_.instructions >= config_.maxInstructions) {
            break;
        }
        const Instruction& inst = image_->fetch(pc_);

        // --- Instruction fetch: one I-cache access per cache-line entry. ---
        const std::uint64_t fetchBlock = pc_ / 32;
        if (fetchBlock != lastFetchBlock_) {
            lastFetchBlock_ = fetchBlock;
            const AccessResult fetch = icache_->fetch(pc_);
            ++stats_.activity.l1iAccesses;
            stats_.activity.l2Accesses += fetch.l2Reads;
            if (fetch.dram) ++stats_.activity.dramAccesses;
            if (fetch.auxProbe) ++stats_.activity.auxAccesses;
            if (!fetch.l1Hit) {
                // Miss penalty beyond the pipelined hit latency stalls fetch.
                const std::uint64_t penalty = fetch.latencyCycles - iHitLatency;
                if (cycle_ + penalty > frontendReady_) {
                    frontendReady_ = cycle_ + penalty;
                    frontendCause_ = StallCause::IFetch;
                }
            }
        }
        advanceTo(frontendReady_, frontendCause_);

        // --- Register dependences. ---
        StallCause depCause = StallCause::Exec;
        const std::uint64_t depReady = sourceReady(inst, depCause);
        advanceTo(depReady, depCause);

        // --- Issue-width and structural constraints. ---
        if (slotsUsed_ >= config_.issueWidth ||
            (isMemory(inst.op) && memOpsThisCycle_ >= 1) ||
            (isControlFlow(inst.op) && branchesThisCycle_ >= 1)) {
            advanceTo(cycle_ + 1, StallCause::None);
        }
        if (isMemory(inst.op) && config_.dcachePortOccupancy) {
            const std::uint64_t portFree = dportBusyUntil_;
            if (portFree > cycle_) advanceTo(portFree, StallCause::Dmem);
            dportBusyUntil_ = cycle_ + 1 + dcache_->latencyOverhead();
        }
        ++slotsUsed_;
        if (isMemory(inst.op)) ++memOpsThisCycle_;
        if (isControlFlow(inst.op)) ++branchesThisCycle_;

        for (TraceObserver* observer : observers_) observer->onInstruction(pc_, inst);
        ++stats_.instructions;

        // --- Execute. ---
        std::uint32_t nextPc = pc_ + 4;
        switch (inst.op) {
            case Opcode::Nop: break;
            case Opcode::Halt:
                stats_.halted = true;
                running = false;
                break;
            case Opcode::Lui:
                setReg(inst.rd, inst.imm << 10, cycle_ + 1, false);
                break;
            case Opcode::Lw:
            case Opcode::Ldl: {
                const std::uint32_t addr =
                    inst.op == Opcode::Lw
                        ? static_cast<std::uint32_t>(regs_[inst.rs1] + inst.imm)
                        : pc_ + static_cast<std::uint32_t>(inst.imm) * 4;
                for (TraceObserver* observer : observers_) observer->onDataAccess(addr, false);
                const AccessResult res = dcache_->read(addr);
                ++stats_.loads;
                ++stats_.activity.l1dAccesses;
                stats_.activity.l2Accesses += res.l2Reads;
                if (res.dram) ++stats_.activity.dramAccesses;
                if (res.auxProbe) ++stats_.activity.auxAccesses;
                setReg(inst.rd, memory_.read(addr), cycle_ + res.latencyCycles, true);
                if (config_.extraDcacheCycleStalls && dcache_->latencyOverhead() > 0) {
                    // The pipe has no slot for the extra cache cycle(s): they
                    // bubble behind every load, used or not — nothing issues
                    // while the lengthened MEM stage drains.
                    advanceTo(cycle_ + 1 + dcache_->latencyOverhead(), StallCause::Dmem);
                }
                break;
            }
            case Opcode::Sw: {
                const std::uint32_t addr =
                    static_cast<std::uint32_t>(regs_[inst.rs1] + inst.imm);
                for (TraceObserver* observer : observers_) observer->onDataAccess(addr, true);
                memory_.write(addr, regs_[inst.rs2]);
                const AccessResult res = dcache_->write(addr);
                ++stats_.stores;
                ++stats_.activity.l1dAccesses;
                stats_.activity.l2WriteThroughs += res.l2Writes;
                stats_.activity.l2Accesses += res.l2Reads;
                if (res.dram) ++stats_.activity.dramAccesses;
                if (res.auxProbe) ++stats_.activity.auxAccesses;
                // Ideal write buffer: the store retires without stalling.
                break;
            }
            case Opcode::Jal: {
                const std::uint32_t target =
                    pc_ + static_cast<std::uint32_t>(inst.imm) * 4;
                const auto prediction = predictor_.predictJump(pc_);
                const bool correct =
                    predictor_.resolve(prediction, pc_, true, target,
                                       /*chargeMispredict=*/false);
                if (inst.rd != kZeroRegister) {
                    setReg(inst.rd, static_cast<std::int32_t>(pc_ + 4), cycle_ + 1, false);
                    predictor_.pushReturnAddress(pc_ + 4);
                }
                if (!correct) {
                    // Direct jump with a cold BTB: the target is extracted
                    // in decode — an I-fetch-latency redirect bubble.
                    frontendReady_ = cycle_ + 1 + iHitLatency;
                    frontendCause_ = StallCause::Branch;
                } else if (takenBubble > 0) {
                    frontendReady_ = std::max(frontendReady_, cycle_ + takenBubble);
                    frontendCause_ = StallCause::Branch;
                }
                nextPc = target;
                break;
            }
            case Opcode::Jalr: {
                const std::uint32_t target = static_cast<std::uint32_t>(
                                                 regs_[inst.rs1] + inst.imm) &
                                             ~3u;
                const auto prediction = predictor_.predictReturn(pc_);
                const bool correct = predictor_.resolve(prediction, pc_, true, target,
                                                        /*chargeMispredict=*/true);
                if (inst.rd != kZeroRegister) {
                    setReg(inst.rd, static_cast<std::int32_t>(pc_ + 4), cycle_ + 1, false);
                    predictor_.pushReturnAddress(pc_ + 4);
                }
                if (!correct) {
                    ++stats_.mispredicts;
                    frontendReady_ = cycle_ + 1 + config_.mispredictPenalty + iHitLatency +
                                     icache_->latencyOverhead();
                    frontendCause_ = StallCause::Branch;
                } else if (takenBubble > 0) {
                    frontendReady_ = std::max(frontendReady_, cycle_ + takenBubble);
                    frontendCause_ = StallCause::Branch;
                }
                nextPc = target;
                break;
            }
            default: {
                if (isConditionalBranch(inst.op)) {
                    const bool taken = branchTaken(inst.op, regs_[inst.rs1], regs_[inst.rs2]);
                    const std::uint32_t target =
                        pc_ + static_cast<std::uint32_t>(inst.imm) * 4;
                    const auto prediction = predictor_.predictBranch(pc_);
                    const bool correct = predictor_.resolve(prediction, pc_, taken, target,
                                                            /*chargeMispredict=*/true);
                    ++stats_.condBranches;
                    if (taken) {
                        ++stats_.takenBranches;
                        nextPc = target;
                    }
                    if (!correct) {
                        ++stats_.mispredicts;
                        // The refill pays the I-fetch latency plus the extra
                        // drain of the deeper front end (the overhead stage
                        // lengthens both refetch and flush).
                        frontendReady_ = cycle_ + 1 + config_.mispredictPenalty +
                                         iHitLatency + icache_->latencyOverhead();
                        frontendCause_ = StallCause::Branch;
                    } else if (taken && takenBubble > 0) {
                        frontendReady_ = std::max(frontendReady_, cycle_ + takenBubble);
                        frontendCause_ = StallCause::Branch;
                    }
                    break;
                }
                // Plain ALU op (R-type or ALU-imm).
                const bool immediate = inst.op >= Opcode::Addi && inst.op <= Opcode::Slti;
                const std::int32_t b = immediate ? inst.imm : regs_[inst.rs2];
                std::uint32_t latency = 1;
                if (inst.op == Opcode::Mul) latency = config_.mulLatency;
                if (inst.op == Opcode::Div || inst.op == Opcode::Rem) {
                    latency = config_.divLatency;
                }
                setReg(inst.rd, aluOp(inst.op, regs_[inst.rs1], b), cycle_ + latency, false);
                break;
            }
        }
        pc_ = nextPc;
    }

    stats_.cycles = cycle_ + 1;
    stats_.activity.instructions = stats_.instructions;
    stats_.activity.cycles = stats_.cycles;
    return stats_;
}

} // namespace voltcache
