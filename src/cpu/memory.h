// Sparse, paged data memory for the functional simulator. Word-granular to
// match the ISA and the caches. Unwritten memory reads as zero.
#pragma once

#include <array>
#include <cstdint>
#include <memory>
#include <stdexcept>
#include <unordered_map>
#include <vector>

namespace voltcache {

class Memory {
public:
    static constexpr std::uint32_t kPageWords = 1024; ///< 4KB pages

    /// Read the word at a 4-byte-aligned byte address.
    [[nodiscard]] std::int32_t read(std::uint32_t byteAddr) const;

    /// Write the word at a 4-byte-aligned byte address.
    void write(std::uint32_t byteAddr, std::int32_t value);

    /// Bulk-load consecutive words starting at `baseAddr` (image / data
    /// segment initialization).
    void load(std::uint32_t baseAddr, const std::vector<std::int32_t>& words);

    [[nodiscard]] std::size_t pageCount() const noexcept { return pages_.size(); }

private:
    using Page = std::array<std::int32_t, kPageWords>;

    std::unordered_map<std::uint32_t, std::unique_ptr<Page>> pages_;
};

/// Thrown on misaligned or otherwise invalid memory operations — indicates
/// a benchmark-program bug, so it must surface loudly.
class MemoryFault : public std::logic_error {
public:
    using std::logic_error::logic_error;
};

} // namespace voltcache
