// Sparse, paged data memory for the functional simulator. Word-granular to
// match the ISA and the caches. Unwritten memory reads as zero.
//
// Accesses are strongly sequential (streaming benchmarks, stack frames), so
// read/write keep a one-entry cache of the last page touched: the common
// case is a bounds-free array index instead of an unordered_map probe. Page
// storage is stable (unique_ptr), so the cached pointer never dangles.
#pragma once

#include <array>
#include <cstdint>
#include <memory>
#include <stdexcept>
#include <string>
#include <unordered_map>
#include <vector>

namespace voltcache {

/// Thrown on misaligned or otherwise invalid memory operations — indicates
/// a benchmark-program bug, so it must surface loudly.
class MemoryFault : public std::logic_error {
public:
    using std::logic_error::logic_error;
};

class Memory {
public:
    static constexpr std::uint32_t kPageWords = 1024; ///< 4KB pages

    /// Read the word at a 4-byte-aligned byte address.
    [[nodiscard]] std::int32_t read(std::uint32_t byteAddr) const {
        checkAligned(byteAddr);
        const std::uint32_t wordAddr = byteAddr / 4;
        const std::uint32_t pageIndex = wordAddr / kPageWords;
        if (pageIndex == lastPageIndex_) return (*lastPage_)[wordAddr % kPageWords];
        const auto it = pages_.find(pageIndex);
        if (it == pages_.end()) return 0;
        lastPageIndex_ = pageIndex;
        lastPage_ = it->second.get();
        return (*lastPage_)[wordAddr % kPageWords];
    }

    /// Write the word at a 4-byte-aligned byte address.
    void write(std::uint32_t byteAddr, std::int32_t value) {
        checkAligned(byteAddr);
        const std::uint32_t wordAddr = byteAddr / 4;
        const std::uint32_t pageIndex = wordAddr / kPageWords;
        if (pageIndex == lastPageIndex_) {
            (*lastPage_)[wordAddr % kPageWords] = value;
            return;
        }
        auto& page = pages_[pageIndex];
        if (!page) page = std::make_unique<Page>(Page{});
        lastPageIndex_ = pageIndex;
        lastPage_ = page.get();
        (*page)[wordAddr % kPageWords] = value;
    }

    /// Bulk-load consecutive words starting at `baseAddr` (image / data
    /// segment initialization).
    void load(std::uint32_t baseAddr, const std::vector<std::int32_t>& words);

    [[nodiscard]] std::size_t pageCount() const noexcept { return pages_.size(); }

private:
    using Page = std::array<std::int32_t, kPageWords>;

    static void checkAligned(std::uint32_t byteAddr) {
        if (byteAddr % 4 != 0) {
            throw MemoryFault("misaligned word access at address " +
                              std::to_string(byteAddr));
        }
    }

    std::unordered_map<std::uint32_t, std::unique_ptr<Page>> pages_;
    // Last-page cache. Only materialized pages are cached, so the sentinel
    // index can never alias a hit with lastPage_ == nullptr. `mutable`: the
    // cache is an access-path memo, not observable state (Memory is used
    // single-threaded, one instance per simulated leg).
    mutable std::uint32_t lastPageIndex_ = ~0u;
    mutable Page* lastPage_ = nullptr;
};

} // namespace voltcache
