// Basic block relocation instruction cache (paper Section IV-B, Fig. 7).
//
// At high voltage the cache runs 4-way set-associative. When the processor
// drops into low-voltage mode, all contents are invalidated and the cache
// switches to direct-mapped (DAC-style [27]: the least significant tag bits
// select the way), which gives the linker exact control of where every
// instruction lands. A BBR-linked binary never places a word on a defective
// cache word, so the fetch path needs no fault handling at all — by default
// this cache *enforces* that invariant and throws PlacementViolation if a
// fetch ever touches a defective word (it would indicate a linker bug).
#pragma once

#include <cstdint>
#include <stdexcept>

#include "cache/address.h"
#include "cache/tag_array.h"
#include "faults/fault_map.h"
#include "obs/metrics.h"
#include "schemes/scheme.h"

namespace voltcache {

/// A fetch touched a defective I-cache word in direct-mapped mode — the
/// binary was not (correctly) linked for this fault map.
class PlacementViolation : public std::logic_error {
public:
    using std::logic_error::logic_error;
};

class BbrICache final : public InstrCacheScheme {
public:
    enum class Mode : std::uint8_t { SetAssociative, DirectMapped };

    BbrICache(const CacheOrganization& org, FaultMap faultMap, L2Cache& l2,
              Mode mode = Mode::DirectMapped, bool enforcePlacement = true);

    AccessResult fetch(std::uint32_t addr) override;
    void invalidateAll() override;

    /// Mode switch invalidates all contents (paper Section IV-B2). In a run
    /// the mode is fixed for the whole low-voltage episode, so the switch
    /// cost is negligible.
    void switchMode(Mode mode);
    [[nodiscard]] Mode mode() const noexcept { return mode_; }

    [[nodiscard]] std::string_view name() const noexcept override { return "bbr"; }
    [[nodiscard]] std::uint32_t latencyOverhead() const noexcept override { return 0; }
    [[nodiscard]] const L1Stats& stats() const noexcept override { return stats_; }

private:
    AddressMapper mapper_;
    TagArray tags_;
    FaultMap faultMap_;
    L2Cache* l2_;
    Mode mode_;
    bool enforcePlacement_;
    L1Stats stats_;
    obs::Counter fetchMisses_; ///< process-wide "bbr.fetch_misses" counter
};

} // namespace voltcache
