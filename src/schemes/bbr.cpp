#include "schemes/bbr.h"

#include <string>

#include "common/contracts.h"
#include "obs/trace.h"

namespace voltcache {

BbrICache::BbrICache(const CacheOrganization& org, FaultMap faultMap, L2Cache& l2, Mode mode,
                     bool enforcePlacement)
    : mapper_(org),
      tags_(org.sets(), org.associativity),
      faultMap_(std::move(faultMap)),
      l2_(&l2),
      mode_(mode),
      enforcePlacement_(enforcePlacement),
      fetchMisses_(obs::MetricsRegistry::global().counter("bbr.fetch_misses")) {
    VC_EXPECTS(faultMap_.lines() == org.lines());
    VC_EXPECTS(faultMap_.wordsPerLine() == org.wordsPerBlock());
}

AccessResult BbrICache::fetch(std::uint32_t addr) {
    ++stats_.accesses;
    AccessResult result;
    result.latencyCycles = kL1HitLatencyCycles;
    const std::uint32_t set = mapper_.set(addr);
    const std::uint32_t tag = mapper_.tag(addr);

    if (mode_ == Mode::SetAssociative) {
        // High-voltage mode: no defects exist; plain 4-way LRU operation.
        if (const auto hit = tags_.lookup(set, tag); hit.hit) {
            tags_.touch(set, hit.way);
            ++stats_.hits;
            result.l1Hit = true;
            return result;
        }
        ++stats_.lineMisses;
        ++stats_.l2Reads;
        fetchMisses_.add();
        if (obs::TraceSink* sink = obs::traceSink()) {
            sink->record("bbr.fetch_miss", "icache", {{"addr", addr}, {"set", set}, {"dm", 0}});
        }
        const auto l2 = l2_->read(addr);
        tags_.fill(set, tag);
        result.l2Reads = 1;
        result.dram = l2.dram;
        result.latencyCycles += l2.latencyCycles;
        return result;
    }

    // Direct-mapped mode: the way comes from the low tag bits (Fig. 7), so
    // each memory word maps to exactly one cache word — the invariant BBR's
    // link-time placement relies on.
    const std::uint32_t way = mapper_.directWay(addr);
    if (enforcePlacement_ &&
        faultMap_.isFaulty(mapper_.physicalLine(set, way), mapper_.wordOffset(addr))) {
        throw PlacementViolation(
            "BBR: fetch of address " + std::to_string(addr) +
            " touches a defective I-cache word (line " +
            std::to_string(mapper_.physicalLine(set, way)) + ", word " +
            std::to_string(mapper_.wordOffset(addr)) +
            ") — the image was not placed against this fault map; "
            "analysis::provePlacement / tools/vcverify catches this statically");
    }
    if (tags_.probeWay(set, way, tag)) {
        ++stats_.hits;
        result.l1Hit = true;
        return result;
    }
    ++stats_.lineMisses;
    ++stats_.l2Reads;
    fetchMisses_.add();
    if (obs::TraceSink* sink = obs::traceSink()) {
        sink->record("bbr.fetch_miss", "icache",
                     {{"addr", addr}, {"set", set}, {"way", way}, {"dm", 1}});
    }
    const auto l2 = l2_->read(addr);
    tags_.fillAt(set, way, tag);
    result.l2Reads = 1;
    result.dram = l2.dram;
    result.latencyCycles += l2.latencyCycles;
    return result;
}

void BbrICache::invalidateAll() { tags_.invalidateAll(); }

void BbrICache::switchMode(Mode mode) {
    if (mode == mode_) return;
    mode_ = mode;
    if (obs::TraceSink* sink = obs::traceSink()) {
        sink->record("bbr.mode_switch", "icache",
                     {{"dm", mode_ == Mode::DirectMapped ? 1 : 0}});
    }
    invalidateAll();
}

} // namespace voltcache
