// Static design overheads per scheme (paper Table III).
//
// Two sources are provided:
//  * paperOverheads() — the published Table III values verbatim. The energy
//    and runtime experiments consume these, mirroring how we also use the
//    paper's exact Table II frequencies.
//  * modelOverheads() — the same quantities computed structurally from
//    CactiLite component estimates (each scheme's auxiliary arrays, cell
//    substitutions, and control logic). Tests assert the model tracks the
//    published table, which validates the CactiLite calibration.
#pragma once

#include <span>
#include <string_view>
#include <vector>

#include "sram/cacti_lite.h"

namespace voltcache {

/// One Table III row. Area / static power are normalized to the
/// conventional 6T cache of the same organization; latency in extra cycles.
struct StaticOverhead {
    std::string_view scheme;
    double areaFactor = 1.0;
    double staticPowerFactor = 1.0;
    std::uint32_t latencyCycles = 0;
};

/// Table III verbatim (low-voltage mode).
[[nodiscard]] std::span<const StaticOverhead> paperOverheads() noexcept;

/// Look up one scheme's Table III row by its table name
/// ("8T", "ffw", "bbr", "fba64", "wilkerson", "idc64", "simple-wdis").
/// Throws std::out_of_range for unknown names.
[[nodiscard]] const StaticOverhead& paperOverhead(std::string_view scheme);

/// The same rows computed from the CactiLite structural model for the given
/// baseline organization (the paper's 32KB/4-way/32B L1).
[[nodiscard]] std::vector<StaticOverhead> modelOverheads(
    const CacheOrganization& org = CacheOrganization{});

/// Combined L1 static-power factor for a (D-cache scheme, I-cache scheme)
/// pair, averaged over the two same-sized L1s — the multiplier handed to
/// EnergyModel::energyOf.
[[nodiscard]] double combinedL1StaticFactor(std::string_view dScheme,
                                            std::string_view iScheme);

} // namespace voltcache
