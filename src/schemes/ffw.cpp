#include "schemes/ffw.h"

#include <algorithm>

#include "common/contracts.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace voltcache {

FfwDCache::FfwDCache(const CacheOrganization& org, FaultMap faultMap, L2Cache& l2,
                     FfwConfig config)
    : mapper_(org),
      tags_(org.sets(), org.associativity),
      faultMap_(std::move(faultMap)),
      l2_(&l2),
      config_(config),
      recenters_(obs::MetricsRegistry::global().counter("ffw.recenters")) {
    VC_EXPECTS(faultMap_.lines() == org.lines());
    VC_EXPECTS(faultMap_.wordsPerLine() == org.wordsPerBlock());
    lineState_.assign(org.lines(), LineState{});
    freeCount_.assign(org.lines(), 0);
    usableWayMask_.assign(org.sets(), 0);
    for (std::uint32_t set = 0; set < org.sets(); ++set) {
        for (std::uint32_t way = 0; way < org.associativity; ++way) {
            const std::uint32_t frame = mapper_.physicalLine(set, way);
            const auto free = static_cast<std::uint8_t>(faultMap_.faultFreeCount(frame));
            freeCount_[frame] = free;
            // A frame with zero usable entries can hold nothing: it is
            // excluded from allocation for the whole low-voltage episode.
            if (free > 0) usableWayMask_[set] |= (1u << way);
        }
    }
}

FfwDCache::Window FfwDCache::recentered(std::uint32_t frame, std::uint32_t missedWord) const {
    const std::uint32_t k = freeCount_[frame];
    const std::uint32_t wordsPerBlock = mapper_.wordsPerBlock();
    VC_EXPECTS(k >= 1 && k <= wordsPerBlock);
    // The missing word stands in the middle of the new window (Fig. 5),
    // clamped so the window stays inside the block.
    const std::uint32_t half = (k - 1) / 2;
    std::uint32_t start = missedWord > half ? missedWord - half : 0;
    start = std::min(start, wordsPerBlock - k);
    return Window{start, k};
}

void FfwDCache::setWindow(std::uint32_t frame, Window window) {
    lineState_[frame].windowStart = static_cast<std::uint8_t>(window.start);
    lineState_[frame].windowLength = static_cast<std::uint8_t>(window.length);
}

void FfwDCache::noteRecenter(std::uint32_t oldStart, std::uint32_t newStart) {
    const std::uint32_t dist = oldStart > newStart ? oldStart - newStart : newStart - oldStart;
    ++recenterDist_[std::min<std::size_t>(dist, recenterDist_.size() - 1)];
}

FfwDCache::Window FfwDCache::windowOf(std::uint32_t set, std::uint32_t way) const {
    const LineState& state = lineState_[frameOf(set, way)];
    return Window{state.windowStart, state.windowLength};
}

std::uint32_t FfwDCache::storedPattern(std::uint32_t set, std::uint32_t way) const {
    const auto window = windowOf(set, way);
    if (window.length == 0) return 0;
    return ((1u << window.length) - 1u) << window.start;
}

std::uint32_t FfwDCache::physicalEntryFor(std::uint32_t set, std::uint32_t way,
                                          std::uint32_t logicalWord) const {
    const auto window = windowOf(set, way);
    VC_EXPECTS(window.contains(logicalWord));
    const std::uint32_t frame = frameOf(set, way);
    // The logical word's rank inside the window selects the rank-th
    // fault-free entry of the frame (Fig. 4's remap example).
    std::uint32_t rank = logicalWord - window.start;
    for (std::uint32_t entry = 0; entry < mapper_.wordsPerBlock(); ++entry) {
        if (faultMap_.isFaulty(frame, entry)) continue;
        if (rank == 0) return entry;
        --rank;
    }
    VC_ENSURES(false); // window.length <= freeCount guarantees we return above
    return 0;
}

AccessResult FfwDCache::read(std::uint32_t addr) {
    ++stats_.accesses;
    AccessResult result;
    result.latencyCycles = kL1HitLatencyCycles;
    result.auxProbe = true; // FMAP + StoredPattern are read in parallel
    const std::uint32_t set = mapper_.set(addr);
    const std::uint32_t tag = mapper_.tag(addr);
    const std::uint32_t word = mapper_.wordOffset(addr);

    if (const auto hit = tags_.lookup(set, tag); hit.hit) {
        tags_.touch(set, hit.way);
        const std::uint32_t frame = frameOf(set, hit.way);
        const LineState& state = lineState_[frame];
        if (word >= state.windowStart &&
            word < static_cast<std::uint32_t>(state.windowStart) + state.windowLength) {
            ++stats_.hits;
            result.l1Hit = true;
            return result;
        }
        // Word miss: fetch from L2; the missing word is forwarded to the
        // CPU and the window recenters on it off the critical path.
        ++stats_.wordMisses;
        ++stats_.l2Reads;
        const auto l2 = l2_->read(addr);
        if (config_.recenterOnWordMiss) {
            const Window next = recentered(frame, word);
            if (obs::TraceSink* sink = obs::traceSink()) {
                sink->record("ffw.recenter", "dcache",
                             {{"set", set},
                              {"way", hit.way},
                              {"word", word},
                              {"old_start", state.windowStart},
                              {"old_len", state.windowLength},
                              {"new_start", next.start},
                              {"new_len", next.length}});
            }
            recenters_.add();
            noteRecenter(state.windowStart, next.start);
            setWindow(frame, next);
        }
        result.l2Reads = 1;
        result.dram = l2.dram;
        result.latencyCycles += l2.latencyCycles;
        return result;
    }

    ++stats_.lineMisses;
    ++stats_.l2Reads;
    const auto l2 = l2_->read(addr);
    result.l2Reads = 1;
    result.dram = l2.dram;
    result.latencyCycles += l2.latencyCycles;

    if (usableWayMask_[set] == 0) {
        // Every frame in the set is fully defective: serve from L2 without
        // allocating (the set is effectively disabled).
        return result;
    }
    const auto fill = tags_.fill(set, tag, usableWayMask_[set]);
    const std::uint32_t frame = frameOf(set, fill.way);
    switch (config_.fillPolicy) {
        case FfwConfig::FillPolicy::CenterOnMiss:
            setWindow(frame, recentered(frame, word));
            break;
        case FfwConfig::FillPolicy::FirstK:
            setWindow(frame, Window{0, freeCount_[frame]});
            break;
    }
    return result;
}

AccessResult FfwDCache::write(std::uint32_t addr) {
    ++stats_.accesses;
    AccessResult result;
    result.latencyCycles = kL1HitLatencyCycles;
    result.auxProbe = true;
    const std::uint32_t set = mapper_.set(addr);
    const std::uint32_t tag = mapper_.tag(addr);
    const std::uint32_t word = mapper_.wordOffset(addr);

    if (const auto hit = tags_.lookup(set, tag); hit.hit) {
        tags_.touch(set, hit.way);
        const std::uint32_t frame = frameOf(set, hit.way);
        const LineState& state = lineState_[frame];
        if (word >= state.windowStart &&
            word < static_cast<std::uint32_t>(state.windowStart) + state.windowLength) {
            ++stats_.hits;
            result.l1Hit = true;
        } else if (config_.updateOnWriteMiss) {
            const Window next = recentered(frame, word);
            noteRecenter(state.windowStart, next.start);
            setWindow(frame, next);
        }
    }
    // Write-through, no-write-allocate.
    const auto l2 = l2_->write(addr);
    result.l2Writes = 1;
    result.dram = l2.dram;
    return result;
}

void FfwDCache::invalidateAll() { tags_.invalidateAll(); }

} // namespace voltcache
