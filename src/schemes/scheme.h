// Fault-tolerance scheme interfaces (paper Sections III-IV).
//
// A scheme wraps one L1 cache: it decides, per word access, whether the
// request is served by the L1 (and at what latency) or must go to the L2,
// honouring the scheme's defect-handling mechanism. The timing simulator is
// scheme-agnostic: it calls read/write/fetch and consumes AccessResults.
#pragma once

#include <cstdint>
#include <string_view>

#include "cache/l2_cache.h"

namespace voltcache {

/// The schemes evaluated in the paper (Fig. 10-12 legend).
enum class SchemeKind : std::uint8_t {
    DefectFree,        ///< unrealistic defect-free baseline (paper Section V)
    Conventional760,   ///< conventional 6T pinned at Vccmin=760mV
    Robust8T,          ///< all-8T cache: no defects, +1 cycle, +28% area
    SimpleWordDisable, ///< faulty words always miss to L2 [2]
    WilkersonPlus,     ///< word-disable pairing + simple-wdis supplement [4]
    FbaPlus,           ///< fault buffer array, 1024 entries [2]
    IdcPlus,           ///< inquisitive defect cache, 1024 entries [21]
    FfwBbr,            ///< this paper: FFW data cache + BBR instruction cache
};

[[nodiscard]] std::string_view schemeName(SchemeKind kind) noexcept;

/// Outcome of one L1 access, consumed by the timing simulator and the
/// activity counters.
struct AccessResult {
    std::uint32_t latencyCycles = 0; ///< request to data-available, in core cycles
    std::uint32_t l2Reads = 0;       ///< demand L2 reads triggered (Fig. 11 metric)
    std::uint32_t l2Writes = 0;      ///< write-through L2 traffic
    bool l1Hit = false;              ///< word served by the L1 (incl. aux structures)
    bool dram = false;               ///< an access went all the way to DRAM
    bool auxProbe = false;           ///< scheme side structure was probed (energy)
    bool auxHit = false;
};

/// Per-cache access statistics every scheme keeps.
struct L1Stats {
    std::uint64_t accesses = 0;
    std::uint64_t hits = 0;
    std::uint64_t lineMisses = 0; ///< tag misses
    std::uint64_t wordMisses = 0; ///< tag hit but word unavailable (defect/window)
    std::uint64_t l2Reads = 0;

    [[nodiscard]] double missRatio() const noexcept {
        return accesses > 0
                   ? static_cast<double>(lineMisses + wordMisses) / static_cast<double>(accesses)
                   : 0.0;
    }
};

class DataCacheScheme {
public:
    virtual ~DataCacheScheme() = default;

    [[nodiscard]] virtual AccessResult read(std::uint32_t addr) = 0;
    [[nodiscard]] virtual AccessResult write(std::uint32_t addr) = 0;
    virtual void invalidateAll() = 0;

    [[nodiscard]] virtual std::string_view name() const noexcept = 0;
    /// Extra cycles on every L1 access versus the conventional cache
    /// (Table III "Latency overhead").
    [[nodiscard]] virtual std::uint32_t latencyOverhead() const noexcept = 0;
    [[nodiscard]] virtual const L1Stats& stats() const noexcept = 0;
};

class InstrCacheScheme {
public:
    virtual ~InstrCacheScheme() = default;

    [[nodiscard]] virtual AccessResult fetch(std::uint32_t addr) = 0;
    virtual void invalidateAll() = 0;

    [[nodiscard]] virtual std::string_view name() const noexcept = 0;
    [[nodiscard]] virtual std::uint32_t latencyOverhead() const noexcept = 0;
    [[nodiscard]] virtual const L1Stats& stats() const noexcept = 0;
};

/// Baseline L1 hit latency (Table I: 2 cycles for both L1s).
inline constexpr std::uint32_t kL1HitLatencyCycles = 2;

} // namespace voltcache
