// Wilkerson-style word disable (paper Section III-B, from [4]).
//
// Two consecutive physical ways combine into one logical line: a logical
// word is served from whichever pair member has that word fault-free.
// Capacity halves (4-way -> 2 logical ways) and the combining mux adds one
// cycle (Table III). A word position defective in BOTH pair members is
// unrepairable — plain word disable cannot ship such a die, which is why
// the paper says it "cannot achieve 99.9% chip yield below 480mV". The
// evaluated Wilkerson+ variant applies simple word disable as a
// supplementary technique: unrepairable words always miss to the L2.
#pragma once

#include <cstdint>

#include "cache/address.h"
#include "cache/tag_array.h"
#include "faults/fault_map.h"
#include "schemes/scheme.h"

namespace voltcache {

/// Pairing metadata shared by the D- and I-side variants.
class WilkersonPairing {
public:
    WilkersonPairing(const CacheOrganization& org, const FaultMap& map);

    [[nodiscard]] std::uint32_t logicalWays() const noexcept { return logicalWays_; }

    /// True if `word` of logical way `lway` in `set` is defective in both
    /// pair members (served like simple word disable).
    [[nodiscard]] bool unrepairable(std::uint32_t set, std::uint32_t lway,
                                    std::uint32_t word) const;

    /// Count of unrepairable word positions across the whole cache — the
    /// quantity that kills plain word-disable yield at low voltage.
    [[nodiscard]] std::uint32_t unrepairableCount() const noexcept { return unrepairable_; }

private:
    AddressMapper mapper_;
    const FaultMap* map_;
    std::uint32_t logicalWays_;
    std::uint32_t unrepairable_ = 0;
};

class WilkersonDCache final : public DataCacheScheme {
public:
    WilkersonDCache(const CacheOrganization& org, FaultMap faultMap, L2Cache& l2);

    AccessResult read(std::uint32_t addr) override;
    AccessResult write(std::uint32_t addr) override;
    void invalidateAll() override;

    [[nodiscard]] std::string_view name() const noexcept override { return "wilkerson+"; }
    [[nodiscard]] std::uint32_t latencyOverhead() const noexcept override { return 1; }
    [[nodiscard]] const L1Stats& stats() const noexcept override { return stats_; }
    [[nodiscard]] const WilkersonPairing& pairing() const noexcept { return pairing_; }

private:
    AddressMapper mapper_;
    FaultMap faultMap_;
    WilkersonPairing pairing_;
    TagArray tags_; ///< logical ways only
    L2Cache* l2_;
    L1Stats stats_;
};

class WilkersonICache final : public InstrCacheScheme {
public:
    WilkersonICache(const CacheOrganization& org, FaultMap faultMap, L2Cache& l2);

    AccessResult fetch(std::uint32_t addr) override;
    void invalidateAll() override;

    [[nodiscard]] std::string_view name() const noexcept override { return "wilkerson+"; }
    [[nodiscard]] std::uint32_t latencyOverhead() const noexcept override { return 1; }
    [[nodiscard]] const L1Stats& stats() const noexcept override { return stats_; }

private:
    AddressMapper mapper_;
    FaultMap faultMap_;
    WilkersonPairing pairing_;
    TagArray tags_;
    L2Cache* l2_;
    L1Stats stats_;
};

} // namespace voltcache
