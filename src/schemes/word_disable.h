// Simple word disable (paper Section III-B, from Mahmood & Kim [2]).
//
// Each word carries a defect mark loaded from the BIST fault map. A tag hit
// on a defective word is NOT a hit: the access is handled like a normal
// cache miss (served by the L2 every time — the word can never be cached).
// Fault-free words of a partially-defective line remain fully usable, so
// capacity degrades gracefully. Zero latency overhead (Table III), but L2
// traffic explodes once nearly every line is defective (Fig. 10 after
// 480mV).
#pragma once

#include <cstdint>
#include <string>

#include "cache/address.h"
#include "cache/tag_array.h"
#include "faults/fault_map.h"
#include "schemes/scheme.h"

namespace voltcache {

class SimpleWordDisableDCache final : public DataCacheScheme {
public:
    SimpleWordDisableDCache(const CacheOrganization& org, FaultMap faultMap, L2Cache& l2);

    AccessResult read(std::uint32_t addr) override;
    AccessResult write(std::uint32_t addr) override;
    void invalidateAll() override;

    [[nodiscard]] std::string_view name() const noexcept override { return "simple-wdis"; }
    [[nodiscard]] std::uint32_t latencyOverhead() const noexcept override { return 0; }
    [[nodiscard]] const L1Stats& stats() const noexcept override { return stats_; }

private:
    [[nodiscard]] bool wordFaulty(std::uint32_t set, std::uint32_t way,
                                  std::uint32_t word) const;

    AddressMapper mapper_;
    TagArray tags_;
    FaultMap faultMap_;
    L2Cache* l2_;
    L1Stats stats_;
};

class SimpleWordDisableICache final : public InstrCacheScheme {
public:
    SimpleWordDisableICache(const CacheOrganization& org, FaultMap faultMap, L2Cache& l2);

    AccessResult fetch(std::uint32_t addr) override;
    void invalidateAll() override;

    [[nodiscard]] std::string_view name() const noexcept override { return "simple-wdis"; }
    [[nodiscard]] std::uint32_t latencyOverhead() const noexcept override { return 0; }
    [[nodiscard]] const L1Stats& stats() const noexcept override { return stats_; }

private:
    AddressMapper mapper_;
    TagArray tags_;
    FaultMap faultMap_;
    L2Cache* l2_;
    L1Stats stats_;
};

} // namespace voltcache
