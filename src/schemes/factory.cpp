#include "schemes/factory.h"

#include "schemes/bbr.h"
#include "schemes/conventional.h"
#include "schemes/fault_buffer.h"
#include "schemes/ffw.h"
#include "schemes/static_overheads.h"
#include "schemes/wilkerson.h"
#include "schemes/word_disable.h"

namespace voltcache {

SchemePair makeSchemes(SchemeKind kind, const CacheOrganization& org,
                       const FaultMap& dcacheMap, const FaultMap& icacheMap, L2Cache& l2) {
    SchemePair pair;
    switch (kind) {
        case SchemeKind::DefectFree:
        case SchemeKind::Conventional760:
            pair.dcache = std::make_unique<ConventionalDCache>(org, l2, 0, "conventional");
            pair.icache = std::make_unique<ConventionalICache>(org, l2, 0, "conventional");
            pair.l1StaticFactor = 1.0;
            break;
        case SchemeKind::Robust8T:
            // The paper grants the 8T cache one extra cycle: its 28% larger
            // array blows the wire-delay slack (Section VI-B).
            pair.dcache = std::make_unique<ConventionalDCache>(org, l2, 1, "8T");
            pair.icache = std::make_unique<ConventionalICache>(org, l2, 1, "8T");
            pair.l1StaticFactor = combinedL1StaticFactor("8T", "8T");
            pair.l1DynamicFactor = 1.30; // 30% larger cells => pricier reads
            break;
        case SchemeKind::SimpleWordDisable:
            pair.dcache = std::make_unique<SimpleWordDisableDCache>(org, dcacheMap, l2);
            pair.icache = std::make_unique<SimpleWordDisableICache>(org, icacheMap, l2);
            pair.l1StaticFactor = combinedL1StaticFactor("simple-wdis", "simple-wdis");
            pair.l1DynamicFactor = 1.01; // per-word fault-map bit read
            break;
        case SchemeKind::WilkersonPlus:
            pair.dcache = std::make_unique<WilkersonDCache>(org, dcacheMap, l2);
            pair.icache = std::make_unique<WilkersonICache>(org, icacheMap, l2);
            pair.l1StaticFactor = combinedL1StaticFactor("wilkerson", "wilkerson");
            pair.l1DynamicFactor = 1.05; // pair read + combining muxes
            break;
        case SchemeKind::FbaPlus:
            pair.dcache = std::make_unique<FaultBufferDCache>(org, dcacheMap, l2, fbaConfig());
            pair.icache = std::make_unique<FaultBufferICache>(org, icacheMap, l2, fbaConfig());
            pair.l1StaticFactor = combinedL1StaticFactor("fba64", "fba64");
            pair.l1DynamicFactor = 1.10; // parallel CAM probe (entry energy
                                         // itself ignored, as in the paper)
            break;
        case SchemeKind::IdcPlus:
            pair.dcache = std::make_unique<FaultBufferDCache>(org, dcacheMap, l2, idcConfig());
            pair.icache = std::make_unique<FaultBufferICache>(org, icacheMap, l2, idcConfig());
            pair.l1StaticFactor = combinedL1StaticFactor("idc64", "idc64");
            pair.l1DynamicFactor = 1.10; // parallel IDC probe
            break;
        case SchemeKind::FfwBbr:
            pair.dcache = std::make_unique<FfwDCache>(org, dcacheMap, l2);
            pair.icache = std::make_unique<BbrICache>(org, icacheMap, l2);
            pair.l1StaticFactor = combinedL1StaticFactor("ffw", "bbr");
            // FMAP + StoredPattern are 2 bits/word tag extensions (~6% of the
            // data bits); their per-access read energy is charged through the
            // aux channel, leaving only a small array-path increase here.
            pair.l1DynamicFactor = 1.02;
            pair.needsBbrLinking = true;
            break;
    }
    return pair;
}

} // namespace voltcache
