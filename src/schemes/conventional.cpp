#include "schemes/conventional.h"

namespace voltcache {

ConventionalDCache::ConventionalDCache(const CacheOrganization& org, L2Cache& l2,
                                       std::uint32_t latencyOverhead, std::string name)
    : mapper_(org),
      tags_(org.sets(), org.associativity),
      l2_(&l2),
      latencyOverhead_(latencyOverhead),
      name_(std::move(name)) {}

AccessResult ConventionalDCache::read(std::uint32_t addr) {
    ++stats_.accesses;
    AccessResult result;
    result.latencyCycles = kL1HitLatencyCycles + latencyOverhead_;
    const std::uint32_t set = mapper_.set(addr);
    const std::uint32_t tag = mapper_.tag(addr);
    if (const auto hit = tags_.lookup(set, tag); hit.hit) {
        tags_.touch(set, hit.way);
        ++stats_.hits;
        result.l1Hit = true;
        return result;
    }
    ++stats_.lineMisses;
    ++stats_.l2Reads;
    const auto l2 = l2_->read(addr);
    tags_.fill(set, tag);
    result.l2Reads = 1;
    result.dram = l2.dram;
    result.latencyCycles += l2.latencyCycles;
    return result;
}

AccessResult ConventionalDCache::write(std::uint32_t addr) {
    ++stats_.accesses;
    AccessResult result;
    result.latencyCycles = kL1HitLatencyCycles + latencyOverhead_;
    const std::uint32_t set = mapper_.set(addr);
    const std::uint32_t tag = mapper_.tag(addr);
    if (const auto hit = tags_.lookup(set, tag); hit.hit) {
        tags_.touch(set, hit.way);
        ++stats_.hits;
        result.l1Hit = true;
    }
    // Write-through, no-write-allocate (Table I).
    const auto l2 = l2_->write(addr);
    result.l2Writes = 1;
    result.dram = l2.dram;
    return result;
}

void ConventionalDCache::invalidateAll() { tags_.invalidateAll(); }

ConventionalICache::ConventionalICache(const CacheOrganization& org, L2Cache& l2,
                                       std::uint32_t latencyOverhead, std::string name)
    : mapper_(org),
      tags_(org.sets(), org.associativity),
      l2_(&l2),
      latencyOverhead_(latencyOverhead),
      name_(std::move(name)) {}

AccessResult ConventionalICache::fetch(std::uint32_t addr) {
    ++stats_.accesses;
    AccessResult result;
    result.latencyCycles = kL1HitLatencyCycles + latencyOverhead_;
    const std::uint32_t set = mapper_.set(addr);
    const std::uint32_t tag = mapper_.tag(addr);
    if (const auto hit = tags_.lookup(set, tag); hit.hit) {
        tags_.touch(set, hit.way);
        ++stats_.hits;
        result.l1Hit = true;
        return result;
    }
    ++stats_.lineMisses;
    ++stats_.l2Reads;
    const auto l2 = l2_->read(addr);
    tags_.fill(set, tag);
    result.l2Reads = 1;
    result.dram = l2.dram;
    result.latencyCycles += l2.latencyCycles;
    return result;
}

void ConventionalICache::invalidateAll() { tags_.invalidateAll(); }

} // namespace voltcache
