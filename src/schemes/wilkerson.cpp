#include "schemes/wilkerson.h"

#include "common/contracts.h"

namespace voltcache {

WilkersonPairing::WilkersonPairing(const CacheOrganization& org, const FaultMap& map)
    : mapper_(org), map_(&map), logicalWays_(org.associativity / 2) {
    VC_EXPECTS(org.associativity % 2 == 0);
    for (std::uint32_t set = 0; set < org.sets(); ++set) {
        for (std::uint32_t lway = 0; lway < logicalWays_; ++lway) {
            for (std::uint32_t word = 0; word < org.wordsPerBlock(); ++word) {
                if (unrepairable(set, lway, word)) ++unrepairable_;
            }
        }
    }
}

bool WilkersonPairing::unrepairable(std::uint32_t set, std::uint32_t lway,
                                    std::uint32_t word) const {
    const std::uint32_t frameA = mapper_.physicalLine(set, 2 * lway);
    const std::uint32_t frameB = mapper_.physicalLine(set, 2 * lway + 1);
    return map_->isFaulty(frameA, word) && map_->isFaulty(frameB, word);
}

WilkersonDCache::WilkersonDCache(const CacheOrganization& org, FaultMap faultMap, L2Cache& l2)
    : mapper_(org),
      faultMap_(std::move(faultMap)),
      pairing_(org, faultMap_),
      tags_(org.sets(), org.associativity / 2),
      l2_(&l2) {
    VC_EXPECTS(faultMap_.lines() == org.lines());
}

AccessResult WilkersonDCache::read(std::uint32_t addr) {
    ++stats_.accesses;
    AccessResult result;
    result.latencyCycles = kL1HitLatencyCycles + latencyOverhead();
    const std::uint32_t set = mapper_.set(addr);
    const std::uint32_t tag = mapper_.tag(addr);
    const std::uint32_t word = mapper_.wordOffset(addr);

    if (const auto hit = tags_.lookup(set, tag); hit.hit) {
        tags_.touch(set, hit.way);
        if (!pairing_.unrepairable(set, hit.way, word)) {
            ++stats_.hits;
            result.l1Hit = true;
            return result;
        }
        // Unrepairable word: supplementary simple word disable.
        ++stats_.wordMisses;
        ++stats_.l2Reads;
        const auto l2 = l2_->read(addr);
        result.l2Reads = 1;
        result.dram = l2.dram;
        result.latencyCycles += l2.latencyCycles;
        return result;
    }

    ++stats_.lineMisses;
    ++stats_.l2Reads;
    const auto l2 = l2_->read(addr);
    tags_.fill(set, tag); // fills the pair (both physical frames, one fetch)
    result.l2Reads = 1;
    result.dram = l2.dram;
    result.latencyCycles += l2.latencyCycles;
    return result;
}

AccessResult WilkersonDCache::write(std::uint32_t addr) {
    ++stats_.accesses;
    AccessResult result;
    result.latencyCycles = kL1HitLatencyCycles + latencyOverhead();
    const std::uint32_t set = mapper_.set(addr);
    const std::uint32_t tag = mapper_.tag(addr);
    const std::uint32_t word = mapper_.wordOffset(addr);
    if (const auto hit = tags_.lookup(set, tag); hit.hit) {
        tags_.touch(set, hit.way);
        if (!pairing_.unrepairable(set, hit.way, word)) {
            ++stats_.hits;
            result.l1Hit = true;
        }
    }
    const auto l2 = l2_->write(addr);
    result.l2Writes = 1;
    result.dram = l2.dram;
    return result;
}

void WilkersonDCache::invalidateAll() { tags_.invalidateAll(); }

WilkersonICache::WilkersonICache(const CacheOrganization& org, FaultMap faultMap, L2Cache& l2)
    : mapper_(org),
      faultMap_(std::move(faultMap)),
      pairing_(org, faultMap_),
      tags_(org.sets(), org.associativity / 2),
      l2_(&l2) {
    VC_EXPECTS(faultMap_.lines() == org.lines());
}

AccessResult WilkersonICache::fetch(std::uint32_t addr) {
    ++stats_.accesses;
    AccessResult result;
    result.latencyCycles = kL1HitLatencyCycles + latencyOverhead();
    const std::uint32_t set = mapper_.set(addr);
    const std::uint32_t tag = mapper_.tag(addr);
    const std::uint32_t word = mapper_.wordOffset(addr);

    if (const auto hit = tags_.lookup(set, tag); hit.hit) {
        tags_.touch(set, hit.way);
        if (!pairing_.unrepairable(set, hit.way, word)) {
            ++stats_.hits;
            result.l1Hit = true;
            return result;
        }
        ++stats_.wordMisses;
        ++stats_.l2Reads;
        const auto l2 = l2_->read(addr);
        result.l2Reads = 1;
        result.dram = l2.dram;
        result.latencyCycles += l2.latencyCycles;
        return result;
    }

    ++stats_.lineMisses;
    ++stats_.l2Reads;
    const auto l2 = l2_->read(addr);
    tags_.fill(set, tag);
    result.l2Reads = 1;
    result.dram = l2.dram;
    result.latencyCycles += l2.latencyCycles;
    return result;
}

void WilkersonICache::invalidateAll() { tags_.invalidateAll(); }

} // namespace voltcache
