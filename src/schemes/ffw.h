// Fault-free window data cache (paper Section IV-A, Figs. 4-5).
//
// Each physical frame knows its defective words (FMAP) and which logical
// words it currently holds (StoredPattern). A frame with k fault-free word
// entries stores a *window* of k contiguous logical words of the block,
// scattered into the fault-free entries in order. On an access:
//
//   tag hit, word inside window  -> L1 hit at the baseline 2-cycle latency
//                                   (remap logic is off the critical path,
//                                   Fig. 9) — zero latency overhead;
//   tag hit, word outside window -> "word miss": read from L2, then recenter
//                                   the window on the missed word (the
//                                   missing word stands in the middle,
//                                   Fig. 5) — update is on the miss path;
//   tag miss                     -> normal fill; the new window is chosen by
//                                   FillPolicy (see below).
//
// The cache is write-through with no-write-allocate, which is what makes
// dropping non-window words safe.
#pragma once

#include <array>
#include <cstdint>
#include <vector>

#include "cache/address.h"
#include "cache/tag_array.h"
#include "faults/fault_map.h"
#include "obs/metrics.h"
#include "schemes/scheme.h"

namespace voltcache {

struct FfwConfig {
    /// Window placement on a line fill.
    enum class FillPolicy : std::uint8_t {
        /// Center the window on the word that caused the fill (the fill
        /// brings the whole block past the cache, so this is free).
        CenterOnMiss,
        /// The paper's Fig. 5 illustration: the first k contiguous words.
        /// If the requested word falls outside, the very next read of it
        /// word-misses and recenters.
        FirstK,
    };
    FillPolicy fillPolicy = FillPolicy::CenterOnMiss;
    /// Recenter the window when a word miss occurs (the paper's mechanism).
    /// Disable for the "static window" ablation.
    bool recenterOnWordMiss = true;
    /// Also recenter on write misses to absent words (off: writes are pure
    /// write-through and never move the window — the paper's reads-drive-
    /// locality design).
    bool updateOnWriteMiss = false;
};

class FfwDCache final : public DataCacheScheme {
public:
    FfwDCache(const CacheOrganization& org, FaultMap faultMap, L2Cache& l2,
              FfwConfig config = {});

    AccessResult read(std::uint32_t addr) override;
    AccessResult write(std::uint32_t addr) override;
    void invalidateAll() override;

    [[nodiscard]] std::string_view name() const noexcept override { return "ffw"; }
    [[nodiscard]] std::uint32_t latencyOverhead() const noexcept override { return 0; }
    [[nodiscard]] const L1Stats& stats() const noexcept override { return stats_; }

    /// The current window of a frame: [start, start+length) logical words.
    struct Window {
        std::uint32_t start = 0;
        std::uint32_t length = 0;
        [[nodiscard]] bool contains(std::uint32_t word) const noexcept {
            return word >= start && word < start + length;
        }
    };
    [[nodiscard]] Window windowOf(std::uint32_t set, std::uint32_t way) const;

    /// StoredPattern bitmask (bit i == logical word i present), as held by
    /// the StoredPattern array in Fig. 4.
    [[nodiscard]] std::uint32_t storedPattern(std::uint32_t set, std::uint32_t way) const;

    /// The word-remap computation of Fig. 4: physical word entry holding a
    /// logical word (which must be inside the window). This models the
    /// "word remapping logic" output fed to the data array's column MUX.
    [[nodiscard]] std::uint32_t physicalEntryFor(std::uint32_t set, std::uint32_t way,
                                                 std::uint32_t logicalWord) const;

    [[nodiscard]] const FfwConfig& config() const noexcept { return config_; }

    /// Forensics: histogram of recenter distances (how many words the window
    /// start moved per recenter, 0..7), accumulated over the leg's run.
    [[nodiscard]] const std::array<std::uint64_t, 8>& recenterDistances() const noexcept {
        return recenterDist_;
    }

private:
    struct LineState {
        std::uint8_t windowStart = 0;
        std::uint8_t windowLength = 0;
    };

    [[nodiscard]] std::uint32_t frameOf(std::uint32_t set, std::uint32_t way) const {
        return mapper_.physicalLine(set, way);
    }
    [[nodiscard]] Window recentered(std::uint32_t frame, std::uint32_t missedWord) const;
    void setWindow(std::uint32_t frame, Window window);
    void noteRecenter(std::uint32_t oldStart, std::uint32_t newStart);

    AddressMapper mapper_;
    TagArray tags_;
    FaultMap faultMap_;
    L2Cache* l2_;
    FfwConfig config_;
    std::vector<LineState> lineState_;    ///< per physical frame
    std::vector<std::uint8_t> freeCount_;      ///< fault-free entries per frame
    std::vector<std::uint32_t> usableWayMask_; ///< per set: ways with >=1 entry
    L1Stats stats_;
    obs::Counter recenters_; ///< process-wide "ffw.recenters" counter
    std::array<std::uint64_t, 8> recenterDist_{}; ///< window-start move distances
};

} // namespace voltcache
