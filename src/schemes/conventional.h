// Defect-free cache schemes: the conventional 6T cache (valid at 760mV, and
// as the paper's "unrealistic defect-free baseline" at any voltage) and the
// robust 8T cache (defect-free down to 400mV but +1 cycle and +28% area).
#pragma once

#include <cstdint>
#include <string>

#include "cache/address.h"
#include "cache/tag_array.h"
#include "schemes/scheme.h"

namespace voltcache {

/// Plain 4-way LRU write-through data cache with no defects.
class ConventionalDCache final : public DataCacheScheme {
public:
    ConventionalDCache(const CacheOrganization& org, L2Cache& l2,
                       std::uint32_t latencyOverhead = 0, std::string name = "conventional");

    AccessResult read(std::uint32_t addr) override;
    AccessResult write(std::uint32_t addr) override;
    void invalidateAll() override;

    [[nodiscard]] std::string_view name() const noexcept override { return name_; }
    [[nodiscard]] std::uint32_t latencyOverhead() const noexcept override {
        return latencyOverhead_;
    }
    [[nodiscard]] const L1Stats& stats() const noexcept override { return stats_; }

private:
    AddressMapper mapper_;
    TagArray tags_;
    L2Cache* l2_;
    std::uint32_t latencyOverhead_;
    std::string name_;
    L1Stats stats_;
};

/// Plain 4-way LRU instruction cache with no defects.
class ConventionalICache final : public InstrCacheScheme {
public:
    ConventionalICache(const CacheOrganization& org, L2Cache& l2,
                       std::uint32_t latencyOverhead = 0, std::string name = "conventional");

    AccessResult fetch(std::uint32_t addr) override;
    void invalidateAll() override;

    [[nodiscard]] std::string_view name() const noexcept override { return name_; }
    [[nodiscard]] std::uint32_t latencyOverhead() const noexcept override {
        return latencyOverhead_;
    }
    [[nodiscard]] const L1Stats& stats() const noexcept override { return stats_; }

private:
    AddressMapper mapper_;
    TagArray tags_;
    L2Cache* l2_;
    std::uint32_t latencyOverhead_;
    std::string name_;
    L1Stats stats_;
};

} // namespace voltcache
