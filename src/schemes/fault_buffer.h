// Fault Buffer Array (FBA, [2]) and Inquisitive Defect Cache (IDC, [21])
// (paper Section III-B).
//
// Both schemes start from simple word disable and add a small side
// structure holding recently-used *defective* words:
//   * FBA — fully-associative, word-location-tagged (CAM) buffer,
//   * IDC — set-associative auxiliary cache.
// An access to a defective word first probes the buffer; a buffer miss is
// handled like a normal cache miss (L2) and the word is installed. Probing
// the side structure adds one cycle to every L1 access (Table III). The
// paper's Fig. 10-12 evaluate optimistic FBA+/IDC+ variants with 1024
// entries.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "cache/address.h"
#include "cache/tag_array.h"
#include "faults/fault_map.h"
#include "schemes/scheme.h"

namespace voltcache {

/// Word-granular victim store for defective words. Fully associative when
/// ways == entries (FBA, CAM-tagged); set-associative otherwise (IDC).
/// Unlike TagArray this supports arbitrarily high associativity (the
/// paper's FBA+ is a 1024-entry CAM).
class WordBuffer {
public:
    WordBuffer(std::uint32_t entries, std::uint32_t ways);

    /// Lookup a word address; updates LRU on hit.
    [[nodiscard]] bool probe(std::uint32_t wordAddr);
    /// Install a word address (LRU eviction within its set).
    void insert(std::uint32_t wordAddr);
    /// Drop one word (used when the L1 line owning it is evicted — FBA/IDC
    /// entries are substitute storage for resident lines, not a victim
    /// cache, so they die with the line).
    void invalidate(std::uint32_t wordAddr);
    void clear();

    [[nodiscard]] std::uint32_t entries() const noexcept { return entries_; }
    [[nodiscard]] std::uint64_t hits() const noexcept { return hits_; }
    [[nodiscard]] std::uint64_t probes() const noexcept { return probes_; }

private:
    struct Entry {
        std::uint32_t wordAddr = 0;
        std::uint64_t lastUse = 0;
        bool valid = false;
    };

    [[nodiscard]] Entry* findEntry(std::uint32_t wordAddr);

    std::uint32_t entries_;
    std::uint32_t ways_;
    std::uint32_t sets_;
    std::vector<Entry> store_;
    std::uint64_t useCounter_ = 0;
    std::uint64_t probes_ = 0;
    std::uint64_t hits_ = 0;
};

/// Configuration distinguishing FBA from IDC.
struct FaultBufferConfig {
    std::uint32_t entries = 1024;
    std::uint32_t ways = 1024; ///< == entries: fully associative (FBA)
    std::string name = "fba+";
};

[[nodiscard]] FaultBufferConfig fbaConfig(std::uint32_t entries = 1024);
[[nodiscard]] FaultBufferConfig idcConfig(std::uint32_t entries = 1024,
                                          std::uint32_t ways = 8);

class FaultBufferDCache final : public DataCacheScheme {
public:
    FaultBufferDCache(const CacheOrganization& org, FaultMap faultMap, L2Cache& l2,
                      FaultBufferConfig config);

    AccessResult read(std::uint32_t addr) override;
    AccessResult write(std::uint32_t addr) override;
    void invalidateAll() override;

    [[nodiscard]] std::string_view name() const noexcept override { return config_.name; }
    [[nodiscard]] std::uint32_t latencyOverhead() const noexcept override { return 1; }
    [[nodiscard]] const L1Stats& stats() const noexcept override { return stats_; }
    [[nodiscard]] const WordBuffer& buffer() const noexcept { return buffer_; }

private:
    AddressMapper mapper_;
    TagArray tags_;
    FaultMap faultMap_;
    L2Cache* l2_;
    FaultBufferConfig config_;
    WordBuffer buffer_;
    L1Stats stats_;
    const char* probeEvent_; ///< "fba.probe"/"idc.probe" (trace names must be literals)
};

class FaultBufferICache final : public InstrCacheScheme {
public:
    FaultBufferICache(const CacheOrganization& org, FaultMap faultMap, L2Cache& l2,
                      FaultBufferConfig config);

    AccessResult fetch(std::uint32_t addr) override;
    void invalidateAll() override;

    [[nodiscard]] std::string_view name() const noexcept override { return config_.name; }
    [[nodiscard]] std::uint32_t latencyOverhead() const noexcept override { return 1; }
    [[nodiscard]] const L1Stats& stats() const noexcept override { return stats_; }
    [[nodiscard]] const WordBuffer& buffer() const noexcept { return buffer_; }

private:
    AddressMapper mapper_;
    TagArray tags_;
    FaultMap faultMap_;
    L2Cache* l2_;
    FaultBufferConfig config_;
    WordBuffer buffer_;
    L1Stats stats_;
    const char* probeEvent_; ///< "fba.probe"/"idc.probe" (trace names must be literals)
};

} // namespace voltcache
