#include "schemes/scheme.h"

namespace voltcache {

std::string_view schemeName(SchemeKind kind) noexcept {
    switch (kind) {
        case SchemeKind::DefectFree: return "defect-free";
        case SchemeKind::Conventional760: return "conventional-760mV";
        case SchemeKind::Robust8T: return "8T";
        case SchemeKind::SimpleWordDisable: return "simple-wdis";
        case SchemeKind::WilkersonPlus: return "wilkerson+";
        case SchemeKind::FbaPlus: return "fba+";
        case SchemeKind::IdcPlus: return "idc+";
        case SchemeKind::FfwBbr: return "ffw+bbr";
    }
    return "unknown";
}

} // namespace voltcache
