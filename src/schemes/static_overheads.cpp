#include "schemes/static_overheads.h"

#include <array>
#include <stdexcept>
#include <string>

namespace voltcache {

namespace {

// Table III verbatim.
constexpr std::array<StaticOverhead, 7> kPaperTable = {{
    {"8T", 1.280, 1.002, 1},
    {"ffw", 1.052, 1.064, 0},
    {"bbr", 1.011, 1.001, 0},
    {"fba64", 1.120, 1.061, 1},
    {"wilkerson", 1.034, 1.045, 1},
    {"idc64", 1.137, 1.059, 1},
    {"simple-wdis", 1.033, 1.036, 0},
}};

StaticOverhead fromEstimate(std::string_view name, const AreaLeakEstimate& scheme,
                            const AreaLeakEstimate& base, std::uint32_t latency) {
    return StaticOverhead{name, scheme.totalArea() / base.totalArea(),
                          scheme.totalLeak() / base.totalLeak(), latency};
}

} // namespace

std::span<const StaticOverhead> paperOverheads() noexcept { return kPaperTable; }

const StaticOverhead& paperOverhead(std::string_view scheme) {
    for (const auto& row : kPaperTable) {
        if (row.scheme == scheme) return row;
    }
    throw std::out_of_range("paperOverhead: unknown scheme '" + std::string(scheme) + "'");
}

std::vector<StaticOverhead> modelOverheads(const CacheOrganization& org) {
    const AreaLeakEstimate base = CactiLite::estimate(org);

    CacheOrganization org8T = org;
    org8T.dataCell = SramCell::C8T;
    org8T.tagCell = SramCell::C8T;

    // Every fault-tolerance scheme implements its tag array (and auxiliary
    // structures) in robust 8T cells (paper Section V).
    CacheOrganization orgTag8T = org;
    orgTag8T.tagCell = SramCell::C8T;

    const std::uint64_t words = org.totalWords();
    const std::uint64_t lines = org.lines();

    std::vector<StaticOverhead> rows;
    rows.reserve(kPaperTable.size());

    // 8T cache: full cell substitution, no auxiliary structures.
    rows.push_back(fromEstimate("8T", CactiLite::estimate(org8T), base, 1));

    // FFW: FMAP (1b/word) + StoredPattern (1b/word) as tag extensions, plus
    // the word-remap logic (Fig. 4).
    rows.push_back(fromEstimate(
        "ffw",
        CactiLite::estimate(orgTag8T,
                            {{"fmap", words, SramCell::C8T, AuxPlacement::TagExtension},
                             {"stored-pattern", words, SramCell::C8T,
                              AuxPlacement::TagExtension}},
                            /*logicAreaFrac=*/0.001, /*logicLeakFrac=*/0.001),
        base, 0));

    // BBR: dual-mode way-select muxes only (Fig. 7).
    rows.push_back(fromEstimate(
        "bbr", CactiLite::estimate(orgTag8T, {}, /*logicAreaFrac=*/0.001,
                                   /*logicLeakFrac=*/0.001),
        base, 0));

    // FBA (64 entries): CAM word-location tags (~26b: block address + word
    // offset), 32b data words, plus the per-word fault map.
    rows.push_back(fromEstimate(
        "fba64",
        CactiLite::estimate(orgTag8T,
                            {{"fba-cam-tags", 64 * 26, SramCell::CCAM, AuxPlacement::CamArray},
                             {"fba-data", 64 * 32, SramCell::C8T, AuxPlacement::SmallArray},
                             {"fmap", words, SramCell::C8T, AuxPlacement::TagExtension}},
                            /*logicAreaFrac=*/0.001, /*logicLeakFrac=*/0.001),
        base, 1));

    // Wilkerson word-disable: per-word defect map, one extra tag bit per
    // line (address space halves) and pairing/alignment metadata.
    rows.push_back(fromEstimate(
        "wilkerson",
        CactiLite::estimate(orgTag8T,
                            {{"defect-map", words, SramCell::C8T, AuxPlacement::TagExtension},
                             {"pair-meta", lines * 3, SramCell::C8T,
                              AuxPlacement::TagExtension}},
                            /*logicAreaFrac=*/0.002, /*logicLeakFrac=*/0.002),
        base, 1));

    // IDC (64 entries): multi-ported set-associative auxiliary cache probed
    // in parallel with the L1 (word data + tag + per-line defect marks).
    rows.push_back(fromEstimate(
        "idc64",
        CactiLite::estimate(orgTag8T,
                            {{"idc-entries", 64 * 60, SramCell::C8T, AuxPlacement::MultiPort}},
                            /*logicAreaFrac=*/0.001, /*logicLeakFrac=*/0.001),
        base, 1));

    // Simple word disable: the per-word fault map alone.
    rows.push_back(fromEstimate(
        "simple-wdis",
        CactiLite::estimate(orgTag8T,
                            {{"fmap", words, SramCell::C8T, AuxPlacement::TagExtension}},
                            /*logicAreaFrac=*/0.001, /*logicLeakFrac=*/0.001),
        base, 0));

    return rows;
}

double combinedL1StaticFactor(std::string_view dScheme, std::string_view iScheme) {
    return (paperOverhead(dScheme).staticPowerFactor +
            paperOverhead(iScheme).staticPowerFactor) /
           2.0;
}

} // namespace voltcache
