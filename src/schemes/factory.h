// Assembles the (data-cache, instruction-cache) scheme pair evaluated under
// each Fig. 10-12 legend entry.
#pragma once

#include <memory>
#include <utility>

#include "faults/fault_map.h"
#include "schemes/bbr.h"
#include "schemes/conventional.h"
#include "schemes/fault_buffer.h"
#include "schemes/ffw.h"
#include "schemes/scheme.h"
#include "schemes/wilkerson.h"
#include "schemes/word_disable.h"

namespace voltcache {

struct SchemePair {
    std::unique_ptr<DataCacheScheme> dcache;
    std::unique_ptr<InstrCacheScheme> icache;
    /// Combined Table III static-power multiplier for the two L1s.
    double l1StaticFactor = 1.0;
    /// Per-access L1 dynamic-energy multiplier: larger arrays (8T: +30%
    /// cells) and wider read paths (FMAP/StoredPattern, buffer probes)
    /// cost proportionally more per access.
    double l1DynamicFactor = 1.0;
    /// True when the binary must be BBR-linked against the I-cache fault map.
    bool needsBbrLinking = false;
};

/// Build the scheme pair for one experiment leg. The fault maps must match
/// the organization (lines x wordsPerBlock); defect-free kinds ignore them.
/// FBA+/IDC+ receive the paper's optimistic 1024 entries.
[[nodiscard]] SchemePair makeSchemes(SchemeKind kind, const CacheOrganization& org,
                                     const FaultMap& dcacheMap, const FaultMap& icacheMap,
                                     L2Cache& l2);

/// Whether `kind` runs the BBR-transformed twin linked against the trial's
/// I-cache fault map (same answer as SchemePair::needsBbrLinking, without
/// building the schemes). Sweep planning uses this to pick the recorded
/// trace a leg replays from.
[[nodiscard]] constexpr bool schemeNeedsBbrLinking(SchemeKind kind) noexcept {
    return kind == SchemeKind::FfwBbr;
}

/// Invoke `fn(concreteICache&, concreteDCache&)` with the pair downcast to
/// the final types `makeSchemes(kind, ...)` constructed. This is how the
/// batched replay engine devirtualizes — and, with IPO, inlines — every
/// per-access scheme call inside the timing kernel: one kernel
/// instantiation per concrete pair, selected once per chunk instead of a
/// virtual dispatch per access.
template <class Fn>
decltype(auto) withConcreteSchemes(SchemeKind kind, const SchemePair& pair, Fn&& fn) {
    switch (kind) {
        case SchemeKind::DefectFree:
        case SchemeKind::Conventional760:
        case SchemeKind::Robust8T:
            return std::forward<Fn>(fn)(static_cast<ConventionalICache&>(*pair.icache),
                                        static_cast<ConventionalDCache&>(*pair.dcache));
        case SchemeKind::SimpleWordDisable:
            return std::forward<Fn>(fn)(static_cast<SimpleWordDisableICache&>(*pair.icache),
                                        static_cast<SimpleWordDisableDCache&>(*pair.dcache));
        case SchemeKind::WilkersonPlus:
            return std::forward<Fn>(fn)(static_cast<WilkersonICache&>(*pair.icache),
                                        static_cast<WilkersonDCache&>(*pair.dcache));
        case SchemeKind::FbaPlus:
        case SchemeKind::IdcPlus:
            return std::forward<Fn>(fn)(static_cast<FaultBufferICache&>(*pair.icache),
                                        static_cast<FaultBufferDCache&>(*pair.dcache));
        case SchemeKind::FfwBbr:
            return std::forward<Fn>(fn)(static_cast<BbrICache&>(*pair.icache),
                                        static_cast<FfwDCache&>(*pair.dcache));
    }
    __builtin_unreachable();
}

} // namespace voltcache
