// Assembles the (data-cache, instruction-cache) scheme pair evaluated under
// each Fig. 10-12 legend entry.
#pragma once

#include <memory>

#include "faults/fault_map.h"
#include "schemes/scheme.h"

namespace voltcache {

struct SchemePair {
    std::unique_ptr<DataCacheScheme> dcache;
    std::unique_ptr<InstrCacheScheme> icache;
    /// Combined Table III static-power multiplier for the two L1s.
    double l1StaticFactor = 1.0;
    /// Per-access L1 dynamic-energy multiplier: larger arrays (8T: +30%
    /// cells) and wider read paths (FMAP/StoredPattern, buffer probes)
    /// cost proportionally more per access.
    double l1DynamicFactor = 1.0;
    /// True when the binary must be BBR-linked against the I-cache fault map.
    bool needsBbrLinking = false;
};

/// Build the scheme pair for one experiment leg. The fault maps must match
/// the organization (lines x wordsPerBlock); defect-free kinds ignore them.
/// FBA+/IDC+ receive the paper's optimistic 1024 entries.
[[nodiscard]] SchemePair makeSchemes(SchemeKind kind, const CacheOrganization& org,
                                     const FaultMap& dcacheMap, const FaultMap& icacheMap,
                                     L2Cache& l2);

/// Whether `kind` runs the BBR-transformed twin linked against the trial's
/// I-cache fault map (same answer as SchemePair::needsBbrLinking, without
/// building the schemes). Sweep planning uses this to pick the recorded
/// trace a leg replays from.
[[nodiscard]] constexpr bool schemeNeedsBbrLinking(SchemeKind kind) noexcept {
    return kind == SchemeKind::FfwBbr;
}

} // namespace voltcache
