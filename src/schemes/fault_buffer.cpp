#include "schemes/fault_buffer.h"

#include "common/contracts.h"
#include "obs/trace.h"

namespace voltcache {
namespace {

// The trace sink stores name pointers without copying, so the event name
// must be a literal, not config.name.c_str() (the scheme can be destroyed
// before the trace is exported).
const char* probeEventFor(const FaultBufferConfig& config) {
    return config.ways == config.entries ? "fba.probe" : "idc.probe";
}

void recordProbe(const char* name, std::uint32_t wordAddr, bool hit) {
    if (obs::TraceSink* sink = obs::traceSink()) {
        sink->record(name, "fault-buffer", {{"word_addr", wordAddr}, {"hit", hit ? 1 : 0}});
    }
}

} // namespace

WordBuffer::WordBuffer(std::uint32_t entries, std::uint32_t ways)
    : entries_(entries), ways_(ways), sets_(entries / ways) {
    VC_EXPECTS(entries > 0);
    VC_EXPECTS(ways > 0 && entries % ways == 0);
    store_.assign(entries, Entry{});
}

WordBuffer::Entry* WordBuffer::findEntry(std::uint32_t wordAddr) {
    const std::uint32_t set = wordAddr % sets_;
    const std::size_t base = static_cast<std::size_t>(set) * ways_;
    for (std::uint32_t way = 0; way < ways_; ++way) {
        Entry& entry = store_[base + way];
        if (entry.valid && entry.wordAddr == wordAddr) return &entry;
    }
    return nullptr;
}

bool WordBuffer::probe(std::uint32_t wordAddr) {
    ++probes_;
    if (Entry* entry = findEntry(wordAddr)) {
        entry->lastUse = ++useCounter_;
        ++hits_;
        return true;
    }
    return false;
}

void WordBuffer::insert(std::uint32_t wordAddr) {
    if (Entry* entry = findEntry(wordAddr)) {
        entry->lastUse = ++useCounter_;
        return;
    }
    const std::uint32_t set = wordAddr % sets_;
    const std::size_t base = static_cast<std::size_t>(set) * ways_;
    Entry* victim = &store_[base];
    for (std::uint32_t way = 0; way < ways_; ++way) {
        Entry& entry = store_[base + way];
        if (!entry.valid) {
            victim = &entry;
            break;
        }
        if (entry.lastUse < victim->lastUse) victim = &entry;
    }
    victim->valid = true;
    victim->wordAddr = wordAddr;
    victim->lastUse = ++useCounter_;
}

void WordBuffer::invalidate(std::uint32_t wordAddr) {
    if (Entry* entry = findEntry(wordAddr)) entry->valid = false;
}

void WordBuffer::clear() {
    for (auto& entry : store_) entry.valid = false;
}

FaultBufferConfig fbaConfig(std::uint32_t entries) {
    return FaultBufferConfig{entries, entries, entries >= 1024 ? "fba+" : "fba"};
}

FaultBufferConfig idcConfig(std::uint32_t entries, std::uint32_t ways) {
    return FaultBufferConfig{entries, ways, entries >= 1024 ? "idc+" : "idc"};
}

FaultBufferDCache::FaultBufferDCache(const CacheOrganization& org, FaultMap faultMap,
                                     L2Cache& l2, FaultBufferConfig config)
    : mapper_(org),
      tags_(org.sets(), org.associativity),
      faultMap_(std::move(faultMap)),
      l2_(&l2),
      config_(std::move(config)),
      buffer_(config_.entries, config_.ways),
      probeEvent_(probeEventFor(config_)) {
    VC_EXPECTS(faultMap_.lines() == org.lines());
}

AccessResult FaultBufferDCache::read(std::uint32_t addr) {
    ++stats_.accesses;
    AccessResult result;
    result.latencyCycles = kL1HitLatencyCycles + latencyOverhead();
    const std::uint32_t set = mapper_.set(addr);
    const std::uint32_t tag = mapper_.tag(addr);
    const std::uint32_t word = mapper_.wordOffset(addr);
    const std::uint32_t wordAddr = addr / 4;

    if (const auto hit = tags_.lookup(set, tag); hit.hit) {
        tags_.touch(set, hit.way);
        if (!faultMap_.isFaulty(mapper_.physicalLine(set, hit.way), word)) {
            ++stats_.hits;
            result.l1Hit = true;
            return result;
        }
        // Defective word: redirect to the buffer.
        result.auxProbe = true;
        if (buffer_.probe(wordAddr)) {
            recordProbe(probeEvent_, wordAddr, true);
            ++stats_.hits;
            result.l1Hit = true;
            result.auxHit = true;
            return result;
        }
        recordProbe(probeEvent_, wordAddr, false);
        ++stats_.wordMisses;
        ++stats_.l2Reads;
        const auto l2 = l2_->read(addr);
        buffer_.insert(wordAddr);
        result.l2Reads = 1;
        result.dram = l2.dram;
        result.latencyCycles += l2.latencyCycles;
        return result;
    }

    ++stats_.lineMisses;
    ++stats_.l2Reads;
    const auto l2 = l2_->read(addr);
    const auto fill = tags_.fill(set, tag);
    const std::uint32_t frame = mapper_.physicalLine(set, fill.way);
    if (fill.evictedValid) {
        // Buffer entries are substitute storage for the evicted line's
        // defective words: they leave with it.
        const std::uint32_t evictedBlock = fill.evictedTag * mapper_.sets() + set;
        for (std::uint32_t w = 0; w < mapper_.wordsPerBlock(); ++w) {
            if (faultMap_.isFaulty(frame, w)) {
                buffer_.invalidate(evictedBlock * mapper_.wordsPerBlock() + w);
            }
        }
    }
    // If the fill was triggered by a defective word, capture it now — the
    // block just travelled past the buffer.
    if (faultMap_.isFaulty(frame, word)) {
        result.auxProbe = true;
        buffer_.insert(wordAddr);
    }
    result.l2Reads = 1;
    result.dram = l2.dram;
    result.latencyCycles += l2.latencyCycles;
    return result;
}

AccessResult FaultBufferDCache::write(std::uint32_t addr) {
    ++stats_.accesses;
    AccessResult result;
    result.latencyCycles = kL1HitLatencyCycles + latencyOverhead();
    const std::uint32_t set = mapper_.set(addr);
    const std::uint32_t tag = mapper_.tag(addr);
    const std::uint32_t word = mapper_.wordOffset(addr);
    if (const auto hit = tags_.lookup(set, tag); hit.hit) {
        tags_.touch(set, hit.way);
        if (!faultMap_.isFaulty(mapper_.physicalLine(set, hit.way), word)) {
            ++stats_.hits;
            result.l1Hit = true;
        } else {
            // Keep a buffered copy coherent; no allocation on writes.
            result.auxProbe = true;
            result.auxHit = buffer_.probe(addr / 4);
            recordProbe(probeEvent_, addr / 4, result.auxHit);
        }
    }
    const auto l2 = l2_->write(addr);
    result.l2Writes = 1;
    result.dram = l2.dram;
    return result;
}

void FaultBufferDCache::invalidateAll() {
    tags_.invalidateAll();
    buffer_.clear();
}

FaultBufferICache::FaultBufferICache(const CacheOrganization& org, FaultMap faultMap,
                                     L2Cache& l2, FaultBufferConfig config)
    : mapper_(org),
      tags_(org.sets(), org.associativity),
      faultMap_(std::move(faultMap)),
      l2_(&l2),
      config_(std::move(config)),
      buffer_(config_.entries, config_.ways),
      probeEvent_(probeEventFor(config_)) {
    VC_EXPECTS(faultMap_.lines() == org.lines());
}

AccessResult FaultBufferICache::fetch(std::uint32_t addr) {
    ++stats_.accesses;
    AccessResult result;
    result.latencyCycles = kL1HitLatencyCycles + latencyOverhead();
    const std::uint32_t set = mapper_.set(addr);
    const std::uint32_t tag = mapper_.tag(addr);
    const std::uint32_t word = mapper_.wordOffset(addr);
    const std::uint32_t wordAddr = addr / 4;

    if (const auto hit = tags_.lookup(set, tag); hit.hit) {
        tags_.touch(set, hit.way);
        if (!faultMap_.isFaulty(mapper_.physicalLine(set, hit.way), word)) {
            ++stats_.hits;
            result.l1Hit = true;
            return result;
        }
        result.auxProbe = true;
        if (buffer_.probe(wordAddr)) {
            recordProbe(probeEvent_, wordAddr, true);
            ++stats_.hits;
            result.l1Hit = true;
            result.auxHit = true;
            return result;
        }
        recordProbe(probeEvent_, wordAddr, false);
        ++stats_.wordMisses;
        ++stats_.l2Reads;
        const auto l2 = l2_->read(addr);
        buffer_.insert(wordAddr);
        result.l2Reads = 1;
        result.dram = l2.dram;
        result.latencyCycles += l2.latencyCycles;
        return result;
    }

    ++stats_.lineMisses;
    ++stats_.l2Reads;
    const auto l2 = l2_->read(addr);
    const auto fill = tags_.fill(set, tag);
    const std::uint32_t frame = mapper_.physicalLine(set, fill.way);
    if (fill.evictedValid) {
        const std::uint32_t evictedBlock = fill.evictedTag * mapper_.sets() + set;
        for (std::uint32_t w = 0; w < mapper_.wordsPerBlock(); ++w) {
            if (faultMap_.isFaulty(frame, w)) {
                buffer_.invalidate(evictedBlock * mapper_.wordsPerBlock() + w);
            }
        }
    }
    if (faultMap_.isFaulty(frame, word)) {
        result.auxProbe = true;
        buffer_.insert(wordAddr);
    }
    result.l2Reads = 1;
    result.dram = l2.dram;
    result.latencyCycles += l2.latencyCycles;
    return result;
}

void FaultBufferICache::invalidateAll() {
    tags_.invalidateAll();
    buffer_.clear();
}

} // namespace voltcache
