#include "schemes/word_disable.h"

#include "common/contracts.h"

namespace voltcache {

SimpleWordDisableDCache::SimpleWordDisableDCache(const CacheOrganization& org,
                                                 FaultMap faultMap, L2Cache& l2)
    : mapper_(org),
      tags_(org.sets(), org.associativity),
      faultMap_(std::move(faultMap)),
      l2_(&l2) {
    VC_EXPECTS(faultMap_.lines() == org.lines());
    VC_EXPECTS(faultMap_.wordsPerLine() == org.wordsPerBlock());
}

bool SimpleWordDisableDCache::wordFaulty(std::uint32_t set, std::uint32_t way,
                                         std::uint32_t word) const {
    return faultMap_.isFaulty(mapper_.physicalLine(set, way), word);
}

AccessResult SimpleWordDisableDCache::read(std::uint32_t addr) {
    ++stats_.accesses;
    AccessResult result;
    result.latencyCycles = kL1HitLatencyCycles;
    const std::uint32_t set = mapper_.set(addr);
    const std::uint32_t tag = mapper_.tag(addr);
    const std::uint32_t word = mapper_.wordOffset(addr);

    if (const auto hit = tags_.lookup(set, tag); hit.hit) {
        tags_.touch(set, hit.way);
        if (!wordFaulty(set, hit.way, word)) {
            ++stats_.hits;
            result.l1Hit = true;
            return result;
        }
        // Defective word: handled like a normal cache miss, every time.
        ++stats_.wordMisses;
        ++stats_.l2Reads;
        const auto l2 = l2_->read(addr);
        result.l2Reads = 1;
        result.dram = l2.dram;
        result.latencyCycles += l2.latencyCycles;
        return result;
    }

    ++stats_.lineMisses;
    ++stats_.l2Reads;
    const auto l2 = l2_->read(addr);
    tags_.fill(set, tag);
    result.l2Reads = 1;
    result.dram = l2.dram;
    result.latencyCycles += l2.latencyCycles;
    return result;
}

AccessResult SimpleWordDisableDCache::write(std::uint32_t addr) {
    ++stats_.accesses;
    AccessResult result;
    result.latencyCycles = kL1HitLatencyCycles;
    const std::uint32_t set = mapper_.set(addr);
    const std::uint32_t tag = mapper_.tag(addr);
    const std::uint32_t word = mapper_.wordOffset(addr);
    if (const auto hit = tags_.lookup(set, tag); hit.hit) {
        tags_.touch(set, hit.way);
        if (!wordFaulty(set, hit.way, word)) {
            ++stats_.hits;
            result.l1Hit = true;
        }
    }
    const auto l2 = l2_->write(addr);
    result.l2Writes = 1;
    result.dram = l2.dram;
    return result;
}

void SimpleWordDisableDCache::invalidateAll() { tags_.invalidateAll(); }

SimpleWordDisableICache::SimpleWordDisableICache(const CacheOrganization& org,
                                                 FaultMap faultMap, L2Cache& l2)
    : mapper_(org),
      tags_(org.sets(), org.associativity),
      faultMap_(std::move(faultMap)),
      l2_(&l2) {
    VC_EXPECTS(faultMap_.lines() == org.lines());
    VC_EXPECTS(faultMap_.wordsPerLine() == org.wordsPerBlock());
}

AccessResult SimpleWordDisableICache::fetch(std::uint32_t addr) {
    ++stats_.accesses;
    AccessResult result;
    result.latencyCycles = kL1HitLatencyCycles;
    const std::uint32_t set = mapper_.set(addr);
    const std::uint32_t tag = mapper_.tag(addr);
    const std::uint32_t word = mapper_.wordOffset(addr);

    if (const auto hit = tags_.lookup(set, tag); hit.hit) {
        tags_.touch(set, hit.way);
        if (!faultMap_.isFaulty(mapper_.physicalLine(set, hit.way), word)) {
            ++stats_.hits;
            result.l1Hit = true;
            return result;
        }
        ++stats_.wordMisses;
        ++stats_.l2Reads;
        const auto l2 = l2_->read(addr);
        result.l2Reads = 1;
        result.dram = l2.dram;
        result.latencyCycles += l2.latencyCycles;
        return result;
    }

    ++stats_.lineMisses;
    ++stats_.l2Reads;
    const auto l2 = l2_->read(addr);
    tags_.fill(set, tag);
    result.l2Reads = 1;
    result.dram = l2.dram;
    result.latencyCycles += l2.latencyCycles;
    return result;
}

void SimpleWordDisableICache::invalidateAll() { tags_.invalidateAll(); }

} // namespace voltcache
