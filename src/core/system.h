// Top-level system assembly: one simulated processor leg = (benchmark
// module, fault-tolerance scheme, DVFS operating point, fault-map seed).
// This is the unit of work the Monte Carlo sweep repeats (paper Section V).
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "compiler/passes.h"
#include "core/forensics.h"
#include "cpu/simulator.h"
#include "isa/module.h"
#include "linker/linker.h"
#include "power/dvfs.h"
#include "power/energy_model.h"
#include "schemes/factory.h"

namespace voltcache {

struct SystemConfig {
    CacheOrganization l1Org;          ///< Table I: 32KB/4-way/32B (both L1s)
    SchemeKind scheme = SchemeKind::DefectFree;
    OperatingPoint op = DvfsTable::vccminBaseline();
    std::uint64_t faultMapSeed = 1;   ///< same seed == same chip across schemes
    std::uint64_t maxInstructions = 0;
    double dramLatencyNs = 60.0;      ///< fixed wall-clock DRAM latency
    std::uint32_t maxBlockWords = kDefaultMaxBlockWords;
    /// Multiplier on the per-word fault probability used when drawing chip
    /// fault maps. 1.0 simulates the physical FailureModel; any other value
    /// is a deliberate corruption knob for the analytic cross-check's
    /// negative control (the check always predicts from the unscaled model).
    double faultRateScale = 1.0;
    EnergyParams energy = {};
    PipelineConfig pipeline = {};
    /// Trace observers attached to the simulator for this leg (multiplexed:
    /// all of them see every instruction / data access). Raw pointers — the
    /// caller keeps them alive across simulateSystem. Meant for single-leg
    /// runs (CLI `stats`, analyses); leave empty in parallel sweeps unless
    /// the observers are thread-safe.
    std::vector<TraceObserver*> observers;
};

struct SystemResult {
    bool linkFailed = false; ///< BBR could not place the binary (yield loss)
    RunStats run;
    LinkStats linkStats;
    L1Stats icacheStats;
    L1Stats dcacheStats;
    double epi = 0.0;            ///< joules per instruction
    double runtimeSeconds = 0.0; ///< cycles / core frequency
    EnergyBreakdown energyBreakdown;
    std::int32_t checksum = 0;   ///< r1 at Halt — functional-correctness witness
    LegForensics forensics;      ///< per-leg distributions for the sweep report
};

namespace detail {
struct LegFaultMaps;
}

/// Simulate one leg. `module` is the untransformed program (what baseline
/// schemes run); `bbrModule` is its BBR-transformed twin (required when the
/// scheme needs BBR linking, ignored otherwise). `chipMaps`, when non-null,
/// is this chip's pre-drawn defective map pair (detail::generateChipFaultMaps
/// with the same seed/point) — the sweep shares it across the scheme legs of
/// one (point, trial) instead of re-drawing per leg; defect-free schemes
/// ignore it.
[[nodiscard]] SystemResult simulateSystem(const Module& module, const Module* bbrModule,
                                          const SystemConfig& config,
                                          const detail::LegFaultMaps* chipMaps = nullptr);

/// Convenience: dramLatencyNs converted to core cycles at frequency f.
[[nodiscard]] std::uint32_t dramLatencyCycles(double dramLatencyNs, Frequency f) noexcept;

namespace detail {

// Shared between simulateSystem and replaySystem (core/replay.h), so the
// two evaluation paths cannot drift: the fault-map draw order, the final
// stat reconciliation, the energy accounting, and the metrics published
// per leg are one implementation each.

struct LegFaultMaps {
    FaultMap dcache;
    FaultMap icache;
};

/// Whether `kind` models a defect-free array (clean fault maps regardless
/// of the operating point).
[[nodiscard]] constexpr bool schemeIsDefectFree(SchemeKind kind) noexcept {
    return kind == SchemeKind::DefectFree || kind == SchemeKind::Conventional760 ||
           kind == SchemeKind::Robust8T;
}

/// Draw the chip's two defective fault maps from the seed at the configured
/// DVFS point (D-cache first, then I-cache) — the same pair for every
/// defect-tolerant scheme leg on that chip, so the sweep can generate it
/// once per (point, trial) and share it across schemes.
[[nodiscard]] LegFaultMaps generateChipFaultMaps(const SystemConfig& config);

/// Batched form: draw one chip per seed at `config`'s operating point, in
/// one pass per bit plane (all D-cache maps, then all I-cache maps, each
/// chip's RNG stream continuing across the planes). Element i is
/// byte-identical to generateChipFaultMaps(config with faultMapSeed =
/// seeds[i]) — the batch only amortizes the model evaluation and the map
/// arena, never the per-chip draw sequence.
[[nodiscard]] std::vector<LegFaultMaps> generateChipFaultMapsBatch(
    const SystemConfig& config, std::span<const std::uint64_t> seeds);

/// The maps one leg actually runs against: the chip maps for
/// defect-tolerant schemes, clean maps for defect-free kinds.
[[nodiscard]] LegFaultMaps generateLegFaultMaps(const SystemConfig& config);

/// Absorb the leg's stat structs into the global metrics registry.
void publishLegMetrics(const SystemConfig& config, const SystemResult& result);

/// Fill the scheme/energy/runtime tail of a SystemResult (run + checksum +
/// linkStats already set), harvest its forensic distributions from the
/// fault maps and scheme state, and publish its metrics.
void finalizeLegResult(const SystemConfig& config, const SchemePair& pair,
                       const LegFaultMaps& maps, SystemResult& result);

} // namespace detail

} // namespace voltcache
