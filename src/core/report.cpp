#include "core/report.h"

#include "schemes/scheme.h"

namespace voltcache {

namespace {

/// Emit a log2-bucketed forensic histogram as sparse {low, count} pairs
/// (most buckets are empty; the sparse form keeps the export readable).
template <std::size_t N>
void writeLog2Histogram(JsonWriter& json, const std::array<std::uint64_t, N>& buckets) {
    json.beginArray();
    for (std::size_t b = 0; b < N; ++b) {
        if (buckets[b] == 0) continue;
        json.beginObject();
        json.member("low", forensicsLog2BucketLow(b));
        json.member("count", buckets[b]);
        json.endObject();
    }
    json.endArray();
}

/// Emit a dense small-domain histogram (index == value).
template <std::size_t N>
void writeDenseHistogram(JsonWriter& json, const std::array<std::uint64_t, N>& counts) {
    json.beginArray();
    for (const std::uint64_t count : counts) json.value(count);
    json.endArray();
}

} // namespace

void writeJson(JsonWriter& json, const RunningStats& stats, double ciLevel) {
    json.beginObject();
    json.member("n", stats.count());
    json.member("mean", stats.mean());
    json.member("stddev", stats.stddev());
    json.member("min", stats.min());
    json.member("max", stats.max());
    json.member("ciHalfWidth", confidenceInterval(stats, ciLevel).halfWidth);
    json.endObject();
}

void writeJson(JsonWriter& json, const L1Stats& stats) {
    json.beginObject();
    json.member("accesses", stats.accesses);
    json.member("hits", stats.hits);
    json.member("lineMisses", stats.lineMisses);
    json.member("wordMisses", stats.wordMisses);
    json.member("l2Reads", stats.l2Reads);
    json.member("missRatio", stats.missRatio());
    json.endObject();
}

void writeJson(JsonWriter& json, const RunStats& stats) {
    json.beginObject();
    json.member("instructions", stats.instructions);
    json.member("cycles", stats.cycles);
    json.member("halted", stats.halted);
    json.member("ipc", stats.ipc());
    json.member("loads", stats.loads);
    json.member("stores", stats.stores);
    json.member("condBranches", stats.condBranches);
    json.member("takenBranches", stats.takenBranches);
    json.member("mispredicts", stats.mispredicts);
    json.member("busyCycles", stats.busyCycles());
    json.member("ifetchStallCycles", stats.ifetchStallCycles);
    json.member("dmemStallCycles", stats.dmemStallCycles);
    json.member("branchStallCycles", stats.branchStallCycles);
    json.member("execStallCycles", stats.execStallCycles);
    json.member("l2Accesses", stats.activity.l2Accesses);
    json.member("l2AccessesPerKilo", stats.l2AccessesPerKilo());
    json.endObject();
}

void writeJson(JsonWriter& json, const LinkStats& stats) {
    json.beginObject();
    json.member("blocksPlaced", stats.blocksPlaced);
    json.member("gapWords", stats.gapWords);
    json.member("imageWords", stats.imageWords);
    json.member("codeWords", stats.codeWords);
    json.member("largestBlockWords", stats.largestBlockWords);
    json.member("scanRestarts", stats.scanRestarts);
    json.member("wrapArounds", stats.wrapArounds);
    json.endObject();
}

void writeJson(JsonWriter& json, const SweepCell& cell, double ciLevel) {
    json.beginObject();
    json.member("runs", cell.runs);
    json.member("linkFailures", cell.linkFailures);
    json.key("normRuntime");
    writeJson(json, cell.normRuntime, ciLevel);
    json.key("l2PerKilo");
    writeJson(json, cell.l2PerKilo, ciLevel);
    json.key("normEpi");
    writeJson(json, cell.normEpi, ciLevel);
    json.key("busyFrac");
    writeJson(json, cell.busyFrac, ciLevel);
    json.key("ifetchFrac");
    writeJson(json, cell.ifetchFrac, ciLevel);
    json.key("dmemFrac");
    writeJson(json, cell.dmemFrac, ciLevel);
    json.key("branchFrac");
    writeJson(json, cell.branchFrac, ciLevel);
    json.endObject();
}

std::string sweepResultToJson(const SweepResult& result, const SweepExportMeta& meta) {
    JsonWriter json;
    json.beginObject();
    json.member("tool", "voltcache");
    json.member("kind", "sweep");
    json.member("version", meta.version);
    json.member("seed", meta.seed);
    json.member("trials", meta.trials);
    json.member("scale", meta.scale);
    json.key("benchmarks");
    json.beginArray();
    for (const std::string& name : meta.benchmarks) json.value(name);
    json.endArray();
    json.member("ciLevel", meta.ciLevel);

    json.key("cells");
    json.beginArray();
    for (const auto& [key, cell] : result.cells) {
        json.beginObject();
        json.member("scheme", schemeName(key.first));
        json.member("mv", static_cast<std::int64_t>(key.second));
        json.key("stats");
        writeJson(json, cell, meta.ciLevel);
        json.endObject();
    }
    json.endArray();

    json.key("perBenchmark");
    json.beginArray();
    for (const auto& [key, cell] : result.perBenchmark) {
        json.beginObject();
        json.member("benchmark", std::get<0>(key));
        json.member("scheme", schemeName(std::get<1>(key)));
        json.member("mv", static_cast<std::int64_t>(std::get<2>(key)));
        json.key("stats");
        writeJson(json, cell, meta.ciLevel);
        json.endObject();
    }
    json.endArray();

    json.key("forensics");
    json.beginArray();
    for (const auto& [key, cell] : result.forensics) {
        json.beginObject();
        json.member("scheme", schemeName(key.first));
        json.member("mv", static_cast<std::int64_t>(key.second));
        writeJson(json, cell);
        json.endObject();
    }
    json.endArray();

    if (meta.extensions) meta.extensions(json);

    json.endObject();
    return json.str();
}

void writeJson(JsonWriter& json, const CellForensics& cell) {
    json.member("legs", cell.legs);
    if (cell.ffwLegs > 0) {
        json.key("ffw");
        json.beginObject();
        json.member("legs", cell.ffwLegs);
        json.member("recenters", cell.ffwRecenters);
        json.key("windowWords");
        writeDenseHistogram(json, cell.ffwWindowSize);
        json.key("recenterDistance");
        writeDenseHistogram(json, cell.ffwRecenterDistance);
        json.endObject();
    }
    if (cell.bbrLegs > 0) {
        json.key("bbr");
        json.beginObject();
        json.member("legs", cell.bbrLegs);
        json.member("blocksPlaced", cell.bbrBlocksPlaced);
        json.key("chunkWords");
        writeLog2Histogram(json, cell.bbrChunkWords);
        json.key("displacementWords");
        writeLog2Histogram(json, cell.bbrDisplacement);
        json.endObject();
    }
    json.key("yieldLoss");
    json.beginObject();
    for (std::size_t cause = 1; cause < cell.yieldLoss.size(); ++cause) {
        if (cell.yieldLoss[cause] == 0) continue;
        json.member(linkFailCauseName(static_cast<LinkFailCause>(cause)),
                    cell.yieldLoss[cause]);
    }
    json.endObject();
}

std::string profileToJson(const std::vector<obs::SpanStat>& spans,
                          const std::vector<obs::MetricSnapshot>& metrics,
                          const ProfileExportMeta& meta) {
    JsonWriter json;
    json.beginObject();
    json.member("tool", "voltcache");
    json.member("kind", "profile");
    json.member("version", meta.version);
    json.member("wallSeconds", meta.wallSeconds);
    json.member("threads", static_cast<std::uint64_t>(meta.threads));

    double selfSeconds = 0.0;
    for (const obs::SpanStat& span : spans) {
        selfSeconds += static_cast<double>(span.selfNs) * 1e-9;
    }
    json.member("selfSeconds", selfSeconds);
    json.member("coverage",
                meta.wallSeconds > 0.0 ? selfSeconds / meta.wallSeconds : 0.0);

    json.key("spans");
    json.beginArray();
    for (const obs::SpanStat& span : spans) {
        json.beginObject();
        json.member("name", span.name);
        json.member("count", span.count);
        json.member("totalNs", span.totalNs);
        json.member("selfNs", span.selfNs);
        json.member("selfFrac", meta.wallSeconds > 0.0
                                    ? static_cast<double>(span.selfNs) * 1e-9 /
                                          meta.wallSeconds
                                    : 0.0);
        json.endObject();
    }
    json.endArray();

    json.key("metrics");
    obs::writeMetrics(json, metrics);

    json.endObject();
    return json.str();
}

void writeJson(JsonWriter& json, const SystemResult& result) {
    json.beginObject();
    json.member("linkFailed", result.linkFailed);
    json.key("run");
    writeJson(json, result.run);
    json.key("icache");
    writeJson(json, result.icacheStats);
    json.key("dcache");
    writeJson(json, result.dcacheStats);
    json.key("link");
    writeJson(json, result.linkStats);
    json.member("epi", result.epi);
    json.member("runtimeSeconds", result.runtimeSeconds);
    json.member("checksum", result.checksum);
    json.key("energy");
    json.beginObject();
    json.member("coreDynamic", result.energyBreakdown.coreDynamic);
    json.member("l1Dynamic", result.energyBreakdown.l1Dynamic);
    json.member("l2Dynamic", result.energyBreakdown.l2Dynamic);
    json.member("dramDynamic", result.energyBreakdown.dramDynamic);
    json.member("auxDynamic", result.energyBreakdown.auxDynamic);
    json.member("coreL1Static", result.energyBreakdown.coreL1Static);
    json.member("l2Static", result.energyBreakdown.l2Static);
    json.member("total", result.energyBreakdown.total());
    json.endObject();
    json.endObject();
}

std::string systemResultToJson(const SystemResult& result, const RunExportMeta& meta) {
    JsonWriter json;
    json.beginObject();
    json.member("tool", "voltcache");
    json.member("kind", "run");
    json.member("version", meta.version);
    json.member("benchmark", meta.benchmark);
    json.member("scheme", meta.scheme);
    json.member("mv", static_cast<std::int64_t>(meta.voltageMv));
    json.member("seed", meta.seed);
    json.key("result");
    writeJson(json, result);
    json.endObject();
    return json.str();
}

} // namespace voltcache
