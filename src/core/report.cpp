#include "core/report.h"

#include "schemes/scheme.h"

namespace voltcache {

void writeJson(JsonWriter& json, const RunningStats& stats, double ciLevel) {
    json.beginObject();
    json.member("n", stats.count());
    json.member("mean", stats.mean());
    json.member("stddev", stats.stddev());
    json.member("min", stats.min());
    json.member("max", stats.max());
    json.member("ciHalfWidth", confidenceInterval(stats, ciLevel).halfWidth);
    json.endObject();
}

void writeJson(JsonWriter& json, const L1Stats& stats) {
    json.beginObject();
    json.member("accesses", stats.accesses);
    json.member("hits", stats.hits);
    json.member("lineMisses", stats.lineMisses);
    json.member("wordMisses", stats.wordMisses);
    json.member("l2Reads", stats.l2Reads);
    json.member("missRatio", stats.missRatio());
    json.endObject();
}

void writeJson(JsonWriter& json, const RunStats& stats) {
    json.beginObject();
    json.member("instructions", stats.instructions);
    json.member("cycles", stats.cycles);
    json.member("halted", stats.halted);
    json.member("ipc", stats.ipc());
    json.member("loads", stats.loads);
    json.member("stores", stats.stores);
    json.member("condBranches", stats.condBranches);
    json.member("takenBranches", stats.takenBranches);
    json.member("mispredicts", stats.mispredicts);
    json.member("busyCycles", stats.busyCycles());
    json.member("ifetchStallCycles", stats.ifetchStallCycles);
    json.member("dmemStallCycles", stats.dmemStallCycles);
    json.member("branchStallCycles", stats.branchStallCycles);
    json.member("execStallCycles", stats.execStallCycles);
    json.member("l2Accesses", stats.activity.l2Accesses);
    json.member("l2AccessesPerKilo", stats.l2AccessesPerKilo());
    json.endObject();
}

void writeJson(JsonWriter& json, const LinkStats& stats) {
    json.beginObject();
    json.member("blocksPlaced", stats.blocksPlaced);
    json.member("gapWords", stats.gapWords);
    json.member("imageWords", stats.imageWords);
    json.member("codeWords", stats.codeWords);
    json.member("largestBlockWords", stats.largestBlockWords);
    json.member("scanRestarts", stats.scanRestarts);
    json.member("wrapArounds", stats.wrapArounds);
    json.endObject();
}

void writeJson(JsonWriter& json, const SweepCell& cell, double ciLevel) {
    json.beginObject();
    json.member("runs", cell.runs);
    json.member("linkFailures", cell.linkFailures);
    json.key("normRuntime");
    writeJson(json, cell.normRuntime, ciLevel);
    json.key("l2PerKilo");
    writeJson(json, cell.l2PerKilo, ciLevel);
    json.key("normEpi");
    writeJson(json, cell.normEpi, ciLevel);
    json.key("busyFrac");
    writeJson(json, cell.busyFrac, ciLevel);
    json.key("ifetchFrac");
    writeJson(json, cell.ifetchFrac, ciLevel);
    json.key("dmemFrac");
    writeJson(json, cell.dmemFrac, ciLevel);
    json.key("branchFrac");
    writeJson(json, cell.branchFrac, ciLevel);
    json.endObject();
}

std::string sweepResultToJson(const SweepResult& result, const SweepExportMeta& meta) {
    JsonWriter json;
    json.beginObject();
    json.member("tool", "voltcache");
    json.member("kind", "sweep");
    json.member("version", meta.version);
    json.member("seed", meta.seed);
    json.member("trials", meta.trials);
    json.member("scale", meta.scale);
    json.key("benchmarks");
    json.beginArray();
    for (const std::string& name : meta.benchmarks) json.value(name);
    json.endArray();
    json.member("ciLevel", meta.ciLevel);

    json.key("cells");
    json.beginArray();
    for (const auto& [key, cell] : result.cells) {
        json.beginObject();
        json.member("scheme", schemeName(key.first));
        json.member("mv", static_cast<std::int64_t>(key.second));
        json.key("stats");
        writeJson(json, cell, meta.ciLevel);
        json.endObject();
    }
    json.endArray();

    json.key("perBenchmark");
    json.beginArray();
    for (const auto& [key, cell] : result.perBenchmark) {
        json.beginObject();
        json.member("benchmark", std::get<0>(key));
        json.member("scheme", schemeName(std::get<1>(key)));
        json.member("mv", static_cast<std::int64_t>(std::get<2>(key)));
        json.key("stats");
        writeJson(json, cell, meta.ciLevel);
        json.endObject();
    }
    json.endArray();

    json.endObject();
    return json.str();
}

void writeJson(JsonWriter& json, const SystemResult& result) {
    json.beginObject();
    json.member("linkFailed", result.linkFailed);
    json.key("run");
    writeJson(json, result.run);
    json.key("icache");
    writeJson(json, result.icacheStats);
    json.key("dcache");
    writeJson(json, result.dcacheStats);
    json.key("link");
    writeJson(json, result.linkStats);
    json.member("epi", result.epi);
    json.member("runtimeSeconds", result.runtimeSeconds);
    json.member("checksum", result.checksum);
    json.key("energy");
    json.beginObject();
    json.member("coreDynamic", result.energyBreakdown.coreDynamic);
    json.member("l1Dynamic", result.energyBreakdown.l1Dynamic);
    json.member("l2Dynamic", result.energyBreakdown.l2Dynamic);
    json.member("dramDynamic", result.energyBreakdown.dramDynamic);
    json.member("auxDynamic", result.energyBreakdown.auxDynamic);
    json.member("coreL1Static", result.energyBreakdown.coreL1Static);
    json.member("l2Static", result.energyBreakdown.l2Static);
    json.member("total", result.energyBreakdown.total());
    json.endObject();
    json.endObject();
}

std::string systemResultToJson(const SystemResult& result, const RunExportMeta& meta) {
    JsonWriter json;
    json.beginObject();
    json.member("tool", "voltcache");
    json.member("kind", "run");
    json.member("version", meta.version);
    json.member("benchmark", meta.benchmark);
    json.member("scheme", meta.scheme);
    json.member("mv", static_cast<std::int64_t>(meta.voltageMv));
    json.member("seed", meta.seed);
    json.key("result");
    writeJson(json, result);
    json.endObject();
    return json.str();
}

} // namespace voltcache
