// Monte Carlo evaluation sweep (paper Section V): for every (benchmark,
// scheme, DVFS operating point), simulate several chips (fault-map seeds)
// and aggregate the Fig. 10 / Fig. 11 / Fig. 12 metrics:
//   * runtime normalized to the defect-free baseline at the same voltage,
//   * L2 accesses per 1000 instructions,
//   * EPI normalized to the conventional cache pinned at Vccmin = 760mV.
// The same seed produces the same fault maps for every scheme, so schemes
// are compared on identical chips (paired samples).
//
// Execution model: the grid is flattened into (benchmark, point, scheme,
// trial) legs. Per-benchmark artifacts (built module, BBR twin, the 760mV
// reference run, per-point defect-free runs) are prepared once in shared
// immutable contexts; then N workers pull legs off an atomic queue and
// write each leg's metrics into a pre-sized slot. The final reduction walks
// the slots in canonical leg order, so the aggregated result — and its JSON
// export — is bit-identical for every thread count.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <string_view>
#include <vector>

#include "common/hash.h"
#include "common/stats.h"
#include "core/system.h"
#include "obs/trace_context.h"
#include "workload/workload.h"

namespace voltcache {

/// One progress tick of runSweep. Boundary ticks fire when a benchmark's
/// legs all finished (the original granularity); non-boundary ticks fire on
/// leg completion, throttled to ~5 Hz, so even a single-benchmark sweep
/// reports while it runs. Ticks fire in completion order
/// (scheduling-dependent); the sweep result itself is deterministic
/// regardless.
struct SweepProgress {
    std::size_t completed = 0;     ///< benchmarks finished so far
    std::size_t total = 0;         ///< benchmarks in this sweep
    std::string benchmark;         ///< boundary ticks: the one that just finished
    bool boundary = true;          ///< false = time-throttled leg tick
    std::size_t legsCompleted = 0; ///< legs finished so far, sweep-wide
    std::size_t legsTotal = 0;     ///< legs in this sweep
    std::size_t legsReplayed = 0;  ///< legs served by the trace-replay fast path
    std::size_t legsExecuted = 0;  ///< legs that ran execution-driven
    std::size_t legsCached = 0;    ///< legs served from the result store (no sim)
    unsigned workers = 0;          ///< worker threads executing legs
};

/// One leg lifecycle transition, delivered to SweepConfig::onLegEvent.
/// Enqueued events fire from the coordinating thread after the grid is
/// flattened (before any leg runs); Started/Finished fire concurrently from
/// worker threads, so the callback must be thread-safe and cheap — the
/// telemetry journal pushes into per-worker SPSC rings (obs/export/journal).
struct SweepLegEvent {
    enum class Phase : std::uint8_t { Enqueued, Started, Finished };

    Phase phase = Phase::Enqueued;
    std::size_t leg = 0;           ///< canonical leg index
    unsigned worker = 0;           ///< dense worker id; 0 for Enqueued events
    std::string_view benchmark;    ///< valid only for the callback's duration
    SchemeKind scheme = SchemeKind::DefectFree;
    int voltageMv = 0;
    std::uint32_t trial = 0;
    bool replayed = false;         ///< served by the trace-replay fast path
    bool cached = false;           ///< served from the result store (no simulation)
    std::uint64_t durationNs = 0;  ///< Finished only
    bool linkFailed = false;       ///< Finished only
    LinkFailCause failCause = LinkFailCause::None; ///< Finished only
    /// Owning job's trace context (SweepConfig::trace); zero when the sweep
    /// is untraced. spanId is the leg's deterministic child span —
    /// obs::childSpanId(config.trace, leg index) — so a replayed job
    /// reproduces the identical span tree.
    std::uint64_t traceHi = 0;
    std::uint64_t traceLo = 0;
    std::uint64_t spanId = 0;
};

/// The per-leg result slot: exactly what the canonical reduction consumes,
/// so a leg served from a result store is indistinguishable — byte for byte,
/// through every RunningStats accumulation — from one that simulated.
struct LegResult {
    bool linkFailed = false;
    double normRuntime = 0.0;
    double l2PerKilo = 0.0;
    double normEpi = 0.0;
    double busyFrac = 0.0;
    double ifetchFrac = 0.0;
    double dmemFrac = 0.0;
    double branchFrac = 0.0;
    LegForensics forensics;
};

/// Injectable content-addressed result source consulted before any leg
/// simulates (src/serve/store.h implements it as an LRU + on-disk segment).
/// lookup() fills `out` and returns true on a hit; store() is called with
/// every freshly simulated leg. Both run concurrently from sweep workers
/// and must be thread-safe.
class LegResultSource {
public:
    virtual ~LegResultSource() = default;
    virtual bool lookup(const Digest256& key, LegResult& out) = 0;
    virtual void store(const Digest256& key, const LegResult& value) = 0;
};

/// Content hash of a module image: functions, blocks, instructions,
/// relocations, literal pools, data segments, and the entry symbol. Two
/// modules with equal digests produce identical simulations under equal
/// configs — the module component of the leg content key.
[[nodiscard]] Digest256 moduleDigest(const Module& module);

/// Content key of one Monte Carlo leg: module digest, scheme, operating
/// point (voltage / frequency / pFailBit), chip seed, and every SystemConfig
/// field that can change the simulated outcome (L1 geometry, DRAM latency,
/// BBR block cap, fault-rate scale, energy parameters, pipeline and
/// predictor configuration, instruction cap). Fields are hashed explicitly,
/// field by field — never as raw struct bytes — so the key is stable across
/// compilers and ABIs.
[[nodiscard]] Digest256 legDigest(const Digest256& moduleDigest, SchemeKind scheme,
                                  const OperatingPoint& point, std::uint64_t chipSeed,
                                  const SystemConfig& systemTemplate);

struct SweepConfig {
    std::vector<std::string> benchmarks;    ///< empty = all ten
    std::vector<SchemeKind> schemes;        ///< empty = the Fig. 10 set
    std::vector<OperatingPoint> points;     ///< empty = Table II 560..400mV
    WorkloadScale scale = WorkloadScale::Small;
    std::uint32_t trials = 5;               ///< fault maps per operating point
    std::uint64_t baseSeed = 0xC0FFEE;
    std::uint64_t maxInstructions = 0;
    /// Worker threads; 0 = hardware concurrency. Clamped to the number of
    /// schedulable work units (batches plus single legs — not benchmarks),
    /// so many-core hosts stay busy to the end.
    unsigned threads = 0;
    SystemConfig systemTemplate = {};       ///< org / energy / pipeline knobs
    /// Record-once / replay-many fast path: each benchmark context records
    /// one architectural trace per layout (plain + BBR twin) and every trial
    /// leg replays it through the trial's fault maps and scheme state.
    /// Results are bit-identical to execution-driven legs (core/replay.h);
    /// `--no-replay` / false falls back to full execution. Automatically
    /// disabled when systemTemplate.observers is non-empty (observers must
    /// see real execution) or when a trace overflows traceByteCap.
    bool useReplay = true;
    /// Per-trace payload cap in bytes; an overflowing benchmark logs once
    /// and runs execution-driven instead of holding an unbounded trace.
    std::uint64_t traceByteCap = 256ull << 20;
    /// Batched multi-map replay: the replayable legs of one (benchmark,
    /// point, layout) group stream one decoded tape through many trials at
    /// once (core/replay.h replayBatch), instead of re-decoding the trace
    /// per leg. Results are byte-identical either way; `--no-batch` / false
    /// keeps the per-leg replaySystem path (the escape hatch, and the
    /// baseline for before/after measurements). Execution-driven legs are
    /// never batched.
    bool useBatch = true;
    /// Cap on lanes (trials) per batch; 0 picks the engine default (32).
    /// Smaller batches trade decode amortization for scheduling grains and
    /// a smaller resident state footprint (~200KB per lane: two tag
    /// arrays, scheme state, L2 counters, pipeline scoreboard).
    std::uint32_t batchLanes = 0;
    /// Content-addressed result source (`voltcache serve`'s store). When
    /// set, every leg's digest is probed before phase 1 commits to any
    /// heavy work: hits skip record/replay/execution entirely (benchmarks
    /// whose legs all hit never even record their traces), misses simulate
    /// as usual and populate the source. Cached legs feed the reduction the
    /// exact slots a cold run would have produced, so the sweep JSON stays
    /// byte-identical. Ignored when observers are attached (observers must
    /// watch real execution). The source outlives the call; nullptr = off.
    LegResultSource* resultSource = nullptr;
    /// Invoked after each benchmark's last leg completes (boundary ticks)
    /// and on leg completion at most every ~200ms (leg ticks), serialized
    /// under the progress lock (safe to print / write from). Empty = no
    /// reporting. Progress observation never changes the sweep result or
    /// its JSON export.
    std::function<void(const SweepProgress&)> onProgress;
    /// Leg lifecycle hook (telemetry journal). Enqueued fires from the
    /// coordinator; Started/Finished fire concurrently from workers — the
    /// callback must be thread-safe and must not block (drop, don't stall).
    /// Empty = zero overhead on the leg hot path.
    std::function<void(const SweepLegEvent&)> onLegEvent;
    /// Owning job's trace context (obs/trace_context.h). When valid, every
    /// SweepLegEvent carries it plus the leg's deterministic child span id,
    /// and finished legs are recorded into the JobTraceStore when that job
    /// is collecting. Purely observational: tracing never disables replay,
    /// batching, or the result store, and never touches the reduction — the
    /// sweep JSON stays byte-identical with tracing on or off.
    obs::TraceContext trace;
    /// Fault-injection knob for the crash-handling negative control
    /// (ci.sh): when nonzero, the leg with canonical index failAtLeg-1
    /// deliberately fails a VC_CHECK before simulating, exercising the
    /// contract-hook → flight-recorder dump path end to end. 0 = off.
    std::uint32_t failAtLeg = 0;
};

/// Aggregated results of one (scheme, voltage) cell.
struct SweepCell {
    RunningStats normRuntime;  ///< runtime / defect-free runtime at same V
    RunningStats l2PerKilo;    ///< Fig. 11 metric
    RunningStats normEpi;      ///< EPI / conventional-760mV EPI
    std::uint32_t linkFailures = 0;
    std::uint32_t runs = 0;
    // Mean runtime-component fractions (busy / I-stall / D-stall / branch).
    RunningStats busyFrac;
    RunningStats ifetchFrac;
    RunningStats dmemFrac;
    RunningStats branchFrac;
};

struct SweepResult {
    /// cell key: (schemeKind, voltage mV rounded)
    std::map<std::pair<SchemeKind, int>, SweepCell> cells;
    /// Per-benchmark per-cell normalized EPI means (for geomean reporting).
    std::map<std::tuple<std::string, SchemeKind, int>, SweepCell> perBenchmark;
    /// Forensic distributions per cell, for legs that carried any (FFW
    /// window/recenter histograms, BBR chunk/displacement histograms, or a
    /// yield-loss cause). Deterministic integer counts, reduced in canonical
    /// leg order like everything else.
    std::map<std::pair<SchemeKind, int>, CellForensics> forensics;

    [[nodiscard]] const SweepCell& cell(SchemeKind kind, Voltage v) const;
};

/// Run the full grid. Deterministic for a fixed config: parallelism only
/// changes scheduling, never seeds or reduction order, so the result (and
/// its JSON export) is bit-identical across thread counts.
[[nodiscard]] SweepResult runSweep(const SweepConfig& config);

/// The scheme list of Figs. 10-12 (excluding the two baselines).
[[nodiscard]] std::vector<SchemeKind> paperSchemes();

} // namespace voltcache
