// Monte Carlo evaluation sweep (paper Section V): for every (benchmark,
// scheme, DVFS operating point), simulate several chips (fault-map seeds)
// and aggregate the Fig. 10 / Fig. 11 / Fig. 12 metrics:
//   * runtime normalized to the defect-free baseline at the same voltage,
//   * L2 accesses per 1000 instructions,
//   * EPI normalized to the conventional cache pinned at Vccmin = 760mV.
// The same seed produces the same fault maps for every scheme, so schemes
// are compared on identical chips (paired samples).
//
// Execution model: the grid is flattened into (benchmark, point, scheme,
// trial) legs. Per-benchmark artifacts (built module, BBR twin, the 760mV
// reference run, per-point defect-free runs) are prepared once in shared
// immutable contexts; then N workers pull legs off an atomic queue and
// write each leg's metrics into a pre-sized slot. The final reduction walks
// the slots in canonical leg order, so the aggregated result — and its JSON
// export — is bit-identical for every thread count.
#pragma once

#include <cstddef>
#include <functional>
#include <map>
#include <string>
#include <vector>

#include "common/stats.h"
#include "core/system.h"
#include "workload/workload.h"

namespace voltcache {

/// One progress tick of runSweep: a benchmark's legs all finished.
/// Ticks fire in completion order (scheduling-dependent); the sweep result
/// itself is deterministic regardless.
struct SweepProgress {
    std::size_t completed = 0;     ///< benchmarks finished so far
    std::size_t total = 0;         ///< benchmarks in this sweep
    std::string benchmark;         ///< the one that just finished
    std::size_t legsCompleted = 0; ///< legs finished so far, sweep-wide
    std::size_t legsTotal = 0;     ///< legs in this sweep
    std::size_t legsReplayed = 0;  ///< legs served by the trace-replay fast path
    std::size_t legsExecuted = 0;  ///< legs that ran execution-driven
    unsigned workers = 0;          ///< worker threads executing legs
};

struct SweepConfig {
    std::vector<std::string> benchmarks;    ///< empty = all ten
    std::vector<SchemeKind> schemes;        ///< empty = the Fig. 10 set
    std::vector<OperatingPoint> points;     ///< empty = Table II 560..400mV
    WorkloadScale scale = WorkloadScale::Small;
    std::uint32_t trials = 5;               ///< fault maps per operating point
    std::uint64_t baseSeed = 0xC0FFEE;
    std::uint64_t maxInstructions = 0;
    /// Worker threads; 0 = hardware concurrency. Clamped to the number of
    /// legs (not benchmarks), so many-core hosts stay busy to the end.
    unsigned threads = 0;
    SystemConfig systemTemplate = {};       ///< org / energy / pipeline knobs
    /// Record-once / replay-many fast path: each benchmark context records
    /// one architectural trace per layout (plain + BBR twin) and every trial
    /// leg replays it through the trial's fault maps and scheme state.
    /// Results are bit-identical to execution-driven legs (core/replay.h);
    /// `--no-replay` / false falls back to full execution. Automatically
    /// disabled when systemTemplate.observers is non-empty (observers must
    /// see real execution) or when a trace overflows traceByteCap.
    bool useReplay = true;
    /// Per-trace payload cap in bytes; an overflowing benchmark logs once
    /// and runs execution-driven instead of holding an unbounded trace.
    std::uint64_t traceByteCap = 256ull << 20;
    /// Invoked after each benchmark's last leg completes, serialized under
    /// the progress lock (safe to print / write from). Empty = no reporting.
    std::function<void(const SweepProgress&)> onProgress;
};

/// Aggregated results of one (scheme, voltage) cell.
struct SweepCell {
    RunningStats normRuntime;  ///< runtime / defect-free runtime at same V
    RunningStats l2PerKilo;    ///< Fig. 11 metric
    RunningStats normEpi;      ///< EPI / conventional-760mV EPI
    std::uint32_t linkFailures = 0;
    std::uint32_t runs = 0;
    // Mean runtime-component fractions (busy / I-stall / D-stall / branch).
    RunningStats busyFrac;
    RunningStats ifetchFrac;
    RunningStats dmemFrac;
    RunningStats branchFrac;
};

struct SweepResult {
    /// cell key: (schemeKind, voltage mV rounded)
    std::map<std::pair<SchemeKind, int>, SweepCell> cells;
    /// Per-benchmark per-cell normalized EPI means (for geomean reporting).
    std::map<std::tuple<std::string, SchemeKind, int>, SweepCell> perBenchmark;
    /// Forensic distributions per cell, for legs that carried any (FFW
    /// window/recenter histograms, BBR chunk/displacement histograms, or a
    /// yield-loss cause). Deterministic integer counts, reduced in canonical
    /// leg order like everything else.
    std::map<std::pair<SchemeKind, int>, CellForensics> forensics;

    [[nodiscard]] const SweepCell& cell(SchemeKind kind, Voltage v) const;
};

/// Run the full grid. Deterministic for a fixed config: parallelism only
/// changes scheduling, never seeds or reduction order, so the result (and
/// its JSON export) is bit-identical across thread counts.
[[nodiscard]] SweepResult runSweep(const SweepConfig& config);

/// The scheme list of Figs. 10-12 (excluding the two baselines).
[[nodiscard]] std::vector<SchemeKind> paperSchemes();

} // namespace voltcache
