// Per-leg forensic distributions for the sweep's post-mortem report.
//
// Each Monte Carlo leg harvests a handful of small integer histograms that
// explain *why* a scheme behaved the way it did at a voltage point: how
// large the FFW fault-free windows were and how far recentering had to move
// them, how long the BBR fault-free chunks were and how far first-fit
// placement displaced each block, and — for legs that failed to link — which
// cause ate the yield. Everything here is deterministic integer counting
// derived from the leg's fault maps and link stats, so accumulating it into
// the sweep JSON cannot perturb byte-for-byte reproducibility across thread
// counts.
#pragma once

#include <array>
#include <bit>
#include <cstddef>
#include <cstdint>

#include "linker/linker.h"

namespace voltcache {

/// Log2 bucketing shared by the chunk-length and displacement histograms:
/// bucket 0 = value 0, bucket k = values with bit width k, last bucket
/// absorbs everything >= 2^15.
inline constexpr std::size_t kForensicsLog2Buckets = 17;

[[nodiscard]] inline std::size_t forensicsLog2Bucket(std::uint64_t value) noexcept {
    if (value == 0) return 0;
    const auto width = static_cast<std::size_t>(std::bit_width(value));
    return width < kForensicsLog2Buckets ? width : kForensicsLog2Buckets - 1;
}

/// Lower bound of a log2 bucket, for labelling exported histograms.
[[nodiscard]] inline std::uint64_t forensicsLog2BucketLow(std::size_t bucket) noexcept {
    return bucket == 0 ? 0 : std::uint64_t{1} << (bucket - 1);
}

/// What one leg contributes to the forensic report. Filled by
/// detail::finalizeLegResult for both fresh-execute and replay legs (the
/// shared path is what keeps the two modes byte-identical).
struct LegForensics {
    // FFW D-cache: distribution of fault-free window sizes across lines
    // (0..8 words per 8-word line) and of recenter distances (how many
    // words the window start moved, 0..7).
    std::array<std::uint64_t, 9> ffwWindowSize{};
    std::array<std::uint64_t, 8> ffwRecenterDistance{};
    std::uint64_t ffwRecenters = 0;

    // BBR I-cache: log2 distributions of fault-free chunk lengths (from the
    // fault map) and of first-fit placement displacement per block (from the
    // linker), plus the block count for normalization.
    std::array<std::uint64_t, kForensicsLog2Buckets> bbrChunkWords{};
    std::array<std::uint64_t, kForensicsLog2Buckets> bbrDisplacement{};
    std::uint64_t bbrBlocksPlaced = 0;

    bool hasFfw = false; ///< leg ran an FFW D-cache (ffw* fields meaningful)
    bool hasBbr = false; ///< leg used BBR placement (bbr* fields meaningful)
    LinkFailCause failCause = LinkFailCause::None; ///< set when the leg yield-lost
};

/// Aggregate over all trials of one (scheme, voltage point) cell.
struct CellForensics {
    std::uint64_t legs = 0;    ///< legs accumulated (including failed links)
    std::uint64_t ffwLegs = 0; ///< legs with hasFfw
    std::uint64_t bbrLegs = 0; ///< legs with hasBbr

    std::array<std::uint64_t, 9> ffwWindowSize{};
    std::array<std::uint64_t, 8> ffwRecenterDistance{};
    std::uint64_t ffwRecenters = 0;

    std::array<std::uint64_t, kForensicsLog2Buckets> bbrChunkWords{};
    std::array<std::uint64_t, kForensicsLog2Buckets> bbrDisplacement{};
    std::uint64_t bbrBlocksPlaced = 0;

    /// Yield-loss cause breakdown, indexed by LinkFailCause (index 0 ==
    /// None counts successful legs and stays out of the export).
    std::array<std::uint64_t, 7> yieldLoss{};
};

inline void accumulate(CellForensics& cell, const LegForensics& leg) {
    ++cell.legs;
    if (leg.hasFfw) {
        ++cell.ffwLegs;
        for (std::size_t i = 0; i < leg.ffwWindowSize.size(); ++i) {
            cell.ffwWindowSize[i] += leg.ffwWindowSize[i];
        }
        for (std::size_t i = 0; i < leg.ffwRecenterDistance.size(); ++i) {
            cell.ffwRecenterDistance[i] += leg.ffwRecenterDistance[i];
        }
        cell.ffwRecenters += leg.ffwRecenters;
    }
    if (leg.hasBbr) {
        ++cell.bbrLegs;
        for (std::size_t i = 0; i < kForensicsLog2Buckets; ++i) {
            cell.bbrChunkWords[i] += leg.bbrChunkWords[i];
            cell.bbrDisplacement[i] += leg.bbrDisplacement[i];
        }
        cell.bbrBlocksPlaced += leg.bbrBlocksPlaced;
    }
    const auto cause = static_cast<std::size_t>(leg.failCause);
    if (cause < cell.yieldLoss.size()) ++cell.yieldLoss[cause];
}

} // namespace voltcache
