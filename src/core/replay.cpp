#include "core/replay.h"

#include <optional>
#include <utility>

#include "analysis/verify.h"
#include "common/contracts.h"
#include "cpu/branch_predictor.h"
#include "cpu/timing_kernel.h"
#include "obs/metrics.h"
#include "obs/span.h"

namespace voltcache {

namespace {

constexpr std::uint32_t kUnmappedWord = 0xFFFFFFFFU;

/// Recording-layout -> trial-layout address mapping shared by both replay
/// drivers. A null table is the identity (non-BBR legs run the recorded
/// layout itself).
struct AddressTranslator {
    const std::uint32_t* table = nullptr;
    std::uint32_t tableWords = 0;
    std::uint32_t base = 0;

    [[nodiscard]] std::uint32_t translate(std::uint32_t recAddr) const {
        if (table == nullptr) return recAddr;
        const std::uint32_t word = (recAddr - base) / 4;
        VC_EXPECTS(word < tableWords);
        const std::uint32_t trialAddr = table[word];
        VC_CHECK(trialAddr != kUnmappedWord);
        return trialAddr;
    }
    /// Data addresses are translated only when they land inside the
    /// recording image (literal reads through computed pointers); heap,
    /// stack, and globals live outside the code image in both layouts.
    [[nodiscard]] std::uint32_t translateData(std::uint32_t recAddr) const {
        if (table == nullptr) return recAddr;
        const std::uint32_t word = (recAddr - base) / 4;
        if (word >= tableWords) return recAddr;
        const std::uint32_t trialAddr = table[word];
        VC_CHECK(trialAddr != kUnmappedWord);
        return trialAddr;
    }
};

/// Trace-driven Driver for timing::runPipeline: walks the recording image's
/// decoded instructions, pops recorded control-flow/data facts, and carries
/// no architectural state at all. With a translation table (BBR trials) the
/// presented pc/addresses are the trial layout's; with a live predictor the
/// recorded verdicts are ignored and the predictor runs on trial addresses.
class ReplayDriver {
public:
    ReplayDriver(const Image& recording, const ArchTrace& trace,
                 const AddressTranslator& xlate, BranchPredictor* predictor)
        : code_(recording.decodedInstructions()),
          cursor_(trace),
          xlate_(xlate),
          base_(recording.baseAddr()),
          predictor_(predictor) {
        recPc_ = recording.entryAddr();
        trialPc_ = translate(recPc_);
        ip_ = code_ + (recPc_ - base_) / 4;
        end_ = trace.instructions();
    }

    [[nodiscard]] bool atEnd() const { return issued_ == end_; }
    // Recorded streams only ever visit instruction words, so the driver
    // walks the dense decoded array directly — no per-access fetch checks.
    [[nodiscard]] const Instruction& inst() { return *(inst_ = ip_); }
    [[nodiscard]] std::uint32_t pc() const { return trialPc_; }

    [[nodiscard]] std::uint32_t loadAddr() { return translateData(cursor_.nextDataAddr()); }
    [[nodiscard]] std::uint32_t literalAddr() {
        return translate(recPc_ + static_cast<std::uint32_t>(inst_->imm) * 4);
    }
    [[nodiscard]] std::uint32_t storeAddr() { return translateData(cursor_.nextDataAddr()); }

    [[nodiscard]] bool condTaken() {
        cf_ = cursor_.nextCf();
        return cf_.taken;
    }
    [[nodiscard]] std::uint32_t directTarget() {
        recTarget_ = recPc_ + static_cast<std::uint32_t>(inst_->imm) * 4;
        return translate(recTarget_);
    }
    [[nodiscard]] std::uint32_t jalrTarget() {
        cf_ = cursor_.nextCf();
        recTarget_ = cursor_.nextJalrTarget();
        return translate(recTarget_);
    }

    [[nodiscard]] bool resolveJump(std::uint32_t pc, std::uint32_t target) {
        const CfRecord rec = cursor_.nextCf(); // keep streams in sync either way
        if (predictor_ == nullptr) return rec.correct;
        const auto prediction = predictor_->predictJump(pc);
        return predictor_->resolve(prediction, pc, true, target,
                                   /*chargeMispredict=*/false);
    }
    [[nodiscard]] bool resolveReturn(std::uint32_t pc, std::uint32_t target) {
        if (predictor_ == nullptr) return cf_.correct;
        const auto prediction = predictor_->predictReturn(pc);
        return predictor_->resolve(prediction, pc, true, target,
                                   /*chargeMispredict=*/true);
    }
    [[nodiscard]] bool resolveBranch(std::uint32_t pc, bool taken, std::uint32_t target) {
        if (predictor_ == nullptr) return cf_.correct;
        const auto prediction = predictor_->predictBranch(pc);
        return predictor_->resolve(prediction, pc, taken, target,
                                   /*chargeMispredict=*/true);
    }
    void pushReturnAddress(std::uint32_t addr) {
        if (predictor_ != nullptr) predictor_->pushReturnAddress(addr);
    }

    // Architectural side effects: replay has no values to carry.
    void writeLui() {}
    void writeAlu() {}
    void writeLink() {}
    void writeLoad(std::uint32_t /*addr*/) {}
    void doStore(std::uint32_t /*addr*/) {}
    void notifyControlFlow(bool /*taken*/, std::uint32_t /*nextPc*/, bool /*correct*/) {}
    void notifyIssue() { ++issued_; }

    void stepFallthrough() {
        // Sequential flow never leaves a placed section (BBR-shaped blocks
        // end in control flow), so both layouts advance by one word.
        recPc_ += 4;
        trialPc_ += 4;
        ++ip_;
    }
    void stepBranch(bool taken, std::uint32_t target) {
        recPc_ = taken ? recTarget_ : recPc_ + 4;
        trialPc_ = taken ? target : trialPc_ + 4;
        ip_ = code_ + (recPc_ - base_) / 4;
    }
    void stepJump(std::uint32_t target) {
        recPc_ = recTarget_;
        trialPc_ = target;
        ip_ = code_ + (recPc_ - base_) / 4;
    }
    void stepJalr(std::uint32_t target) {
        recPc_ = recTarget_;
        trialPc_ = target;
        ip_ = code_ + (recPc_ - base_) / 4;
    }

    [[nodiscard]] bool fullyConsumed() const noexcept { return cursor_.fullyConsumed(); }

private:
    [[nodiscard]] std::uint32_t translate(std::uint32_t recAddr) const {
        return xlate_.translate(recAddr);
    }
    [[nodiscard]] std::uint32_t translateData(std::uint32_t recAddr) const {
        return xlate_.translateData(recAddr);
    }

    const Instruction* code_;
    const Instruction* ip_ = nullptr;
    ArchTrace::Cursor cursor_;
    AddressTranslator xlate_;
    std::uint32_t base_;
    BranchPredictor* predictor_;
    const Instruction* inst_ = nullptr;
    std::uint32_t recPc_ = 0;
    std::uint32_t trialPc_ = 0;
    std::uint32_t recTarget_ = 0;
    CfRecord cf_;
    std::uint64_t issued_ = 0;
    std::uint64_t end_ = 0;
};

} // namespace

std::unique_ptr<const ReplaySource> recordReplaySource(const Module& module,
                                                       const SystemConfig& recordConfig,
                                                       std::uint64_t byteCap,
                                                       SystemResult& outResult) {
    const obs::Span span("record");
    VC_EXPECTS(!schemeNeedsBbrLinking(recordConfig.scheme));
    TraceRecorder recorder(byteCap);
    SystemConfig config = recordConfig;
    config.observers.push_back(&recorder);
    outResult = simulateSystem(module, nullptr, config);
    VC_CHECK(!outResult.linkFailed);
    if (recorder.overflowed()) {
        obs::MetricsRegistry::global().add("trace.overflows", {});
        return nullptr;
    }

    // Re-link for the cache: link() is deterministic, so this image has the
    // exact layout the recording run executed.
    LinkOutput linked = link(module);
    linked.image.warmDecodeCache();
    ArchTrace trace =
        recorder.finish(outResult.run.halted, outResult.checksum, recordConfig.maxInstructions,
                        linked.image.entryAddr(), linked.image.sizeWords());
    VC_CHECK(trace.instructions() == outResult.run.instructions);
    return std::make_unique<const ReplaySource>(
        ReplaySource{std::move(trace), std::move(linked)});
}

std::vector<std::uint32_t> buildAddressTranslation(const Image& recording,
                                                   const Image& trial) {
    std::vector<std::uint32_t> table(recording.sizeWords(), kUnmappedWord);
    const auto mapSection = [&](std::uint32_t recByte, std::uint32_t trialByte,
                                std::uint32_t words) {
        const std::uint32_t recWord = (recByte - recording.baseAddr()) / 4;
        VC_EXPECTS(recWord + words <= table.size());
        for (std::uint32_t w = 0; w < words; ++w) table[recWord + w] = trialByte + w * 4;
    };

    const auto& recBlocks = recording.placements();
    const auto& trialBlocks = trial.placements();
    VC_EXPECTS(recBlocks.size() == trialBlocks.size());
    for (std::size_t i = 0; i < recBlocks.size(); ++i) {
        const PlacedBlock& rec = recBlocks[i];
        const PlacedBlock& tri = trialBlocks[i];
        VC_EXPECTS(rec.functionIndex == tri.functionIndex &&
                   rec.blockIndex == tri.blockIndex && rec.codeWords == tri.codeWords &&
                   rec.literalWords == tri.literalWords);
        mapSection(rec.byteAddr, tri.byteAddr, rec.sizeWords());
    }
    const auto& recPools = recording.poolPlacements();
    const auto& trialPools = trial.poolPlacements();
    VC_EXPECTS(recPools.size() == trialPools.size());
    for (std::size_t i = 0; i < recPools.size(); ++i) {
        const PlacedPool& rec = recPools[i];
        const PlacedPool& tri = trialPools[i];
        VC_EXPECTS(rec.functionIndex == tri.functionIndex &&
                   rec.sizeWords == tri.sizeWords);
        mapSection(rec.byteAddr, tri.byteAddr, rec.sizeWords);
    }
    return table;
}

SystemResult replaySystem(const Module* bbrModule, const SystemConfig& config,
                          const TraceCache& cache, const detail::LegFaultMaps* chipMaps) {
    const obs::Span span("replay");
    const bool needsBbr = schemeNeedsBbrLinking(config.scheme);
    const ReplaySource* source = needsBbr ? cache.bbr.get() : cache.plain.get();
    VC_EXPECTS(source != nullptr);
    VC_EXPECTS(source->trace.finalized() && !source->trace.overflowed());
    VC_EXPECTS(source->trace.maxInstructions() == config.maxInstructions);
    VC_EXPECTS(source->trace.entryAddr() == source->link.image.entryAddr());
    VC_EXPECTS(source->trace.imageWords() == source->link.image.sizeWords());
    VC_EXPECTS(config.observers.empty());

    SystemResult result;
    std::optional<detail::LegFaultMaps> local;
    if (chipMaps == nullptr || detail::schemeIsDefectFree(config.scheme)) {
        local.emplace(detail::generateLegFaultMaps(config));
    }
    const detail::LegFaultMaps& maps = local.has_value() ? *local : *chipMaps;

    L2Cache::Config l2Config;
    l2Config.dramLatencyCycles = dramLatencyCycles(config.dramLatencyNs, config.op.frequency);
    L2Cache l2(l2Config);

    SchemePair pair = makeSchemes(config.scheme, config.l1Org, maps.dcache, maps.icache, l2);
    VC_CHECK(pair.needsBbrLinking == needsBbr);

    std::vector<std::uint32_t> table;
    std::optional<BranchPredictor> predictor;
    std::optional<LinkOutput> trialLink;
    if (needsBbr) {
        VC_EXPECTS(bbrModule != nullptr);
        LinkOptions options;
        options.bbrPlacement = true;
        options.icacheFaultMap = &maps.icache;
        try {
            trialLink = analysis::linkVerified(*bbrModule, options);
        } catch (const LinkError& e) {
            // Same yield-loss accounting as the execution-driven path.
            result.linkFailed = true;
            result.forensics.failCause = e.cause();
            detail::publishLegMetrics(config, result);
            return result;
        }
        result.linkStats = trialLink->stats;
        table = buildAddressTranslation(source->link.image, trialLink->image);
        predictor.emplace(config.pipeline.predictor);
    } else {
        result.linkStats = source->link.stats;
    }

    PipelineConfig pipeline = config.pipeline;
    pipeline.maxInstructions = config.maxInstructions;
    AddressTranslator xlate;
    xlate.table = table.empty() ? nullptr : table.data();
    xlate.tableWords = static_cast<std::uint32_t>(table.size());
    xlate.base = source->link.image.baseAddr();
    ReplayDriver driver(source->link.image, source->trace, xlate,
                        predictor.has_value() ? &*predictor : nullptr);

    result.run = timing::runPipeline(driver, *pair.icache, *pair.dcache, pipeline);

    // The replayed run must retrace the recording exactly.
    VC_CHECK(result.run.instructions == source->trace.instructions());
    VC_CHECK(result.run.halted == source->trace.halted());
    VC_CHECK(driver.fullyConsumed());
    result.checksum = source->trace.checksum();

    detail::finalizeLegResult(config, pair, maps, result);
    return result;
}

} // namespace voltcache
