#include "core/replay.h"

#include <algorithm>
#include <optional>
#include <type_traits>
#include <utility>

#include "analysis/verify.h"
#include "common/contracts.h"
#include "cpu/branch_predictor.h"
#include "cpu/timing_kernel.h"
#include "obs/metrics.h"
#include "obs/span.h"

namespace voltcache {

namespace {

constexpr std::uint32_t kUnmappedWord = 0xFFFFFFFFU;

/// Recording-layout -> trial-layout address mapping shared by both replay
/// drivers. A null table is the identity (non-BBR legs run the recorded
/// layout itself).
struct AddressTranslator {
    const std::uint32_t* table = nullptr;
    std::uint32_t tableWords = 0;
    std::uint32_t base = 0;

    [[nodiscard]] std::uint32_t translate(std::uint32_t recAddr) const {
        if (table == nullptr) return recAddr;
        const std::uint32_t word = (recAddr - base) / 4;
        VC_EXPECTS(word < tableWords);
        const std::uint32_t trialAddr = table[word];
        VC_CHECK(trialAddr != kUnmappedWord);
        return trialAddr;
    }
    /// Data addresses are translated only when they land inside the
    /// recording image (literal reads through computed pointers); heap,
    /// stack, and globals live outside the code image in both layouts.
    [[nodiscard]] std::uint32_t translateData(std::uint32_t recAddr) const {
        if (table == nullptr) return recAddr;
        const std::uint32_t word = (recAddr - base) / 4;
        if (word >= tableWords) return recAddr;
        const std::uint32_t trialAddr = table[word];
        VC_CHECK(trialAddr != kUnmappedWord);
        return trialAddr;
    }
};

/// Trace-driven Driver for timing::runPipeline: walks the recording image's
/// decoded instructions, pops recorded control-flow/data facts, and carries
/// no architectural state at all. With a translation table (BBR trials) the
/// presented pc/addresses are the trial layout's; with a live predictor the
/// recorded verdicts are ignored and the predictor runs on trial addresses.
class ReplayDriver {
public:
    ReplayDriver(const Image& recording, const ArchTrace& trace,
                 const AddressTranslator& xlate, BranchPredictor* predictor)
        : code_(recording.decodedInstructions()),
          cursor_(trace),
          xlate_(xlate),
          base_(recording.baseAddr()),
          predictor_(predictor) {
        recPc_ = recording.entryAddr();
        trialPc_ = translate(recPc_);
        ip_ = code_ + (recPc_ - base_) / 4;
        end_ = trace.instructions();
    }

    [[nodiscard]] bool atEnd() const { return issued_ == end_; }
    // Recorded streams only ever visit instruction words, so the driver
    // walks the dense decoded array directly — no per-access fetch checks.
    [[nodiscard]] const Instruction& inst() { return *(inst_ = ip_); }
    [[nodiscard]] std::uint32_t pc() const { return trialPc_; }

    [[nodiscard]] std::uint32_t loadAddr() { return translateData(cursor_.nextDataAddr()); }
    [[nodiscard]] std::uint32_t literalAddr() {
        return translate(recPc_ + static_cast<std::uint32_t>(inst_->imm) * 4);
    }
    [[nodiscard]] std::uint32_t storeAddr() { return translateData(cursor_.nextDataAddr()); }

    [[nodiscard]] bool condTaken() {
        cf_ = cursor_.nextCf();
        return cf_.taken;
    }
    [[nodiscard]] std::uint32_t directTarget() {
        recTarget_ = recPc_ + static_cast<std::uint32_t>(inst_->imm) * 4;
        return translate(recTarget_);
    }
    [[nodiscard]] std::uint32_t jalrTarget() {
        cf_ = cursor_.nextCf();
        recTarget_ = cursor_.nextJalrTarget();
        return translate(recTarget_);
    }

    [[nodiscard]] bool resolveJump(std::uint32_t pc, std::uint32_t target) {
        const CfRecord rec = cursor_.nextCf(); // keep streams in sync either way
        if (predictor_ == nullptr) return rec.correct;
        const auto prediction = predictor_->predictJump(pc);
        return predictor_->resolve(prediction, pc, true, target,
                                   /*chargeMispredict=*/false);
    }
    [[nodiscard]] bool resolveReturn(std::uint32_t pc, std::uint32_t target) {
        if (predictor_ == nullptr) return cf_.correct;
        const auto prediction = predictor_->predictReturn(pc);
        return predictor_->resolve(prediction, pc, true, target,
                                   /*chargeMispredict=*/true);
    }
    [[nodiscard]] bool resolveBranch(std::uint32_t pc, bool taken, std::uint32_t target) {
        if (predictor_ == nullptr) return cf_.correct;
        const auto prediction = predictor_->predictBranch(pc);
        return predictor_->resolve(prediction, pc, taken, target,
                                   /*chargeMispredict=*/true);
    }
    void pushReturnAddress(std::uint32_t addr) {
        if (predictor_ != nullptr) predictor_->pushReturnAddress(addr);
    }

    // Architectural side effects: replay has no values to carry.
    void writeLui() {}
    void writeAlu() {}
    void writeLink() {}
    void writeLoad(std::uint32_t /*addr*/) {}
    void doStore(std::uint32_t /*addr*/) {}
    void notifyControlFlow(bool /*taken*/, std::uint32_t /*nextPc*/, bool /*correct*/) {}
    void notifyIssue() { ++issued_; }

    void stepFallthrough() {
        // Sequential flow never leaves a placed section (BBR-shaped blocks
        // end in control flow), so both layouts advance by one word.
        recPc_ += 4;
        trialPc_ += 4;
        ++ip_;
    }
    void stepBranch(bool taken, std::uint32_t target) {
        recPc_ = taken ? recTarget_ : recPc_ + 4;
        trialPc_ = taken ? target : trialPc_ + 4;
        ip_ = code_ + (recPc_ - base_) / 4;
    }
    void stepJump(std::uint32_t target) {
        recPc_ = recTarget_;
        trialPc_ = target;
        ip_ = code_ + (recPc_ - base_) / 4;
    }
    void stepJalr(std::uint32_t target) {
        recPc_ = recTarget_;
        trialPc_ = target;
        ip_ = code_ + (recPc_ - base_) / 4;
    }

    [[nodiscard]] bool fullyConsumed() const noexcept { return cursor_.fullyConsumed(); }

private:
    [[nodiscard]] std::uint32_t translate(std::uint32_t recAddr) const {
        return xlate_.translate(recAddr);
    }
    [[nodiscard]] std::uint32_t translateData(std::uint32_t recAddr) const {
        return xlate_.translateData(recAddr);
    }

    const Instruction* code_;
    const Instruction* ip_ = nullptr;
    ArchTrace::Cursor cursor_;
    AddressTranslator xlate_;
    std::uint32_t base_;
    BranchPredictor* predictor_;
    const Instruction* inst_ = nullptr;
    std::uint32_t recPc_ = 0;
    std::uint32_t trialPc_ = 0;
    std::uint32_t recTarget_ = 0;
    CfRecord cf_;
    std::uint64_t issued_ = 0;
    std::uint64_t end_ = 0;
};

// ---------------------------------------------------------------------------
// Batched multi-map replay: decode the trace once per chunk into a flat
// pre-lowered tape, then advance every lane of the TrialBatch through the
// chunk before decoding the next one. The varint/zigzag cursor work and the
// recording-image position walk are paid once per batch instead of once per
// trial, and the per-lane inner loop degenerates to flat tape loads feeding
// the shared timing kernel.
// ---------------------------------------------------------------------------

/// Issue-stage shape of a tape op: which case of the timing kernel's
/// execute switch it takes. Pre-lowered once per batch so the op-major
/// kernel dispatches on a dense byte instead of re-classifying the opcode
/// per (op, lane).
enum class OpClass : std::uint8_t { Alu, Lui, Load, Store, Jal, Jalr, Branch, Nop, Halt };

[[nodiscard]] constexpr OpClass opClassOf(Opcode op) noexcept {
    switch (op) {
        case Opcode::Nop: return OpClass::Nop;
        case Opcode::Halt: return OpClass::Halt;
        case Opcode::Lui: return OpClass::Lui;
        case Opcode::Lw:
        case Opcode::Ldl: return OpClass::Load;
        case Opcode::Sw: return OpClass::Store;
        case Opcode::Jal: return OpClass::Jal;
        case Opcode::Jalr: return OpClass::Jalr;
        default: return isConditionalBranch(op) ? OpClass::Branch : OpClass::Alu;
    }
}

/// One pre-lowered instruction of the recorded stream. `aux` is the one
/// recorded fact the opcode needs: the data address (Lw/Sw), the literal
/// address (Ldl), or the recording-layout control-flow target
/// (Jal/Jalr/conditional branch) — all in recording-layout coordinates, so
/// each lane applies its own translation (identity for plain lanes).
/// `cross` marks ops whose recording-layout pc enters a new 32B fetch block
/// — the I-cache access points, identical for every plain lane by
/// construction (BBR lanes run translated layouts and re-derive their own
/// crossings from the trial pc).
struct TapeOp {
    Instruction inst;
    std::uint32_t recPc = 0;
    std::uint32_t aux = 0;
    std::uint8_t taken = 0;   ///< recorded branch direction (1 for jumps)
    std::uint8_t correct = 0; ///< recorded predictor verdict
    OpClass cls = OpClass::Alu;
    std::uint8_t cross = 0;   ///< recording-layout fetch-block boundary
};

/// Tape chunk size in instructions. 2K ops keep the ~40KB tape hot in L2
/// while a batch's lanes take turns replaying it; larger chunks amortize
/// the per-lane state reload slightly better but start evicting the lanes'
/// tag arrays.
constexpr std::uint32_t kTapeChunkOps = 256;

/// Decodes the recorded stream chunk-by-chunk, replicating ReplayDriver's
/// position walk and cursor pops exactly once per batch.
class TapeBuilder {
public:
    TapeBuilder(const Image& recording, const ArchTrace& trace)
        : code_(recording.decodedInstructions()),
          cursor_(trace),
          base_(recording.baseAddr()),
          recPc_(recording.entryAddr()),
          remaining_(trace.instructions()) {
        ip_ = code_ + (recPc_ - base_) / 4;
    }

    [[nodiscard]] bool done() const noexcept { return remaining_ == 0; }
    [[nodiscard]] bool fullyConsumed() const noexcept { return cursor_.fullyConsumed(); }

    /// Decode up to `cap` instructions into `out`; returns the count.
    std::uint32_t fill(TapeOp* out, std::uint32_t cap) {
        std::uint32_t n = 0;
        while (n < cap && remaining_ != 0) {
            const Instruction inst = *ip_;
            TapeOp& op = out[n++];
            op.inst = inst;
            op.recPc = recPc_;
            op.aux = 0;
            op.taken = 0;
            op.correct = 0;
            op.cls = opClassOf(inst.op);
            const std::uint64_t fetchBlock = recPc_ / 32;
            op.cross = fetchBlock != lastFetchBlock_ ? 1 : 0;
            lastFetchBlock_ = fetchBlock;
            --remaining_;
            switch (inst.op) {
                case Opcode::Lw:
                case Opcode::Sw:
                    op.aux = cursor_.nextDataAddr();
                    step();
                    break;
                case Opcode::Ldl:
                    op.aux = recPc_ + static_cast<std::uint32_t>(inst.imm) * 4;
                    step();
                    break;
                case Opcode::Jal: {
                    const CfRecord cf = cursor_.nextCf();
                    op.aux = recPc_ + static_cast<std::uint32_t>(inst.imm) * 4;
                    op.taken = 1;
                    op.correct = cf.correct ? 1 : 0;
                    jumpTo(op.aux);
                    break;
                }
                case Opcode::Jalr: {
                    const CfRecord cf = cursor_.nextCf();
                    op.aux = cursor_.nextJalrTarget();
                    op.taken = 1;
                    op.correct = cf.correct ? 1 : 0;
                    jumpTo(op.aux);
                    break;
                }
                case Opcode::Halt:
                    break; // always the last recorded instruction; no step
                default:
                    if (isConditionalBranch(inst.op)) {
                        const CfRecord cf = cursor_.nextCf();
                        op.aux = recPc_ + static_cast<std::uint32_t>(inst.imm) * 4;
                        op.taken = cf.taken ? 1 : 0;
                        op.correct = cf.correct ? 1 : 0;
                        if (cf.taken) {
                            jumpTo(op.aux);
                        } else {
                            step();
                        }
                    } else {
                        step();
                    }
                    break;
            }
        }
        return n;
    }

private:
    void step() {
        recPc_ += 4;
        ++ip_;
    }
    void jumpTo(std::uint32_t target) {
        recPc_ = target;
        ip_ = code_ + (recPc_ - base_) / 4;
    }

    const Instruction* code_;
    const Instruction* ip_;
    ArchTrace::Cursor cursor_;
    std::uint32_t base_;
    std::uint32_t recPc_;
    std::uint64_t remaining_;
    // Mirrors PipelineState::lastFetchBlock's initial value so the decoded
    // crossing sequence equals what each lane's kernel walk would compute.
    std::uint64_t lastFetchBlock_ = ~std::uint64_t{0};
};

/// Tape-walking Driver for timing::runPipelineChunk. Every recorded fact is
/// a flat load from the pre-lowered tape; plain lanes (`kBbr == false`,
/// identity layout, replayed predictor verdicts) compile the translation
/// and the predictor away entirely, while BBR lanes carry their per-trial
/// translated pc and live predictor exactly like ReplayDriver.
template <bool kBbr>
class TapeDriver {
public:
    TapeDriver(const AddressTranslator& xlate, BranchPredictor* predictor,
               std::uint32_t entryTrialPc)
        : xlate_(xlate), predictor_(predictor), trialPc_(entryTrialPc) {}

    void beginChunk(const TapeOp* ops, std::uint32_t count) {
        ops_ = ops;
        n_ = count;
        idx_ = 0;
    }

    [[nodiscard]] bool atEnd() const { return idx_ == n_; }
    [[nodiscard]] const Instruction& inst() const { return ops_[idx_].inst; }
    [[nodiscard]] std::uint32_t pc() const {
        if constexpr (kBbr) {
            return trialPc_;
        } else {
            return ops_[idx_].recPc;
        }
    }

    [[nodiscard]] std::uint32_t loadAddr() const { return translateData(ops_[idx_].aux); }
    [[nodiscard]] std::uint32_t literalAddr() const { return translate(ops_[idx_].aux); }
    [[nodiscard]] std::uint32_t storeAddr() const { return translateData(ops_[idx_].aux); }

    [[nodiscard]] bool condTaken() const { return ops_[idx_].taken != 0; }
    [[nodiscard]] std::uint32_t directTarget() const { return translate(ops_[idx_].aux); }
    [[nodiscard]] std::uint32_t jalrTarget() const { return translate(ops_[idx_].aux); }

    [[nodiscard]] bool resolveJump(std::uint32_t pc, std::uint32_t target) {
        if constexpr (kBbr) {
            const auto prediction = predictor_->predictJump(pc);
            return predictor_->resolve(prediction, pc, true, target,
                                       /*chargeMispredict=*/false);
        } else {
            (void)pc;
            (void)target;
            return ops_[idx_].correct != 0;
        }
    }
    [[nodiscard]] bool resolveReturn(std::uint32_t pc, std::uint32_t target) {
        if constexpr (kBbr) {
            const auto prediction = predictor_->predictReturn(pc);
            return predictor_->resolve(prediction, pc, true, target,
                                       /*chargeMispredict=*/true);
        } else {
            (void)pc;
            (void)target;
            return ops_[idx_].correct != 0;
        }
    }
    [[nodiscard]] bool resolveBranch(std::uint32_t pc, bool taken, std::uint32_t target) {
        if constexpr (kBbr) {
            const auto prediction = predictor_->predictBranch(pc);
            return predictor_->resolve(prediction, pc, taken, target,
                                       /*chargeMispredict=*/true);
        } else {
            (void)pc;
            (void)taken;
            (void)target;
            return ops_[idx_].correct != 0;
        }
    }
    void pushReturnAddress(std::uint32_t addr) {
        if constexpr (kBbr) predictor_->pushReturnAddress(addr);
    }

    // Architectural side effects: replay has no values to carry.
    void writeLui() {}
    void writeAlu() {}
    void writeLink() {}
    void writeLoad(std::uint32_t /*addr*/) {}
    void doStore(std::uint32_t /*addr*/) {}
    void notifyControlFlow(bool /*taken*/, std::uint32_t /*nextPc*/, bool /*correct*/) {}
    void notifyIssue() {}

    void stepFallthrough() {
        ++idx_;
        if constexpr (kBbr) trialPc_ += 4;
    }
    void stepBranch(bool taken, std::uint32_t target) {
        ++idx_;
        if constexpr (kBbr) trialPc_ = taken ? target : trialPc_ + 4;
    }
    void stepJump(std::uint32_t target) {
        ++idx_;
        if constexpr (kBbr) trialPc_ = target;
    }
    void stepJalr(std::uint32_t target) {
        ++idx_;
        if constexpr (kBbr) trialPc_ = target;
    }

private:
    [[nodiscard]] std::uint32_t translate(std::uint32_t recAddr) const {
        if constexpr (kBbr) {
            return xlate_.translate(recAddr);
        } else {
            return recAddr;
        }
    }
    [[nodiscard]] std::uint32_t translateData(std::uint32_t recAddr) const {
        if constexpr (kBbr) {
            return xlate_.translateData(recAddr);
        } else {
            return recAddr;
        }
    }

    const TapeOp* ops_ = nullptr;
    std::uint32_t n_ = 0;
    std::uint32_t idx_ = 0;
    AddressTranslator xlate_;
    BranchPredictor* predictor_;
    std::uint32_t trialPc_;
};

// ---------------------------------------------------------------------------
// Op-major plain-lane kernel: the TrialBatch inner loop. The lane-major
// path above walks each lane through a whole chunk before switching lanes,
// so every data-dependent branch of the timing kernel (the execute switch,
// the stall checks, hit/miss paths) re-trains the host branch predictor on
// each lane's pass. Here the loops are inverted — for each tape op, a tight
// loop advances every lane — which makes all of those branches
// lane-coherent: the switch resolves once per op, and each in-loop branch
// sees the same op (and usually the same outcome) B times in a row.
//
// Because every plain lane replays the same recorded stream with identity
// translation and recorded verdicts, all stream-derived counters —
// instructions, loads, stores, branch mix, recorded mispredicts, fetch
// crossings — are lane-invariant: they are tallied ONCE per op into
// ChunkAggregates and added to each lane's RunStats at the chunk edge,
// instead of once per (op, lane).
//
// This mirrors timing_kernel.h's runPipelineChunk case for a TapeDriver
// with no predictor and identity translation; that function remains the
// normative copy of the timing semantics, and the batched-vs-unbatched
// byte-identity tests (tests/test_sweep_determinism.cpp, tests/test_replay.cpp,
// and the golden sweep JSON) enforce that the two never drift.
// ---------------------------------------------------------------------------

/// Stream-derived counters identical for every plain lane of one chunk.
struct ChunkAggregates {
    std::uint64_t instructions = 0;
    std::uint64_t loads = 0;
    std::uint64_t stores = 0;
    std::uint64_t condBranches = 0;
    std::uint64_t takenBranches = 0;
    std::uint64_t mispredicts = 0;
    std::uint64_t l1iAccesses = 0;
    std::uint64_t l1dAccesses = 0;
    bool halted = false;
};

/// One plain lane as the op-major kernel sees it: timing state plus the
/// lane's concrete (devirtualized) schemes.
template <class ICacheT, class DCacheT>
struct PlainLaneRef {
    timing::PipelineState* st = nullptr;
    ICacheT* icache = nullptr;
    DCacheT* dcache = nullptr;
};

/// Advance every lane of one scheme-homogeneous plain group through one
/// decoded tape chunk. Per-lane semantics are exactly runPipelineChunk's:
/// same fetch/stall/issue/execute rules, same attribution, same order — only
/// the iteration order (op-major instead of lane-major) and the aggregation
/// of lane-invariant counters differ, neither of which is observable in the
/// per-lane result.
template <class ICacheT, class DCacheT>
void runTapeChunkPlain(const TapeOp* ops, std::uint32_t count,
                       PlainLaneRef<ICacheT, DCacheT>* lanes, std::size_t laneCount,
                       const PipelineConfig& config) {
    using timing::StallCause;
    if (laneCount == 0 || count == 0) return;
    if (!lanes[0].st->running) return; // Halt retired in an earlier chunk

    const std::uint32_t iOverhead = lanes[0].icache->latencyOverhead();
    const std::uint32_t iHitLatency = kL1HitLatencyCycles + iOverhead;
    const std::uint32_t takenBubble = config.takenBranchFetchBubble ? iHitLatency - 1 : 0;
    const std::uint32_t dOverhead = lanes[0].dcache->latencyOverhead();
    const std::uint64_t instrLimit =
        config.maxInstructions != 0 ? config.maxInstructions : ~std::uint64_t{0};
    // Lane-invariant by construction (all lanes issue the same stream).
    const std::uint64_t instrBase = lanes[0].st->stats.instructions;

    const auto advanceTo = [](timing::PipelineState& st, std::uint64_t targetCycle,
                              StallCause cause) {
        if (targetCycle <= st.cycle) return;
        st.stallCycles[static_cast<unsigned>(cause)] += targetCycle - st.cycle;
        st.cycle = targetCycle;
        st.slotsUsed = 0;
        st.memOpsThisCycle = 0;
        st.branchesThisCycle = 0;
    };
    const auto setRegTiming = [](timing::PipelineState& st, unsigned index,
                                 std::uint64_t readyCycle, bool fromLoad) {
        const unsigned slot = index == kZeroRegister ? kNumRegisters : index;
        st.regReady[slot] = readyCycle;
        st.regFromLoad[slot] = fromLoad;
    };

    ChunkAggregates agg;
    for (std::uint32_t i = 0; i < count; ++i) {
        if (instrBase + agg.instructions >= instrLimit) break;
        const TapeOp op = ops[i];
        const std::uint8_t opFlags =
            timing::detail::kOpFlags[static_cast<unsigned>(op.inst.op)];
        const bool isMem = (opFlags & timing::detail::kIsMemory) != 0;
        const bool isCf = (opFlags & timing::detail::kIsControlFlow) != 0;
        const bool readsRs1 = (opFlags & timing::detail::kReadsRs1) != 0;
        const bool readsRs2 = (opFlags & timing::detail::kReadsRs2) != 0;

        // --- Instruction fetch: lane-invariant crossing, per-lane access. ---
        if (op.cross != 0) {
            ++agg.l1iAccesses;
            for (std::size_t l = 0; l < laneCount; ++l) {
                timing::PipelineState& st = *lanes[l].st;
                const AccessResult fetch = lanes[l].icache->fetch(op.recPc);
                st.stats.activity.l2Accesses += fetch.l2Reads;
                if (fetch.dram) ++st.stats.activity.dramAccesses;
                if (fetch.auxProbe) ++st.stats.activity.auxAccesses;
                if (!fetch.l1Hit) {
                    const std::uint64_t penalty = fetch.latencyCycles - iHitLatency;
                    if (st.cycle + penalty > st.frontendReady) {
                        st.frontendReady = st.cycle + penalty;
                        st.frontendCause = StallCause::IFetch;
                    }
                }
            }
        }
        ++agg.instructions;

        // The issue front shared by every op class: frontend drain, register
        // dependences, width/structural constraints — runPipelineChunk's
        // pre-execute sequence verbatim, on one lane.
        const auto issueFront = [&](timing::PipelineState& st) {
            advanceTo(st, st.frontendReady, st.frontendCause);
            const std::uint64_t ready1 = readsRs1 ? st.regReady[op.inst.rs1] : 0;
            const std::uint64_t ready2 = readsRs2 ? st.regReady[op.inst.rs2] : 0;
            const std::uint64_t ready = std::max(ready1, ready2);
            if (ready > st.cycle) [[unlikely]] {
                const bool fromLoad = ready1 >= ready2 ? st.regFromLoad[op.inst.rs1]
                                                       : st.regFromLoad[op.inst.rs2];
                advanceTo(st, ready, fromLoad ? StallCause::Dmem : StallCause::Exec);
            }
            if (st.slotsUsed >= config.issueWidth || (isMem && st.memOpsThisCycle >= 1) ||
                (isCf && st.branchesThisCycle >= 1)) {
                advanceTo(st, st.cycle + 1, StallCause::None);
            }
            if (isMem && config.dcachePortOccupancy) {
                const std::uint64_t portFree = st.dportBusyUntil;
                if (portFree > st.cycle) advanceTo(st, portFree, StallCause::Dmem);
                st.dportBusyUntil = st.cycle + 1 + dOverhead;
            }
            ++st.slotsUsed;
            if (isMem) ++st.memOpsThisCycle;
            if (isCf) ++st.branchesThisCycle;
        };

        switch (op.cls) {
            case OpClass::Nop:
                for (std::size_t l = 0; l < laneCount; ++l) issueFront(*lanes[l].st);
                break;
            case OpClass::Halt:
                agg.halted = true;
                for (std::size_t l = 0; l < laneCount; ++l) {
                    issueFront(*lanes[l].st);
                    lanes[l].st->running = false;
                }
                break;
            case OpClass::Lui:
                for (std::size_t l = 0; l < laneCount; ++l) {
                    timing::PipelineState& st = *lanes[l].st;
                    issueFront(st);
                    setRegTiming(st, op.inst.rd, st.cycle + 1, false);
                }
                break;
            case OpClass::Load:
                ++agg.loads;
                ++agg.l1dAccesses;
                for (std::size_t l = 0; l < laneCount; ++l) {
                    timing::PipelineState& st = *lanes[l].st;
                    issueFront(st);
                    const AccessResult res = lanes[l].dcache->read(op.aux);
                    st.stats.activity.l2Accesses += res.l2Reads;
                    if (res.dram) ++st.stats.activity.dramAccesses;
                    if (res.auxProbe) ++st.stats.activity.auxAccesses;
                    setRegTiming(st, op.inst.rd, st.cycle + res.latencyCycles, true);
                    if (config.extraDcacheCycleStalls && dOverhead > 0) {
                        advanceTo(st, st.cycle + 1 + dOverhead, StallCause::Dmem);
                    }
                }
                break;
            case OpClass::Store:
                ++agg.stores;
                ++agg.l1dAccesses;
                for (std::size_t l = 0; l < laneCount; ++l) {
                    timing::PipelineState& st = *lanes[l].st;
                    issueFront(st);
                    const AccessResult res = lanes[l].dcache->write(op.aux);
                    st.stats.activity.l2WriteThroughs += res.l2Writes;
                    st.stats.activity.l2Accesses += res.l2Reads;
                    if (res.dram) ++st.stats.activity.dramAccesses;
                    if (res.auxProbe) ++st.stats.activity.auxAccesses;
                }
                break;
            case OpClass::Jal: {
                const bool correct = op.correct != 0;
                const bool writesLink = op.inst.rd != kZeroRegister;
                for (std::size_t l = 0; l < laneCount; ++l) {
                    timing::PipelineState& st = *lanes[l].st;
                    issueFront(st);
                    if (writesLink) setRegTiming(st, op.inst.rd, st.cycle + 1, false);
                    if (!correct) {
                        st.frontendReady = st.cycle + 1 + iHitLatency;
                        st.frontendCause = StallCause::Branch;
                    } else if (takenBubble > 0) {
                        st.frontendReady = std::max(st.frontendReady, st.cycle + takenBubble);
                        st.frontendCause = StallCause::Branch;
                    }
                }
                break;
            }
            case OpClass::Jalr: {
                const bool correct = op.correct != 0;
                const bool writesLink = op.inst.rd != kZeroRegister;
                if (!correct) ++agg.mispredicts;
                for (std::size_t l = 0; l < laneCount; ++l) {
                    timing::PipelineState& st = *lanes[l].st;
                    issueFront(st);
                    if (writesLink) setRegTiming(st, op.inst.rd, st.cycle + 1, false);
                    if (!correct) {
                        st.frontendReady = st.cycle + 1 + config.mispredictPenalty +
                                           iHitLatency + iOverhead;
                        st.frontendCause = StallCause::Branch;
                    } else if (takenBubble > 0) {
                        st.frontendReady = std::max(st.frontendReady, st.cycle + takenBubble);
                        st.frontendCause = StallCause::Branch;
                    }
                }
                break;
            }
            case OpClass::Branch: {
                const bool taken = op.taken != 0;
                const bool correct = op.correct != 0;
                ++agg.condBranches;
                if (taken) ++agg.takenBranches;
                if (!correct) ++agg.mispredicts;
                for (std::size_t l = 0; l < laneCount; ++l) {
                    timing::PipelineState& st = *lanes[l].st;
                    issueFront(st);
                    if (!correct) {
                        st.frontendReady = st.cycle + 1 + config.mispredictPenalty +
                                           iHitLatency + iOverhead;
                        st.frontendCause = StallCause::Branch;
                    } else if (taken && takenBubble > 0) {
                        st.frontendReady = std::max(st.frontendReady, st.cycle + takenBubble);
                        st.frontendCause = StallCause::Branch;
                    }
                }
                break;
            }
            case OpClass::Alu: {
                std::uint32_t latency = 1;
                if (op.inst.op == Opcode::Mul) latency = config.mulLatency;
                if (op.inst.op == Opcode::Div || op.inst.op == Opcode::Rem) {
                    latency = config.divLatency;
                }
                for (std::size_t l = 0; l < laneCount; ++l) {
                    timing::PipelineState& st = *lanes[l].st;
                    issueFront(st);
                    setRegTiming(st, op.inst.rd, st.cycle + latency, false);
                }
                break;
            }
        }
        if (op.cls == OpClass::Halt) break; // last recorded op by construction
    }

    // Fold the lane-invariant stream counters into every lane, wholesale.
    for (std::size_t l = 0; l < laneCount; ++l) {
        RunStats& stats = lanes[l].st->stats;
        stats.instructions += agg.instructions;
        stats.loads += agg.loads;
        stats.stores += agg.stores;
        stats.condBranches += agg.condBranches;
        stats.takenBranches += agg.takenBranches;
        stats.mispredicts += agg.mispredicts;
        stats.activity.l1iAccesses += agg.l1iAccesses;
        stats.activity.l1dAccesses += agg.l1dAccesses;
        if (agg.halted) stats.halted = true;
    }
}

/// Per-lane mutable state of one TrialBatch: the structure-of-arrays over
/// trials. Elements are constructed in a pre-sized vector and never move,
/// so the schemes' reference to *l2 and the driver's predictor pointer stay
/// valid for the batch's lifetime.
struct LaneRuntime {
    BatchLane* lane = nullptr;
    bool alive = false;
    std::optional<detail::LegFaultMaps> localMaps;
    const detail::LegFaultMaps* maps = nullptr;
    std::unique_ptr<L2Cache> l2;
    SchemePair pair;
    std::optional<LinkOutput> trialLink;
    std::vector<std::uint32_t> table;
    std::optional<BranchPredictor> predictor;
    PipelineConfig pipeline;
    /// Points into replayBatch's dense state array: the op-major kernel
    /// walks every lane's scoreboard per op, so the states must sit
    /// shoulder to shoulder rather than strided across LaneRuntimes.
    timing::PipelineState* st = nullptr;
    std::optional<TapeDriver<true>> bbrDrv;
};

/// Thread-local pool of L2Cache objects reused across batches. Constructing
/// an L2 allocates and zeroes a ~400KB tag store — at tiny workload scales
/// that costs as much as replaying thousands of instructions, and it
/// recurs for every lane of every leg. reinitialize() restores the
/// as-constructed state (epoch-bumped tags, clean dirty bits, zero stats),
/// so a pooled cache is observationally identical to a fresh one: LRU
/// compares only relative ages within the current epoch.
class L2Pool {
public:
    [[nodiscard]] static std::unique_ptr<L2Cache> acquire(const L2Cache::Config& config) {
        auto& free = freeList();
        while (!free.empty()) {
            std::unique_ptr<L2Cache> l2 = std::move(free.back());
            free.pop_back();
            const CacheOrganization& org = l2->config().org;
            if (org.sizeBytes == config.org.sizeBytes &&
                org.blockBytes == config.org.blockBytes &&
                org.associativity == config.org.associativity) {
                l2->reinitialize(config);
                return l2;
            }
            // Organization changed between sweeps: drop the stale object.
        }
        return std::make_unique<L2Cache>(config);
    }

    static void release(std::unique_ptr<L2Cache> l2) {
        if (l2) freeList().push_back(std::move(l2));
    }

private:
    static std::vector<std::unique_ptr<L2Cache>>& freeList() {
        static thread_local std::vector<std::unique_ptr<L2Cache>> pool;
        return pool;
    }
};

} // namespace

std::unique_ptr<const ReplaySource> recordReplaySource(const Module& module,
                                                       const SystemConfig& recordConfig,
                                                       std::uint64_t byteCap,
                                                       SystemResult& outResult) {
    const obs::Span span("record");
    VC_EXPECTS(!schemeNeedsBbrLinking(recordConfig.scheme));
    TraceRecorder recorder(byteCap);
    SystemConfig config = recordConfig;
    config.observers.push_back(&recorder);
    outResult = simulateSystem(module, nullptr, config);
    VC_CHECK(!outResult.linkFailed);
    if (recorder.overflowed()) {
        obs::MetricsRegistry::global().add("trace.overflows", {});
        return nullptr;
    }

    // Re-link for the cache: link() is deterministic, so this image has the
    // exact layout the recording run executed.
    LinkOutput linked = link(module);
    linked.image.warmDecodeCache();
    ArchTrace trace =
        recorder.finish(outResult.run.halted, outResult.checksum, recordConfig.maxInstructions,
                        linked.image.entryAddr(), linked.image.sizeWords());
    VC_CHECK(trace.instructions() == outResult.run.instructions);
    return std::make_unique<const ReplaySource>(
        ReplaySource{std::move(trace), std::move(linked)});
}

std::vector<std::uint32_t> buildAddressTranslation(const Image& recording,
                                                   const Image& trial) {
    std::vector<std::uint32_t> table(recording.sizeWords(), kUnmappedWord);
    const auto mapSection = [&](std::uint32_t recByte, std::uint32_t trialByte,
                                std::uint32_t words) {
        const std::uint32_t recWord = (recByte - recording.baseAddr()) / 4;
        VC_EXPECTS(recWord + words <= table.size());
        for (std::uint32_t w = 0; w < words; ++w) table[recWord + w] = trialByte + w * 4;
    };

    const auto& recBlocks = recording.placements();
    const auto& trialBlocks = trial.placements();
    VC_EXPECTS(recBlocks.size() == trialBlocks.size());
    for (std::size_t i = 0; i < recBlocks.size(); ++i) {
        const PlacedBlock& rec = recBlocks[i];
        const PlacedBlock& tri = trialBlocks[i];
        VC_EXPECTS(rec.functionIndex == tri.functionIndex &&
                   rec.blockIndex == tri.blockIndex && rec.codeWords == tri.codeWords &&
                   rec.literalWords == tri.literalWords);
        mapSection(rec.byteAddr, tri.byteAddr, rec.sizeWords());
    }
    const auto& recPools = recording.poolPlacements();
    const auto& trialPools = trial.poolPlacements();
    VC_EXPECTS(recPools.size() == trialPools.size());
    for (std::size_t i = 0; i < recPools.size(); ++i) {
        const PlacedPool& rec = recPools[i];
        const PlacedPool& tri = trialPools[i];
        VC_EXPECTS(rec.functionIndex == tri.functionIndex &&
                   rec.sizeWords == tri.sizeWords);
        mapSection(rec.byteAddr, tri.byteAddr, rec.sizeWords);
    }
    return table;
}

SystemResult replaySystem(const Module* bbrModule, const SystemConfig& config,
                          const TraceCache& cache, const detail::LegFaultMaps* chipMaps) {
    const obs::Span span("replay");
    const bool needsBbr = schemeNeedsBbrLinking(config.scheme);
    const ReplaySource* source = needsBbr ? cache.bbr.get() : cache.plain.get();
    VC_EXPECTS(source != nullptr);
    VC_EXPECTS(source->trace.finalized() && !source->trace.overflowed());
    VC_EXPECTS(source->trace.maxInstructions() == config.maxInstructions);
    VC_EXPECTS(source->trace.entryAddr() == source->link.image.entryAddr());
    VC_EXPECTS(source->trace.imageWords() == source->link.image.sizeWords());
    VC_EXPECTS(config.observers.empty());

    SystemResult result;
    std::optional<detail::LegFaultMaps> local;
    if (chipMaps == nullptr || detail::schemeIsDefectFree(config.scheme)) {
        local.emplace(detail::generateLegFaultMaps(config));
    }
    const detail::LegFaultMaps& maps = local.has_value() ? *local : *chipMaps;

    L2Cache::Config l2Config;
    l2Config.dramLatencyCycles = dramLatencyCycles(config.dramLatencyNs, config.op.frequency);
    L2Cache l2(l2Config);

    SchemePair pair = makeSchemes(config.scheme, config.l1Org, maps.dcache, maps.icache, l2);
    VC_CHECK(pair.needsBbrLinking == needsBbr);

    std::vector<std::uint32_t> table;
    std::optional<BranchPredictor> predictor;
    std::optional<LinkOutput> trialLink;
    if (needsBbr) {
        VC_EXPECTS(bbrModule != nullptr);
        LinkOptions options;
        options.bbrPlacement = true;
        options.icacheFaultMap = &maps.icache;
        try {
            trialLink = analysis::linkVerified(*bbrModule, options);
        } catch (const LinkError& e) {
            // Same yield-loss accounting as the execution-driven path.
            result.linkFailed = true;
            result.forensics.failCause = e.cause();
            detail::publishLegMetrics(config, result);
            return result;
        }
        result.linkStats = trialLink->stats;
        table = buildAddressTranslation(source->link.image, trialLink->image);
        predictor.emplace(config.pipeline.predictor);
    } else {
        result.linkStats = source->link.stats;
    }

    PipelineConfig pipeline = config.pipeline;
    pipeline.maxInstructions = config.maxInstructions;
    AddressTranslator xlate;
    xlate.table = table.empty() ? nullptr : table.data();
    xlate.tableWords = static_cast<std::uint32_t>(table.size());
    xlate.base = source->link.image.baseAddr();
    ReplayDriver driver(source->link.image, source->trace, xlate,
                        predictor.has_value() ? &*predictor : nullptr);

    result.run = timing::runPipeline(driver, *pair.icache, *pair.dcache, pipeline);

    // The replayed run must retrace the recording exactly.
    VC_CHECK(result.run.instructions == source->trace.instructions());
    VC_CHECK(result.run.halted == source->trace.halted());
    VC_CHECK(driver.fullyConsumed());
    result.checksum = source->trace.checksum();

    detail::finalizeLegResult(config, pair, maps, result);
    return result;
}

void replayBatch(const Module* bbrModule, const TraceCache& cache,
                 std::span<BatchLane> lanes) {
    if (lanes.empty()) return;
    const obs::Span span("batch");
    const bool needsBbr = schemeNeedsBbrLinking(lanes.front().config.scheme);
    const ReplaySource* source = needsBbr ? cache.bbr.get() : cache.plain.get();
    VC_EXPECTS(source != nullptr);
    VC_EXPECTS(source->trace.finalized() && !source->trace.overflowed());
    VC_EXPECTS(source->trace.entryAddr() == source->link.image.entryAddr());
    VC_EXPECTS(source->trace.imageWords() == source->link.image.sizeWords());

    // --- Per-lane setup: maps, L2, schemes, (BBR) link + translation. ---
    // Identical, per lane, to replaySystem's preamble; a lane whose BBR link
    // fails is finished here with the same yield-loss accounting and sits
    // out the replay.
    std::vector<LaneRuntime> rts(lanes.size());
    std::vector<timing::PipelineState> states(lanes.size());
    for (std::size_t i = 0; i < lanes.size(); ++i) {
        BatchLane& lane = lanes[i];
        const SystemConfig& config = lane.config;
        LaneRuntime& rt = rts[i];
        rt.lane = &lane;
        rt.st = &states[i];
        VC_EXPECTS(schemeNeedsBbrLinking(config.scheme) == needsBbr);
        VC_EXPECTS(source->trace.maxInstructions() == config.maxInstructions);
        VC_EXPECTS(config.observers.empty());

        lane.result = SystemResult{};
        if (lane.chipMaps == nullptr || detail::schemeIsDefectFree(config.scheme)) {
            rt.localMaps.emplace(detail::generateLegFaultMaps(config));
        }
        rt.maps = rt.localMaps.has_value() ? &*rt.localMaps : lane.chipMaps;

        L2Cache::Config l2Config;
        l2Config.dramLatencyCycles =
            dramLatencyCycles(config.dramLatencyNs, config.op.frequency);
        rt.l2 = L2Pool::acquire(l2Config);
        rt.pair =
            makeSchemes(config.scheme, config.l1Org, rt.maps->dcache, rt.maps->icache,
                        *rt.l2);
        VC_CHECK(rt.pair.needsBbrLinking == needsBbr);

        AddressTranslator xlate;
        if (needsBbr) {
            VC_EXPECTS(bbrModule != nullptr);
            LinkOptions options;
            options.bbrPlacement = true;
            options.icacheFaultMap = &rt.maps->icache;
            try {
                rt.trialLink = analysis::linkVerified(*bbrModule, options);
            } catch (const LinkError& e) {
                lane.result.linkFailed = true;
                lane.result.forensics.failCause = e.cause();
                detail::publishLegMetrics(config, lane.result);
                continue;
            }
            lane.result.linkStats = rt.trialLink->stats;
            rt.table = buildAddressTranslation(source->link.image, rt.trialLink->image);
            rt.predictor.emplace(config.pipeline.predictor);
            xlate.table = rt.table.data();
            xlate.tableWords = static_cast<std::uint32_t>(rt.table.size());
            xlate.base = source->link.image.baseAddr();
        } else {
            lane.result.linkStats = source->link.stats;
        }

        rt.pipeline = config.pipeline;
        rt.pipeline.maxInstructions = config.maxInstructions;
        if (needsBbr) {
            rt.bbrDrv.emplace(xlate, &*rt.predictor,
                              xlate.translate(source->link.image.entryAddr()));
        } else {
            // The op-major kernel hoists these per-op facts out of its lane
            // loop, so they must not vary within a batch. All sweep legs
            // share one SystemConfig template, so this never fires there.
            const PipelineConfig& ref = rts.front().pipeline;
            VC_EXPECTS(rt.pipeline.issueWidth == ref.issueWidth);
            VC_EXPECTS(rt.pipeline.mispredictPenalty == ref.mispredictPenalty);
            VC_EXPECTS(rt.pipeline.mulLatency == ref.mulLatency);
            VC_EXPECTS(rt.pipeline.divLatency == ref.divLatency);
            VC_EXPECTS(rt.pipeline.takenBranchFetchBubble == ref.takenBranchFetchBubble);
            VC_EXPECTS(rt.pipeline.dcachePortOccupancy == ref.dcachePortOccupancy);
            VC_EXPECTS(rt.pipeline.extraDcacheCycleStalls == ref.extraDcacheCycleStalls);
        }
        rt.alive = true;
    }

    // Scheme-homogeneous plain groups for the op-major kernel (lane order
    // within a group never affects results — lanes share no state), plus
    // the BBR lanes, which keep the lane-major path: their translated pc
    // streams and live predictors make per-op facts lane-dependent.
    std::vector<std::pair<SchemeKind, std::vector<LaneRuntime*>>> plainGroups;
    std::vector<LaneRuntime*> bbrLanes;
    for (LaneRuntime& rt : rts) {
        if (!rt.alive) continue;
        if (needsBbr) {
            bbrLanes.push_back(&rt);
            continue;
        }
        const SchemeKind kind = rt.lane->config.scheme;
        auto it = std::find_if(plainGroups.begin(), plainGroups.end(),
                               [kind](const auto& g) { return g.first == kind; });
        if (it == plainGroups.end()) {
            plainGroups.emplace_back(kind, std::vector<LaneRuntime*>{});
            it = std::prev(plainGroups.end());
        }
        it->second.push_back(&rt);
    }

    // --- Chunked replay: decode once, advance every lane through it. ---
    TapeBuilder builder(source->link.image, source->trace);
    std::vector<TapeOp> tape(kTapeChunkOps);
    while (!builder.done()) {
        const std::uint32_t count = builder.fill(tape.data(), kTapeChunkOps);
        for (auto& [kind, group] : plainGroups) {
            withConcreteSchemes(
                kind, group.front()->pair, [&](auto& icache0, auto& dcache0) {
                    using IC = std::decay_t<decltype(icache0)>;
                    using DC = std::decay_t<decltype(dcache0)>;
                    // withConcreteSchemes instantiates this lambda for the
                    // BBR pairing too, but BBR lanes never land in a plain
                    // group — guard so that instantiation stays dead code.
                    if constexpr (!std::is_same_v<IC, BbrICache>) {
                        std::vector<PlainLaneRef<IC, DC>> refs;
                        refs.reserve(group.size());
                        for (LaneRuntime* rt : group) {
                            refs.push_back(PlainLaneRef<IC, DC>{
                                rt->st, static_cast<IC*>(rt->pair.icache.get()),
                                static_cast<DC*>(rt->pair.dcache.get())});
                        }
                        runTapeChunkPlain(tape.data(), count, refs.data(), refs.size(),
                                          group.front()->pipeline);
                    }
                });
        }
        for (LaneRuntime* rt : bbrLanes) {
            withConcreteSchemes(
                rt->lane->config.scheme, rt->pair, [&](auto& icache, auto& dcache) {
                    if constexpr (std::is_same_v<std::decay_t<decltype(icache)>,
                                                 BbrICache>) {
                        rt->bbrDrv->beginChunk(tape.data(), count);
                        timing::runPipelineChunk(*rt->st, *rt->bbrDrv, icache, dcache,
                                                 rt->pipeline);
                    }
                });
        }
    }
    VC_CHECK(builder.fullyConsumed());

    // --- Per-lane finish: same checks and finalization as replaySystem. ---
    for (LaneRuntime& rt : rts) {
        if (!rt.alive) continue;
        SystemResult& result = rt.lane->result;
        result.run = timing::finalizePipeline(*rt.st);
        VC_CHECK(result.run.instructions == source->trace.instructions());
        VC_CHECK(result.run.halted == source->trace.halted());
        result.checksum = source->trace.checksum();
        detail::finalizeLegResult(rt.lane->config, rt.pair, *rt.maps, result);
    }

    // Return the lanes' L2s for the next batch. The schemes in rt.pair hold
    // references into these objects, but rts is destroyed on return and the
    // pooled caches outlive it.
    for (LaneRuntime& rt : rts) L2Pool::release(std::move(rt.l2));
}

} // namespace voltcache
