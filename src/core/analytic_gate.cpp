#include "core/analytic_gate.h"

#include <map>
#include <string>
#include <vector>

#include "compiler/passes.h"
#include "schemes/factory.h"
#include "workload/workload.h"

namespace voltcache {

analysis::CrosscheckReport analyticCrosscheck(const SweepResult& result,
                                              const SweepConfig& config,
                                              double zThreshold) {
    // Rebuild each benchmark's BBR twin to recover the largest section the
    // linker had to place — deterministic, so the reconstruction matches the
    // modules the sweep actually linked.
    std::vector<std::string> names = config.benchmarks;
    if (names.empty()) {
        for (const BenchmarkInfo& info : benchmarkList()) {
            names.emplace_back(info.name);
        }
    }
    std::map<std::string, std::uint32_t> needWords;
    for (const std::string& name : names) {
        Module module = buildBenchmark(name, config.scale);
        applyBbrTransforms(module, config.systemTemplate.maxBlockWords);
        needWords[name] = analysis::modulePlacementNeedWords(module);
    }

    analysis::CrosscheckConfig checkConfig;
    checkConfig.model = FailureModel{};
    checkConfig.lines = config.systemTemplate.l1Org.lines();
    checkConfig.wordsPerLine = config.systemTemplate.l1Org.wordsPerBlock();
    checkConfig.trials = config.trials;
    checkConfig.benchmarks = static_cast<std::uint32_t>(names.size());
    checkConfig.zThreshold = zThreshold;

    std::vector<analysis::CellSample> cells;
    for (const auto& [key, forensics] : result.forensics) {
        analysis::CellSample sample;
        sample.scheme = key.first;
        sample.mv = key.second;
        sample.hasForensics = true;
        sample.forensics = forensics;
        if (schemeNeedsBbrLinking(key.first)) {
            for (const std::string& name : names) {
                const auto it =
                    result.perBenchmark.find({name, key.first, key.second});
                if (it == result.perBenchmark.end()) continue;
                analysis::PlacementSample placement;
                placement.benchmark = name;
                placement.needWords = needWords[name];
                placement.chips = it->second.runs + it->second.linkFailures;
                placement.linkFailures = it->second.linkFailures;
                sample.placements.push_back(std::move(placement));
            }
        }
        cells.push_back(std::move(sample));
    }
    return analysis::crosscheckCells(cells, checkConfig);
}

} // namespace voltcache
