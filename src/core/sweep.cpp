#include "core/sweep.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cmath>
#include <exception>
#include <mutex>
#include <optional>
#include <stdexcept>
#include <thread>
#include <utility>

#include <cstdio>

#include "common/contracts.h"
#include "common/rng.h"
#include "core/replay.h"
#include "obs/metrics.h"
#include "obs/sampler.h"
#include "obs/span.h"
#include "obs/trace.h"

namespace voltcache {

namespace {

int mv(Voltage v) { return static_cast<int>(std::lround(v.millivolts())); }

std::uint64_t steadyNowNs() {
    return static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now().time_since_epoch())
            .count());
}

/// Leg-granular progress ticks are throttled to at most one per this period
/// (~5 Hz), so a single-benchmark sweep still reports while it runs without
/// turning the progress lock into a hot-path bottleneck.
constexpr std::uint64_t kLegTickPeriodNs = 200'000'000;

/// Chip seed: identical for every scheme and benchmark so comparisons are
/// paired; distinct per (voltage, trial).
std::uint64_t chipSeed(std::uint64_t base, int voltageMv, std::uint32_t trial) {
    SplitMix64 mixer(base ^ (static_cast<std::uint64_t>(voltageMv) << 32) ^ trial);
    return mixer.next();
}

void accumulate(SweepCell& cell, const LegResult& metrics) {
    if (metrics.linkFailed) {
        ++cell.linkFailures;
        return;
    }
    ++cell.runs;
    cell.normRuntime.add(metrics.normRuntime);
    cell.l2PerKilo.add(metrics.l2PerKilo);
    cell.normEpi.add(metrics.normEpi);
    cell.busyFrac.add(metrics.busyFrac);
    cell.ifetchFrac.add(metrics.ifetchFrac);
    cell.dmemFrac.add(metrics.dmemFrac);
    cell.branchFrac.add(metrics.branchFrac);
}

/// Shared immutable per-benchmark artifacts, built once before any leg runs
/// (the old executor re-ran the reference and defect-free simulations inside
/// every benchmark closure).
struct BenchmarkContext {
    std::string name;
    Module module;
    Module bbrModule;
    Digest256 digest{};                   ///< moduleDigest, when a store probes
    SystemResult ref760;                  ///< conventional cache at Vccmin
    std::vector<SystemResult> defectFree; ///< one per operating point
    /// Recorded architectural traces (plain + BBR layout) every trial leg
    /// replays from; empty slots mean execution-driven fallback.
    TraceCache traces;
};

/// One unit of work: indices into (contexts, points, schemes) plus a trial.
struct Leg {
    std::uint32_t benchmark = 0;
    std::uint32_t point = 0;
    std::uint32_t scheme = 0;
    std::uint32_t trial = 0;
};

/// Lazily-generated fault maps for one operating point — every trial's chip
/// at once, drawn by the batched generator (generateChipFaultMapsBatch).
/// The chip seeds are scheme- and benchmark-independent, so every
/// defect-tolerant leg of a (point, trial) shares one draw instead of
/// regenerating ~8K-word maps per leg, and batching the point's trials
/// amortizes the failure-model evaluation and map allocation across them.
struct PointMapSlot {
    std::once_flag once;
    std::vector<detail::LegFaultMaps> maps; ///< indexed by trial
};

/// Run `job(0..jobCount)` on `threads` workers pulling indices off an atomic
/// queue (work-stealing by over-decomposition: every index is a steal).
void runIndexed(std::size_t jobCount, unsigned threads,
                const std::function<void(std::size_t)>& job) {
    if (jobCount == 0) return;
    if (threads <= 1) {
        for (std::size_t i = 0; i < jobCount; ++i) job(i);
        return;
    }
    std::atomic<std::size_t> next{0};
    std::vector<std::thread> workers;
    workers.reserve(threads);
    for (unsigned t = 0; t < threads; ++t) {
        workers.emplace_back([&] {
            while (true) {
                const std::size_t index = next.fetch_add(1, std::memory_order_relaxed);
                if (index >= jobCount) return;
                job(index);
            }
        });
    }
    for (auto& worker : workers) worker.join();
}

/// Per-worker-thread (scheme, voltage) leg counters through the handle API:
/// the handles resolve to the calling thread's shard, so the hot loop never
/// touches the registry lock or another thread's cells.
class LegCounters {
public:
    LegCounters()
        : legs_(obs::MetricsRegistry::global().counter("sweep.legs")),
          replayed_(obs::MetricsRegistry::global().counter("sweep.legs_replayed")),
          executed_(obs::MetricsRegistry::global().counter("sweep.legs_executed")),
          cached_(obs::MetricsRegistry::global().counter("sweep.legs_cached")),
          batches_(obs::MetricsRegistry::global().counter("sweep.batches")),
          batchLanes_(obs::MetricsRegistry::global().counter("sweep.batch_lanes")) {}

    void legDone(bool replayed) {
        legs_.add();
        if (replayed) {
            replayed_.add();
        } else {
            executed_.add();
        }
    }

    void legDoneCached() {
        legs_.add();
        cached_.add();
    }

    void batchDone(std::uint64_t lanes) {
        batches_.add();
        batchLanes_.add(lanes);
    }

    void record(SchemeKind scheme, int voltageMv, bool linkFailed) {
        const auto key = std::make_pair(scheme, voltageMv);
        auto it = handles_.find(key);
        if (it == handles_.end()) {
            obs::MetricsRegistry& reg = obs::MetricsRegistry::global();
            const obs::LabelList labels = {{"scheme", std::string(schemeName(scheme))},
                                           {"mv", std::to_string(voltageMv)}};
            it = handles_
                     .emplace(key, Handles{reg.counter("sweep.runs", labels),
                                           reg.counter("sweep.link_failures", labels)})
                     .first;
        }
        if (linkFailed) {
            it->second.linkFailures.add();
        } else {
            it->second.runs.add();
        }
    }

private:
    struct Handles {
        obs::Counter runs;
        obs::Counter linkFailures;
    };
    obs::Counter legs_;
    obs::Counter replayed_;
    obs::Counter executed_;
    obs::Counter cached_;
    obs::Counter batches_;
    obs::Counter batchLanes_;
    std::map<std::pair<SchemeKind, int>, Handles> handles_;
};

} // namespace

const SweepCell& SweepResult::cell(SchemeKind kind, Voltage v) const {
    const auto it = cells.find({kind, mv(v)});
    if (it == cells.end()) {
        throw std::out_of_range("SweepResult::cell: no data for this (scheme, voltage)");
    }
    return it->second;
}

std::vector<SchemeKind> paperSchemes() {
    return {SchemeKind::Robust8T,  SchemeKind::SimpleWordDisable, SchemeKind::WilkersonPlus,
            SchemeKind::FbaPlus,   SchemeKind::IdcPlus,           SchemeKind::FfwBbr};
}

Digest256 moduleDigest(const Module& module) {
    HashWriter h;
    h.str("voltcache.module.v1");
    h.u64(module.functions.size());
    for (const Function& fn : module.functions) {
        h.str(fn.name);
        h.u64(fn.blocks.size());
        for (const BasicBlock& block : fn.blocks) {
            h.str(block.label);
            h.u64(block.insts.size());
            for (const Instruction& inst : block.insts) {
                h.u32(static_cast<std::uint32_t>(inst.op));
                h.u8(inst.rd);
                h.u8(inst.rs1);
                h.u8(inst.rs2);
                h.i32(inst.imm);
            }
            h.u64(block.relocs.size());
            for (const Relocation& reloc : block.relocs) {
                h.u32(reloc.instIndex);
                h.u32(static_cast<std::uint32_t>(reloc.kind));
                h.u32(reloc.targetBlock);
                h.str(reloc.targetFunction);
                h.u32(reloc.literalIndex);
            }
            h.u64(block.literalPool.size());
            for (const std::int32_t word : block.literalPool) h.i32(word);
        }
        h.u64(fn.sharedLiteralPool.size());
        for (const std::int32_t word : fn.sharedLiteralPool) h.i32(word);
    }
    h.u64(module.data.size());
    for (const DataSegment& segment : module.data) {
        h.u32(segment.baseAddr);
        h.u64(segment.words.size());
        for (const std::int32_t word : segment.words) h.i32(word);
    }
    h.str(module.entryFunction);
    return h.finish();
}

Digest256 legDigest(const Digest256& moduleDigest, SchemeKind scheme,
                    const OperatingPoint& point, std::uint64_t chipSeed,
                    const SystemConfig& t) {
    HashWriter h;
    h.str("voltcache.leg.v1");
    h.digest(moduleDigest);
    h.u32(static_cast<std::uint32_t>(scheme));
    h.str(schemeName(scheme)); // belt and braces if kinds are ever renumbered
    h.f64(point.voltage.millivolts());
    h.f64(point.frequency.megahertz());
    h.f64(point.pFailBit);
    h.u64(chipSeed);
    // L1 organization (shared by both caches).
    h.u32(t.l1Org.sizeBytes);
    h.u32(t.l1Org.blockBytes);
    h.u32(t.l1Org.associativity);
    h.u32(t.l1Org.wordBytes);
    h.u32(t.l1Org.addressBits);
    h.u32(static_cast<std::uint32_t>(t.l1Org.dataCell));
    h.u32(static_cast<std::uint32_t>(t.l1Org.tagCell));
    h.u64(t.maxInstructions);
    h.f64(t.dramLatencyNs);
    h.u32(t.maxBlockWords);
    h.f64(t.faultRateScale);
    // Energy parameters (every reference value shifts EPI).
    h.f64(t.energy.coreDynamicPerInstr);
    h.f64(t.energy.l1AccessEnergy);
    h.f64(t.energy.l2AccessEnergy);
    h.f64(t.energy.l2WriteEnergy);
    h.f64(t.energy.dramAccessEnergy);
    h.f64(t.energy.auxAccessEnergy);
    h.f64(t.energy.coreL1StaticPower);
    h.f64(t.energy.l2StaticPower);
    h.f64(t.energy.referenceVoltage.millivolts());
    // Pipeline + predictor configuration.
    h.u32(t.pipeline.issueWidth);
    h.u32(t.pipeline.mispredictPenalty);
    h.u32(t.pipeline.mulLatency);
    h.u32(t.pipeline.divLatency);
    h.u64(t.pipeline.maxInstructions);
    h.boolean(t.pipeline.takenBranchFetchBubble);
    h.boolean(t.pipeline.dcachePortOccupancy);
    h.boolean(t.pipeline.extraDcacheCycleStalls);
    h.u32(t.pipeline.predictor.bhtEntries);
    h.u32(t.pipeline.predictor.btbEntries);
    h.u32(t.pipeline.predictor.btbWays);
    h.u32(t.pipeline.predictor.rasEntries);
    return h.finish();
}

SweepResult runSweep(const SweepConfig& config) {
    const obs::Span sweepSpan("sweep");
    std::vector<std::string> benchmarks = config.benchmarks;
    if (benchmarks.empty()) {
        for (const auto& info : benchmarkList()) benchmarks.emplace_back(info.name);
    }
    std::vector<SchemeKind> schemes = config.schemes;
    if (schemes.empty()) schemes = paperSchemes();
    std::vector<OperatingPoint> points = config.points;
    if (points.empty()) {
        const auto low = DvfsTable::lowVoltagePoints();
        points.assign(low.begin(), low.end());
    }

    unsigned requested = config.threads != 0 ? config.threads
                                             : std::thread::hardware_concurrency();
    if (requested == 0) requested = 4;

    // --- Phase 1a: modules + content digests (cheap, always built). ---
    SystemConfig baseTemplate = config.systemTemplate;
    baseTemplate.maxInstructions = config.maxInstructions;

    // Replay needs the legs to run exactly what was recorded: external
    // observers must watch real execution, so their presence disables the
    // fast path wholesale — and the result store with it (a cached leg skips
    // execution entirely, so observers would see nothing).
    const bool replayEnabled = config.useReplay && config.systemTemplate.observers.empty();
    const bool cacheEnabled =
        config.resultSource != nullptr && config.systemTemplate.observers.empty();
    const bool anyBbrScheme =
        std::any_of(schemes.begin(), schemes.end(),
                    [](SchemeKind kind) { return schemeNeedsBbrLinking(kind); });

    std::vector<BenchmarkContext> contexts(benchmarks.size());
    std::vector<std::exception_ptr> contextErrors(benchmarks.size());
    const auto buildModules = [&](std::size_t b) {
        try {
            BenchmarkContext& ctx = contexts[b];
            ctx.name = benchmarks[b];
            ctx.module = buildBenchmark(ctx.name, config.scale);
            ctx.bbrModule = ctx.module; // deep copy
            applyBbrTransforms(ctx.bbrModule, config.systemTemplate.maxBlockWords);
            if (cacheEnabled) ctx.digest = moduleDigest(ctx.module);
        } catch (...) {
            contextErrors[b] = std::current_exception();
        }
    };
    runIndexed(benchmarks.size(), std::min<unsigned>(requested, benchmarks.size()),
               buildModules);
    for (const std::exception_ptr& error : contextErrors) {
        if (error) std::rethrow_exception(error);
    }

    // --- Phase 2: flatten the grid into legs, in canonical order. ---
    std::vector<Leg> legs;
    legs.reserve(benchmarks.size() * points.size() * schemes.size() * config.trials);
    for (std::uint32_t b = 0; b < benchmarks.size(); ++b) {
        for (std::uint32_t p = 0; p < points.size(); ++p) {
            for (std::uint32_t s = 0; s < schemes.size(); ++s) {
                // Defect-free kinds are deterministic: one trial suffices.
                const std::uint32_t trials =
                    schemes[s] == SchemeKind::Robust8T ? std::min(1u, config.trials)
                                                       : config.trials;
                for (std::uint32_t t = 0; t < trials; ++t) {
                    legs.push_back(Leg{b, p, s, t});
                }
            }
        }
    }

    // --- Phase 2a: probe the result store before committing to any heavy
    // work. A hit fills the leg's canonical slot directly; a benchmark whose
    // legs all hit never records a trace or runs its reference simulations.
    std::vector<LegResult> slots(legs.size());
    std::vector<char> fromStore(legs.size(), 0);
    std::vector<Digest256> legKeys;
    if (cacheEnabled) {
        const obs::Span probeSpan("store_probe");
        legKeys.resize(legs.size());
        for (std::size_t i = 0; i < legs.size(); ++i) {
            const Leg& leg = legs[i];
            const int voltageMv = mv(points[leg.point].voltage);
            legKeys[i] = legDigest(contexts[leg.benchmark].digest, schemes[leg.scheme],
                                   points[leg.point],
                                   chipSeed(config.baseSeed, voltageMv, leg.trial),
                                   baseTemplate);
            if (config.resultSource->lookup(legKeys[i], slots[i])) fromStore[i] = 1;
        }
    }
    std::vector<char> needSimulation(benchmarks.size(), cacheEnabled ? 0 : 1);
    if (cacheEnabled) {
        for (std::size_t i = 0; i < legs.size(); ++i) {
            if (fromStore[i] == 0) needSimulation[legs[i].benchmark] = 1;
        }
    }

    // --- Phase 1b: heavy per-benchmark artifacts (trace recording, the
    // 760mV reference, per-point defect-free runs), only where a leg will
    // actually simulate. ---
    const auto buildContext = [&](std::size_t b) {
        const obs::Span span("context");
        try {
            if (needSimulation[b] == 0) return;
            BenchmarkContext& ctx = contexts[b];

            // Conventional cache pinned at Vccmin = 760mV: the Fig. 12
            // normalization baseline (and the functional reference checksum).
            // With replay enabled this run doubles as the plain-layout trace
            // recording — the reference results are the recording run's.
            SystemConfig ref = baseTemplate;
            ref.scheme = SchemeKind::Conventional760;
            ref.op = DvfsTable::vccminBaseline();
            if (replayEnabled) {
                ctx.traces.plain =
                    recordReplaySource(ctx.module, ref, config.traceByteCap, ctx.ref760);
                if (ctx.traces.plain == nullptr) {
                    std::fprintf(stderr,
                                 "sweep: trace for '%s' exceeded the %llu-byte cap; "
                                 "falling back to execution-driven legs\n",
                                 ctx.name.c_str(),
                                 static_cast<unsigned long long>(config.traceByteCap));
                }
            } else {
                ctx.ref760 = simulateSystem(ctx.module, nullptr, ref);
            }
            VC_ENSURES(!ctx.ref760.linkFailed);

            // The BBR twin runs a different layout, so BBR legs replay their
            // own recording (one extra execution-driven run, amortized over
            // every FFW+BBR trial).
            if (replayEnabled && anyBbrScheme && ctx.traces.plain != nullptr) {
                SystemResult bbrRef;
                ctx.traces.bbr =
                    recordReplaySource(ctx.bbrModule, ref, config.traceByteCap, bbrRef);
                if (ctx.traces.bbr != nullptr && bbrRef.run.halted &&
                    ctx.ref760.run.halted) {
                    // The transform must not change the program's answer.
                    VC_CHECK(bbrRef.checksum == ctx.ref760.checksum);
                }
            }

            ctx.defectFree.reserve(points.size());
            if (ctx.traces.plain != nullptr && config.useBatch) {
                // One batch over the operating points: the defect-free runs
                // share the plain trace, so its tape decodes once for all of
                // them. Per-lane results match replaySystem byte for byte.
                std::vector<BatchLane> lanes(points.size());
                for (std::size_t p = 0; p < points.size(); ++p) {
                    SystemConfig defectFree = ref;
                    defectFree.scheme = SchemeKind::DefectFree;
                    defectFree.op = points[p];
                    lanes[p].config = defectFree;
                }
                replayBatch(nullptr, ctx.traces, lanes);
                for (BatchLane& lane : lanes) {
                    ctx.defectFree.push_back(std::move(lane.result));
                }
            } else {
                for (const auto& point : points) {
                    SystemConfig defectFree = ref;
                    defectFree.scheme = SchemeKind::DefectFree;
                    defectFree.op = point;
                    ctx.defectFree.push_back(
                        ctx.traces.plain != nullptr
                            ? replaySystem(nullptr, defectFree, ctx.traces)
                            : simulateSystem(ctx.module, nullptr, defectFree));
                }
            }
        } catch (...) {
            contextErrors[b] = std::current_exception();
        }
    };
    runIndexed(benchmarks.size(), std::min<unsigned>(requested, benchmarks.size()),
               buildContext);
    for (const std::exception_ptr& error : contextErrors) {
        if (error) std::rethrow_exception(error);
    }

    {
        // Resident trace footprint, visible while the sweep holds the caches.
        std::uint64_t residentBytes = 0;
        for (const BenchmarkContext& ctx : contexts) {
            residentBytes += ctx.traces.residentBytes();
        }
        obs::MetricsRegistry& reg = obs::MetricsRegistry::global();
        reg.set("trace.resident_bytes", {}, static_cast<double>(residentBytes));
        reg.gauge("trace.resident_bytes_peak").setMax(static_cast<double>(residentBytes));
    }

    // --- Phase 2b: group legs into work units. ---
    // One unit is a single leg (execution-driven, or batching off), a
    // TrialBatch — consecutive replayable legs of one (benchmark, point,
    // layout) group, capped at batchLanes, that stream the decoded tape
    // together — or a cached group: store-served legs of one (benchmark,
    // point) window, whose "execution" just replays bookkeeping. Unit
    // composition only affects scheduling — every leg still writes its own
    // canonical slot, so the reduction (and the JSON) is byte-identical to
    // the unbatched, uncached engine.
    struct WorkUnit {
        std::vector<std::size_t> legIdx;
        bool batched = false;
        bool cached = false;
    };
    constexpr std::uint32_t kDefaultBatchLanes = 32;
    const std::uint32_t laneCap =
        config.batchLanes == 0 ? kDefaultBatchLanes : config.batchLanes;
    const bool batching = replayEnabled && config.useBatch;
    std::vector<WorkUnit> units;
    {
        const auto pushChunked = [&](const std::vector<std::size_t>& group) {
            for (std::size_t start = 0; start < group.size(); start += laneCap) {
                const std::size_t count = std::min<std::size_t>(laneCap, group.size() - start);
                WorkUnit unit;
                unit.batched = true;
                unit.legIdx.assign(group.begin() + static_cast<std::ptrdiff_t>(start),
                                   group.begin() + static_cast<std::ptrdiff_t>(start + count));
                units.push_back(std::move(unit));
            }
        };
        std::size_t i = 0;
        while (i < legs.size()) {
            std::vector<std::size_t> plainGroup;
            std::vector<std::size_t> bbrGroup;
            std::vector<std::size_t> cachedGroup;
            std::size_t j = i;
            for (; j < legs.size() && legs[j].benchmark == legs[i].benchmark &&
                   legs[j].point == legs[i].point;
                 ++j) {
                if (fromStore[j] != 0) {
                    cachedGroup.push_back(j);
                    continue;
                }
                const SchemeKind kind = schemes[legs[j].scheme];
                if (batching && contexts[legs[j].benchmark].traces.canReplay(kind)) {
                    (schemeNeedsBbrLinking(kind) ? bbrGroup : plainGroup).push_back(j);
                } else {
                    units.push_back(WorkUnit{{j}, false, false});
                }
            }
            if (!cachedGroup.empty()) {
                units.push_back(WorkUnit{std::move(cachedGroup), false, true});
            }
            pushChunked(plainGroup);
            pushChunked(bbrGroup);
            i = j;
        }
    }

    const unsigned workers =
        std::min<unsigned>(requested, std::max<std::size_t>(units.size(), 1));

    // Job tracing: observational only. Every leg event carries the owning
    // job's (traceHi, traceLo) and a child span id derived deterministically
    // from the canonical leg index, and finished legs feed the JobTraceStore
    // when that job is collecting. None of it touches slots, scheduling
    // decisions, or the reduction — the sweep JSON stays byte-identical.
    const bool traced = config.trace.valid();
    const auto stampTrace = [&](SweepLegEvent& event) {
        if (!traced) return;
        event.traceHi = config.trace.traceHi;
        event.traceLo = config.trace.traceLo;
        event.spanId = obs::childSpanId(config.trace, event.leg);
    };
    const auto recordLegSpan = [&](std::size_t index, unsigned workerId,
                                   std::uint64_t startNs, std::uint64_t durationNs,
                                   bool replayed, bool cached, bool linkFailed) {
        if (!traced || !obs::JobTraceStore::collecting()) return;
        const Leg& leg = legs[index];
        obs::JobSpan span;
        span.name = "leg";
        span.spanId = obs::childSpanId(config.trace, index);
        span.parentSpanId = config.trace.spanId;
        span.startNs = startNs;
        span.durationNs = durationNs;
        span.worker = workerId;
        span.leg = true;
        span.benchmark = contexts[leg.benchmark].name;
        span.scheme = std::string(schemeName(schemes[leg.scheme]));
        span.voltageMv = mv(points[leg.point].voltage);
        span.trial = leg.trial;
        span.replayed = replayed;
        span.cached = cached;
        span.linkFailed = linkFailed;
        obs::JobTraceStore::global().record(config.trace, std::move(span));
    };

    // Leg lifecycle: every leg is announced once, in canonical order, from
    // the coordinating thread before any worker starts.
    if (config.onLegEvent) {
        for (std::size_t i = 0; i < legs.size(); ++i) {
            const Leg& leg = legs[i];
            SweepLegEvent event;
            event.phase = SweepLegEvent::Phase::Enqueued;
            event.leg = i;
            event.worker = 0;
            event.benchmark = contexts[leg.benchmark].name;
            event.scheme = schemes[leg.scheme];
            event.voltageMv = mv(points[leg.point].voltage);
            event.trial = leg.trial;
            event.replayed = contexts[leg.benchmark].traces.canReplay(schemes[leg.scheme]);
            event.cached = fromStore[i] != 0;
            stampTrace(event);
            config.onLegEvent(event);
        }
    }

    // --- Phase 3: workers pull legs and fill pre-sized slots (cached slots
    // were already filled by the phase-2a probe). ---
    std::vector<std::exception_ptr> legErrors(legs.size());
    std::vector<std::atomic<std::size_t>> pendingPerBenchmark(benchmarks.size());
    for (const Leg& leg : legs) {
        pendingPerBenchmark[leg.benchmark].fetch_add(1, std::memory_order_relaxed);
    }
    std::atomic<std::size_t> legsCompleted{0};
    std::atomic<std::size_t> legsReplayed{0};
    std::atomic<std::size_t> legsExecuted{0};
    std::atomic<std::size_t> legsCached{0};
    std::size_t benchmarksCompleted = 0;
    std::mutex progressMutex;

    // One chip = one (point, trial): all defect-tolerant scheme legs across
    // every benchmark run against the same pre-drawn map pair. The whole
    // point's trials are drawn in one batched pass on first touch.
    std::vector<PointMapSlot> chipMapCache(points.size());
    const auto chipMapsFor = [&](std::uint32_t pointIdx, std::uint32_t trial,
                                 const SystemConfig& sys) -> const detail::LegFaultMaps* {
        PointMapSlot& slot = chipMapCache[pointIdx];
        std::call_once(slot.once, [&] {
            std::vector<std::uint64_t> seeds(config.trials);
            for (std::uint32_t t = 0; t < config.trials; ++t) {
                seeds[t] = chipSeed(config.baseSeed, mv(points[pointIdx].voltage), t);
            }
            slot.maps = detail::generateChipFaultMapsBatch(sys, seeds);
        });
        return &slot.maps[trial];
    };

    // Deterministic per-leg metric harvest, shared by the single-leg and
    // batched paths (the computation is per lane either way).
    const auto harvestLeg = [&](const Leg& leg, const SystemResult& res) {
        const BenchmarkContext& ctx = contexts[leg.benchmark];
        LegResult metrics;
        metrics.linkFailed = res.linkFailed;
        metrics.forensics = res.forensics;
        if (!res.linkFailed) {
            // Functional correctness: every scheme must compute the same
            // answer as the 760mV reference.
            if (res.run.halted && ctx.ref760.run.halted &&
                res.checksum != ctx.ref760.checksum) {
                throw std::logic_error("checksum mismatch in '" + ctx.name +
                                       "': scheme corrupted execution");
            }
            const SystemResult& df = ctx.defectFree[leg.point];
            metrics.normRuntime = res.runtimeSeconds / df.runtimeSeconds;
            metrics.l2PerKilo = res.run.l2AccessesPerKilo();
            metrics.normEpi = res.epi / ctx.ref760.epi;
            const auto cycles = static_cast<double>(res.run.cycles);
            metrics.busyFrac = static_cast<double>(res.run.busyCycles()) / cycles;
            metrics.ifetchFrac = static_cast<double>(res.run.ifetchStallCycles) / cycles;
            metrics.dmemFrac = static_cast<double>(res.run.dmemStallCycles) / cycles;
            metrics.branchFrac = static_cast<double>(res.run.branchStallCycles) / cycles;
        }
        return metrics;
    };

    const auto finishBenchmark = [&](std::uint32_t b) {
        const std::scoped_lock lock(progressMutex);
        ++benchmarksCompleted;
        if (config.onProgress) {
            SweepProgress tick;
            tick.completed = benchmarksCompleted;
            tick.total = benchmarks.size();
            tick.benchmark = contexts[b].name;
            tick.legsCompleted = legsCompleted.load(std::memory_order_relaxed);
            tick.legsTotal = legs.size();
            tick.legsReplayed = legsReplayed.load(std::memory_order_relaxed);
            tick.legsExecuted = legsExecuted.load(std::memory_order_relaxed);
            tick.legsCached = legsCached.load(std::memory_order_relaxed);
            tick.workers = workers;
            config.onProgress(tick);
        }
    };

    // Leg-granular progress: completion-driven ticks, throttled so at most
    // one fires per kLegTickPeriodNs across all workers (CAS claims the
    // window). Pure observation — the sweep JSON stays byte-identical.
    std::atomic<std::uint64_t> lastLegTickNs{steadyNowNs()};
    const auto legTick = [&](unsigned workerCount) {
        if (!config.onProgress) return;
        const std::uint64_t now = steadyNowNs();
        std::uint64_t last = lastLegTickNs.load(std::memory_order_relaxed);
        if (now - last < kLegTickPeriodNs ||
            !lastLegTickNs.compare_exchange_strong(last, now,
                                                   std::memory_order_relaxed)) {
            return;
        }
        const std::scoped_lock lock(progressMutex);
        SweepProgress tick;
        tick.boundary = false;
        tick.completed = benchmarksCompleted;
        tick.total = benchmarks.size();
        tick.legsCompleted = legsCompleted.load(std::memory_order_relaxed);
        tick.legsTotal = legs.size();
        tick.legsReplayed = legsReplayed.load(std::memory_order_relaxed);
        tick.legsExecuted = legsExecuted.load(std::memory_order_relaxed);
        tick.legsCached = legsCached.load(std::memory_order_relaxed);
        tick.workers = workerCount;
        config.onProgress(tick);
    };

    std::atomic<std::uint64_t> activeWorkers{0};

    const auto runLeg = [&](std::size_t index, unsigned workerId, LegCounters& counters) {
        activeWorkers.fetch_add(1, std::memory_order_relaxed);
        const Leg& leg = legs[index];
        const BenchmarkContext& ctx = contexts[leg.benchmark];
        const OperatingPoint& point = points[leg.point];
        const SchemeKind scheme = schemes[leg.scheme];
        const bool replayed = ctx.traces.canReplay(scheme);
        const bool hooked = static_cast<bool>(config.onLegEvent);
        SweepLegEvent event;
        std::uint64_t startedNs = 0;
        if (hooked || traced) startedNs = steadyNowNs();
        if (hooked) {
            event.leg = index;
            event.worker = workerId;
            event.benchmark = ctx.name;
            event.scheme = scheme;
            event.voltageMv = mv(point.voltage);
            event.trial = leg.trial;
            event.replayed = replayed;
            stampTrace(event);
            event.phase = SweepLegEvent::Phase::Started;
            config.onLegEvent(event);
        }
        LegResult metrics; // hoisted so the Finished event can report the outcome
        try {
            // ci.sh negative control: trip a contract at the requested
            // canonical leg (1-based) to exercise the flight recorder's
            // contract-hook dump path end to end.
            VC_CHECK(config.failAtLeg == 0 ||
                     index + 1 != static_cast<std::size_t>(config.failAtLeg));
            SystemConfig sys = baseTemplate;
            sys.scheme = scheme;
            sys.op = point;
            sys.faultMapSeed = chipSeed(config.baseSeed, mv(point.voltage), leg.trial);

            const detail::LegFaultMaps* chipMaps = nullptr;
            if (!detail::schemeIsDefectFree(scheme)) {
                chipMaps = chipMapsFor(leg.point, leg.trial, sys);
            }

            const SystemResult res =
                replayed ? replaySystem(&ctx.bbrModule, sys, ctx.traces, chipMaps)
                         : simulateSystem(ctx.module, &ctx.bbrModule, sys, chipMaps);

            metrics = harvestLeg(leg, res);
            slots[index] = metrics;
            counters.record(scheme, mv(point.voltage), metrics.linkFailed);
            if (cacheEnabled) config.resultSource->store(legKeys[index], metrics);
        } catch (...) {
            legErrors[index] = std::current_exception();
        }
        counters.legDone(replayed);
        legsCompleted.fetch_add(1, std::memory_order_relaxed);
        (replayed ? legsReplayed : legsExecuted).fetch_add(1, std::memory_order_relaxed);
        const std::uint64_t legNs = (hooked || traced) ? steadyNowNs() - startedNs : 0;
        if (hooked) {
            event.phase = SweepLegEvent::Phase::Finished;
            event.durationNs = legNs;
            event.linkFailed = metrics.linkFailed;
            event.failCause = metrics.forensics.failCause;
            config.onLegEvent(event);
        }
        recordLegSpan(index, workerId, startedNs, legNs, replayed,
                      /*cached=*/false, metrics.linkFailed);
        if (pendingPerBenchmark[leg.benchmark].fetch_sub(1, std::memory_order_acq_rel) ==
            1) {
            finishBenchmark(leg.benchmark);
        } else {
            legTick(workers);
        }
        activeWorkers.fetch_sub(1, std::memory_order_relaxed);
    };

    // One TrialBatch: stream the group's shared tape through every lane,
    // then run the same per-leg bookkeeping runLeg does, in canonical order
    // within the unit. A failure inside replayBatch itself (before lanes
    // have results) is charged to the unit's first leg — first-error-wins
    // reduction surfaces it deterministically.
    const auto runBatch = [&](const WorkUnit& unit, unsigned workerId,
                              LegCounters& counters) {
        activeWorkers.fetch_add(1, std::memory_order_relaxed);
        const bool hooked = static_cast<bool>(config.onLegEvent);
        const std::uint64_t startedNs = steadyNowNs();
        const auto fillEvent = [&](SweepLegEvent& event, std::size_t index) {
            const Leg& leg = legs[index];
            event.leg = index;
            event.worker = workerId;
            event.benchmark = contexts[leg.benchmark].name;
            event.scheme = schemes[leg.scheme];
            event.voltageMv = mv(points[leg.point].voltage);
            event.trial = leg.trial;
            event.replayed = true;
            stampTrace(event);
        };
        if (hooked) {
            for (const std::size_t index : unit.legIdx) {
                SweepLegEvent event;
                fillEvent(event, index);
                event.phase = SweepLegEvent::Phase::Started;
                config.onLegEvent(event);
            }
        }
        std::vector<BatchLane> lanes(unit.legIdx.size());
        bool ran = false;
        try {
            for (std::size_t i = 0; i < unit.legIdx.size(); ++i) {
                const Leg& leg = legs[unit.legIdx[i]];
                // Same negative-control contract as runLeg — a batched leg
                // must still be able to trip the flight recorder.
                VC_CHECK(config.failAtLeg == 0 ||
                         unit.legIdx[i] + 1 !=
                             static_cast<std::size_t>(config.failAtLeg));
                SystemConfig sys = baseTemplate;
                sys.scheme = schemes[leg.scheme];
                sys.op = points[leg.point];
                sys.faultMapSeed =
                    chipSeed(config.baseSeed, mv(points[leg.point].voltage), leg.trial);
                lanes[i].config = sys;
                if (!detail::schemeIsDefectFree(sys.scheme)) {
                    lanes[i].chipMaps = chipMapsFor(leg.point, leg.trial, sys);
                }
            }
            const BenchmarkContext& ctx = contexts[legs[unit.legIdx.front()].benchmark];
            replayBatch(&ctx.bbrModule, ctx.traces, lanes);
            ran = true;
        } catch (...) {
            legErrors[unit.legIdx.front()] = std::current_exception();
        }
        counters.batchDone(unit.legIdx.size());
        const std::uint64_t laneNs =
            (steadyNowNs() - startedNs) / unit.legIdx.size();
        for (std::size_t i = 0; i < unit.legIdx.size(); ++i) {
            const std::size_t index = unit.legIdx[i];
            const Leg& leg = legs[index];
            LegResult metrics;
            if (ran) {
                try {
                    metrics = harvestLeg(leg, lanes[i].result);
                    slots[index] = metrics;
                    counters.record(schemes[leg.scheme], mv(points[leg.point].voltage),
                                    metrics.linkFailed);
                    if (cacheEnabled) config.resultSource->store(legKeys[index], metrics);
                } catch (...) {
                    legErrors[index] = std::current_exception();
                }
            }
            counters.legDone(/*replayed=*/true);
            legsCompleted.fetch_add(1, std::memory_order_relaxed);
            legsReplayed.fetch_add(1, std::memory_order_relaxed);
            if (hooked) {
                SweepLegEvent event;
                fillEvent(event, index);
                event.phase = SweepLegEvent::Phase::Finished;
                // Wall time attributed evenly: the lanes ran interleaved
                // through the shared tape, not sequentially.
                event.durationNs = laneNs;
                event.linkFailed = metrics.linkFailed;
                event.failCause = metrics.forensics.failCause;
                config.onLegEvent(event);
            }
            // Same even attribution on the trace timeline: the lanes tile
            // the batch's wall window sequentially.
            recordLegSpan(index, workerId, startedNs + i * laneNs, laneNs,
                          /*replayed=*/true, /*cached=*/false, metrics.linkFailed);
            if (pendingPerBenchmark[leg.benchmark].fetch_sub(
                    1, std::memory_order_acq_rel) == 1) {
                finishBenchmark(leg.benchmark);
            } else {
                legTick(workers);
            }
        }
        activeWorkers.fetch_sub(1, std::memory_order_relaxed);
    };

    // One cached group: the legs' slots are already filled from the store —
    // only the bookkeeping a simulated leg would have done remains (events,
    // counters, progress), in canonical order within the unit.
    const auto runCached = [&](const WorkUnit& unit, unsigned workerId,
                               LegCounters& counters) {
        activeWorkers.fetch_add(1, std::memory_order_relaxed);
        const bool hooked = static_cast<bool>(config.onLegEvent);
        for (const std::size_t index : unit.legIdx) {
            const Leg& leg = legs[index];
            SweepLegEvent event;
            std::uint64_t startedNs = 0;
            if (hooked || traced) startedNs = steadyNowNs();
            if (hooked) {
                event.leg = index;
                event.worker = workerId;
                event.benchmark = contexts[leg.benchmark].name;
                event.scheme = schemes[leg.scheme];
                event.voltageMv = mv(points[leg.point].voltage);
                event.trial = leg.trial;
                event.cached = true;
                stampTrace(event);
                event.phase = SweepLegEvent::Phase::Started;
                config.onLegEvent(event);
            }
            counters.record(schemes[leg.scheme], mv(points[leg.point].voltage),
                            slots[index].linkFailed);
            counters.legDoneCached();
            legsCompleted.fetch_add(1, std::memory_order_relaxed);
            legsCached.fetch_add(1, std::memory_order_relaxed);
            const std::uint64_t legNs =
                (hooked || traced) ? steadyNowNs() - startedNs : 0;
            if (hooked) {
                event.phase = SweepLegEvent::Phase::Finished;
                event.durationNs = legNs;
                event.linkFailed = slots[index].linkFailed;
                event.failCause = slots[index].forensics.failCause;
                config.onLegEvent(event);
            }
            // Store hits render as zero-cost spans; legNs (the lookup/
            // bookkeeping wall time) survives as the span's wallNs arg.
            recordLegSpan(index, workerId, startedNs, legNs,
                          /*replayed=*/false, /*cached=*/true,
                          slots[index].linkFailed);
            if (pendingPerBenchmark[leg.benchmark].fetch_sub(
                    1, std::memory_order_acq_rel) == 1) {
                finishBenchmark(leg.benchmark);
            } else {
                legTick(workers);
            }
        }
        activeWorkers.fetch_sub(1, std::memory_order_relaxed);
    };

    const auto runUnit = [&](std::size_t unitIndex, unsigned workerId,
                             LegCounters& counters) {
        const WorkUnit& unit = units[unitIndex];
        if (unit.cached) {
            runCached(unit, workerId, counters);
        } else if (unit.batched) {
            runBatch(unit, workerId, counters);
        } else {
            runLeg(unit.legIdx.front(), workerId, counters);
        }
    };

    // Worker-utilization / queue-depth sampler, attached only when someone is
    // watching (profiling enabled or a trace sink installed): its background
    // thread reads the executor's atomics and never touches leg state, so it
    // cannot perturb the deterministic result.
    std::optional<obs::UtilizationSampler> sampler;
    if (obs::Profiler::enabled() || obs::traceSink() != nullptr) {
        const std::uint64_t totalLegs = legs.size();
        sampler.emplace([&activeWorkers, &legsCompleted, workers, totalLegs] {
            const std::uint64_t active = activeWorkers.load(std::memory_order_relaxed);
            const std::uint64_t done = legsCompleted.load(std::memory_order_relaxed);
            const std::uint64_t inFlight = done + active;
            return obs::UtilizationSampler::Sample{
                active, workers, totalLegs > inFlight ? totalLegs - inFlight : 0};
        });
    }

    const auto started = std::chrono::steady_clock::now();
    if (workers <= 1) {
        LegCounters counters;
        for (std::size_t i = 0; i < units.size(); ++i) runUnit(i, 0, counters);
    } else {
        std::atomic<std::size_t> next{0};
        std::vector<std::thread> team;
        team.reserve(workers);
        for (unsigned t = 0; t < workers; ++t) {
            team.emplace_back([&, t] {
                LegCounters counters;
                while (true) {
                    const std::size_t index = next.fetch_add(1, std::memory_order_relaxed);
                    if (index >= units.size()) return;
                    runUnit(index, t, counters);
                }
            });
        }
        for (auto& worker : team) worker.join();
    }
    sampler.reset(); // joins the sampler thread and emits the final sample
    const double elapsed =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - started).count();
    if (!legs.empty() && elapsed > 0.0) {
        obs::MetricsRegistry& reg = obs::MetricsRegistry::global();
        reg.set("sweep.legs_per_sec", {}, static_cast<double>(legs.size()) / elapsed);
        reg.set("sweep.workers", {}, static_cast<double>(workers));
    }

    // A benchmark that contributed no legs (e.g. trials == 0) still gets its
    // completion tick, in benchmark order, for parity with the old executor.
    for (std::uint32_t b = 0; b < benchmarks.size(); ++b) {
        if (pendingPerBenchmark[b].load(std::memory_order_relaxed) == 0 &&
            std::none_of(legs.begin(), legs.end(),
                         [b](const Leg& leg) { return leg.benchmark == b; })) {
            finishBenchmark(b);
        }
    }

    // First leg error wins, by canonical leg order — deterministic for any
    // thread count (the old executor surfaced whichever thread threw first).
    for (const std::exception_ptr& error : legErrors) {
        if (error) std::rethrow_exception(error);
    }

    // --- Phase 4: deterministic reduction in canonical leg order. ---
    // Every RunningStats sees its samples in exactly this sequence, so the
    // aggregated floating-point state — and the exported JSON — is
    // bit-identical regardless of how the legs were scheduled.
    const obs::Span reduceSpan("reduce");
    SweepResult result;
    for (std::size_t i = 0; i < legs.size(); ++i) {
        const Leg& leg = legs[i];
        const SchemeKind scheme = schemes[leg.scheme];
        const int voltageMv = mv(points[leg.point].voltage);
        accumulate(result.cells[{scheme, voltageMv}], slots[i]);
        accumulate(result.perBenchmark[{contexts[leg.benchmark].name, scheme, voltageMv}],
                   slots[i]);
        const LegForensics& forensics = slots[i].forensics;
        if (forensics.hasFfw || forensics.hasBbr ||
            forensics.failCause != LinkFailCause::None) {
            accumulate(result.forensics[{scheme, voltageMv}], forensics);
        }
    }
    return result;
}

} // namespace voltcache
