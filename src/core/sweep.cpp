#include "core/sweep.h"

#include <atomic>
#include <cmath>
#include <mutex>
#include <stdexcept>
#include <thread>

#include "common/contracts.h"
#include "obs/metrics.h"

namespace voltcache {

namespace {

int mv(Voltage v) { return static_cast<int>(std::lround(v.millivolts())); }

/// Chip seed: identical for every scheme and benchmark so comparisons are
/// paired; distinct per (voltage, trial).
std::uint64_t chipSeed(std::uint64_t base, int voltageMv, std::uint32_t trial) {
    SplitMix64 mixer(base ^ (static_cast<std::uint64_t>(voltageMv) << 32) ^ trial);
    return mixer.next();
}

struct LegMetrics {
    bool linkFailed = false;
    double normRuntime = 0.0;
    double l2PerKilo = 0.0;
    double normEpi = 0.0;
    double busyFrac = 0.0;
    double ifetchFrac = 0.0;
    double dmemFrac = 0.0;
    double branchFrac = 0.0;
};

void accumulate(SweepCell& cell, const LegMetrics& metrics) {
    if (metrics.linkFailed) {
        ++cell.linkFailures;
        return;
    }
    ++cell.runs;
    cell.normRuntime.add(metrics.normRuntime);
    cell.l2PerKilo.add(metrics.l2PerKilo);
    cell.normEpi.add(metrics.normEpi);
    cell.busyFrac.add(metrics.busyFrac);
    cell.ifetchFrac.add(metrics.ifetchFrac);
    cell.dmemFrac.add(metrics.dmemFrac);
    cell.branchFrac.add(metrics.branchFrac);
}

} // namespace

const SweepCell& SweepResult::cell(SchemeKind kind, Voltage v) const {
    const auto it = cells.find({kind, mv(v)});
    if (it == cells.end()) {
        throw std::out_of_range("SweepResult::cell: no data for this (scheme, voltage)");
    }
    return it->second;
}

std::vector<SchemeKind> paperSchemes() {
    return {SchemeKind::Robust8T,  SchemeKind::SimpleWordDisable, SchemeKind::WilkersonPlus,
            SchemeKind::FbaPlus,   SchemeKind::IdcPlus,           SchemeKind::FfwBbr};
}

SweepResult runSweep(const SweepConfig& config) {
    std::vector<std::string> benchmarks = config.benchmarks;
    if (benchmarks.empty()) {
        for (const auto& info : benchmarkList()) benchmarks.emplace_back(info.name);
    }
    std::vector<SchemeKind> schemes = config.schemes;
    if (schemes.empty()) schemes = paperSchemes();
    std::vector<OperatingPoint> points = config.points;
    if (points.empty()) {
        const auto low = DvfsTable::lowVoltagePoints();
        points.assign(low.begin(), low.end());
    }

    SweepResult result;
    std::mutex resultMutex;
    std::size_t completed = 0;

    auto runBenchmark = [&](const std::string& name) {
        // Per-(scheme, voltage) leg counters through the handle API: the
        // handles resolve to this worker thread's shard, so the hot loop
        // below never touches the registry lock or another thread's cells.
        struct LegCounters {
            obs::Counter runs;
            obs::Counter linkFailures;
        };
        std::map<std::pair<SchemeKind, int>, LegCounters> legCounters;
        auto countersFor = [&legCounters](SchemeKind scheme, int voltageMv) -> LegCounters& {
            const auto key = std::make_pair(scheme, voltageMv);
            auto it = legCounters.find(key);
            if (it == legCounters.end()) {
                obs::MetricsRegistry& reg = obs::MetricsRegistry::global();
                const obs::LabelList labels = {{"scheme", std::string(schemeName(scheme))},
                                               {"mv", std::to_string(voltageMv)}};
                it = legCounters
                         .emplace(key, LegCounters{reg.counter("sweep.runs", labels),
                                                   reg.counter("sweep.link_failures", labels)})
                         .first;
            }
            return it->second;
        };
        Module module = buildBenchmark(name, config.scale);
        Module bbrModule = module; // deep copy
        applyBbrTransforms(bbrModule, config.systemTemplate.maxBlockWords);

        // Conventional cache pinned at Vccmin = 760mV: the Fig. 12
        // normalization baseline (and the functional reference checksum).
        SystemConfig base = config.systemTemplate;
        base.scheme = SchemeKind::Conventional760;
        base.op = DvfsTable::vccminBaseline();
        base.maxInstructions = config.maxInstructions;
        const SystemResult ref760 = simulateSystem(module, nullptr, base);
        VC_ENSURES(!ref760.linkFailed);

        std::map<std::pair<SchemeKind, int>, SweepCell> localCells;
        std::map<std::tuple<std::string, SchemeKind, int>, SweepCell> localPerBench;

        for (const auto& point : points) {
            SystemConfig defectFree = base;
            defectFree.scheme = SchemeKind::DefectFree;
            defectFree.op = point;
            const SystemResult df = simulateSystem(module, nullptr, defectFree);

            for (const SchemeKind scheme : schemes) {
                for (std::uint32_t trial = 0; trial < config.trials; ++trial) {
                    SystemConfig leg = base;
                    leg.scheme = scheme;
                    leg.op = point;
                    leg.faultMapSeed = chipSeed(config.baseSeed, mv(point.voltage), trial);
                    const SystemResult res = simulateSystem(module, &bbrModule, leg);

                    LegMetrics metrics;
                    metrics.linkFailed = res.linkFailed;
                    if (!res.linkFailed) {
                        // Functional correctness: every scheme must compute
                        // the same answer as the 760mV reference.
                        if (res.run.halted && ref760.run.halted &&
                            res.checksum != ref760.checksum) {
                            throw std::logic_error("checksum mismatch in '" + name +
                                                   "': scheme corrupted execution");
                        }
                        metrics.normRuntime = res.runtimeSeconds / df.runtimeSeconds;
                        metrics.l2PerKilo = res.run.l2AccessesPerKilo();
                        metrics.normEpi = res.epi / ref760.epi;
                        const auto cycles = static_cast<double>(res.run.cycles);
                        metrics.busyFrac =
                            static_cast<double>(res.run.busyCycles()) / cycles;
                        metrics.ifetchFrac =
                            static_cast<double>(res.run.ifetchStallCycles) / cycles;
                        metrics.dmemFrac =
                            static_cast<double>(res.run.dmemStallCycles) / cycles;
                        metrics.branchFrac =
                            static_cast<double>(res.run.branchStallCycles) / cycles;
                    }
                    accumulate(localCells[{scheme, mv(point.voltage)}], metrics);
                    accumulate(localPerBench[{name, scheme, mv(point.voltage)}], metrics);
                    LegCounters& counters = countersFor(scheme, mv(point.voltage));
                    if (metrics.linkFailed) {
                        counters.linkFailures.add();
                    } else {
                        counters.runs.add();
                    }

                    // Defect-free kinds are deterministic: one trial suffices.
                    if (scheme == SchemeKind::Robust8T) break;
                }
            }
        }

        const std::scoped_lock lock(resultMutex);
        for (auto& [key, cell] : localCells) {
            SweepCell& global = result.cells[key];
            global.normRuntime.merge(cell.normRuntime);
            global.l2PerKilo.merge(cell.l2PerKilo);
            global.normEpi.merge(cell.normEpi);
            global.busyFrac.merge(cell.busyFrac);
            global.ifetchFrac.merge(cell.ifetchFrac);
            global.dmemFrac.merge(cell.dmemFrac);
            global.branchFrac.merge(cell.branchFrac);
            global.linkFailures += cell.linkFailures;
            global.runs += cell.runs;
        }
        for (auto& [key, cell] : localPerBench) result.perBenchmark[key] = cell;
        ++completed;
        if (config.onProgress) {
            config.onProgress(SweepProgress{completed, benchmarks.size(), name});
        }
    };

    unsigned threadCount = config.threads != 0 ? config.threads
                                               : std::thread::hardware_concurrency();
    if (threadCount == 0) threadCount = 4;
    threadCount = std::min<unsigned>(threadCount,
                                     static_cast<unsigned>(benchmarks.size()));

    if (threadCount <= 1) {
        for (const auto& name : benchmarks) runBenchmark(name);
    } else {
        std::vector<std::thread> workers;
        workers.reserve(threadCount);
        std::atomic<std::size_t> next{0};
        for (unsigned t = 0; t < threadCount; ++t) {
            workers.emplace_back([&] {
                while (true) {
                    const std::size_t index = next.fetch_add(1);
                    if (index >= benchmarks.size()) return;
                    runBenchmark(benchmarks[index]);
                }
            });
        }
        for (auto& worker : workers) worker.join();
    }
    return result;
}

} // namespace voltcache
