#include "core/system.h"

#include <algorithm>
#include <cmath>
#include <optional>
#include <string>

#include "analysis/verify.h"
#include "common/contracts.h"
#include "faults/fault_map.h"
#include "obs/metrics.h"
#include "obs/span.h"
#include "schemes/ffw.h"
#include "schemes/static_overheads.h"

namespace voltcache {

namespace detail {

void publishLegMetrics(const SystemConfig& config, const SystemResult& result) {
    obs::MetricsRegistry& reg = obs::MetricsRegistry::global();
    const obs::LabelList labels = {
        {"scheme", std::string(schemeName(config.scheme))},
        {"mv", std::to_string(static_cast<int>(std::lround(config.op.voltage.millivolts())))}};
    if (result.linkFailed) {
        reg.add("leg.link_failures", labels);
        return;
    }
    reg.add("leg.runs", labels);
    reg.add("sim.instructions", labels, result.run.instructions);
    reg.add("sim.cycles", labels, result.run.cycles);
    reg.add("sim.l2_accesses", labels, result.run.activity.l2Accesses);
    reg.add("l1i.accesses", labels, result.icacheStats.accesses);
    reg.add("l1i.hits", labels, result.icacheStats.hits);
    reg.add("l1i.word_misses", labels, result.icacheStats.wordMisses);
    reg.add("l1i.l2_reads", labels, result.icacheStats.l2Reads);
    reg.add("l1d.accesses", labels, result.dcacheStats.accesses);
    reg.add("l1d.hits", labels, result.dcacheStats.hits);
    reg.add("l1d.word_misses", labels, result.dcacheStats.wordMisses);
    reg.add("l1d.l2_reads", labels, result.dcacheStats.l2Reads);
    reg.add("link.gap_words", labels, result.linkStats.gapWords);
    reg.add("link.scan_restarts", labels, result.linkStats.scanRestarts);
    reg.add("link.wrap_arounds", labels, result.linkStats.wrapArounds);
}

LegFaultMaps generateChipFaultMaps(const SystemConfig& config) {
    const obs::Span span("mapgen");
    const CacheOrganization& org = config.l1Org;
    Rng rng(config.faultMapSeed);
    FaultMapGenerator generator{FailureModel{}, 32, config.faultRateScale};
    LegFaultMaps maps{generator.generate(rng, config.op.voltage, org.lines(),
                                         org.wordsPerBlock()),
                      FaultMap(org.lines(), org.wordsPerBlock())};
    maps.icache =
        generator.generate(rng, config.op.voltage, org.lines(), org.wordsPerBlock());
    return maps;
}

std::vector<LegFaultMaps> generateChipFaultMapsBatch(const SystemConfig& config,
                                                     std::span<const std::uint64_t> seeds) {
    const obs::Span span("mapgen");
    const CacheOrganization& org = config.l1Org;
    FaultMapGenerator generator{FailureModel{}, 32, config.faultRateScale};
    std::vector<Rng> rngs;
    rngs.reserve(seeds.size());
    for (const std::uint64_t seed : seeds) rngs.emplace_back(seed);
    // One pass per bit plane; each chip's RNG continues from its D-cache
    // draw into its I-cache draw, exactly as the sequential pair does.
    std::vector<FaultMap> dmaps =
        generator.generateBatch(rngs, config.op.voltage, org.lines(), org.wordsPerBlock());
    std::vector<FaultMap> imaps =
        generator.generateBatch(rngs, config.op.voltage, org.lines(), org.wordsPerBlock());
    std::vector<LegFaultMaps> chips;
    chips.reserve(seeds.size());
    for (std::size_t i = 0; i < seeds.size(); ++i) {
        chips.push_back(LegFaultMaps{std::move(dmaps[i]), std::move(imaps[i])});
    }
    return chips;
}

LegFaultMaps generateLegFaultMaps(const SystemConfig& config) {
    const CacheOrganization& org = config.l1Org;

    // One fault map per L1 cache, drawn from the chip's seed at this DVFS
    // point. Defect-free schemes get clean maps (and 760mV is clean by
    // construction: P_fail there is ~1e-8.4 per bit).
    if (schemeIsDefectFree(config.scheme)) {
        return LegFaultMaps{FaultMap(org.lines(), org.wordsPerBlock()),
                            FaultMap(org.lines(), org.wordsPerBlock())};
    }
    return generateChipFaultMaps(config);
}

void finalizeLegResult(const SystemConfig& config, const SchemePair& pair,
                       const LegFaultMaps& maps, SystemResult& result) {
    result.icacheStats = pair.icache->stats();
    result.dcacheStats = pair.dcache->stats();

    // Forensic harvest — shared by the execute and replay paths, so the two
    // modes produce byte-identical distributions by construction.
    if (const auto* ffw = dynamic_cast<const FfwDCache*>(pair.dcache.get())) {
        result.forensics.hasFfw = true;
        for (std::uint32_t line = 0; line < maps.dcache.lines(); ++line) {
            const std::uint32_t freeWords = maps.dcache.faultFreeCount(line);
            ++result.forensics.ffwWindowSize[std::min<std::size_t>(
                freeWords, result.forensics.ffwWindowSize.size() - 1)];
        }
        result.forensics.ffwRecenterDistance = ffw->recenterDistances();
        for (const std::uint64_t count : result.forensics.ffwRecenterDistance) {
            result.forensics.ffwRecenters += count;
        }
    }
    if (pair.needsBbrLinking) {
        result.forensics.hasBbr = true;
        for (const FaultFreeChunk& chunk : maps.icache.faultFreeChunks()) {
            ++result.forensics.bbrChunkWords[forensicsLog2Bucket(chunk.length)];
        }
        for (std::size_t i = 0; i < result.forensics.bbrDisplacement.size(); ++i) {
            result.forensics.bbrDisplacement[i] = result.linkStats.scanHist[i];
        }
        result.forensics.bbrBlocksPlaced = result.linkStats.blocksPlaced;
    }

    // Every L2 read a scheme charges to itself (L1Stats::l2Reads) must have
    // been returned to the simulator via AccessResult::l2Reads and folded
    // into the activity counts — if these drift, the energy model and the
    // miss-ratio figures are talking about different machines.
    VC_CHECK(result.icacheStats.l2Reads + result.dcacheStats.l2Reads ==
             result.run.activity.l2Accesses);

    const EnergyModel energyModel(config.energy);
    result.energyBreakdown = energyModel.energyOf(result.run.activity, config.op,
                                                  pair.l1StaticFactor, pair.l1DynamicFactor);
    result.epi = result.energyBreakdown.total() /
                 static_cast<double>(result.run.activity.instructions);
    result.runtimeSeconds =
        static_cast<double>(result.run.cycles) * config.op.frequency.periodSeconds();
    publishLegMetrics(config, result);
}

} // namespace detail

std::uint32_t dramLatencyCycles(double dramLatencyNs, Frequency f) noexcept {
    return static_cast<std::uint32_t>(
        std::lround(dramLatencyNs * 1e-9 * f.hertz()));
}

SystemResult simulateSystem(const Module& module, const Module* bbrModule,
                            const SystemConfig& config,
                            const detail::LegFaultMaps* chipMaps) {
    SystemResult result;
    const CacheOrganization& org = config.l1Org;

    std::optional<detail::LegFaultMaps> local;
    if (chipMaps == nullptr || detail::schemeIsDefectFree(config.scheme)) {
        local.emplace(detail::generateLegFaultMaps(config));
    }
    const detail::LegFaultMaps& maps = local.has_value() ? *local : *chipMaps;

    L2Cache::Config l2Config;
    l2Config.dramLatencyCycles = dramLatencyCycles(config.dramLatencyNs, config.op.frequency);
    L2Cache l2(l2Config);

    SchemePair pair = makeSchemes(config.scheme, org, maps.dcache, maps.icache, l2);

    std::optional<LinkOutput> linked;
    try {
        if (pair.needsBbrLinking) {
            VC_EXPECTS(bbrModule != nullptr);
            LinkOptions options;
            options.bbrPlacement = true;
            options.icacheFaultMap = &maps.icache;
            // Statically prove the placement before any simulation: the
            // runtime PlacementViolation path never fires on verified images.
            linked = analysis::linkVerified(*bbrModule, options);
        } else {
            linked = link(module);
        }
    } catch (const LinkError& e) {
        // No fault-free chunk large enough for some basic block: this chip
        // cannot run BBR at this voltage — a yield loss the Monte Carlo
        // aggregation counts (attributed by cause) rather than a simulation
        // result.
        result.linkFailed = true;
        result.forensics.failCause = e.cause();
        detail::publishLegMetrics(config, result);
        return result;
    }
    result.linkStats = linked->stats;

    PipelineConfig pipeline = config.pipeline;
    pipeline.maxInstructions = config.maxInstructions;
    const Module& running = pair.needsBbrLinking ? *bbrModule : module;
    Simulator simulator(linked->image, running.data, *pair.icache, *pair.dcache, pipeline);
    for (TraceObserver* observer : config.observers) simulator.addObserver(observer);
    result.run = simulator.run();
    result.checksum = simulator.reg(1);
    detail::finalizeLegResult(config, pair, maps, result);
    return result;
}

} // namespace voltcache
