#include "core/system.h"

#include <cmath>
#include <optional>

#include "analysis/verify.h"
#include "common/contracts.h"
#include "faults/fault_map.h"
#include "schemes/static_overheads.h"

namespace voltcache {

std::uint32_t dramLatencyCycles(double dramLatencyNs, Frequency f) noexcept {
    return static_cast<std::uint32_t>(
        std::lround(dramLatencyNs * 1e-9 * f.hertz()));
}

SystemResult simulateSystem(const Module& module, const Module* bbrModule,
                            const SystemConfig& config) {
    SystemResult result;
    const CacheOrganization& org = config.l1Org;

    // One fault map per L1 cache, drawn from the chip's seed at this DVFS
    // point. Defect-free schemes get clean maps (and 760mV is clean by
    // construction: P_fail there is ~1e-8.4 per bit).
    Rng rng(config.faultMapSeed);
    FaultMapGenerator generator{FailureModel{}};
    const bool defectFree = config.scheme == SchemeKind::DefectFree ||
                            config.scheme == SchemeKind::Conventional760 ||
                            config.scheme == SchemeKind::Robust8T;
    FaultMap dcacheMap(org.lines(), org.wordsPerBlock());
    FaultMap icacheMap(org.lines(), org.wordsPerBlock());
    if (!defectFree) {
        dcacheMap = generator.generate(rng, config.op.voltage, org.lines(),
                                       org.wordsPerBlock());
        icacheMap = generator.generate(rng, config.op.voltage, org.lines(),
                                       org.wordsPerBlock());
    }

    L2Cache::Config l2Config;
    l2Config.dramLatencyCycles = dramLatencyCycles(config.dramLatencyNs, config.op.frequency);
    L2Cache l2(l2Config);

    SchemePair pair = makeSchemes(config.scheme, org, dcacheMap, icacheMap, l2);

    std::optional<LinkOutput> linked;
    try {
        if (pair.needsBbrLinking) {
            VC_EXPECTS(bbrModule != nullptr);
            LinkOptions options;
            options.bbrPlacement = true;
            options.icacheFaultMap = &icacheMap;
            // Statically prove the placement before any simulation: the
            // runtime PlacementViolation path never fires on verified images.
            linked = analysis::linkVerified(*bbrModule, options);
        } else {
            linked = link(module);
        }
    } catch (const LinkError&) {
        // No fault-free chunk large enough for some basic block: this chip
        // cannot run BBR at this voltage — a yield loss the Monte Carlo
        // aggregation counts rather than a simulation result.
        result.linkFailed = true;
        return result;
    }
    result.linkStats = linked->stats;

    PipelineConfig pipeline = config.pipeline;
    pipeline.maxInstructions = config.maxInstructions;
    const Module& running = pair.needsBbrLinking ? *bbrModule : module;
    Simulator simulator(linked->image, running.data, *pair.icache, *pair.dcache, pipeline);
    result.run = simulator.run();
    result.checksum = simulator.reg(1);
    result.icacheStats = pair.icache->stats();
    result.dcacheStats = pair.dcache->stats();

    const EnergyModel energyModel(config.energy);
    result.energyBreakdown = energyModel.energyOf(result.run.activity, config.op,
                                                  pair.l1StaticFactor, pair.l1DynamicFactor);
    result.epi = result.energyBreakdown.total() /
                 static_cast<double>(result.run.activity.instructions);
    result.runtimeSeconds =
        static_cast<double>(result.run.cycles) * config.op.frequency.periodSeconds();
    return result;
}

} // namespace voltcache
