// Machine-readable result export: JSON renderings of the sweep and
// single-leg result structs (SweepResult / SweepCell / RunStats / L1Stats /
// LinkStats). The JSON layer reads the structs' public accessors only; the
// structs themselves stay plain aggregates.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "common/json.h"
#include "common/stats.h"
#include "core/sweep.h"
#include "core/system.h"
#include "obs/metrics.h"
#include "obs/span.h"

namespace voltcache {

/// Provenance attached to a sweep export. `version` defaults to the
/// configure-time git describe (pass a fixed string for golden tests).
struct SweepExportMeta {
    std::string version;
    std::uint64_t seed = 0;
    std::uint32_t trials = 0;
    std::string scale;
    std::vector<std::string> benchmarks;
    double ciLevel = 0.95;
    /// Optional extra top-level members appended before the closing brace
    /// (e.g. the analytic cross-check report: `json.key("analytic"); ...`).
    std::function<void(JsonWriter&)> extensions;
};

/// Emit {"n","mean","stddev","min","max","ciHalfWidth"} for one accumulator.
void writeJson(JsonWriter& json, const RunningStats& stats, double ciLevel = 0.95);
void writeJson(JsonWriter& json, const L1Stats& stats);
void writeJson(JsonWriter& json, const RunStats& stats);
void writeJson(JsonWriter& json, const LinkStats& stats);
void writeJson(JsonWriter& json, const SweepCell& cell, double ciLevel = 0.95);

/// Full sweep export: meta + per-(scheme, voltage) cells + per-benchmark
/// cells, each with CI half-widths for normEpi / normRuntime / l2PerKilo.
[[nodiscard]] std::string sweepResultToJson(const SweepResult& result,
                                            const SweepExportMeta& meta);

/// Single-leg export (CLI `run`/`stats` --json).
struct RunExportMeta {
    std::string version;
    std::string benchmark;
    std::string scheme;
    int voltageMv = 0;
    std::uint64_t seed = 0;
};
void writeJson(JsonWriter& json, const SystemResult& result);
[[nodiscard]] std::string systemResultToJson(const SystemResult& result,
                                             const RunExportMeta& meta);

/// Emit one cell's forensic distributions (FFW window/recenter histograms,
/// BBR chunk/displacement histograms, yield-loss cause counts).
void writeJson(JsonWriter& json, const CellForensics& cell);

/// Self-profile export (`voltcache sweep --profile`): per-span timing
/// aggregates plus a metrics-registry snapshot. `coverage` is the summed
/// span self-time divided by the measured wall time — the acceptance
/// criterion for "the profiler explains where the sweep went".
struct ProfileExportMeta {
    std::string version;
    double wallSeconds = 0.0;
    unsigned threads = 0;
};
[[nodiscard]] std::string profileToJson(const std::vector<obs::SpanStat>& spans,
                                        const std::vector<obs::MetricSnapshot>& metrics,
                                        const ProfileExportMeta& meta);

} // namespace voltcache
