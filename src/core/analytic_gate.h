// Bridge from a finished Monte Carlo sweep to the analytic cross-check
// (analysis/crosscheck.h): rebuilds each benchmark's BBR placement need,
// packages the sweep's forensic histograms and per-benchmark link outcomes
// as plain CellSamples, and runs every applicable statistical test against
// the closed-form FFW/BBR models. Shared by `voltcache sweep
// --analytic-check`, `voltcache model`, and the bench binaries' gate metric.
#pragma once

#include "analysis/crosscheck.h"
#include "core/sweep.h"

namespace voltcache {

/// Cross-check `result` (produced by runSweep(config)) against the analytic
/// models. The prediction always comes from the pristine FailureModel —
/// systemTemplate.faultRateScale deliberately corrupts only the sampler, so
/// a scaled sweep must fail this check (the ci.sh negative control).
[[nodiscard]] analysis::CrosscheckReport analyticCrosscheck(
    const SweepResult& result, const SweepConfig& config, double zThreshold = 6.0);

} // namespace voltcache
