// Record-once / replay-many Monte Carlo evaluation.
//
// A sweep leg's fault map and scheme change *timing*, never architectural
// values, so the logical access stream of a benchmark is invariant across
// trials at a fixed code layout. One execution-driven run per (benchmark,
// layout) records an ArchTrace (cpu/arch_trace.h); every subsequent trial
// streams that trace through the trial's fault maps, scheme state, L2 model
// and energy accounting via the shared timing kernel — skipping functional
// execution, memory, and (for fixed layouts) the branch predictor. Results
// are bit-identical to simulateSystem because the timing code is the same
// template instantiated over a different Driver.
//
// Two recorded layouts cover all schemes:
//   * plain — the untransformed module, conventionally linked; every
//     non-BBR scheme runs this exact image, so recorded predictor verdicts
//     are replayed as bits (the predictor is pc-indexed and layout-bound);
//   * bbr — the BBR-transformed twin, conventionally linked. A BBR trial
//     places blocks around the trial's I-cache faults, so replay translates
//     recording addresses section-by-section onto the trial layout and runs
//     a live BranchPredictor over the translated stream.
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "core/system.h"
#include "cpu/arch_trace.h"
#include "linker/linker.h"

namespace voltcache {

/// One recorded (trace, layout) pair. The image is the layout every address
/// in the trace refers to; replay fetches decoded instructions from it.
///
/// The compact delta/varint ArchTrace is deliberately the form replay walks
/// per leg: a Tiny-scale trace is a few tens of KB and stays resident in
/// the host's L1/L2 next to the simulated tag arrays. A pre-decoded flat
/// record stream (12 B/instruction) was measured slower end-to-end — the
/// decode ALU it saves is hidden by the host's out-of-order core, while its
/// ~600 KB/leg of streaming reads evict the timing model's working set.
struct ReplaySource {
    ArchTrace trace;
    LinkOutput link;
};

/// Per-benchmark recorded sources, shared read-only by all sweep workers.
struct TraceCache {
    std::unique_ptr<const ReplaySource> plain; ///< untransformed module
    std::unique_ptr<const ReplaySource> bbr;   ///< BBR twin (when any scheme needs it)

    [[nodiscard]] bool canReplay(SchemeKind kind) const noexcept {
        return (schemeNeedsBbrLinking(kind) ? bbr : plain) != nullptr;
    }
    [[nodiscard]] std::uint64_t residentBytes() const noexcept {
        return (plain != nullptr ? plain->trace.residentBytes() : 0) +
               (bbr != nullptr ? bbr->trace.residentBytes() : 0);
    }
};

/// Run one execution-driven leg of `module` under `recordConfig` with a
/// TraceRecorder attached and return the sealed trace plus a fresh
/// deterministic link of the same module (identical layout to the recording
/// run's). `recordConfig` must use a conventionally-linked scheme; its
/// result lands in `outResult` either way. Returns nullptr when the trace
/// exceeded `byteCap` — the caller falls back to execution-driven legs.
[[nodiscard]] std::unique_ptr<const ReplaySource> recordReplaySource(
    const Module& module, const SystemConfig& recordConfig, std::uint64_t byteCap,
    SystemResult& outResult);

/// Word-granular map from a recording image's addresses onto a trial
/// image's: both must place the same blocks/pools in the same order (same
/// module, different layout). Unplaced (gap) words map to 0xFFFFFFFF.
[[nodiscard]] std::vector<std::uint32_t> buildAddressTranslation(const Image& recording,
                                                                 const Image& trial);

/// Evaluate one leg from the recorded trace — the drop-in fast path for
/// simulateSystem. `bbrModule` is linked per trial when the scheme needs
/// BBR placement (LinkError folds into linkFailed yield loss, as in
/// execution); `cache.canReplay(config.scheme)` must hold and
/// `config.observers` must be empty (observers see no replayed run).
/// `chipMaps` has simulateSystem's sharing semantics (core/system.h).
[[nodiscard]] SystemResult replaySystem(const Module* bbrModule, const SystemConfig& config,
                                        const TraceCache& cache,
                                        const detail::LegFaultMaps* chipMaps = nullptr);

/// One lane of a TrialBatch: the per-trial inputs of one sweep leg and, on
/// return from replayBatch, its result. `config` and `chipMaps` have
/// replaySystem's exact semantics; `result` per lane is byte-identical to
/// `replaySystem(bbrModule, config, cache, chipMaps)`.
struct BatchLane {
    SystemConfig config;
    const detail::LegFaultMaps* chipMaps = nullptr;
    SystemResult result;
};

/// Stream one sealed ArchTrace through many fault maps simultaneously: the
/// trace is decoded once per chunk into a flat pre-lowered tape, then every
/// lane's timing state — scheme/tag arrays, L2 counters, energy inputs,
/// pipeline scoreboard — advances through that chunk before the next one is
/// decoded, so the decode cost is amortized across the batch and the tape
/// stays cache-hot. All lanes must share the benchmark (the trace) and
/// layout kind: every `config.scheme` either needs BBR linking (each lane
/// then links/translates/predicts per trial) or none does. Per-lane results
/// are byte-identical to per-trial replaySystem calls — the timing
/// semantics are the same runPipelineChunk template, fed by a tape-walking
/// driver instead of a cursor-walking one.
void replayBatch(const Module* bbrModule, const TraceCache& cache,
                 std::span<BatchLane> lanes);

} // namespace voltcache
