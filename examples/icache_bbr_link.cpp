// BBR link explorer: run the paper's Section IV-B tool chain on one
// benchmark and one chip — code transformations (Fig. 8), Algorithm 1
// placement against the I-cache fault map, and the placement verifier —
// then print a linker map excerpt and a disassembly sample.
//
//   $ ./icache_bbr_link [benchmark] [seed] [voltage_mV]
#include <cstdio>
#include <cstdlib>
#include <string>

#include "analysis/placement_prover.h"
#include "compiler/passes.h"
#include "isa/disasm.h"
#include "linker/linker.h"
#include "power/dvfs.h"
#include "workload/workload.h"

using namespace voltcache;

int main(int argc, char** argv) {
    const std::string benchmark = argc > 1 ? argv[1] : "basicmath";
    const std::uint64_t seed = argc > 2 ? std::strtoull(argv[2], nullptr, 0) : 1;
    const double mv = argc > 3 ? std::strtod(argv[3], nullptr) : 400.0;

    Module module = buildBenchmark(benchmark, WorkloadScale::Tiny);
    const std::uint32_t before = module.totalCodeWords();
    const TransformStats transforms = applyBbrTransforms(module);
    std::printf("BBR code transformation of '%s':\n", benchmark.c_str());
    std::printf("  jumps inserted at fall-throughs: %u\n", transforms.jumpsInserted);
    std::printf("  oversized blocks broken: %u (+%u pieces)\n", transforms.blocksBroken,
                transforms.piecesCreated);
    std::printf("  literal-pool slots moved into blocks: %u\n", transforms.literalsMoved);
    std::printf("  code size: %u -> %u words\n\n", before, module.totalCodeWords());

    const FaultMapGenerator generator;
    Rng rng(seed);
    const Voltage v = Voltage::fromMillivolts(mv);
    const FaultMap map = generator.generate(rng, v, 1024, 8);
    std::printf("chip seed %llu at %.0fmV: %u of 8192 I-cache words defective (%.1f%%)\n",
                static_cast<unsigned long long>(seed), mv, map.totalFaultyWords(),
                100.0 * map.totalFaultyWords() / map.totalWords());

    LinkOptions options;
    options.bbrPlacement = true;
    options.icacheFaultMap = &map;
    try {
        const LinkOutput out = link(module, options);
        std::printf("placed %u blocks, %u gap words inserted, image %u words "
                    "(largest block %u words)\n",
                    out.stats.blocksPlaced, out.stats.gapWords, out.stats.imageWords,
                    out.stats.largestBlockWords);
        std::printf("placement violations (defective words occupied): %u — must be 0\n",
                    countPlacementViolations(out.image, map));

        // The static prover (tools/vcverify) decides the same invariant over
        // the image CFG — reachable words only, with per-path diagnostics.
        const analysis::PlacementProof proof =
            analysis::provePlacement(out.image, map, &module);
        std::fputs(analysis::formatProof(proof).c_str(), stdout);
        std::printf("static proof: %s — %u reachable words, %u dead words\n\n",
                    proof.verified ? "VERIFIED" : "REJECTED", proof.reachableWords,
                    proof.deadWords);
        if (!proof.verified) return 1;

        std::printf("linker map (first 12 blocks):\n");
        std::printf("  %-10s %-8s %-6s %s\n", "address", "cacheword", "size", "block");
        for (std::size_t i = 0; i < out.image.placements().size() && i < 12; ++i) {
            const auto& p = out.image.placements()[i];
            const auto& fn = module.functions[p.functionIndex];
            std::printf("  0x%08x %-8u %-6u %s:%s\n", p.byteAddr, (p.byteAddr / 4) % 8192,
                        p.sizeWords(), fn.name.c_str(), fn.blocks[p.blockIndex].label.c_str());
        }
    } catch (const LinkError& e) {
        std::printf("placement FAILED: %s\n(counted as a yield loss in the Monte Carlo "
                    "harness)\n",
                    e.what());
        return 1;
    }

    std::printf("\ntransformed code sample (first 30 lines of the listing):\n");
    const std::string listing = disassemble(module);
    std::size_t pos = 0;
    for (int line = 0; line < 30 && pos < listing.size(); ++line) {
        const std::size_t next = listing.find('\n', pos);
        std::printf("%s\n", listing.substr(pos, next - pos).c_str());
        if (next == std::string::npos) break;
        pos = next + 1;
    }
    return 0;
}
