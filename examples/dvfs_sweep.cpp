// DVFS sweep: the paper's end-to-end story for one benchmark — walk every
// Table II operating point and show what each fault-tolerance scheme pays
// (runtime) and saves (energy per instruction) relative to the conventional
// cache pinned at Vccmin = 760mV.
//
//   $ ./dvfs_sweep [benchmark] [trials]
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "common/stats.h"
#include "common/table.h"
#include "core/system.h"
#include "workload/workload.h"

using namespace voltcache;

int main(int argc, char** argv) {
    const std::string benchmark = argc > 1 ? argv[1] : "adpcm";
    const std::uint32_t trials =
        argc > 2 ? static_cast<std::uint32_t>(std::strtoul(argv[2], nullptr, 0)) : 3;

    std::printf("DVFS sweep of '%s' (%u fault maps per point)\n\n", benchmark.c_str(),
                trials);
    Module module = buildBenchmark(benchmark, WorkloadScale::Small);
    Module bbrModule = module;
    applyBbrTransforms(bbrModule);

    SystemConfig base;
    base.scheme = SchemeKind::Conventional760;
    const SystemResult ref = simulateSystem(module, nullptr, base);
    std::printf("baseline: conventional 6T cache at 760mV/1607MHz — EPI %.1f pJ, "
                "runtime %.2f ms\n\n",
                ref.epi * 1e12, ref.runtimeSeconds * 1e3);

    const std::vector<SchemeKind> schemes = {
        SchemeKind::Robust8T, SchemeKind::SimpleWordDisable, SchemeKind::WilkersonPlus,
        SchemeKind::FbaPlus, SchemeKind::IdcPlus, SchemeKind::FfwBbr};

    TextTable table({"voltage", "scheme", "runtime (ms)", "EPI (pJ)", "EPI vs 760mV",
                     "L2/1k instr", "yield losses"});
    for (const auto& point : DvfsTable::lowVoltagePoints()) {
        for (const SchemeKind scheme : schemes) {
            RunningStats runtime;
            RunningStats epi;
            RunningStats l2k;
            std::uint32_t failures = 0;
            for (std::uint32_t trial = 0; trial < trials; ++trial) {
                SystemConfig config = base;
                config.scheme = scheme;
                config.op = point;
                config.faultMapSeed = 1000 + trial;
                const SystemResult result =
                    simulateSystem(module, &bbrModule, config);
                if (result.linkFailed) {
                    ++failures;
                    continue;
                }
                runtime.add(result.runtimeSeconds * 1e3);
                epi.add(result.epi * 1e12);
                l2k.add(result.run.l2AccessesPerKilo());
            }
            if (runtime.count() == 0) {
                table.addRow({formatDouble(point.voltage.millivolts(), 0) + "mV",
                              std::string(schemeName(scheme)), "-", "-", "-", "-",
                              std::to_string(failures)});
                continue;
            }
            table.addRow({formatDouble(point.voltage.millivolts(), 0) + "mV",
                          std::string(schemeName(scheme)), formatDouble(runtime.mean(), 3),
                          formatDouble(epi.mean(), 1),
                          formatPercent(epi.mean() / (ref.epi * 1e12) - 1.0),
                          formatDouble(l2k.mean(), 1), std::to_string(failures)});
        }
    }
    std::fputs(table.render().c_str(), stdout);
    std::printf("\nReading guide: runtime grows as the clock slows, but EPI falls with\n"
                "V^2 until a scheme's fault handling floods the L2 — the paper's\n"
                "ffw+bbr keeps both in check all the way to 400mV.\n");
    return 0;
}
