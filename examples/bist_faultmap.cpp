// The paper's deployment flow, end to end (Section IV preamble): run BIST
// over an SRAM array with manufacturing defects, record the discovered
// defective words in an off-chip fault map, reload that map at a DVFS
// switch, and link a program against it with BBR.
//
//   $ ./bist_faultmap [pBit] [seed]
#include <cstdio>
#include <cstdlib>
#include <sstream>

#include "compiler/passes.h"
#include "faults/bist.h"
#include "faults/fault_map_io.h"
#include "linker/linker.h"
#include "workload/workload.h"

using namespace voltcache;

int main(int argc, char** argv) {
    const double pBit = argc > 1 ? std::strtod(argv[1], nullptr) : 1e-2;
    const std::uint64_t seed = argc > 2 ? std::strtoull(argv[2], nullptr, 0) : 3;

    // 1. A 32KB I-cache data array with random stuck-at cell defects.
    Rng rng(seed);
    DefectiveSramArray array(1024, 8);
    const std::uint32_t injected = array.injectRandomDefects(rng, pBit);
    std::printf("array: 32KB (1024 x 8 words), %u stuck-at cells injected "
                "(p_bit = %.0e)\n",
                injected, pBit);

    // 2. March C- BIST discovers the defective words.
    const Bist::Result bist = Bist::run(array);
    std::printf("BIST: %llu writes + %llu reads -> %u defective words found\n",
                static_cast<unsigned long long>(bist.writes),
                static_cast<unsigned long long>(bist.reads),
                bist.map.totalFaultyWords());
    const FaultMap truth = array.groundTruthWordFaults();
    std::printf("ground truth: %u defective words — BIST %s\n", truth.totalFaultyWords(),
                bist.map == truth ? "found exactly the injected set"
                                  : "MISSED defects (bug!)");

    // 3. Store the map off-chip (here: the v1 text format) and reload it —
    //    what the processor does on every DVFS transition.
    const std::string stored = faultMapToString(bist.map);
    std::printf("stored fault map: %zu bytes; first rows:\n", stored.size());
    std::istringstream preview(stored);
    std::string line;
    for (int i = 0; i < 6 && std::getline(preview, line); ++i) {
        std::printf("    %s\n", line.c_str());
    }
    const FaultMap reloaded = faultMapFromString(stored);
    std::printf("reload round trip: %s\n\n",
                reloaded == bist.map ? "identical" : "MISMATCH (bug!)");

    // 4. Link a real program against the reloaded map with BBR.
    Module module = buildBenchmark("crc32", WorkloadScale::Tiny);
    applyBbrTransforms(module);
    LinkOptions options;
    options.bbrPlacement = true;
    options.icacheFaultMap = &reloaded;
    try {
        const LinkOutput out = link(module, options);
        std::printf("BBR link against the BIST map: %u blocks placed, %u gap words, "
                    "%u placement violations\n",
                    out.stats.blocksPlaced, out.stats.gapWords,
                    countPlacementViolations(out.image, reloaded));
    } catch (const LinkError& e) {
        std::printf("BBR link failed (yield loss at this defect density): %s\n", e.what());
    }
    return 0;
}
