// FFW explorer: watch the fault-free window mechanism of paper Figs. 4-5
// operate on a single cache set, step by step.
//
// Builds a small FFW data cache over a hand-crafted fault map, replays an
// access sequence, and prints the stored pattern, window, and word-remap
// table after every access — including the Fig. 4 example itself.
//
//   $ ./dcache_ffw_explorer
#include <cstdio>
#include <string>

#include "schemes/ffw.h"

using namespace voltcache;

namespace {

std::string patternString(std::uint32_t mask) {
    std::string bits;
    for (int w = 7; w >= 0; --w) bits += (mask >> w) & 1 ? '1' : '0';
    return bits;
}

void show(const FfwDCache& dcache, const FaultMap& map) {
    const auto window = dcache.windowOf(0, 0);
    std::printf("    fault pattern %s   stored pattern %s   window [%u, %u)\n",
                patternString(map.lineFaultMask(0)).c_str(),
                patternString(dcache.storedPattern(0, 0)).c_str(), window.start,
                window.start + window.length);
    if (window.length == 0) return;
    std::printf("    remap: ");
    for (std::uint32_t w = window.start; w < window.start + window.length; ++w) {
        std::printf("word%u->entry%u  ", w, dcache.physicalEntryFor(0, 0, w));
    }
    std::printf("\n");
}

} // namespace

int main() {
    std::printf("FFW explorer — the paper's Fig. 4 frame: entries 2, 4, 6 defective\n\n");
    FaultMap map(1024, 8);
    map.setFaulty(0, 2);
    map.setFaulty(0, 4);
    map.setFaulty(0, 6);

    L2Cache l2;
    FfwDCache dcache(CacheOrganization{}, map, l2);

    const std::uint32_t sequence[] = {4, 3, 5, 7, 0, 3};
    for (const std::uint32_t word : sequence) {
        const auto result = dcache.read(word * 4); // set 0, tag 0
        std::printf("read word %u -> %s%s\n", word, result.l1Hit ? "L1 HIT" : "miss",
                    result.l1Hit ? "" : (dcache.stats().lineMisses == 1 &&
                                                 dcache.stats().wordMisses == 0
                                             ? " (line fill)"
                                             : " (word miss -> window recenters)"));
        show(dcache, map);
    }

    std::printf(
        "\nThe Fig. 4 check: with window [2,7) the stored pattern is 01111100 and\n"
        "word offset 0x3 remaps to physical entry 0x1 — see the table above.\n\n");
    std::printf("stats: %llu accesses, %llu hits, %llu line misses, %llu word misses\n",
                static_cast<unsigned long long>(dcache.stats().accesses),
                static_cast<unsigned long long>(dcache.stats().hits),
                static_cast<unsigned long long>(dcache.stats().lineMisses),
                static_cast<unsigned long long>(dcache.stats().wordMisses));
    return 0;
}
