// Quickstart: simulate one benchmark on one chip under the paper's FFW+BBR
// scheme at 400mV, and compare it with the conventional cache pinned at
// Vccmin = 760mV. Prints the headline trade-off of the paper: the FFW+BBR
// cache runs slower (lower frequency) but at a fraction of the energy.
//
//   $ ./quickstart [benchmark] [seed]
#include <cstdio>
#include <cstdlib>
#include <string>

#include "core/system.h"
#include "core/sweep.h"
#include "power/dvfs.h"
#include "workload/workload.h"

using namespace voltcache;
using voltcache::literals::operator""_mV;

int main(int argc, char** argv) {
    const std::string benchmark = argc > 1 ? argv[1] : "crc32";
    const std::uint64_t seed = argc > 2 ? std::strtoull(argv[2], nullptr, 0) : 7;

    std::printf("voltcache quickstart — benchmark '%s', chip seed %llu\n\n",
                benchmark.c_str(), static_cast<unsigned long long>(seed));

    // 1. Build the program (the "compiler") and its BBR-transformed twin.
    Module module = buildBenchmark(benchmark, WorkloadScale::Small);
    Module bbrModule = module;
    const TransformStats transforms = applyBbrTransforms(bbrModule);
    std::printf("BBR code transformations: %u jumps inserted, %u blocks broken, "
                "%u literals moved into blocks\n",
                transforms.jumpsInserted, transforms.blocksBroken,
                transforms.literalsMoved);

    // 2. Conventional 6T cache: must stay at Vccmin = 760mV for yield.
    SystemConfig conventional;
    conventional.scheme = SchemeKind::Conventional760;
    conventional.op = DvfsTable::vccminBaseline();
    conventional.faultMapSeed = seed;
    const SystemResult base = simulateSystem(module, nullptr, conventional);

    // 3. FFW+BBR: the same chip scaled down to 400mV (P_fail = 1e-2/bit).
    SystemConfig scaled = conventional;
    scaled.scheme = SchemeKind::FfwBbr;
    scaled.op = DvfsTable::at(400_mV);
    const SystemResult ffwbbr = simulateSystem(module, &bbrModule, scaled);
    if (ffwbbr.linkFailed) {
        std::printf("\nBBR placement failed for this chip (yield loss) — try "
                    "another seed.\n");
        return 1;
    }

    std::printf("\n%-28s %16s %16s\n", "", "conventional@760mV", "ffw+bbr@400mV");
    auto row = [](const char* label, double a, double b, const char* unit) {
        std::printf("%-28s %16.3f %16.3f  %s\n", label, a, b, unit);
    };
    row("instructions (k)", base.run.instructions / 1e3, ffwbbr.run.instructions / 1e3,
        "");
    row("IPC", base.run.ipc(), ffwbbr.run.ipc(), "");
    row("runtime", base.runtimeSeconds * 1e3, ffwbbr.runtimeSeconds * 1e3, "ms");
    row("L2 accesses / 1k instr", base.run.l2AccessesPerKilo(),
        ffwbbr.run.l2AccessesPerKilo(), "");
    row("energy per instruction", base.epi * 1e12, ffwbbr.epi * 1e12, "pJ");
    std::printf("\nEPI reduction at 400mV vs the 760mV conventional cache: %.1f%%\n",
                (1.0 - ffwbbr.epi / base.epi) * 100.0);
    std::printf("checksums: 0x%08x vs 0x%08x (%s)\n",
                static_cast<unsigned>(base.checksum),
                static_cast<unsigned>(ffwbbr.checksum),
                base.checksum == ffwbbr.checksum ? "match — execution correct"
                                                 : "MISMATCH");
    return base.checksum == ffwbbr.checksum ? 0 : 1;
}
