# CMake generated Testfile for 
# Source directory: /root/repo/tools
# Build directory: /root/repo/build/tools
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(cli_list "/root/repo/build/tools/voltcache" "list")
set_tests_properties(cli_list PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;6;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli_run "/root/repo/build/tools/voltcache" "run" "basicmath" "--scheme" "ffw+bbr" "--mv" "400" "--seed" "2")
set_tests_properties(cli_run PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;7;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli_run_conventional "/root/repo/build/tools/voltcache" "run" "crc32" "--scheme" "conventional-760mV" "--mv" "760")
set_tests_properties(cli_run_conventional PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;8;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli_disasm "/root/repo/build/tools/voltcache" "disasm" "basicmath" "--bbr")
set_tests_properties(cli_disasm PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;9;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli_faultmap "/root/repo/build/tools/voltcache" "faultmap" "--mv" "440" "--seed" "9")
set_tests_properties(cli_faultmap PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;10;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli_yield "/root/repo/build/tools/voltcache" "yield" "--bits" "262144")
set_tests_properties(cli_yield PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;11;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli_bad_scheme_fails "/root/repo/build/tools/voltcache" "run" "basicmath" "--scheme" "bogus")
set_tests_properties(cli_bad_scheme_fails PROPERTIES  WILL_FAIL "TRUE" _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;12;add_test;/root/repo/tools/CMakeLists.txt;0;")
