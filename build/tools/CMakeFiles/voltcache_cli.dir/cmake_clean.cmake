file(REMOVE_RECURSE
  "CMakeFiles/voltcache_cli.dir/voltcache_cli.cpp.o"
  "CMakeFiles/voltcache_cli.dir/voltcache_cli.cpp.o.d"
  "voltcache"
  "voltcache.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/voltcache_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
