# Empty compiler generated dependencies file for voltcache_cli.
# This may be replaced when dependencies are built.
