file(REMOVE_RECURSE
  "libvoltcache_cpu.a"
)
