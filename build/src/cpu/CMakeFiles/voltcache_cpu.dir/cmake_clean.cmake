file(REMOVE_RECURSE
  "CMakeFiles/voltcache_cpu.dir/branch_predictor.cpp.o"
  "CMakeFiles/voltcache_cpu.dir/branch_predictor.cpp.o.d"
  "CMakeFiles/voltcache_cpu.dir/memory.cpp.o"
  "CMakeFiles/voltcache_cpu.dir/memory.cpp.o.d"
  "CMakeFiles/voltcache_cpu.dir/simulator.cpp.o"
  "CMakeFiles/voltcache_cpu.dir/simulator.cpp.o.d"
  "libvoltcache_cpu.a"
  "libvoltcache_cpu.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/voltcache_cpu.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
