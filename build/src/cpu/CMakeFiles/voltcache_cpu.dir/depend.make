# Empty dependencies file for voltcache_cpu.
# This may be replaced when dependencies are built.
