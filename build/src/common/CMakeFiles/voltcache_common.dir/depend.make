# Empty dependencies file for voltcache_common.
# This may be replaced when dependencies are built.
