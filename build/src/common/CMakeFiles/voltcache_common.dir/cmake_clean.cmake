file(REMOVE_RECURSE
  "CMakeFiles/voltcache_common.dir/histogram.cpp.o"
  "CMakeFiles/voltcache_common.dir/histogram.cpp.o.d"
  "CMakeFiles/voltcache_common.dir/stats.cpp.o"
  "CMakeFiles/voltcache_common.dir/stats.cpp.o.d"
  "CMakeFiles/voltcache_common.dir/table.cpp.o"
  "CMakeFiles/voltcache_common.dir/table.cpp.o.d"
  "libvoltcache_common.a"
  "libvoltcache_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/voltcache_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
