file(REMOVE_RECURSE
  "libvoltcache_common.a"
)
