file(REMOVE_RECURSE
  "libvoltcache_isa.a"
)
