# Empty dependencies file for voltcache_isa.
# This may be replaced when dependencies are built.
