file(REMOVE_RECURSE
  "CMakeFiles/voltcache_isa.dir/assembler.cpp.o"
  "CMakeFiles/voltcache_isa.dir/assembler.cpp.o.d"
  "CMakeFiles/voltcache_isa.dir/builder.cpp.o"
  "CMakeFiles/voltcache_isa.dir/builder.cpp.o.d"
  "CMakeFiles/voltcache_isa.dir/disasm.cpp.o"
  "CMakeFiles/voltcache_isa.dir/disasm.cpp.o.d"
  "CMakeFiles/voltcache_isa.dir/instruction.cpp.o"
  "CMakeFiles/voltcache_isa.dir/instruction.cpp.o.d"
  "CMakeFiles/voltcache_isa.dir/module.cpp.o"
  "CMakeFiles/voltcache_isa.dir/module.cpp.o.d"
  "libvoltcache_isa.a"
  "libvoltcache_isa.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/voltcache_isa.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
