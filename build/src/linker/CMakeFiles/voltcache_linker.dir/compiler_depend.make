# Empty compiler generated dependencies file for voltcache_linker.
# This may be replaced when dependencies are built.
