file(REMOVE_RECURSE
  "libvoltcache_linker.a"
)
